// Million-job scale scenario: the tentpole benchmark for the event-driven
// engine. A deep backlog (10 waves of jobs per machine) over a six-figure
// machine count, with fair-share flows accruing lazily and the negotiation
// order maintained incrementally — every hot path is event-driven, so the
// event driver's work is proportional to completions while the tick driver
// pays for every boundary of a multi-month horizon at millisecond ticks.
//
// The full scale (1M jobs, 100k machines) runs by default and is what
// BENCH_*.json records; set GAE_SCENARIO_SCALE=smoke for the scaled-down
// CI variant (100k jobs, 10k machines) with a small wall-time budget.
package repro_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/classad"
	"repro/internal/condor"
	"repro/internal/fairshare"
	"repro/internal/simgrid"
)

// millionScale parameterizes the scenario. Durations and the tick are
// chosen to keep the accrual arithmetic in the engine's exact
// power-of-two regime (tick = 2⁻ᵏ seconds, idle machines, Mips 1), so
// completion deadlines are closed-form: whole-second completion instants
// that land on the grid at any dyadic tick — which is also what makes the
// event count independent of the tick resolution.
type millionScale struct {
	pools      int
	machines   int // per pool
	jobs       int // total
	tick       time.Duration
	baseNeed   float64       // CPU-seconds; stagger adds (job % 509) whole seconds
	horizon    time.Duration // past the last completion of the deepest machine
	simSeconds float64
}

var millionFull = millionScale{
	pools:      10,
	machines:   10_000,
	jobs:       1_000_000,
	tick:       time.Second / 512,
	baseNeed:   2_500_000, // ~29-day production jobs, 10 waves deep
	horizon:    25_006_000 * time.Second,
	simSeconds: 25_006_000,
}

var millionSmoke = millionScale{
	pools:      10,
	machines:   1_000,
	jobs:       100_000,
	tick:       time.Second / 128,
	baseNeed:   2_000,
	horizon:    26_000 * time.Second,
	simSeconds: 26_000,
}

// buildMillionScenario constructs the grid, pools, machines and the full
// backlog of submissions; the returned closure runs the simulation. The
// split lets the benchmark exclude setup (ad construction, matcher
// compilation, a million queue inserts) from the timed region.
func buildMillionScenario(tb testing.TB, sc millionScale, d simgrid.Driver) (*simgrid.Grid, func() *simgrid.Engine) {
	g := simgrid.NewGrid(sc.tick, 1)
	g.Engine.SetDriver(d)
	pools := make([]*condor.Pool, sc.pools)
	for p := range pools {
		name := fmt.Sprintf("site%d", p)
		site := g.AddSite(name)
		pool := condor.NewPool(name, g, site)
		for i := 0; i < sc.machines; i++ {
			pool.AddMachine(site.AddNode(g.Engine, fmt.Sprintf("%s-n%05d", name, i), 1, simgrid.IdleLoad()), nil)
		}
		mgr := fairshare.NewManager(fairshare.Config{Clock: g.Engine.Clock(), HalfLife: time.Hour})
		pool.SetFairShare(mgr)
		pools[p] = pool
	}
	owners := []string{"atlas", "cms", "lhcb", "alice"}
	lastID, lastPool := 0, 0
	for j := 0; j < sc.jobs; j++ {
		need := sc.baseNeed + float64(j%509)
		ad := classad.New().
			Set(condor.AttrOwner, owners[j%len(owners)]).
			Set(condor.AttrCpuSeconds, need).
			Set(condor.AttrPriority, j%2)
		id, err := pools[j%sc.pools].Submit(ad)
		if err != nil {
			tb.Fatalf("submit %d: %v", j, err)
		}
		lastID, lastPool = id, j%sc.pools
	}
	return g, func() *simgrid.Engine {
		g.Engine.RunFor(sc.horizon)
		// A scenario bug that strands the backlog would make the event
		// side look absurdly fast; make sure the last submission ran.
		if info, err := pools[lastPool].Job(lastID); err != nil || info.Status != condor.StatusCompleted {
			tb.Fatalf("last job %d: status %v err %v — backlog did not drain", lastID, info.Status, err)
		}
		return g.Engine
	}
}

func millionScaleFromEnv() millionScale {
	if os.Getenv("GAE_SCENARIO_SCALE") == "smoke" {
		return millionSmoke
	}
	return millionFull
}

func BenchmarkScenarioMillionJobs(b *testing.B) {
	sc := millionScaleFromEnv()
	for _, d := range []struct {
		name   string
		driver simgrid.Driver
	}{
		{"driver=tick", simgrid.DriverTick},
		{"driver=event", simgrid.DriverEvent},
	} {
		b.Run(d.name, func(b *testing.B) {
			var events int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				_, run := buildMillionScenario(b, sc, d.driver)
				b.StartTimer()
				events = run().Events()
			}
			b.ReportMetric(sc.simSeconds*float64(b.N)/b.Elapsed().Seconds(), "sim_s/wall_s")
			b.ReportMetric(float64(events), "events")
		})
	}
}

// TestMillionSmokeWallBudget is the CI-sized wall-time assertion behind
// `make bench-smoke`: the event driver must push the smoke scale (100k
// jobs over 10k machines, a 26,000-second horizon) end to end well
// inside a budget that would be unreachable if any converted path
// regressed to per-tick or per-pass scanning. The budget is deliberately
// loose — about 10x the measured wall time on a single modest core — so
// it only trips on structural regressions, not machine noise.
func TestMillionSmokeWallBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-time budget is meaningless under the race detector's overhead")
	}
	const budget = 45 * time.Second
	_, run := buildMillionScenario(t, millionSmoke, simgrid.DriverEvent)
	start := time.Now()
	run()
	if wall := time.Since(start); wall > budget {
		t.Fatalf("smoke scenario took %v, budget %v — a hot path has regressed to per-tick cost", wall, budget)
	}
}

// TestMillionScenarioEventCountTickIndependent pins the tentpole's
// structural claim: under the event driver the number of processed events
// depends on the workload, not on the tick resolution. A 128x finer grid
// must process (nearly) the same events — completions and the pool passes
// they trigger — rather than 128x more boundaries.
func TestMillionScenarioEventCountTickIndependent(t *testing.T) {
	sc := millionScale{
		pools:    2,
		machines: 200,
		jobs:     4_000,
		baseNeed: 600,
		horizon:  12_000 * time.Second,
	}
	run := func(tick time.Duration) int64 {
		sc := sc
		sc.tick = tick
		_, runFn := buildMillionScenario(t, sc, simgrid.DriverEvent)
		return runFn().Events()
	}
	coarse := run(time.Second)
	fine := run(time.Second / 128)
	if coarse == 0 || fine == 0 {
		t.Fatalf("vacuous run: events coarse=%d fine=%d", coarse, fine)
	}
	ratio := float64(fine) / float64(coarse)
	if ratio > 1.1 || ratio < 1/1.1 {
		t.Fatalf("event count depends on tick resolution: %d at 1s vs %d at 1/128s (ratio %.3f)",
			coarse, fine, ratio)
	}
}
