// Package driver runs gae-lint's analyzers in the two modes the repo
// needs: a standalone multichecker over `go list` patterns (what `make
// lint` runs), and the cmd/go vet-tool protocol (`go vet
// -vettool=$(which gae-lint) ./...`), which hands the tool one
// pre-planned package per invocation through a JSON .cfg file.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/tools/lint/analysis"
	"repro/tools/lint/loader"
)

// Main parses flags and runs analyzers, returning the process exit
// code: 0 clean, 1 diagnostics found (2 in vet-tool mode, matching
// x/tools unitchecker), 3 on driver failure.
func Main(analyzers ...*analysis.Analyzer) int {
	fs := flag.NewFlagSet("gae-lint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: gae-lint [-dir dir] [-NAME] [-NAME.flag=value] [package pattern ...]\n\n")
		fmt.Fprintf(fs.Output(), "Runs the gae determinism/locking analyzers. With no -NAME flags all\nanalyzers run; naming one or more runs only those.\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	dir := fs.String("dir", ".", "directory to resolve package patterns in (a module root)")
	vFlag := fs.String("V", "", "print version and exit (vet-tool protocol)")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		a := a
		enabled[a.Name] = fs.Bool(a.Name, false, "run only named analyzers: enable "+a.Name)
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	// cmd/go probes `tool -flags` before using a vet tool and expects a
	// JSON description of the flags it may forward.
	if len(os.Args) > 1 && os.Args[1] == "-flags" {
		return printFlags(fs)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 3
	}
	if *vFlag != "" {
		// cmd/go probes `tool -V=full` and requires a buildID field when
		// the version is "devel"; hashing the executable (what x/tools'
		// analysisflags does) keys its action cache to this binary.
		exe, err := os.Executable()
		if err != nil {
			exe = os.Args[0]
		}
		data, err := os.ReadFile(exe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gae-lint:", err)
			return 3
		}
		h := sha256.Sum256(data)
		fmt.Printf("%s version devel buildID=%02x\n", filepath.Base(os.Args[0]), string(h[:]))
		return 0
	}

	run := analyzers
	var named []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			named = append(named, a)
		}
	}
	if len(named) > 0 {
		run = named
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return vetUnit(args[0], run)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}

	diags, err := Run(*dir, args, run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gae-lint:", err)
		return 3
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printFlags implements the `-flags` probe of the vet-tool protocol:
// a JSON array of the tool's flags in the shape cmd/go parses (the
// same one x/tools' analysisflags emits).
func printFlags(fs *flag.FlagSet) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		if f.Name == "dir" {
			return // standalone-mode only; cmd/go plans the packages itself
		}
		b, isBool := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, isBool && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.Marshal(flags)
	if err != nil {
		return 3
	}
	os.Stdout.Write(data)
	return 0
}

// A Finding is one rendered diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run loads patterns relative to dir and applies the analyzers,
// returning position-sorted findings. It is the library entry point the
// self-lint regression test uses.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, pkg := range pkgs {
		fs, err := analyze(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// Analyze applies analyzers to one loaded package (exported for the
// analysistest harness).
func Analyze(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	return analyze(pkg, analyzers)
}

func analyze(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(d.Pos),
				Analyzer: name,
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
		}
	}
	return out, nil
}

// vetConfig mirrors the JSON planning file cmd/go writes for vet tools
// (the same shape x/tools go/analysis/unitchecker consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit executes the vet-tool protocol for one package: analyze the
// listed files, resolve imports through the supplied export-data map,
// print findings to stderr, and always write the (empty — gae-lint has
// no facts) vetx output the go command caches on.
func vetUnit(cfgPath string, analyzers []*analysis.Analyzer) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gae-lint:", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "gae-lint: parsing %s: %v\n", cfgPath, err)
		return 3
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "gae-lint:", err)
			return 3
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}
	fset := token.NewFileSet()
	pkg, err := loader.CheckFiles(fset, cfg.ImportPath, cfg.GoFiles, cfg.PackageFile, cfg.ImportMap)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "gae-lint:", err)
		return 3
	}
	fs, err := analyze(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gae-lint:", err)
		return 3
	}
	for _, f := range fs {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(fs) > 0 {
		return 2
	}
	return 0
}
