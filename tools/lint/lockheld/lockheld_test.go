package lockheld_test

import (
	"testing"

	"repro/tools/lint/analysistest"
	"repro/tools/lint/lockheld"
)

func TestLockheld(t *testing.T) {
	analysistest.Run(t, lockheld.Analyzer, "pool")
}
