// Package pool is a lockheld fixture shaped like the repo's condor
// pool: a primary mutex guarding *Locked methods, auxiliary leaf
// mutexes, and the transition() locking-wrapper idiom.
package pool

import "sync"

type Pool struct {
	mu    sync.Mutex
	relMu sync.Mutex
	jobs  map[int]string
}

func (p *Pool) addLocked(id int, s string) { p.jobs[id] = s }
func (p *Pool) dropLocked(id int)          { delete(p.jobs, id) }

// rebalanceLocked calls a sibling *Locked method: held by contract.
func (p *Pool) rebalanceLocked() {
	p.dropLocked(0)
}

// drainLocked takes and releases an auxiliary leaf mutex; that pair
// does not surrender the primary lock the *Locked contract asserts.
func (p *Pool) drainLocked() {
	p.relMu.Lock()
	ids := []int{1}
	p.relMu.Unlock()
	for _, id := range ids {
		p.dropLocked(id)
	}
}

// ExportedLocked is exported, which leaks a package-private contract.
func (p *Pool) ExportedLocked() {} // want "must not be exported"

// selfLockLocked locks the mutex its own suffix asserts is held.
func (p *Pool) selfLockLocked() {
	p.mu.Lock() // want "locks p\\.mu itself"
	defer p.mu.Unlock()
}

func (p *Pool) Add(id int, s string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.addLocked(id, s)
}

func (p *Pool) AddRacy(id int, s string) {
	p.addLocked(id, s) // want "without holding its mutex"
}

func (p *Pool) AddAfterUnlock(id int, s string) {
	p.mu.Lock()
	p.jobs[id] = s
	p.mu.Unlock()
	p.dropLocked(id) // want "without holding its mutex"
}

// EarlyReturn unlocks only on the error path; the fallthrough path
// still holds the lock.
func (p *Pool) EarlyReturn(id int) {
	p.mu.Lock()
	if p.jobs == nil {
		p.mu.Unlock()
		return
	}
	p.dropLocked(id)
	p.mu.Unlock()
}

// transition is the locking-wrapper idiom: the callback it receives
// runs under p.mu.
func (p *Pool) transition(id int, fn func(int)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fn(id)
}

func (p *Pool) ViaWrapper(id int) {
	p.transition(id, func(id int) {
		p.dropLocked(id)
	})
}

func (p *Pool) ClosureRacy(id int) func() {
	return func() {
		p.dropLocked(id) // want "without holding its mutex"
	}
}

// ClosureUnderLock is defined where the lock is held; the engine runs
// it synchronously in this repo's single-goroutine event loop.
func (p *Pool) ClosureUnderLock(id int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fn := func() { p.dropLocked(id) }
	fn()
}

func (p *Pool) Annotated(id int) {
	//lint:lockheld fixture: caller chain holds p.mu by construction
	p.dropLocked(id)
}

// Store has its primary mutex under a non-"mu" name, like core.GAE's
// persistMu: any receiver-rooted acquisition guards *Locked calls.
type Store struct {
	persistMu sync.Mutex
	n         int
}

func (s *Store) bumpLocked() { s.n++ }

func (s *Store) Bump() {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	s.bumpLocked()
}

func (s *Store) BumpRacy() {
	s.bumpLocked() // want "without holding its mutex"
}
