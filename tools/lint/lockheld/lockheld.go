// Package lockheld implements the gae-lint analyzer that enforces the
// repo's *Locked method-suffix contract — the convention (141
// occurrences in internal/condor/pool.go alone) that is the only thing
// standing between the serving stack and data races.
//
// The contract, as enforced:
//
//  1. A method whose name ends in "Locked" asserts "my receiver's
//     mutex is held on entry". Calling p.fooLocked() is legal only
//     (a) from inside another *Locked method on the same receiver
//     object — the transitive call-graph case — or (b) under a
//     dominating p.mu.Lock() / p.mu.RLock() (any sync.Mutex/RWMutex
//     reachable from the same base object, embedded mutexes included)
//     with no intervening Unlock on the fallthrough path.
//  2. *Locked methods must not be exported: the contract is
//     package-local, and an exported *Locked method would invite
//     callers who cannot hold the private mutex.
//  3. A *Locked method must not lock its receiver's own mutex — it
//     holds it by contract, and a re-lock is a self-deadlock
//     (sync.Mutex is not reentrant).
//
// Domination is computed with a block-structured scan of the enclosing
// function: a Lock dominates the call if it appears on the
// statement path leading to the call with no intervening Unlock; an
// Unlock inside a conditional whose block terminates (early-return
// error paths) does not clear the held state; `defer mu.Unlock()`
// never clears it. Function literals inherit the held state at their
// definition point — the callback-registered-under-lock idiom — and
// may re-establish it with their own Lock.
//
// A call site that is safe for reasons the analysis cannot see can be
// annotated:
//
//	//lint:lockheld <justification>
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/lint/analysis"
	"repro/tools/lint/lintutil"
)

// Analyzer is the lockheld analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "enforce the *Locked method-suffix contract: callers hold the receiver's mutex, *Locked methods stay unexported and never self-lock (suppress with //lint:lockheld <why>)",
	Run:  run,
}

// AnnotationName is the suppression annotation lockheld honors.
const AnnotationName = "lockheld"

func run(pass *analysis.Pass) (any, error) {
	anns := lintutil.CollectAnnotations(pass, AnnotationName)
	c := &checker{pass: pass, anns: anns, decls: make(map[types.Object]*ast.FuncDecl)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				c.decls[pass.TypesInfo.Defs[fd.Name]] = fd
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			c.checkDecl(fd)
		}
		c.checkCalls(f)
	}
	return nil, nil
}

type checker struct {
	pass  *analysis.Pass
	anns  *lintutil.Annotations
	decls map[types.Object]*ast.FuncDecl
}

func lockedName(name string) bool {
	return len(name) > len("Locked") && strings.HasSuffix(name, "Locked")
}

// checkDecl enforces the declaration-side rules on one function.
func (c *checker) checkDecl(fd *ast.FuncDecl) {
	if fd.Recv == nil || !lockedName(fd.Name.Name) {
		return
	}
	if ast.IsExported(fd.Name.Name) && !c.anns.Suppressed(AnnotationName, fd.Name.Pos()) {
		c.pass.Reportf(fd.Name.Pos(),
			"*Locked method %s must not be exported: the lock it asserts is package-private", fd.Name.Name)
	}
	recv := receiverIdent(fd)
	if recv == nil || fd.Body == nil {
		return
	}
	// Self-locking the receiver's own mutex inside the method body
	// proper (function literals excluded: a callback defined here runs
	// later, where taking the lock is the norm).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ev, ok := c.mutexEvent(call)
		if !ok || !ev.acquire {
			return true
		}
		// Only the receiver's primary mutex — the conventional `mu`
		// field or an embedded mutex — is held by contract. Auxiliary
		// leaf mutexes (p.relMu, g.planMu) are different locks; a
		// *Locked method may layer them briefly.
		if ev.base == recv.Name || ev.base == recv.Name+".mu" {
			if !c.anns.Suppressed(AnnotationName, call.Pos()) {
				c.pass.Reportf(call.Pos(),
					"*Locked method %s locks %s itself: it holds that mutex by contract (self-deadlock)",
					fd.Name.Name, ev.base)
			}
		}
		return true
	})
}

// checkCalls verifies every call to a *Locked method in the file.
func (c *checker) checkCalls(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selInfo, ok := c.pass.TypesInfo.Selections[sel]
		if !ok || selInfo.Kind() != types.MethodVal {
			return true
		}
		callee := selInfo.Obj()
		if !lockedName(callee.Name()) || callee.Pkg() != c.pass.Pkg {
			return true
		}
		if c.anns.Suppressed(AnnotationName, call.Pos()) {
			return true
		}
		guard := exprText(sel.X)
		if guard == "" {
			return true // receiver too complex to name; out of scope
		}
		if !c.lockHeldAt(f, call, sel, guard) {
			c.pass.Reportf(call.Pos(),
				"call to *Locked method %s.%s without holding its mutex: call from a *Locked method on the same receiver or under a dominating %s.mu.Lock() (or annotate //lint:lockheld <why>)",
				guard, callee.Name(), guard)
		}
		return true
	})
}

// lockHeldAt decides whether guard's mutex is held at the call,
// climbing from the innermost enclosing function outwards through
// function-literal definition points.
func (c *checker) lockHeldAt(f *ast.File, call *ast.CallExpr, sel *ast.SelectorExpr, guard string) bool {
	path := enclosingPath(f, call.Pos())
	at := call.Pos()
	for i := len(path) - 1; i >= 0; i-- {
		switch fn := path[i].(type) {
		case *ast.FuncLit:
			if fn.Body != nil && c.scanHeld(fn.Body.List, at, guard, "") != "" {
				return true
			}
			// Locking-wrapper inference: a literal passed directly to a
			// method whose body takes its own receiver's lock at the top
			// level (the p.transition(id, func(j *job) error {...})
			// idiom) runs with that receiver's mutex held.
			if i > 0 {
				if call, ok := path[i-1].(*ast.CallExpr); ok && isArg(call, fn) {
					if recvText, ok := c.lockingWrapper(call); ok && recvText == guard {
						return true
					}
				}
			}
			at = fn.Pos() // inherit the held state at the definition point
		case *ast.FuncDecl:
			// Transitive case: inside a *Locked method on the same
			// receiver object, the mutex is held by contract for the
			// method's whole extent — interior lock/unlock pairs on
			// auxiliary leaf mutexes do not surrender it.
			if lockedName(fn.Name.Name) {
				if recv := receiverIdent(fn); recv != nil {
					if id, ok := sel.X.(*ast.Ident); ok && c.objectOf(id) == c.objectOf(recv) {
						return true
					}
				}
			}
			if fn.Body != nil {
				return c.scanHeld(fn.Body.List, at, guard, "") != ""
			}
			return false
		}
	}
	return false
}

// scanHeld walks a statement list up to position at, tracking which of
// guard's mutexes (if any) is held when control reaches at. The state
// is the establishing mutex base ("g.persistMu"), or "" when none is
// held: an Unlock only clears the exact mutex that was locked, so a
// balanced lock/unlock pair on a different mutex of the same receiver
// cannot surrender the guard. Statements strictly before at update the
// state; the statement containing at is descended into.
func (c *checker) scanHeld(stmts []ast.Stmt, at token.Pos, guard, held string) string {
	for _, s := range stmts {
		if s.Pos() <= at && at <= s.End() {
			return c.scanInto(s, at, guard, held)
		}
		if at < s.Pos() {
			break
		}
		held = c.applyStmt(s, guard, held)
	}
	return held
}

// scanInto descends into the sub-block of s that contains at.
func (c *checker) scanInto(s ast.Stmt, at token.Pos, guard, held string) string {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return c.scanHeld(s.List, at, guard, held)
	case *ast.IfStmt:
		if s.Init != nil && !within(s.Init, at) {
			held = c.applyStmt(s.Init, guard, held)
		}
		if within(s.Body, at) {
			return c.scanHeld(s.Body.List, at, guard, held)
		}
		if s.Else != nil && within(s.Else, at) {
			return c.scanInto(s.Else, at, guard, held)
		}
	case *ast.ForStmt:
		if s.Init != nil && !within(s.Init, at) {
			held = c.applyStmt(s.Init, guard, held)
		}
		if within(s.Body, at) {
			return c.scanHeld(s.Body.List, at, guard, held)
		}
	case *ast.RangeStmt:
		if within(s.Body, at) {
			return c.scanHeld(s.Body.List, at, guard, held)
		}
	case *ast.SwitchStmt:
		return c.scanClauses(s.Body, at, guard, held)
	case *ast.TypeSwitchStmt:
		return c.scanClauses(s.Body, at, guard, held)
	case *ast.SelectStmt:
		return c.scanClauses(s.Body, at, guard, held)
	case *ast.LabeledStmt:
		return c.scanInto(s.Stmt, at, guard, held)
	}
	// The position sits inside a simple statement (e.g. the call's own
	// ExprStmt): no earlier events within it to consider.
	return held
}

func (c *checker) scanClauses(body *ast.BlockStmt, at token.Pos, guard, held string) string {
	for _, cl := range body.List {
		if !within(cl, at) {
			continue
		}
		switch cl := cl.(type) {
		case *ast.CaseClause:
			return c.scanHeld(cl.Body, at, guard, held)
		case *ast.CommClause:
			return c.scanHeld(cl.Body, at, guard, held)
		}
	}
	return held
}

// applyStmt folds one fully-executed statement into the held state.
//
//   - a direct guard-rooted Lock()/RLock() establishes held (recording
//     which mutex)
//   - a direct Unlock()/RUnlock() of that same mutex clears it
//   - `defer …Unlock()` keeps it (runs at return)
//   - a compound statement clears held if it unlocks the held mutex on
//     any fallthrough path (an unlock whose block ends in return/panic
//     — the early-error idiom — does not count); a Lock buried in a
//     conditional does not dominate and so never establishes held
func (c *checker) applyStmt(s ast.Stmt, guard, held string) string {
	if es, ok := s.(*ast.ExprStmt); ok {
		if call, ok := es.X.(*ast.CallExpr); ok {
			if ev, ok := c.mutexEvent(call); ok {
				if ev.acquire && guardMatches(guard, ev.base) {
					return ev.base
				}
				if !ev.acquire && ev.base == held {
					return ""
				}
				return held
			}
		}
	}
	if _, ok := s.(*ast.DeferStmt); ok {
		return held
	}
	if held != "" && c.unlocksOnFallthrough(s, held) {
		return ""
	}
	return held
}

// unlocksOnFallthrough reports whether s contains a non-deferred unlock
// of the held mutex outside function literals, in a position that can
// fall through to the code after s.
func (c *checker) unlocksOnFallthrough(s ast.Stmt, held string) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.BlockStmt:
			if terminates(n.List) {
				// Every statement in a terminating block exits the
				// function; its unlock cannot reach the code after s.
				return false
			}
		case *ast.CaseClause:
			if terminates(n.Body) {
				return false
			}
		case *ast.CommClause:
			if terminates(n.Body) {
				return false
			}
		case *ast.CallExpr:
			if ev, ok := c.mutexEvent(n); ok && !ev.acquire && ev.base == held {
				found = true
				return false
			}
		}
		return true
	}
	ast.Inspect(s, walk)
	return found
}

// isArg reports whether lit is one of call's direct arguments.
func isArg(call *ast.CallExpr, lit *ast.FuncLit) bool {
	for _, a := range call.Args {
		if a == ast.Expr(lit) {
			return true
		}
	}
	return false
}

// lockingWrapper reports whether call invokes a method of this package
// whose body acquires its own receiver's mutex in a top-level
// statement, returning the receiver expression text at the call site
// ("p" for p.transition(...)). Callbacks handed to such a wrapper run
// under that receiver's lock.
func (c *checker) lockingWrapper(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selInfo, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selInfo.Kind() != types.MethodVal {
		return "", false
	}
	decl := c.decls[selInfo.Obj()]
	if decl == nil || decl.Body == nil {
		return "", false
	}
	recv := receiverIdent(decl)
	if recv == nil {
		return "", false
	}
	for _, s := range decl.Body.List {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		inner, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if ev, ok := c.mutexEvent(inner); ok && ev.acquire && guardMatches(recv.Name, ev.base) {
			return exprText(sel.X), true
		}
	}
	return "", false
}

// within reports whether pos falls inside n's source range.
func within(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos <= n.End()
}

// terminates reports whether a statement list always transfers control
// away (return, branch, panic) as its final act.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// mutexEvent classifies a call as a sync.Mutex/RWMutex Lock/Unlock
// family call, returning the textual base it guards ("p.mu" → base
// "p.mu", field "mu"; embedded `p.Lock()` → base "p").
type mutexEv struct {
	base    string
	field   string
	acquire bool
}

func (c *checker) mutexEvent(call *ast.CallExpr) (mutexEv, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return mutexEv{}, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return mutexEv{}, false
	}
	selInfo, ok := c.pass.TypesInfo.Selections[sel]
	if !ok {
		return mutexEv{}, false
	}
	obj := selInfo.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return mutexEv{}, false
	}
	base := exprText(sel.X)
	if base == "" {
		return mutexEv{}, false
	}
	field := base
	if i := strings.LastIndex(base, "."); i >= 0 {
		field = base[i+1:]
	}
	return mutexEv{base: base, field: field, acquire: acquire}, true
}

// guardMatches reports whether a mutex rooted at base guards calls on
// guard: the base is the guard object itself (embedded mutex) or a
// field chain hanging off it ("p" is guarded by "p.mu", "g" by
// "g.persistMu" — primary mutexes are not always named mu).
func guardMatches(guard, base string) bool {
	return base == guard || strings.HasPrefix(base, guard+".")
}

func (c *checker) objectOf(id *ast.Ident) types.Object {
	if o := c.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return c.pass.TypesInfo.Defs[id]
}

func receiverIdent(fd *ast.FuncDecl) *ast.Ident {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return fd.Recv.List[0].Names[0]
}

// enclosingPath returns the chain of nodes containing pos, outermost
// first (the file) to innermost last.
func enclosingPath(f *ast.File, pos token.Pos) []ast.Node {
	var path []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= pos && pos < n.End() {
			path = append(path, n)
			return true
		}
		return false
	})
	return path
}

// exprText renders simple receiver/selector chains ("p", "p.peer",
// "(*p).mu"); anything with calls or indexing returns "".
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprText(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprText(x.X)
	case *ast.StarExpr:
		return exprText(x.X)
	}
	return ""
}
