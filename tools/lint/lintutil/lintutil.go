// Package lintutil carries the pieces the three gae-lint analyzers
// share: the //lint:<name> annotation protocol and the
// determinism-critical package matcher.
package lintutil

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/tools/lint/analysis"
)

// An Annotations index records, per file line, the //lint: annotations
// present on that line. A diagnostic at line L is suppressed by an
// annotation on L (trailing comment) or on L-1 (comment on its own
// line above the statement) — and every annotation must carry a
// justification, so each suppression stays a visible, audited decision.
type Annotations struct {
	fset *token.FileSet
	// byLine maps file name → line → annotation names present.
	byLine map[string]map[int][]annotation
}

type annotation struct {
	name   string
	reason string
	pos    token.Pos
}

// Marker is the comment prefix all gae-lint annotations share.
const Marker = "//lint:"

// CollectAnnotations scans every comment in the pass's files. Malformed
// annotations — a //lint: marker with no justification text — are
// reported immediately through the pass, since a bare suppression
// defeats the audited-decision purpose of the protocol.
func CollectAnnotations(pass *analysis.Pass, names ...string) *Annotations {
	known := make(map[string]bool, len(names))
	for _, n := range names {
		known[n] = true
	}
	a := &Annotations{fset: pass.Fset, byLine: make(map[string]map[int][]annotation)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a.addComment(pass, c, known)
			}
		}
	}
	return a
}

func (a *Annotations) addComment(pass *analysis.Pass, c *ast.Comment, known map[string]bool) {
	text := c.Text
	idx := strings.Index(text, Marker)
	if idx < 0 {
		return
	}
	rest := text[idx+len(Marker):]
	name, reason, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	reason = strings.TrimSpace(reason)
	if !known[name] {
		// Someone else's annotation namespace (or a typo for an
		// analyzer not in this run); a typo'd name simply fails to
		// suppress, which the finding itself then surfaces.
		return
	}
	if reason == "" {
		pass.Reportf(c.Pos(), "%s%s annotation needs a justification: //lint:%s <why>", Marker, name, name)
		return
	}
	pos := a.fset.Position(c.Pos())
	lines := a.byLine[pos.Filename]
	if lines == nil {
		lines = make(map[int][]annotation)
		a.byLine[pos.Filename] = lines
	}
	lines[pos.Line] = append(lines[pos.Line], annotation{name: name, reason: reason, pos: c.Pos()})
}

// Suppressed reports whether a diagnostic named name at pos is covered
// by an annotation on the same line or the line above.
func (a *Annotations) Suppressed(name string, pos token.Pos) bool {
	p := a.fset.Position(pos)
	lines := a.byLine[p.Filename]
	if lines == nil {
		return false
	}
	for _, cand := range [2]int{p.Line, p.Line - 1} {
		for _, ann := range lines[cand] {
			if ann.name == name {
				return true
			}
		}
	}
	return false
}

// CriticalDefault is the default determinism-critical package set: the
// simulation core, every service that runs inside it, and the durable
// encode/replay path. Serving-side infrastructure (clarens transport,
// xmlrpc codec, telemetry, loadgen, chaos) legitimately reads the wall
// clock and is excluded.
const CriticalDefault = "repro/internal/vtime,repro/internal/simgrid,repro/internal/classad," +
	"repro/internal/condor,repro/internal/fairshare,repro/internal/scheduler," +
	"repro/internal/estimator,repro/internal/quota,repro/internal/replica," +
	"repro/internal/steering,repro/internal/jobmon,repro/internal/monalisa," +
	"repro/internal/workload,repro/internal/experiments,repro/internal/durable," +
	"repro/internal/core"

// MatchesCritical reports whether pkgPath is in the comma-separated
// critical list. An entry matches exactly, as a path prefix followed by
// "/", or — for analysistest fixtures, which live outside the module —
// as the final path element.
func MatchesCritical(list, pkgPath string) bool {
	for _, entry := range strings.Split(list, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if pkgPath == entry || strings.HasPrefix(pkgPath, entry+"/") {
			return true
		}
		if base := entry[strings.LastIndex(entry, "/")+1:]; base == pkgPath {
			return true
		}
	}
	return false
}
