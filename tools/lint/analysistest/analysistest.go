// Package analysistest runs one analyzer over fixture packages under
// testdata/src and checks its diagnostics against `// want "regex"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest on
// top of the repo's own loader. A fixture line may carry several want
// strings; every want must be matched by a diagnostic on its line and
// every diagnostic must match a want.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/tools/lint/analysis"
	"repro/tools/lint/driver"
	"repro/tools/lint/loader"
)

// wantRe matches the tail of a fixture line holding expectations:
//
//	x := onlyFromSim() // want "wall-clock call" "second pattern"
//
// An optional signed offset targets a neighbouring line — needed when
// the diagnostic lands on a line that is itself a lint annotation
// comment, which cannot also carry a want comment:
//
//	//lint:walltime
//	// want:-1 "annotation needs a justification"
var wantRe = regexp.MustCompile(`//\s*want(:[+-]?\d+)?((?:\s+"(?:[^"\\]|\\.)*")+)\s*$`)

var wantStr = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run checks analyzer against each named fixture package, looked up as
// testdata/src/<pkg> relative to the calling test's directory. The
// directory name is used as the package path, so simtime fixtures can
// take critical-package names like "simgrid".
func Run(t *testing.T, analyzer *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runPkg(t, analyzer, pkg)
		})
	}
}

func runPkg(t *testing.T, analyzer *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files in %s: %v", dir, err)
	}
	sort.Strings(files)

	var wants []*want
	imports := make(map[string]bool)
	for _, f := range files {
		ws, imps, err := scanFixture(f)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
		for _, im := range imps {
			imports[im] = true
		}
	}
	var deps []string
	for im := range imports {
		deps = append(deps, im)
	}
	sort.Strings(deps)
	exports, err := loader.StdExports(deps...)
	if err != nil {
		t.Fatal(err)
	}

	fset := token.NewFileSet()
	loaded, err := loader.CheckFiles(fset, pkg, files, exports, nil)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := driver.Analyze(loaded, []*analysis.Analyzer{analyzer})
	if err != nil {
		t.Fatal(err)
	}

	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s", posOf(f), f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched want on the finding's line whose
// regexp matches the message.
func claim(wants []*want, f driver.Finding) bool {
	base := filepath.Base(f.Pos.Filename)
	for _, w := range wants {
		if w.matched || w.line != f.Pos.Line || filepath.Base(w.file) != base {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func posOf(f driver.Finding) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Pos.Column)
}

// scanFixture extracts want expectations and import paths from one
// fixture file. Wants are matched textually per line so they work in
// any position a comment can appear; imports come from a light scan of
// the import block (fixtures only import the standard library).
func scanFixture(path string) ([]*want, []string, error) {
	data, err := readFile(path)
	if err != nil {
		return nil, nil, err
	}
	var wants []*want
	var imports []string
	inImports := false
	for i, line := range strings.Split(data, "\n") {
		if m := wantRe.FindStringSubmatch(line); m != nil {
			target := i + 1
			if m[1] != "" {
				off, err := strconv.Atoi(strings.TrimPrefix(m[1][1:], "+"))
				if err != nil {
					return nil, nil, fmt.Errorf("%s:%d: bad want offset %q", path, i+1, m[1])
				}
				target += off
			}
			for _, q := range wantStr.FindAllString(m[2], -1) {
				raw, err := strconv.Unquote(q)
				if err != nil {
					return nil, nil, fmt.Errorf("%s:%d: bad want string %s: %v", path, i+1, q, err)
				}
				re, err := regexp.Compile(raw)
				if err != nil {
					return nil, nil, fmt.Errorf("%s:%d: bad want regexp %s: %v", path, i+1, q, err)
				}
				wants = append(wants, &want{file: path, line: target, re: re, raw: q})
			}
		}
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "import ("):
			inImports = true
		case inImports && trimmed == ")":
			inImports = false
		case inImports || strings.HasPrefix(trimmed, "import "):
			if q := wantStr.FindString(trimmed); q != "" {
				if p, err := strconv.Unquote(q); err == nil {
					imports = append(imports, p)
				}
			}
		}
	}
	return wants, imports, nil
}

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("analysistest: %v", err)
	}
	return string(b), nil
}
