// Package telemetry is a simtime negative fixture: it is not on the
// determinism-critical list, so wall-clock reads pass without
// annotations.
package telemetry

import "time"

func Stamp() time.Time {
	return time.Now() // non-critical package: legal
}
