// Package simgrid is a simtime fixture: its name matches the
// determinism-critical list, so wall-clock and global-rand calls are
// diagnosed unless annotated.
package simgrid

import (
	"math/rand"
	"time"
)

type Engine struct {
	now time.Time
	rng *rand.Rand
}

func NewEngine(seed int64) *Engine {
	// Constructing a private seeded stream is the sanctioned pattern.
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

func (e *Engine) Tick() time.Time {
	e.now = e.now.Add(time.Second) // duration arithmetic is fine
	return e.now
}

func (e *Engine) BadNow() time.Time {
	return time.Now() // want "wall-clock call time\\.Now in determinism-critical package simgrid"
}

func (e *Engine) BadSleep() {
	time.Sleep(time.Millisecond) // want "wall-clock call time\\.Sleep"
}

func (e *Engine) BadSince() time.Duration {
	return time.Since(e.now) // want "wall-clock call time\\.Since"
}

func (e *Engine) BadJitter() float64 {
	return rand.Float64() // want "global math/rand call rand\\.Float64"
}

func (e *Engine) BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand call rand\\.Shuffle"
}

func (e *Engine) GoodJitter() float64 {
	return e.rng.Float64() // per-engine seeded stream: legal
}

func (e *Engine) AnnotatedTrailing() time.Time {
	return time.Now() //lint:walltime fixture: telemetry-style read that never feeds sim state
}

func (e *Engine) AnnotatedAbove() time.Time {
	//lint:walltime fixture: telemetry-style read that never feeds sim state
	return time.Now()
}

func (e *Engine) BareAnnotation() time.Time {
	//lint:walltime
	// want:-1 "annotation needs a justification"
	return time.Now() // want "wall-clock call time\\.Now"
}
