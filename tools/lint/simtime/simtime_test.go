package simtime_test

import (
	"testing"

	"repro/tools/lint/analysistest"
	"repro/tools/lint/simtime"
)

func TestSimtime(t *testing.T) {
	analysistest.Run(t, simtime.Analyzer, "simgrid", "telemetry")
}
