// Package simtime implements the gae-lint analyzer that keeps wall
// time out of the simulation.
//
// Every determinism guarantee in this repo — tick-vs-event trace
// parity, replay-identical crash recovery, byte-identical snapshot
// exports — assumes simulation state advances only on sim time
// (Engine.Now(), vtime.Clock) and seeded randomness (Engine.Rand(),
// rand.New(rand.NewSource(seed))). A single time.Now() or global
// math/rand call in a critical package silently breaks replay.
//
// simtime therefore forbids, in the configured critical packages:
//
//   - wall-clock reads and timers: time.Now, time.Since, time.Until,
//     time.Sleep, time.After, time.AfterFunc, time.Tick, time.NewTimer,
//     time.NewTicker
//   - the process-global math/rand source: rand.Int, rand.Intn,
//     rand.Float64, rand.Perm, rand.Shuffle, rand.Seed, rand.Read, and
//     the rest of the top-level function set. Constructing a seeded
//     generator (rand.New, rand.NewSource, rand.NewZipf) stays legal.
//
// Legitimate wall-clock reads exist in critical packages — telemetry
// measures real pass/fsync/handler durations, and vtime's realClock is
// the one sanctioned bridge to the OS clock. Those sites carry a
//
//	//lint:walltime <justification>
//
// annotation on the call's line (or the line above), making every
// wall-clock read in a sim package a visible, audited decision. An
// annotation without a justification is itself a diagnostic.
package simtime

import (
	"go/ast"
	"go/types"

	"repro/tools/lint/analysis"
	"repro/tools/lint/lintutil"
)

// Analyzer is the simtime analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "simtime",
	Doc:  "forbid wall-clock and global math/rand use in determinism-critical packages (suppress with //lint:walltime <why>)",
	Run:  run,
}

var critical string

func init() {
	Analyzer.Flags.StringVar(&critical, "critical", lintutil.CriticalDefault,
		"comma-separated import paths of determinism-critical packages")
}

// AnnotationName is the suppression annotation simtime honors.
const AnnotationName = "walltime"

// wallTime lists the time-package functions that read or schedule on
// the wall clock. Conversions and arithmetic (time.Duration, time.Unix,
// Time.Add, ...) are pure and stay legal.
var wallTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRand lists the math/rand top-level functions backed by the
// process-global, non-replayable source.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "Read": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.MatchesCritical(critical, pass.Pkg.Path()) {
		return nil, nil
	}
	anns := lintutil.CollectAnnotations(pass, AnnotationName)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgName, ok := pkgQualifier(pass.TypesInfo, sel)
			if !ok {
				return true
			}
			var what string
			switch {
			case pkgName == "time" && wallTime[sel.Sel.Name]:
				what = "wall-clock call time." + sel.Sel.Name
			case pkgName == "math/rand" && globalRand[sel.Sel.Name]:
				what = "global math/rand call rand." + sel.Sel.Name
			default:
				return true
			}
			if anns.Suppressed(AnnotationName, sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s in determinism-critical package %s: use sim time (Engine.Now/vtime.Clock) or a seeded rand.Rand, or annotate with //lint:walltime <why>",
				what, pass.Pkg.Path())
			return true
		})
	}
	return nil, nil
}

// pkgQualifier resolves sel's X to a package name, returning the
// imported package's path — so aliased imports and dot-free selector
// shadowing are handled by the type checker, not string matching.
func pkgQualifier(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
