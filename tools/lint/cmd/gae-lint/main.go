// gae-lint machine-checks the source conventions the reproduction's
// guarantees rest on: sorted iteration before serialization (detorder),
// sim-time-only simulation state (simtime), and the *Locked
// mutex-suffix contract (lockheld).
//
// Standalone:
//
//	gae-lint -dir ../.. ./...            # what `make lint` runs
//	gae-lint -simtime ./internal/...     # one analyzer only
//
// As a vet tool (from the main module root, with gae-lint on PATH or
// built to a file):
//
//	go vet -vettool=/path/to/gae-lint ./...
package main

import (
	"os"

	"repro/tools/lint/driver"
	"repro/tools/lint/gaelint"
)

func main() {
	os.Exit(driver.Main(gaelint.Analyzers()...))
}
