// Package detorder implements the gae-lint analyzer that keeps Go's
// randomized map iteration order away from ordered sinks.
//
// The repo's parity and recovery guarantees compare byte streams:
// snapshot encodes, journal records, and scenario traces must come out
// identical run after run. Iterating a map in the middle of producing
// one silently randomizes the stream. The hand-maintained convention
// (condor/snapshot.go, core/persist.go, fairshare/snapshot.go,
// xmlrpc/encode.go all follow it) is: collect the keys, sort them, then
// iterate the sorted slice. detorder machine-checks that convention.
//
// A `range` over a map-typed expression is flagged when its loop
// effects can reach an ordered sink:
//
//   - the body writes to an io.Writer — a method call on a value
//     implementing io.Writer (bytes.Buffer, strings.Builder, files,
//     the journal) or a call passing one as an argument (fmt.Fprintf);
//     iteration order reaches the byte stream directly;
//   - the body sends on a channel — delivery order is observable;
//   - the body appends to a slice declared outside the loop, and that
//     slice is neither sorted afterwards (sort.* / slices.Sort*) nor
//     confined to the function — it escapes by being rooted in a
//     receiver/outer variable, returned, or passed to another call.
//     Unsorted map-ordered elements baked into an escaping slice are
//     exactly the "serialized later" hazard.
//
// The canonical key-collect idiom passes: the append lands in a local
// slice and a dominating sort follows before any use. Purely local
// effects (counters, map-to-map copies, deletes) pass too.
//
// Order-insensitive by design? Annotate the range statement:
//
//	//lint:unordered <justification>
//
// Limitations (documented, deliberate): the analysis is per-function
// and syntactic about sort domination — a sort anywhere after the loop
// in an enclosing statement list counts, and calls made from the loop
// body are not followed interprocedurally.
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/tools/lint/analysis"
	"repro/tools/lint/lintutil"
)

// Analyzer is the detorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc:  "flag map iteration whose order reaches an ordered sink (writer, channel, escaping slice) without a dominating sort (suppress with //lint:unordered <why>)",
	Run:  run,
}

// AnnotationName is the suppression annotation detorder honors.
const AnnotationName = "unordered"

var sinkPattern string

func init() {
	Analyzer.Flags.StringVar(&sinkPattern, "sinks", "",
		"optional regexp of extra callee names treated as ordered sinks inside map-range bodies")
}

func run(pass *analysis.Pass) (any, error) {
	var sinkRE *regexp.Regexp
	if sinkPattern != "" {
		re, err := regexp.Compile(sinkPattern)
		if err != nil {
			return nil, err
		}
		sinkRE = re
	}
	anns := lintutil.CollectAnnotations(pass, AnnotationName)
	c := &checker{pass: pass, anns: anns, sinkRE: sinkRE}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd.Body)
		}
	}
	return nil, nil
}

type checker struct {
	pass   *analysis.Pass
	anns   *lintutil.Annotations
	sinkRE *regexp.Regexp
}

// checkFunc walks one function body (function literals included — their
// bodies are part of the same syntax tree) and analyzes every range
// statement over a map.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := c.pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		c.checkMapRange(body, rs)
		return true
	})
}

func (c *checker) checkMapRange(funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	if c.anns.Suppressed(AnnotationName, rs.Pos()) {
		return
	}
	var appends []appendEffect
	diagnosed := false
	report := func(pos token.Pos, format string, args ...any) {
		if !diagnosed {
			c.pass.Reportf(pos, format, args...)
			diagnosed = true
		}
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if diagnosed {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			report(rs.Pos(), "map iteration order reaches a channel send at %s; iterate sorted keys instead (or annotate //lint:unordered <why>)",
				c.pass.Fset.Position(n.Pos()))
		case *ast.CallExpr:
			if name, bad := c.orderedSinkCall(n); bad {
				report(rs.Pos(), "map iteration order reaches ordered sink %s at %s; collect and sort keys first (or annotate //lint:unordered <why>)",
					name, c.pass.Fset.Position(n.Pos()))
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !c.isBuiltinAppend(call) || i >= len(n.Lhs) {
					continue
				}
				target := n.Lhs[i]
				root := rootIdent(target)
				if root == nil {
					continue
				}
				obj := c.objectOf(root)
				if obj == nil || declaredWithin(obj, rs.Body) {
					continue // per-iteration local accumulation
				}
				appends = append(appends, appendEffect{target: target, root: root, obj: obj})
			}
		}
		return true
	})
	if diagnosed {
		return
	}

	for _, eff := range appends {
		if c.sortedAfter(funcBody, rs, eff) {
			continue
		}
		if c.escapes(funcBody, rs, eff) {
			report(rs.Pos(),
				"map iteration appends to %s, which escapes this function without a dominating sort; collect keys, sort, then build it in key order (or annotate //lint:unordered <why>)",
				exprString(eff.target))
		}
	}
}

type appendEffect struct {
	target ast.Expr   // the full append target, e.g. st.Jobs
	root   *ast.Ident // its leftmost identifier, e.g. st
	obj    types.Object
}

// orderedSinkCall reports whether call writes through an io.Writer —
// as method receiver or argument — or matches the extra sink pattern.
func (c *checker) orderedSinkCall(call *ast.CallExpr) (string, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		// Package qualifiers (fmt.Fprintf) have no entry in Types;
		// their writer-typed arguments are caught below.
		if recvTV, ok := c.pass.TypesInfo.Types[sel.X]; ok && implementsWriter(recvTV.Type) {
			return exprString(sel), true
		}
		if c.sinkRE != nil && c.sinkRE.MatchString(sel.Sel.Name) {
			return exprString(sel), true
		}
	} else if id, ok := call.Fun.(*ast.Ident); ok {
		if c.sinkRE != nil && c.sinkRE.MatchString(id.Name) {
			return id.Name, true
		}
	}
	if c.isBuiltin(call) {
		return "", false
	}
	for _, arg := range call.Args {
		if tv, ok := c.pass.TypesInfo.Types[arg]; ok && implementsWriter(tv.Type) {
			return exprString(call.Fun), true
		}
	}
	return "", false
}

func (c *checker) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func (c *checker) isBuiltin(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func (c *checker) objectOf(id *ast.Ident) types.Object {
	if o := c.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return c.pass.TypesInfo.Defs[id]
}

// sortedAfter reports whether a sort call mentioning eff.target appears
// after the range statement in any statement list enclosing it — the
// canonical collect-sort-iterate shape, where the sort dominates every
// later use because the shape is strictly sequential.
func (c *checker) sortedAfter(funcBody *ast.BlockStmt, rs *ast.RangeStmt, eff appendEffect) bool {
	targetText := exprString(eff.target)
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !c.isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			if strings.Contains(exprString(arg), targetText) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes the sort and slices package ordering entry
// points, plus sort.Sort/Stable with any sort.Interface argument.
func (c *checker) isSortCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch pn.Imported().Path() {
	case "sort":
		switch sel.Sel.Name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		return strings.HasPrefix(sel.Sel.Name, "Sort")
	}
	return false
}

// escapes reports whether eff's slice leaves the function carrying its
// map-ordered contents: rooted in a non-local (receiver field, outer
// variable, named result), mentioned in a return statement, or passed
// to a non-sort call after the loop.
func (c *checker) escapes(funcBody *ast.BlockStmt, rs *ast.RangeStmt, eff appendEffect) bool {
	if !declaredWithin(eff.obj, funcBody) {
		return true // receiver field, package var, or outer-closure var
	}
	escaped := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if n.Pos() > rs.End() && c.mentionsObj(n, eff.obj) {
				escaped = true
			}
		case *ast.CallExpr:
			if n.Pos() <= rs.End() || c.isSortCall(n) || c.isBuiltin(n) {
				return true
			}
			for _, arg := range n.Args {
				if c.mentionsObj(arg, eff.obj) {
					escaped = true
					return false
				}
			}
		}
		return true
	})
	return escaped
}

func (c *checker) mentionsObj(n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && c.objectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() != token.NoPos && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// rootIdent returns the leftmost identifier of an lvalue chain
// (st.Jobs → st, keys → keys), or nil for anything stranger.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprString renders a (small) expression for diagnostics and textual
// sort matching.
func exprString(e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		b.WriteString(x.Name)
	case *ast.SelectorExpr:
		writeExpr(b, x.X)
		b.WriteByte('.')
		b.WriteString(x.Sel.Name)
	case *ast.IndexExpr:
		writeExpr(b, x.X)
		b.WriteString("[...]")
	case *ast.ParenExpr:
		writeExpr(b, x.X)
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExpr(b, x.X)
	case *ast.CallExpr:
		writeExpr(b, x.Fun)
		b.WriteString("(")
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, a)
		}
		b.WriteString(")")
	case *ast.UnaryExpr:
		b.WriteString(x.Op.String())
		writeExpr(b, x.X)
	default:
		b.WriteString("<expr>")
	}
}

// writerIface is a structurally built io.Writer, so the check needs no
// access to the io package object itself.
var writerIface = func() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", errType)),
		false)
	i := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, nil, "Write", sig),
	}, nil)
	i.Complete()
	return i
}()

func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, writerIface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		if types.Implements(types.NewPointer(t), writerIface) {
			return true
		}
	}
	return false
}
