// Package snapshot is a detorder fixture shaped like the repo's
// snapshot encoders: map state serialized into deterministic byte
// streams and wire-visible lists.
package snapshot

import (
	"fmt"
	"io"
	"sort"
)

type State struct {
	Pools map[string]int
}

// BadEncode streams map entries straight into the writer: the encoded
// bytes depend on Go's randomized map order.
func (s *State) BadEncode(w io.Writer) {
	for name, n := range s.Pools { // want "map iteration order reaches ordered sink"
		fmt.Fprintf(w, "%s=%d\n", name, n)
	}
}

// GoodEncode collects keys, sorts, then writes in key order.
func (s *State) GoodEncode(w io.Writer) {
	names := make([]string, 0, len(s.Pools))
	for name := range s.Pools {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s=%d\n", name, s.Pools[name])
	}
}

// BadList returns a wire-visible slice built in map order.
func (s *State) BadList() []string {
	var names []string
	for name := range s.Pools { // want "map iteration appends to names, which escapes this function without a dominating sort"
		names = append(names, name)
	}
	return names
}

// GoodList sorts the collected slice before it escapes.
func (s *State) GoodList() []string {
	var names []string
	for name := range s.Pools {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BadSend leaks map order through a channel.
func (s *State) BadSend(ch chan<- string) {
	for name := range s.Pools { // want "map iteration order reaches a channel send"
		ch <- name
	}
}

// LocalTally never escapes: order cannot be observed.
func (s *State) LocalTally() int {
	var parts []int
	total := 0
	for _, n := range s.Pools {
		parts = append(parts, n)
	}
	for _, p := range parts {
		total += p
	}
	return total
}

// Annotated is suppressed: the caller re-sorts downstream.
func (s *State) Annotated() []string {
	var names []string
	//lint:unordered fixture: the downstream consumer fully re-sorts
	for name := range s.Pools {
		names = append(names, name)
	}
	return names
}
