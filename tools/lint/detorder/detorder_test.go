package detorder_test

import (
	"testing"

	"repro/tools/lint/analysistest"
	"repro/tools/lint/detorder"
)

func TestDetorder(t *testing.T) {
	analysistest.Run(t, detorder.Analyzer, "snapshot")
}
