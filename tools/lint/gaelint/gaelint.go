// Package gaelint is the registry of the repo's analyzers: the single
// place cmd/gae-lint, the self-lint regression test, and any future
// checks agree on.
package gaelint

import (
	"repro/tools/lint/analysis"
	"repro/tools/lint/detorder"
	"repro/tools/lint/lockheld"
	"repro/tools/lint/simtime"
)

// Analyzers returns the full gae-lint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detorder.Analyzer,
		simtime.Analyzer,
		lockheld.Analyzer,
	}
}
