package gaelint_test

import (
	"testing"

	"repro/tools/lint/driver"
	"repro/tools/lint/gaelint"
)

// TestSelfLint runs the full suite over the main module. The committed
// tree must stay diagnostic-free: every legitimate exception is a
// visible //lint: annotation with a justification, so any new finding
// is either a real bug or a decision someone has to write down.
func TestSelfLint(t *testing.T) {
	findings, err := driver.Run("../..", []string{"./..."}, gaelint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
