// Package loader type-checks Go packages for gae-lint without
// golang.org/x/tools/go/packages. It shells out to `go list -deps
// -export -json`, which compiles dependency export data into the build
// cache, then parses the target packages from source and type-checks
// them with go/types using a gc-export-data importer fed from the
// listing — the same strategy go/packages uses, minus the parts this
// repo doesn't need (cgo, overlays, test variants, facts).
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one parsed, type-checked target package.
type Package struct {
	PkgPath   string
	Dir       string
	GoFiles   []string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir (a module root or any directory inside
// one) and returns the matched packages, parsed with comments and fully
// type-checked. Dependencies — including the standard library — resolve
// through export data produced by the `go list -export` invocation, so
// Load works offline and never consults a module proxy.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles type-checks a single package from an explicit file list,
// resolving imports through the supplied export-data map. The
// analysistest harness and the vettool protocol both land here: each
// hands the loader files and an import resolution table instead of a
// `go list` pattern.
func CheckFiles(fset *token.FileSet, pkgPath string, files []string, exports map[string]string, importMap map[string]string) (*Package, error) {
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	})
	dir := ""
	if len(files) > 0 {
		dir = filepath.Dir(files[0])
	}
	var names []string
	for _, f := range files {
		names = append(names, filepath.Base(f))
	}
	return checkAbs(fset, imp, pkgPath, dir, files, names)
}

func check(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	abs := make([]string, len(goFiles))
	for i, gf := range goFiles {
		abs[i] = filepath.Join(dir, gf)
	}
	return checkAbs(fset, imp, pkgPath, dir, abs, goFiles)
}

func checkAbs(fset *token.FileSet, imp types.Importer, pkgPath, dir string, absFiles, names []string) (*Package, error) {
	var files []*ast.File
	for _, af := range absFiles {
		f, err := parser.ParseFile(fset, af, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		GoFiles:   names,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// StdExports lists export data for the named standard-library packages
// and their dependencies. The analysistest harness uses it to resolve
// fixture imports without a surrounding module.
func StdExports(pkgs ...string) (map[string]string, error) {
	if len(pkgs) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Export,DepOnly",
	}, pkgs...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list std deps: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
