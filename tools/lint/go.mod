module repro/tools/lint

go 1.22
