// Package analysis is a dependency-free re-creation of the
// golang.org/x/tools/go/analysis API surface that gae-lint needs. The
// container this repo builds in has no module proxy access, so the
// linter cannot depend on x/tools; keeping the same shape (Analyzer,
// Pass, Diagnostic, per-analyzer flag sets) means the analyzers would
// compile against the real framework with only an import-path change
// if the dependency ever becomes available.
//
// Only the subset gae-lint uses is implemented: no Facts (all three
// analyzers are strictly package-local — the *Locked contract forbids
// exported *Locked methods, so the lock call graph never crosses a
// package boundary), no Requires/ResultOf chaining, no suggested fixes.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flag names.
	Name string

	// Doc is the analyzer's documentation, shown by gae-lint -help.
	Doc string

	// Flags holds analyzer-specific flags, registered by the driver
	// under the -Name.flag namespace.
	Flags flag.FlagSet

	// Run applies the analyzer to a single type-checked package.
	Run func(*Pass) (any, error)
}

// A Pass presents one package to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs it.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
