GO ?= go

.PHONY: build test test-race race-smoke bench bench-json bench-smoke load-smoke chaos-smoke obs-smoke sim fmt vet lint lint-test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Race-enabled smoke legs at reduced sizes: the serving, chaos, and
# observability harnesses under the race detector, with a
# race-instrumented gae-server for the spawning harnesses.
race-smoke:
	$(GO) build -race -o bin/gae-server-race ./cmd/gae-server
	$(GO) run -race ./cmd/gae-loadgen -clients 2 -ops 8 -data "$$(mktemp -d)" -json -
	$(GO) run -race ./cmd/gae-chaos -clients 2 -ops 6 -kills 1 -server bin/gae-server-race
	$(GO) run -race ./cmd/gae-obs-smoke -clients 2 -ops 8 -server bin/gae-server-race

# Full benchmark sweep (figures, ablations, micro, fairness).
bench:
	$(GO) test -run xxx -bench . -benchmem .

# One-iteration sweep parsed into the repo's perf-trajectory JSON
# (ns/op, allocs/op, and b.ReportMetric custom metrics per benchmark).
# Bump BENCH_OUT per PR so the trajectory accumulates.
BENCH_OUT ?= BENCH_7.json
bench-json:
	$(GO) run ./cmd/gae-benchjson -out $(BENCH_OUT) -timeout 150m

# Short-run scenario smoke: exercises the discrete-event engine end to
# end (tick and event drivers) without the full sweep. The million-job
# scenario runs at its scaled-down CI size (100k jobs, 10k machines);
# the full 1M-job scale is bench-json territory.
bench-smoke:
	GAE_SCENARIO_SCALE=smoke $(GO) test -run xxx -bench Scenario -benchtime 1x .
	$(GO) test -run MillionSmokeWallBudget -count=1 .

# Closed-loop serving smoke: the gae-loadgen mixed workload against an
# embedded durable deployment — exits non-zero if any operation fails.
load-smoke:
	$(GO) run ./cmd/gae-loadgen -clients 4 -ops 32 -data "$$(mktemp -d)" -json -

# Exactly-once chaos smoke: concurrent mutating load through a
# fault-injecting transport (drops, ack losses, duplicate deliveries)
# against a real gae-server that is SIGKILLed and restarted mid-load.
# Exits non-zero if any acked op is lost or applied twice.
chaos-smoke:
	$(GO) run ./cmd/gae-chaos -clients 3 -ops 12 -kills 2

# Observability smoke: boots a gae-server, drives a loadgen burst, and
# fails unless every required /metrics family is live, /healthz answers,
# and /debug/rpcs carries the burst's trace spans.
obs-smoke:
	$(GO) run ./cmd/gae-obs-smoke

# Replay a fairness scenario; override with e.g.
#   make sim SCENARIO=bursty-tenant SIMFLAGS=-fairshare=false
SCENARIO ?= starvation-recovery
SIMFLAGS ?=
sim:
	$(GO) run ./cmd/gae-sim -scenario $(SCENARIO) $(SIMFLAGS) -output -

fmt:
	gofmt -w $$(find . -name '*.go' -not -path './tools/lint/*/testdata/*')

vet:
	$(GO) vet ./...

# gae-lint: the repo's own analyzers (detorder, simtime, lockheld) over
# the main module. Lives in its own module so the main go.mod stays
# dependency-free; `make lint` must exit 0 on the committed tree.
lint:
	cd tools/lint && $(GO) run ./cmd/gae-lint -dir ../.. ./...

# The analyzers' own test suite: per-analyzer fixtures plus the
# self-lint regression test (equivalent to `make lint`, as a test).
lint-test:
	cd tools/lint && $(GO) vet ./... && $(GO) test ./...
