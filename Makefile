GO ?= go

.PHONY: build test bench sim fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full benchmark sweep (figures, ablations, micro, fairness).
bench:
	$(GO) test -run xxx -bench . -benchmem .

# Replay a fairness scenario; override with e.g.
#   make sim SCENARIO=bursty-tenant SIMFLAGS=-fairshare=false
SCENARIO ?= starvation-recovery
SIMFLAGS ?=
sim:
	$(GO) run ./cmd/gae-sim -scenario $(SCENARIO) $(SIMFLAGS) -output -

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
