// Package repro_test is the benchmark harness of the reproduction: one
// benchmark per measured artifact of the paper (Figures 5, 6 and 7), a
// set of ablation benches for the design choices DESIGN.md calls out, and
// micro-benchmarks of the substrate hot paths (XML-RPC codec, Clarens
// dispatch, ClassAd matchmaking, scheduler site selection).
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Figure-level benches attach their headline result via b.ReportMetric —
// e.g. BenchmarkFigure5 reports mean_err_% (paper: 13.53), and
// BenchmarkFigure7 reports steered_s (paper: 369) and unsteered_s.
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/clarens"
	"repro/internal/classad"
	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/estimator"
	"repro/internal/experiments"
	"repro/internal/loadgen"
	"repro/internal/monalisa"
	"repro/internal/quota"
	"repro/internal/replica"
	"repro/internal/scheduler"
	"repro/internal/simgrid"
	"repro/internal/workload"
	"repro/internal/xmlrpc"
	"repro/pkg/gae"
)

// --- Figure 5: runtime-estimator accuracy -------------------------------

func BenchmarkFigure5(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(experiments.DefaultFig5())
		if err != nil {
			b.Fatal(err)
		}
		mean = res.MeanError
	}
	b.ReportMetric(mean, "mean_err_%")
}

// --- Figure 6: Job Monitoring Service response times ---------------------

func BenchmarkFigure6(b *testing.B) {
	for _, clients := range experiments.DefaultFig6().ClientCounts {
		b.Run(fmt.Sprintf("clients-%d", clients), func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig6(experiments.Fig6Config{
					ClientCounts:      []int{clients},
					RequestsPerClient: 10,
					Jobs:              10,
				})
				if err != nil {
					b.Fatal(err)
				}
				avg = res.AvgMillis[0]
			}
			b.ReportMetric(avg, "avg_ms")
		})
	}
}

// --- Figure 7: steering rescue -------------------------------------------

func BenchmarkFigure7(b *testing.B) {
	var steered, unsteered, moved float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(experiments.DefaultFig7())
		if err != nil {
			b.Fatal(err)
		}
		steered = res.SteeredDone.Seconds()
		unsteered = res.UnsteeredDone.Seconds()
		moved = res.MovedAt.Seconds()
	}
	b.ReportMetric(steered, "steered_s")
	b.ReportMetric(unsteered, "unsteered_s")
	b.ReportMetric(moved, "moved_at_s")
}

// --- Ablation: estimator statistic (mean vs regression vs last) ----------

func BenchmarkAblationEstimatorStatistic(b *testing.B) {
	for _, stat := range []estimator.Statistic{
		estimator.StatAuto, estimator.StatMean, estimator.StatRegression,
		estimator.StatLast, estimator.StatMedian,
	} {
		b.Run(stat.String(), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig5(experiments.Fig5Config{
					HistoryJobs: 100, TestJobs: 20, Seed: 216, Statistic: stat,
				})
				if err != nil {
					b.Fatal(err)
				}
				mean = res.MeanError
			}
			b.ReportMetric(mean, "mean_err_%")
		})
	}
}

// --- Ablation: similarity template granularity ---------------------------

func BenchmarkAblationSimilarityTemplate(b *testing.B) {
	cases := []struct {
		name      string
		templates []estimator.Template
	}{
		{"full-search", nil},
		{"queue-partition-nodes", []estimator.Template{
			{estimator.AttrQueue, estimator.AttrPartition, estimator.AttrNodes},
		}},
		{"queue-only", []estimator.Template{{estimator.AttrQueue}}},
		{"universal", []estimator.Template{{}}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig5(experiments.Fig5Config{
					HistoryJobs: 100, TestJobs: 20, Seed: 216, Templates: c.templates,
				})
				if err != nil {
					b.Fatal(err)
				}
				mean = res.MeanError
			}
			b.ReportMetric(mean, "mean_err_%")
		})
	}
}

// --- Ablation: steering poll period → completion time --------------------

func BenchmarkAblationSteeringPollPeriod(b *testing.B) {
	for _, poll := range []time.Duration{5 * time.Second, 10 * time.Second, 30 * time.Second, 60 * time.Second} {
		b.Run(poll.String(), func(b *testing.B) {
			var steered float64
			for i := 0; i < b.N; i++ {
				cfg := experiments.DefaultFig7()
				cfg.PollInterval = poll
				cfg.SampleEvery = 10 * time.Second
				res, err := experiments.Fig7(cfg)
				if err != nil {
					b.Fatal(err)
				}
				steered = res.SteeredDone.Seconds()
			}
			b.ReportMetric(steered, "steered_s")
		})
	}
}

// --- Ablation: steering on vs off (the paper's central comparison) -------

func BenchmarkAblationSteeringOnOff(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "steering-on"
		if !on {
			name = "steering-off"
		}
		b.Run(name, func(b *testing.B) {
			var done float64
			for i := 0; i < b.N; i++ {
				cfg := experiments.DefaultFig7()
				cfg.DisableSteering = !on
				cfg.SampleEvery = 10 * time.Second
				res, err := experiments.Fig7(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if on {
					done = res.SteeredDone.Seconds()
				} else {
					// Without steering the watched job is the site-A crawl.
					done = res.UnsteeredDone.Seconds()
				}
			}
			b.ReportMetric(done, "completion_s")
		})
	}
}

// --- Micro: XML-RPC codec -------------------------------------------------

var benchStruct = map[string]any{
	"status": "running", "priority": 5, "cpu": 123.5,
	"owner": "alice", "env": "MODE=bench;N=1",
	"flags": []any{true, false, true},
	"inner": map[string]any{"site": "caltech", "node": "n-17"},
}

func BenchmarkXMLRPCEncode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := xmlrpc.EncodeRequest("jobmon.info", []any{"siteA", 42, benchStruct}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXMLRPCDecode(b *testing.B) {
	raw, err := xmlrpc.EncodeRequest("jobmon.info", []any{"siteA", 42, benchStruct})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xmlrpc.DecodeRequest(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro: Clarens dispatch (HTTP + session + ACL + codec) ---------------

func BenchmarkClarensDispatch(b *testing.B) {
	srv := clarens.NewServer("bench", nil)
	srv.Users.Add("u", "pw")
	srv.RegisterService("echo", "bench", map[string]xmlrpc.Handler{
		"ping": func(context.Context, []any) (any, error) { return "pong", nil },
	})
	srv.ACL.Allow("authenticated", "echo.*")
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := clarens.NewClient(hs.URL)
	ctx := context.Background()
	if err := c.Login(ctx, "u", "pw"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(ctx, "echo.ping"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro: ClassAd matchmaking -------------------------------------------

func BenchmarkClassAdMatch(b *testing.B) {
	job := classad.New().Set("ImageSize", 100).Set("Owner", "alice")
	job.MustSetExpr("Requirements", `TARGET.Disk >= MY.ImageSize && TARGET.Arch == "x86" && TARGET.LoadAvg < 0.5`)
	machine := classad.New().Set("Disk", 500).Set("Arch", "x86").Set("LoadAvg", 0.25)
	machine.MustSetExpr("Requirements", "TARGET.ImageSize <= 200")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !classad.Match(job, machine) {
			b.Fatal("match failed")
		}
	}
}

// --- Micro: scheduler site selection --------------------------------------

func BenchmarkSchedulerSelectSite(b *testing.B) {
	g := simgrid.NewGrid(time.Second, 1)
	repo := monalisa.NewRepository()
	sched := scheduler.New(scheduler.Config{Grid: g, Monitor: repo})
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("site%d", i)
		site := g.AddSite(name)
		pool := condor.NewPool(name, g, site)
		pool.AddMachine(site.AddNode(g.Engine, name+"-n", 1, simgrid.ConstantLoad(float64(i)/10)), nil)
		sched.RegisterSite(name, &scheduler.SiteServices{
			Pool:    pool,
			Runtime: estimator.NewRuntimeEstimator(estimator.NewHistory(0)),
		})
	}
	monalisa.NewFarmMonitor(repo, g, 5*time.Second)
	g.Engine.RunFor(10 * time.Second)
	task := scheduler.TaskPlan{ID: "t", CPUSeconds: 100, Queue: "q", ReqHours: 0.1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sched.SelectSite(task, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro: runtime estimation over a large history -----------------------

func BenchmarkRuntimeEstimate(b *testing.B) {
	trace := workload.ParagonTrace(workload.ParagonConfig{Jobs: 1000, Seed: 3})
	h := estimator.NewHistory(0)
	for _, r := range trace {
		if err := h.Add(r); err != nil {
			b.Fatal(err)
		}
	}
	e := estimator.NewRuntimeEstimator(h)
	target := trace[500]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Estimate(target); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro: simulation engine throughput -----------------------------------

func BenchmarkSimEngineStep(b *testing.B) {
	g := simgrid.NewGrid(time.Second, 1)
	site := g.AddSite("s")
	pool := condor.NewPool("s", g, site)
	for i := 0; i < 16; i++ {
		n := site.AddNode(g.Engine, fmt.Sprintf("n%d", i), 1, simgrid.ConstantLoad(0.2))
		pool.AddMachine(n, nil)
		n.Place(simgrid.NewTask(fmt.Sprintf("t%d", i), 1e12, nil))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Engine.Step()
	}
}

// --- Micro: condor negotiation cycle ---------------------------------------

func BenchmarkCondorNegotiation(b *testing.B) {
	g := simgrid.NewGrid(time.Second, 1)
	site := g.AddSite("s")
	pool := condor.NewPool("s", g, site)
	for i := 0; i < 32; i++ {
		pool.AddMachine(site.AddNode(g.Engine, fmt.Sprintf("n%d", i), 1, simgrid.IdleLoad()), nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ids := make([]int, 32)
		for j := range ids {
			ad := classad.New().
				Set(condor.AttrOwner, "u").
				Set(condor.AttrCpuSeconds, 1.0)
			id, err := pool.Submit(ad)
			if err != nil {
				b.Fatal(err)
			}
			ids[j] = id
		}
		b.StartTimer()
		g.Engine.Step() // one negotiation cycle matches 32 jobs
		b.StopTimer()
		g.Engine.RunFor(3 * time.Second) // drain completions
		b.StartTimer()
	}
}

// --- Scenario: end-to-end simulation throughput, tick vs event driver ------
//
// The discrete-event engine's headline numbers. Each scenario runs the
// identical seeded workload under the legacy fixed-tick driver and the
// event driver (the equivalence suite pins that their traces are
// identical) and reports simulated-seconds-per-wall-second and the number
// of engine events dispatched. Sparse long-horizon is the case the
// event engine exists for: the tick driver pays for every one of the
// million boundaries, the event driver only for the ~hundred that carry
// work — BENCH_3.json records the ≥10x gap.

func scenarioDrivers(b *testing.B, simSeconds float64, run func(d simgrid.Driver) *simgrid.Engine) {
	for _, d := range []struct {
		name   string
		driver simgrid.Driver
	}{
		{"driver=tick", simgrid.DriverTick},
		{"driver=event", simgrid.DriverEvent},
	} {
		b.Run(d.name, func(b *testing.B) {
			var events int64
			for i := 0; i < b.N; i++ {
				events = run(d.driver).Events()
			}
			b.ReportMetric(simSeconds*float64(b.N)/b.Elapsed().Seconds(), "sim_s/wall_s")
			b.ReportMetric(float64(events), "events")
		})
	}
}

func BenchmarkScenarioSparseLongHorizon(b *testing.B) {
	// A trickle of batch jobs across a monitored three-site grid over
	// ~11.5 simulated days: long stretches where nothing happens at all.
	const horizon = 1_000_000.0
	scenarioDrivers(b, horizon, func(d simgrid.Driver) *simgrid.Engine {
		g := simgrid.NewGrid(time.Second, 1)
		g.Engine.SetDriver(d)
		repo := monalisa.NewRepository()
		var pools []*condor.Pool
		for s := 0; s < 3; s++ {
			name := fmt.Sprintf("site%d", s)
			site := g.AddSite(name)
			pool := condor.NewPool(name, g, site)
			for i := 0; i < 8; i++ {
				pool.AddMachine(site.AddNode(g.Engine, fmt.Sprintf("%s-n%d", name, i), 1, simgrid.ConstantLoad(0.2)), nil)
			}
			pools = append(pools, pool)
		}
		monalisa.NewFarmMonitor(repo, g, 600*time.Second)
		for j := 0; j < 24; j++ {
			j := j
			g.Engine.Schedule(time.Duration(j)*40000*time.Second, func(time.Time) {
				ad := classad.New().
					Set(condor.AttrOwner, "trickle").
					Set(condor.AttrCpuSeconds, 3000.0)
				if _, err := pools[j%len(pools)].Submit(ad); err != nil {
					b.Error(err)
				}
			})
		}
		g.Engine.RunFor(time.Duration(horizon) * time.Second)
		return g.Engine
	})
}

func BenchmarkScenarioDenseBurst(b *testing.B) {
	// A thousand short jobs slam one 64-machine pool at once: nearly every
	// boundary carries work, so this bounds the event engine's overhead in
	// the regime the tick loop was built for.
	const horizon = 2_000.0
	scenarioDrivers(b, horizon, func(d simgrid.Driver) *simgrid.Engine {
		g := simgrid.NewGrid(time.Second, 1)
		g.Engine.SetDriver(d)
		site := g.AddSite("s")
		pool := condor.NewPool("s", g, site)
		for i := 0; i < 64; i++ {
			pool.AddMachine(site.AddNode(g.Engine, fmt.Sprintf("n%02d", i), 1, simgrid.IdleLoad()), nil)
		}
		for j := 0; j < 1000; j++ {
			ad := classad.New().
				Set(condor.AttrOwner, fmt.Sprintf("u%d", j%7)).
				Set(condor.AttrCpuSeconds, float64(30+j%90))
			if _, err := pool.Submit(ad); err != nil {
				b.Fatal(err)
			}
		}
		g.Engine.RunFor(time.Duration(horizon) * time.Second)
		return g.Engine
	})
}

func BenchmarkScenarioNetworkContention(b *testing.B) {
	// Staging storms on a shared backbone: four leaf sites push bursts of
	// replicas through one hub, 12 flows per burst contending on few
	// links, with background utilization swinging between bursts. Bursts
	// are separated by long idle stretches, so the tick driver pays for
	// every boundary while the event driver pays only for flow
	// perturbations — the network-flow analogue of SparseLongHorizon.
	const horizon = 200_000.0
	scenarioDrivers(b, horizon, func(d simgrid.Driver) *simgrid.Engine {
		g := simgrid.NewGrid(time.Second, 1)
		g.Engine.SetDriver(d)
		leaves := []string{"leaf0", "leaf1", "leaf2", "leaf3"}
		hub := g.AddSite("hub")
		for i, name := range leaves {
			leaf := g.AddSite(name)
			g.Network.Connect(name, "hub", simgrid.Link{BandwidthMBps: 25, Latency: 50 * time.Millisecond})
			for f := 0; f < 3; f++ {
				leaf.Storage().Put(fmt.Sprintf("d%d-%d", i, f), float64(200+50*f))
			}
		}
		completed := 0
		for burst := 0; burst < 20; burst++ {
			at := time.Duration(burst) * 10_000 * time.Second
			g.Engine.Schedule(at, func(time.Time) {
				for i, name := range leaves {
					src := g.Site(name).Storage()
					for f := 0; f < 3; f++ {
						if _, err := src.Replicate(g.Network, hub.Storage(), fmt.Sprintf("d%d-%d", i, f),
							func() { completed++ }); err != nil {
							b.Error(err)
						}
					}
				}
			})
			// Background traffic shifts mid-burst and clears afterwards,
			// re-deriving every in-flight deadline both times.
			g.Engine.Schedule(at+20*time.Second, func(time.Time) {
				for _, name := range leaves {
					if err := g.Network.SetUtilization(name, "hub", 0.6); err != nil {
						b.Error(err)
					}
				}
			})
			g.Engine.Schedule(at+400*time.Second, func(time.Time) {
				for _, name := range leaves {
					if err := g.Network.SetUtilization(name, "hub", 0); err != nil {
						b.Error(err)
					}
				}
			})
			// Hub storage must be empty for the next burst to re-transfer.
			g.Engine.Schedule(at+5_000*time.Second, func(time.Time) {
				for _, f := range hub.Storage().List() {
					hub.Storage().Delete(f.Name)
				}
			})
		}
		g.Engine.RunFor(time.Duration(horizon) * time.Second)
		if completed != 20*len(leaves)*3 {
			b.Fatalf("completed %d transfers, want %d", completed, 20*len(leaves)*3)
		}
		return g.Engine
	})
}

// --- Ablation: history size → estimator accuracy (learning curve) ---------

func BenchmarkAblationHistorySize(b *testing.B) {
	for _, n := range []int{10, 25, 50, 100, 200, 400} {
		b.Run(fmt.Sprintf("history-%d", n), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig5(experiments.Fig5Config{
					HistoryJobs: n, TestJobs: 20, Seed: 216,
				})
				if err != nil {
					b.Fatal(err)
				}
				mean = res.MeanError
			}
			b.ReportMetric(mean, "mean_err_%")
		})
	}
}

// --- Ablation: replica selection (closest vs first-listed) ----------------

func BenchmarkAblationReplicaSelection(b *testing.B) {
	build := func() (*simgrid.Grid, *replica.Catalog, *estimator.TransferEstimator) {
		g := simgrid.NewGrid(time.Second, 1)
		for _, n := range []string{"dst", "near", "far"} {
			g.AddSite(n)
		}
		g.Network.Connect("dst", "near", simgrid.Link{BandwidthMBps: 100})
		g.Network.Connect("dst", "far", simgrid.Link{BandwidthMBps: 2})
		g.Network.Connect("near", "far", simgrid.Link{BandwidthMBps: 2})
		cat := replica.NewCatalog()
		cat.Register("data", "far", 500)
		cat.Register("data", "near", 500)
		return g, cat, &estimator.TransferEstimator{Network: g.Network}
	}
	b.Run("closest-replica", func(b *testing.B) {
		_, cat, te := build()
		var sec float64
		for i := 0; i < b.N; i++ {
			_, s, err := cat.Best(te, "data", "dst")
			if err != nil {
				b.Fatal(err)
			}
			sec = s
		}
		b.ReportMetric(sec, "transfer_s")
	})
	b.Run("first-listed", func(b *testing.B) {
		g, cat, te := build()
		_ = g
		var sec float64
		for i := 0; i < b.N; i++ {
			locs := cat.Locations("data")
			est, err := te.Estimate(locs[0].Site, "dst", locs[0].SizeMB)
			if err != nil {
				b.Fatal(err)
			}
			sec = est.Seconds
		}
		b.ReportMetric(sec, "transfer_s")
	})
}

// --- Ablation: optimizer preference (fast vs cheap) ------------------------

func BenchmarkAblationOptimizerPreference(b *testing.B) {
	// Compare the quota cost of running a 283-cpu-second job at the site
	// each preference would choose, given a cheap-but-slower and a
	// fast-but-pricier alternative. (The steering integration of the two
	// preferences is covered by steering's unit tests; this bench reports
	// the resulting credit cost of each policy.)
	q := quota.NewService()
	q.SetRate("fastsite", quota.Rate{CPUSecond: 0.10})
	q.SetRate("cheapsite", quota.Rate{CPUSecond: 0.01})
	b.Run("cheap", func(b *testing.B) {
		var cost float64
		for i := 0; i < b.N; i++ {
			_, c, err := q.CheapestSite([]string{"fastsite", "cheapsite"}, 283, 0)
			if err != nil {
				b.Fatal(err)
			}
			cost = c
		}
		b.ReportMetric(cost, "credits")
	})
	b.Run("fast", func(b *testing.B) {
		var cost float64
		for i := 0; i < b.N; i++ {
			c, err := q.Cost("fastsite", 283, 0)
			if err != nil {
				b.Fatal(err)
			}
			cost = c
		}
		b.ReportMetric(cost, "credits")
	})
}

// --- Ablation: checkpointing (the paper's stated improvement) --------------
//
// "The job can be completed even quicker than 369 seconds if it is
// checkpoint-able and flocking is enabled" (§7): the migrated job resumes
// from its accumulated CPU work instead of restarting at zero.

func BenchmarkAblationCheckpointing(b *testing.B) {
	for _, ckpt := range []bool{false, true} {
		name := "restart"
		if ckpt {
			name = "checkpoint"
		}
		b.Run(name, func(b *testing.B) {
			var steered float64
			for i := 0; i < b.N; i++ {
				cfg := experiments.DefaultFig7()
				cfg.Checkpointable = ckpt
				cfg.SampleEvery = 10 * time.Second
				res, err := experiments.Fig7(cfg)
				if err != nil {
					b.Fatal(err)
				}
				steered = res.SteeredDone.Seconds()
			}
			b.ReportMetric(steered, "steered_s")
		})
	}
}

// --- Serving: closed-loop RPC throughput and latency ------------------------
//
// BenchmarkServing runs the gae-loadgen workload (submit / monitor /
// steer / state / weather) against one deployment in the four serving
// configurations the durability work introduces: local vs XML-RPC
// transport crossed with in-memory vs durable (journaling) state. Each
// variant reports closed-loop rps and p50/p95/p99 operation latency, so
// BENCH_5.json records both the wire cost and the journaling cost.

func BenchmarkServing(b *testing.B) {
	for _, transport := range []string{"local", "xmlrpc"} {
		for _, store := range []string{"memory", "durable"} {
			b.Run("transport="+transport+"/store="+store, func(b *testing.B) {
				ctx := context.Background()
				g := core.New(core.Config{
					Seed: 11,
					Sites: []core.SiteSpec{
						{Name: "siteA", Nodes: 4, Load: simgrid.IdleLoad(), CostPerCPUSecond: 0.05},
						{Name: "siteB", Nodes: 4, Load: simgrid.ConstantLoad(0.3), CostPerCPUSecond: 0.02},
					},
					Links: []core.LinkSpec{{A: "siteA", B: "siteB", MBps: 10, LatencyMS: 50}},
					Users: []core.UserSpec{{Name: "alice", Password: "pw", Credits: 1e9, Admin: true}},
				})
				if store == "durable" {
					s, err := durable.Open(b.TempDir())
					if err != nil {
						b.Fatal(err)
					}
					defer s.Close()
					if err := g.AttachStore(s); err != nil {
						b.Fatal(err)
					}
				}
				dial := func(context.Context, int) (*gae.Client, error) {
					return g.Client("alice"), nil
				}
				if transport == "xmlrpc" {
					url, err := g.Start("127.0.0.1:0")
					if err != nil {
						b.Fatal(err)
					}
					defer g.Stop()
					dial = func(ctx context.Context, _ int) (*gae.Client, error) {
						return gae.Dial(ctx, url, gae.WithCredentials("alice", "pw"))
					}
				}
				var res loadgen.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := loadgen.Run(ctx, loadgen.Config{
						Clients: 4, Ops: 32, Seed: int64(i) + 1,
						Prefix: fmt.Sprintf("bench%d", i),
					}, dial)
					if err != nil {
						b.Fatal(err)
					}
					if r.Errors > 0 {
						b.Fatalf("%d of %d operations failed: %+v", r.Errors, r.Ops, r.ByOp)
					}
					res = r
				}
				b.ReportMetric(res.RPS, "rps")
				b.ReportMetric(res.P50Millis, "p50_ms")
				b.ReportMetric(res.P95Millis, "p95_ms")
				b.ReportMetric(res.P99Millis, "p99_ms")
			})
		}
	}
}

// --- Fair-share fairness (multi-tenant arbitration) ------------------------

// BenchmarkFairShare replays the built-in multi-tenant scenarios with the
// fair-share subsystem arbitrating and reports Jain's fairness index over
// entitlement-normalized completed CPU-seconds (1 = perfectly
// weight-proportional) plus the worst-off tenant's share. Equal-weight
// scenarios should report jain_index ≥ 0.9.
func BenchmarkFairShare(b *testing.B) {
	for _, sc := range []string{
		"bursty-tenant", "starvation-recovery", "weighted-groups", "federated-flocking",
	} {
		b.Run(sc, func(b *testing.B) {
			var jain, minShare float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fairness(experiments.FairnessConfig{
					Scenario: sc, FairShare: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				jain, minShare = res.JainIndex, res.MinShare
			}
			b.ReportMetric(jain, "jain_index")
			b.ReportMetric(minShare, "min_share")
		})
	}
}

// BenchmarkAblationFairShareOff is the control: the same scenarios under
// the seed's static-priority/FIFO negotiation. The bursty tenant drags
// the Jain index down and the priority flood starves the meek tenant
// outright (min_share 0) — the measurable starvation the fair-share
// subsystem removes.
func BenchmarkAblationFairShareOff(b *testing.B) {
	for _, sc := range []string{"bursty-tenant", "starvation-recovery"} {
		b.Run(sc, func(b *testing.B) {
			var jain, minShare float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fairness(experiments.FairnessConfig{
					Scenario: sc, FairShare: false,
				})
				if err != nil {
					b.Fatal(err)
				}
				jain, minShare = res.JainIndex, res.MinShare
			}
			b.ReportMetric(jain, "jain_index")
			b.ReportMetric(minShare, "min_share")
		})
	}
}
