// Command gae-steer is the advanced user's console: it lists, inspects,
// and controls jobs through a running gae-server's Steering Service,
// using the typed gae.Client over the XML-RPC transport.
//
// Examples:
//
//	gae-steer -user alice -pass secret jobs
//	gae-steer -user alice -pass secret status analysis-1 reco
//	gae-steer -user alice -pass secret pause  analysis-1 reco
//	gae-steer -user alice -pass secret move   analysis-1 reco nust
//	gae-steer -user alice -pass secret setprio analysis-1 reco 9
//	gae-steer -user alice -pass secret notifications
//	gae-steer -user alice -pass secret preference cheap
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"repro/pkg/gae"
)

func main() {
	var (
		server  = flag.String("server", "http://localhost:8080", "Clarens endpoint")
		user    = flag.String("user", "alice", "user name")
		pass    = flag.String("pass", "secret", "password")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	ctx := context.Background()
	c, err := gae.Dial(ctx, *server,
		gae.WithCredentials(*user, *pass), gae.WithTimeout(*timeout))
	if err != nil {
		log.Fatalf("gae-steer: %v", err)
	}
	defer c.Close(ctx)
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "jobs":
		jobs, err := c.Jobs(ctx)
		fatalIf(err)
		for _, j := range jobs {
			fmt.Println(j)
		}
	case "status":
		needRef(rest)
		st, err := c.TaskStatus(ctx, rest[0], rest[1])
		fatalIf(err)
		printStatus(st)
	case "kill", "pause", "resume":
		needRef(rest)
		var err error
		switch cmd {
		case "kill":
			err = c.Kill(ctx, rest[0], rest[1])
		case "pause":
			err = c.Pause(ctx, rest[0], rest[1])
		case "resume":
			err = c.Resume(ctx, rest[0], rest[1])
		}
		fatalIf(err)
		fmt.Printf("%s ok\n", cmd)
	case "move":
		needRef(rest)
		site := ""
		if len(rest) >= 3 {
			site = rest[2]
		}
		res, err := c.Move(ctx, rest[0], rest[1], site)
		fatalIf(err)
		fmt.Printf("moved to %s (condor id %d)\n", res.Site, res.CondorID)
	case "setprio":
		if len(rest) != 3 {
			usage()
		}
		prio, err := strconv.Atoi(rest[2])
		fatalIf(err)
		fatalIf(c.SetPriority(ctx, rest[0], rest[1], prio))
		fmt.Println("priority set")
	case "estimate":
		needRef(rest)
		sec, err := c.EstimateCompletion(ctx, rest[0], rest[1])
		fatalIf(err)
		fmt.Printf("estimated completion in %.0f s\n", sec)
	case "notifications":
		ns, err := c.Notifications(ctx)
		fatalIf(err)
		if len(ns) == 0 {
			fmt.Println("(none)")
		}
		for _, n := range ns {
			fmt.Printf("[%s] %s\n", n.Kind, n.Message)
		}
	case "preference":
		var pref string
		var err error
		if len(rest) == 0 {
			pref, err = c.Preference(ctx)
		} else {
			pref, err = c.SetPreference(ctx, rest[0])
		}
		fatalIf(err)
		fmt.Printf("optimizer preference: %s\n", pref)
	default:
		usage()
	}
}

func needRef(rest []string) {
	if len(rest) < 2 {
		usage()
	}
}

func fatalIf(err error) {
	if err != nil {
		log.Fatalf("gae-steer: %v", err)
	}
}

func printStatus(st gae.SteeringStatus) {
	fmt.Printf("plan: %s\ntask: %s\nowner: %s\nsite: %s\ncondorid: %d\nstate: %s\nattempts: %d\n",
		st.Plan, st.Task, st.Owner, st.Site, st.CondorID, st.State, st.Attempts)
	if st.Job == nil {
		return
	}
	j := st.Job
	fmt.Printf("job:\n  status: %s\n  node: %s\n  progress: %.2f\n  queue_position: %d\n",
		j.Status, j.Node, j.Progress, j.QueuePosition)
	fmt.Printf("  wallclock_seconds: %.0f\n  elapsed_seconds: %.0f\n  remaining_estimate: %.0f\n",
		j.WallclockSeconds, j.ElapsedSeconds, j.RemainingEstimate)
	fmt.Printf("  cpu_seconds: %.0f\n  input_mb: %.0f\n  output_mb: %.0f\n",
		j.CPUSeconds, j.InputMB, j.OutputMB)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: gae-steer [flags] <command> [args]

commands:
  jobs                          list your watched tasks
  status <plan> <task>          assignment + live monitoring info
  kill|pause|resume <plan> <task>
  move <plan> <task> [site]     redirect (scheduler picks site if omitted)
  setprio <plan> <task> <n>
  estimate <plan> <task>        expected seconds to completion
  notifications                 drain steering notifications
  preference [fast|cheap]       read or set the optimizer preference
`)
	flag.PrintDefaults()
	os.Exit(2)
}
