// Command gae-steer is the advanced user's console: it lists, inspects,
// and controls jobs through a running gae-server's Steering Service.
//
// Examples:
//
//	gae-steer -user alice -pass secret jobs
//	gae-steer -user alice -pass secret status analysis-1 reco
//	gae-steer -user alice -pass secret pause  analysis-1 reco
//	gae-steer -user alice -pass secret move   analysis-1 reco nust
//	gae-steer -user alice -pass secret setprio analysis-1 reco 9
//	gae-steer -user alice -pass secret notifications
//	gae-steer -user alice -pass secret preference cheap
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"

	"repro/internal/clarens"
)

func main() {
	var (
		server = flag.String("server", "http://localhost:8080", "Clarens endpoint")
		user   = flag.String("user", "alice", "user name")
		pass   = flag.String("pass", "secret", "password")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	ctx := context.Background()
	c := clarens.NewClient(*server)
	if err := c.Login(ctx, *user, *pass); err != nil {
		log.Fatalf("gae-steer: %v", err)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "jobs":
		jobs, err := c.CallArray(ctx, "steering.jobs")
		fatalIf(err)
		for _, j := range jobs {
			fmt.Println(j)
		}
	case "status":
		needRef(rest)
		st, err := c.CallStruct(ctx, "steering.status", rest[0], rest[1])
		fatalIf(err)
		printStruct(st, "")
	case "kill", "pause", "resume":
		needRef(rest)
		_, err := c.Call(ctx, "steering."+cmd, rest[0], rest[1])
		fatalIf(err)
		fmt.Printf("%s ok\n", cmd)
	case "move":
		needRef(rest)
		callArgs := []any{rest[0], rest[1]}
		if len(rest) >= 3 {
			callArgs = append(callArgs, rest[2])
		}
		res, err := c.CallStruct(ctx, "steering.move", callArgs...)
		fatalIf(err)
		fmt.Printf("moved to %v (condor id %v)\n", res["site"], res["condorid"])
	case "setprio":
		if len(rest) != 3 {
			usage()
		}
		prio, err := strconv.Atoi(rest[2])
		fatalIf(err)
		_, err = c.Call(ctx, "steering.setpriority", rest[0], rest[1], prio)
		fatalIf(err)
		fmt.Println("priority set")
	case "estimate":
		needRef(rest)
		sec, err := c.CallFloat(ctx, "steering.estimate", rest[0], rest[1])
		fatalIf(err)
		fmt.Printf("estimated completion in %.0f s\n", sec)
	case "notifications":
		ns, err := c.CallArray(ctx, "steering.notifications")
		fatalIf(err)
		if len(ns) == 0 {
			fmt.Println("(none)")
		}
		for _, n := range ns {
			m, ok := n.(map[string]any)
			if !ok {
				continue
			}
			fmt.Printf("[%v] %v\n", m["kind"], m["message"])
		}
	case "preference":
		var err error
		var res any
		if len(rest) == 0 {
			res, err = c.Call(ctx, "steering.preference")
		} else {
			res, err = c.Call(ctx, "steering.preference", rest[0])
		}
		fatalIf(err)
		fmt.Printf("optimizer preference: %v\n", res)
	default:
		usage()
	}
}

func needRef(rest []string) {
	if len(rest) < 2 {
		usage()
	}
}

func fatalIf(err error) {
	if err != nil {
		log.Fatalf("gae-steer: %v", err)
	}
}

func printStruct(m map[string]any, indent string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if sub, ok := m[k].(map[string]any); ok {
			fmt.Printf("%s%s:\n", indent, k)
			printStruct(sub, indent+"  ")
			continue
		}
		fmt.Printf("%s%s: %v\n", indent, k, m[k])
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: gae-steer [flags] <command> [args]

commands:
  jobs                          list your watched tasks
  status <plan> <task>          assignment + live monitoring info
  kill|pause|resume <plan> <task>
  move <plan> <task> [site]     redirect (scheduler picks site if omitted)
  setprio <plan> <task> <n>
  estimate <plan> <task>        expected seconds to completion
  notifications                 drain steering notifications
  preference [fast|cheap]       read or set the optimizer preference
`)
	flag.PrintDefaults()
	os.Exit(2)
}
