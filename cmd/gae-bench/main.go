// Command gae-bench regenerates every measured artifact of the paper's
// evaluation section and renders it as CSV and an ASCII chart.
//
//	gae-bench -fig 5         # runtime-estimator accuracy (Figure 5)
//	gae-bench -fig 6         # job-monitoring response times (Figure 6)
//	gae-bench -fig 7         # steering rescue (Figure 7)
//	gae-bench -fig all -out results/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "figure to regenerate: 5, 6, 7, or all")
		out   = flag.String("out", "", "directory to write CSV files (stdout only if empty)")
		chart = flag.Bool("chart", true, "render ASCII charts")
	)
	flag.Parse()

	runs := map[string]func() (*experiments.Table, error){
		"5": func() (*experiments.Table, error) {
			r, err := experiments.Fig5(experiments.DefaultFig5())
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		},
		"6": func() (*experiments.Table, error) {
			r, err := experiments.Fig6(experiments.DefaultFig6())
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		},
		"7": func() (*experiments.Table, error) {
			r, err := experiments.Fig7(experiments.DefaultFig7())
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		},
	}
	var order []string
	switch *fig {
	case "all":
		order = []string{"5", "6", "7"}
	case "5", "6", "7":
		order = []string{*fig}
	default:
		log.Fatalf("gae-bench: unknown figure %q", *fig)
	}
	for _, f := range order {
		fmt.Printf("=== Figure %s ===\n", f)
		table, err := runs[f]()
		if err != nil {
			log.Fatalf("gae-bench: figure %s: %v", f, err)
		}
		if *chart {
			fmt.Println(table.Chart(72, 20))
		}
		csv := table.CSV()
		if *out == "" {
			fmt.Println(csv)
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatalf("gae-bench: %v", err)
		}
		path := filepath.Join(*out, "figure"+f+".csv")
		if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
			log.Fatalf("gae-bench: %v", err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
