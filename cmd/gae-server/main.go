// Command gae-server hosts a complete Grid Analysis Environment: a
// simulated grid with Condor-like execution services, MonALISA
// monitoring, the Sphinx-like scheduler, and the steering / job
// monitoring / estimator / quota services on a Clarens XML-RPC endpoint.
//
// The simulated grid advances in real time (one simulated second per
// wall-clock second) unless -accel is given.
//
// With -data the server is crash-recoverable: state is restored from the
// directory's snapshot plus journal at start, every mutating RPC is
// journaled before it is acknowledged, checkpoints run periodically, and
// SIGINT/SIGTERM triggers a graceful drain — in-flight calls finish, a
// final checkpoint lands, and the process exits 0.
//
// Example:
//
//	gae-server -addr :8080 -data /var/lib/gae \
//	  -sites caltech:4:0.2:0.05,nust:2:0.0:0.01 \
//	  -links caltech-nust:10:50 \
//	  -users alice:secret:1000
//
// then point gae-submit / gae-steer / gae-loadgen at
// http://localhost:8080.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/simgrid"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address for the Clarens host")
		sites = flag.String("sites", "siteA:2:0.0:0.05,siteB:2:0.3:0.02",
			"comma-separated site specs name:nodes:load:costPerCpuSecond")
		links = flag.String("links", "siteA-siteB:10:50",
			"comma-separated link specs a-b:MBps:latencyMS")
		users = flag.String("users", "alice:secret:1000",
			"comma-separated user specs name:password:credits (first user is admin)")
		accel = flag.Int("accel", 1, "simulated seconds per wall-clock second")
		seed  = flag.Int64("seed", 2005, "simulation random seed")
		data  = flag.String("data", "",
			"durable state directory (empty = in-memory only)")
		checkpoint = flag.Duration("checkpoint", time.Minute,
			"wall-clock period between checkpoints when -data is set")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"bound on the graceful drain; past it the server exits nonzero (0 = unbounded)")
		faultFsyncAfter = flag.Duration("fault-fsync-after", 0,
			"arm injected journal fsync failures this long after start (0 = never; needs -data)")
		faultFsyncCount = flag.Int("fault-fsync-count", 2,
			"consecutive journal fsyncs to fail when -fault-fsync-after fires")
		faultShortWrite = flag.Bool("fault-short-write", false,
			"also truncate the journal write under the armed fault (torn-write shape)")
	)
	flag.Parse()

	cfg := core.Config{Seed: *seed}
	var err error
	if cfg.Sites, err = parseSites(*sites); err != nil {
		log.Fatalf("gae-server: %v", err)
	}
	if cfg.Links, err = parseLinks(*links); err != nil {
		log.Fatalf("gae-server: %v", err)
	}
	if cfg.Users, err = parseUsers(*users); err != nil {
		log.Fatalf("gae-server: %v", err)
	}
	g := core.New(cfg)
	srv, err := NewServer(g, *data)
	if err != nil {
		log.Fatalf("gae-server: %v", err)
	}
	if *data != "" {
		// WAL rule: a failed journal append leaves the in-memory state
		// ahead of the durable state — continuing (or checkpointing)
		// would persist a mutation the client was never acked for and
		// will retry. Crash without a drain; recovery replays the
		// journal, rolling the un-journaled mutation back.
		g.OnDurabilityLoss(func(err error) {
			log.Printf("durability lost: %v — exiting for journal recovery", err)
			os.Exit(3)
		})
	}
	srv.Accel = *accel
	srv.CheckpointEvery = *checkpoint
	srv.DrainTimeout = *drainTimeout
	srv.Logf = log.Printf
	if *faultFsyncAfter > 0 {
		// Interpose the fault file before traffic starts (the swap must not
		// race live appends), then script it on a timer so the fsync
		// failures land mid-load. The journal's sticky error nacks every
		// append until the next checkpoint truncation clears it — clients
		// retry through the outage and exactly-once must still hold.
		if ff := srv.InjectFaults(); ff != nil {
			after, count, short := *faultFsyncAfter, *faultFsyncCount, *faultShortWrite
			time.AfterFunc(after, func() {
				if short {
					ff.ShortWriteNext()
				}
				ff.FailSyncs(count)
				log.Printf("fault injection armed: next %d journal fsyncs fail (short write: %v)", count, short)
			})
		} else {
			log.Printf("fault injection ignored: no durable store (-data unset)")
		}
	}
	url, err := srv.Start(*addr)
	if err != nil {
		log.Fatalf("gae-server: %v", err)
	}
	log.Printf("Clarens host listening at %s", url)
	log.Printf("sites: %s", strings.Join(g.Sites(), ", "))
	log.Printf("services: jobmon, steering, estimator, quota, scheduler, replica, monitor, state")
	if *data != "" {
		log.Printf("durable state in %s (simulated time %v)", *data, g.Now().Format(time.RFC3339))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		srv.Shutdown()
	}()
	if err := srv.Run(); err != nil {
		log.Fatalf("gae-server: %v", err)
	}
}

func parseSites(s string) ([]core.SiteSpec, error) {
	var out []core.SiteSpec
	for _, spec := range splitNonEmpty(s) {
		parts := strings.Split(spec, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("site spec %q: want name:nodes:load:cost", spec)
		}
		nodes, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("site spec %q: bad node count: %v", spec, err)
		}
		load, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("site spec %q: bad load: %v", spec, err)
		}
		cost, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return nil, fmt.Errorf("site spec %q: bad cost: %v", spec, err)
		}
		out = append(out, core.SiteSpec{
			Name:             parts[0],
			Nodes:            nodes,
			Load:             simgrid.ConstantLoad(load),
			CostPerCPUSecond: cost,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sites configured")
	}
	return out, nil
}

func parseLinks(s string) ([]core.LinkSpec, error) {
	var out []core.LinkSpec
	for _, spec := range splitNonEmpty(s) {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("link spec %q: want a-b:MBps:latencyMS", spec)
		}
		ends := strings.Split(parts[0], "-")
		if len(ends) != 2 {
			return nil, fmt.Errorf("link spec %q: endpoints must be a-b", spec)
		}
		mbps, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("link spec %q: bad bandwidth: %v", spec, err)
		}
		lat, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("link spec %q: bad latency: %v", spec, err)
		}
		out = append(out, core.LinkSpec{A: ends[0], B: ends[1], MBps: mbps, LatencyMS: lat})
	}
	return out, nil
}

func parseUsers(s string) ([]core.UserSpec, error) {
	var out []core.UserSpec
	for i, spec := range splitNonEmpty(s) {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("user spec %q: want name:password:credits", spec)
		}
		credits, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("user spec %q: bad credits: %v", spec, err)
		}
		out = append(out, core.UserSpec{
			Name:     parts[0],
			Password: parts[1],
			Credits:  credits,
			Admin:    i == 0,
		})
	}
	return out, nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
