// Command gae-server hosts a complete Grid Analysis Environment: a
// simulated grid with Condor-like execution services, MonALISA
// monitoring, the Sphinx-like scheduler, and the steering / job
// monitoring / estimator / quota services on a Clarens XML-RPC endpoint.
//
// The simulated grid advances in real time (one simulated second per
// wall-clock second) unless -accel is given.
//
// Example:
//
//	gae-server -addr :8080 \
//	  -sites caltech:4:0.2:0.05,nust:2:0.0:0.01 \
//	  -links caltech-nust:10:50 \
//	  -users alice:secret:1000
//
// then point gae-submit / gae-steer at http://localhost:8080.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/simgrid"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address for the Clarens host")
		sites = flag.String("sites", "siteA:2:0.0:0.05,siteB:2:0.3:0.02",
			"comma-separated site specs name:nodes:load:costPerCpuSecond")
		links = flag.String("links", "siteA-siteB:10:50",
			"comma-separated link specs a-b:MBps:latencyMS")
		users = flag.String("users", "alice:secret:1000",
			"comma-separated user specs name:password:credits (first user is admin)")
		accel = flag.Int("accel", 1, "simulated seconds per wall-clock second")
		seed  = flag.Int64("seed", 2005, "simulation random seed")
	)
	flag.Parse()
	if *accel < 1 {
		*accel = 1
	}

	cfg := core.Config{Seed: *seed}
	var err error
	if cfg.Sites, err = parseSites(*sites); err != nil {
		log.Fatalf("gae-server: %v", err)
	}
	if cfg.Links, err = parseLinks(*links); err != nil {
		log.Fatalf("gae-server: %v", err)
	}
	if cfg.Users, err = parseUsers(*users); err != nil {
		log.Fatalf("gae-server: %v", err)
	}
	g := core.New(cfg)
	url, err := g.Start(*addr)
	if err != nil {
		log.Fatalf("gae-server: %v", err)
	}
	log.Printf("Clarens host listening at %s", url)
	log.Printf("sites: %s", strings.Join(g.Sites(), ", "))
	log.Printf("services: jobmon, steering, estimator, quota, scheduler")

	// Drive the simulation: *accel simulated seconds per real second.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			g.Run(time.Duration(*accel) * time.Second)
		case <-stop:
			log.Printf("shutting down (simulated time reached %v)", g.Now().Format(time.RFC3339))
			if err := g.Stop(); err != nil {
				log.Printf("stop: %v", err)
			}
			return
		}
	}
}

func parseSites(s string) ([]core.SiteSpec, error) {
	var out []core.SiteSpec
	for _, spec := range splitNonEmpty(s) {
		parts := strings.Split(spec, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("site spec %q: want name:nodes:load:cost", spec)
		}
		nodes, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("site spec %q: bad node count: %v", spec, err)
		}
		load, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("site spec %q: bad load: %v", spec, err)
		}
		cost, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return nil, fmt.Errorf("site spec %q: bad cost: %v", spec, err)
		}
		out = append(out, core.SiteSpec{
			Name:             parts[0],
			Nodes:            nodes,
			Load:             simgrid.ConstantLoad(load),
			CostPerCPUSecond: cost,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sites configured")
	}
	return out, nil
}

func parseLinks(s string) ([]core.LinkSpec, error) {
	var out []core.LinkSpec
	for _, spec := range splitNonEmpty(s) {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("link spec %q: want a-b:MBps:latencyMS", spec)
		}
		ends := strings.Split(parts[0], "-")
		if len(ends) != 2 {
			return nil, fmt.Errorf("link spec %q: endpoints must be a-b", spec)
		}
		mbps, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("link spec %q: bad bandwidth: %v", spec, err)
		}
		lat, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("link spec %q: bad latency: %v", spec, err)
		}
		out = append(out, core.LinkSpec{A: ends[0], B: ends[1], MBps: mbps, LatencyMS: lat})
	}
	return out, nil
}

func parseUsers(s string) ([]core.UserSpec, error) {
	var out []core.UserSpec
	for i, spec := range splitNonEmpty(s) {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("user spec %q: want name:password:credits", spec)
		}
		credits, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("user spec %q: bad credits: %v", spec, err)
		}
		out = append(out, core.UserSpec{
			Name:     parts[0],
			Password: parts[1],
			Credits:  credits,
			Admin:    i == 0,
		})
	}
	return out, nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
