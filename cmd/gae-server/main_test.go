package main

import (
	"strings"
	"testing"
)

func TestParseSites(t *testing.T) {
	specs, err := parseSites("caltech:4:0.2:0.05, nust:2:0.0:0.01")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("parsed %d sites", len(specs))
	}
	if specs[0].Name != "caltech" || specs[0].Nodes != 4 || specs[0].CostPerCPUSecond != 0.05 {
		t.Fatalf("site[0] = %+v", specs[0])
	}
	if specs[0].Load == nil {
		t.Fatal("site load function not set")
	}
}

func TestParseSitesMalformed(t *testing.T) {
	for _, tc := range []struct{ in, wantErr string }{
		{"", "no sites"},
		{"caltech:4:0.2", "want name:nodes:load:cost"},
		{"caltech:4:0.2:0.05:9", "want name:nodes:load:cost"},
		{"caltech:four:0.2:0.05", "bad node count"},
		{"caltech:4:heavy:0.05", "bad load"},
		{"caltech:4:0.2:free", "bad cost"},
	} {
		_, err := parseSites(tc.in)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("parseSites(%q) error = %v, want %q", tc.in, err, tc.wantErr)
		}
	}
}

func TestParseLinks(t *testing.T) {
	links, err := parseLinks("a-b:10:50,b-c:2.5:0")
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 || links[0].A != "a" || links[0].B != "b" || links[0].MBps != 10 || links[0].LatencyMS != 50 {
		t.Fatalf("links = %+v", links)
	}
	// An empty link list is allowed (single-site deployments).
	if links, err := parseLinks(""); err != nil || len(links) != 0 {
		t.Fatalf("empty links = %v, %v", links, err)
	}
}

func TestParseLinksMalformed(t *testing.T) {
	for _, tc := range []struct{ in, wantErr string }{
		{"a-b:10", "want a-b:MBps:latencyMS"},
		{"ab:10:50", "endpoints must be a-b"},
		{"a-b-c:10:50", "endpoints must be a-b"},
		{"a-b:fast:50", "bad bandwidth"},
		{"a-b:10:soon", "bad latency"},
	} {
		_, err := parseLinks(tc.in)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("parseLinks(%q) error = %v, want %q", tc.in, err, tc.wantErr)
		}
	}
}

func TestParseUsers(t *testing.T) {
	users, err := parseUsers("alice:secret:1000,bob:pw:0")
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 2 || users[0].Name != "alice" || users[0].Credits != 1000 {
		t.Fatalf("users = %+v", users)
	}
	if !users[0].Admin || users[1].Admin {
		t.Fatalf("only the first user should be admin: %+v", users)
	}
}

func TestParseUsersMalformed(t *testing.T) {
	for _, tc := range []struct{ in, wantErr string }{
		{"alice:secret", "want name:password:credits"},
		{"alice:secret:1000:extra", "want name:password:credits"},
		{"alice:secret:rich", "bad credits"},
	} {
		_, err := parseUsers(tc.in)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("parseUsers(%q) error = %v, want %q", tc.in, err, tc.wantErr)
		}
	}
}
