package main

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
)

// ErrDrainTimeout reports a graceful drain that exceeded Server.DrainTimeout.
// The process must exit nonzero: the final checkpoint may not have landed,
// so the next start recovers from the journal instead.
var ErrDrainTimeout = errors.New("drain deadline exceeded")

// Server runs a GAE deployment as a long-lived service: it recovers
// state from a durable data directory at start, drives the simulation in
// real time, checkpoints periodically, and shuts down gracefully —
// drain the Clarens endpoint, take a final checkpoint, release the
// store — when Shutdown is called (the signal handler's hook).
type Server struct {
	G *core.GAE

	// Accel is simulated seconds advanced per wall-clock second.
	Accel int
	// CheckpointEvery is the wall-clock period between checkpoints
	// (0 disables periodic checkpoints; the final one still runs).
	CheckpointEvery time.Duration
	// Logf receives progress lines (nil silences them).
	Logf func(format string, args ...any)
	// DrainTimeout bounds the graceful drain (endpoint stop + final
	// checkpoint). When it expires Run returns ErrDrainTimeout so main
	// can force-exit nonzero instead of hanging on a wedged drain.
	// 0 means unbounded.
	DrainTimeout time.Duration

	store    *durable.Store
	stop     chan struct{}
	stopOnce sync.Once

	// drainBarrier, when non-nil, runs at the head of the drain
	// goroutine — a test hook that simulates a drain wedged behind a
	// stuck checkpoint.
	drainBarrier func()
}

// NewServer builds a server around g. A non-empty dataDir opens (or
// creates) the durable store there and recovers its contents into g
// before any traffic is served; an empty dataDir runs in-memory.
func NewServer(g *core.GAE, dataDir string) (*Server, error) {
	s := &Server{G: g, Accel: 1, stop: make(chan struct{})}
	if dataDir == "" {
		return s, nil
	}
	store, err := durable.Open(dataDir)
	if err != nil {
		return nil, err
	}
	if warn := store.ScanWarning(); warn != nil {
		s.logf("journal recovered to last valid record: %v", warn)
	}
	if err := g.AttachStore(store); err != nil {
		store.Close()
		return nil, fmt.Errorf("recovering %s: %w", dataDir, err)
	}
	s.store = store
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Start serves the Clarens endpoint on addr and returns its base URL.
func (s *Server) Start(addr string) (string, error) {
	return s.G.Start(addr)
}

// InjectFaults interposes a scriptable FaultyFile on the journal's
// write path (nil without a durable store). It must run before Start —
// the swap is not safe under concurrent appends; the returned handle is.
func (s *Server) InjectFaults() *durable.FaultyFile {
	if s.store == nil {
		return nil
	}
	return s.store.InjectFaults()
}

// Run drives the simulation until Shutdown, then drains: the Clarens
// endpoint stops accepting calls and finishes in-flight ones, a final
// checkpoint captures the drained state, and the store is released.
// It returns nil on a clean shutdown.
func (s *Server) Run() error {
	accel := s.Accel
	if accel < 1 {
		accel = 1
	}
	advance := time.NewTicker(time.Second)
	defer advance.Stop()
	var checkpoint <-chan time.Time
	if s.store != nil && s.CheckpointEvery > 0 {
		t := time.NewTicker(s.CheckpointEvery)
		defer t.Stop()
		checkpoint = t.C
	}
	for {
		select {
		case <-advance.C:
			s.G.Run(time.Duration(accel) * time.Second)
		case <-checkpoint:
			if err := s.G.Checkpoint(); err != nil {
				return fmt.Errorf("checkpoint: %w", err)
			}
			s.logf("checkpoint at simulated %v", s.G.Now().Format(time.RFC3339))
		case <-s.stop:
			return s.drainBounded()
		}
	}
}

// drainBounded runs drain under DrainTimeout. New RPCs are rejected
// with FaultUnavailable (retryable — clients back off to another
// attempt or endpoint) the moment draining starts.
func (s *Server) drainBounded() error {
	s.G.Clarens.SetDraining(true)
	if s.DrainTimeout <= 0 && s.drainBarrier == nil {
		return s.drain()
	}
	done := make(chan error, 1)
	go func() {
		if s.drainBarrier != nil {
			s.drainBarrier()
		}
		done <- s.drain()
	}()
	var deadline <-chan time.Time
	if s.DrainTimeout > 0 {
		t := time.NewTimer(s.DrainTimeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case err := <-done:
		return err
	case <-deadline:
		return fmt.Errorf("%w after %v", ErrDrainTimeout, s.DrainTimeout)
	}
}

// Shutdown asks Run to exit gracefully. Safe to call more than once and
// from any goroutine — it is the SIGINT/SIGTERM hook.
func (s *Server) Shutdown() {
	s.stopOnce.Do(func() { close(s.stop) })
}

func (s *Server) drain() error {
	s.logf("draining (simulated time %v)", s.G.Now().Format(time.RFC3339))
	if err := s.G.Stop(); err != nil {
		return fmt.Errorf("stopping endpoint: %w", err)
	}
	if s.store == nil {
		return nil
	}
	if err := s.G.Checkpoint(); err != nil {
		return fmt.Errorf("final checkpoint: %w", err)
	}
	if err := s.store.Close(); err != nil {
		return fmt.Errorf("closing store: %w", err)
	}
	s.logf("state checkpointed; goodbye")
	return nil
}
