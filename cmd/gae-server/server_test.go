package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/clarens"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/xmlrpc"
	"repro/pkg/gae"
)

func testConfig() core.Config {
	return core.Config{
		Seed:  7,
		Sites: []core.SiteSpec{{Name: "siteA", Nodes: 2, CostPerCPUSecond: 0.1}},
		Users: []core.UserSpec{{Name: "alice", Password: "pw", Credits: 100, Admin: true}},
	}
}

// TestGracefulShutdown drives the full server lifecycle: serve over
// XML-RPC, accept traffic, Shutdown (the SIGINT/SIGTERM hook), and
// verify Run exits cleanly having checkpointed the drained state.
func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(core.New(testConfig()), dir)
	if err != nil {
		t.Fatal(err)
	}
	url, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Run() }()

	ctx := context.Background()
	client, err := gae.Dial(ctx, url, gae.WithCredentials("alice", "pw"))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SetState(ctx, "survives", "shutdown"); err != nil {
		t.Fatal(err)
	}

	srv.Shutdown()
	srv.Shutdown() // idempotent
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after Shutdown")
	}

	// The final checkpoint landed: the snapshot alone carries the state.
	if _, err := os.Stat(filepath.Join(dir, durable.SnapshotFile)); err != nil {
		t.Fatalf("no final snapshot: %v", err)
	}
	snap, err := durable.LoadSnapshot(filepath.Join(dir, durable.SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("snapshot missing after shutdown")
	}
	if got := snap.State.UserState["alice"]["survives"]; got != "shutdown" {
		t.Fatalf("snapshot user state = %q, want %q", got, "shutdown")
	}
}

// TestServerRecoversAcrossRestart restarts a server on the same data
// directory and checks the recovered deployment serves the pre-restart
// state.
func TestServerRecoversAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	srv1, err := NewServer(core.New(testConfig()), dir)
	if err != nil {
		t.Fatal(err)
	}
	url, err := srv1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv1.Run() }()
	c1, err := gae.Dial(ctx, url, gae.WithCredentials("alice", "pw"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.SetState(ctx, "dataset", "zmumu-2005"); err != nil {
		t.Fatal(err)
	}
	if err := c1.Grant(ctx, "alice", 50); err != nil {
		t.Fatal(err)
	}
	srv1.Shutdown()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	srv2, err := NewServer(core.New(testConfig()), dir)
	if err != nil {
		t.Fatal(err)
	}
	url2, err := srv2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Run() }()
	c2, err := gae.Dial(ctx, url2, gae.WithCredentials("alice", "pw"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c2.GetState(ctx, "dataset"); err != nil || got != "zmumu-2005" {
		t.Fatalf("recovered state = %q, %v", got, err)
	}
	if bal, err := c2.Balance(ctx); err != nil || bal != 150 {
		t.Fatalf("recovered balance = %v, %v (want 150)", bal, err)
	}
	srv2.Shutdown()
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
}

// TestDrainTimeoutForcesExit pins the bounded drain: a drain wedged
// behind a stuck checkpoint (the test barrier stands in for it) must
// not hang Run forever — past DrainTimeout it returns ErrDrainTimeout,
// which main turns into a nonzero exit. While draining, new RPCs are
// shed with the retryable FaultUnavailable.
func TestDrainTimeoutForcesExit(t *testing.T) {
	srv, err := NewServer(core.New(testConfig()), "")
	if err != nil {
		t.Fatal(err)
	}
	url, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	unblock := make(chan struct{})
	t.Cleanup(func() { close(unblock) })
	srv.drainBarrier = func() { <-unblock }
	srv.DrainTimeout = 50 * time.Millisecond
	srv.Shutdown()
	if err := srv.Run(); !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("Run = %v, want ErrDrainTimeout", err)
	}

	// The wedged drain left the listener up but draining: calls are
	// rejected with the retryable unavailable fault, not served.
	cc := clarens.NewClient(url)
	if _, err := cc.Call(context.Background(), "system.ping"); !xmlrpc.IsFault(err, xmlrpc.FaultUnavailable) {
		t.Fatalf("call while draining: %v, want FaultUnavailable", err)
	}
}
