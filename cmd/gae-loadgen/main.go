// Command gae-loadgen measures a GAE deployment under closed-loop load:
// N concurrent clients run a mixed analysis workload (plan submission,
// monitoring, steering, session state, grid weather) and the tool
// reports RPS plus p50/p95/p99 operation latency as JSON.
//
// Two targets:
//
//   - With -url it dials a running gae-server over Clarens XML-RPC and
//     measures the full wire path:
//
//     gae-loadgen -url http://localhost:8080 -user alice -pass secret
//
//   - Without -url it embeds a deployment in-process and measures the
//     local transport; -data additionally attaches a durable store so
//     the journaling cost is on the measured path:
//
//     gae-loadgen -clients 8 -ops 128 -data /tmp/gae-load
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/loadgen"
	"repro/internal/simgrid"
	"repro/pkg/gae"
)

// report is the JSON document the tool emits: the harness result tagged
// with the measured transport and store mode.
type report struct {
	Transport string `json:"transport"`
	Store     string `json:"store"`
	Target    string `json:"target,omitempty"`
	loadgen.Result
}

func main() {
	var (
		url     = flag.String("url", "", "gae-server base URL (empty = embedded in-process deployment)")
		user    = flag.String("user", "alice", "acting user")
		pass    = flag.String("pass", "secret", "password for -url mode")
		clients = flag.Int("clients", 8, "concurrent closed-loop clients")
		ops     = flag.Int("ops", 64, "operations per client")
		seed    = flag.Int64("seed", 2005, "workload mix seed")
		prefix  = flag.String("prefix", "load", "namespace for created plans and state keys")
		data    = flag.String("data", "", "durable state directory for embedded mode (empty = in-memory)")
		retry   = flag.Bool("retry", false, "enable transport retry/backoff with the default policy in -url mode")
		out     = flag.String("json", "-", "result JSON path (- = stdout)")
	)
	flag.Parse()

	ctx := context.Background()
	rep := report{Store: "memory", Target: *url}
	var dial loadgen.Dialer
	// serverStats reads the deployment's metrics after the run: an HTTP
	// scrape in wire mode, a direct registry snapshot when embedded.
	var serverStats func() *loadgen.ServerStats
	switch {
	case *url != "":
		rep.Transport = "xmlrpc"
		opts := []gae.Option{gae.WithCredentials(*user, *pass)}
		if *retry {
			opts = append(opts, gae.WithRetryPolicy(gae.RetryPolicy{}))
		}
		dial = func(ctx context.Context, _ int) (*gae.Client, error) {
			return gae.Dial(ctx, *url, opts...)
		}
		serverStats = func() *loadgen.ServerStats {
			st, err := loadgen.ScrapeServerStats(ctx, *url)
			if err != nil {
				log.Printf("gae-loadgen: scraping %s/metrics: %v", *url, err)
				return nil
			}
			return st
		}
	default:
		rep.Transport = "local"
		g := core.New(embeddedConfig(*seed, *user, *pass))
		if *data != "" {
			rep.Store = "durable"
			rep.Target = *data
			store, err := durable.Open(*data)
			if err != nil {
				log.Fatalf("gae-loadgen: %v", err)
			}
			if warn := store.ScanWarning(); warn != nil {
				log.Printf("gae-loadgen: journal recovered to last valid record: %v", warn)
			}
			if err := g.AttachStore(store); err != nil {
				log.Fatalf("gae-loadgen: recovering %s: %v", *data, err)
			}
			defer store.Close()
		}
		dial = func(context.Context, int) (*gae.Client, error) {
			return g.Client(*user), nil
		}
		serverStats = func() *loadgen.ServerStats {
			return loadgen.ServerStatsOf(g.Telemetry.Snapshot())
		}
	}

	res, err := loadgen.Run(ctx, loadgen.Config{
		Clients: *clients, Ops: *ops, Seed: *seed, Prefix: *prefix,
	}, dial)
	if err != nil {
		log.Fatalf("gae-loadgen: %v", err)
	}
	rep.Result = res
	rep.Server = serverStats()

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("gae-loadgen: encoding: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("gae-loadgen: %v", err)
	}
	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "gae-loadgen: %d of %d operations failed\n", res.Errors, res.Ops)
		os.Exit(1)
	}
}

// embeddedConfig is the in-process deployment the tool loads when no
// -url is given: two sites, a link between them, and the acting user as
// an administrator with generous credits.
func embeddedConfig(seed int64, user, pass string) core.Config {
	return core.Config{
		Seed: seed,
		Sites: []core.SiteSpec{
			{Name: "siteA", Nodes: 4, Load: simgrid.ConstantLoad(0.0), CostPerCPUSecond: 0.05},
			{Name: "siteB", Nodes: 4, Load: simgrid.ConstantLoad(0.3), CostPerCPUSecond: 0.02},
		},
		Links: []core.LinkSpec{{A: "siteA", B: "siteB", MBps: 10, LatencyMS: 50}},
		Users: []core.UserSpec{{Name: user, Password: pass, Credits: 1e9, Admin: true}},
	}
}
