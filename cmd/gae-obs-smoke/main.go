// Command gae-obs-smoke is the observability smoke check: it boots a
// real gae-server on a scratch durable directory, drives a short
// gae-loadgen burst at it over the wire, then scrapes /metrics and
// fails unless every required metric family is present and non-zero.
// It also checks /healthz answers 200 and /debug/rpcs carries spans
// for the burst, so a regression anywhere in the telemetry plumbing —
// registry, instrumentation points, or the HTTP surface — turns the
// build red.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/telemetry"
	"repro/pkg/gae"
)

// requiredFamilies must all be non-zero after the burst: they cover the
// RPC path, the journal, checkpointing, and the pool/negotiator layers.
var requiredFamilies = []string{
	"rpc_requests_total",
	"rpc_latency_seconds",
	"journal_appends_total",
	"journal_fsync_seconds",
	"journal_flushes_total",
	"pool_wakes_total",
	"negotiation_passes_total",
	"checkpoints_total",
	"idem_hits_total",
}

func main() {
	var (
		clients = flag.Int("clients", 4, "concurrent loadgen clients")
		ops     = flag.Int("ops", 32, "operations per client")
		server  = flag.String("server", "", "prebuilt gae-server binary (empty: go build ./cmd/gae-server)")
		timeout = flag.Duration("timeout", 2*time.Minute, "overall deadline")
	)
	flag.Parse()
	log.SetPrefix("gae-obs-smoke: ")
	log.SetFlags(0)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, *clients, *ops, *server); err != nil {
		log.Fatalf("FAIL: %v", err)
	}
	log.Print("PASS")
}

func run(ctx context.Context, clients, ops int, server string) error {
	scratch, err := os.MkdirTemp("", "gae-obs-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	data := filepath.Join(scratch, "data")
	if err := os.Mkdir(data, 0o755); err != nil {
		return err
	}

	// A real binary, as in the chaos harness: `go run` would leave the
	// server a process group away. A prebuilt -server binary (e.g. a
	// race-instrumented one from the race-smoke leg) skips the build.
	bin := server
	if bin == "" {
		bin = filepath.Join(scratch, "gae-server")
		build := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/gae-server")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building gae-server: %w", err)
		}
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := l.Addr().String()
	l.Close()
	srv := exec.Command(bin,
		"-addr", addr,
		"-data", data,
		"-users", "alice:pw:1000000",
		"-checkpoint", "1s",
		"-drain-timeout", "5s",
	)
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		return fmt.Errorf("starting gae-server: %w", err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	url := "http://" + addr

	// Readiness via the new health endpoint.
	if err := waitHealthy(ctx, url); err != nil {
		return err
	}

	res, err := loadgen.Run(ctx, loadgen.Config{
		Clients: clients, Ops: ops, Seed: 7, Prefix: "obs",
	}, func(ctx context.Context, _ int) (*gae.Client, error) {
		return gae.Dial(ctx, url, gae.WithCredentials("alice", "pw"))
	})
	if err != nil {
		return fmt.Errorf("loadgen burst: %w", err)
	}
	if res.Errors > 0 {
		return fmt.Errorf("loadgen burst: %d of %d ops failed", res.Errors, res.Ops)
	}
	log.Printf("burst done: %d ops, p99 %.2fms", res.Ops, res.P99Millis)

	// The burst never redelivers, so exercise the dedup window directly:
	// the same mutation twice under one pinned request ID. The second
	// delivery must be answered from the window, which is what moves
	// idem_hits_total.
	cl, err := gae.Dial(ctx, url, gae.WithCredentials("alice", "pw"))
	if err != nil {
		return fmt.Errorf("dedup probe dial: %w", err)
	}
	defer cl.Close(ctx)
	dupCtx := gae.WithRequestID(ctx, "obs-smoke-dup-1")
	for i := 0; i < 2; i++ {
		if err := cl.SetState(dupCtx, "obs-smoke-dup-key", "v"); err != nil {
			return fmt.Errorf("dedup probe delivery %d: %w", i+1, err)
		}
	}

	// Some families fill on the server's own cadence (checkpoints fire on
	// a timer, negotiation on scheduler wakes), so poll until every
	// required family is non-zero or the deadline passes.
	snap, missing, err := pollFamilies(ctx, url)
	if err != nil {
		return err
	}
	if len(missing) > 0 {
		return fmt.Errorf("metric families missing or all-zero after burst: %v", missing)
	}
	stats := loadgen.ServerStatsOf(snap)
	out, _ := json.MarshalIndent(stats, "", "  ")
	log.Printf("server stats: %s", out)

	// The Prometheus rendering must expose the same families as text.
	text, err := getBody(ctx, url+"/metrics")
	if err != nil {
		return err
	}
	for _, fam := range requiredFamilies {
		if !containsLine(text, fam) {
			return fmt.Errorf("/metrics text rendering missing family %q", fam)
		}
	}

	// The burst must have left trace spans behind.
	body, err := getBody(ctx, url+"/debug/rpcs?limit=10")
	if err != nil {
		return err
	}
	var spans struct {
		Total uint64           `json:"total"`
		Spans []telemetry.Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		return fmt.Errorf("parsing /debug/rpcs: %w", err)
	}
	if spans.Total == 0 || len(spans.Spans) == 0 {
		return fmt.Errorf("/debug/rpcs has no spans after %d ops", res.Ops)
	}
	log.Printf("traced %d rpcs; all %d required families live", spans.Total, len(requiredFamilies))
	return nil
}

func waitHealthy(ctx context.Context, url string) error {
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server at %s never became healthy: %w", url, ctx.Err())
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// pollFamilies scrapes /metrics until every required family is non-zero,
// returning the final snapshot and whatever is still missing at the
// deadline.
func pollFamilies(ctx context.Context, url string) (telemetry.Snapshot, []string, error) {
	var snap telemetry.Snapshot
	var missing []string
	for {
		var err error
		snap, err = telemetry.Scrape(ctx, url)
		if err != nil {
			return snap, nil, fmt.Errorf("scraping %s/metrics: %w", url, err)
		}
		missing = missing[:0]
		for _, fam := range requiredFamilies {
			if snap.Total(fam) == 0 {
				missing = append(missing, fam)
			}
		}
		if len(missing) == 0 {
			return snap, nil, nil
		}
		select {
		case <-ctx.Done():
			return snap, missing, nil
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func getBody(ctx context.Context, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body), nil
}

// containsLine reports whether any line in text starts with prefix —
// family names prefix their # TYPE and sample lines.
func containsLine(text, prefix string) bool {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			return true
		}
	}
	return false
}
