// Command gae-benchjson runs the repository benchmark sweep and records
// it as a machine-readable JSON document — the performance trajectory of
// the reproduction. Every PR regenerates BENCH_<n>.json at the repo root
// so ns/op, allocs/op, and the experiment-level custom metrics
// (mean_err_%, jain_index, steered_s, …) are comparable across history.
//
//	gae-benchjson -out BENCH_2.json            # full sweep, one iteration
//	gae-benchjson -bench Condor -benchtime 5x  # focused re-measurement
//
// The tool shells out to `go test -bench` and parses the standard
// benchmark output format, including b.ReportMetric custom units. It
// exits non-zero when the benchmark binary fails or reports any failure,
// making it usable as a CI gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	// Name is the benchmark name without the Benchmark prefix and
	// -GOMAXPROCS suffix, e.g. "Figure5" or "FairShare/bursty-tenant".
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present when the benchmark reports
	// allocations (-benchmem or b.ReportAllocs).
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds b.ReportMetric custom units, e.g. {"jain_index": 0.99}.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the file layout of BENCH_<n>.json.
type Document struct {
	Schema      string   `json:"schema"`
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go"`
	GOOS        string   `json:"goos,omitempty"`
	GOARCH      string   `json:"goarch,omitempty"`
	CPU         string   `json:"cpu,omitempty"`
	Pkg         string   `json:"pkg,omitempty"`
	Command     string   `json:"command"`
	Benchmarks  []Result `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH.json", "output JSON path")
		bench     = flag.String("bench", ".", "benchmark name pattern (go test -bench)")
		benchtime = flag.String("benchtime", "1x", "per-benchmark budget (go test -benchtime)")
		pkg       = flag.String("pkg", ".", "package pattern holding the benchmarks")
		timeout   = flag.String("timeout", "150m", "go test timeout")
	)
	flag.Parse()

	args := []string{
		"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-benchtime", *benchtime, "-timeout", *timeout, *pkg,
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	os.Stdout.Write(raw)
	if err != nil {
		fatalf("benchmark run failed: %v", err)
	}
	doc, perr := parse(string(raw))
	if perr != nil {
		fatalf("%v", perr)
	}
	doc.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	doc.GoVersion = runtime.Version()
	doc.Command = "go " + strings.Join(args, " ")

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("encoding: %v", err)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("writing %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "gae-benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gae-benchjson: "+format+"\n", args...)
	os.Exit(1)
}

// parse converts `go test -bench` output into a Document. It understands
// the standard line format
//
//	BenchmarkName-8 <tab> N <tab> value unit <tab> value unit ...
//
// where units beyond ns/op, B/op, and allocs/op are custom b.ReportMetric
// units collected into Result.Metrics.
func parse(out string) (*Document, error) {
	doc := &Document{Schema: "gae-bench/v1"}
	failed := false
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimRight(line, "\r")
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.Contains(line, "--- FAIL") || strings.HasPrefix(line, "FAIL"):
			failed = true
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: trimBenchName(fields[0], runtime.GOMAXPROCS(0)), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				b := v
				r.BytesPerOp = &b
			case "allocs/op":
				a := v
				r.AllocsPerOp = &a
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if failed {
		return nil, fmt.Errorf("benchmark output reports failures")
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark results found in output")
	}
	return doc, nil
}

// trimBenchName strips the Benchmark prefix and the trailing -GOMAXPROCS.
// go test appends the suffix only when GOMAXPROCS != 1, and sub-benchmark
// names may legitimately end in -<number> (e.g. clients-1), so only the
// exact current procs value is stripped.
func trimBenchName(s string, procs int) string {
	s = strings.TrimPrefix(s, "Benchmark")
	if procs > 1 {
		s = strings.TrimSuffix(s, "-"+strconv.Itoa(procs))
	}
	return s
}
