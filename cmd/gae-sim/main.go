// Command gae-sim replays built-in multi-tenant fairness scenarios on the
// simulated grid and emits per-tick CSV allocation history — the
// KAI-style scenario simulator for the fair-share subsystem. Everything
// runs on the virtual clock, so a 900-second scenario takes milliseconds
// and the output is deterministic.
//
//	gae-sim -list
//	gae-sim -scenario starvation-recovery -output -
//	gae-sim -scenario bursty-tenant -fairshare=false -output ablation.csv
//
// The CSV goes to -output ("-" for stdout); a per-tenant summary with the
// Jain fairness index goes to stderr.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	var (
		scenario  = flag.String("scenario", "", "scenario to replay (see -list)")
		list      = flag.Bool("list", false, "list built-in scenarios and exit")
		output    = flag.String("output", "-", "CSV destination path, or - for stdout")
		ticks     = flag.Int("ticks", 0, "override the scenario horizon (simulated seconds)")
		seed      = flag.Int64("seed", 1, "grid engine RNG seed")
		fair      = flag.Bool("fairshare", true, "arbitrate with the fair-share subsystem (false = static-priority ablation)")
		halfLife  = flag.Duration("halflife", 0, "usage decay half-life (0 = default, <0 disables decay)")
		starveWin = flag.Duration("starvation-window", 0, "starvation guard window (0 = default, <0 disables)")
		sample    = flag.Int("sample", 0, "history sampling period in ticks (default 5)")
	)
	flag.Parse()

	if *list {
		for _, sc := range workload.FairnessScenarios() {
			fmt.Printf("%-20s %s\n", sc.Name, sc.Description)
		}
		return
	}
	if *scenario == "" {
		log.Fatal("gae-sim: -scenario is required (use -list to see the catalogue)")
	}

	res, err := experiments.Fairness(experiments.FairnessConfig{
		Scenario:         *scenario,
		Ticks:            *ticks,
		Seed:             *seed,
		FairShare:        *fair,
		HalfLife:         time.Duration(*halfLife),
		StarvationWindow: time.Duration(*starveWin),
		SampleEvery:      *sample,
	})
	if err != nil {
		log.Fatalf("gae-sim: %v", err)
	}

	csv := res.CSV()
	if *output == "-" {
		fmt.Print(csv)
	} else {
		if err := os.WriteFile(*output, []byte(csv), 0o644); err != nil {
			log.Fatalf("gae-sim: %v", err)
		}
	}
	fmt.Fprint(os.Stderr, res.Summary())
}
