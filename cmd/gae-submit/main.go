// Command gae-submit sends an abstract job plan to a running gae-server
// and optionally watches it to completion.
//
// The plan file is JSON matching gae.PlanSpec:
//
//	{
//	  "name": "analysis-1",
//	  "tasks": [
//	    {"id": "stage",  "cpu_seconds": 60,  "queue": "short"},
//	    {"id": "reco",   "cpu_seconds": 300, "queue": "long",
//	     "depends_on": ["stage"], "output_file": "reco.root", "output_mb": 50}
//	  ]
//	}
//
// Example:
//
//	gae-submit -server http://localhost:8080 -user alice -pass secret \
//	  -plan plan.json -watch
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/pkg/gae"
)

func main() {
	var (
		server   = flag.String("server", "http://localhost:8080", "Clarens endpoint")
		user     = flag.String("user", "alice", "user name")
		pass     = flag.String("pass", "secret", "password")
		planPath = flag.String("plan", "", "path to a JSON job plan (required)")
		watch    = flag.Bool("watch", false, "poll plan status until done")
		interval = flag.Duration("interval", 2*time.Second, "watch poll interval")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	)
	flag.Parse()
	if *planPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*planPath)
	if err != nil {
		log.Fatalf("gae-submit: %v", err)
	}
	var plan gae.PlanSpec
	if err := json.Unmarshal(raw, &plan); err != nil {
		log.Fatalf("gae-submit: parsing %s: %v", *planPath, err)
	}

	ctx := context.Background()
	c, err := gae.Dial(ctx, *server,
		gae.WithCredentials(*user, *pass), gae.WithTimeout(*timeout))
	if err != nil {
		log.Fatalf("gae-submit: %v", err)
	}
	defer c.Close(ctx)
	name, err := c.Submit(ctx, plan)
	if err != nil {
		log.Fatalf("gae-submit: submit: %v", err)
	}
	fmt.Printf("submitted plan %q\n", name)
	if !*watch {
		return
	}
	for {
		status, err := c.Plan(ctx, name)
		if err != nil {
			log.Fatalf("gae-submit: status: %v", err)
		}
		printStatus(status)
		if status.Done {
			if status.Succeeded {
				fmt.Println("plan completed successfully")
				return
			}
			fmt.Println("plan finished with failures")
			os.Exit(1)
		}
		time.Sleep(*interval)
	}
}

func printStatus(status gae.PlanStatus) {
	fmt.Printf("plan %s:", status.Name)
	for _, t := range status.Tasks {
		fmt.Printf("  %s=%s@%s", t.Task, t.State, t.Site)
	}
	fmt.Println()
}
