// Command gae-submit sends an abstract job plan to a running gae-server
// and optionally watches it to completion.
//
// The plan file is JSON:
//
//	{
//	  "name": "analysis-1",
//	  "tasks": [
//	    {"id": "stage",  "cpu_seconds": 60,  "queue": "short"},
//	    {"id": "reco",   "cpu_seconds": 300, "queue": "long",
//	     "depends_on": ["stage"], "output_file": "reco.root", "output_mb": 50}
//	  ]
//	}
//
// Example:
//
//	gae-submit -server http://localhost:8080 -user alice -pass secret \
//	  -plan plan.json -watch
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/clarens"
)

func main() {
	var (
		server   = flag.String("server", "http://localhost:8080", "Clarens endpoint")
		user     = flag.String("user", "alice", "user name")
		pass     = flag.String("pass", "secret", "password")
		planPath = flag.String("plan", "", "path to a JSON job plan (required)")
		watch    = flag.Bool("watch", false, "poll plan status until done")
		interval = flag.Duration("interval", 2*time.Second, "watch poll interval")
	)
	flag.Parse()
	if *planPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*planPath)
	if err != nil {
		log.Fatalf("gae-submit: %v", err)
	}
	var plan map[string]any
	if err := json.Unmarshal(raw, &plan); err != nil {
		log.Fatalf("gae-submit: parsing %s: %v", *planPath, err)
	}

	ctx := context.Background()
	c := clarens.NewClient(*server)
	if err := c.Login(ctx, *user, *pass); err != nil {
		log.Fatalf("gae-submit: %v", err)
	}
	name, err := c.CallString(ctx, "scheduler.submit", plan)
	if err != nil {
		log.Fatalf("gae-submit: submit: %v", err)
	}
	fmt.Printf("submitted plan %q\n", name)
	if !*watch {
		return
	}
	for {
		status, err := c.CallStruct(ctx, "scheduler.plan", name)
		if err != nil {
			log.Fatalf("gae-submit: status: %v", err)
		}
		printStatus(status)
		if done, _ := status["done"].(bool); done {
			if ok, _ := status["succeeded"].(bool); ok {
				fmt.Println("plan completed successfully")
				return
			}
			fmt.Println("plan finished with failures")
			os.Exit(1)
		}
		time.Sleep(*interval)
	}
}

func printStatus(status map[string]any) {
	tasks, _ := status["tasks"].([]any)
	fmt.Printf("plan %s:", status["name"])
	for _, t := range tasks {
		m, ok := t.(map[string]any)
		if !ok {
			continue
		}
		fmt.Printf("  %s=%s@%v", m["task"], m["state"], m["site"])
	}
	fmt.Println()
}
