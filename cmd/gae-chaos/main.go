// Command gae-chaos is the chaos harness front-end: it drives
// concurrent mutating load through a fault-injecting transport (drops,
// ack losses, duplicate deliveries) against a real gae-server process,
// SIGKILLs and restarts that process mid-load, and then reconciles the
// client-side acked-op log against the recovered server state. It exits
// nonzero unless the exactly-once invariant held: no acked op lost, no
// op applied twice.
//
// By default it builds and supervises its own gae-server on a scratch
// data directory:
//
//	gae-chaos -clients 3 -ops 12 -kills 2
//
// Point it at an externally managed server with -url (kills are then
// disabled: the harness cannot crash a server it does not own).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/clarens"
	"repro/pkg/gae"
)

func main() {
	var (
		url     = flag.String("url", "", "externally managed server URL (empty: spawn a gae-server; -kills forced to 0 when set)")
		server  = flag.String("server", "", "prebuilt gae-server binary (empty: go build ./cmd/gae-server)")
		data    = flag.String("data", "", "durable data directory for the spawned server (empty: temp dir)")
		clients = flag.Int("clients", 3, "concurrent client workers")
		ops     = flag.Int("ops", 12, "acked ops each worker must complete")
		kills   = flag.Int("kills", 2, "SIGKILL/restart cycles spread across the run")
		seed    = flag.Int64("seed", 1, "fault-injection random seed")
		drop    = flag.Float64("drop", 0.05, "probability a request is dropped undelivered")
		ackloss = flag.Float64("ackloss", 0.10, "probability a delivered request's response is discarded")
		dup     = flag.Float64("dup", 0.10, "probability a request is delivered twice")
		timeout = flag.Duration("timeout", 2*time.Minute, "overall run deadline")
		out     = flag.String("out", "-", "report destination ('-' = stdout)")

		fsyncAfter = flag.Duration("fault-fsync-after", 25*time.Millisecond,
			"arm journal fsync faults in a spawned server this long after it starts (0 = no fsync faults)")
		fsyncCount = flag.Int("fault-fsync-count", 2,
			"consecutive journal fsyncs to fail per armed fault")
		fsyncLives = flag.Int("fault-lifetimes", 2,
			"number of server lifetimes that get the fsync fault armed (later restarts run clean)")
		shortWrite = flag.Bool("fault-short-write", false,
			"also tear the faulted journal write (short write)")
	)
	flag.Parse()
	log.SetPrefix("gae-chaos: ")
	log.SetFlags(0)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cfg := chaos.Config{
		User:    "alice",
		Pass:    "pw",
		Workers: *clients,
		Ops:     *ops,
		Kills:   *kills,
		Faults:  chaos.Faults{Seed: *seed, DropProb: *drop, AckLossProb: *ackloss, DupProb: *dup},
		Nonce:   fmt.Sprintf("chaos-%d-%d", os.Getpid(), time.Now().UnixNano()),
		Retry: gae.RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: 10 * time.Millisecond,
			MaxBackoff:  200 * time.Millisecond,
			// The harness's own retry-until-acked loop is the availability
			// mechanism; a tripping breaker would only slow it down.
			BreakerThreshold: 1000,
		},
		Logf: log.Printf,
	}

	var sp *serverProc
	if *url != "" {
		cfg.URL = *url
		cfg.Kills = 0
		cfg.Control = chaos.ServerControl{
			Kill:  func() error { return fmt.Errorf("cannot kill an externally managed server") },
			Start: func() (string, error) { return *url, nil },
		}
	} else {
		var err error
		sp, err = newServerProc(ctx, *server, *data)
		if err != nil {
			log.Fatal(err)
		}
		defer sp.cleanup()
		if *fsyncAfter > 0 {
			// The first -fault-lifetimes servers re-arm the fault shortly
			// after start, so fsync failures land while mutations are in
			// flight: the server crashes itself (durability-lost exit) and
			// the watchdog restarts it. Later lifetimes run clean so the
			// run converges instead of crash-looping.
			sp.faultBudget = *fsyncLives
			sp.faultArgs = []string{
				"-fault-fsync-after", fsyncAfter.String(),
				"-fault-fsync-count", fmt.Sprint(*fsyncCount),
			}
			if *shortWrite {
				sp.faultArgs = append(sp.faultArgs, "-fault-short-write")
			}
		}
		u, err := sp.start()
		if err != nil {
			log.Fatal(err)
		}
		if err := waitReady(ctx, u); err != nil {
			log.Fatal(err)
		}
		cfg.URL = u
		cfg.Control = chaos.ServerControl{Kill: sp.kill, Start: sp.start}
	}

	rep, err := chaos.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	var faultCrashes int64
	if sp != nil {
		faultCrashes = sp.crashes.Load()
	}
	enc, err := json.MarshalIndent(struct {
		*chaos.Report
		FaultCrashes int64 `json:"FaultCrashes"`
		Passed       bool  `json:"Passed"`
	}{rep, faultCrashes, rep.Passed()}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	if !rep.Passed() {
		log.Fatal("FAIL: exactly-once invariant violated")
	}
	log.Printf("PASS: %d ops acked over %d deliveries, %d kills, zero lost, zero double-applied",
		rep.AckedOps, rep.Attempts, rep.Kills)
}

// serverProc supervises a gae-server child: SIGKILL on demand, restart
// on the same pinned address over the same data directory. A watchdog
// also restarts the child when it crashes on its own — which the
// injected fsync faults make it do: a durability-lost server exits
// without draining so recovery can roll the dirty mutation back.
type serverProc struct {
	ctx       context.Context
	bin       string
	data      string
	addr      string
	scratch   string // temp root to remove on exit, if we made one
	faultArgs []string

	crashes atomic.Int64 // self-exits (fault crashes), not scripted kills

	mu          sync.Mutex
	cmd         *exec.Cmd
	done        chan struct{} // closed once sp.cmd has been reaped
	faultBudget int           // lifetimes left that arm the fsync fault
}

func newServerProc(ctx context.Context, bin, data string) (*serverProc, error) {
	sp := &serverProc{ctx: ctx, bin: bin, data: data}
	if sp.bin == "" || sp.data == "" {
		dir, err := os.MkdirTemp("", "gae-chaos-")
		if err != nil {
			return nil, err
		}
		sp.scratch = dir
		if sp.data == "" {
			sp.data = filepath.Join(dir, "data")
			if err := os.Mkdir(sp.data, 0o755); err != nil {
				return nil, err
			}
		}
		if sp.bin == "" {
			// Build a real binary: `go run` would put the server a process
			// group away and orphan it when we SIGKILL the wrapper.
			sp.bin = filepath.Join(dir, "gae-server")
			log.Printf("building %s", sp.bin)
			build := exec.CommandContext(ctx, "go", "build", "-o", sp.bin, "./cmd/gae-server")
			build.Stderr = os.Stderr
			if err := build.Run(); err != nil {
				return nil, fmt.Errorf("building gae-server: %w", err)
			}
		}
	}
	// Pin a port up front so restarts come back at the same endpoint.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sp.addr = l.Addr().String()
	l.Close()
	return sp, nil
}

func (sp *serverProc) start() (string, error) {
	args := []string{
		"-addr", sp.addr,
		"-data", sp.data,
		// Two sites: the workload's targetless move ops need a second
		// site for the scheduler to redirect to.
		"-sites", "siteA:2:0.0:0.1,siteB:2:0.0:0.1",
		"-links", "siteA-siteB:10:5",
		"-users", "alice:pw:1000",
		"-checkpoint", "2s",
		"-drain-timeout", "5s",
	}
	sp.mu.Lock()
	if sp.faultBudget > 0 {
		sp.faultBudget--
		args = append(args, sp.faultArgs...)
	}
	sp.mu.Unlock()
	cmd := exec.Command(sp.bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", fmt.Errorf("starting gae-server: %w", err)
	}
	done := make(chan struct{})
	sp.mu.Lock()
	sp.cmd, sp.done = cmd, done
	sp.mu.Unlock()
	go sp.watch(cmd, done)
	return "http://" + sp.addr, nil
}

// watch reaps the child and, when it exited on its own rather than via
// kill(), restarts it so the load keeps a server to retry against.
func (sp *serverProc) watch(cmd *exec.Cmd, done chan struct{}) {
	err := cmd.Wait()
	close(done)
	sp.mu.Lock()
	unexpected := sp.cmd == cmd // kill() nils sp.cmd before signalling
	if unexpected {
		sp.cmd = nil
	}
	sp.mu.Unlock()
	if !unexpected || sp.ctx.Err() != nil {
		return
	}
	sp.crashes.Add(1)
	log.Printf("server crashed (%v); watchdog restarting", err)
	if _, err := sp.start(); err != nil {
		log.Printf("watchdog restart failed: %v", err)
	}
}

// kill is the crash: SIGKILL, no drain, no final checkpoint — recovery
// must come from the snapshot plus the journal tail.
func (sp *serverProc) kill() error {
	// A fault crash may have beaten us here: the watchdog nils sp.cmd
	// before relaunching, so wait out that window instead of failing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sp.mu.Lock()
		cmd, done := sp.cmd, sp.done
		sp.cmd = nil
		sp.mu.Unlock()
		if cmd != nil && cmd.Process != nil {
			if err := cmd.Process.Kill(); err != nil {
				return err
			}
			<-done // reaped by watch; a kill error status is expected
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no server process to kill")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (sp *serverProc) cleanup() {
	sp.kill()
	if sp.scratch != "" {
		os.RemoveAll(sp.scratch)
	}
}

func waitReady(ctx context.Context, url string) error {
	cc := clarens.NewClientTimeout(url, 5*time.Second)
	for {
		if _, err := cc.Call(ctx, "system.ping"); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server at %s never answered: %w", url, ctx.Err())
		case <-time.After(25 * time.Millisecond):
		}
	}
}
