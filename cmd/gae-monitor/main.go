// Command gae-monitor surfaces the "Grid weather" a running gae-server
// observes: per-site load and occupancy from the MonALISA repository,
// metric series, job state-change events, and the replica catalog.
//
// Examples:
//
//	gae-monitor -user alice -pass secret sites
//	gae-monitor -user alice -pass secret series caltech LoadAvg 300
//	gae-monitor -user alice -pass secret events caltech/job3 600
//	gae-monitor -user alice -pass secret datasets
//	gae-monitor -user alice -pass secret replicas run2005A.raw
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/clarens"
)

func main() {
	var (
		server = flag.String("server", "http://localhost:8080", "Clarens endpoint")
		user   = flag.String("user", "alice", "user name")
		pass   = flag.String("pass", "secret", "password")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	ctx := context.Background()
	c := clarens.NewClient(*server)
	if err := c.Login(ctx, *user, *pass); err != nil {
		log.Fatalf("gae-monitor: %v", err)
	}
	switch cmd := args[0]; cmd {
	case "sites":
		rows, err := c.CallArray(ctx, "monitor.sites")
		fatalIf(err)
		fmt.Printf("%-12s %8s %8s %6s\n", "site", "load", "running", "free")
		for _, r := range rows {
			m, ok := r.(map[string]any)
			if !ok {
				continue
			}
			fmt.Printf("%-12v %8.2f %8.0f %6.0f\n",
				m["site"], num(m["load"]), num(m["running"]), num(m["free"]))
		}
	case "metrics":
		rows, err := c.CallArray(ctx, "monitor.metrics")
		fatalIf(err)
		for _, r := range rows {
			fmt.Println(r)
		}
	case "latest":
		need(args, 3)
		v, err := c.CallFloat(ctx, "monitor.latest", args[1], args[2])
		fatalIf(err)
		fmt.Printf("%s/%s = %g\n", args[1], args[2], v)
	case "series":
		need(args, 4)
		since, err := strconv.ParseFloat(args[3], 64)
		fatalIf(err)
		rows, err := c.CallArray(ctx, "monitor.series", args[1], args[2], since)
		fatalIf(err)
		for _, r := range rows {
			m, ok := r.(map[string]any)
			if !ok {
				continue
			}
			fmt.Printf("%v  %g\n", m["t"], num(m["value"]))
		}
	case "events":
		need(args, 3)
		since, err := strconv.ParseFloat(args[2], 64)
		fatalIf(err)
		rows, err := c.CallArray(ctx, "monitor.events", args[1], since)
		fatalIf(err)
		for _, r := range rows {
			m, ok := r.(map[string]any)
			if !ok {
				continue
			}
			fmt.Printf("%v  [%v] %v\n", m["t"], m["kind"], m["detail"])
		}
	case "datasets":
		rows, err := c.CallArray(ctx, "replica.datasets")
		fatalIf(err)
		for _, r := range rows {
			fmt.Println(r)
		}
	case "replicas":
		need(args, 2)
		rows, err := c.CallArray(ctx, "replica.locations", args[1])
		fatalIf(err)
		for _, r := range rows {
			m, ok := r.(map[string]any)
			if !ok {
				continue
			}
			fmt.Printf("%-12v %8.0f MB\n", m["site"], num(m["size_mb"]))
		}
	default:
		usage()
	}
}

func num(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int:
		return float64(x)
	}
	return 0
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func fatalIf(err error) {
	if err != nil {
		log.Fatalf("gae-monitor: %v", err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: gae-monitor [flags] <command> [args]

commands:
  sites                         per-site load / running / free snapshot
  metrics                       list all known metric series
  latest <source> <name>        most recent value of a metric
  series <source> <name> <sec>  samples from the last <sec> seconds
  events <source> <sec>         job state changes ("" source = all)
  datasets                      replica catalog contents
  replicas <dataset>            replica locations of a dataset
`)
	flag.PrintDefaults()
	os.Exit(2)
}
