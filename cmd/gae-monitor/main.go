// Command gae-monitor surfaces the "Grid weather" a running gae-server
// observes: per-site load and occupancy from the MonALISA repository,
// metric series, job state-change events, and the replica catalog — all
// through the typed gae.Client.
//
// Examples:
//
//	gae-monitor -user alice -pass secret sites
//	gae-monitor -user alice -pass secret series caltech LoadAvg 300
//	gae-monitor -user alice -pass secret events caltech/job3 600
//	gae-monitor -user alice -pass secret datasets
//	gae-monitor -user alice -pass secret replicas run2005A.raw
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"repro/pkg/gae"
)

func main() {
	var (
		server  = flag.String("server", "http://localhost:8080", "Clarens endpoint")
		user    = flag.String("user", "alice", "user name")
		pass    = flag.String("pass", "secret", "password")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	ctx := context.Background()
	c, err := gae.Dial(ctx, *server,
		gae.WithCredentials(*user, *pass), gae.WithTimeout(*timeout))
	if err != nil {
		log.Fatalf("gae-monitor: %v", err)
	}
	defer c.Close(ctx)
	switch cmd := args[0]; cmd {
	case "sites":
		rows, err := c.Weather(ctx)
		fatalIf(err)
		fmt.Printf("%-12s %8s %8s %6s\n", "site", "load", "running", "free")
		for _, w := range rows {
			fmt.Printf("%-12s %8.2f %8.0f %6.0f\n", w.Site, w.Load, w.Running, w.Free)
		}
	case "metrics":
		rows, err := c.Metrics(ctx)
		fatalIf(err)
		for _, r := range rows {
			fmt.Println(r)
		}
	case "latest":
		need(args, 3)
		v, err := c.Latest(ctx, args[1], args[2])
		fatalIf(err)
		fmt.Printf("%s/%s = %g\n", args[1], args[2], v)
	case "series":
		need(args, 4)
		since, err := strconv.ParseFloat(args[3], 64)
		fatalIf(err)
		pts, err := c.Series(ctx, args[1], args[2], since)
		fatalIf(err)
		for _, p := range pts {
			fmt.Printf("%v  %g\n", p.Time, p.Value)
		}
	case "events":
		need(args, 3)
		since, err := strconv.ParseFloat(args[2], 64)
		fatalIf(err)
		evs, err := c.Events(ctx, args[1], since)
		fatalIf(err)
		for _, e := range evs {
			fmt.Printf("%v  [%s] %s\n", e.Time, e.Kind, e.Detail)
		}
	case "datasets":
		rows, err := c.Datasets(ctx)
		fatalIf(err)
		for _, r := range rows {
			fmt.Println(r)
		}
	case "replicas":
		need(args, 2)
		locs, err := c.Replicas(ctx, args[1])
		fatalIf(err)
		for _, l := range locs {
			fmt.Printf("%-12s %8.0f MB\n", l.Site, l.SizeMB)
		}
	default:
		usage()
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func fatalIf(err error) {
	if err != nil {
		log.Fatalf("gae-monitor: %v", err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: gae-monitor [flags] <command> [args]

commands:
  sites                         per-site load / running / free snapshot
  metrics                       list all known metric series
  latest <source> <name>        most recent value of a metric
  series <source> <name> <sec>  samples from the last <sec> seconds
  events <source> <sec>         job state changes ("" source = all)
  datasets                      replica catalog contents
  replicas <dataset>            replica locations of a dataset
`)
	flag.PrintDefaults()
	os.Exit(2)
}
