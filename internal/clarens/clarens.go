// Package clarens reproduces the Clarens Grid-enabled web services
// framework, the "backbone" hosting every GAE service in the paper.
//
// Clarens (Steenberg et al., CHEP 2004) gives hosted services four things,
// all reproduced here over the stdlib HTTP stack and this repository's
// XML-RPC codec:
//
//   - a web-service host: services register named methods, dispatched as
//     "service.method" XML-RPC calls over HTTP POST
//   - authentication: system.auth issues session tokens; requests carry
//     the token in the X-Clarens-Session header
//   - access control: per-method ACLs checked on every dispatch
//   - lookup and discovery: a registry of hosted services, federated
//     peer-to-peer so a client of one Clarens host can discover services
//     hosted by any connected peer (the paper's "peer-to-peer based
//     lookup service")
//
// The Figure 6 experiment (Job Monitoring Service response time versus
// parallel clients) exercises this exact path: HTTP → session check →
// ACL check → service dispatch → XML-RPC response.
package clarens

import (
	"context"
	"errors"
)

// ctxKey is the package-private context key type.
type ctxKey int

const (
	ctxSessionToken ctxKey = iota
	ctxRemoteAddr
	ctxRequestID
)

// SessionToken extracts the caller's session token from a handler context;
// empty when the request was unauthenticated.
func SessionToken(ctx context.Context) string {
	s, _ := ctx.Value(ctxSessionToken).(string)
	return s
}

// RemoteAddr extracts the caller's network address from a handler context.
func RemoteAddr(ctx context.Context) string {
	s, _ := ctx.Value(ctxRemoteAddr).(string)
	return s
}

// RequestID extracts the caller's idempotency key from a handler context;
// empty when the call was not stamped. The key identifies one logical
// mutation across retries: a server that has already applied it returns
// the recorded result instead of applying it again.
func RequestID(ctx context.Context) string {
	s, _ := ctx.Value(ctxRequestID).(string)
	return s
}

// WithRequestID stamps an idempotency key onto a context. On the wire the
// key travels in RequestIDHeader; on the local transport the context
// reaches the service layer directly.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxRequestID, id)
}

// ErrBadCredentials is returned by Authenticator implementations.
var ErrBadCredentials = errors.New("clarens: bad credentials")

// SessionHeader is the HTTP header carrying the Clarens session token.
const SessionHeader = "X-Clarens-Session"

// RequestIDHeader is the HTTP header carrying a mutating call's
// idempotency key.
const RequestIDHeader = "X-Clarens-Request-Id"
