package clarens

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/durable"
)

// StateStore holds per-user analysis-session state. The GAE's services
// cooperate to "store the state of users' analysis sessions" (paper §3);
// this store gives every Clarens host a persistent, per-user key→value
// space for exactly that: selected datasets, cut definitions, job plan
// drafts, UI layout — whatever an interactive analysis client wants to
// find again at its next login.
type StateStore struct {
	mu   sync.RWMutex
	data map[string]map[string]string // user → key → value
}

// NewStateStore creates an empty store.
func NewStateStore() *StateStore {
	return &StateStore{data: make(map[string]map[string]string)}
}

// Set stores a value under the user's key.
func (s *StateStore) Set(user, key, value string) error {
	if user == "" {
		return fmt.Errorf("clarens: state for empty user")
	}
	if key == "" {
		return fmt.Errorf("clarens: empty state key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.data[user]
	if !ok {
		m = make(map[string]string)
		s.data[user] = m
	}
	m[key] = value
	return nil
}

// Get fetches the user's value for key.
func (s *StateStore) Get(user, key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[user][key]
	return v, ok
}

// Delete removes a key; it reports whether the key existed.
func (s *StateStore) Delete(user, key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.data[user]
	if !ok {
		return false
	}
	if _, ok := m[key]; !ok {
		return false
	}
	delete(m, key)
	if len(m) == 0 {
		delete(s.data, user)
	}
	return true
}

// Keys lists the user's state keys, sorted.
func (s *StateStore) Keys(user string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.data[user]
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Save persists the store as JSON with crash-safe replacement (write-temp
// + fsync + atomic rename): a crash mid-save leaves the previous file
// intact, never a torn one.
func (s *StateStore) Save(path string) error {
	s.mu.RLock()
	data, err := json.MarshalIndent(s.data, "", "  ")
	s.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("clarens: encoding state: %w", err)
	}
	return durable.WriteFileAtomic(path, data, 0o600)
}

// Export copies the full user→key→value contents for the durable snapshot
// codec (nil when empty, so an empty store round-trips canonically).
func (s *StateStore) Export() map[string]map[string]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.data) == 0 {
		return nil
	}
	out := make(map[string]map[string]string, len(s.data))
	for user, m := range s.data {
		um := make(map[string]string, len(m))
		for k, v := range m {
			um[k] = v
		}
		out[user] = um
	}
	return out
}

// Restore replaces the store contents with an exported copy.
func (s *StateStore) Restore(data map[string]map[string]string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string]map[string]string, len(data))
	for user, m := range data {
		um := make(map[string]string, len(m))
		for k, v := range m {
			um[k] = v
		}
		s.data[user] = um
	}
}

// Load replaces the store contents from a file written by Save.
func (s *StateStore) Load(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("clarens: reading state: %w", err)
	}
	data := make(map[string]map[string]string)
	if err := json.Unmarshal(raw, &data); err != nil {
		return fmt.Errorf("clarens: decoding state: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = data
	return nil
}
