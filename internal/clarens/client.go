package clarens

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/xmlrpc"
)

// Client is a session-aware Clarens client. After Login every call carries
// the session token; the embedded typed helpers (CallString, CallStruct,
// ...) come from the XML-RPC client.
type Client struct {
	*xmlrpc.Client
}

// DefaultTimeout bounds every HTTP request of a new client. Use
// SetTimeout (or a context deadline on individual calls) to change it.
const DefaultTimeout = 30 * time.Second

// NewClient creates a client for a Clarens endpoint with DefaultTimeout.
func NewClient(endpoint string) *Client {
	c := xmlrpc.NewClient(endpoint)
	c.HTTP = &http.Client{Timeout: DefaultTimeout}
	c.Headers = make(map[string]string)
	return &Client{Client: c}
}

// NewClientTimeout creates a client whose HTTP requests are bounded by
// timeout (0 disables the bound; per-call contexts still apply).
func NewClientTimeout(endpoint string, timeout time.Duration) *Client {
	c := NewClient(endpoint)
	c.SetTimeout(timeout)
	return c
}

// SetTimeout rebounds every future HTTP request. A timeout of 0 removes
// the bound, leaving cancellation to per-call contexts. Like SetToken
// and the Headers map, it is part of client configuration: call it
// before the client is shared between goroutines (typically right after
// construction), not concurrently with Call. A custom Transport
// installed with SetTransport survives the change.
func (c *Client) SetTimeout(timeout time.Duration) {
	var transport http.RoundTripper
	if c.HTTP != nil {
		transport = c.HTTP.Transport
	}
	c.HTTP = &http.Client{Timeout: timeout, Transport: transport}
}

// SetTransport installs a custom HTTP round-tripper (nil restores the
// default), preserving the configured timeout. Fault-injection harnesses
// wrap the transport here.
func (c *Client) SetTransport(rt http.RoundTripper) {
	var timeout time.Duration
	if c.HTTP != nil {
		timeout = c.HTTP.Timeout
	}
	c.HTTP = &http.Client{Timeout: timeout, Transport: rt}
}

// Login authenticates and attaches the session token to future calls.
func (c *Client) Login(ctx context.Context, user, password string) error {
	token, err := c.CallString(ctx, "system.auth", user, password)
	if err != nil {
		return fmt.Errorf("clarens: login %q: %w", user, err)
	}
	c.Headers[SessionHeader] = token
	return nil
}

// Logout closes the session server-side and drops the local token.
func (c *Client) Logout(ctx context.Context) error {
	_, err := c.Call(ctx, "system.logout")
	delete(c.Headers, SessionHeader)
	return err
}

// Token returns the current session token ("" when logged out).
func (c *Client) Token() string { return c.Headers[SessionHeader] }

// SetToken attaches an existing session token (e.g. shared across
// processes).
func (c *Client) SetToken(token string) {
	if token == "" {
		delete(c.Headers, SessionHeader)
		return
	}
	c.Headers[SessionHeader] = token
}

// Discover asks the host (and its peers) for a service endpoint.
func (c *Client) Discover(ctx context.Context, service string) (ServiceInfo, error) {
	res, err := c.CallStruct(ctx, "registry.discover", service, true)
	if err != nil {
		return ServiceInfo{}, err
	}
	return structToServiceInfo(res), nil
}

// Services lists the host's registered services.
func (c *Client) Services(ctx context.Context) ([]ServiceInfo, error) {
	raw, err := c.CallArray(ctx, "registry.list")
	if err != nil {
		return nil, err
	}
	out := make([]ServiceInfo, 0, len(raw))
	for _, v := range raw {
		if m, ok := v.(map[string]any); ok {
			out = append(out, structToServiceInfo(m))
		}
	}
	return out, nil
}
