package clarens

import (
	"sort"
	"sync"
)

// ServiceInfo describes one registered service for lookup and discovery.
type ServiceInfo struct {
	Name        string // service prefix, e.g. "jobmon"
	Endpoint    string // URL of the hosting Clarens server
	Description string
	Methods     []string // fully qualified method names
}

// Registry is a Clarens host's service directory. Lookups can be local or
// federated across peers (see Server.Discover).
type Registry struct {
	mu       sync.RWMutex
	services map[string]ServiceInfo
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{services: make(map[string]ServiceInfo)}
}

// Register adds or replaces a service record.
func (r *Registry) Register(info ServiceInfo) {
	if info.Name == "" {
		panic("clarens: registering service with empty name")
	}
	sort.Strings(info.Methods)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.services[info.Name] = info
}

// Unregister removes a service record.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.services, name)
}

// Lookup finds a service by name.
func (r *Registry) Lookup(name string) (ServiceInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	info, ok := r.services[name]
	return info, ok
}

// List returns every registered service sorted by name.
func (r *Registry) List() []ServiceInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ServiceInfo, 0, len(r.services))
	for _, info := range r.services {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
