package clarens

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/vtime"
	"repro/internal/xmlrpc"
)

// Server is a Clarens web-service host: an XML-RPC dispatcher with
// sessions, ACLs, a service registry, and peer-to-peer discovery.
type Server struct {
	Name     string
	Users    *UserStore
	Sessions *SessionStore
	ACL      *ACL
	Registry *Registry

	mux *xmlrpc.ServeMux

	mu       sync.Mutex
	baseURL  string
	peers    []string
	listener net.Listener
	httpSrv  *http.Server
	draining bool
	httpMu   sync.RWMutex
	http     map[string]http.Handler // extra plain-HTTP paths (exact match)
}

// NewServer creates a host named name. The clock governs session expiry;
// nil means the real clock.
func NewServer(name string, clock vtime.Clock) *Server {
	s := &Server{
		Name:     name,
		Users:    NewUserStore(),
		Sessions: NewSessionStore(clock, 0),
		ACL:      NewACL(),
		Registry: NewRegistry(),
		mux:      xmlrpc.NewServeMux(),
	}
	s.mux.Intercept = s.intercept
	s.registerBuiltins()
	return s
}

// intercept enforces authentication and access control on every dispatch.
// A draining host rejects everything with FaultUnavailable — the one
// fault clients may retry, against this host or a successor.
func (s *Server) intercept(ctx context.Context, method string, args []any, next xmlrpc.Handler) (any, error) {
	if s.Draining() {
		return nil, xmlrpc.NewFault(xmlrpc.FaultUnavailable, "host %s is draining", s.Name)
	}
	sess, _ := s.Sessions.Lookup(SessionToken(ctx))
	if !s.ACL.Check(sess, method) {
		if sess == nil {
			return nil, xmlrpc.NewFault(xmlrpc.FaultAuth, "method %s requires authentication", method)
		}
		return nil, xmlrpc.NewFault(xmlrpc.FaultAuth, "user %s may not call %s", sess.User.Name, method)
	}
	return next(ctx, args)
}

// RegisterService hosts a set of methods under the service name and
// records it in the registry. Method keys are bare names ("status"); they
// are exposed as "name.key".
func (s *Server) RegisterService(name, description string, methods map[string]xmlrpc.Handler) {
	if name == "" {
		panic("clarens: empty service name")
	}
	full := make([]string, 0, len(methods))
	for m, h := range methods {
		fq := name + "." + m
		s.mux.Handle(fq, h)
		full = append(full, fq)
	}
	// The method list is wire-visible through the registry's service
	// listing; map order must not leak into it.
	sort.Strings(full)
	s.mu.Lock()
	base := s.baseURL
	s.mu.Unlock()
	s.Registry.Register(ServiceInfo{
		Name:        name,
		Endpoint:    base,
		Description: description,
		Methods:     full,
	})
}

// registerBuiltins installs the system.* and registry.* methods every
// Clarens host exposes.
func (s *Server) registerBuiltins() {
	s.mux.Handle("system.ping", func(context.Context, []any) (any, error) {
		return s.Name, nil
	})
	s.mux.Handle("system.auth", func(_ context.Context, args []any) (any, error) {
		p := xmlrpc.Params(args)
		if err := p.Want(2); err != nil {
			return nil, err
		}
		user, err := p.String(0)
		if err != nil {
			return nil, err
		}
		pass, err := p.String(1)
		if err != nil {
			return nil, err
		}
		u, err := s.Users.Verify(user, pass)
		if err != nil {
			return nil, xmlrpc.NewFault(xmlrpc.FaultAuth, "authentication failed for %q", user)
		}
		sess, err := s.Sessions.Open(u)
		if err != nil {
			return nil, err
		}
		return sess.Token, nil
	})
	s.mux.Handle("system.logout", func(ctx context.Context, _ []any) (any, error) {
		return s.Sessions.Close(SessionToken(ctx)), nil
	})
	s.mux.Handle("system.whoami", func(ctx context.Context, _ []any) (any, error) {
		sess, ok := s.Sessions.Lookup(SessionToken(ctx))
		if !ok {
			return nil, xmlrpc.NewFault(xmlrpc.FaultAuth, "no session")
		}
		roles := make([]any, len(sess.User.Roles))
		for i, r := range sess.User.Roles {
			roles[i] = r
		}
		return map[string]any{"user": sess.User.Name, "roles": roles}, nil
	})
	s.mux.Handle("registry.list", func(context.Context, []any) (any, error) {
		infos := s.Registry.List()
		out := make([]any, len(infos))
		for i, info := range infos {
			out[i] = serviceInfoToStruct(info)
		}
		return out, nil
	})
	s.mux.Handle("registry.lookup", func(_ context.Context, args []any) (any, error) {
		p := xmlrpc.Params(args)
		name, err := p.String(0)
		if err != nil {
			return nil, err
		}
		info, ok := s.Registry.Lookup(name)
		if !ok {
			return nil, xmlrpc.NewFault(xmlrpc.FaultApplication, "no service %q", name)
		}
		return serviceInfoToStruct(info), nil
	})
	s.mux.Handle("registry.peers", func(context.Context, []any) (any, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		out := make([]any, len(s.peers))
		for i, p := range s.peers {
			out[i] = p
		}
		return out, nil
	})
	s.mux.Handle("registry.discover", func(ctx context.Context, args []any) (any, error) {
		p := xmlrpc.Params(args)
		name, err := p.String(0)
		if err != nil {
			return nil, err
		}
		forward := true
		if p.Len() >= 2 {
			if fwd, err := p.Bool(1); err == nil {
				forward = fwd
			}
		}
		info, ok := s.Discover(ctx, name, forward)
		if !ok {
			return nil, xmlrpc.NewFault(xmlrpc.FaultApplication, "service %q not found in federation", name)
		}
		return serviceInfoToStruct(info), nil
	})

	// Built-in ACLs: registry reads are open to all; logout/whoami need a
	// session.
	s.ACL.Allow("*", "registry.*")
	s.ACL.Allow("authenticated", "system.logout")
	s.ACL.Allow("authenticated", "system.whoami")
}

func serviceInfoToStruct(info ServiceInfo) map[string]any {
	methods := make([]any, len(info.Methods))
	for i, m := range info.Methods {
		methods[i] = m
	}
	return map[string]any{
		"name":        info.Name,
		"endpoint":    info.Endpoint,
		"description": info.Description,
		"methods":     methods,
	}
}

func structToServiceInfo(m map[string]any) ServiceInfo {
	info := ServiceInfo{}
	info.Name, _ = m["name"].(string)
	info.Endpoint, _ = m["endpoint"].(string)
	info.Description, _ = m["description"].(string)
	if raw, ok := m["methods"].([]any); ok {
		for _, v := range raw {
			if s, ok := v.(string); ok {
				info.Methods = append(info.Methods, s)
			}
		}
	}
	return info
}

// AddPeer connects this host to another Clarens server's endpoint for
// federated discovery.
func (s *Server) AddPeer(endpoint string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.peers {
		if p == endpoint {
			return
		}
	}
	s.peers = append(s.peers, endpoint)
}

// Peers returns the configured peer endpoints.
func (s *Server) Peers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.peers))
	copy(out, s.peers)
	return out
}

// Discover resolves a service name locally, then (if forward is true)
// asks each peer with forwarding disabled — one-hop flooding, the shape of
// Clarens' P2P lookup without loop risk.
func (s *Server) Discover(ctx context.Context, name string, forward bool) (ServiceInfo, bool) {
	if info, ok := s.Registry.Lookup(name); ok {
		return info, true
	}
	if !forward {
		return ServiceInfo{}, false
	}
	for _, peer := range s.Peers() {
		c := xmlrpc.NewClient(peer)
		c.HTTP = &http.Client{Timeout: 5 * time.Second}
		res, err := c.Call(ctx, "registry.discover", name, false)
		if err != nil {
			continue
		}
		if m, ok := res.(map[string]any); ok {
			info := structToServiceInfo(m)
			if info.Name == name {
				return info, true
			}
		}
	}
	return ServiceInfo{}, false
}

// HandleHTTP mounts a plain-HTTP handler at an exact path beside the
// XML-RPC dispatcher ("/metrics", "/healthz"). These paths are served
// directly — no session, ACL, or drain interception — so read-only
// observability endpoints keep answering while the host drains. The
// XML-RPC surface is unaffected: it serves every path not claimed here.
func (s *Server) HandleHTTP(path string, h http.Handler) {
	if path == "" || path[0] != '/' {
		panic(fmt.Sprintf("clarens: HandleHTTP path %q must start with /", path))
	}
	s.httpMu.Lock()
	if s.http == nil {
		s.http = make(map[string]http.Handler)
	}
	s.http[path] = h
	s.httpMu.Unlock()
}

// ServeHTTP implements http.Handler: extra plain-HTTP paths mounted by
// HandleHTTP are dispatched directly; everything else moves the session
// header into the request context and goes through the XML-RPC mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.httpMu.RLock()
	h := s.http[r.URL.Path]
	s.httpMu.RUnlock()
	if h != nil {
		h.ServeHTTP(w, r)
		return
	}
	ctx := context.WithValue(r.Context(), ctxSessionToken, r.Header.Get(SessionHeader))
	ctx = context.WithValue(ctx, ctxRemoteAddr, r.RemoteAddr)
	if rid := r.Header.Get(RequestIDHeader); rid != "" {
		ctx = WithRequestID(ctx, rid)
	}
	s.mux.ServeHTTP(w, r.WithContext(ctx))
}

// SetBaseURL records the host's public endpoint and rewrites existing
// registry records to it. Tests wiring the server through httptest call
// this with the test server URL.
func (s *Server) SetBaseURL(url string) {
	s.mu.Lock()
	s.baseURL = url
	s.mu.Unlock()
	for _, info := range s.Registry.List() {
		info.Endpoint = url
		s.Registry.Register(info)
	}
}

// BaseURL returns the configured endpoint ("" before Start/SetBaseURL).
func (s *Server) BaseURL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.baseURL
}

// Start listens on addr ("host:port"; ":0" picks a free port) and serves
// until Stop. It returns the base URL.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("clarens: listen %s: %w", addr, err)
	}
	url := "http://" + ln.Addr().String()
	srv := &http.Server{Handler: s}
	s.mu.Lock()
	s.listener = ln
	s.httpSrv = srv
	s.mu.Unlock()
	s.SetBaseURL(url)
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Stop
	return url, nil
}

// SetDraining switches the host in or out of draining mode. A draining
// host answers every call with FaultUnavailable; servers flip it on
// before a graceful stop so clients fail over (or back off) instead of
// queueing behind a dying listener.
func (s *Server) SetDraining(v bool) {
	s.mu.Lock()
	s.draining = v
	s.mu.Unlock()
}

// Draining reports whether the host is refusing calls ahead of a stop.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Kill abruptly closes the HTTP server without waiting for in-flight
// requests — the chaos harness's stand-in for a crash.
func (s *Server) Kill() error {
	s.mu.Lock()
	srv := s.httpSrv
	s.httpSrv = nil
	s.listener = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// Stop shuts the HTTP listener down.
func (s *Server) Stop() error {
	s.mu.Lock()
	srv := s.httpSrv
	s.httpSrv = nil
	s.listener = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// Methods returns every dispatchable method name, sorted.
func (s *Server) Methods() []string { return s.mux.Methods() }
