package clarens

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/vtime"
)

// User is a principal known to a Clarens host. Grid deployments
// authenticated with X.509 proxies; we model the same trust decisions
// with salted password digests and named roles.
type User struct {
	Name  string
	Roles []string
}

// UserStore holds users and verifies credentials.
type UserStore struct {
	mu    sync.RWMutex
	users map[string]*storedUser
}

type storedUser struct {
	name   string
	salt   []byte
	digest []byte
	roles  map[string]bool
}

// NewUserStore creates an empty user database.
func NewUserStore() *UserStore {
	return &UserStore{users: make(map[string]*storedUser)}
}

// Add creates or replaces a user with the given password and roles.
func (s *UserStore) Add(name, password string, roles ...string) error {
	if name == "" {
		return fmt.Errorf("clarens: empty user name")
	}
	salt := make([]byte, 16)
	if _, err := rand.Read(salt); err != nil {
		return fmt.Errorf("clarens: generating salt: %w", err)
	}
	u := &storedUser{
		name:   name,
		salt:   salt,
		digest: digest(salt, password),
		roles:  make(map[string]bool, len(roles)),
	}
	for _, r := range roles {
		u.roles[r] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.users[name] = u
	return nil
}

// Verify checks name/password and returns the user's roles.
func (s *UserStore) Verify(name, password string) (User, error) {
	s.mu.RLock()
	u, ok := s.users[name]
	s.mu.RUnlock()
	if !ok {
		return User{}, ErrBadCredentials
	}
	if subtle.ConstantTimeCompare(u.digest, digest(u.salt, password)) != 1 {
		return User{}, ErrBadCredentials
	}
	roles := make([]string, 0, len(u.roles))
	for r := range u.roles {
		roles = append(roles, r)
	}
	sort.Strings(roles)
	return User{Name: name, Roles: roles}, nil
}

// HasRole reports whether the named user holds the role.
func (s *UserStore) HasRole(name, role string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	u, ok := s.users[name]
	return ok && u.roles[role]
}

func digest(salt []byte, password string) []byte {
	h := sha256.New()
	h.Write(salt)
	h.Write([]byte(password))
	return h.Sum(nil)
}

// Session is an authenticated attachment to a Clarens host.
type Session struct {
	Token   string
	User    User
	Created time.Time
	Expires time.Time
}

// SessionStore issues and validates session tokens.
type SessionStore struct {
	clock vtime.Clock
	ttl   time.Duration

	mu       sync.Mutex
	sessions map[string]*Session
}

// NewSessionStore creates a session store; sessions expire after ttl
// (default 12 hours, Clarens' proxy-lifetime-scale default).
func NewSessionStore(clock vtime.Clock, ttl time.Duration) *SessionStore {
	if clock == nil {
		clock = vtime.Real()
	}
	if ttl <= 0 {
		ttl = 12 * time.Hour
	}
	return &SessionStore{clock: clock, ttl: ttl, sessions: make(map[string]*Session)}
}

// Open creates a session for the user and returns its token.
func (s *SessionStore) Open(u User) (*Session, error) {
	raw := make([]byte, 20)
	if _, err := rand.Read(raw); err != nil {
		return nil, fmt.Errorf("clarens: generating session token: %w", err)
	}
	now := s.clock.Now()
	sess := &Session{
		Token:   hex.EncodeToString(raw),
		User:    u,
		Created: now,
		Expires: now.Add(s.ttl),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions[sess.Token] = sess
	return sess, nil
}

// Lookup resolves a token to its live session; expired sessions are
// reaped on access.
func (s *SessionStore) Lookup(token string) (*Session, bool) {
	if token == "" {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[token]
	if !ok {
		return nil, false
	}
	if s.clock.Now().After(sess.Expires) {
		delete(s.sessions, token)
		return nil, false
	}
	return sess, true
}

// Close terminates a session; it reports whether the token was live.
func (s *SessionStore) Close(token string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sessions[token]
	delete(s.sessions, token)
	return ok
}

// Active returns the number of live sessions (expired ones included until
// reaped).
func (s *SessionStore) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}
