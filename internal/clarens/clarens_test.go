package clarens

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/vtime"
	"repro/internal/xmlrpc"
)

// startHost spins up a Clarens host on an httptest server with one user
// and one demo service.
func startHost(t *testing.T, clock vtime.Clock) (*Server, *Client) {
	t.Helper()
	srv := NewServer("testhost", clock)
	if err := srv.Users.Add("alice", "secret", "physicist"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Users.Add("bob", "hunter2"); err != nil {
		t.Fatal(err)
	}
	srv.RegisterService("demo", "demo service", map[string]xmlrpc.Handler{
		"echo": func(_ context.Context, args []any) (any, error) { return args, nil },
		"who": func(ctx context.Context, _ []any) (any, error) {
			sess, ok := srv.Sessions.Lookup(SessionToken(ctx))
			if !ok {
				return "anonymous", nil
			}
			return sess.User.Name, nil
		},
	})
	srv.ACL.Allow("authenticated", "demo.*")
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	srv.SetBaseURL(hs.URL)
	return srv, NewClient(hs.URL)
}

func TestPingIsPublic(t *testing.T) {
	_, c := startHost(t, nil)
	name, err := c.CallString(context.Background(), "system.ping")
	if err != nil {
		t.Fatal(err)
	}
	if name != "testhost" {
		t.Fatalf("ping = %q", name)
	}
}

func TestAuthFlow(t *testing.T) {
	_, c := startHost(t, nil)
	ctx := context.Background()
	// Protected method before login.
	if _, err := c.Call(ctx, "demo.echo", 1); !xmlrpc.IsFault(err, xmlrpc.FaultAuth) {
		t.Fatalf("unauthenticated call error = %v", err)
	}
	// Bad credentials.
	if err := c.Login(ctx, "alice", "wrong"); err == nil {
		t.Fatal("bad password accepted")
	}
	if err := c.Login(ctx, "eve", "x"); err == nil {
		t.Fatal("unknown user accepted")
	}
	// Good login.
	if err := c.Login(ctx, "alice", "secret"); err != nil {
		t.Fatal(err)
	}
	if c.Token() == "" {
		t.Fatal("no token after login")
	}
	who, err := c.CallString(ctx, "demo.who")
	if err != nil {
		t.Fatal(err)
	}
	if who != "alice" {
		t.Fatalf("who = %q", who)
	}
	// whoami built-in.
	info, err := c.CallStruct(ctx, "system.whoami")
	if err != nil {
		t.Fatal(err)
	}
	if info["user"] != "alice" {
		t.Fatalf("whoami = %v", info)
	}
	// Logout invalidates the session.
	if err := c.Logout(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(ctx, "demo.echo", 1); !xmlrpc.IsFault(err, xmlrpc.FaultAuth) {
		t.Fatalf("post-logout call error = %v", err)
	}
}

func TestSessionExpiry(t *testing.T) {
	clock := vtime.NewSimClock(time.Time{})
	srv, c := startHost(t, clock)
	ctx := context.Background()
	if err := c.Login(ctx, "alice", "secret"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(ctx, "demo.echo", 1); err != nil {
		t.Fatalf("fresh session rejected: %v", err)
	}
	clock.Advance(13 * time.Hour) // default TTL is 12h
	if _, err := c.Call(ctx, "demo.echo", 1); !xmlrpc.IsFault(err, xmlrpc.FaultAuth) {
		t.Fatalf("expired session error = %v", err)
	}
	if srv.Sessions.Active() != 0 {
		t.Fatalf("expired session not reaped: %d active", srv.Sessions.Active())
	}
}

func TestStolenTokenIsRejected(t *testing.T) {
	_, c := startHost(t, nil)
	c.SetToken("deadbeef")
	if _, err := c.Call(context.Background(), "demo.echo", 1); !xmlrpc.IsFault(err, xmlrpc.FaultAuth) {
		t.Fatalf("bogus token error = %v", err)
	}
	c.SetToken("")
	if c.Token() != "" {
		t.Fatal("SetToken(\"\") kept a token")
	}
}

func TestACLRolesAndDeny(t *testing.T) {
	srv, c := startHost(t, nil)
	srv.RegisterService("steering", "steer jobs", map[string]xmlrpc.Handler{
		"move": func(context.Context, []any) (any, error) { return "moved", nil },
		"kill": func(context.Context, []any) (any, error) { return "killed", nil },
	})
	srv.ACL.Allow("role:physicist", "steering.*")
	srv.ACL.Deny("*", "steering.kill")
	ctx := context.Background()

	if err := c.Login(ctx, "alice", "secret"); err != nil { // physicist
		t.Fatal(err)
	}
	if _, err := c.Call(ctx, "steering.move"); err != nil {
		t.Fatalf("role-allowed call failed: %v", err)
	}
	if _, err := c.Call(ctx, "steering.kill"); !xmlrpc.IsFault(err, xmlrpc.FaultAuth) {
		t.Fatalf("deny rule not enforced: %v", err)
	}

	bobC := NewClient(c.URL)
	if err := bobC.Login(ctx, "bob", "hunter2"); err != nil { // no role
		t.Fatal(err)
	}
	if _, err := bobC.Call(ctx, "steering.move"); !xmlrpc.IsFault(err, xmlrpc.FaultAuth) {
		t.Fatalf("roleless user allowed: %v", err)
	}
}

func TestACLSpecificAllowBeatsServiceDeny(t *testing.T) {
	a := NewACL()
	a.Deny("*", "svc.*")
	a.Allow("alice", "svc.read")
	sess := &Session{User: User{Name: "alice"}}
	if !a.Check(sess, "svc.read") {
		t.Fatal("exact allow lost to service-level deny")
	}
	if a.Check(sess, "svc.write") {
		t.Fatal("service-level deny not applied")
	}
}

func TestACLEqualSpecificityDenyWins(t *testing.T) {
	a := NewACL()
	a.Allow("alice", "svc.read")
	a.Deny("alice", "svc.read")
	if a.Check(&Session{User: User{Name: "alice"}}, "svc.read") {
		t.Fatal("deny did not win at equal specificity")
	}
}

func TestACLDefaultDeny(t *testing.T) {
	a := NewACL()
	if a.Check(nil, "anything.method") {
		t.Fatal("default allow")
	}
	if !a.Check(nil, "system.auth") || !a.Check(nil, "system.listMethods") {
		t.Fatal("built-in public methods blocked")
	}
}

func TestACLRuleValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty principal accepted")
		}
	}()
	NewACL().Allow("", "x")
}

func TestUserStoreVerify(t *testing.T) {
	us := NewUserStore()
	if err := us.Add("", "pw"); err == nil {
		t.Fatal("empty user name accepted")
	}
	if err := us.Add("carol", "pw", "admin", "ops"); err != nil {
		t.Fatal(err)
	}
	u, err := us.Verify("carol", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if u.Name != "carol" || len(u.Roles) != 2 || u.Roles[0] != "admin" {
		t.Fatalf("user = %+v", u)
	}
	if !us.HasRole("carol", "ops") || us.HasRole("carol", "root") || us.HasRole("nobody", "x") {
		t.Fatal("HasRole broken")
	}
	if _, err := us.Verify("carol", "wrong"); err != ErrBadCredentials {
		t.Fatalf("wrong password error = %v", err)
	}
}

func TestRegistryListAndLookup(t *testing.T) {
	_, c := startHost(t, nil)
	ctx := context.Background()
	svcs, err := c.Services(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(svcs) != 1 || svcs[0].Name != "demo" {
		t.Fatalf("Services = %+v", svcs)
	}
	if len(svcs[0].Methods) != 2 || svcs[0].Methods[0] != "demo.echo" {
		t.Fatalf("methods = %v", svcs[0].Methods)
	}
	if !strings.HasPrefix(svcs[0].Endpoint, "http://") {
		t.Fatalf("endpoint = %q", svcs[0].Endpoint)
	}
	got, err := c.CallStruct(ctx, "registry.lookup", "demo")
	if err != nil {
		t.Fatal(err)
	}
	if got["name"] != "demo" {
		t.Fatalf("lookup = %v", got)
	}
	if _, err := c.Call(ctx, "registry.lookup", "nope"); err == nil {
		t.Fatal("lookup of missing service succeeded")
	}
}

func TestP2PDiscovery(t *testing.T) {
	// Host A knows nothing; host B hosts "estimator"; A peers with B.
	srvA := NewServer("hostA", nil)
	srvB := NewServer("hostB", nil)
	srvB.RegisterService("estimator", "estimates", map[string]xmlrpc.Handler{
		"runtime": func(context.Context, []any) (any, error) { return 283.0, nil },
	})
	hsA := httptest.NewServer(srvA)
	hsB := httptest.NewServer(srvB)
	defer hsA.Close()
	defer hsB.Close()
	srvA.SetBaseURL(hsA.URL)
	srvB.SetBaseURL(hsB.URL)
	srvA.AddPeer(hsB.URL)
	srvA.AddPeer(hsB.URL) // duplicate ignored
	if got := srvA.Peers(); len(got) != 1 {
		t.Fatalf("peers = %v", got)
	}

	c := NewClient(hsA.URL)
	ctx := context.Background()
	info, err := c.Discover(ctx, "estimator")
	if err != nil {
		t.Fatal(err)
	}
	if info.Endpoint != hsB.URL {
		t.Fatalf("discovered endpoint = %q, want %q", info.Endpoint, hsB.URL)
	}
	// The discovered endpoint is directly callable.
	ec := NewClient(info.Endpoint)
	// estimator.runtime has no ACL on host B — expect an auth fault, which
	// proves the endpoint resolves and dispatches.
	if _, err := ec.Call(ctx, "estimator.runtime"); !xmlrpc.IsFault(err, xmlrpc.FaultAuth) {
		t.Fatalf("discovered service call = %v", err)
	}
	// Unknown service fails across the federation.
	if _, err := c.Discover(ctx, "nothing"); err == nil {
		t.Fatal("discovering a phantom service succeeded")
	}
}

func TestDiscoverLocalWinsOverPeers(t *testing.T) {
	srv := NewServer("host", nil)
	srv.RegisterService("svc", "local", map[string]xmlrpc.Handler{
		"m": func(context.Context, []any) (any, error) { return nil, nil },
	})
	srv.AddPeer("http://127.0.0.1:1") // unreachable; must not matter
	info, ok := srv.Discover(context.Background(), "svc", true)
	if !ok || info.Description != "local" {
		t.Fatalf("Discover = %+v, %v", info, ok)
	}
	// Unknown service with unreachable peer: graceful miss.
	if _, ok := srv.Discover(context.Background(), "ghost", true); ok {
		t.Fatal("phantom discovery")
	}
}

func TestStartStopRealListener(t *testing.T) {
	srv := NewServer("live", nil)
	url, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if srv.BaseURL() != url {
		t.Fatalf("BaseURL = %q, want %q", srv.BaseURL(), url)
	}
	c := NewClient(url)
	name, err := c.CallString(context.Background(), "system.ping")
	if err != nil {
		t.Fatal(err)
	}
	if name != "live" {
		t.Fatalf("ping = %q", name)
	}
	if err := srv.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Stop(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestRegisterServiceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty service name accepted")
		}
	}()
	NewServer("x", nil).RegisterService("", "", nil)
}

func TestMethodsIncludeBuiltinsAndService(t *testing.T) {
	srv, _ := startHost(t, nil)
	joined := strings.Join(srv.Methods(), ",")
	for _, want := range []string{"system.auth", "system.ping", "registry.discover", "demo.echo"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Methods missing %s", want)
		}
	}
}

func TestStateStore(t *testing.T) {
	s := NewStateStore()
	if err := s.Set("", "k", "v"); err == nil {
		t.Error("empty user accepted")
	}
	if err := s.Set("alice", "", "v"); err == nil {
		t.Error("empty key accepted")
	}
	if err := s.Set("alice", "cuts", "pt>20"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("alice", "dataset", "run2005A"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("bob", "cuts", "pt>5"); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("alice", "cuts"); !ok || v != "pt>20" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	// Per-user isolation.
	if v, _ := s.Get("bob", "cuts"); v != "pt>5" {
		t.Fatalf("bob sees %q", v)
	}
	if _, ok := s.Get("carol", "cuts"); ok {
		t.Fatal("phantom state")
	}
	keys := s.Keys("alice")
	if len(keys) != 2 || keys[0] != "cuts" || keys[1] != "dataset" {
		t.Fatalf("Keys = %v", keys)
	}
	if !s.Delete("alice", "cuts") || s.Delete("alice", "cuts") {
		t.Fatal("Delete semantics broken")
	}
	if s.Delete("carol", "x") {
		t.Fatal("Delete for unknown user returned true")
	}
}

func TestStateStoreSaveLoad(t *testing.T) {
	s := NewStateStore()
	s.Set("alice", "k1", "v1")
	s.Set("bob", "k2", "v2")
	path := filepath.Join(t.TempDir(), "state.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	fresh := NewStateStore()
	if err := fresh.Load(path); err != nil {
		t.Fatal(err)
	}
	if v, ok := fresh.Get("alice", "k1"); !ok || v != "v1" {
		t.Fatalf("round trip = %q, %v", v, ok)
	}
	if v, ok := fresh.Get("bob", "k2"); !ok || v != "v2" {
		t.Fatalf("round trip = %q, %v", v, ok)
	}
	if err := fresh.Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loading missing file succeeded")
	}
}
