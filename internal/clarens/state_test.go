package clarens

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStateStoreSaveAtomicReplace pins the crash-safety contract of Save:
// the destination only ever holds a complete document. A crash mid-save
// leaves a torn temp file beside an intact previous save, never a torn
// destination — and the next successful Save replaces wholesale.
func TestStateStoreSaveAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")

	s := NewStateStore()
	s.Set("alice", "dataset", "run2005A")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}

	// A crash between temp-write and rename leaves exactly this on disk:
	// a half-written temp next to the previous save.
	torn := filepath.Join(dir, ".state.json.tmp-1234")
	if err := os.WriteFile(torn, []byte(`{"alice":{"data`), 0o600); err != nil {
		t.Fatal(err)
	}
	fresh := NewStateStore()
	if err := fresh.Load(path); err != nil {
		t.Fatalf("previous save unreadable with torn temp present: %v", err)
	}
	if v, ok := fresh.Get("alice", "dataset"); !ok || v != "run2005A" {
		t.Fatalf("recovered %q, %v", v, ok)
	}

	// The next save replaces the document wholesale — deletions are not
	// resurrected from the old file.
	s.Delete("alice", "dataset")
	s.Set("alice", "cuts", "pt>20")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	after := NewStateStore()
	if err := after.Load(path); err != nil {
		t.Fatal(err)
	}
	if _, ok := after.Get("alice", "dataset"); ok {
		t.Fatal("deleted key resurrected by save")
	}
	if v, _ := after.Get("alice", "cuts"); v != "pt>20" {
		t.Fatalf("replacement save lost data: %q", v)
	}

	// Successful saves leave no temp litter of their own.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "state.json" && e.Name() != filepath.Base(torn) {
			t.Fatalf("unexpected file after save: %s", e.Name())
		}
	}
}
