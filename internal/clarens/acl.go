package clarens

import (
	"strings"
	"sync"
)

// ACL is the per-method access control list. Rules name a principal — a
// user ("alice"), a role ("role:admin"), any authenticated caller
// ("authenticated"), or anyone ("*") — and a method pattern: exact
// ("steering.move"), service-wide ("steering.*"), or global ("*").
//
// Deny rules beat allow rules; more specific patterns beat less specific
// ones; and the default (no matching rule) is deny, with two built-in
// exceptions so that a fresh host is usable: system.auth and
// system.listMethods are public.
type ACL struct {
	mu    sync.RWMutex
	rules []aclRule
}

type aclRule struct {
	principal string
	pattern   string
	allow     bool
}

// NewACL creates an empty (deny-by-default) ACL.
func NewACL() *ACL { return &ACL{} }

// Allow grants principal access to methods matching pattern.
func (a *ACL) Allow(principal, pattern string) *ACL {
	a.add(principal, pattern, true)
	return a
}

// Deny revokes access; deny rules override any allow.
func (a *ACL) Deny(principal, pattern string) *ACL {
	a.add(principal, pattern, false)
	return a
}

func (a *ACL) add(principal, pattern string, allow bool) {
	if principal == "" || pattern == "" {
		panic("clarens: ACL rule with empty principal or pattern")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rules = append(a.rules, aclRule{principal: principal, pattern: pattern, allow: allow})
}

// alwaysPublic lists methods reachable without a session on every host.
var alwaysPublic = map[string]bool{
	"system.auth":        true,
	"system.listMethods": true,
	"system.ping":        true,
}

// Check reports whether the session (nil for anonymous callers) may invoke
// method.
func (a *ACL) Check(sess *Session, method string) bool {
	if alwaysPublic[method] {
		return true
	}
	a.mu.RLock()
	defer a.mu.RUnlock()

	bestSpec := -1
	allowed := false
	for _, r := range a.rules {
		if !principalMatches(r.principal, sess) {
			continue
		}
		spec := patternSpecificity(r.pattern, method)
		if spec < 0 {
			continue
		}
		// Higher specificity wins; at equal specificity deny wins.
		if spec > bestSpec || (spec == bestSpec && !r.allow) {
			bestSpec = spec
			allowed = r.allow
		}
	}
	return bestSpec >= 0 && allowed
}

func principalMatches(principal string, sess *Session) bool {
	switch {
	case principal == "*":
		return true
	case principal == "authenticated":
		return sess != nil
	case strings.HasPrefix(principal, "role:"):
		if sess == nil {
			return false
		}
		role := strings.TrimPrefix(principal, "role:")
		for _, r := range sess.User.Roles {
			if r == role {
				return true
			}
		}
		return false
	default:
		return sess != nil && sess.User.Name == principal
	}
}

// patternSpecificity returns -1 for no match, or a rank: 0 for "*",
// 1 for "service.*", 2 for an exact method.
func patternSpecificity(pattern, method string) int {
	switch {
	case pattern == "*":
		return 0
	case strings.HasSuffix(pattern, ".*"):
		svc := strings.TrimSuffix(pattern, ".*")
		msvc, _ := splitMethod(method)
		if svc == msvc {
			return 1
		}
		return -1
	case pattern == method:
		return 2
	default:
		return -1
	}
}

func splitMethod(method string) (service, name string) {
	if i := strings.LastIndex(method, "."); i >= 0 {
		return method[:i], method[i+1:]
	}
	return "", method
}
