package clarens

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// slowServer hangs every request until the client goes away (draining
// the body first so the server can detect the disconnect); a fallback
// timer keeps Close from blocking if detection fails.
func slowServer(t *testing.T) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	t.Cleanup(hs.Close)
	return hs
}

func TestClientTimeoutBoundsHungServer(t *testing.T) {
	hs := slowServer(t)
	c := NewClientTimeout(hs.URL, 50*time.Millisecond)
	start := time.Now()
	_, err := c.Call(context.Background(), "system.ping")
	if err == nil {
		t.Fatal("call against a hung server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, want ≈50ms", elapsed)
	}
}

func TestClientContextCancellation(t *testing.T) {
	hs := slowServer(t)
	c := NewClient(hs.URL) // default timeout is much longer than the test
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Call(ctx, "system.ping"); err == nil {
		t.Fatal("call with expired context succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want ≈50ms", elapsed)
	}
}

func TestSetTimeoutReplacesBound(t *testing.T) {
	hs := slowServer(t)
	c := NewClient(hs.URL)
	c.SetTimeout(50 * time.Millisecond)
	if _, err := c.Call(context.Background(), "system.ping"); err == nil {
		t.Fatal("call after SetTimeout against a hung server succeeded")
	}
}

// countingTransport stands in for a fault-injection wrapper: the test
// only cares that installed transports stay on the request path.
type countingTransport struct {
	calls int
	base  http.RoundTripper
}

func (ct *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ct.calls++
	return ct.base.RoundTrip(req)
}

// TestSetTimeoutPreservesTransport pins the regression where SetTimeout
// rebuilt the http.Client from scratch and silently discarded a custom
// round-tripper — fault-injection harnesses lost their faults the
// moment a timeout was configured.
func TestSetTimeoutPreservesTransport(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		w.Write([]byte(`<?xml version="1.0"?><methodResponse><params><param><value><string>ok</string></value></param></params></methodResponse>`))
	}))
	t.Cleanup(hs.Close)

	ct := &countingTransport{base: http.DefaultTransport}
	c := NewClient(hs.URL)
	c.SetTransport(ct)
	c.SetTimeout(5 * time.Second)
	if _, err := c.Call(context.Background(), "system.ping"); err != nil {
		t.Fatal(err)
	}
	if ct.calls != 1 {
		t.Fatalf("custom transport saw %d calls after SetTimeout, want 1 (SetTimeout discarded it)", ct.calls)
	}
	if c.HTTP.Timeout != 5*time.Second {
		t.Fatalf("timeout = %v after SetTimeout, want 5s", c.HTTP.Timeout)
	}

	// And the converse: SetTransport keeps the configured timeout.
	c.SetTransport(ct)
	if c.HTTP.Timeout != 5*time.Second {
		t.Fatalf("timeout = %v after SetTransport, want 5s preserved", c.HTTP.Timeout)
	}
	if c.HTTP.Transport != http.RoundTripper(ct) {
		t.Fatal("SetTransport did not install the round-tripper")
	}
}
