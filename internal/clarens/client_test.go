package clarens

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// slowServer hangs every request until the client goes away (draining
// the body first so the server can detect the disconnect); a fallback
// timer keeps Close from blocking if detection fails.
func slowServer(t *testing.T) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	t.Cleanup(hs.Close)
	return hs
}

func TestClientTimeoutBoundsHungServer(t *testing.T) {
	hs := slowServer(t)
	c := NewClientTimeout(hs.URL, 50*time.Millisecond)
	start := time.Now()
	_, err := c.Call(context.Background(), "system.ping")
	if err == nil {
		t.Fatal("call against a hung server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, want ≈50ms", elapsed)
	}
}

func TestClientContextCancellation(t *testing.T) {
	hs := slowServer(t)
	c := NewClient(hs.URL) // default timeout is much longer than the test
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Call(ctx, "system.ping"); err == nil {
		t.Fatal("call with expired context succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want ≈50ms", elapsed)
	}
}

func TestSetTimeoutReplacesBound(t *testing.T) {
	hs := slowServer(t)
	c := NewClient(hs.URL)
	c.SetTimeout(50 * time.Millisecond)
	if _, err := c.Call(context.Background(), "system.ping"); err == nil {
		t.Fatal("call after SetTimeout against a hung server succeeded")
	}
}
