package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Journal is the append-only RPC log. Records are framed as
//
//	uvarint payload length | uint32 LE CRC-32 (IEEE) | payload
//
// and made durable by group commit: Append queues the encoded record and
// blocks until a flusher has written and fsynced the batch containing it.
// Under concurrent load many appenders share one fsync; a lone appender
// degenerates to write+fsync with no added latency.
type Journal struct {
	mu       sync.Mutex
	cond     *sync.Cond
	f        File
	pending  []byte // encoded records awaiting the next flush
	pendingN int64  // record count in pending
	flushing bool   // a flusher is in the write+fsync critical section
	queued   uint64 // generation of the batch currently accumulating
	synced   uint64 // highest generation known durable
	err      error  // sticky I/O error; fails all subsequent appends
	closed   bool

	// Pre-resolved telemetry handles (nil without SetTelemetry; nil
	// instruments no-op). The flush metrics are per group-commit batch,
	// which is the unit that actually hits the disk.
	obsAppends      *telemetry.Counter
	obsFlushes      *telemetry.Counter
	obsFsyncSeconds *telemetry.Histogram
	obsBatchBytes   *telemetry.Histogram
	obsBatchRecords *telemetry.Histogram
}

// SetTelemetry registers the journal's metrics in reg: per-record
// appends, per-batch flush counts, write+fsync latency, and batch
// size in bytes and records. Call before concurrent appends begin.
func (j *Journal) SetTelemetry(reg *telemetry.Registry) {
	j.obsAppends = reg.Counter("journal_appends_total")
	j.obsFlushes = reg.Counter("journal_flushes_total")
	j.obsFsyncSeconds = reg.Histogram("journal_fsync_seconds", nil)
	j.obsBatchBytes = reg.Histogram("journal_batch_bytes", telemetry.SizeBuckets)
	j.obsBatchRecords = reg.Histogram("journal_batch_records", telemetry.CountBuckets)
}

// File is the slice of *os.File the journal writes through. It is an
// interface so fault-injection tests (and the chaos harness) can
// substitute a FaultyFile and script fsync failures or short writes.
type File interface {
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// OpenJournal opens (creating if needed) the journal file for appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: opening journal: %w", err)
	}
	return NewJournal(f), nil
}

// NewJournal wraps an already-open journal file. Production code uses
// OpenJournal; this entry point exists so tests can inject failing files.
func NewJournal(f File) *Journal {
	j := &Journal{f: f}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// appendFrame frames one payload into the pending batch and returns the
// batch generation the caller must wait for.
func appendFrame(buf []byte, payload []byte) []byte {
	var hdr [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:n+4]...)
	return append(buf, payload...)
}

// Append journals one op and returns once it is durable (its batch has
// been written and fsynced).
func (j *Journal) Append(op Op) error {
	payload, err := encodeOp(op)
	if err != nil {
		return err
	}
	return j.AppendRaw(payload)
}

// AppendRaw journals one pre-encoded payload with group-commit durability.
func (j *Journal) AppendRaw(payload []byte) error {
	gen, err := j.enqueue(payload)
	if err != nil {
		return err
	}
	return j.waitDurable(gen)
}

// enqueue frames the payload into the pending batch and returns the batch
// generation the caller must wait on. The split from waitDurable lets the
// Store assign sequence numbers and enqueue under one short critical
// section — journal order then matches sequence order — while the fsync
// wait happens outside any store lock so appenders still share flushes.
func (j *Journal) enqueue(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, ErrClosed
	}
	if j.err != nil {
		return 0, j.err
	}
	j.pending = appendFrame(j.pending, payload)
	j.pendingN++
	j.obsAppends.Inc()
	return j.queued, nil
}

// waitDurable blocks until batch generation gen is on disk. The first
// waiter to observe no active flusher becomes the flusher for everything
// pending.
func (j *Journal) waitDurable(gen uint64) error {
	j.mu.Lock()
	for j.synced <= gen && j.err == nil && !j.closed {
		if !j.flushing {
			j.flushLocked()
			continue
		}
		j.cond.Wait()
	}
	err := j.err
	if err == nil && j.synced <= gen && j.closed {
		err = ErrClosed
	}
	j.mu.Unlock()
	return err
}

// flushLocked writes and fsyncs the whole pending batch. Called with the
// mutex held; releases it around the I/O.
func (j *Journal) flushLocked() {
	batch := j.pending
	records := j.pendingN
	j.pending = nil
	j.pendingN = 0
	j.queued++
	gen := j.queued
	j.flushing = true
	j.mu.Unlock()

	var t0 time.Time
	if j.obsFlushes != nil {
		t0 = time.Now() //lint:walltime telemetry: real fsync latency for operator metrics, never read back into store state
	}
	var err error
	if _, werr := j.f.Write(batch); werr != nil {
		err = fmt.Errorf("durable: journal write: %w", werr)
	} else if serr := j.f.Sync(); serr != nil {
		err = fmt.Errorf("durable: journal fsync: %w", serr)
	}
	if j.obsFlushes != nil {
		j.obsFlushes.Inc()
		j.obsFsyncSeconds.Observe(time.Since(t0).Seconds()) //lint:walltime telemetry: real fsync latency for operator metrics, never read back into store state
		j.obsBatchBytes.Observe(float64(len(batch)))
		j.obsBatchRecords.Observe(float64(records))
	}

	//lint:lockheld flushLocked's contract releases j.mu around the I/O and re-acquires it here; j.flushing excludes concurrent flushers
	j.mu.Lock()
	j.flushing = false
	if err != nil && j.err == nil {
		j.err = err
	}
	j.synced = gen
	j.cond.Broadcast()
}

// Truncate discards the journal's contents (the checkpoint cycle's
// "snapshot-then-truncate" step). It must not race appends; the Store
// serializes the two.
func (j *Journal) Truncate() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: truncating journal: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("durable: rewinding journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("durable: journal fsync: %w", err)
	}
	j.err = nil
	return nil
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	serr := j.f.Sync()
	cerr := j.f.Close()
	j.cond.Broadcast()
	if serr != nil {
		return fmt.Errorf("durable: journal fsync on close: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("durable: closing journal: %w", cerr)
	}
	return nil
}

// ScanJournal reads every verified record payload from r. It returns the
// longest verified prefix in every case:
//
//   - a clean end of stream returns (payloads, nil);
//   - an incomplete record at the tail — a torn write from a crash mid-
//     append — is skipped silently, returning (payloads, nil);
//   - a complete record whose CRC or declared length is invalid returns
//     (payloads, ErrCorrupt): the file was damaged, not merely torn.
//
// Callers replay the returned prefix either way; the error only decides
// whether to warn. Scanning never panics on arbitrary input.
func ScanJournal(r io.Reader) ([][]byte, error) {
	br := newByteReader(r)
	var payloads [][]byte
	for {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return payloads, nil // clean end of journal
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return payloads, nil // torn length prefix
			}
			// Overlong varint: binary.ReadUvarint reports overflow.
			return payloads, fmt.Errorf("%w: record length: %v", ErrCorrupt, err)
		}
		if size > MaxRecordSize {
			return payloads, fmt.Errorf("%w: record length %d exceeds limit", ErrCorrupt, size)
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			return payloads, nil // torn header
		}
		want := binary.LittleEndian.Uint32(crcBuf[:])
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			return payloads, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != want {
			return payloads, fmt.Errorf("%w: checksum mismatch on record %d", ErrCorrupt, len(payloads))
		}
		payloads = append(payloads, payload)
	}
}

// ScanJournalOps scans and decodes the journal into ops, additionally
// verifying that sequence numbers are strictly increasing — a decoded-but-
// out-of-order stream is corruption, not a verified prefix.
func ScanJournalOps(r io.Reader) ([]Op, error) {
	payloads, scanErr := ScanJournal(r)
	ops := make([]Op, 0, len(payloads))
	var lastSeq uint64
	for i, p := range payloads {
		op, err := DecodeOp(p)
		if err != nil {
			// The frame checksum passed but the payload is not a valid op:
			// the writer and reader disagree, or the corruption forged a
			// CRC. Stop at the verified prefix.
			return ops, err
		}
		if op.Seq <= lastSeq && i > 0 {
			return ops, fmt.Errorf("%w: op %d sequence %d not after %d", ErrCorrupt, i, op.Seq, lastSeq)
		}
		lastSeq = op.Seq
		ops = append(ops, op)
	}
	return ops, scanErr
}

// byteReader adapts an io.Reader for binary.ReadUvarint while still
// supporting bulk reads.
type byteReader struct {
	r io.Reader
	b [1]byte
}

func newByteReader(r io.Reader) *byteReader { return &byteReader{r: r} }

func (b *byteReader) Read(p []byte) (int, error) { return io.ReadFull(b.r, p) }

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.b[:]); err != nil {
		return 0, err
	}
	return b.b[0], nil
}
