package durable

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var storeEpoch = time.Date(2005, 6, 1, 0, 0, 0, 0, time.UTC)

func TestStoreColdStart(t *testing.T) {
	s, err := Open(t.TempDir() + "/data")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	snap, tail := s.Recovery()
	if snap != nil || len(tail) != 0 {
		t.Fatalf("cold start should be empty, got snap=%v tail=%v", snap, tail)
	}
	if s.LastSeq() != 0 {
		t.Fatalf("seq = %d, want 0", s.LastSeq())
	}
}

func TestStoreCheckpointCycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Append(storeEpoch.Add(time.Duration(i)*time.Second), "alice", "state", "set", "", map[string]string{"k": "v"}); err != nil {
			t.Fatal(err)
		}
	}
	st := State{UserState: map[string]map[string]string{"alice": {"k": "v"}}}
	if err := s.Checkpoint(storeEpoch.Add(5*time.Second), st); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint appends form the replay tail.
	for i := 5; i < 8; i++ {
		if _, err := s.Append(storeEpoch.Add(time.Duration(i)*time.Second), "bob", "state", "set", "", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, tail := s2.Recovery()
	if snap == nil {
		t.Fatal("no snapshot recovered")
	}
	if snap.LastSeq != 5 {
		t.Fatalf("snapshot LastSeq = %d, want 5", snap.LastSeq)
	}
	if got := snap.State.UserState["alice"]["k"]; got != "v" {
		t.Fatalf("state not preserved: %q", got)
	}
	if len(tail) != 3 {
		t.Fatalf("tail length %d, want 3", len(tail))
	}
	for i, op := range tail {
		if op.Seq != uint64(6+i) || op.User != "bob" {
			t.Fatalf("tail[%d] = %+v", i, op)
		}
	}
	if s2.LastSeq() != 8 {
		t.Fatalf("recovered seq = %d, want 8", s2.LastSeq())
	}
}

// TestStoreSkipsCoveredOps simulates a crash between snapshot write and
// journal truncation: ops at or below the snapshot horizon must not be
// offered for replay.
func TestStoreSkipsCoveredOps(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Append(storeEpoch, "alice", "state", "set", "", nil); err != nil {
			t.Fatal(err)
		}
	}
	// Write the snapshot directly (bypassing Checkpoint's truncate) to
	// model the torn checkpoint.
	snap := &Snapshot{Version: SnapshotVersion, LastSeq: 3, SimTime: storeEpoch}
	if err := SaveSnapshot(filepath.Join(dir, SnapshotFile), snap); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, tail := s2.Recovery()
	if len(tail) != 1 || tail[0].Seq != 4 {
		t.Fatalf("tail = %+v, want only seq 4", tail)
	}
}

// TestStoreTruncatesCorruptSuffix verifies that when the journal scan
// stops at corruption, Open drops the unverified bytes so later appends
// extend the verified prefix.
func TestStoreTruncatesCorruptSuffix(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Append(storeEpoch, "alice", "state", "set", "", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, JournalFile)
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xFF // corrupt the last record's payload
	if err := os.WriteFile(jpath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(s2.ScanWarning(), ErrCorrupt) {
		t.Fatalf("want corruption warning, got %v", s2.ScanWarning())
	}
	_, tail := s2.Recovery()
	if len(tail) != 2 {
		t.Fatalf("verified tail = %d ops, want 2", len(tail))
	}
	// New appends continue the sequence after the verified prefix.
	if _, err := s2.Append(storeEpoch, "alice", "state", "set", "", nil); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.ScanWarning() != nil {
		t.Fatalf("journal should be clean after repair: %v", s3.ScanWarning())
	}
	_, tail = s3.Recovery()
	if len(tail) != 3 || tail[2].Seq != 3 {
		t.Fatalf("tail = %+v, want 3 ops ending at seq 3", tail)
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.json")
	if err := WriteFileAtomic(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Fatalf("got %q", got)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}

func TestSnapshotVersionRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SnapshotFile)
	bad := &Snapshot{Version: 99, SimTime: storeEpoch}
	data, err := bad.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("version 99 snapshot should be rejected")
	}
}
