package durable

import (
	"bytes"
	"testing"
	"time"
)

// FuzzJournalReplay feeds arbitrary bytes to the journal scanner and
// checks the recovery contract: never panic, never return unverified
// data. When the input is a corrupted copy of a valid journal, the result
// must be a prefix of the original op stream (possibly with a typed
// error) — corruption may shorten history but never silently diverge it.
func FuzzJournalReplay(f *testing.F) {
	// Seed with a real three-record journal.
	epoch := time.Date(2005, 6, 1, 0, 0, 0, 0, time.UTC)
	var valid []byte
	var validOps []Op
	for i := uint64(1); i <= 3; i++ {
		op := Op{Seq: i, Time: epoch.Add(time.Duration(i) * time.Second), User: "alice", Service: "state", Method: "set"}
		validOps = append(validOps, op)
		payload, err := encodeOp(op)
		if err != nil {
			f.Fatal(err)
		}
		valid = appendFrame(valid, payload)
	}

	f.Add(valid, -1, byte(0))
	f.Add(valid, 0, byte(0xFF))
	f.Add(valid, len(valid)/2, byte(0x01))
	f.Add([]byte{}, -1, byte(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, -1, byte(0))

	f.Fuzz(func(t *testing.T, data []byte, flipAt int, flipWith byte) {
		input := append([]byte(nil), data...)
		if flipAt >= 0 && flipAt < len(input) {
			input[flipAt] ^= flipWith
		}

		ops, err := ScanJournalOps(bytes.NewReader(input))
		// Contract 1: the scan itself already proved it doesn't panic by
		// returning. Contract 2: any returned op decodes from bytes that
		// passed a CRC — spot-check internal consistency.
		var lastSeq uint64
		for i, op := range ops {
			if i > 0 && op.Seq <= lastSeq {
				t.Fatalf("scan returned non-increasing seqs despite err=%v", err)
			}
			lastSeq = op.Seq
		}

		// Contract 3: if the input is a mutation of our valid journal, the
		// result must be a prefix of the original stream or a typed error.
		if bytes.Equal(input, valid) {
			if err != nil || len(ops) != len(validOps) {
				t.Fatalf("valid journal misread: %d ops, err=%v", len(ops), err)
			}
			return
		}
		if flipAt >= 0 && flipAt < len(data) && bytes.Equal(data, valid) && flipWith != 0 {
			// A true single-byte corruption of the valid journal: every
			// returned op must match the original prefix exactly.
			for i, op := range ops {
				if i >= len(validOps) {
					break
				}
				want := validOps[i]
				if op.Seq != want.Seq && err == nil {
					t.Fatalf("silent divergence at op %d: got seq %d want %d", i, op.Seq, want.Seq)
				}
			}
		}
	})
}
