package durable

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// SnapshotVersion is the current snapshot format version. Loaders reject
// versions they do not understand instead of guessing.
const SnapshotVersion = 1

// Snapshot is the durable image of a full deployment at one instant.
type Snapshot struct {
	Version int `json:"version"`
	// LastSeq is the journal sequence number the snapshot covers: every
	// op with Seq <= LastSeq is already folded into State.
	LastSeq uint64 `json:"last_seq"`
	// SimTime is the simulated instant the state was captured at; restore
	// advances a fresh engine to it before injecting state.
	SimTime time.Time `json:"sim_time"`
	State   State     `json:"state"`
}

// State is the serializable form of every mutable GAE domain: Condor job
// queues and machine claims/leases, fair-share decayed-usage accounts,
// the quota ledger, the replica catalog, scheduler plans, the steering
// preference, and the per-user analysis-session state store.
//
// Encoding is canonical — slices are sorted by their natural key by the
// exporters and Go's JSON encoder orders map keys — so two captures of
// identical logical state are byte-identical, which is what the crash-
// recovery suite asserts.
type State struct {
	Pools       []PoolState                  `json:"pools,omitempty"`
	FairShare   *FairShareState              `json:"fair_share,omitempty"`
	Quota       QuotaState                   `json:"quota"`
	Replicas    []ReplicaLocation            `json:"replicas,omitempty"`
	Plans       []PlanState                  `json:"plans,omitempty"`
	Steering    SteeringState                `json:"steering"`
	Estimator   *EstimatorState              `json:"estimator,omitempty"`
	UserState   map[string]map[string]string `json:"user_state,omitempty"`
	Idempotency []IdemUser                   `json:"idempotency,omitempty"`
}

// IdemUser is one user's idempotency window: the request IDs of their
// most recent acknowledged mutations with the acknowledged results, in
// acknowledgment order (oldest first, the eviction order). Snapshotting
// the window is what lets duplicate suppression survive a restart that
// falls between a call's first delivery and its retry.
type IdemUser struct {
	User    string      `json:"user"`
	Entries []IdemEntry `json:"entries"`
}

// IdemEntry records one acknowledged mutation: a retry bearing the same
// request ID gets Result back instead of a second application. Method is
// the fully-qualified RPC name and guards against a key reused across
// different calls. At is the simulated acknowledgment instant — the
// same timestamp the op's journal record carries — and is what TTL
// (age-based) window eviction compares against; a zero At (an entry
// from a pre-TTL snapshot) is never age-evicted.
type IdemEntry struct {
	ID     string          `json:"id"`
	Method string          `json:"method"`
	At     time.Time       `json:"at,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// PoolState is one execution service's queue: every job ever submitted
// (terminal jobs keep their accounting records) plus the ID allocator.
type PoolState struct {
	Name   string     `json:"name"`
	NextID int        `json:"next_id"`
	Jobs   []JobState `json:"jobs,omitempty"`
}

// JobState is the codec's view of one Condor job. Ad is the canonical
// ClassAd text (classad.ParseAd restores it); CPUSeconds is the total
// completed work at capture time, which restore carries as the job's
// checkpoint base.
type JobState struct {
	ID       int    `json:"id"`
	Ad       string `json:"ad"`
	Status   int    `json:"status"`
	Priority int    `json:"priority"`
	Owner    string `json:"owner,omitempty"`

	SubmitTime     time.Time `json:"submit_time"`
	StartTime      time.Time `json:"start_time"`
	CompletionTime time.Time `json:"completion_time"`

	CPUSeconds float64 `json:"cpu_seconds"`

	// Node is the machine the job occupies (running/suspended jobs); the
	// claim it represents is the job's lease on that machine.
	Node string `json:"node,omitempty"`
	// LeaseExpires bounds the claim: recovery re-binds the job to its
	// machine while the lease holds and requeues it once expired. The
	// exporting pool is the lease authority — a live export stamps its
	// running jobs' leases fresh.
	LeaseExpires time.Time `json:"lease_expires,omitzero"`
}

// FairShareState captures the decayed-usage accounting hierarchy.
type FairShareState struct {
	Groups  []FairShareAccount `json:"groups,omitempty"`
	Tenants []FairShareTenant  `json:"tenants,omitempty"`
}

// FairShareAccount is one node of the accounting hierarchy at its last
// settlement instant (usage decays lazily from Last).
type FairShareAccount struct {
	Name   string    `json:"name"`
	Weight float64   `json:"weight"`
	Usage  float64   `json:"usage"`
	Last   time.Time `json:"last"`
}

// FairShareTenant adds group membership, per-site usage, and the
// starvation guard's last-allocation timestamp.
type FairShareTenant struct {
	FairShareAccount
	Group     string             `json:"group"`
	Sites     []FairShareAccount `json:"sites,omitempty"`
	LastStart time.Time          `json:"last_start,omitzero"`
}

// QuotaState captures user balances and the charge ledger. Site rates are
// deployment configuration and are rebuilt from the Config, not restored.
type QuotaState struct {
	Balances []QuotaBalance `json:"balances,omitempty"`
	Ledger   []QuotaCharge  `json:"ledger,omitempty"`
}

// QuotaBalance is one user's remaining credits.
type QuotaBalance struct {
	User    string  `json:"user"`
	Credits float64 `json:"credits"`
}

// QuotaCharge is one accounting ledger entry.
type QuotaCharge struct {
	Time            time.Time `json:"time"`
	User            string    `json:"user"`
	Site            string    `json:"site"`
	CPUSeconds      float64   `json:"cpu_seconds"`
	MB              float64   `json:"mb"`
	Credits         float64   `json:"credits"`
	TransferCredits float64   `json:"transfer_credits"`
	Note            string    `json:"note,omitempty"`
}

// ReplicaLocation is one replica catalog entry.
type ReplicaLocation struct {
	Dataset string  `json:"dataset"`
	Site    string  `json:"site"`
	SizeMB  float64 `json:"size_mb"`
}

// PlanState is one submitted scheduler plan with its per-task concrete
// assignments. Spec is the plan's wire form (gae.PlanSpec JSON), which
// restore validates back into an abstract plan.
type PlanState struct {
	Name  string          `json:"name"`
	Owner string          `json:"owner"`
	Spec  json.RawMessage `json:"spec"`
	Tasks []PlanTaskState `json:"tasks,omitempty"`
}

// PlanTaskState is one task's concrete binding. State uses the
// scheduler's TaskState integer values; tasks captured mid-staging are
// restored as pending (the in-flight transfer died with the process).
type PlanTaskState struct {
	TaskID      string    `json:"task_id"`
	Site        string    `json:"site,omitempty"`
	CondorID    int       `json:"condor_id,omitempty"`
	State       int       `json:"state"`
	SubmittedAt time.Time `json:"submitted_at,omitzero"`
	Attempts    int       `json:"attempts,omitempty"`
}

// SteeringState captures the steering service's durable knobs.
type SteeringState struct {
	Preference string `json:"preference,omitempty"`
}

// EstimatorState captures the decentralized estimator layer: each site's
// completed-task history (the paper's SDSC-style accounting records) and
// the scheduler's submission-time estimate database. Both feed placement
// and the EstimatedRuntime stamped into job ads, so a recovery that
// dropped them would diverge on the first post-restart submission.
type EstimatorState struct {
	Sites     []SiteHistory `json:"sites,omitempty"`
	Estimates []JobEstimate `json:"estimates,omitempty"`
}

// SiteHistory is one site's completed-task history, in insertion order.
type SiteHistory struct {
	Site    string          `json:"site"`
	Records []HistoryRecord `json:"records,omitempty"`
}

// HistoryRecord mirrors the estimator's accounting record fields.
type HistoryRecord struct {
	Account   string  `json:"account,omitempty"`
	Login     string  `json:"login,omitempty"`
	Partition string  `json:"partition,omitempty"`
	Nodes     int     `json:"nodes,omitempty"`
	JobType   string  `json:"job_type,omitempty"`
	Succeeded bool    `json:"succeeded"`
	ReqHours  float64 `json:"req_cpu_hours,omitempty"`
	Queue     string  `json:"queue,omitempty"`
	CPURate   float64 `json:"cpu_rate,omitempty"`
	IdleRate  float64 `json:"idle_rate,omitempty"`

	Submitted time.Time `json:"submitted,omitzero"`
	Started   time.Time `json:"started,omitzero"`
	Completed time.Time `json:"completed,omitzero"`

	RuntimeSeconds float64 `json:"runtime_seconds"`
}

// JobEstimate is one submission-time runtime estimate, keyed by the
// job's pool and Condor ID.
type JobEstimate struct {
	Pool    string  `json:"pool"`
	ID      int     `json:"id"`
	Seconds float64 `json:"seconds"`
}

// Encode renders the snapshot as canonical, deterministic JSON.
func (s *Snapshot) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, fmt.Errorf("durable: encoding snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// EncodeState renders just the state section — the byte-identity domain
// the recovery suite compares.
func EncodeState(st *State) ([]byte, error) {
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("durable: encoding state: %w", err)
	}
	return b, nil
}

// DecodeSnapshot parses and validates a snapshot document.
func DecodeSnapshot(raw []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%w: snapshot: %v", ErrCorrupt, err)
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("durable: snapshot version %d (want %d)", s.Version, SnapshotVersion)
	}
	return &s, nil
}
