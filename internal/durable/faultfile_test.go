package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openFaultyJournal(t *testing.T) (*Journal, *FaultyFile, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.wal")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ff := NewFaultyFile(f)
	return NewJournal(ff), ff, path
}

// TestJournalFsyncFailureFailsWholeBatch pins the group-commit error
// contract: when the flush that would make a batch durable fails, every
// waiter in that batch gets the error — no op in the batch is ever
// acknowledged. The batch is built deterministically by enqueueing all
// payloads before any waiter runs, so one flusher serves all of them.
func TestJournalFsyncFailureFailsWholeBatch(t *testing.T) {
	j, ff, _ := openFaultyJournal(t)
	defer j.Close()
	ff.FailSyncs(1)

	const waiters = 5
	gens := make([]uint64, waiters)
	for i := range gens {
		gen, err := j.enqueue([]byte("op"))
		if err != nil {
			t.Fatal(err)
		}
		gens[i] = gen
	}
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for i, gen := range gens {
		wg.Add(1)
		go func(i int, gen uint64) {
			defer wg.Done()
			errs[i] = j.waitDurable(gen)
		}(i, gen)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("waiter %d: err = %v, want injected fsync failure", i, err)
		}
	}
	if ff.Syncs() != 1 {
		t.Fatalf("syncs = %d, want one shared (failed) flush", ff.Syncs())
	}

	// The error is sticky: the journal refuses further appends until the
	// checkpoint cycle truncates it.
	if err := j.AppendRaw([]byte("late")); !errors.Is(err, ErrInjected) {
		t.Fatalf("append after failed flush: err = %v, want sticky injected error", err)
	}
	if err := j.Truncate(); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendRaw([]byte("recovered")); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
}

// TestJournalShortWriteNeverAcks injects a short write (the full-disk
// shape): Append must report the failure, and recovery must treat the
// torn bytes as an unacknowledged tail, not a verified record.
func TestJournalShortWriteNeverAcks(t *testing.T) {
	j, ff, path := openFaultyJournal(t)
	ff.ShortWriteNext()
	if err := j.Append(testOp(1, "set")); !errors.Is(err, ErrInjected) {
		t.Fatalf("append: err = %v, want injected short write", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("short write should leave torn bytes to scan past")
	}
	payloads, scanErr := ScanJournal(bytes.NewReader(raw))
	if scanErr != nil {
		t.Fatalf("torn tail must scan as clean truncation, got %v", scanErr)
	}
	if len(payloads) != 0 {
		t.Fatalf("recovered %d records from an unacknowledged write, want 0", len(payloads))
	}
}

// TestStoreAppendPropagatesFlushFailure covers the Store wrapper: the
// sequence-assigning Append path must surface the journal's flush error
// to its caller (core acks RPCs only on a nil return).
func TestStoreAppendPropagatesFlushFailure(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Swap the store's journal file for a faulty one.
	ff := NewFaultyFile(s.journal.f)
	s.journal.f = ff
	ff.FailSyncs(1)
	if _, err := s.Append(storeEpoch, "alice", "state", "set", "rid-1", nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("store append: err = %v, want injected fsync failure", err)
	}
}
