// Package durable is the persistence layer of the GAE reproduction: a
// versioned snapshot codec plus an append-only RPC journal (write-ahead
// log), combined by a Store into the classic checkpoint cycle — snapshot
// the full state, truncate the journal, append every mutating RPC as it
// is acknowledged, and on restart load the latest snapshot and replay the
// journal tail.
//
// The paper's GAE exists to "store the state of users' analysis sessions"
// across interactive logins; this package is what lets a gae-server crash
// without losing the farm: Condor queues and machine leases, fair-share
// decayed-usage accounts, the quota ledger, the replica catalog, and the
// per-user analysis-session state all serialize through the Snapshot
// codec, and the RPCs that mutate them are journaled with group-commit
// fsync batching.
//
// The package is deliberately dependency-free: it defines the durable
// data model (State and its sections) and the file formats, while
// internal/core owns the conversion between live services and the model.
//
// # File formats
//
// A snapshot is a single JSON document (Snapshot) written with
// write-temp + fsync + atomic-rename, so a crash can never leave a torn
// snapshot — the previous one survives until the new one is complete.
//
// The journal is a stream of length-prefixed, CRC-checked records:
//
//	uvarint payload length | uint32 little-endian CRC-32 (IEEE) | payload
//
// Appends are made durable by group commit: concurrent appenders batch
// into a single write+fsync, and Append returns only after the record's
// batch is on disk. Recovery scans the longest verified prefix: an
// incomplete record at the tail (a torn write) is skipped silently, while
// a CRC mismatch on a complete record reports ErrCorrupt alongside the
// verified prefix — replay never panics and never applies unverified
// bytes.
package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Typed errors surfaced by journal recovery and snapshot loading.
var (
	// ErrCorrupt reports a record whose payload failed its CRC check, or
	// a snapshot that failed structural validation. The verified prefix
	// before the corruption is still returned to the caller.
	ErrCorrupt = errors.New("durable: corrupt record")
	// ErrClosed is returned by appends to a closed journal.
	ErrClosed = errors.New("durable: journal closed")
	// ErrTooLarge rejects records above MaxRecordSize.
	ErrTooLarge = errors.New("durable: record exceeds size limit")
)

// MaxRecordSize bounds a single journal record (16 MiB). Recovery treats
// larger declared lengths as corruption, so a flipped length byte cannot
// force a multi-gigabyte allocation.
const MaxRecordSize = 16 << 20

// Op is one journaled mutating RPC, recorded after the mutation was
// applied and acknowledged. Service and Method name the RPC as it appears
// on the wire ("scheduler"/"submit", "state"/"set", ...); Args holds the
// method-specific argument struct encoded as JSON by the service layer,
// which also owns decoding it again at replay.
type Op struct {
	// Seq is the op's journal sequence number, strictly increasing across
	// checkpoints. Recovery applies only ops with Seq greater than the
	// snapshot's LastSeq.
	Seq uint64 `json:"seq"`
	// Time is the simulated time at which the op was acknowledged; replay
	// advances the engine to it before re-applying.
	Time time.Time `json:"time"`
	// User is the acting (authenticated) user the op executed as.
	User    string          `json:"user"`
	Service string          `json:"service"`
	Method  string          `json:"method"`
	Args    json.RawMessage `json:"args,omitempty"`
	// RequestID is the client's idempotency key for the op (empty for
	// unstamped calls). Replay re-records it in the dedup window so a
	// retry arriving after a crash+recovery is still suppressed.
	RequestID string `json:"rid,omitempty"`
}

// encodeOp renders the op as a journal payload.
func encodeOp(op Op) ([]byte, error) {
	b, err := json.Marshal(op)
	if err != nil {
		return nil, fmt.Errorf("durable: encoding op %d: %w", op.Seq, err)
	}
	return b, nil
}

// DecodeOp parses a journal payload back into an Op.
func DecodeOp(payload []byte) (Op, error) {
	var op Op
	if err := json.Unmarshal(payload, &op); err != nil {
		return Op{}, fmt.Errorf("%w: op payload: %v", ErrCorrupt, err)
	}
	return op, nil
}
