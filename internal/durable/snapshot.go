package durable

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path with crash-safe replacement: the
// bytes land in a temp file in the same directory, are fsynced, and only
// then renamed over the destination, followed by a directory fsync so the
// rename itself is durable. A crash at any point leaves either the old
// file or the new one — never a torn mix.
func WriteFileAtomic(path string, data []byte, perm fs.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename

	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: writing %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: chmod %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: fsync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: closing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("durable: renaming into %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename survives a crash.
// Directory fsync is best-effort: some filesystems (and CI sandboxes)
// reject it with EINVAL even though the rename is already safe on them.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	d.Sync()
	return nil
}

// SaveSnapshot atomically writes the snapshot to path.
func SaveSnapshot(path string, s *Snapshot) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, data, 0o644)
}

// LoadSnapshot reads and validates the snapshot at path. A missing file
// returns (nil, nil): a cold start, not an error.
func LoadSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("durable: reading snapshot: %w", err)
	}
	return DecodeSnapshot(raw)
}
