package durable

import (
	"errors"
	"sync"
)

// ErrInjected marks failures produced by a FaultyFile script, so tests
// can tell injected faults from real I/O errors.
var ErrInjected = errors.New("durable: injected fault")

// FaultyFile wraps a journal File with scripted failures: the journal's
// error paths — a failed group-commit fsync, a short write — are
// otherwise unreachable in tests without yanking real disks. The zero
// script passes everything through.
//
// Scripts count down: FailSyncs(2) fails the next two Sync calls then
// recovers; ShortWriteNext() truncates the next write and reports an
// injected error, the way a full disk does.
type FaultyFile struct {
	F File

	mu         sync.Mutex
	failSyncs  int
	shortWrite bool
	syncs      int
	writes     int
}

// NewFaultyFile wraps f with a pass-through script.
func NewFaultyFile(f File) *FaultyFile { return &FaultyFile{F: f} }

// InjectFaults interposes a FaultyFile between the journal and its
// backing file and returns it, so a live journal's fsync/write path can
// be scripted mid-run (the chaos harness arms it on a timer). Call
// before concurrent appends begin — the returned handle itself is safe
// to script from any goroutine once flushing is underway.
func (j *Journal) InjectFaults() *FaultyFile {
	j.mu.Lock()
	defer j.mu.Unlock()
	ff := NewFaultyFile(j.f)
	j.f = ff
	return ff
}

// InjectFaults exposes the journal's fault hook at the store level; see
// Journal.InjectFaults.
func (s *Store) InjectFaults() *FaultyFile { return s.journal.InjectFaults() }

// FailSyncs makes the next n Sync calls fail with ErrInjected.
func (f *FaultyFile) FailSyncs(n int) {
	f.mu.Lock()
	f.failSyncs = n
	f.mu.Unlock()
}

// ShortWriteNext makes the next Write deliver only half its payload and
// fail with ErrInjected.
func (f *FaultyFile) ShortWriteNext() {
	f.mu.Lock()
	f.shortWrite = true
	f.mu.Unlock()
}

// Syncs reports how many Sync calls were attempted (failed ones included).
func (f *FaultyFile) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// Writes reports how many Write calls were attempted.
func (f *FaultyFile) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

func (f *FaultyFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	f.writes++
	short := f.shortWrite
	f.shortWrite = false
	f.mu.Unlock()
	if short {
		n, err := f.F.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, ErrInjected
	}
	return f.F.Write(p)
}

func (f *FaultyFile) Sync() error {
	f.mu.Lock()
	f.syncs++
	fail := f.failSyncs > 0
	if fail {
		f.failSyncs--
	}
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.F.Sync()
}

func (f *FaultyFile) Seek(offset int64, whence int) (int64, error) {
	return f.F.Seek(offset, whence)
}

func (f *FaultyFile) Truncate(size int64) error { return f.F.Truncate(size) }

func (f *FaultyFile) Close() error { return f.F.Close() }
