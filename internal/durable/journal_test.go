package durable

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testOp(seq uint64, method string) Op {
	return Op{
		Seq:     seq,
		Time:    time.Date(2005, 6, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Second),
		User:    "alice",
		Service: "scheduler",
		Method:  method,
		Args:    json.RawMessage(`{"n":` + fmt.Sprint(seq) + `}`),
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		if err := j.Append(testOp(i, "submit")); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := ScanJournalOps(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(ops) != 10 {
		t.Fatalf("got %d ops, want 10", len(ops))
	}
	for i, op := range ops {
		want := testOp(uint64(i+1), "submit")
		if op.Seq != want.Seq || op.User != want.User || !op.Time.Equal(want.Time) {
			t.Fatalf("op %d mismatch: %+v", i, op)
		}
	}
}

// TestJournalTornTail truncates the file mid-record at every possible
// byte offset within the final record and verifies recovery silently
// returns the records before it — a crash mid-append must never be an
// error, only a shorter history.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var offsets []int64
	for i := uint64(1); i <= 3; i++ {
		if err := j.Append(testOp(i, "set")); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, st.Size())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Every truncation point strictly inside the third record must yield
	// exactly the first two records with no error.
	for cut := offsets[1] + 1; cut < offsets[2]; cut++ {
		ops, err := ScanJournalOps(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		if len(ops) != 2 {
			t.Fatalf("cut %d: got %d ops, want 2", cut, len(ops))
		}
	}
}

// TestJournalCorruptRecord flips a byte inside a fully-present record and
// verifies the scan reports ErrCorrupt while still returning the verified
// prefix before the damage.
func TestJournalCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var afterFirst int64
	for i := uint64(1); i <= 3; i++ {
		if err := j.Append(testOp(i, "set")); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			st, _ := os.Stat(path)
			afterFirst = st.Size()
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Damage the payload of the second record (skip its varint+CRC header
	// by a safe margin: +8 lands inside the JSON payload).
	raw[afterFirst+8] ^= 0xFF

	ops, err := ScanJournalOps(bytes.NewReader(raw))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if len(ops) != 1 || ops[0].Seq != 1 {
		t.Fatalf("verified prefix wrong: %+v", ops)
	}
}

// TestJournalGroupCommit hammers the journal from many goroutines and
// verifies every record survives, in an order consistent with a single
// append stream.
func TestJournalGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 50
	var mu sync.Mutex
	var seq uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				mu.Lock()
				seq++
				payload, err := encodeOp(testOp(seq, "burst"))
				if err != nil {
					mu.Unlock()
					t.Error(err)
					return
				}
				gen, err := j.enqueue(payload)
				mu.Unlock()
				if err != nil {
					t.Error(err)
					return
				}
				if err := j.waitDurable(gen); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := ScanJournalOps(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(ops) != workers*perWorker {
		t.Fatalf("got %d ops, want %d", len(ops), workers*perWorker)
	}
	for i, op := range ops {
		if op.Seq != uint64(i+1) {
			t.Fatalf("op %d has seq %d", i, op.Seq)
		}
	}
}

func TestJournalOversizeRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.AppendRaw(make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestJournalAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testOp(1, "late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
