package durable

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Standard file names inside a durable data directory.
const (
	SnapshotFile = "snapshot.json"
	JournalFile  = "journal.wal"
)

// Store combines the snapshot codec and the journal into the checkpoint
// cycle: Open recovers the latest snapshot plus the journal's verified
// tail, Append journals acknowledged mutations with fresh sequence
// numbers, and Checkpoint atomically writes a new snapshot then truncates
// the journal.
type Store struct {
	dir     string
	journal *Journal

	mu  sync.Mutex
	seq uint64 // last sequence number assigned

	snapshot *Snapshot // as found at Open (nil on cold start)
	tail     []Op      // verified journal ops with Seq > snapshot.LastSeq
	scanErr  error     // non-fatal corruption note from the journal scan

	// Pre-resolved telemetry handles (nil without SetTelemetry).
	obsCkpts       *telemetry.Counter
	obsCkptSeconds *telemetry.Histogram
	obsCkptBytes   *telemetry.Gauge
}

// SetTelemetry registers the store's checkpoint metrics in reg and
// forwards reg to the journal for append/fsync instrumentation. Call
// before serving traffic.
func (s *Store) SetTelemetry(reg *telemetry.Registry) {
	s.obsCkpts = reg.Counter("checkpoints_total")
	s.obsCkptSeconds = reg.Histogram("checkpoint_seconds", nil)
	s.obsCkptBytes = reg.Gauge("checkpoint_bytes")
	s.journal.SetTelemetry(reg)
}

// Open prepares dir (creating it if needed), loads the latest snapshot,
// scans the journal's verified prefix, and opens the journal for
// appending. Corruption in the journal is not fatal: the verified prefix
// is kept, the tail beyond it is dropped, and ScanWarning reports what
// happened.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: creating data dir: %w", err)
	}
	snap, err := LoadSnapshot(filepath.Join(dir, SnapshotFile))
	if err != nil {
		return nil, err
	}

	jpath := filepath.Join(dir, JournalFile)
	var ops []Op
	var scanErr error
	if raw, rerr := os.ReadFile(jpath); rerr == nil {
		ops, scanErr = ScanJournalOps(bytes.NewReader(raw))
	} else if !errors.Is(rerr, os.ErrNotExist) {
		return nil, fmt.Errorf("durable: reading journal: %w", rerr)
	}

	seq := uint64(0)
	if snap != nil {
		seq = snap.LastSeq
	}
	// Keep only ops past the snapshot horizon; a checkpoint that crashed
	// between snapshot write and journal truncate leaves covered ops
	// behind, which replay must skip.
	var tail []Op
	for _, op := range ops {
		if snap == nil || op.Seq > snap.LastSeq {
			tail = append(tail, op)
		}
	}
	for _, op := range tail {
		if op.Seq > seq {
			seq = op.Seq
		}
	}

	// If the scan stopped at corruption, drop the unverified bytes from
	// the file so new appends extend the verified prefix instead of being
	// unreachable behind garbage.
	if scanErr != nil {
		if terr := truncateToVerified(jpath, ops); terr != nil {
			return nil, terr
		}
	}

	j, err := OpenJournal(jpath)
	if err != nil {
		return nil, err
	}
	return &Store{
		dir:      dir,
		journal:  j,
		seq:      seq,
		snapshot: snap,
		tail:     tail,
		scanErr:  scanErr,
	}, nil
}

// truncateToVerified rewrites the journal to contain exactly the verified
// ops, discarding the corrupt suffix.
func truncateToVerified(path string, ops []Op) error {
	var buf []byte
	for _, op := range ops {
		payload, err := encodeOp(op)
		if err != nil {
			return err
		}
		buf = appendFrame(buf, payload)
	}
	return WriteFileAtomic(path, buf, 0o644)
}

// Recovery returns the snapshot (nil on a cold start) and the verified
// journal tail found at Open.
func (s *Store) Recovery() (*Snapshot, []Op) { return s.snapshot, s.tail }

// ScanWarning reports non-fatal corruption detected while scanning the
// journal at Open (nil if the journal was clean).
func (s *Store) ScanWarning() error { return s.scanErr }

// LastSeq returns the highest sequence number assigned so far.
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Append journals one acknowledged mutation, assigning it the next
// sequence number, and returns the assigned sequence once the record is
// durable. requestID is the call's idempotency key ("" for unstamped
// calls). Safe for concurrent use; concurrent appends share fsyncs via
// group commit.
func (s *Store) Append(at time.Time, user, service, method, requestID string, args any) (uint64, error) {
	var raw json.RawMessage
	if args != nil {
		b, err := json.Marshal(args)
		if err != nil {
			return 0, fmt.Errorf("durable: encoding args for %s.%s: %w", service, method, err)
		}
		raw = b
	}
	// Assign the sequence number and enqueue under one lock so journal
	// order always matches sequence order; wait for the fsync outside it.
	s.mu.Lock()
	op := Op{Seq: s.seq + 1, Time: at.UTC(), User: user, Service: service, Method: method, Args: raw, RequestID: requestID}
	payload, err := encodeOp(op)
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	gen, err := s.journal.enqueue(payload)
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.seq = op.Seq
	s.mu.Unlock()
	return op.Seq, s.journal.waitDurable(gen)
}

// Checkpoint writes snap (stamped with the current version and sequence
// horizon) atomically, then truncates the journal. The caller must ensure
// no Append races the call — in the server the checkpointer holds the
// mutation barrier.
func (s *Store) Checkpoint(simTime time.Time, st State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t0 time.Time
	if s.obsCkpts != nil {
		t0 = time.Now() //lint:walltime telemetry: real checkpoint latency for operator metrics, never read back into store state
	}
	snap := &Snapshot{Version: SnapshotVersion, LastSeq: s.seq, SimTime: simTime.UTC(), State: st}
	data, err := snap.Encode()
	if err != nil {
		return err
	}
	if err := WriteFileAtomic(filepath.Join(s.dir, SnapshotFile), data, 0o644); err != nil {
		return err
	}
	if err := s.journal.Truncate(); err != nil {
		return err
	}
	if s.obsCkpts != nil {
		s.obsCkpts.Inc()
		s.obsCkptSeconds.Observe(time.Since(t0).Seconds()) //lint:walltime telemetry: real checkpoint latency for operator metrics, never read back into store state
		s.obsCkptBytes.Set(float64(len(data)))
	}
	return nil
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes and closes the journal.
func (s *Store) Close() error { return s.journal.Close() }
