// Package monalisa reproduces the slice of the MonALISA distributed
// monitoring service that the GAE paper depends on.
//
// Two interactions matter in the paper: the Job Monitoring Service's
// DBManager "publishes the job monitoring information to MonALISA"
// whenever a job changes state, and the scheduler "contact[s] the
// MonALISA repository to get the status of load at execution sites"
// before placing a task. This package provides both: a time-series metric
// repository with publish/subscribe, and a farm monitor that samples
// site load from the simulated grid on a fixed interval.
package monalisa

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Metric identifies one monitored series: a source (farm, site, or service
// name) and a parameter name, e.g. {"siteA", "LoadAvg"}.
type Metric struct {
	Source string
	Name   string
}

func (m Metric) String() string { return m.Source + "/" + m.Name }

// Point is one sample in a series.
type Point struct {
	Time  time.Time
	Value float64
}

// Event is a discrete annotation, such as a job state change.
type Event struct {
	Time   time.Time
	Source string
	Kind   string
	Detail string
}

// Repository is the MonALISA store: bounded time series plus an event log.
// All methods are safe for concurrent use.
type Repository struct {
	mu     sync.RWMutex
	series map[Metric][]Point
	// latest caches each metric's newest sample so the scheduler's
	// per-site load reads (one per candidate site per placement) cost one
	// map hit instead of indexing the series tail under contention.
	latest    map[Metric]Point
	events    []Event
	maxPoints int
	maxEvents int
	subs      []*subscription
	nextSubID int
}

type subscription struct {
	id     int
	source string // "" matches all
	name   string // "" matches all
	fn     func(Metric, Point)
}

// Option configures a Repository.
type Option func(*Repository)

// WithSeriesCap bounds the number of retained points per series.
func WithSeriesCap(n int) Option {
	return func(r *Repository) {
		if n > 0 {
			r.maxPoints = n
		}
	}
}

// WithEventCap bounds the retained event log length.
func WithEventCap(n int) Option {
	return func(r *Repository) {
		if n > 0 {
			r.maxEvents = n
		}
	}
}

// NewRepository creates an empty repository. Default caps keep the last
// 4096 points per series and 65536 events.
func NewRepository(opts ...Option) *Repository {
	r := &Repository{
		series:    make(map[Metric][]Point),
		latest:    make(map[Metric]Point),
		maxPoints: 4096,
		maxEvents: 65536,
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Publish appends a sample to the metric's series and fans it out to
// matching subscribers.
func (r *Repository) Publish(source, name string, t time.Time, v float64) {
	m := Metric{Source: source, Name: name}
	r.mu.Lock()
	s := append(r.series[m], Point{Time: t, Value: v})
	if len(s) > r.maxPoints {
		s = s[len(s)-r.maxPoints:]
	}
	r.series[m] = s
	r.latest[m] = Point{Time: t, Value: v}
	subs := make([]*subscription, len(r.subs))
	copy(subs, r.subs)
	r.mu.Unlock()
	for _, sub := range subs {
		if (sub.source == "" || sub.source == source) && (sub.name == "" || sub.name == name) {
			sub.fn(m, Point{Time: t, Value: v})
		}
	}
}

// PublishEvent appends a discrete event (e.g. a job status transition).
func (r *Repository) PublishEvent(t time.Time, source, kind, detail string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, Event{Time: t, Source: source, Kind: kind, Detail: detail})
	if len(r.events) > r.maxEvents {
		r.events = r.events[len(r.events)-r.maxEvents:]
	}
}

// Latest returns the most recent sample of the metric in O(1).
func (r *Repository) Latest(source, name string) (Point, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.latest[Metric{Source: source, Name: name}]
	return p, ok
}

// LatestValue returns the most recent value, or def when the series is
// empty — the "best effort" read the scheduler performs.
func (r *Repository) LatestValue(source, name string, def float64) float64 {
	p, ok := r.Latest(source, name)
	if !ok {
		return def
	}
	return p.Value
}

// Series returns the samples of a metric within [from, to], inclusive.
func (r *Repository) Series(source, name string, from, to time.Time) []Point {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := r.series[Metric{Source: source, Name: name}]
	out := make([]Point, 0, len(s))
	for _, p := range s {
		if !p.Time.Before(from) && !p.Time.After(to) {
			out = append(out, p)
		}
	}
	return out
}

// Metrics lists every known metric, sorted by source then name.
func (r *Repository) Metrics() []Metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Metric, 0, len(r.series))
	for m := range r.series {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Events returns events since t (inclusive), optionally filtered by source
// ("" matches all).
func (r *Repository) Events(since time.Time, source string) []Event {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Event
	for _, e := range r.events {
		if e.Time.Before(since) {
			continue
		}
		if source != "" && e.Source != source {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Subscribe registers fn for samples matching source/name ("" wildcards).
// It returns an unsubscribe function. Callbacks run synchronously on the
// publisher's goroutine.
func (r *Repository) Subscribe(source, name string, fn func(Metric, Point)) (cancel func()) {
	if fn == nil {
		panic("monalisa: Subscribe with nil callback")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextSubID++
	sub := &subscription{id: r.nextSubID, source: source, name: name, fn: fn}
	r.subs = append(r.subs, sub)
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		for i, s := range r.subs {
			if s.id == sub.id {
				r.subs = append(r.subs[:i], r.subs[i+1:]...)
				return
			}
		}
	}
}

// Stats summarizes a series over [from, to].
type Stats struct {
	Count          int
	Min, Max, Mean float64
}

// SeriesStats computes summary statistics for a metric window.
func (r *Repository) SeriesStats(source, name string, from, to time.Time) Stats {
	pts := r.Series(source, name, from, to)
	if len(pts) == 0 {
		return Stats{}
	}
	st := Stats{Count: len(pts), Min: pts[0].Value, Max: pts[0].Value}
	sum := 0.0
	for _, p := range pts {
		if p.Value < st.Min {
			st.Min = p.Value
		}
		if p.Value > st.Max {
			st.Max = p.Value
		}
		sum += p.Value
	}
	st.Mean = sum / float64(len(pts))
	return st
}

// Conventional metric names used across the GAE services.
const (
	MetricLoadAvg     = "LoadAvg"     // site mean background load [0,1]
	MetricRunningJobs = "RunningJobs" // running task count at a site
	MetricFreeNodes   = "FreeNodes"   // nodes with no placed task
	MetricJobProgress = "JobProgress" // per-job completion fraction
	MetricQueuedJobs  = "QueuedJobs"  // idle job count at a pool
)

// FormatJobSource builds the per-job metric source name.
func FormatJobSource(pool string, jobID int) string {
	return fmt.Sprintf("%s/job%d", pool, jobID)
}
