package monalisa

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/simgrid"
)

var epoch = time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)

func TestPublishAndLatest(t *testing.T) {
	r := NewRepository()
	if _, ok := r.Latest("s", "LoadAvg"); ok {
		t.Fatal("empty repo returned a point")
	}
	r.Publish("s", "LoadAvg", epoch, 0.5)
	r.Publish("s", "LoadAvg", epoch.Add(time.Minute), 0.7)
	p, ok := r.Latest("s", "LoadAvg")
	if !ok || p.Value != 0.7 || !p.Time.Equal(epoch.Add(time.Minute)) {
		t.Fatalf("Latest = %+v, %v", p, ok)
	}
	if got := r.LatestValue("s", "LoadAvg", -1); got != 0.7 {
		t.Fatalf("LatestValue = %v", got)
	}
	if got := r.LatestValue("s", "Missing", -1); got != -1 {
		t.Fatalf("LatestValue default = %v", got)
	}
}

func TestSeriesWindow(t *testing.T) {
	r := NewRepository()
	for i := 0; i < 10; i++ {
		r.Publish("s", "m", epoch.Add(time.Duration(i)*time.Second), float64(i))
	}
	pts := r.Series("s", "m", epoch.Add(3*time.Second), epoch.Add(6*time.Second))
	if len(pts) != 4 || pts[0].Value != 3 || pts[3].Value != 6 {
		t.Fatalf("Series = %+v", pts)
	}
	if got := r.Series("s", "m", epoch.Add(time.Hour), epoch.Add(2*time.Hour)); len(got) != 0 {
		t.Fatalf("out-of-window series = %v", got)
	}
}

func TestSeriesCapBounded(t *testing.T) {
	r := NewRepository(WithSeriesCap(5))
	for i := 0; i < 100; i++ {
		r.Publish("s", "m", epoch.Add(time.Duration(i)*time.Second), float64(i))
	}
	pts := r.Series("s", "m", epoch, epoch.Add(time.Hour))
	if len(pts) != 5 {
		t.Fatalf("retained %d points, want 5", len(pts))
	}
	if pts[0].Value != 95 || pts[4].Value != 99 {
		t.Fatalf("kept wrong window: %+v", pts)
	}
}

func TestEventsFilteredBySinceAndSource(t *testing.T) {
	r := NewRepository()
	r.PublishEvent(epoch, "poolA/job1", "status", "idle->running")
	r.PublishEvent(epoch.Add(time.Minute), "poolA/job1", "status", "running->completed")
	r.PublishEvent(epoch.Add(time.Minute), "poolB/job2", "status", "idle->running")
	all := r.Events(epoch, "")
	if len(all) != 3 {
		t.Fatalf("all events = %d", len(all))
	}
	onlyA := r.Events(epoch, "poolA/job1")
	if len(onlyA) != 2 {
		t.Fatalf("filtered events = %d", len(onlyA))
	}
	late := r.Events(epoch.Add(30*time.Second), "")
	if len(late) != 2 {
		t.Fatalf("since-filtered events = %d", len(late))
	}
}

func TestEventCapBounded(t *testing.T) {
	r := NewRepository(WithEventCap(3))
	for i := 0; i < 10; i++ {
		r.PublishEvent(epoch.Add(time.Duration(i)*time.Second), "s", "k", "d")
	}
	if got := len(r.Events(epoch, "")); got != 3 {
		t.Fatalf("retained %d events, want 3", got)
	}
}

func TestSubscribeWildcardsAndCancel(t *testing.T) {
	r := NewRepository()
	var mu sync.Mutex
	counts := map[string]int{}
	record := func(key string) func(Metric, Point) {
		return func(Metric, Point) {
			mu.Lock()
			counts[key]++
			mu.Unlock()
		}
	}
	cancelAll := r.Subscribe("", "", record("all"))
	r.Subscribe("siteA", "", record("siteA"))
	r.Subscribe("", "LoadAvg", record("load"))
	r.Subscribe("siteA", "LoadAvg", record("exact"))

	r.Publish("siteA", "LoadAvg", epoch, 1)
	r.Publish("siteB", "LoadAvg", epoch, 2)
	r.Publish("siteA", "FreeNodes", epoch, 3)

	mu.Lock()
	if counts["all"] != 3 || counts["siteA"] != 2 || counts["load"] != 2 || counts["exact"] != 1 {
		mu.Unlock()
		t.Fatalf("counts = %v", counts)
	}
	mu.Unlock()

	cancelAll()
	r.Publish("siteA", "LoadAvg", epoch, 4)
	mu.Lock()
	defer mu.Unlock()
	if counts["all"] != 3 {
		t.Fatalf("cancelled subscriber still firing: %v", counts)
	}
	if counts["exact"] != 2 {
		t.Fatalf("remaining subscriber missed publish: %v", counts)
	}
}

func TestSubscribeNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Subscribe(nil) did not panic")
		}
	}()
	NewRepository().Subscribe("", "", nil)
}

func TestMetricsSorted(t *testing.T) {
	r := NewRepository()
	r.Publish("b", "y", epoch, 1)
	r.Publish("a", "z", epoch, 1)
	r.Publish("a", "x", epoch, 1)
	ms := r.Metrics()
	if len(ms) != 3 {
		t.Fatalf("Metrics = %v", ms)
	}
	want := []Metric{{"a", "x"}, {"a", "z"}, {"b", "y"}}
	for i := range want {
		if ms[i] != want[i] {
			t.Fatalf("Metrics = %v, want %v", ms, want)
		}
	}
	if ms[0].String() != "a/x" {
		t.Fatalf("Metric.String = %q", ms[0].String())
	}
}

func TestSeriesStats(t *testing.T) {
	r := NewRepository()
	for i, v := range []float64{2, 4, 6} {
		r.Publish("s", "m", epoch.Add(time.Duration(i)*time.Second), v)
	}
	st := r.SeriesStats("s", "m", epoch, epoch.Add(time.Minute))
	if st.Count != 3 || st.Min != 2 || st.Max != 6 || math.Abs(st.Mean-4) > 1e-9 {
		t.Fatalf("Stats = %+v", st)
	}
	if empty := r.SeriesStats("s", "none", epoch, epoch.Add(time.Minute)); empty.Count != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}

func TestFarmMonitorPublishesSiteWeather(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	sa := g.AddSite("siteA")
	sb := g.AddSite("siteB")
	sa.AddNode(g.Engine, "a1", 1, simgrid.ConstantLoad(0.6))
	sa.AddNode(g.Engine, "a2", 1, simgrid.ConstantLoad(0.2))
	sb.AddNode(g.Engine, "b1", 1, simgrid.IdleLoad())

	r := NewRepository()
	NewFarmMonitor(r, g, 10*time.Second)

	// Initial sample exists before any tick.
	if got := r.LatestValue("siteA", MetricLoadAvg, -1); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("initial siteA load = %v", got)
	}

	// Occupy siteB's node and advance past one interval.
	sb.Nodes()[0].Place(simgrid.NewTask("t", 1000, nil))
	g.Engine.RunFor(11 * time.Second)

	if got := r.LatestValue("siteB", MetricRunningJobs, -1); got != 1 {
		t.Fatalf("siteB running jobs = %v", got)
	}
	if got := r.LatestValue("siteB", MetricFreeNodes, -1); got != 0 {
		t.Fatalf("siteB free nodes = %v", got)
	}
	if got := r.LatestValue("siteA", MetricFreeNodes, -1); got != 2 {
		t.Fatalf("siteA free nodes = %v", got)
	}

	// Series accumulates over time.
	g.Engine.RunFor(50 * time.Second)
	pts := r.Series("siteA", MetricLoadAvg, epoch, epoch.Add(2*time.Minute))
	if len(pts) < 5 {
		t.Fatalf("series has %d points", len(pts))
	}
}

func TestFarmMonitorDefaultInterval(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	g.AddSite("s")
	r := NewRepository()
	m := NewFarmMonitor(r, g, 0)
	if m.interval != 30*time.Second {
		t.Fatalf("default interval = %v", m.interval)
	}
}

func TestFormatJobSource(t *testing.T) {
	if got := FormatJobSource("poolA", 7); got != "poolA/job7" {
		t.Fatalf("FormatJobSource = %q", got)
	}
}

func TestConcurrentPublishers(t *testing.T) {
	r := NewRepository()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Publish("s", "m", epoch.Add(time.Duration(j)*time.Second), float64(i))
				r.PublishEvent(epoch, "s", "k", "d")
				r.Latest("s", "m")
				r.Metrics()
			}
		}(i)
	}
	wg.Wait()
	if st := r.SeriesStats("s", "m", epoch, epoch.Add(time.Hour)); st.Count != 800 {
		t.Fatalf("points = %d, want 800", st.Count)
	}
}
