package monalisa

import (
	"time"

	"repro/internal/simgrid"
)

// FarmMonitor samples every site of a simulated grid on a fixed interval
// and publishes LoadAvg, RunningJobs and FreeNodes series — the "Grid
// weather" the paper's scheduler and optimizer consult. It plays the role
// of the MonALISA agents that run on each farm.
//
// The monitor is event-driven: the engine wakes it exactly at sample
// boundaries (the interval rounded up to whole ticks), so between samples
// it costs the simulation nothing.
type FarmMonitor struct {
	repo     *Repository
	grid     *simgrid.Grid
	interval time.Duration
	wake     *simgrid.Wake
}

// NewFarmMonitor registers a monitor with the grid's engine; samples are
// published every interval of simulated time (minimum: one engine tick).
func NewFarmMonitor(repo *Repository, grid *simgrid.Grid, interval time.Duration) *FarmMonitor {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	m := &FarmMonitor{repo: repo, grid: grid, interval: grid.Engine.AlignTicks(interval)}
	m.wake = grid.Engine.Register(m.onWake)
	// Publish an initial sample so consumers never observe an empty
	// repository at simulation start.
	m.sample(grid.Engine.Now())
	m.wake.Request(grid.Engine.Now().Add(m.interval))
	return m
}

// onWake publishes one sample and schedules the next.
func (m *FarmMonitor) onWake(now time.Time) {
	m.sample(now)
	m.wake.Request(now.Add(m.interval))
}

func (m *FarmMonitor) sample(now time.Time) {
	for _, site := range m.grid.Sites() {
		m.repo.Publish(site.Name, MetricLoadAvg, now, site.AvgLoad(now))
		m.repo.Publish(site.Name, MetricRunningJobs, now, float64(site.RunningTasks()))
		free := 0
		for _, n := range site.Nodes() {
			if n.TaskCount() == 0 {
				free++
			}
		}
		m.repo.Publish(site.Name, MetricFreeNodes, now, float64(free))
	}
}
