package monalisa

import (
	"time"

	"repro/internal/simgrid"
)

// FarmMonitor samples every site of a simulated grid on a fixed interval
// and publishes LoadAvg, RunningJobs and FreeNodes series — the "Grid
// weather" the paper's scheduler and optimizer consult. It plays the role
// of the MonALISA agents that run on each farm.
type FarmMonitor struct {
	repo     *Repository
	grid     *simgrid.Grid
	interval time.Duration
	elapsed  time.Duration
}

// NewFarmMonitor registers a monitor with the grid's engine; samples are
// published every interval of simulated time (minimum: one engine tick).
func NewFarmMonitor(repo *Repository, grid *simgrid.Grid, interval time.Duration) *FarmMonitor {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	m := &FarmMonitor{repo: repo, grid: grid, interval: interval}
	grid.Engine.AddActor(m)
	// Publish an initial sample so consumers never observe an empty
	// repository at simulation start.
	m.sample(grid.Engine.Now())
	return m
}

// OnTick implements simgrid.Actor.
func (m *FarmMonitor) OnTick(now time.Time, dt time.Duration) {
	m.elapsed += dt
	if m.elapsed < m.interval {
		return
	}
	m.elapsed = 0
	m.sample(now)
}

func (m *FarmMonitor) sample(now time.Time) {
	for _, site := range m.grid.Sites() {
		m.repo.Publish(site.Name, MetricLoadAvg, now, site.AvgLoad(now))
		m.repo.Publish(site.Name, MetricRunningJobs, now, float64(site.RunningTasks()))
		free := 0
		for _, n := range site.Nodes() {
			if len(n.Tasks()) == 0 {
				free++
			}
		}
		m.repo.Publish(site.Name, MetricFreeNodes, now, float64(free))
	}
}
