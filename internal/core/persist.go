package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/clarens"
	"repro/internal/durable"
	"repro/internal/scheduler"
	"repro/internal/steering"
	"repro/internal/telemetry"
	"repro/pkg/gae"
)

// This file makes a GAE deployment crash-recoverable. The durable layer
// has two halves:
//
//   - Checkpoint serializes every piece of mutable deployment state —
//     pool queues and claims, fair-share accounts, the quota ledger, the
//     replica catalog, submitted plans, steering preference, and the
//     per-user analysis-session state — into one versioned snapshot,
//     then truncates the RPC journal it supersedes.
//
//   - Between checkpoints, every mutating RPC on either transport (the
//     local client and the Clarens XML-RPC endpoint share one service
//     binding) is appended to the journal after it succeeds and before
//     it is acknowledged: an acknowledged call is a recoverable call.
//
// AttachStore runs recovery: restore the snapshot (advancing the
// simulation engine to the capture instant), then re-apply the journal
// tail through the same service layer the live calls used — each op at
// its recorded simulated time, as the original user. Leases reconcile in
// the pools: a running job whose machine claim outlived the crash
// continues with its remaining work; an expired claim requeues the job.

// DefaultLeaseTTL is the machine-claim lease horizon stamped into
// snapshots when Config.LeaseTTL is unset.
const DefaultLeaseTTL = 10 * time.Minute

// Journal argument payloads — one stable JSON shape per mutating method.
// Replay decodes exactly what the journaling wrappers encoded.
type (
	opSubmit   struct{ Spec gae.PlanSpec }
	opTaskRef  struct{ Plan, Task string }
	opMove     struct{ Plan, Task, Site string }
	opPriority struct {
		Plan, Task string
		Priority   int
	}
	opPreference struct{ Preference string }
	opStateSet   struct{ Key, Value string }
	opStateKey   struct{ Key string }
	opReplica    struct {
		Dataset, Site string
		SizeMB        float64
	}
	opGrant struct {
		User    string
		Credits float64
	}
)

// AttachStore binds a durable store to the deployment. The store's
// recovered contents are applied first — snapshot restore, then journal
// tail replay — and every subsequent mutating RPC is journaled. Attach at
// most once, before serving traffic.
func (g *GAE) AttachStore(s *durable.Store) error {
	s.SetTelemetry(g.Telemetry)
	snap, tail := s.Recovery()
	if snap != nil {
		if err := g.RestoreState(snap.SimTime, &snap.State); err != nil {
			return fmt.Errorf("core: restoring snapshot: %w", err)
		}
	}
	for _, op := range tail {
		if err := g.ApplyOp(op); err != nil {
			return fmt.Errorf("core: replaying journal op %d (%s.%s): %w", op.Seq, op.Service, op.Method, err)
		}
	}
	g.persistMu.Lock()
	g.store = s
	g.persistMu.Unlock()
	return nil
}

// Store returns the attached durable store (nil for an in-memory
// deployment).
func (g *GAE) Store() *durable.Store {
	g.persistMu.RLock()
	defer g.persistMu.RUnlock()
	return g.store
}

// Checkpoint captures the full deployment state into the store's
// snapshot and truncates the journal it supersedes. It takes the
// durability barrier exclusively, so no journaled RPC is in flight while
// the state is read. Without an attached store it does nothing.
func (g *GAE) Checkpoint() error {
	g.persistMu.Lock()
	defer g.persistMu.Unlock()
	if g.store == nil {
		return nil
	}
	st, err := g.captureStateLocked()
	if err != nil {
		return err
	}
	return g.store.Checkpoint(g.Now(), st)
}

// CaptureState exports the deployment's full mutable state in the
// canonical (sorted, settled) snapshot form. The recovery test suite
// compares its encoded bytes across a kill and restart.
func (g *GAE) CaptureState() (durable.State, error) {
	g.persistMu.Lock()
	defer g.persistMu.Unlock()
	return g.captureStateLocked()
}

func (g *GAE) captureStateLocked() (durable.State, error) {
	ttl := g.leaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	var st durable.State
	poolNames := make([]string, 0, len(g.pools))
	for name := range g.pools {
		poolNames = append(poolNames, name)
	}
	sort.Strings(poolNames)
	for _, name := range poolNames {
		st.Pools = append(st.Pools, g.pools[name].Export(ttl))
	}
	if g.FairShare != nil {
		st.FairShare = g.FairShare.Export()
	}
	st.Quota = g.Quota.Export()
	st.Replicas = g.Replicas.Export()
	st.UserState = g.State.Export()
	st.Steering = durable.SteeringState{Preference: g.Steering.Preference.String()}
	st.Idempotency = g.idem.export()

	// The estimator layer feeds placement and the EstimatedRuntime
	// stamped into job ads at submission — without it, the first
	// post-restart submit would diverge from its pre-crash twin.
	est := durable.EstimatorState{Estimates: g.Scheduler.EstimateDB().Export()}
	for _, site := range g.Scheduler.Sites() {
		svc, ok := g.Scheduler.SiteServicesFor(site)
		if !ok || svc.Runtime == nil || svc.Runtime.History == nil {
			continue
		}
		if recs := svc.Runtime.History.Export(); len(recs) > 0 {
			est.Sites = append(est.Sites, durable.SiteHistory{Site: site, Records: recs})
		}
	}
	if len(est.Sites) > 0 || len(est.Estimates) > 0 {
		st.Estimator = &est
	}

	g.planMu.Lock()
	defer g.planMu.Unlock()
	planNames := make([]string, 0, len(g.plans))
	for name := range g.plans {
		planNames = append(planNames, name)
	}
	sort.Strings(planNames)
	for _, name := range planNames {
		cp := g.plans[name]
		spec, err := json.Marshal(PlanSpecOf(cp.Plan))
		if err != nil {
			return durable.State{}, fmt.Errorf("core: encoding plan %q: %w", name, err)
		}
		st.Plans = append(st.Plans, durable.PlanState{
			Name:  name,
			Owner: cp.Plan.Owner,
			Spec:  spec,
			Tasks: scheduler.ExportTasks(cp),
		})
	}
	return st, nil
}

// RestoreState rebuilds the deployment from an exported state captured
// at simTime. The engine is advanced to the capture instant first, so
// restored leases, decayed usage, and timestamps line up; site storage
// is re-materialized from the replica catalog so restored plans can
// stage their inputs. It must run on a freshly built deployment.
func (g *GAE) RestoreState(simTime time.Time, st *durable.State) error {
	if d := simTime.Sub(g.Now()); d > 0 {
		g.Grid.Engine.RunFor(d)
	}

	if err := g.Replicas.Restore(st.Replicas); err != nil {
		return err
	}
	for _, l := range st.Replicas {
		site := g.Grid.Site(l.Site)
		if site == nil {
			return fmt.Errorf("core: restored replica of %q at unknown site %q", l.Dataset, l.Site)
		}
		if _, ok := site.Storage().Get(l.Dataset); !ok {
			if err := site.Storage().Put(l.Dataset, l.SizeMB); err != nil {
				return err
			}
		}
	}

	g.Quota.Restore(st.Quota)
	if g.FairShare != nil {
		g.FairShare.Restore(st.FairShare)
	}
	g.State.Restore(st.UserState)
	g.idem.restore(st.Idempotency)
	if st.Steering.Preference != "" {
		pref, err := steering.ParsePreference(st.Steering.Preference)
		if err != nil {
			return err
		}
		g.Steering.Preference = pref
	}

	if st.Estimator != nil {
		g.Scheduler.EstimateDB().Restore(st.Estimator.Estimates)
		for _, sh := range st.Estimator.Sites {
			svc, ok := g.Scheduler.SiteServicesFor(sh.Site)
			if !ok || svc.Runtime == nil || svc.Runtime.History == nil {
				return fmt.Errorf("core: snapshot carries history for unknown site %q", sh.Site)
			}
			svc.Runtime.History.Restore(sh.Records)
		}
	}

	for _, ps := range st.Pools {
		pool, ok := g.pools[ps.Name]
		if !ok {
			return fmt.Errorf("core: snapshot names unknown site %q", ps.Name)
		}
		if err := pool.Restore(ps); err != nil {
			return err
		}
	}

	for _, pl := range st.Plans {
		var spec gae.PlanSpec
		if err := json.Unmarshal(pl.Spec, &spec); err != nil {
			return fmt.Errorf("core: decoding plan %q: %w", pl.Name, err)
		}
		plan, err := planFromSpec(spec, pl.Owner)
		if err != nil {
			return fmt.Errorf("core: rebuilding plan %q: %w", pl.Name, err)
		}
		cp, err := g.Scheduler.RestorePlan(plan, pl.Tasks)
		if err != nil {
			return err
		}
		g.planMu.Lock()
		g.plans[pl.Name] = cp
		g.planMu.Unlock()
	}
	g.Scheduler.Pump()
	return nil
}

// ApplyOp re-applies one journaled RPC: the engine advances to the op's
// recorded simulated time, then the call runs through the unjournaled
// service layer as the recorded user — the same code path that served it
// live. Ops that carried an idempotency key are re-recorded into the
// duplicate-suppression window (a journaled op is an acknowledged op),
// with the same result shapes journalCall/journalDo recorded live, so a
// retry arriving after recovery still dedups.
func (g *GAE) ApplyOp(op durable.Op) error {
	if d := op.Time.Sub(g.Now()); d > 0 {
		g.Grid.Engine.RunFor(d)
	}
	ctx := context.Background()
	svcs := g.rawServices(func(context.Context) string { return op.User })
	dec := func(v any) error {
		if err := json.Unmarshal(op.Args, v); err != nil {
			return fmt.Errorf("core: decoding %s.%s args: %w", op.Service, op.Method, err)
		}
		return nil
	}
	out, err := func() (any, error) {
		switch op.Service + "." + op.Method {
		case "scheduler.submit":
			var a opSubmit
			if err := dec(&a); err != nil {
				return nil, err
			}
			return svcs.Scheduler.Submit(ctx, a.Spec)
		case "steering.kill":
			var a opTaskRef
			if err := dec(&a); err != nil {
				return nil, err
			}
			return true, svcs.Steering.Kill(ctx, a.Plan, a.Task)
		case "steering.pause":
			var a opTaskRef
			if err := dec(&a); err != nil {
				return nil, err
			}
			return true, svcs.Steering.Pause(ctx, a.Plan, a.Task)
		case "steering.resume":
			var a opTaskRef
			if err := dec(&a); err != nil {
				return nil, err
			}
			return true, svcs.Steering.Resume(ctx, a.Plan, a.Task)
		case "steering.move":
			var a opMove
			if err := dec(&a); err != nil {
				return nil, err
			}
			return svcs.Steering.Move(ctx, a.Plan, a.Task, a.Site)
		case "steering.setpriority":
			var a opPriority
			if err := dec(&a); err != nil {
				return nil, err
			}
			return true, svcs.Steering.SetPriority(ctx, a.Plan, a.Task, a.Priority)
		case "steering.setpreference":
			var a opPreference
			if err := dec(&a); err != nil {
				return nil, err
			}
			return svcs.Steering.SetPreference(ctx, a.Preference)
		case "state.set":
			var a opStateSet
			if err := dec(&a); err != nil {
				return nil, err
			}
			return true, svcs.State.SetState(ctx, a.Key, a.Value)
		case "state.delete":
			var a opStateKey
			if err := dec(&a); err != nil {
				return nil, err
			}
			return svcs.State.DeleteState(ctx, a.Key)
		case "replica.register":
			var a opReplica
			if err := dec(&a); err != nil {
				return nil, err
			}
			return true, svcs.Replica.RegisterReplica(ctx, a.Dataset, a.Site, a.SizeMB)
		case "quota.grant":
			var a opGrant
			if err := dec(&a); err != nil {
				return nil, err
			}
			return true, svcs.Quota.Grant(ctx, a.User, a.Credits)
		case "quota.charge":
			var a gae.ChargeRequest
			if err := dec(&a); err != nil {
				return nil, err
			}
			return svcs.Quota.ChargeUsage(ctx, a)
		}
		return nil, fmt.Errorf("core: journal op %d names unknown method %s.%s", op.Seq, op.Service, op.Method)
	}()
	if err != nil {
		return err
	}
	if op.RequestID != "" && op.User != "" {
		if res, merr := json.Marshal(out); merr == nil {
			g.idem.record(op.User, op.RequestID, op.Service+"."+op.Method, res, op.Seq, op.Time)
		}
	}
	return nil
}

// journaled wraps the mutating methods of every service with journal
// appends. Read-only methods pass through the embedded interfaces.
func (g *GAE) journaled(svcs gae.Services, userOf gae.UserResolver) gae.Services {
	svcs.Scheduler = journaledScheduler{Scheduler: svcs.Scheduler, g: g, userOf: userOf}
	svcs.Steering = journaledSteering{Steering: svcs.Steering, g: g, userOf: userOf}
	svcs.State = journaledState{State: svcs.State, g: g, userOf: userOf}
	svcs.Replica = journaledReplica{Replica: svcs.Replica, g: g, userOf: userOf}
	svcs.Quota = journaledQuota{Quota: svcs.Quota, g: g, userOf: userOf}
	return svcs
}

// journalCall runs a mutating RPC under the shared durability barrier
// with duplicate suppression and, once it has succeeded, appends its
// journal record — the call is acknowledged only after the record is
// fsynced, so every acknowledged mutation survives a crash. args is
// deferred so wrappers can journal values resolved by the call itself
// (e.g. the site a move landed on).
//
// Exactly-once protocol: if the context carries an idempotency key the
// per-user window has already acknowledged, the recorded result is
// returned without re-applying — the retry of an ack-lost call. Fresh
// calls run apply → journal append (fsync) → window record → ack, so the
// window holds only acknowledged ops, which is precisely the set the
// chaos harness reconciles client ack logs against. A call that applied
// but failed its journal append is NOT recorded: the client sees an
// error, the journal is sticky-broken until the next checkpoint, and
// recovery rolls the un-journaled mutation back.
func journalCall[T any](g *GAE, ctx context.Context, user, service, method string, args func() any, apply func() (T, error)) (T, error) {
	var zero T
	g.persistMu.RLock()
	defer g.persistMu.RUnlock()
	fq := service + "." + method
	rid := clarens.RequestID(ctx)
	mo := g.obs.forMethod(fq)
	var t0 time.Time
	if mo != nil {
		t0 = time.Now() //lint:walltime telemetry: real RPC latency span, never read back into deployment state
		mo.requests.Inc()
	}
	if rid != "" && user != "" {
		if e, ok := g.idem.lookup(user, rid); ok {
			if e.Method != fq {
				g.finishSpan(mo, t0, fq, user, rid, "mismatch", 0, false, errRequestIDReuse)
				return zero, fmt.Errorf("core: request id %q reused for %s (recorded for %s)", rid, fq, e.Method)
			}
			var out T
			if len(e.Result) > 0 {
				if err := json.Unmarshal(e.Result, &out); err != nil {
					return zero, fmt.Errorf("core: decoding recorded %s result: %w", fq, err)
				}
			}
			g.finishSpan(mo, t0, fq, user, rid, "dedup", 0, true, nil)
			return out, nil
		}
	}
	out, err := apply()
	var applied time.Time
	if mo != nil {
		applied = time.Now() //lint:walltime telemetry: real RPC latency span, never read back into deployment state
	}
	if err != nil {
		g.finishSpan(mo, t0, fq, user, rid, "handler", 0, false, err)
		return zero, err
	}
	var seq uint64
	// One sim-time read serves both the journal record and the window
	// entry: replay re-records at the journaled op.Time, so the live and
	// replayed windows must stamp the identical instant (the recovery
	// byte-identity suite compares the two).
	now := g.Now()
	if g.store != nil {
		seq, err = g.store.Append(now, user, service, method, rid, args())
		if err != nil {
			g.finishSpan(mo, t0, fq, user, rid, "journal", 0, false, err)
			g.durabilityLost(err)
			return zero, err
		}
	}
	if rid != "" && user != "" {
		if res, merr := json.Marshal(out); merr == nil {
			g.idem.record(user, rid, fq, res, seq, now)
		}
	}
	if mo != nil {
		end := time.Now() //lint:walltime telemetry: real RPC latency span, never read back into deployment state
		total := end.Sub(t0)
		mo.latency.Observe(total.Seconds())
		span := telemetry.Span{
			RequestID:   rid,
			Method:      fq,
			User:        user,
			Start:       t0,
			TotalMillis: float64(total) / float64(time.Millisecond),
			Seq:         seq,
			Stages: []telemetry.Stage{
				{Name: "handler", Millis: float64(applied.Sub(t0)) / float64(time.Millisecond)},
			},
		}
		if g.store != nil {
			span.Stages = append(span.Stages, telemetry.Stage{
				Name: "journal", Millis: float64(end.Sub(applied)) / float64(time.Millisecond),
			})
		}
		g.trace.Add(span)
	}
	return out, nil
}

// errRequestIDReuse tags the reuse-span error without allocating the
// formatted message twice.
var errRequestIDReuse = fmt.Errorf("request id reused across methods")

// OnDurabilityLoss registers fn to run — once, on the first occurrence —
// when a journal append fails after its mutation already applied. See
// the GAE field doc: the only safe response for a serving process is to
// crash and recover from the journal; gae-server installs an exiting
// hook. Without a hook the journal's sticky error keeps nacking appends
// until the checkpoint cycle truncates it (the embedded/test behavior).
func (g *GAE) OnDurabilityLoss(fn func(error)) { g.onDurabilityLoss = fn }

func (g *GAE) durabilityLost(err error) {
	if g.onDurabilityLoss == nil {
		return
	}
	g.durabilityLossOnce.Do(func() { g.onDurabilityLoss(err) })
}

// finishSpan records the latency observation and trace span for the
// non-happy exits of journalCall (dedup hits, handler errors, journal
// append failures). A nil mo means telemetry is off and the whole call
// is skipped.
func (g *GAE) finishSpan(mo *methodObs, t0 time.Time, fq, user, rid, stage string, seq uint64, dedup bool, err error) {
	if mo == nil {
		return
	}
	end := time.Now() //lint:walltime telemetry: real RPC latency span, never read back into deployment state
	total := end.Sub(t0)
	mo.latency.Observe(total.Seconds())
	if err != nil {
		mo.errors.Inc()
	}
	span := telemetry.Span{
		RequestID:   rid,
		Method:      fq,
		User:        user,
		Start:       t0,
		TotalMillis: float64(total) / float64(time.Millisecond),
		Seq:         seq,
		Dedup:       dedup,
		Stages:      []telemetry.Stage{{Name: stage, Millis: float64(total) / float64(time.Millisecond)}},
	}
	if err != nil {
		span.Err = err.Error()
	}
	g.trace.Add(span)
}

// journalDo is journalCall for void mutations; the recorded result is
// the conventional true.
func journalDo(g *GAE, ctx context.Context, user, service, method string, args func() any, apply func() error) error {
	_, err := journalCall(g, ctx, user, service, method, args,
		func() (bool, error) { return true, apply() })
	return err
}

type journaledScheduler struct {
	gae.Scheduler
	g      *GAE
	userOf gae.UserResolver
}

func (s journaledScheduler) Submit(ctx context.Context, spec gae.PlanSpec) (string, error) {
	return journalCall(s.g, ctx, s.userOf(ctx), "scheduler", "submit",
		func() any { return opSubmit{Spec: spec} },
		func() (string, error) { return s.Scheduler.Submit(ctx, spec) })
}

type journaledSteering struct {
	gae.Steering
	g      *GAE
	userOf gae.UserResolver
}

func (s journaledSteering) Kill(ctx context.Context, plan, task string) error {
	return journalDo(s.g, ctx, s.userOf(ctx), "steering", "kill",
		func() any { return opTaskRef{Plan: plan, Task: task} },
		func() error { return s.Steering.Kill(ctx, plan, task) })
}

func (s journaledSteering) Pause(ctx context.Context, plan, task string) error {
	return journalDo(s.g, ctx, s.userOf(ctx), "steering", "pause",
		func() any { return opTaskRef{Plan: plan, Task: task} },
		func() error { return s.Steering.Pause(ctx, plan, task) })
}

func (s journaledSteering) Resume(ctx context.Context, plan, task string) error {
	return journalDo(s.g, ctx, s.userOf(ctx), "steering", "resume",
		func() any { return opTaskRef{Plan: plan, Task: task} },
		func() error { return s.Steering.Resume(ctx, plan, task) })
}

func (s journaledSteering) Move(ctx context.Context, plan, task, site string) (gae.MoveResult, error) {
	var res gae.MoveResult
	// The journal records the site the move actually landed on, not the
	// request's (possibly empty) preference: replay must not re-run site
	// selection against monitoring state that no longer exists.
	return journalCall(s.g, ctx, s.userOf(ctx), "steering", "move",
		func() any { return opMove{Plan: plan, Task: task, Site: res.Site} },
		func() (gae.MoveResult, error) {
			var err error
			res, err = s.Steering.Move(ctx, plan, task, site)
			return res, err
		})
}

func (s journaledSteering) SetPriority(ctx context.Context, plan, task string, priority int) error {
	return journalDo(s.g, ctx, s.userOf(ctx), "steering", "setpriority",
		func() any { return opPriority{Plan: plan, Task: task, Priority: priority} },
		func() error { return s.Steering.SetPriority(ctx, plan, task, priority) })
}

func (s journaledSteering) SetPreference(ctx context.Context, preference string) (string, error) {
	var applied string
	return journalCall(s.g, ctx, s.userOf(ctx), "steering", "setpreference",
		func() any { return opPreference{Preference: applied} },
		func() (string, error) {
			var err error
			applied, err = s.Steering.SetPreference(ctx, preference)
			return applied, err
		})
}

type journaledState struct {
	gae.State
	g      *GAE
	userOf gae.UserResolver
}

func (s journaledState) SetState(ctx context.Context, key, value string) error {
	return journalDo(s.g, ctx, s.userOf(ctx), "state", "set",
		func() any { return opStateSet{Key: key, Value: value} },
		func() error { return s.State.SetState(ctx, key, value) })
}

func (s journaledState) DeleteState(ctx context.Context, key string) (bool, error) {
	return journalCall(s.g, ctx, s.userOf(ctx), "state", "delete",
		func() any { return opStateKey{Key: key} },
		func() (bool, error) { return s.State.DeleteState(ctx, key) })
}

type journaledReplica struct {
	gae.Replica
	g      *GAE
	userOf gae.UserResolver
}

func (s journaledReplica) RegisterReplica(ctx context.Context, dataset, site string, sizeMB float64) error {
	return journalDo(s.g, ctx, s.userOf(ctx), "replica", "register",
		func() any { return opReplica{Dataset: dataset, Site: site, SizeMB: sizeMB} },
		func() error { return s.Replica.RegisterReplica(ctx, dataset, site, sizeMB) })
}

type journaledQuota struct {
	gae.Quota
	g      *GAE
	userOf gae.UserResolver
}

func (s journaledQuota) Grant(ctx context.Context, user string, credits float64) error {
	return journalDo(s.g, ctx, s.userOf(ctx), "quota", "grant",
		func() any { return opGrant{User: user, Credits: credits} },
		func() error { return s.Quota.Grant(ctx, user, credits) })
}

func (s journaledQuota) ChargeUsage(ctx context.Context, req gae.ChargeRequest) (float64, error) {
	return journalCall(s.g, ctx, s.userOf(ctx), "quota", "charge",
		func() any { return req },
		func() (float64, error) { return s.Quota.ChargeUsage(ctx, req) })
}
