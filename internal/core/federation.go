package core

import (
	"context"
	"fmt"

	"repro/internal/clarens"
	"repro/internal/xmlrpc"
	"repro/pkg/gae"
)

// Federation is the paper's actual deployment shape: "The Clarens web
// service hosts are the backbone of this GAE" — plural. Each execution
// site runs its own Clarens host carrying the site-local services (the
// decentralized runtime estimator of §6.1 and a site-scoped job
// monitoring facade), while a central host carries the global services
// (steering, scheduler, quota, replica catalog). Hosts are linked as
// peers, so a client attached to any one of them can discover every
// service in the grid through Clarens' peer-to-peer lookup.
type Federation struct {
	// Central is the full GAE on the central host.
	Central *GAE
	// SiteHosts maps each site to its own Clarens server.
	SiteHosts map[string]*clarens.Server

	urls map[string]string
}

// NewFederation builds the multi-host deployment. Site hosts share the
// central host's user database so one credential set works everywhere, as
// a VO-wide certificate would have in the original.
func NewFederation(cfg Config) *Federation {
	g := New(cfg)
	f := &Federation{
		Central:   g,
		SiteHosts: make(map[string]*clarens.Server),
		urls:      make(map[string]string),
	}
	for _, site := range g.Sites() {
		host := clarens.NewServer("clarens-"+site, g.Grid.Engine.Clock())
		host.Users = g.Clarens.Users       // shared principals
		host.Sessions = g.Clarens.Sessions // shared sessions: one login works grid-wide
		f.registerSiteServices(host, site)
		f.SiteHosts[site] = host
	}
	return f
}

// registerSiteServices hosts the site-local service set: the central
// deployment's typed contracts curried to one site and bound to the wire
// by the same generic handler adapter the central host uses.
func (f *Federation) registerSiteServices(host *clarens.Server, site string) {
	svcs := f.Central.services(f.Central.userOf)
	svcName := "estimator-" + site
	host.RegisterService(svcName, "site-local runtime estimator", map[string]xmlrpc.Handler{
		"runtime": gae.Handler1(func(ctx context.Context, task gae.TaskProfile) (gae.RuntimeEstimate, error) {
			return svcs.Estimator.EstimateRuntime(ctx, site, task)
		}),
		"queuetime": gae.Handler1(func(ctx context.Context, id int) (gae.QueueEstimate, error) {
			return svcs.Estimator.EstimateQueueTime(ctx, site, id)
		}),
	})
	jmName := "jobmon-" + site
	host.RegisterService(jmName, "site-local job monitoring", map[string]xmlrpc.Handler{
		"status": gae.Handler1(func(ctx context.Context, id int) (string, error) {
			return svcs.JobMon.JobStatus(ctx, site, id)
		}),
		"info": gae.Handler1(func(ctx context.Context, id int) (gae.JobInfo, error) {
			return svcs.JobMon.Job(ctx, site, id)
		}),
	})
	host.ACL.Allow("authenticated", svcName+".*")
	host.ACL.Allow("authenticated", jmName+".*")
}

// Start listens on ephemeral ports for the central host and every site
// host, wires the peer mesh (central ↔ every site), and returns the
// central URL.
func (f *Federation) Start() (string, error) {
	central, err := f.Central.Start("127.0.0.1:0")
	if err != nil {
		return "", err
	}
	f.urls["central"] = central
	for site, host := range f.SiteHosts {
		url, err := host.Start("127.0.0.1:0")
		if err != nil {
			f.Stop()
			return "", fmt.Errorf("core: starting host for %s: %w", site, err)
		}
		f.urls[site] = url
		// Peer mesh: the central host can reach every site host and vice
		// versa, so discovery flows both ways in one hop.
		f.Central.Clarens.AddPeer(url)
		host.AddPeer(central)
	}
	return central, nil
}

// Client returns a local-transport gae.Client on the central deployment
// acting as user — the typed equivalent of calling the central host.
func (f *Federation) Client(user string) *gae.Client {
	return f.Central.Client(user)
}

// URL returns a started host's endpoint ("central" or a site name).
func (f *Federation) URL(name string) (string, bool) {
	u, ok := f.urls[name]
	return u, ok
}

// Stop shuts every host down.
func (f *Federation) Stop() {
	_ = f.Central.Stop()
	for _, host := range f.SiteHosts {
		_ = host.Stop()
	}
}
