package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/scheduler"
	"repro/internal/simgrid"
)

// threeSiteConfig is a 3-site, 10-node deployment for stress tests.
func threeSiteConfig() Config {
	return Config{
		Seed: 99,
		Sites: []SiteSpec{
			{Name: "siteA", Nodes: 4, CostPerCPUSecond: 0.05},
			{Name: "siteB", Nodes: 4, Load: simgrid.ConstantLoad(0.2), CostPerCPUSecond: 0.02},
			{Name: "siteC", Nodes: 2, Load: simgrid.ConstantLoad(0.4), CostPerCPUSecond: 0.01},
		},
		Links: []LinkSpec{
			{A: "siteA", B: "siteB", MBps: 20},
			{A: "siteA", B: "siteC", MBps: 10},
			{A: "siteB", B: "siteC", MBps: 5},
		},
		Users: []UserSpec{{Name: "alice", Password: "pw", Credits: 1e9}},
	}
}

// TestLargeDAGCampaign runs a 30-task mixed DAG across three sites and
// checks global invariants: every task completes, dependencies were
// honoured, estimator histories grew, and the steering service observed
// every task.
func TestLargeDAGCampaign(t *testing.T) {
	g := New(threeSiteConfig())
	g.PutDataset("siteA", "raw.data", 200)

	plan := &scheduler.JobPlan{Name: "campaign", Owner: "alice"}
	// Layer 1: 10 independent staging tasks reading the shared dataset.
	for i := 0; i < 10; i++ {
		plan.Tasks = append(plan.Tasks, scheduler.TaskPlan{
			ID: fmt.Sprintf("stage%d", i), CPUSeconds: float64(20 + 5*i),
			Queue: "short", Partition: "gae", Nodes: 1, JobType: "batch",
			Inputs:     []scheduler.FileRef{{Name: "raw.data"}},
			OutputFile: fmt.Sprintf("skim%d.data", i), OutputMB: 20,
		})
	}
	// Layer 2: 10 reconstruction tasks, each depending on two stages.
	for i := 0; i < 10; i++ {
		plan.Tasks = append(plan.Tasks, scheduler.TaskPlan{
			ID: fmt.Sprintf("reco%d", i), CPUSeconds: float64(60 + 10*i),
			Queue: "long", Partition: "gae", Nodes: 1, JobType: "batch",
			DependsOn:  []string{fmt.Sprintf("stage%d", i), fmt.Sprintf("stage%d", (i+1)%10)},
			OutputFile: fmt.Sprintf("reco%d.root", i), OutputMB: 15,
		})
	}
	// Layer 3: 9 partial merges plus a final merge.
	for i := 0; i < 9; i++ {
		plan.Tasks = append(plan.Tasks, scheduler.TaskPlan{
			ID: fmt.Sprintf("merge%d", i), CPUSeconds: 30,
			Queue: "short", Partition: "gae", Nodes: 1, JobType: "batch",
			DependsOn: []string{fmt.Sprintf("reco%d", i), fmt.Sprintf("reco%d", i+1)},
		})
	}
	final := scheduler.TaskPlan{
		ID: "final", CPUSeconds: 45,
		Queue: "short", Partition: "gae", Nodes: 1, JobType: "batch",
		OutputFile: "analysis.root", OutputMB: 50,
	}
	for i := 0; i < 9; i++ {
		final.DependsOn = append(final.DependsOn, fmt.Sprintf("merge%d", i))
	}
	plan.Tasks = append(plan.Tasks, final)

	cp, err := g.SubmitPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunUntilDone(cp, 4*time.Hour); err != nil {
		t.Fatal(err)
	}
	if done, ok := cp.Done(); !done || !ok {
		t.Fatalf("campaign done=%v ok=%v", done, ok)
	}

	// Dependency order held: every task was submitted after its deps
	// completed, which the scheduler guarantees only if SubmittedAt
	// ordering is consistent with the DAG.
	for _, tk := range plan.Tasks {
		a, _ := cp.Assignment(tk.ID)
		for _, dep := range tk.DependsOn {
			d, _ := cp.Assignment(dep)
			if a.SubmittedAt.Before(d.SubmittedAt) {
				t.Fatalf("%s submitted before its dependency %s", tk.ID, dep)
			}
		}
	}

	// Work spread across sites.
	sites := cp.Sites()
	if len(sites) < 2 {
		t.Fatalf("all 30 tasks ran at %v", sites)
	}

	// Histories grew at every used site (the learning loop).
	total := 0
	for _, site := range sites {
		svc, ok := g.Scheduler.SiteServicesFor(site)
		if !ok {
			t.Fatalf("site %s unregistered", site)
		}
		total += svc.Runtime.History.Len()
	}
	if total != len(plan.Tasks) {
		t.Fatalf("history records = %d, want %d", total, len(plan.Tasks))
	}

	// Steering watched all 30 tasks; drain its notifications.
	if got := len(g.Steering.Watched("alice")); got != len(plan.Tasks) {
		t.Fatalf("steering watched %d tasks", got)
	}
	g.Run(15 * time.Second)
	completions := 0
	for _, n := range g.Steering.Notifications("alice") {
		if n.Kind == "completed" {
			completions++
		}
	}
	if completions != len(plan.Tasks) {
		t.Fatalf("completion notifications = %d, want %d", completions, len(plan.Tasks))
	}

	// The final output exists where 'final' ran.
	fa, _ := cp.Assignment("final")
	if _, ok := g.Grid.Site(fa.Site).Storage().Get("analysis.root"); !ok {
		t.Fatal("final output missing")
	}
}

// TestChaosRecoveryCampaign injects repeated execution-service outages
// while plans run with steering's Backup & Recovery active; every plan
// must still finish.
func TestChaosRecoveryCampaign(t *testing.T) {
	g := New(threeSiteConfig())
	g.Steering.PollInterval = 5 * time.Second
	g.Steering.ServiceFailureGrace = 10 * time.Second
	g.Steering.AutoSteer = false // isolate recovery from optimization

	var plans []*scheduler.ConcretePlan
	for i := 0; i < 6; i++ {
		cp, err := g.SubmitPlan(&scheduler.JobPlan{
			Name: fmt.Sprintf("chaos%d", i), Owner: "alice",
			Tasks: []scheduler.TaskPlan{{
				ID: "work", CPUSeconds: float64(100 + 20*i),
				Queue: "short", Partition: "gae", Nodes: 1, JobType: "batch",
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, cp)
	}

	// Rolling outages: each site fails for 30 s in turn.
	for round, site := range []string{"siteA", "siteB", "siteA"} {
		g.Run(20 * time.Second)
		pool, _ := g.Pool(site)
		pool.Fail()
		g.Run(30 * time.Second)
		pool.Recover()
		_ = round
	}

	deadline := 2 * time.Hour
	if err := g.Grid.Engine.RunUntil(func() bool {
		for _, cp := range plans {
			if done, _ := cp.Done(); !done {
				return false
			}
		}
		return true
	}, deadline); err != nil {
		for i, cp := range plans {
			a, _ := cp.Assignment("work")
			t.Logf("plan %d: %+v", i, a)
		}
		t.Fatal(err)
	}
	for i, cp := range plans {
		if _, ok := cp.Done(); !ok {
			a, _ := cp.Assignment("work")
			t.Fatalf("plan %d did not succeed: %+v", i, a)
		}
	}
}

// TestManyUsersQuotaIsolation runs plans from several users and checks
// quota ledgers stay per-user consistent.
func TestManyUsersQuotaIsolation(t *testing.T) {
	cfg := threeSiteConfig()
	cfg.Users = nil
	for i := 0; i < 4; i++ {
		cfg.Users = append(cfg.Users, UserSpec{
			Name: fmt.Sprintf("user%d", i), Password: "pw", Credits: 10000,
		})
	}
	g := New(cfg)
	var cps []*scheduler.ConcretePlan
	for i := 0; i < 4; i++ {
		cp, err := g.SubmitPlan(&scheduler.JobPlan{
			Name: fmt.Sprintf("u%dplan", i), Owner: fmt.Sprintf("user%d", i),
			Tasks: []scheduler.TaskPlan{{
				ID: "t", CPUSeconds: 50,
				Queue: "short", Partition: "gae", Nodes: 1, JobType: "batch",
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		cps = append(cps, cp)
	}
	if err := g.Grid.Engine.RunUntil(func() bool {
		for _, cp := range cps {
			if d, _ := cp.Done(); !d {
				return false
			}
		}
		return true
	}, time.Hour); err != nil {
		t.Fatal(err)
	}
	// Charge each user for their own job; balances must change
	// independently.
	for i, cp := range cps {
		user := fmt.Sprintf("user%d", i)
		a, _ := cp.Assignment("t")
		pool, _ := g.Pool(a.Site)
		info, err := pool.Job(a.CondorID)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Quota.Charge(user, a.Site, info.CPUSeconds, 0, g.Now(), "t"); err != nil {
			t.Fatal(err)
		}
		bal, _ := g.Quota.Balance(user)
		if bal >= 10000 {
			t.Fatalf("%s not charged (balance %v)", user, bal)
		}
		ledger := g.Quota.Ledger(user)
		if len(ledger) != 1 {
			t.Fatalf("%s ledger = %d entries", user, len(ledger))
		}
	}
	// Steering watch lists are per-owner.
	for i := 0; i < 4; i++ {
		user := fmt.Sprintf("user%d", i)
		if got := len(g.Steering.Watched(user)); got != 1 {
			t.Fatalf("%s watched = %d", user, got)
		}
	}
}
