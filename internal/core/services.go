package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/estimator"
	"repro/internal/scheduler"
	"repro/pkg/gae"
)

// This file binds the wired deployment to the typed service contracts of
// pkg/gae. One implementation per paper service; the same bindings serve
// both transports: registerServices hosts them on the Clarens endpoint
// through the generic handler adapter, and GAE.Client hands them to a
// zero-serialization local client.

// Client returns a local-transport gae.Client acting as user: every call
// goes straight into the in-process services, no serialization involved.
func (g *GAE) Client(user string) *gae.Client {
	return gae.NewClient(g.services(func(context.Context) string { return user }))
}

// services assembles the typed contract implementations with the given
// user resolution, wrapped so that every mutating call is journaled to
// the attached durable store (a no-op while no store is attached).
func (g *GAE) services(userOf gae.UserResolver) gae.Services {
	return g.journaled(g.rawServices(userOf), userOf)
}

// rawServices assembles the unjournaled contract implementations —
// the layer journal replay drives, so replayed operations are not
// re-recorded.
func (g *GAE) rawServices(userOf gae.UserResolver) gae.Services {
	return gae.Services{
		Scheduler: schedulerAPI{g: g, userOf: userOf},
		Steering:  g.Steering.API(userOf),
		JobMon:    g.JobMon.API(),
		Estimator: estimatorAPI{g: g},
		Quota:     quotaAPI{g: g, userOf: userOf},
		Replica:   replicaAPI{g: g},
		Monitor:   monitorAPI{g: g},
		State:     stateAPI{g: g, userOf: userOf},
	}
}

// PlanSpecOf converts an abstract job plan to its API representation —
// the inverse of the conversion scheduler.Submit applies, used by typed
// submit clients and tests.
func PlanSpecOf(plan *scheduler.JobPlan) gae.PlanSpec {
	spec := gae.PlanSpec{Name: plan.Name, Tasks: make([]gae.TaskSpec, len(plan.Tasks))}
	for i, t := range plan.Tasks {
		ts := gae.TaskSpec{
			ID:             t.ID,
			CPUSeconds:     t.CPUSeconds,
			Queue:          t.Queue,
			Partition:      t.Partition,
			Nodes:          t.Nodes,
			JobType:        t.JobType,
			ReqHours:       t.ReqHours,
			Priority:       t.Priority,
			DependsOn:      append([]string(nil), t.DependsOn...),
			OutputFile:     t.OutputFile,
			OutputMB:       t.OutputMB,
			Checkpointable: t.Checkpointable,
			Requirements:   t.Requirements,
			FailAfterCPU:   t.FailAfterCPU,
		}
		for _, in := range t.Inputs {
			ts.Inputs = append(ts.Inputs, gae.FileSpec{Name: in.Name, Site: in.Site, SizeMB: in.SizeMB})
		}
		spec.Tasks[i] = ts
	}
	return spec
}

// planFromSpec builds a validated scheduler plan owned by owner.
func planFromSpec(spec gae.PlanSpec, owner string) (*scheduler.JobPlan, error) {
	plan := &scheduler.JobPlan{Name: spec.Name, Owner: owner}
	for _, t := range spec.Tasks {
		tp := scheduler.TaskPlan{
			ID:             t.ID,
			CPUSeconds:     t.CPUSeconds,
			Queue:          t.Queue,
			Partition:      t.Partition,
			Nodes:          t.Nodes,
			JobType:        t.JobType,
			ReqHours:       t.ReqHours,
			Priority:       t.Priority,
			DependsOn:      append([]string(nil), t.DependsOn...),
			OutputFile:     t.OutputFile,
			OutputMB:       t.OutputMB,
			Checkpointable: t.Checkpointable,
			Requirements:   t.Requirements,
			FailAfterCPU:   t.FailAfterCPU,
		}
		for _, in := range t.Inputs {
			tp.Inputs = append(tp.Inputs, scheduler.FileRef{Name: in.Name, Site: in.Site, SizeMB: in.SizeMB})
		}
		plan.Tasks = append(plan.Tasks, tp)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// taskRecord builds an estimator covariate record from a task profile.
func taskRecord(p gae.TaskProfile) estimator.TaskRecord {
	return estimator.TaskRecord{
		Queue:     p.Queue,
		Partition: p.Partition,
		Nodes:     p.Nodes,
		JobType:   p.JobType,
		ReqHours:  p.ReqHours,
	}
}

// schedulerAPI exposes plan submission and tracking. The plan owner is
// always the acting user; clients cannot submit on someone else's
// account.
type schedulerAPI struct {
	g      *GAE
	userOf gae.UserResolver
}

func (s schedulerAPI) Submit(ctx context.Context, spec gae.PlanSpec) (string, error) {
	user := s.userOf(ctx)
	if user == "" {
		return "", gae.ErrNoSession
	}
	plan, err := planFromSpec(spec, user)
	if err != nil {
		return "", err
	}
	if _, err := s.g.SubmitPlan(plan); err != nil {
		return "", err
	}
	return plan.Name, nil
}

func (s schedulerAPI) Plan(_ context.Context, name string) (gae.PlanStatus, error) {
	cp, ok := s.g.Plan(name)
	if !ok {
		return gae.PlanStatus{}, fmt.Errorf("no plan %q", name)
	}
	done, succeeded := cp.Done()
	out := gae.PlanStatus{
		Name:      cp.Plan.Name,
		Owner:     cp.Plan.Owner,
		Done:      done,
		Succeeded: succeeded,
		Tasks:     make([]gae.TaskAssignment, 0, len(cp.Plan.Tasks)),
	}
	for _, a := range cp.Assignments() {
		out.Tasks = append(out.Tasks, gae.TaskAssignment{
			Task:     a.TaskID,
			Site:     a.Site,
			CondorID: a.CondorID,
			State:    a.State.String(),
			Attempts: a.Attempts,
		})
	}
	return out, nil
}

func (s schedulerAPI) Sites(context.Context) ([]string, error) {
	return s.g.Scheduler.Sites(), nil
}

// estimatorAPI exposes the Estimator Service.
type estimatorAPI struct {
	g *GAE
}

func (e estimatorAPI) EstimateRuntime(_ context.Context, site string, task gae.TaskProfile) (gae.RuntimeEstimate, error) {
	svc, ok := e.g.Scheduler.SiteServicesFor(site)
	if !ok {
		return gae.RuntimeEstimate{}, fmt.Errorf("unknown site %q", site)
	}
	est, err := svc.Runtime.Estimate(taskRecord(task))
	if err != nil {
		return gae.RuntimeEstimate{}, err
	}
	return gae.RuntimeEstimate{
		Seconds:   est.Seconds,
		Similar:   est.Similar,
		Statistic: est.Statistic.String(),
	}, nil
}

func (e estimatorAPI) EstimateQueueTime(_ context.Context, site string, condorID int) (gae.QueueEstimate, error) {
	pool, ok := e.g.Pool(site)
	if !ok {
		return gae.QueueEstimate{}, fmt.Errorf("unknown site %q", site)
	}
	qt := &estimator.QueueTimeEstimator{Pool: pool, DB: e.g.Scheduler.EstimateDB()}
	est, err := qt.Estimate(condorID)
	if err != nil {
		return gae.QueueEstimate{}, err
	}
	return gae.QueueEstimate{Seconds: est.Seconds, TasksAhead: est.TasksAhead}, nil
}

func (e estimatorAPI) EstimateTransfer(_ context.Context, src, dst string, sizeMB float64) (gae.TransferEstimate, error) {
	est, err := e.g.Transfer.Estimate(src, dst, sizeMB)
	if err != nil {
		return gae.TransferEstimate{}, err
	}
	return gae.TransferEstimate{
		Seconds:        est.Seconds,
		BandwidthMBps:  est.BandwidthMBps,
		LatencySeconds: est.LatencySeconds,
	}, nil
}

// quotaAPI exposes the Quota and Accounting Service.
type quotaAPI struct {
	g      *GAE
	userOf gae.UserResolver
}

func (q quotaAPI) Balance(ctx context.Context) (float64, error) {
	user := q.userOf(ctx)
	if user == "" {
		return 0, gae.ErrNoSession
	}
	return q.g.Quota.Balance(user)
}

func (q quotaAPI) Cost(_ context.Context, site string, cpuSeconds, mb float64) (float64, error) {
	return q.g.Quota.Cost(site, cpuSeconds, mb)
}

func (q quotaAPI) Cheapest(_ context.Context, sites []string, cpuSeconds, mb float64) (gae.CostQuote, error) {
	site, cost, err := q.g.Quota.CheapestSite(sites, cpuSeconds, mb)
	if err != nil {
		return gae.CostQuote{}, err
	}
	return gae.CostQuote{Site: site, Cost: cost}, nil
}

// admin resolves the acting user and requires administrator standing —
// granting and charging move other users' credits.
func (q quotaAPI) admin(ctx context.Context) error {
	actor := q.userOf(ctx)
	if actor == "" {
		return gae.ErrNoSession
	}
	if !q.g.Steering.Sessions.IsAdmin(actor) {
		return fmt.Errorf("quota: %q is not an administrator", actor)
	}
	return nil
}

func (q quotaAPI) Grant(ctx context.Context, user string, credits float64) error {
	if err := q.admin(ctx); err != nil {
		return err
	}
	if user == "" {
		return fmt.Errorf("quota: grant for empty user")
	}
	q.g.Quota.Grant(user, credits)
	return nil
}

func (q quotaAPI) ChargeUsage(ctx context.Context, req gae.ChargeRequest) (float64, error) {
	if err := q.admin(ctx); err != nil {
		return 0, err
	}
	return q.g.Quota.Charge(req.User, req.Site, req.CPUSeconds, req.MB, q.g.Now(), req.Note)
}

// replicaAPI exposes the replica catalog (the data location service).
type replicaAPI struct {
	g *GAE
}

func (r replicaAPI) Datasets(context.Context) ([]string, error) {
	return r.g.Replicas.Datasets(), nil
}

func (r replicaAPI) Replicas(_ context.Context, dataset string) ([]gae.ReplicaLocation, error) {
	locs := r.g.Replicas.Locations(dataset)
	out := make([]gae.ReplicaLocation, len(locs))
	for i, l := range locs {
		out[i] = gae.ReplicaLocation{Site: l.Site, SizeMB: l.SizeMB}
	}
	return out, nil
}

func (r replicaAPI) RegisterReplica(_ context.Context, dataset, site string, sizeMB float64) error {
	return r.g.Replicas.Register(dataset, site, sizeMB)
}

func (r replicaAPI) BestReplica(_ context.Context, dataset, dstSite string) (gae.ReplicaChoice, error) {
	loc, sec, err := r.g.Replicas.Best(r.g.Transfer, dataset, dstSite)
	if err != nil {
		return gae.ReplicaChoice{}, err
	}
	return gae.ReplicaChoice{Site: loc.Site, SizeMB: loc.SizeMB, TransferSeconds: sec}, nil
}

// monitorAPI exposes the MonALISA repository — the "Grid weather" the
// paper promises users.
type monitorAPI struct {
	g *GAE
}

func (m monitorAPI) Latest(_ context.Context, source, name string) (float64, error) {
	pt, ok := m.g.MonALISA.Latest(source, name)
	if !ok {
		return 0, fmt.Errorf("no metric %s/%s", source, name)
	}
	return pt.Value, nil
}

func (m monitorAPI) Series(_ context.Context, source, name string, sinceSeconds float64) ([]gae.MetricPoint, error) {
	now := m.g.Now()
	from := now.Add(-time.Duration(sinceSeconds * float64(time.Second)))
	pts := m.g.MonALISA.Series(source, name, from, now)
	out := make([]gae.MetricPoint, len(pts))
	for i, pt := range pts {
		out[i] = gae.MetricPoint{Time: pt.Time, Value: pt.Value}
	}
	return out, nil
}

func (m monitorAPI) Metrics(context.Context) ([]string, error) {
	ms := m.g.MonALISA.Metrics()
	out := make([]string, len(ms))
	for i, metric := range ms {
		out[i] = metric.String()
	}
	return out, nil
}

func (m monitorAPI) Events(_ context.Context, source string, sinceSeconds float64) ([]gae.GridEvent, error) {
	from := m.g.Now().Add(-time.Duration(sinceSeconds * float64(time.Second)))
	evs := m.g.MonALISA.Events(from, source)
	out := make([]gae.GridEvent, len(evs))
	for i, e := range evs {
		out[i] = gae.GridEvent{Time: e.Time, Kind: e.Kind, Detail: e.Detail}
	}
	return out, nil
}

func (m monitorAPI) Weather(context.Context) ([]gae.SiteWeather, error) {
	var out []gae.SiteWeather
	for _, site := range m.g.Grid.Sites() {
		out = append(out, gae.SiteWeather{
			Site:    site.Name,
			Load:    m.g.MonALISA.LatestValue(site.Name, "LoadAvg", 0),
			Running: m.g.MonALISA.LatestValue(site.Name, "RunningJobs", 0),
			Free:    m.g.MonALISA.LatestValue(site.Name, "FreeNodes", 0),
		})
	}
	return out, nil
}

// stateAPI exposes the per-user analysis-session state store. Keys are
// private to the acting user.
type stateAPI struct {
	g      *GAE
	userOf gae.UserResolver
}

func (s stateAPI) user(ctx context.Context) (string, error) {
	user := s.userOf(ctx)
	if user == "" {
		return "", gae.ErrNoSession
	}
	return user, nil
}

func (s stateAPI) SetState(ctx context.Context, key, value string) error {
	user, err := s.user(ctx)
	if err != nil {
		return err
	}
	return s.g.State.Set(user, key, value)
}

func (s stateAPI) GetState(ctx context.Context, key string) (string, error) {
	user, err := s.user(ctx)
	if err != nil {
		return "", err
	}
	v, ok := s.g.State.Get(user, key)
	if !ok {
		return "", fmt.Errorf("no state key %q", key)
	}
	return v, nil
}

func (s stateAPI) StateKeys(ctx context.Context) ([]string, error) {
	user, err := s.user(ctx)
	if err != nil {
		return nil, err
	}
	return s.g.State.Keys(user), nil
}

func (s stateAPI) DeleteState(ctx context.Context, key string) (bool, error) {
	user, err := s.user(ctx)
	if err != nil {
		return false, err
	}
	return s.g.State.Delete(user, key), nil
}
