package core

import (
	"testing"
	"time"

	"repro/internal/fairshare"
	"repro/internal/scheduler"
)

// TestFairShareWiring checks that enabling Config.FairShare threads one
// fairness state through all three layers: pools record completion usage
// into it, quota charges fold into it, and the deployment exposes it.
func TestFairShareWiring(t *testing.T) {
	cfg := twoSiteConfig()
	cfg.FairShare = &fairshare.Config{HalfLife: -1} // exact accounting
	cfg.Sites[1].CostPerTransferMB = 0.2            // siteB prices transfers
	g := New(cfg)
	if g.FairShare == nil {
		t.Fatal("FairShare manager not exposed")
	}

	// Execution feeds usage: run a plan to completion.
	cp, err := g.SubmitPlan(&scheduler.JobPlan{
		Name: "p", Owner: "alice",
		Tasks: []scheduler.TaskPlan{{
			ID: "main", CPUSeconds: 30,
			Queue: "short", Partition: "gae", Nodes: 1, JobType: "batch",
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(60 * time.Second)
	if done, ok := cp.Done(); !ok || !done {
		t.Fatalf("plan not done: %v %v", done, ok)
	}
	u := g.FairShare.Usage("alice")
	if u < 29 || u > 31 {
		t.Fatalf("usage after completion = %v, want ≈30", u)
	}
	a, _ := cp.Assignment("main")
	if su := g.FairShare.SiteUsage("alice", a.Site); su < 29 || su > 31 {
		t.Fatalf("site usage at %s = %v", a.Site, su)
	}

	// Accounting feeds usage — but only the transfer component: execution
	// CPU is already recorded by the pools, so a CPU-only charge (the
	// conventional completed-job charge) must not double-count.
	before := g.FairShare.Usage("alice")
	if _, err := g.Quota.Charge("alice", "siteB", 30, 0, g.Now(), "job cpu"); err != nil {
		t.Fatal(err)
	}
	if got := g.FairShare.Usage("alice"); got != before {
		t.Fatalf("CPU-only charge changed usage: %v → %v (double-count)", before, got)
	}
	if _, err := g.Quota.Charge("alice", "siteB", 0, 100, g.Now(), "dataset transfer"); err != nil {
		t.Fatal(err)
	}
	// 100 MB × 0.2 credits/MB = 20 credits = 20 CPU-seconds of standing.
	if got := g.FairShare.Usage("alice"); got < before+19 {
		t.Fatalf("usage after transfer charge = %v, want ≥ %v", got, before+19)
	}

	// Disabled by default: the seed configuration stays untouched.
	plain := New(twoSiteConfig())
	if plain.FairShare != nil {
		t.Fatal("FairShare enabled without opt-in")
	}
}
