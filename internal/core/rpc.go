package core

import (
	"context"

	"repro/internal/estimator"
	"repro/internal/xmlrpc"
)

// estimatorMethods exposes the Estimator Service over XML-RPC:
//
//	estimator.runtime(site, taskStruct)         → struct{seconds, similar, statistic}
//	estimator.queuetime(site, condorID)         → struct{seconds, tasks_ahead}
//	estimator.transfer(srcSite, dstSite, sizeMB) → struct{seconds, bandwidth_mbps}
func (g *GAE) estimatorMethods() map[string]xmlrpc.Handler {
	appErr := func(err error) error {
		return xmlrpc.NewFault(xmlrpc.FaultApplication, "%v", err)
	}
	return map[string]xmlrpc.Handler{
		"runtime": func(_ context.Context, args []any) (any, error) {
			p := xmlrpc.Params(args)
			if err := p.Want(2); err != nil {
				return nil, err
			}
			site, err := p.String(0)
			if err != nil {
				return nil, err
			}
			spec, err := p.Struct(1)
			if err != nil {
				return nil, err
			}
			svc, ok := g.Scheduler.SiteServicesFor(site)
			if !ok {
				return nil, xmlrpc.NewFault(xmlrpc.FaultApplication, "unknown site %q", site)
			}
			rec := taskRecordFromStruct(spec)
			est, err := svc.Runtime.Estimate(rec)
			if err != nil {
				return nil, appErr(err)
			}
			return map[string]any{
				"seconds":   est.Seconds,
				"similar":   est.Similar,
				"statistic": est.Statistic.String(),
			}, nil
		},
		"queuetime": func(_ context.Context, args []any) (any, error) {
			p := xmlrpc.Params(args)
			if err := p.Want(2); err != nil {
				return nil, err
			}
			site, err := p.String(0)
			if err != nil {
				return nil, err
			}
			id, err := p.Int(1)
			if err != nil {
				return nil, err
			}
			pool, ok := g.Pool(site)
			if !ok {
				return nil, xmlrpc.NewFault(xmlrpc.FaultApplication, "unknown site %q", site)
			}
			qt := &estimator.QueueTimeEstimator{Pool: pool, DB: g.Scheduler.EstimateDB()}
			est, err := qt.Estimate(id)
			if err != nil {
				return nil, appErr(err)
			}
			return map[string]any{
				"seconds":     est.Seconds,
				"tasks_ahead": est.TasksAhead,
			}, nil
		},
		"transfer": func(_ context.Context, args []any) (any, error) {
			p := xmlrpc.Params(args)
			if err := p.Want(3); err != nil {
				return nil, err
			}
			src, err := p.String(0)
			if err != nil {
				return nil, err
			}
			dst, err := p.String(1)
			if err != nil {
				return nil, err
			}
			size, err := p.Float(2)
			if err != nil {
				return nil, err
			}
			est, err := g.Transfer.Estimate(src, dst, size)
			if err != nil {
				return nil, appErr(err)
			}
			return map[string]any{
				"seconds":        est.Seconds,
				"bandwidth_mbps": est.BandwidthMBps,
			}, nil
		},
	}
}

// taskRecordFromStruct builds an estimator covariate record from an
// XML-RPC struct with optional keys queue, partition, nodes, job_type,
// req_cpu_hours.
func taskRecordFromStruct(m map[string]any) estimator.TaskRecord {
	rec := estimator.TaskRecord{}
	if s, ok := m["queue"].(string); ok {
		rec.Queue = s
	}
	if s, ok := m["partition"].(string); ok {
		rec.Partition = s
	}
	if n, ok := m["nodes"].(int); ok {
		rec.Nodes = n
	}
	if s, ok := m["job_type"].(string); ok {
		rec.JobType = s
	}
	switch v := m["req_cpu_hours"].(type) {
	case float64:
		rec.ReqHours = v
	case int:
		rec.ReqHours = float64(v)
	}
	return rec
}

// quotaMethods exposes the Quota and Accounting Service:
//
//	quota.balance()                      → double (caller's credits)
//	quota.cost(site, cpuSeconds, mb)     → double
//	quota.cheapest(sites, cpuSeconds, mb) → struct{site, cost}
func (g *GAE) quotaMethods() map[string]xmlrpc.Handler {
	appErr := func(err error) error {
		return xmlrpc.NewFault(xmlrpc.FaultApplication, "%v", err)
	}
	return map[string]xmlrpc.Handler{
		"balance": func(ctx context.Context, _ []any) (any, error) {
			user := g.userOf(ctx)
			if user == "" {
				return nil, xmlrpc.NewFault(xmlrpc.FaultAuth, "no session")
			}
			b, err := g.Quota.Balance(user)
			if err != nil {
				return nil, appErr(err)
			}
			return b, nil
		},
		"cost": func(_ context.Context, args []any) (any, error) {
			p := xmlrpc.Params(args)
			if err := p.Want(3); err != nil {
				return nil, err
			}
			site, err := p.String(0)
			if err != nil {
				return nil, err
			}
			cpu, err := p.Float(1)
			if err != nil {
				return nil, err
			}
			mb, err := p.Float(2)
			if err != nil {
				return nil, err
			}
			c, err := g.Quota.Cost(site, cpu, mb)
			if err != nil {
				return nil, appErr(err)
			}
			return c, nil
		},
		"cheapest": func(_ context.Context, args []any) (any, error) {
			p := xmlrpc.Params(args)
			if err := p.Want(3); err != nil {
				return nil, err
			}
			sites, err := p.StringsArray(0)
			if err != nil {
				return nil, err
			}
			cpu, err := p.Float(1)
			if err != nil {
				return nil, err
			}
			mb, err := p.Float(2)
			if err != nil {
				return nil, err
			}
			site, cost, err := g.Quota.CheapestSite(sites, cpu, mb)
			if err != nil {
				return nil, appErr(err)
			}
			return map[string]any{"site": site, "cost": cost}, nil
		},
	}
}
