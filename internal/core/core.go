// Package core assembles the complete Grid Analysis Environment: the
// simulated grid, one Condor-like execution service per site, the
// MonALISA repository and farm monitors, the Sphinx-like scheduler, and
// the paper's three resource management services (steering, job
// monitoring, estimators) hosted together on a Clarens web-service host.
//
// This is the public façade of the reproduction: commands, examples and
// experiments build a GAE from a Config and interact with it either
// in-process (the Go API) or over XML-RPC (the Clarens endpoint), exactly
// as Figure 1 of the paper draws the deployment.
package core

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/clarens"
	"repro/internal/condor"
	"repro/internal/durable"
	"repro/internal/estimator"
	"repro/internal/fairshare"
	"repro/internal/jobmon"
	"repro/internal/monalisa"
	"repro/internal/quota"
	"repro/internal/replica"
	"repro/internal/scheduler"
	"repro/internal/simgrid"
	"repro/internal/steering"
	"repro/internal/telemetry"
	"repro/pkg/gae"
)

// SiteSpec describes one computing site of the deployment.
type SiteSpec struct {
	Name  string
	Nodes int
	// Mips scales node speed (default 1.0).
	Mips float64
	// Load is the background CPU load (default idle).
	Load simgrid.Load
	// CostPerCPUSecond configures the Quota & Accounting rate.
	CostPerCPUSecond float64
	// CostPerTransferMB prices data movement at this site. Besides
	// billing, it is what lets transfer charges reach the fair-share
	// state when Config.FairShare is enabled.
	CostPerTransferMB float64
}

// LinkSpec describes a network link between two sites.
type LinkSpec struct {
	A, B      string
	MBps      float64
	LatencyMS int
}

// UserSpec declares a Clarens user.
type UserSpec struct {
	Name     string
	Password string
	Roles    []string
	// Credits is the initial quota grant.
	Credits float64
	// Admin lets the user steer anyone's jobs.
	Admin bool
}

// Config describes a GAE deployment.
type Config struct {
	Tick time.Duration // simulation step (default 1s)
	Seed int64

	Sites []SiteSpec
	Links []LinkSpec
	Users []UserSpec

	// MonitorInterval is the MonALISA farm sampling period (default 5s).
	MonitorInterval time.Duration
	// HostName names the Clarens host (default "gae").
	HostName string

	// LeaseTTL bounds how long a durable snapshot may re-bind a running
	// job to its claimed machine on recovery (default DefaultLeaseTTL).
	// A snapshot older than this — in simulated time — recovers with its
	// claims expired and the affected jobs requeued.
	LeaseTTL time.Duration

	// IdemWindow bounds the per-user duplicate-suppression window for
	// idempotency-keyed RPCs (default DefaultIdemPerUser). The window is
	// part of the durable state: snapshots carry it and journal replay
	// rebuilds it, so retried duplicates dedup across restarts.
	IdemWindow int

	// IdemTTL additionally bounds the window by age in simulated time:
	// when a new mutation is acknowledged, entries acknowledged more than
	// IdemTTL before it are evicted even if the count budget has room. A
	// hot multi-session user can wrap a count-only window in seconds;
	// the TTL keeps the guarantee time-shaped ("retries within IdemTTL
	// dedup") instead of load-shaped. Zero disables age eviction.
	IdemTTL time.Duration

	// FairShare, when non-nil, enables time-aware fair-share arbitration:
	// every pool orders idle jobs by effective priority, the scheduler
	// breaks site-selection ties by fair-share standing, and the transfer
	// component of quota charges folds into the shared usage state
	// (execution CPU is accounted by the pools themselves). The Clock
	// field may be left nil — the grid engine's simulated clock is used.
	FairShare *fairshare.Config
}

// GAE is a fully wired Grid Analysis Environment.
type GAE struct {
	Grid      *simgrid.Grid
	MonALISA  *monalisa.Repository
	Scheduler *scheduler.Scheduler
	JobMon    *jobmon.Service
	Steering  *steering.Service
	Quota     *quota.Service
	FairShare *fairshare.Manager // nil unless Config.FairShare was set
	Clarens   *clarens.Server
	Transfer  *estimator.TransferEstimator
	Replicas  *replica.Catalog
	State     *clarens.StateStore

	// Telemetry is the deployment's metrics registry: every serving
	// layer (journaled RPCs, the durable store, pools, the scheduler)
	// records into it, and the Clarens host serves it at /metrics.
	Telemetry *telemetry.Registry

	pools map[string]*condor.Pool

	obs   *rpcObserver         // per-method RPC handles over Telemetry
	trace *telemetry.TraceRing // recent RPC spans, served at /debug/rpcs

	planMu sync.Mutex
	plans  map[string]*scheduler.ConcretePlan

	// persistMu is the durability barrier: journaled RPCs hold it shared
	// across apply+append, Checkpoint holds it exclusively across
	// capture+snapshot, so no acknowledged mutation can straddle a
	// checkpoint (applied before the capture but journaled after it —
	// which replay would then apply twice).
	persistMu sync.RWMutex
	store     *durable.Store
	leaseTTL  time.Duration
	idem      *idemWindow

	// durabilityLost fires (once) when a journal append fails after its
	// mutation already applied in memory. From that moment the live
	// state is ahead of the durable state in a way no retry can repair:
	// a continued process would re-apply on the client's retry (the op
	// was never recorded in the idempotency window) and the next
	// checkpoint would persist both applications. The hook's job is to
	// crash the process so recovery replays the journal — which rolls
	// the un-journaled mutation back and keeps exactly-once intact.
	durabilityLossOnce sync.Once
	onDurabilityLoss   func(error)
}

// New builds a deployment from cfg. It panics on structural errors
// (duplicate sites, links to unknown sites) since a Config is
// programmer-authored.
func New(cfg Config) *GAE {
	if len(cfg.Sites) == 0 {
		panic("core: Config needs at least one site")
	}
	tick := cfg.Tick
	if tick <= 0 {
		tick = time.Second
	}
	grid := simgrid.NewGrid(tick, cfg.Seed)
	repo := monalisa.NewRepository()
	q := quota.NewService()
	reg := telemetry.NewRegistry()
	g := &GAE{
		Grid:      grid,
		MonALISA:  repo,
		Quota:     q,
		Telemetry: reg,
		pools:     make(map[string]*condor.Pool),
		plans:     make(map[string]*scheduler.ConcretePlan),
		leaseTTL:  cfg.LeaseTTL,
		idem:      newIdemWindow(cfg.IdemWindow, cfg.IdemTTL),
		obs:       newRPCObserver(reg),
		trace:     telemetry.NewTraceRing(0),
	}
	g.idem.setTelemetry(reg)

	// Sites, nodes, pools.
	for _, spec := range cfg.Sites {
		site := grid.AddSite(spec.Name)
		pool := condor.NewPool(spec.Name, grid, site)
		pool.SetTelemetry(reg)
		mips := spec.Mips
		if mips <= 0 {
			mips = 1
		}
		nodes := spec.Nodes
		if nodes <= 0 {
			nodes = 1
		}
		for i := 0; i < nodes; i++ {
			n := site.AddNode(grid.Engine, fmt.Sprintf("%s-n%d", spec.Name, i), mips, spec.Load)
			pool.AddMachine(n, nil)
		}
		g.pools[spec.Name] = pool
		q.SetRate(spec.Name, quota.Rate{
			CPUSecond:  spec.CostPerCPUSecond,
			TransferMB: spec.CostPerTransferMB,
		})
	}

	// Network.
	for _, l := range cfg.Links {
		grid.Network.Connect(l.A, l.B, simgrid.Link{
			BandwidthMBps: l.MBps,
			Latency:       time.Duration(l.LatencyMS) * time.Millisecond,
		})
	}

	// Monitoring.
	interval := cfg.MonitorInterval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	monalisa.NewFarmMonitor(repo, grid, interval)
	g.Transfer = &estimator.TransferEstimator{Network: grid.Network}
	g.Replicas = replica.NewCatalog()

	// Fair-share arbitration: one manager shared by every pool, the
	// scheduler, and the quota ledger, so accounting, execution, and
	// planning all see one fairness state.
	if cfg.FairShare != nil {
		fscfg := *cfg.FairShare
		if fscfg.Clock == nil {
			fscfg.Clock = grid.Engine.Clock()
		}
		g.FairShare = fairshare.NewManager(fscfg)
		for _, pool := range g.pools {
			pool.SetFairShare(g.FairShare)
		}
		q.Subscribe(func(c quota.Charge) {
			// The pools already record execution CPU at terminal state, and
			// deployments conventionally Charge for that same CPU — folding
			// c.CPUSeconds in here would double-count it. Only the transfer
			// component of the charge adds standing, converted to
			// CPU-second equivalents at the site's own rates.
			// When the fairness config sets an explicit MB→CPU-second
			// exchange rate, data movement accrues standing in physical
			// units. Otherwise one billed transfer credit counts as one
			// CPU-second: a site-rate-based conversion would blow up as a
			// site's CPU price approaches zero and would re-read rates
			// that may have changed since billing, while the flat exchange
			// is bounded, continuous, and derived purely from the ledger
			// entry.
			if per := g.FairShare.TransferUsagePerMB(); per > 0 {
				if c.MB > 0 {
					g.FairShare.RecordUsage(c.User, c.Site, c.MB*per)
				}
				return
			}
			if c.TransferCredits > 0 {
				g.FairShare.RecordUsage(c.User, c.Site, c.TransferCredits)
			}
		})
	}

	// Scheduler with per-site decentralized estimator histories. A nil
	// FairShare manager is normalized away by scheduler.New.
	g.Scheduler = scheduler.New(scheduler.Config{
		Grid:      grid,
		Monitor:   repo,
		Quota:     q,
		Transfer:  g.Transfer,
		Replicas:  g.Replicas,
		FairShare: g.FairShare,
		Telemetry: reg,
	})
	for name, pool := range g.pools {
		g.Scheduler.RegisterSite(name, &scheduler.SiteServices{
			Pool:    pool,
			Runtime: estimator.NewRuntimeEstimator(estimator.NewHistory(0)),
		})
	}

	// Job monitoring.
	g.JobMon = jobmon.NewService(grid, repo)
	for _, pool := range g.pools {
		g.JobMon.Watch(pool)
	}

	// Steering.
	g.Steering = steering.New(steering.Config{
		Grid:      grid,
		Scheduler: g.Scheduler,
		Monitor:   g.JobMon,
		MonaLisa:  repo,
		Quota:     q,
	})

	// Clarens host with every service registered.
	hostName := cfg.HostName
	if hostName == "" {
		hostName = "gae"
	}
	g.Clarens = clarens.NewServer(hostName, grid.Engine.Clock())
	g.State = clarens.NewStateStore()
	for _, u := range cfg.Users {
		if err := g.Clarens.Users.Add(u.Name, u.Password, u.Roles...); err != nil {
			panic(err)
		}
		if u.Credits > 0 {
			q.Grant(u.Name, u.Credits)
		}
		if u.Admin {
			g.Steering.Sessions.GrantAdmin(u.Name)
		}
	}
	g.registerServices()
	return g
}

// userOf resolves a request context to the Clarens session user.
func (g *GAE) userOf(ctx context.Context) string {
	sess, ok := g.Clarens.Sessions.Lookup(clarens.SessionToken(ctx))
	if !ok {
		return ""
	}
	return sess.User.Name
}

// registerServices hosts the GAE services on the Clarens server and
// installs the paper's access policy: monitoring and estimates are
// readable by any authenticated user; steering requires authentication
// (per-job ownership is enforced by the Session Manager). The services
// are the same typed gae contract implementations local clients use,
// bound to the wire by the generic handler adapter.
func (g *GAE) registerServices() {
	srv := g.Clarens
	svcs := g.services(g.userOf)
	srv.RegisterService("jobmon", "Job Monitoring Service (JMExecutable)", gae.JobMonHandlers(svcs.JobMon))
	srv.RegisterService("steering", "Steering Service", gae.SteeringHandlers(svcs.Steering))
	srv.RegisterService("estimator", "Estimator Service (runtime, queue time, transfer time)", gae.EstimatorHandlers(svcs.Estimator))
	srv.RegisterService("quota", "Quota and Accounting Service", gae.QuotaHandlers(svcs.Quota))
	srv.RegisterService("scheduler", "Sphinx-like scheduling middleware", gae.SchedulerHandlers(svcs.Scheduler))
	srv.RegisterService("replica", "Replica catalog (data location service)", gae.ReplicaHandlers(svcs.Replica))
	srv.RegisterService("monitor", "MonALISA repository (Grid weather)", gae.MonitorHandlers(svcs.Monitor))
	srv.RegisterService("state", "Analysis-session state store", gae.StateHandlers(svcs.State))
	srv.ACL.Allow("authenticated", "jobmon.*")
	srv.ACL.Allow("authenticated", "steering.*")
	srv.ACL.Allow("authenticated", "estimator.*")
	srv.ACL.Allow("authenticated", "quota.*")
	srv.ACL.Allow("authenticated", "scheduler.*")
	srv.ACL.Allow("authenticated", "replica.*")
	srv.ACL.Allow("authenticated", "monitor.*")
	srv.ACL.Allow("authenticated", "state.*")

	// Observability endpoints, served as plain HTTP GET beside the
	// XML-RPC dispatcher. They bypass the session/drain intercept on
	// purpose: a draining host must still answer /healthz (that is how a
	// balancer learns to stop routing) and /metrics (that is how the
	// drain is watched).
	srv.HandleHTTP("/metrics", telemetry.Handler(g.Telemetry))
	srv.HandleHTTP("/debug/rpcs", telemetry.TraceHandler(g.trace))
	srv.HandleHTTP("/healthz", http.HandlerFunc(g.healthz))
}

// Trace exposes the deployment's RPC trace ring (what /debug/rpcs
// serves).
func (g *GAE) Trace() *telemetry.TraceRing { return g.trace }

// PutDataset stores a dataset at a site's storage element and registers
// it in the replica catalog, making it stageable by name from any task.
func (g *GAE) PutDataset(site, name string, sizeMB float64) error {
	s := g.Grid.Site(site)
	if s == nil {
		return fmt.Errorf("core: unknown site %q", site)
	}
	if err := s.Storage().Put(name, sizeMB); err != nil {
		return err
	}
	return g.Replicas.Register(name, site, sizeMB)
}

// Pool returns a site's execution service.
func (g *GAE) Pool(site string) (*condor.Pool, bool) {
	p, ok := g.pools[site]
	return p, ok
}

// Sites returns the deployment's site names, sorted.
func (g *GAE) Sites() []string { return g.Grid.SiteNames() }

// Start serves the Clarens host on addr (":0" for an ephemeral port) and
// returns its base URL.
func (g *GAE) Start(addr string) (string, error) { return g.Clarens.Start(addr) }

// Stop shuts the Clarens host down.
func (g *GAE) Stop() error { return g.Clarens.Stop() }

// Handler exposes the Clarens host for in-process HTTP testing.
func (g *GAE) Handler() http.Handler { return g.Clarens }

// SubmitPlan validates and schedules an abstract job plan, registering
// the concrete plan under the plan's name for later lookup (including by
// the scheduler's XML-RPC facade).
func (g *GAE) SubmitPlan(plan *scheduler.JobPlan) (*scheduler.ConcretePlan, error) {
	g.planMu.Lock()
	if _, dup := g.plans[plan.Name]; dup {
		g.planMu.Unlock()
		return nil, fmt.Errorf("core: plan %q already submitted", plan.Name)
	}
	g.planMu.Unlock()
	cp, err := g.Scheduler.Submit(plan)
	if err != nil {
		return nil, err
	}
	g.planMu.Lock()
	g.plans[plan.Name] = cp
	g.planMu.Unlock()
	return cp, nil
}

// Plan returns a previously submitted plan by name.
func (g *GAE) Plan(name string) (*scheduler.ConcretePlan, bool) {
	g.planMu.Lock()
	defer g.planMu.Unlock()
	cp, ok := g.plans[name]
	return cp, ok
}

// RunUntilDone advances simulated time until the plan reaches a terminal
// state or max simulated time passes.
func (g *GAE) RunUntilDone(cp *scheduler.ConcretePlan, max time.Duration) error {
	return g.Grid.Engine.RunUntil(func() bool { d, _ := cp.Done(); return d }, max)
}

// Run advances simulated time by d.
func (g *GAE) Run(d time.Duration) { g.Grid.Engine.RunFor(d) }

// Now returns the current simulated time.
func (g *GAE) Now() time.Time { return g.Grid.Engine.Now() }
