package core

import (
	"encoding/json"
	"sort"
	"sync"

	"repro/internal/durable"
)

// DefaultIdemPerUser bounds each user's idempotency window when
// Config.IdemWindow is unset: the request IDs of their most recent
// acknowledged mutations, with the acknowledged results. A retry that
// falls outside the window is applied as a fresh call — the window only
// needs to outlive a client's retry horizon, not history.
const DefaultIdemPerUser = 128

// idemItem is one acknowledged mutation in the window. seq orders
// eviction deterministically: it is the op's journal sequence number, so
// a live window and one rebuilt by snapshot restore + journal replay
// evict identically (the byte-identity suite depends on that).
type idemItem struct {
	seq   uint64
	entry durable.IdemEntry
}

// idemUserWin is one user's window: ID lookup plus ascending-seq order.
type idemUserWin struct {
	byID map[string]*idemItem
	list []*idemItem
}

// idemWindow is the deployment-wide duplicate-suppression state. It has
// its own lock (callers already serialize against checkpoints through
// persistMu) and is exported into every snapshot, so duplicate
// suppression survives a restart that falls between a call's first
// delivery and its retry.
type idemWindow struct {
	mu    sync.Mutex
	limit int
	users map[string]*idemUserWin
	// fallbackSeq orders entries recorded with no journal sequence (a
	// storeless deployment). Restored entries are renumbered from 1, which
	// stays below any journal sequence a later attach could assign.
	fallbackSeq uint64
}

func newIdemWindow(limit int) *idemWindow {
	if limit <= 0 {
		limit = DefaultIdemPerUser
	}
	return &idemWindow{limit: limit, users: make(map[string]*idemUserWin)}
}

// lookup returns the recorded entry for (user, id), if any.
func (w *idemWindow) lookup(user, id string) (durable.IdemEntry, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	u, ok := w.users[user]
	if !ok {
		return durable.IdemEntry{}, false
	}
	it, ok := u.byID[id]
	if !ok {
		return durable.IdemEntry{}, false
	}
	return it.entry, true
}

// record stores one acknowledged mutation. seq is the op's journal
// sequence (0 when storeless; a private counter substitutes). The first
// acknowledgment wins: a duplicate record for an ID already present is
// ignored, so replay after a dedup hit cannot clobber the original.
func (w *idemWindow) record(user, id, method string, result json.RawMessage, seq uint64) {
	if user == "" || id == "" {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq == 0 {
		w.fallbackSeq++
		seq = w.fallbackSeq
	} else if seq > w.fallbackSeq {
		w.fallbackSeq = seq
	}
	u, ok := w.users[user]
	if !ok {
		u = &idemUserWin{byID: make(map[string]*idemItem)}
		w.users[user] = u
	}
	if _, dup := u.byID[id]; dup {
		return
	}
	it := &idemItem{seq: seq, entry: durable.IdemEntry{ID: id, Method: method, Result: result}}
	u.byID[id] = it
	// Sequences almost always arrive ascending; insert from the tail.
	pos := len(u.list)
	for pos > 0 && u.list[pos-1].seq > seq {
		pos--
	}
	u.list = append(u.list, nil)
	copy(u.list[pos+1:], u.list[pos:])
	u.list[pos] = it
	for len(u.list) > w.limit {
		evicted := u.list[0]
		u.list = u.list[1:]
		delete(u.byID, evicted.entry.ID)
	}
}

// export renders the window in canonical form: users sorted by name,
// entries in acknowledgment (eviction) order.
func (w *idemWindow) export() []durable.IdemUser {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.users) == 0 {
		return nil
	}
	names := make([]string, 0, len(w.users))
	for name := range w.users {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]durable.IdemUser, 0, len(names))
	for _, name := range names {
		u := w.users[name]
		entries := make([]durable.IdemEntry, len(u.list))
		for i, it := range u.list {
			entries[i] = it.entry
		}
		out = append(out, durable.IdemUser{User: name, Entries: entries})
	}
	return out
}

// restore rebuilds the window from a snapshot export, renumbering
// entries from 1 in their recorded order. Journal replay then layers its
// ops on top with their (strictly larger) sequence numbers.
func (w *idemWindow) restore(users []durable.IdemUser) {
	w.mu.Lock()
	w.users = make(map[string]*idemUserWin)
	w.fallbackSeq = 0
	w.mu.Unlock()
	for _, u := range users {
		for _, e := range u.Entries {
			w.record(u.User, e.ID, e.Method, e.Result, 0)
		}
	}
}
