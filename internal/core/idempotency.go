package core

import (
	"encoding/json"
	"sort"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/telemetry"
)

// DefaultIdemPerUser bounds each user's idempotency window when
// Config.IdemWindow is unset: the request IDs of their most recent
// acknowledged mutations, with the acknowledged results. A retry that
// falls outside the window is applied as a fresh call — the window only
// needs to outlive a client's retry horizon, not history.
const DefaultIdemPerUser = 128

// idemItem is one acknowledged mutation in the window. seq orders
// eviction deterministically: it is the op's journal sequence number, so
// a live window and one rebuilt by snapshot restore + journal replay
// evict identically (the byte-identity suite depends on that).
type idemItem struct {
	seq   uint64
	entry durable.IdemEntry
}

// idemUserWin is one user's window: ID lookup plus ascending-seq order.
type idemUserWin struct {
	byID map[string]*idemItem
	list []*idemItem
}

// idemWindow is the deployment-wide duplicate-suppression state. It has
// its own lock (callers already serialize against checkpoints through
// persistMu) and is exported into every snapshot, so duplicate
// suppression survives a restart that falls between a call's first
// delivery and its retry.
//
// The window is bounded two ways: by count (limit, per user) and — when
// ttl > 0 — by age in simulated time. Age pruning happens only when a
// new entry is recorded, against the new entry's own timestamp: both
// the live path and journal replay record at the op's journaled sim
// time, so the two evict identically and the byte-identity suite keeps
// holding. Lookups never prune (a lookup has no deterministic clock).
type idemWindow struct {
	mu    sync.Mutex
	limit int
	ttl   time.Duration
	users map[string]*idemUserWin
	// fallbackSeq orders entries recorded with no journal sequence (a
	// storeless deployment). Restored entries are renumbered from 1, which
	// stays below any journal sequence a later attach could assign.
	fallbackSeq uint64

	// Telemetry handles (nil when unobserved; nil instruments no-op).
	obsHits     *telemetry.Counter
	obsEvictCap *telemetry.Counter
	obsEvictAge *telemetry.Counter
}

func newIdemWindow(limit int, ttl time.Duration) *idemWindow {
	if limit <= 0 {
		limit = DefaultIdemPerUser
	}
	if ttl < 0 {
		ttl = 0
	}
	return &idemWindow{limit: limit, ttl: ttl, users: make(map[string]*idemUserWin)}
}

// setTelemetry registers the window's counters in reg: dedup hits and
// evictions split by cause (capacity vs age).
func (w *idemWindow) setTelemetry(reg *telemetry.Registry) {
	w.obsHits = reg.Counter("idem_hits_total")
	w.obsEvictCap = reg.LabeledCounter("idem_evictions_total", "cause", "capacity")
	w.obsEvictAge = reg.LabeledCounter("idem_evictions_total", "cause", "age")
}

// lookup returns the recorded entry for (user, id), if any.
func (w *idemWindow) lookup(user, id string) (durable.IdemEntry, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	u, ok := w.users[user]
	if !ok {
		return durable.IdemEntry{}, false
	}
	it, ok := u.byID[id]
	if !ok {
		return durable.IdemEntry{}, false
	}
	w.obsHits.Inc()
	return it.entry, true
}

// record stores one acknowledged mutation. seq is the op's journal
// sequence (0 when storeless; a private counter substitutes); at is the
// op's simulated acknowledgment time (the journal record's timestamp).
// The first acknowledgment wins: a duplicate record for an ID already
// present is ignored, so replay after a dedup hit cannot clobber the
// original.
func (w *idemWindow) record(user, id, method string, result json.RawMessage, seq uint64, at time.Time) {
	if user == "" || id == "" {
		return
	}
	if !at.IsZero() {
		at = at.UTC()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq == 0 {
		w.fallbackSeq++
		seq = w.fallbackSeq
	} else if seq > w.fallbackSeq {
		w.fallbackSeq = seq
	}
	u, ok := w.users[user]
	if !ok {
		u = &idemUserWin{byID: make(map[string]*idemItem)}
		w.users[user] = u
	}
	if _, dup := u.byID[id]; dup {
		return
	}
	it := &idemItem{seq: seq, entry: durable.IdemEntry{ID: id, Method: method, At: at, Result: result}}
	u.byID[id] = it
	// Sequences almost always arrive ascending; insert from the tail.
	pos := len(u.list)
	for pos > 0 && u.list[pos-1].seq > seq {
		pos--
	}
	u.list = append(u.list, nil)
	copy(u.list[pos+1:], u.list[pos:])
	u.list[pos] = it
	// Age eviction first: entries whose acknowledgment is more than ttl
	// of simulated time behind this record's are past any client's retry
	// horizon. The list is seq-ordered and op times are monotone with
	// seq, so expired entries form a prefix. Entries with a zero At
	// (pre-TTL snapshots, storeless deployments without a recorded time)
	// are exempt.
	if w.ttl > 0 && !at.IsZero() {
		for len(u.list) > 0 {
			head := u.list[0]
			if head.entry.At.IsZero() || at.Sub(head.entry.At) <= w.ttl {
				break
			}
			u.list = u.list[1:]
			delete(u.byID, head.entry.ID)
			w.obsEvictAge.Inc()
		}
	}
	for len(u.list) > w.limit {
		evicted := u.list[0]
		u.list = u.list[1:]
		delete(u.byID, evicted.entry.ID)
		w.obsEvictCap.Inc()
	}
}

// export renders the window in canonical form: users sorted by name,
// entries in acknowledgment (eviction) order.
func (w *idemWindow) export() []durable.IdemUser {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.users) == 0 {
		return nil
	}
	names := make([]string, 0, len(w.users))
	for name := range w.users {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]durable.IdemUser, 0, len(names))
	for _, name := range names {
		u := w.users[name]
		entries := make([]durable.IdemEntry, len(u.list))
		for i, it := range u.list {
			entries[i] = it.entry
		}
		out = append(out, durable.IdemUser{User: name, Entries: entries})
	}
	return out
}

// restore rebuilds the window from a snapshot export, renumbering
// entries from 1 in their recorded order. Journal replay then layers its
// ops on top with their (strictly larger) sequence numbers. Restore
// re-records through the normal path — including TTL pruning against
// each entry's own snapshotted timestamp — so a window restored under a
// tighter ttl converges to what a live window would hold.
func (w *idemWindow) restore(users []durable.IdemUser) {
	w.mu.Lock()
	w.users = make(map[string]*idemUserWin)
	w.fallbackSeq = 0
	w.mu.Unlock()
	for _, u := range users {
		for _, e := range u.Entries {
			w.record(u.User, e.ID, e.Method, e.Result, 0, e.At)
		}
	}
}
