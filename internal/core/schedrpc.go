package core

import (
	"context"

	"repro/internal/scheduler"
	"repro/internal/xmlrpc"
)

// schedulerMethods exposes plan submission and tracking over XML-RPC, so
// command-line clients (gae-submit) can drive the scheduler remotely:
//
//	scheduler.submit(planStruct)  → plan name
//	scheduler.plan(name)          → struct{name, owner, done, succeeded, tasks[]}
//	scheduler.sites()             → array of site names
//
// A plan struct is {"name": ..., "tasks": [taskStruct...]}; a task struct
// has id, cpu_seconds, and optionally queue, partition, nodes, job_type,
// req_cpu_hours, priority, depends_on (array), output_file, output_mb,
// checkpointable, requirements. The plan owner is always the session
// user; clients cannot submit on someone else's account.
func (g *GAE) schedulerMethods() map[string]xmlrpc.Handler {
	appErr := func(err error) error {
		return xmlrpc.NewFault(xmlrpc.FaultApplication, "%v", err)
	}
	return map[string]xmlrpc.Handler{
		"submit": func(ctx context.Context, args []any) (any, error) {
			user := g.userOf(ctx)
			if user == "" {
				return nil, xmlrpc.NewFault(xmlrpc.FaultAuth, "no session")
			}
			p := xmlrpc.Params(args)
			spec, err := p.Struct(0)
			if err != nil {
				return nil, err
			}
			plan, err := planFromStruct(spec, user)
			if err != nil {
				return nil, appErr(err)
			}
			if _, err := g.SubmitPlan(plan); err != nil {
				return nil, appErr(err)
			}
			return plan.Name, nil
		},
		"plan": func(_ context.Context, args []any) (any, error) {
			p := xmlrpc.Params(args)
			name, err := p.String(0)
			if err != nil {
				return nil, err
			}
			cp, ok := g.Plan(name)
			if !ok {
				return nil, xmlrpc.NewFault(xmlrpc.FaultApplication, "no plan %q", name)
			}
			done, succeeded := cp.Done()
			tasks := make([]any, 0, len(cp.Plan.Tasks))
			for _, a := range cp.Assignments() {
				tasks = append(tasks, map[string]any{
					"task":     a.TaskID,
					"site":     a.Site,
					"condorid": a.CondorID,
					"state":    a.State.String(),
					"attempts": a.Attempts,
				})
			}
			return map[string]any{
				"name":      cp.Plan.Name,
				"owner":     cp.Plan.Owner,
				"done":      done,
				"succeeded": succeeded,
				"tasks":     tasks,
			}, nil
		},
		"sites": func(context.Context, []any) (any, error) {
			names := g.Scheduler.Sites()
			out := make([]any, len(names))
			for i, n := range names {
				out[i] = n
			}
			return out, nil
		},
	}
}

// planFromStruct decodes an XML-RPC plan struct.
func planFromStruct(m map[string]any, owner string) (*scheduler.JobPlan, error) {
	plan := &scheduler.JobPlan{Owner: owner}
	plan.Name, _ = m["name"].(string)
	rawTasks, _ := m["tasks"].([]any)
	for _, rt := range rawTasks {
		tm, ok := rt.(map[string]any)
		if !ok {
			continue
		}
		t := scheduler.TaskPlan{}
		t.ID, _ = tm["id"].(string)
		t.CPUSeconds = floatField(tm, "cpu_seconds")
		t.Queue, _ = tm["queue"].(string)
		t.Partition, _ = tm["partition"].(string)
		t.Nodes = int(floatField(tm, "nodes"))
		t.JobType, _ = tm["job_type"].(string)
		t.ReqHours = floatField(tm, "req_cpu_hours")
		t.Priority = int(floatField(tm, "priority"))
		if deps, ok := tm["depends_on"].([]any); ok {
			for _, d := range deps {
				if s, ok := d.(string); ok {
					t.DependsOn = append(t.DependsOn, s)
				}
			}
		}
		t.OutputFile, _ = tm["output_file"].(string)
		t.OutputMB = floatField(tm, "output_mb")
		if b, ok := tm["checkpointable"].(bool); ok {
			t.Checkpointable = b
		}
		t.Requirements, _ = tm["requirements"].(string)
		plan.Tasks = append(plan.Tasks, t)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

func floatField(m map[string]any, key string) float64 {
	switch v := m[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	}
	return 0
}

// PlanToStruct encodes a JobPlan in the XML-RPC shape scheduler.submit
// accepts — the inverse of planFromStruct, used by remote submit clients.
func PlanToStruct(plan *scheduler.JobPlan) map[string]any {
	tasks := make([]any, len(plan.Tasks))
	for i, t := range plan.Tasks {
		deps := make([]any, len(t.DependsOn))
		for j, d := range t.DependsOn {
			deps[j] = d
		}
		tasks[i] = map[string]any{
			"id":             t.ID,
			"cpu_seconds":    t.CPUSeconds,
			"queue":          t.Queue,
			"partition":      t.Partition,
			"nodes":          t.Nodes,
			"job_type":       t.JobType,
			"req_cpu_hours":  t.ReqHours,
			"priority":       t.Priority,
			"depends_on":     deps,
			"output_file":    t.OutputFile,
			"output_mb":      t.OutputMB,
			"checkpointable": t.Checkpointable,
			"requirements":   t.Requirements,
		}
	}
	return map[string]any{"name": plan.Name, "tasks": tasks}
}
