package core

import (
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/clarens"
	"repro/internal/scheduler"
	"repro/internal/simgrid"
	"repro/internal/workload"
	"repro/internal/xmlrpc"
	"repro/pkg/gae"
)

// twoSiteConfig is the canonical test deployment: two single-node sites
// with a 10 MB/s link, alice and an admin user.
func twoSiteConfig() Config {
	return Config{
		Seed: 1,
		Sites: []SiteSpec{
			{Name: "siteA", Nodes: 1, CostPerCPUSecond: 0.10},
			{Name: "siteB", Nodes: 1, CostPerCPUSecond: 0.02},
		},
		Links: []LinkSpec{{A: "siteA", B: "siteB", MBps: 10}},
		Users: []UserSpec{
			{Name: "alice", Password: "pw", Roles: []string{"physicist"}, Credits: 1000},
			{Name: "root", Password: "rootpw", Admin: true},
		},
	}
}

func primePlan(owner, name string, cpu float64) *scheduler.JobPlan {
	return &scheduler.JobPlan{
		Name:  name,
		Owner: owner,
		Tasks: []scheduler.TaskPlan{{
			ID: "main", CPUSeconds: cpu,
			Queue: "short", Partition: "gae", Nodes: 1, JobType: "batch",
			ReqHours: cpu / 3600, OutputFile: "out.dat", OutputMB: 1,
		}},
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("siteless config accepted")
		}
	}()
	New(Config{})
}

func TestEndToEndPlanExecution(t *testing.T) {
	g := New(twoSiteConfig())
	cp, err := g.SubmitPlan(primePlan("alice", "p1", 60))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunUntilDone(cp, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if done, ok := cp.Done(); !done || !ok {
		t.Fatalf("plan done=%v ok=%v", done, ok)
	}
	// Output file landed in the execution site's storage.
	a, _ := cp.Assignment("main")
	site := g.Grid.Site(a.Site)
	if _, ok := site.Storage().Get("out.dat"); !ok {
		t.Fatal("output file missing")
	}
	// Steering recorded the completion.
	g.Run(15 * time.Second)
	var completed bool
	for _, n := range g.Steering.Notifications("alice") {
		if n.Kind == "completed" {
			completed = true
		}
	}
	if !completed {
		t.Fatal("no completion notification")
	}
}

// startGAE serves the Clarens host over httptest and logs a client in.
func startGAE(t *testing.T, cfg Config) (*GAE, *clarens.Client) {
	t.Helper()
	g := New(cfg)
	hs := httptest.NewServer(g.Handler())
	t.Cleanup(hs.Close)
	g.Clarens.SetBaseURL(hs.URL)
	c := clarens.NewClient(hs.URL)
	if err := c.Login(context.Background(), "alice", "pw"); err != nil {
		t.Fatal(err)
	}
	return g, c
}

func TestClarensHostsAllFourServices(t *testing.T) {
	g, c := startGAE(t, twoSiteConfig())
	svcs, err := c.Services(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range svcs {
		names[s.Name] = true
	}
	for _, want := range []string{"jobmon", "steering", "estimator", "quota"} {
		if !names[want] {
			t.Errorf("service %q not registered (have %v)", want, names)
		}
	}
	_ = g
}

func TestServicesRequireAuthentication(t *testing.T) {
	g := New(twoSiteConfig())
	hs := httptest.NewServer(g.Handler())
	defer hs.Close()
	anon := clarens.NewClient(hs.URL)
	for _, method := range []string{"jobmon.pools", "steering.jobs", "quota.balance"} {
		if _, err := anon.Call(context.Background(), method); !xmlrpc.IsFault(err, xmlrpc.FaultAuth) {
			t.Errorf("%s without session: %v", method, err)
		}
	}
}

func TestJobMonOverRPC(t *testing.T) {
	g, c := startGAE(t, twoSiteConfig())
	cp, err := g.SubmitPlan(primePlan("alice", "p1", 200))
	if err != nil {
		t.Fatal(err)
	}
	g.Run(20 * time.Second)
	a, _ := cp.Assignment("main")
	ctx := context.Background()
	status, err := c.CallString(ctx, "jobmon.status", a.Site, a.CondorID)
	if err != nil {
		t.Fatal(err)
	}
	if status != "running" {
		t.Fatalf("status = %q", status)
	}
	wall, err := c.CallFloat(ctx, "jobmon.wallclock", a.Site, a.CondorID)
	if err != nil {
		t.Fatal(err)
	}
	if wall < 15 || wall > 21 {
		t.Fatalf("wallclock = %v", wall)
	}
}

func TestSteeringOverRPC(t *testing.T) {
	g, c := startGAE(t, twoSiteConfig())
	g.Steering.AutoSteer = false
	if _, err := g.SubmitPlan(primePlan("alice", "p1", 300)); err != nil {
		t.Fatal(err)
	}
	g.Run(5 * time.Second)
	ctx := context.Background()

	jobs, err := c.CallArray(ctx, "steering.jobs")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0] != "p1/main" {
		t.Fatalf("steering.jobs = %v", jobs)
	}
	st, err := c.CallStruct(ctx, "steering.status", "p1", "main")
	if err != nil {
		t.Fatal(err)
	}
	if st["owner"] != "alice" || st["state"] != "submitted" {
		t.Fatalf("status = %v", st)
	}
	// Pause over RPC, confirm frozen, resume.
	if _, err := c.Call(ctx, "steering.pause", "p1", "main"); err != nil {
		t.Fatal(err)
	}
	g.Run(10 * time.Second)
	st, _ = c.CallStruct(ctx, "steering.status", "p1", "main")
	job := st["job"].(map[string]any)
	if job["status"] != "suspended" {
		t.Fatalf("paused job = %v", job["status"])
	}
	if _, err := c.Call(ctx, "steering.resume", "p1", "main"); err != nil {
		t.Fatal(err)
	}
	// Move to the other site explicitly.
	before := st["site"].(string)
	target := "siteB"
	if before == "siteB" {
		target = "siteA"
	}
	moved, err := c.CallStruct(ctx, "steering.move", "p1", "main", target)
	if err != nil {
		t.Fatal(err)
	}
	if moved["site"] != target {
		t.Fatalf("moved = %v", moved)
	}
	// Notifications mention the move.
	ns, err := c.CallArray(ctx, "steering.notifications")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) == 0 {
		t.Fatal("no notifications over RPC")
	}
	first := ns[0].(map[string]any)
	if !strings.Contains(first["message"].(string), "moved") {
		t.Fatalf("notification = %v", first)
	}
}

func TestSteeringRPCAuthorization(t *testing.T) {
	g, _ := startGAE(t, twoSiteConfig())
	g.Steering.AutoSteer = false
	if _, err := g.SubmitPlan(primePlan("alice", "p1", 300)); err != nil {
		t.Fatal(err)
	}
	g.Run(5 * time.Second)
	// root (admin) may steer alice's job; a fresh non-admin user may not.
	ctx := context.Background()
	rootC := clarens.NewClient(g.Clarens.BaseURL())
	if err := rootC.Login(ctx, "root", "rootpw"); err != nil {
		t.Fatal(err)
	}
	if _, err := rootC.Call(ctx, "steering.pause", "p1", "main"); err != nil {
		t.Fatalf("admin pause: %v", err)
	}
	if _, err := rootC.Call(ctx, "steering.resume", "p1", "main"); err != nil {
		t.Fatalf("admin resume: %v", err)
	}
	g.Clarens.Users.Add("mallory", "mpw")
	malC := clarens.NewClient(g.Clarens.BaseURL())
	if err := malC.Login(ctx, "mallory", "mpw"); err != nil {
		t.Fatal(err)
	}
	if _, err := malC.Call(ctx, "steering.kill", "p1", "main"); !xmlrpc.IsFault(err, xmlrpc.FaultApplication) {
		t.Fatalf("mallory kill error = %v", err)
	}
}

func TestEstimatorOverRPC(t *testing.T) {
	g, c := startGAE(t, twoSiteConfig())
	ctx := context.Background()
	// Train siteA's history by completing a plan there.
	cp, err := g.SubmitPlan(primePlan("alice", "warmup", 120))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunUntilDone(cp, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	g.Run(5 * time.Second)
	a, _ := cp.Assignment("main")
	est, err := c.CallStruct(ctx, "estimator.runtime", a.Site, map[string]any{
		"queue": "short", "partition": "gae", "nodes": 1, "job_type": "batch",
		"req_cpu_hours": 120.0 / 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	sec := est["seconds"].(float64)
	if sec < 100 || sec > 140 {
		t.Fatalf("runtime estimate = %v, want ≈120", sec)
	}
	// Transfer estimate.
	tr, err := c.CallStruct(ctx, "estimator.transfer", "siteA", "siteB", 100.0)
	if err != nil {
		t.Fatal(err)
	}
	if s := tr["seconds"].(float64); s < 9 || s > 11 {
		t.Fatalf("transfer estimate = %v, want ≈10", s)
	}
	// Queue-time estimate for a queued job.
	pool, _ := g.Pool("siteA")
	hog := primePlan("alice", "hog", 1000)
	hog.Tasks[0].Priority = 9
	if _, err := g.SubmitPlan(hog); err != nil {
		t.Fatal(err)
	}
	g.Run(3 * time.Second)
	low := primePlan("alice", "low", 50)
	cpLow, err := g.SubmitPlan(low)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(3 * time.Second)
	aLow, _ := cpLow.Assignment("main")
	if aLow.Site == "siteA" && aLow.CondorID != 0 {
		qt, err := c.CallStruct(ctx, "estimator.queuetime", "siteA", aLow.CondorID)
		if err != nil {
			t.Fatal(err)
		}
		if qt["seconds"].(float64) < 0 {
			t.Fatalf("queuetime = %v", qt)
		}
	}
	_ = pool
}

func TestQuotaOverRPC(t *testing.T) {
	_, c := startGAE(t, twoSiteConfig())
	ctx := context.Background()
	bal, err := c.CallFloat(ctx, "quota.balance")
	if err != nil {
		t.Fatal(err)
	}
	if bal != 1000 {
		t.Fatalf("balance = %v", bal)
	}
	cost, err := c.CallFloat(ctx, "quota.cost", "siteA", 100.0, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 10 {
		t.Fatalf("cost = %v", cost)
	}
	ch, err := c.CallStruct(ctx, "quota.cheapest", []string{"siteA", "siteB"}, 100.0, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if ch["site"] != "siteB" {
		t.Fatalf("cheapest = %v", ch)
	}
}

func TestFigure7ScenarioInProcess(t *testing.T) {
	// The full steering rescue: job lands at siteA, siteA becomes loaded,
	// the optimizer moves it, and completion beats the unsteered copy.
	cfg := twoSiteConfig()
	g := New(cfg)
	g.Steering.PollInterval = 10 * time.Second
	g.Steering.MinObservation = 30 * time.Second

	// Make siteB look busy at decision time so the job starts at siteA.
	g.MonALISA.Publish("siteB", "LoadAvg", g.Now(), 0.95)
	job := workload.PaperPrimeJob()
	cp, err := g.SubmitPlan(primePlan("alice", "primes", job.CPUSeconds()))
	if err != nil {
		t.Fatal(err)
	}
	g.Run(2 * time.Second)
	a, _ := cp.Assignment("main")
	if a.Site != "siteA" {
		t.Fatalf("job started at %s, want siteA", a.Site)
	}
	// siteA develops significant CPU load.
	g.Grid.Site("siteA").Nodes()[0].SetLoad(simgrid.ConstantLoad(0.7))
	if err := g.RunUntilDone(cp, 15*time.Minute); err != nil {
		t.Fatal(err)
	}
	done := g.Now().Sub(time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC))
	// Steered: ≈ detection (40-60s) + 283s ≪ unsteered 943s.
	if done > 450*time.Second {
		t.Fatalf("steered completion = %v, want < 450s", done)
	}
	final, _ := cp.Assignment("main")
	if final.Site != "siteB" {
		t.Fatalf("final site = %s", final.Site)
	}
}

func TestSchedulerSubmitOverRPC(t *testing.T) {
	g, c := startGAE(t, twoSiteConfig())
	ctx := context.Background()
	plan := map[string]any{
		"name": "rpcplan",
		"tasks": []any{
			map[string]any{"id": "a", "cpu_seconds": 20.0, "queue": "short"},
			map[string]any{"id": "b", "cpu_seconds": 20.0, "queue": "short",
				"depends_on": []any{"a"}, "output_file": "b.out", "output_mb": 3.0},
		},
	}
	name, err := c.CallString(ctx, "scheduler.submit", plan)
	if err != nil {
		t.Fatal(err)
	}
	if name != "rpcplan" {
		t.Fatalf("submit returned %q", name)
	}
	// Duplicate plan names are rejected.
	if _, err := c.Call(ctx, "scheduler.submit", plan); !xmlrpc.IsFault(err, xmlrpc.FaultApplication) {
		t.Fatalf("duplicate submit error = %v", err)
	}
	g.Run(90 * time.Second)
	status, err := c.CallStruct(ctx, "scheduler.plan", "rpcplan")
	if err != nil {
		t.Fatal(err)
	}
	if done, _ := status["done"].(bool); !done {
		t.Fatalf("plan status = %v", status)
	}
	if ok, _ := status["succeeded"].(bool); !ok {
		t.Fatalf("plan failed: %v", status)
	}
	tasks, _ := status["tasks"].([]any)
	if len(tasks) != 2 {
		t.Fatalf("tasks = %v", tasks)
	}
	// Invalid plans are rejected with an application fault.
	if _, err := c.Call(ctx, "scheduler.submit", map[string]any{"name": "bad"}); !xmlrpc.IsFault(err, xmlrpc.FaultApplication) {
		t.Fatalf("invalid plan error = %v", err)
	}
	if _, err := c.Call(ctx, "scheduler.plan", "ghost"); !xmlrpc.IsFault(err, xmlrpc.FaultApplication) {
		t.Fatalf("ghost plan error = %v", err)
	}
	sites, err := c.CallArray(ctx, "scheduler.sites")
	if err != nil || len(sites) != 2 {
		t.Fatalf("sites = %v, %v", sites, err)
	}
}

func TestPlanSpecRoundTrip(t *testing.T) {
	plan := primePlan("alice", "round", 50)
	plan.Tasks[0].DependsOn = nil
	spec := PlanSpecOf(plan)
	got, err := planFromSpec(spec, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != plan.Name || got.Owner != "alice" || len(got.Tasks) != 1 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Tasks[0].CPUSeconds != 50 || got.Tasks[0].OutputFile != "out.dat" {
		t.Fatalf("task round trip = %+v", got.Tasks[0])
	}
	// The spec survives the typed wire codec too — what scheduler.submit
	// actually receives.
	w, err := xmlrpc.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back gae.PlanSpec
	if err := xmlrpc.Unmarshal(w, &back); err != nil {
		t.Fatal(err)
	}
	// A nil dependency list rides the wire as an empty array.
	if len(back.Tasks) == 1 && len(back.Tasks[0].DependsOn) == 0 {
		back.Tasks[0].DependsOn = nil
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("wire round trip:\n in=%+v\nout=%+v", spec, back)
	}
}

func TestPutDatasetAndReplicaRPC(t *testing.T) {
	g, c := startGAE(t, twoSiteConfig())
	if err := g.PutDataset("siteA", "raw.data", 120); err != nil {
		t.Fatal(err)
	}
	if err := g.PutDataset("ghost", "raw.data", 1); err == nil {
		t.Fatal("PutDataset at unknown site succeeded")
	}
	ctx := context.Background()
	ds, err := c.CallArray(ctx, "replica.datasets")
	if err != nil || len(ds) != 1 || ds[0] != "raw.data" {
		t.Fatalf("datasets = %v, %v", ds, err)
	}
	locs, err := c.CallArray(ctx, "replica.locations", "raw.data")
	if err != nil || len(locs) != 1 {
		t.Fatalf("locations = %v, %v", locs, err)
	}
	if m := locs[0].(map[string]any); m["site"] != "siteA" {
		t.Fatalf("location = %v", m)
	}
	if _, err := c.Call(ctx, "replica.register", "raw.data", "siteB", 120.0); err != nil {
		t.Fatal(err)
	}
	best, err := c.CallStruct(ctx, "replica.best", "raw.data", "siteB")
	if err != nil {
		t.Fatal(err)
	}
	if best["site"] != "siteB" || best["transfer_s"].(float64) != 0 {
		t.Fatalf("best = %v", best)
	}
	if _, err := c.Call(ctx, "replica.best", "ghost.data", "siteA"); !xmlrpc.IsFault(err, xmlrpc.FaultApplication) {
		t.Fatalf("ghost best error = %v", err)
	}
}

func TestMonitorRPC(t *testing.T) {
	g, c := startGAE(t, twoSiteConfig())
	g.Run(30 * time.Second)
	ctx := context.Background()
	load, err := c.CallFloat(ctx, "monitor.latest", "siteA", "LoadAvg")
	if err != nil {
		t.Fatal(err)
	}
	if load < 0 || load > 1 {
		t.Fatalf("load = %v", load)
	}
	if _, err := c.Call(ctx, "monitor.latest", "nowhere", "LoadAvg"); !xmlrpc.IsFault(err, xmlrpc.FaultApplication) {
		t.Fatalf("missing metric error = %v", err)
	}
	series, err := c.CallArray(ctx, "monitor.series", "siteA", "LoadAvg", 60.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 3 {
		t.Fatalf("series = %d points", len(series))
	}
	metrics, err := c.CallArray(ctx, "monitor.metrics")
	if err != nil || len(metrics) == 0 {
		t.Fatalf("metrics = %v, %v", metrics, err)
	}
	sitesRows, err := c.CallArray(ctx, "monitor.sites")
	if err != nil || len(sitesRows) != 2 {
		t.Fatalf("sites = %v, %v", sitesRows, err)
	}
	// Job events appear after a plan runs.
	if _, err := g.SubmitPlan(primePlan("alice", "evplan", 10)); err != nil {
		t.Fatal(err)
	}
	g.Run(20 * time.Second)
	events, err := c.CallArray(ctx, "monitor.events", "", 120.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no job events recorded")
	}
}

func TestReplicaDrivenPlanOverCore(t *testing.T) {
	cfg := twoSiteConfig()
	g := New(cfg)
	if err := g.PutDataset("siteA", "big.raw", 300); err != nil {
		t.Fatal(err)
	}
	plan := primePlan("alice", "dataplan", 40)
	plan.Tasks[0].Inputs = []scheduler.FileRef{{Name: "big.raw"}} // catalog-resolved
	cp, err := g.SubmitPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunUntilDone(cp, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if done, ok := cp.Done(); !done || !ok {
		t.Fatalf("plan = %v/%v", done, ok)
	}
	a, _ := cp.Assignment("main")
	// Wherever it ran, the dataset must now be present there.
	if !g.Replicas.Has("big.raw", a.Site) {
		t.Fatalf("no replica at execution site %s", a.Site)
	}
}

func TestStateRPCPerUserIsolation(t *testing.T) {
	g, alice := startGAE(t, twoSiteConfig())
	ctx := context.Background()
	if _, err := alice.Call(ctx, "state.set", "cuts", "pt>20"); err != nil {
		t.Fatal(err)
	}
	v, err := alice.CallString(ctx, "state.get", "cuts")
	if err != nil || v != "pt>20" {
		t.Fatalf("get = %q, %v", v, err)
	}
	keys, err := alice.CallArray(ctx, "state.keys")
	if err != nil || len(keys) != 1 || keys[0] != "cuts" {
		t.Fatalf("keys = %v, %v", keys, err)
	}
	// root does not see alice's keys.
	rootC := clarens.NewClient(g.Clarens.BaseURL())
	if err := rootC.Login(ctx, "root", "rootpw"); err != nil {
		t.Fatal(err)
	}
	rootKeys, err := rootC.CallArray(ctx, "state.keys")
	if err != nil || len(rootKeys) != 0 {
		t.Fatalf("root keys = %v, %v", rootKeys, err)
	}
	if _, err := rootC.Call(ctx, "state.get", "cuts"); !xmlrpc.IsFault(err, xmlrpc.FaultApplication) {
		t.Fatalf("cross-user get error = %v", err)
	}
	// Delete round trip.
	ok, err := alice.CallBool(ctx, "state.delete", "cuts")
	if err != nil || !ok {
		t.Fatalf("delete = %v, %v", ok, err)
	}
	ok, err = alice.CallBool(ctx, "state.delete", "cuts")
	if err != nil || ok {
		t.Fatalf("double delete = %v, %v", ok, err)
	}
}

func TestFederationDiscoveryAndSiteServices(t *testing.T) {
	fed := NewFederation(twoSiteConfig())
	central, err := fed.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Stop()
	g := fed.Central
	ctx := context.Background()

	// One login at the central host works grid-wide (shared sessions).
	c := clarens.NewClient(central)
	if err := c.Login(ctx, "alice", "pw"); err != nil {
		t.Fatal(err)
	}

	// The central host does not host estimator-siteA itself; discovery
	// must find it on the peer.
	info, err := c.Discover(ctx, "estimator-siteA")
	if err != nil {
		t.Fatal(err)
	}
	wantURL, _ := fed.URL("siteA")
	if info.Endpoint != wantURL {
		t.Fatalf("discovered endpoint = %q, want %q", info.Endpoint, wantURL)
	}

	// Train siteA's history, then call its site-local estimator directly
	// at the discovered endpoint using the same session token.
	cp, err := g.SubmitPlan(primePlan("alice", "train", 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunUntilDone(cp, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	g.Run(5 * time.Second)
	a, _ := cp.Assignment("main")

	siteClient := clarens.NewClient(info.Endpoint)
	siteClient.SetToken(c.Token())
	est, err := siteClient.CallStruct(ctx, "estimator-"+a.Site+".runtime", map[string]any{
		"queue": "short", "partition": "gae", "nodes": 1, "job_type": "batch",
		"req_cpu_hours": 100.0 / 3600,
	})
	if err != nil {
		// The trained site may be siteB; discover that host instead.
		info2, derr := c.Discover(ctx, "estimator-"+a.Site)
		if derr != nil {
			t.Fatal(err)
		}
		siteClient = clarens.NewClient(info2.Endpoint)
		siteClient.SetToken(c.Token())
		est, err = siteClient.CallStruct(ctx, "estimator-"+a.Site+".runtime", map[string]any{
			"queue": "short", "partition": "gae", "nodes": 1, "job_type": "batch",
			"req_cpu_hours": 100.0 / 3600,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	sec := est["seconds"].(float64)
	if sec < 80 || sec > 120 {
		t.Fatalf("federated estimate = %v, want ≈100", sec)
	}

	// Site-local jobmon answers for that site's jobs.
	jmInfo, derr := c.Discover(ctx, "jobmon-"+a.Site)
	if derr != nil {
		t.Fatal(derr)
	}
	jmClient := clarens.NewClient(jmInfo.Endpoint)
	jmClient.SetToken(c.Token())
	status, err := jmClient.CallString(ctx, "jobmon-"+a.Site+".status", a.CondorID)
	if err != nil {
		t.Fatal(err)
	}
	if status != "completed" {
		t.Fatalf("federated status = %q", status)
	}

	// A client attached to a SITE host can discover the central steering
	// service through the reverse peer link.
	siteURL, _ := fed.URL("siteB")
	sb := clarens.NewClient(siteURL)
	sb.SetToken(c.Token())
	steeringInfo, err := sb.Discover(ctx, "steering")
	if err != nil {
		t.Fatal(err)
	}
	if steeringInfo.Endpoint != central {
		t.Fatalf("steering discovered at %q, want central %q", steeringInfo.Endpoint, central)
	}
}
