package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/scheduler"
	"repro/internal/simgrid"
	"repro/internal/steering"
)

// The core-level half of the tick-vs-event equivalence suite: a full
// deployment (scheduler site selection, input staging over the network,
// MonALISA sampling, steering with an automatic migration, fault
// injection with resubmission) must produce identical assignments, job
// footprints, and notifications under both drivers.

type coreTrace struct {
	assignments []scheduler.Assignment
	jobs        []string // formatted job snapshots per site, in site order
	notes       []steering.Notification
}

func runCoreScenario(t *testing.T, driver simgrid.Driver) *coreTrace {
	t.Helper()
	g := New(Config{
		Seed: 7,
		Sites: []SiteSpec{
			{Name: "siteA", Nodes: 2, CostPerCPUSecond: 0.05},
			{Name: "siteB", Nodes: 2, CostPerCPUSecond: 0.02},
		},
		Links: []LinkSpec{{A: "siteA", B: "siteB", MBps: 10, LatencyMS: 100}},
		Users: []UserSpec{{Name: "physicist", Password: "pw", Credits: 1e6}},
	})
	g.Grid.Engine.SetDriver(driver)
	g.Steering.PollInterval = 5 * time.Second
	g.Steering.MinObservation = 20 * time.Second

	// Input dataset at site A only, so a site-B assignment must stage it.
	if err := g.PutDataset("siteA", "hits.root", 200); err != nil {
		t.Fatal(err)
	}

	cp, err := g.SubmitPlan(&scheduler.JobPlan{
		Name: "analysis", Owner: "physicist",
		Tasks: []scheduler.TaskPlan{
			{ID: "prep", CPUSeconds: 30, Queue: "short", Nodes: 1, OutputFile: "prep.out", OutputMB: 50},
			{ID: "main", CPUSeconds: 120, Queue: "short", Nodes: 1, DependsOn: []string{"prep"},
				Inputs: []scheduler.FileRef{{Name: "hits.root", Site: "siteA", SizeMB: 200}}, Checkpointable: true},
			{ID: "flaky", CPUSeconds: 60, Queue: "short", Nodes: 1, FailAfterCPU: 10},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Mid-run, the first site develops heavy load: the steering service
	// should detect the slow execution rate and migrate the main task.
	g.Grid.Engine.Schedule(40*time.Second, func(time.Time) {
		if a, ok := cp.Assignment("main"); ok && a.Site != "" {
			for _, n := range g.Grid.Site(a.Site).Nodes() {
				n.SetLoad(simgrid.ConstantLoad(0.9))
			}
		}
	})

	g.Run(600 * time.Second)

	tr := &coreTrace{notes: g.Steering.Notifications("physicist")}
	for _, task := range []string{"prep", "main", "flaky"} {
		a, ok := cp.Assignment(task)
		if !ok {
			t.Fatalf("assignment missing for %s", task)
		}
		tr.assignments = append(tr.assignments, a)
	}
	for _, site := range g.Sites() {
		pool, _ := g.Pool(site)
		jobs, err := pool.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			tr.jobs = append(tr.jobs, fmt.Sprintf("%+v", j))
		}
	}
	return tr
}

func TestDriverEquivalenceCoreScenario(t *testing.T) {
	tick := runCoreScenario(t, simgrid.DriverTick)
	ev := runCoreScenario(t, simgrid.DriverEvent)

	if len(tick.assignments) != len(ev.assignments) {
		t.Fatalf("assignment counts diverged: %d vs %d", len(tick.assignments), len(ev.assignments))
	}
	for i := range tick.assignments {
		a, b := tick.assignments[i], ev.assignments[i]
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Errorf("assignment %d diverged:\n tick:  %+v\n event: %+v", i, a, b)
		}
	}
	if len(tick.jobs) != len(ev.jobs) {
		t.Fatalf("job counts diverged: %d vs %d", len(tick.jobs), len(ev.jobs))
	}
	for i := range tick.jobs {
		if tick.jobs[i] != ev.jobs[i] {
			t.Errorf("job %d diverged:\n tick:  %s\n event: %s", i, tick.jobs[i], ev.jobs[i])
		}
	}
	if len(tick.notes) != len(ev.notes) {
		t.Fatalf("notification counts diverged: %d vs %d\n tick: %+v\n event: %+v",
			len(tick.notes), len(ev.notes), tick.notes, ev.notes)
	}
	for i := range tick.notes {
		if tick.notes[i] != ev.notes[i] {
			t.Errorf("notification %d diverged:\n tick:  %+v\n event: %+v", i, tick.notes[i], ev.notes[i])
		}
	}
	if len(tick.notes) == 0 {
		t.Fatal("scenario produced no steering notifications; equivalence test is weaker than intended")
	}
}
