package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/fairshare"
	"repro/pkg/gae"
)

// durableConfig is the recovery-test deployment: the canonical two sites
// plus fair-share accounting, so every snapshotted component carries
// state.
func durableConfig() Config {
	cfg := twoSiteConfig()
	cfg.FairShare = &fairshare.Config{HalfLife: time.Hour}
	cfg.Sites[0].CostPerTransferMB = 0.05
	return cfg
}

func specOf(name string, cpu float64) gae.PlanSpec {
	return gae.PlanSpec{
		Name: name,
		Tasks: []gae.TaskSpec{{
			ID: "main", CPUSeconds: cpu,
			Queue: "short", Partition: "gae", Nodes: 1, JobType: "batch",
			ReqHours: cpu / 3600, OutputFile: name + ".dat", OutputMB: 1,
		}},
	}
}

// encodeState captures and canonically encodes the deployment state.
func encodeState(t *testing.T, g *GAE) []byte {
	t.Helper()
	st, err := g.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := durable.EncodeState(&st)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func diffLines(t *testing.T, want, got []byte) {
	t.Helper()
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(w) && i < len(g); i++ {
		if !bytes.Equal(w[i], g[i]) {
			t.Fatalf("state diverges at line %d:\n  pre-crash:  %s\n  recovered:  %s", i+1, w[i], g[i])
		}
	}
	t.Fatalf("state diverges in length: pre-crash %d lines, recovered %d", len(w), len(g))
}

// TestCrashRecoveryByteIdentical is the durability acceptance test: a
// deployment serves a mixed workload through the typed clients, takes a
// mid-flight checkpoint, serves more acknowledged RPCs (the journal
// tail), and is then hard-stopped — no graceful shutdown, no final
// checkpoint. A fresh process recovering from the same directory must
// reproduce the pre-crash state byte for byte: job queues, machine
// claims, fair-share accounts, the quota ledger, the replica catalog,
// submitted plans, and per-user session state.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	ctx := context.Background()

	g1 := New(cfg)
	s1, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := g1.AttachStore(s1); err != nil {
		t.Fatal(err)
	}
	alice := g1.Client("alice")
	root := g1.Client("root")

	// Deployment-level seeding (captured by the checkpoint).
	if err := g1.PutDataset("siteA", "hits.root", 40); err != nil {
		t.Fatal(err)
	}

	// Pre-checkpoint traffic: plans, session state, accounting.
	if _, err := alice.Submit(ctx, specOf("p-short", 30)); err != nil {
		t.Fatal(err)
	}
	longSpec := specOf("p-long", 600)
	longSpec.Tasks[0].Checkpointable = true
	if _, err := alice.Submit(ctx, longSpec); err != nil {
		t.Fatal(err)
	}
	if err := alice.SetState(ctx, "cuts", "pt>20 && |eta|<2.4"); err != nil {
		t.Fatal(err)
	}
	if err := alice.SetState(ctx, "scratch", "tmp"); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.DeleteState(ctx, "scratch"); err != nil {
		t.Fatal(err)
	}
	if err := root.Grant(ctx, "alice", 250); err != nil {
		t.Fatal(err)
	}
	if _, err := root.ChargeUsage(ctx, gae.ChargeRequest{
		User: "alice", Site: "siteA", CPUSeconds: 120, MB: 30, Note: "imported history",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.SetPreference(ctx, "cheap"); err != nil {
		t.Fatal(err)
	}

	// Let the short plan finish and the long one accrue CPU, then
	// checkpoint with a job mid-execution (its claim becomes a lease).
	g1.Run(90 * time.Second)
	if err := g1.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Journal tail: acknowledged after the checkpoint, recovered by
	// replay alone.
	if _, err := alice.Submit(ctx, specOf("p-tail", 45)); err != nil {
		t.Fatal(err)
	}
	if err := alice.SetState(ctx, "phase", "2"); err != nil {
		t.Fatal(err)
	}
	if err := root.Grant(ctx, "alice", 10); err != nil {
		t.Fatal(err)
	}
	if err := alice.SetPriority(ctx, "p-long", "main", 7); err != nil {
		t.Fatal(err)
	}
	if err := alice.RegisterReplica(ctx, "hits.root", "siteB", 40); err != nil {
		t.Fatal(err)
	}

	want := encodeState(t, g1)
	// Hard stop: the process dies here. Everything acknowledged is
	// already fsynced; closing the store stands in for process death.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	g2 := New(cfg)
	s2, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if warn := s2.ScanWarning(); warn != nil {
		t.Fatalf("clean journal reported corruption: %v", warn)
	}
	if err := g2.AttachStore(s2); err != nil {
		t.Fatal(err)
	}

	if !g2.Now().Equal(g1.Now()) {
		t.Fatalf("recovered simulated time %v, want %v", g2.Now(), g1.Now())
	}
	got := encodeState(t, g2)
	if !bytes.Equal(want, got) {
		diffLines(t, want, got)
	}

	// The recovered deployment is live: the mid-flight plan runs to
	// completion on its re-bound lease.
	cp, ok := g2.Plan("p-long")
	if !ok {
		t.Fatal("recovered deployment lost plan p-long")
	}
	if err := g2.RunUntilDone(cp, time.Hour); err != nil {
		t.Fatal(err)
	}
	if done, succeeded := cp.Done(); !done || !succeeded {
		t.Fatalf("recovered plan done=%v succeeded=%v", done, succeeded)
	}
	// New traffic keeps journaling after recovery.
	if err := g2.Client("alice").SetState(ctx, "phase", "3"); err != nil {
		t.Fatal(err)
	}
}

// TestJournalOnlyRecovery recovers with no snapshot at all: the journal
// replays every acknowledged RPC at its recorded simulated time against
// a fresh deployment, re-running the deterministic simulation in
// between.
func TestJournalOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	ctx := context.Background()

	g1 := New(cfg)
	s1, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := g1.AttachStore(s1); err != nil {
		t.Fatal(err)
	}
	alice := g1.Client("alice")
	if _, err := alice.Submit(ctx, specOf("p1", 30)); err != nil {
		t.Fatal(err)
	}
	g1.Run(45 * time.Second)
	if err := alice.SetState(ctx, "after", "p1"); err != nil {
		t.Fatal(err)
	}
	want := encodeState(t, g1)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	g2 := New(cfg)
	s2, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := g2.AttachStore(s2); err != nil {
		t.Fatal(err)
	}
	got := encodeState(t, g2)
	if !bytes.Equal(want, got) {
		diffLines(t, want, got)
	}
}

// TestCheckpointTruncatesJournal pins the checkpoint cycle: ops journal,
// checkpoint truncates, later ops journal again with continuous
// sequence numbers.
func TestCheckpointTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	g := New(durableConfig())
	s, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := g.AttachStore(s); err != nil {
		t.Fatal(err)
	}
	alice := g.Client("alice")
	for i := 0; i < 3; i++ {
		if err := alice.SetState(ctx, fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.LastSeq(); got != 3 {
		t.Fatalf("LastSeq after 3 ops = %d", got)
	}
	if err := g.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := alice.SetState(ctx, "k3", "v"); err != nil {
		t.Fatal(err)
	}
	if got := s.LastSeq(); got != 4 {
		t.Fatalf("LastSeq after checkpoint + 1 op = %d", got)
	}
}

// TestRejectedRPCsAreNotJournaled pins the ack contract: a call that
// fails is not recorded, so replay never re-applies a rejection.
func TestRejectedRPCsAreNotJournaled(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	g := New(durableConfig())
	s, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := g.AttachStore(s); err != nil {
		t.Fatal(err)
	}
	alice := g.Client("alice")
	if err := alice.Grant(ctx, "alice", 100); err == nil {
		t.Fatal("non-admin grant accepted")
	}
	if err := alice.SetState(ctx, "", "v"); err == nil {
		t.Fatal("empty state key accepted")
	}
	if got := s.LastSeq(); got != 0 {
		t.Fatalf("rejected RPCs journaled: LastSeq = %d", got)
	}
}
