package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/clarens"
	"repro/internal/durable"
)

// TestDedupReturnsOriginalResult pins the core dedup contract on the
// local transport: a second call under the same request ID is not
// re-applied — it returns the originally recorded result, even for a
// call the service would now reject as a duplicate.
func TestDedupReturnsOriginalResult(t *testing.T) {
	g := New(durableConfig())
	ctx := context.Background()
	alice := g.Client("alice")

	rctx := clarens.WithRequestID(ctx, "rid-submit")
	name, err := alice.Submit(rctx, specOf("p1", 30))
	if err != nil || name != "p1" {
		t.Fatalf("submit = %q, %v", name, err)
	}
	// Without dedup this is a semantic duplicate-plan rejection.
	again, err := alice.Submit(rctx, specOf("p1", 30))
	if err != nil {
		t.Fatalf("retried submit: %v, want recorded result", err)
	}
	if again != name {
		t.Fatalf("retried submit = %q, want original %q", again, name)
	}
	if _, err := alice.Submit(ctx, specOf("p1", 30)); err == nil {
		t.Fatal("fresh-ID duplicate submit succeeded; dedup must key on the request ID, not the payload")
	}

	// Reads are not journaled and must ignore the window entirely.
	if err := alice.SetState(ctx, "x", "live"); err != nil {
		t.Fatal(err)
	}
	if v, err := alice.GetState(rctx, "x"); err != nil || v != "live" {
		t.Fatalf("read under a recorded request ID = %q, %v; want the live value", v, err)
	}

	// A request ID must not alias across methods.
	if err := alice.SetState(rctx, "k", "v"); err == nil || !strings.Contains(err.Error(), "reused") {
		t.Fatalf("request ID reused across methods: err = %v, want reuse rejection", err)
	}
}

// TestDedupSurvivesCheckpointRestart covers the acceptance criterion at
// the core layer: first delivery, checkpoint, restart, then the retry —
// the window must come back from the snapshot and suppress the
// duplicate.
func TestDedupSurvivesCheckpointRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	g1 := New(durableConfig())
	s1, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := g1.AttachStore(s1); err != nil {
		t.Fatal(err)
	}
	root := g1.Client("root")
	rctx := clarens.WithRequestID(ctx, "rid-grant")
	if err := root.Grant(rctx, "alice", 25); err != nil {
		t.Fatal(err)
	}
	before, err := g1.Client("alice").Balance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := g1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	g2 := New(durableConfig())
	s2, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := g2.AttachStore(s2); err != nil {
		t.Fatal(err)
	}
	if err := g2.Client("root").Grant(rctx, "alice", 25); err != nil {
		t.Fatalf("retried grant after restart: %v, want deduplicated success", err)
	}
	after, err := g2.Client("alice").Balance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("balance %v after retried grant, want %v (grant re-applied across restart)", after, before)
	}
}

// TestDedupWindowEvictsOldest bounds the per-user window: once more
// than DefaultIdemPerUser ops are recorded, the oldest request IDs fall
// out and a very late retry is treated as a fresh call again.
func TestDedupWindowEvictsOldest(t *testing.T) {
	g := New(durableConfig())
	ctx := context.Background()
	root := g.Client("root")

	first := clarens.WithRequestID(ctx, "rid-0")
	if err := root.Grant(first, "alice", 1); err != nil {
		t.Fatal(err)
	}
	if err := root.Grant(first, "alice", 1); err != nil {
		t.Fatalf("in-window retry: %v", err)
	}
	for i := 1; i <= DefaultIdemPerUser; i++ {
		if err := root.Grant(clarens.WithRequestID(ctx, ridN(i)), "alice", 1); err != nil {
			t.Fatal(err)
		}
	}
	bal, err := g.Client("alice").Balance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// rid-0 has been evicted: the retry applies again.
	if err := root.Grant(first, "alice", 1); err != nil {
		t.Fatal(err)
	}
	bal2, err := g.Client("alice").Balance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if bal2 != bal+1 {
		t.Fatalf("balance %v after evicted-ID retry, want %v (window never evicts?)", bal2, bal+1)
	}
}

func ridN(i int) string {
	return "rid-fill-" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}
