package core

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// methodObs is the pre-resolved per-method handle set for the journaled
// RPC path: counts, errors, and a latency histogram, all labeled by the
// fully-qualified method name. Resolving registry handles once per
// method (not per call) keeps the serving hot path at a map read plus
// atomic ops.
type methodObs struct {
	requests *telemetry.Counter
	errors   *telemetry.Counter
	latency  *telemetry.Histogram
}

// rpcObserver caches methodObs by method name. A nil observer (a GAE
// built without telemetry) resolves every method to nil, and journalCall
// skips its timing work entirely.
type rpcObserver struct {
	reg  *telemetry.Registry
	mu   sync.RWMutex
	byFQ map[string]*methodObs
}

func newRPCObserver(reg *telemetry.Registry) *rpcObserver {
	if reg == nil {
		return nil
	}
	return &rpcObserver{reg: reg, byFQ: make(map[string]*methodObs)}
}

func (o *rpcObserver) forMethod(fq string) *methodObs {
	if o == nil {
		return nil
	}
	o.mu.RLock()
	mo := o.byFQ[fq]
	o.mu.RUnlock()
	if mo != nil {
		return mo
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if mo = o.byFQ[fq]; mo != nil {
		return mo
	}
	mo = &methodObs{
		requests: o.reg.LabeledCounter("rpc_requests_total", "method", fq),
		errors:   o.reg.LabeledCounter("rpc_errors_total", "method", fq),
		latency:  o.reg.LabeledHistogram("rpc_latency_seconds", "method", fq, nil),
	}
	o.byFQ[fq] = mo
	return mo
}

// healthz answers the drain-aware health probe: 200 with status "ok"
// while serving, 503 with status "draining" once the host is refusing
// RPCs ahead of a stop. It reports through the Clarens host's draining
// flag so the endpoint flips the instant drain begins — while the
// process is still up checkpointing — which is what a load balancer
// needs to stop routing before the listener dies.
func (g *GAE) healthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "health endpoint is read-only", http.StatusMethodNotAllowed)
		return
	}
	draining := g.Clarens.Draining()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck // best-effort write
		"status":   status,
		"draining": draining,
		"host":     g.Clarens.Name,
		"sim_time": g.Now().UTC().Format(time.RFC3339Nano),
	})
}
