package core

import (
	"context"
	"time"

	"repro/internal/xmlrpc"
)

// replicaMethods exposes the replica catalog (the data location service):
//
//	replica.datasets()                  → array of dataset names
//	replica.locations(dataset)          → array of {site, size_mb}
//	replica.register(dataset, site, mb) → true
//	replica.best(dataset, dstSite)      → struct{site, size_mb, transfer_s}
func (g *GAE) replicaMethods() map[string]xmlrpc.Handler {
	appErr := func(err error) error {
		return xmlrpc.NewFault(xmlrpc.FaultApplication, "%v", err)
	}
	return map[string]xmlrpc.Handler{
		"datasets": func(context.Context, []any) (any, error) {
			names := g.Replicas.Datasets()
			out := make([]any, len(names))
			for i, n := range names {
				out[i] = n
			}
			return out, nil
		},
		"locations": func(_ context.Context, args []any) (any, error) {
			p := xmlrpc.Params(args)
			name, err := p.String(0)
			if err != nil {
				return nil, err
			}
			locs := g.Replicas.Locations(name)
			out := make([]any, len(locs))
			for i, l := range locs {
				out[i] = map[string]any{"site": l.Site, "size_mb": l.SizeMB}
			}
			return out, nil
		},
		"register": func(_ context.Context, args []any) (any, error) {
			p := xmlrpc.Params(args)
			if err := p.Want(3); err != nil {
				return nil, err
			}
			name, err := p.String(0)
			if err != nil {
				return nil, err
			}
			site, err := p.String(1)
			if err != nil {
				return nil, err
			}
			size, err := p.Float(2)
			if err != nil {
				return nil, err
			}
			if err := g.Replicas.Register(name, site, size); err != nil {
				return nil, appErr(err)
			}
			return true, nil
		},
		"best": func(_ context.Context, args []any) (any, error) {
			p := xmlrpc.Params(args)
			if err := p.Want(2); err != nil {
				return nil, err
			}
			name, err := p.String(0)
			if err != nil {
				return nil, err
			}
			dst, err := p.String(1)
			if err != nil {
				return nil, err
			}
			loc, sec, err := g.Replicas.Best(g.Transfer, name, dst)
			if err != nil {
				return nil, appErr(err)
			}
			return map[string]any{
				"site": loc.Site, "size_mb": loc.SizeMB, "transfer_s": sec,
			}, nil
		},
	}
}

// monitorMethods exposes the MonALISA repository — the "Grid weather"
// reads the paper promises users:
//
//	monitor.latest(source, name)          → double
//	monitor.series(source, name, sinceS)  → array of {t, value}
//	monitor.metrics()                     → array of "source/name"
//	monitor.events(source, sinceS)        → array of {t, kind, detail}
//	monitor.sites()                       → array of {site, load, running, free}
func (g *GAE) monitorMethods() map[string]xmlrpc.Handler {
	return map[string]xmlrpc.Handler{
		"latest": func(_ context.Context, args []any) (any, error) {
			p := xmlrpc.Params(args)
			if err := p.Want(2); err != nil {
				return nil, err
			}
			source, err := p.String(0)
			if err != nil {
				return nil, err
			}
			name, err := p.String(1)
			if err != nil {
				return nil, err
			}
			pt, ok := g.MonALISA.Latest(source, name)
			if !ok {
				return nil, xmlrpc.NewFault(xmlrpc.FaultApplication, "no metric %s/%s", source, name)
			}
			return pt.Value, nil
		},
		"series": func(_ context.Context, args []any) (any, error) {
			p := xmlrpc.Params(args)
			if err := p.Want(3); err != nil {
				return nil, err
			}
			source, err := p.String(0)
			if err != nil {
				return nil, err
			}
			name, err := p.String(1)
			if err != nil {
				return nil, err
			}
			since, err := p.Float(2)
			if err != nil {
				return nil, err
			}
			now := g.Now()
			from := now.Add(-time.Duration(since * float64(time.Second)))
			pts := g.MonALISA.Series(source, name, from, now)
			out := make([]any, len(pts))
			for i, pt := range pts {
				out[i] = map[string]any{"t": pt.Time, "value": pt.Value}
			}
			return out, nil
		},
		"metrics": func(context.Context, []any) (any, error) {
			ms := g.MonALISA.Metrics()
			out := make([]any, len(ms))
			for i, m := range ms {
				out[i] = m.String()
			}
			return out, nil
		},
		"events": func(_ context.Context, args []any) (any, error) {
			p := xmlrpc.Params(args)
			if err := p.Want(2); err != nil {
				return nil, err
			}
			source, err := p.String(0)
			if err != nil {
				return nil, err
			}
			since, err := p.Float(1)
			if err != nil {
				return nil, err
			}
			from := g.Now().Add(-time.Duration(since * float64(time.Second)))
			evs := g.MonALISA.Events(from, source)
			out := make([]any, len(evs))
			for i, e := range evs {
				out[i] = map[string]any{"t": e.Time, "kind": e.Kind, "detail": e.Detail}
			}
			return out, nil
		},
		"sites": func(context.Context, []any) (any, error) {
			var out []any
			for _, site := range g.Grid.Sites() {
				out = append(out, map[string]any{
					"site":    site.Name,
					"load":    g.MonALISA.LatestValue(site.Name, "LoadAvg", 0),
					"running": g.MonALISA.LatestValue(site.Name, "RunningJobs", 0),
					"free":    g.MonALISA.LatestValue(site.Name, "FreeNodes", 0),
				})
			}
			return out, nil
		},
	}
}

// stateMethods exposes the per-user analysis-session state store. Keys
// are private to the session user:
//
//	state.set(key, value) → true
//	state.get(key)        → string
//	state.keys()          → array of strings
//	state.delete(key)     → boolean (existed)
func (g *GAE) stateMethods() map[string]xmlrpc.Handler {
	withUser := func(fn func(user string, p xmlrpc.Params) (any, error)) xmlrpc.Handler {
		return func(ctx context.Context, args []any) (any, error) {
			user := g.userOf(ctx)
			if user == "" {
				return nil, xmlrpc.NewFault(xmlrpc.FaultAuth, "no session")
			}
			return fn(user, xmlrpc.Params(args))
		}
	}
	return map[string]xmlrpc.Handler{
		"set": withUser(func(user string, p xmlrpc.Params) (any, error) {
			if err := p.Want(2); err != nil {
				return nil, err
			}
			key, err := p.String(0)
			if err != nil {
				return nil, err
			}
			value, err := p.String(1)
			if err != nil {
				return nil, err
			}
			if err := g.State.Set(user, key, value); err != nil {
				return nil, xmlrpc.NewFault(xmlrpc.FaultApplication, "%v", err)
			}
			return true, nil
		}),
		"get": withUser(func(user string, p xmlrpc.Params) (any, error) {
			key, err := p.String(0)
			if err != nil {
				return nil, err
			}
			v, ok := g.State.Get(user, key)
			if !ok {
				return nil, xmlrpc.NewFault(xmlrpc.FaultApplication, "no state key %q", key)
			}
			return v, nil
		}),
		"keys": withUser(func(user string, p xmlrpc.Params) (any, error) {
			keys := g.State.Keys(user)
			out := make([]any, len(keys))
			for i, k := range keys {
				out[i] = k
			}
			return out, nil
		}),
		"delete": withUser(func(user string, p xmlrpc.Params) (any, error) {
			key, err := p.String(0)
			if err != nil {
				return nil, err
			}
			return g.State.Delete(user, key), nil
		}),
	}
}
