package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// --- idempotency window: TTL sizing and eviction causes ---

func idemAt(sec int) time.Time {
	return time.Date(2005, 6, 1, 0, 0, sec, 0, time.UTC)
}

func TestIdemWindowTTLEviction(t *testing.T) {
	reg := telemetry.NewRegistry()
	w := newIdemWindow(100, 10*time.Second)
	w.setTelemetry(reg)

	for i := 0; i < 5; i++ {
		w.record("alice", fmt.Sprintf("r%d", i), "quota.grant", nil, uint64(i+1), idemAt(i))
	}
	// All five are within 10s of each other: nothing ages out.
	if _, ok := w.lookup("alice", "r0"); !ok {
		t.Fatal("r0 evicted inside the TTL")
	}

	// An entry 11s after r0 pushes r0 (and only r0) past the horizon.
	w.record("alice", "late", "quota.grant", nil, 6, idemAt(11))
	if _, ok := w.lookup("alice", "r0"); ok {
		t.Fatal("r0 still present 11s after acknowledgment with a 10s TTL")
	}
	if _, ok := w.lookup("alice", "r1"); !ok {
		t.Fatal("r1 evicted at age 10s with a 10s TTL (boundary is exclusive)")
	}

	snap := reg.Snapshot()
	if got, _ := snap.Value("idem_evictions_total", "age"); got != 1 {
		t.Fatalf("age evictions = %v, want 1", got)
	}
	if got, _ := snap.Value("idem_evictions_total", "capacity"); got != 0 {
		t.Fatalf("capacity evictions = %v, want 0", got)
	}
	// The successful lookups above count as dedup hits.
	if got := snap.Total("idem_hits_total"); got == 0 {
		t.Fatal("idem hits not counted")
	}
}

func TestIdemWindowCapacityEvictionCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	w := newIdemWindow(2, 0)
	w.setTelemetry(reg)
	for i := 0; i < 4; i++ {
		w.record("alice", fmt.Sprintf("r%d", i), "state.set", nil, uint64(i+1), idemAt(i))
	}
	snap := reg.Snapshot()
	if got, _ := snap.Value("idem_evictions_total", "capacity"); got != 2 {
		t.Fatalf("capacity evictions = %v, want 2", got)
	}
	if got, _ := snap.Value("idem_evictions_total", "age"); got != 0 {
		t.Fatalf("age evictions = %v, want 0 with ttl disabled", got)
	}
}

// Entries without a recorded acknowledgment time (pre-TTL snapshots)
// must never age out: there is nothing deterministic to age them
// against.
func TestIdemWindowZeroTimeExemptFromTTL(t *testing.T) {
	w := newIdemWindow(100, time.Second)
	w.record("alice", "old", "state.set", nil, 1, time.Time{})
	w.record("alice", "new", "state.set", nil, 2, idemAt(3600))
	if _, ok := w.lookup("alice", "old"); !ok {
		t.Fatal("zero-time entry was age-evicted")
	}
}

func TestConfigIdemTTLPlumbed(t *testing.T) {
	g := New(Config{
		Seed:    1,
		Sites:   []SiteSpec{{Name: "siteA", Nodes: 1}},
		Users:   []UserSpec{{Name: "alice", Password: "pw"}},
		IdemTTL: 42 * time.Second,
	})
	if g.idem.ttl != 42*time.Second {
		t.Fatalf("idem ttl = %v, want 42s", g.idem.ttl)
	}
}

// --- HTTP observability endpoints on the Clarens host ---

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	g, c := startGAE(t, twoSiteConfig())
	ctx := context.Background()
	// Drive the journaled RPC path so the server-side families have data.
	if _, err := c.Call(ctx, "state.set", "k1", "v1"); err != nil {
		t.Fatal(err)
	}
	base := g.Clarens.BaseURL()

	code, text := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"# TYPE rpc_requests_total counter",
		`rpc_requests_total{method="state.set"} 1`,
		"# TYPE rpc_latency_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics text missing %q", want)
		}
	}

	code, body := httpGet(t, base+"/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=json: status %d", code)
	}
	snap, err := telemetry.ParseJSON(strings.NewReader(body))
	if err != nil {
		t.Fatalf("parsing /metrics JSON: %v", err)
	}
	if got := snap.Total("rpc_requests_total"); got != 1 {
		t.Fatalf("rpc_requests_total = %v, want 1", got)
	}
	if _, ok := snap.Find("rpc_latency_seconds", "state.set"); !ok {
		t.Fatal("rpc_latency_seconds{state.set} missing from snapshot")
	}
}

func TestHealthzDrainAware(t *testing.T) {
	g := New(twoSiteConfig())
	hs := httptest.NewServer(g.Handler())
	defer hs.Close()

	code, body := httpGet(t, hs.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: status %d, body %q", code, body)
	}
	var st struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("parsing /healthz: %v", err)
	}
	if st.Status != "ok" || st.Draining {
		t.Fatalf("/healthz = %+v, want ok/not-draining", st)
	}

	// While draining, RPC traffic is refused but /healthz must still
	// answer — it deliberately bypasses the drain intercept — and report
	// the drain with a 503 so balancers stop routing here.
	g.Clarens.SetDraining(true)
	code, body = httpGet(t, hs.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while draining: status %d, body %q", code, body)
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("parsing draining /healthz: %v", err)
	}
	if st.Status != "draining" || !st.Draining {
		t.Fatalf("draining /healthz = %+v", st)
	}
}

func TestDebugRPCsEndpoint(t *testing.T) {
	g, c := startGAE(t, twoSiteConfig())
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Call(ctx, "state.set", fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	code, body := httpGet(t, g.Clarens.BaseURL()+"/debug/rpcs?limit=2")
	if code != http.StatusOK {
		t.Fatalf("/debug/rpcs: status %d", code)
	}
	var out struct {
		Total uint64           `json:"total"`
		Spans []telemetry.Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("parsing /debug/rpcs: %v", err)
	}
	if out.Total != 3 {
		t.Fatalf("span total = %d, want 3", out.Total)
	}
	if len(out.Spans) != 2 {
		t.Fatalf("spans returned = %d, want limit 2", len(out.Spans))
	}
	for _, sp := range out.Spans {
		if sp.Method != "state.set" || sp.User != "alice" {
			t.Fatalf("span = %+v, want state.set by alice", sp)
		}
		if len(sp.Stages) == 0 || sp.Stages[0].Name != "handler" {
			t.Fatalf("span stages = %+v, want leading handler stage", sp.Stages)
		}
	}
}
