// Package telemetry is the serving stack's self-observability layer: a
// dependency-free metrics registry (atomic counters, gauges, and
// fixed-bucket histograms with percentile snapshots) plus a ring buffer
// of per-RPC trace spans. The paper's GAE is above all a *monitored*
// grid — MonALISA-style visibility is a headline service — and this
// package turns that lens on the serving process itself: journal fsync
// batches, retry/breaker churn, negotiation pass cost, and dedup-window
// activity all become scrapeable families on /metrics.
//
// Design constraints, in order:
//
//   - Hot-path cost: instrumented code pre-resolves metric handles once
//     (a *Counter/*Histogram field, nil when telemetry is off) so the
//     per-operation cost is one nil check plus one atomic op. Registry
//     lookups never sit inside a serving or negotiation loop.
//   - No dependencies: everything is stdlib; the Prometheus text
//     rendering is hand-rolled against the exposition format.
//   - Concurrency: all metric mutation is lock-free (atomics); the
//     registry lock is taken only on handle resolution and snapshot.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 for the value to stay monotone).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value (bytes of last snapshot, queue depth).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Observations are counted
// into the first bucket whose upper bound is >= the value; the last
// implicit bucket is +Inf. Quantiles are estimated by linear
// interpolation inside the owning bucket, which is exact enough for the
// p50/p95/p99 summaries the snapshot carries as long as the bucket grid
// brackets the distribution (DefBuckets spans 50µs–10s for latencies).
type Histogram struct {
	bounds []float64      // ascending upper bounds, +Inf excluded
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefBuckets is the default latency grid in seconds: exponential from
// 50µs to ~10s, sized for the serving stack's RPC and fsync latencies.
var DefBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
	250e-3, 500e-3, 1, 2.5, 5, 10,
}

// SizeBuckets is a grid for byte and record counts: exponential from 64
// to ~16M.
var SizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
}

// CountBuckets is a small-integer grid (batch records, matches per
// pass).
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-th quantile (0 < q < 1) by interpolating
// inside the bucket holding the target rank. Values in the +Inf bucket
// clamp to the top finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return quantileOf(h.bounds, counts, total, q)
}

func quantileOf(bounds []float64, counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: the best available answer is the top bound.
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return bounds[len(bounds)-1]
}

// kind tags what a family holds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one metric name: a kind, an optional label key, and the
// per-label-value instruments.
type family struct {
	name     string
	kind     string
	labelKey string
	buckets  []float64
	metrics  map[string]any // label value ("" when unlabeled) -> instrument
}

// Registry owns a deployment's metric families. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use,
// and a nil *Registry is a valid no-op sink: every handle it returns is
// nil, and nil instruments swallow their operations.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// get resolves (or creates) the instrument for name/label. Kind and
// label-key conflicts are programmer errors and panic.
func (r *Registry) get(name, kind, labelKey, label string, buckets []float64, make func() any) any {
	r.mu.RLock()
	f, ok := r.families[name]
	if ok {
		if m, ok := f.metrics[label]; ok {
			r.mu.RUnlock()
			return m
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok = r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, labelKey: labelKey, buckets: buckets, metrics: map[string]any{}}
		r.families[name] = f
	}
	if f.kind != kind || f.labelKey != labelKey {
		panic(fmt.Sprintf("telemetry: family %q redefined as %s{%s} (was %s{%s})", name, kind, labelKey, f.kind, f.labelKey))
	}
	m, ok := f.metrics[label]
	if !ok {
		m = make()
		f.metrics[label] = m
	}
	return m
}

// Counter resolves the unlabeled counter name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, kindCounter, "", "", nil, func() any { return new(Counter) }).(*Counter)
}

// LabeledCounter resolves the counter name{key=label}. Every call for
// one family must use the same key.
func (r *Registry) LabeledCounter(name, key, label string) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, kindCounter, key, label, nil, func() any { return new(Counter) }).(*Counter)
}

// Gauge resolves the unlabeled gauge name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, kindGauge, "", "", nil, func() any { return new(Gauge) }).(*Gauge)
}

// LabeledGauge resolves the gauge name{key=label}.
func (r *Registry) LabeledGauge(name, key, label string) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, kindGauge, key, label, nil, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram resolves the unlabeled histogram name with the given bucket
// bounds (nil selects DefBuckets). Bounds are fixed at first resolution.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, kindHistogram, "", "", buckets, func() any { return newHistogram(buckets) }).(*Histogram)
}

// LabeledHistogram resolves the histogram name{key=label}.
func (r *Registry) LabeledHistogram(name, key, label string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, kindHistogram, key, label, buckets, func() any { return newHistogram(buckets) }).(*Histogram)
}

// Metric is one instrument's state in a snapshot. Counters and gauges
// carry Value; histograms carry Count/Sum/quantile summaries plus the
// full bucket layout so scrapers can re-aggregate.
type Metric struct {
	Name     string  `json:"name"`
	Kind     string  `json:"kind"`
	LabelKey string  `json:"label_key,omitempty"`
	Label    string  `json:"label,omitempty"`
	Value    float64 `json:"value,omitempty"`

	Count  int64     `json:"count,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
	P50    float64   `json:"p50,omitempty"`
	P95    float64   `json:"p95,omitempty"`
	P99    float64   `json:"p99,omitempty"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
}

// Snapshot is a point-in-time copy of every registered metric, sorted
// by (name, label). It is the unit /metrics serves and harnesses fold
// into their reports.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot captures every metric. A nil registry yields an empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Metric
	for _, f := range r.families {
		for label, m := range f.metrics {
			met := Metric{Name: f.name, Kind: f.kind, LabelKey: f.labelKey, Label: label}
			switch v := m.(type) {
			case *Counter:
				met.Value = float64(v.Value())
			case *Gauge:
				met.Value = v.Value()
			case *Histogram:
				met.Count = v.Count()
				met.Sum = v.Sum()
				met.Bounds = v.bounds
				met.Counts = make([]int64, len(v.counts))
				var total int64
				for i := range v.counts {
					met.Counts[i] = v.counts[i].Load()
					total += met.Counts[i]
				}
				met.P50 = quantileOf(v.bounds, met.Counts, total, 0.50)
				met.P95 = quantileOf(v.bounds, met.Counts, total, 0.95)
				met.P99 = quantileOf(v.bounds, met.Counts, total, 0.99)
			}
			out = append(out, met)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Label < out[j].Label
	})
	return Snapshot{Metrics: out}
}

// Find returns the metric name{label} ("" label for unlabeled families).
func (s Snapshot) Find(name, label string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name && m.Label == label {
			return m, true
		}
	}
	return Metric{}, false
}

// Family returns every metric of one family, in label order.
func (s Snapshot) Family(name string) []Metric {
	var out []Metric
	for _, m := range s.Metrics {
		if m.Name == name {
			out = append(out, m)
		}
	}
	return out
}

// Value reads a counter or gauge value (0, false when absent).
func (s Snapshot) Value(name, label string) (float64, bool) {
	m, ok := s.Find(name, label)
	if !ok {
		return 0, false
	}
	return m.Value, true
}

// Total sums a family across labels: counter/gauge values plus
// histogram observation counts. It is what smoke checks use to decide a
// family is live.
func (s Snapshot) Total(name string) float64 {
	var t float64
	for _, m := range s.Metrics {
		if m.Name != name {
			continue
		}
		if m.Kind == kindHistogram {
			t += float64(m.Count)
		} else {
			t += m.Value
		}
	}
	return t
}
