package telemetry

import (
	"sync"
	"time"
)

// A Span is one RPC's trace: who called what, when, with which
// idempotency key, and how the time was spent across the serving
// stages (handler apply, journal append+fsync, ack). Spans are cheap
// records, not a distributed-tracing protocol: the ring exists so
// /debug/rpcs can answer "what has this server been doing" without a
// collector.
type Span struct {
	// RequestID is the call's idempotency key ("" for unstamped calls).
	RequestID string `json:"request_id,omitempty"`
	// Method is the fully-qualified RPC name ("scheduler.submit").
	Method string `json:"method"`
	User   string `json:"user,omitempty"`
	// Start is the wall-clock instant the server began the call.
	Start time.Time `json:"start"`
	// TotalMillis is the full server-side duration through ack.
	TotalMillis float64 `json:"total_ms"`
	// Stages breaks TotalMillis down; stage names are "handler",
	// "journal" (append + group-commit fsync), and "dedup" for window
	// hits answered without re-applying.
	Stages []Stage `json:"stages,omitempty"`
	// Err is the call's error text ("" on success).
	Err string `json:"error,omitempty"`
	// Dedup marks a duplicate suppressed by the idempotency window: the
	// recorded result was returned without re-applying.
	Dedup bool `json:"dedup,omitempty"`
	// Seq is the journal sequence the op was acknowledged under (0 when
	// storeless or deduplicated).
	Seq uint64 `json:"seq,omitempty"`
}

// Stage is one timed segment of a span.
type Stage struct {
	Name   string  `json:"name"`
	Millis float64 `json:"ms"`
}

// TraceRing is a fixed-capacity ring of the most recent spans. Adds are
// O(1) under a mutex; the expected write rate (one per mutating RPC) is
// far below contention range, and reads copy out so renderers never
// hold the lock.
type TraceRing struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total uint64
}

// NewTraceRing creates a ring holding the size most recent spans
// (default 256 when size <= 0).
func NewTraceRing(size int) *TraceRing {
	if size <= 0 {
		size = 256
	}
	return &TraceRing{buf: make([]Span, 0, size)}
}

// Add records one span. A nil ring drops it.
func (t *TraceRing) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
		t.next = (t.next + 1) % len(t.buf)
	}
	t.total++
	t.mu.Unlock()
}

// Total counts every span ever added, including those the ring has
// since overwritten.
func (t *TraceRing) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Recent returns up to limit spans, newest first (limit <= 0 means the
// whole ring).
func (t *TraceRing) Recent(limit int) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, 0, len(t.buf))
	// Oldest-first is the ring order starting at next.
	for i := 0; i < len(t.buf); i++ {
		out = append(out, t.buf[(t.next+i)%len(t.buf)])
	}
	t.mu.Unlock()
	// Reverse to newest-first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
