package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Handler serves a registry as /metrics: Prometheus text exposition by
// default, the JSON snapshot with ?format=json. GET and HEAD only.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "metrics endpoint is read-only", http.StatusMethodNotAllowed)
			return
		}
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(snap) //nolint:errcheck // best-effort write to client
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, snap)
	})
}

// TraceHandler serves a trace ring as /debug/rpcs: the most recent
// spans as JSON, newest first, ?limit=N to bound the count (default 50).
func TraceHandler(t *TraceRing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "trace endpoint is read-only", http.StatusMethodNotAllowed)
			return
		}
		limit := 50
		if s := req.URL.Query().Get("limit"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				limit = n
			}
		}
		w.Header().Set("Content-Type", "application/json")
		out := struct {
			Total uint64 `json:"total"`
			Spans []Span `json:"spans"`
		}{Total: t.Total(), Spans: t.Recent(limit)}
		if out.Spans == nil {
			out.Spans = []Span{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out) //nolint:errcheck // best-effort write to client
	})
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (untyped labels, one # TYPE line per family).
func WritePrometheus(w io.Writer, s Snapshot) {
	lastName := ""
	for _, m := range s.Metrics {
		if m.Name != lastName {
			fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind)
			lastName = m.Name
		}
		switch m.Kind {
		case kindHistogram:
			var cum int64
			for i, c := range m.Counts {
				cum += c
				le := "+Inf"
				if i < len(m.Bounds) {
					le = formatFloat(m.Bounds[i])
				}
				fmt.Fprintf(w, "%s_bucket{%s} %d\n", m.Name, promLabels(m, "le", le), cum)
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, promLabelBlock(m), formatFloat(m.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabelBlock(m), m.Count)
		default:
			fmt.Fprintf(w, "%s%s %s\n", m.Name, promLabelBlock(m), formatFloat(m.Value))
		}
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promLabels renders the metric's own label (if any) plus one extra
// pair, for histogram bucket lines.
func promLabels(m Metric, extraKey, extraVal string) string {
	var parts []string
	if m.LabelKey != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", m.LabelKey, escapeLabel(m.Label)))
	}
	parts = append(parts, fmt.Sprintf("%s=%q", extraKey, escapeLabel(extraVal)))
	return strings.Join(parts, ",")
}

// promLabelBlock renders "{key=\"label\"}" or "" for unlabeled metrics.
func promLabelBlock(m Metric) string {
	if m.LabelKey == "" {
		return ""
	}
	return fmt.Sprintf("{%s=%q}", m.LabelKey, escapeLabel(m.Label))
}

// ParseJSON decodes a snapshot previously served by Handler with
// format=json.
func ParseJSON(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: decoding snapshot: %w", err)
	}
	sort.Slice(s.Metrics, func(i, j int) bool {
		if s.Metrics[i].Name != s.Metrics[j].Name {
			return s.Metrics[i].Name < s.Metrics[j].Name
		}
		return s.Metrics[i].Label < s.Metrics[j].Label
	})
	return s, nil
}

// Scrape fetches baseURL's /metrics endpoint in JSON form and parses
// it. baseURL is the server root ("http://host:port").
func Scrape(ctx context.Context, baseURL string) (Snapshot, error) {
	url := strings.TrimRight(baseURL, "/") + "/metrics?format=json"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Snapshot{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: scraping %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Snapshot{}, fmt.Errorf("telemetry: scraping %s: HTTP %d", url, resp.StatusCode)
	}
	return ParseJSON(resp.Body)
}
