package telemetry

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	g := r.Gauge("depth")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			g.Set(42)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := g.Value(); got != 42 {
		t.Fatalf("gauge = %v, want 42", got)
	}
	// Resolving the same name yields the same instrument.
	if r.Counter("ops_total") != c {
		t.Fatal("re-resolved counter is a different instrument")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	r.Gauge("y").Set(1)
	r.Histogram("z", nil).Observe(0.5)
	var ring *TraceRing
	ring.Add(Span{Method: "m"})
	if got := ring.Recent(10); got != nil {
		t.Fatalf("nil ring Recent = %v, want nil", got)
	}
	if snap := r.Snapshot(); len(snap.Metrics) != 0 {
		t.Fatalf("nil registry snapshot has %d metrics", len(snap.Metrics))
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8, 16})
	// 100 observations uniform over (0, 10].
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got, want := h.Sum(), 505.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// p50 of uniform(0,10] is 5; bucket (4,8] interpolation should land
	// within the bucket.
	p50 := h.Quantile(0.50)
	if p50 < 4 || p50 > 8 {
		t.Fatalf("p50 = %v, want within (4,8]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 8 || p99 > 16 {
		t.Fatalf("p99 = %v, want within (8,16]", p99)
	}
	if p50 >= p99 {
		t.Fatalf("p50 %v >= p99 %v", p50, p99)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(100)
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %v, want top bound 2", got)
	}
}

func TestSnapshotAndQueries(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("rpc_requests_total", "method", "scheduler.submit").Add(3)
	r.LabeledCounter("rpc_requests_total", "method", "state.set").Add(5)
	r.Histogram("lat_seconds", nil).Observe(0.01)
	snap := r.Snapshot()
	if v, ok := snap.Value("rpc_requests_total", "state.set"); !ok || v != 5 {
		t.Fatalf("Value = %v,%v want 5,true", v, ok)
	}
	if got := snap.Total("rpc_requests_total"); got != 8 {
		t.Fatalf("Total = %v, want 8", got)
	}
	if got := snap.Total("lat_seconds"); got != 1 {
		t.Fatalf("histogram Total = %v, want 1 observation", got)
	}
	fam := snap.Family("rpc_requests_total")
	if len(fam) != 2 || fam[0].Label != "scheduler.submit" {
		t.Fatalf("Family = %+v, want 2 sorted metrics", fam)
	}
}

func TestHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("rpc_requests_total", "method", "state.set").Add(2)
	r.Histogram("rpc_latency_seconds", []float64{0.1, 1}).Observe(0.05)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	body := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		"# TYPE rpc_requests_total counter",
		`rpc_requests_total{method="state.set"} 2`,
		"# TYPE rpc_latency_seconds histogram",
		`rpc_latency_seconds_bucket{le="0.1"} 1`,
		`rpc_latency_seconds_bucket{le="+Inf"} 1`,
		"rpc_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, body)
		}
	}

	jbody := get(t, srv.URL+"/metrics?format=json")
	snap, err := ParseJSON(strings.NewReader(jbody))
	if err != nil {
		t.Fatalf("ParseJSON: %v", err)
	}
	if v, ok := snap.Value("rpc_requests_total", "state.set"); !ok || v != 2 {
		t.Fatalf("scraped Value = %v,%v want 2,true", v, ok)
	}
	m, ok := snap.Find("rpc_latency_seconds", "")
	if !ok || m.Count != 1 || len(m.Bounds) != 2 {
		t.Fatalf("scraped histogram = %+v", m)
	}
}

func TestScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("journal_appends_total").Add(7)
	mux := httptest.NewServer(Handler(r))
	defer mux.Close()
	// Scrape appends /metrics?format=json itself; serve under any path.
	snap, err := Scrape(context.Background(), mux.URL)
	if err != nil {
		t.Fatalf("Scrape: %v", err)
	}
	if v, _ := snap.Value("journal_appends_total", ""); v != 7 {
		t.Fatalf("scraped value = %v, want 7", v)
	}
}

func TestTraceRing(t *testing.T) {
	ring := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		ring.Add(Span{Method: fmt.Sprintf("m%d", i), Start: time.Now()})
	}
	if got := ring.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	recent := ring.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent len = %d, want 4", len(recent))
	}
	// Newest first: m9, m8, m7, m6.
	for i, want := range []string{"m9", "m8", "m7", "m6"} {
		if recent[i].Method != want {
			t.Fatalf("recent[%d] = %s, want %s", i, recent[i].Method, want)
		}
	}
	if got := ring.Recent(2); len(got) != 2 || got[0].Method != "m9" {
		t.Fatalf("Recent(2) = %+v", got)
	}
}

func TestTraceHandler(t *testing.T) {
	ring := NewTraceRing(8)
	ring.Add(Span{Method: "scheduler.submit", RequestID: "r1", TotalMillis: 1.5,
		Stages: []Stage{{Name: "handler", Millis: 1.0}, {Name: "journal", Millis: 0.5}}})
	srv := httptest.NewServer(TraceHandler(ring))
	defer srv.Close()
	body := get(t, srv.URL+"/debug/rpcs?limit=5")
	for _, want := range []string{`"scheduler.submit"`, `"r1"`, `"journal"`, `"total": 1`} {
		if !strings.Contains(body, want) {
			t.Fatalf("trace JSON missing %q:\n%s", want, body)
		}
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d:\n%s", url, resp.StatusCode, body)
	}
	return string(body)
}
