// Package fairshare implements time-aware fair-share arbitration for the
// GAE reproduction: hierarchical tenant/group usage accounting with
// exponentially-decayed CPU-second usage, Condor-style effective
// priorities (weight ÷ decayed usage) with a starvation guard, and small
// pluggable interfaces through which both layers of the stack consume the
// shared fairness state — the Condor-like execution service orders idle
// jobs by effective priority, and the Sphinx-like scheduler breaks
// site-selection ties by fair-share standing.
//
// The paper's stack schedules purely on static job priority and per-site
// estimates; nothing arbitrates between competing users, so one bursty
// tenant can starve the grid. Production schedulers (Condor's user
// priorities, SLURM's multifactor fair-share, KAI's time-aware fairness)
// all solve this the same way: accumulate each principal's recent
// resource consumption with an exponential decay, and hand the next free
// slot to whoever is furthest below their entitled share. This package
// is that accounting core. It depends only on vtime, so experiments
// drive it with a simulated clock and replay multi-hundred-second
// fairness scenarios in milliseconds.
package fairshare

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/vtime"
)

// Anonymous is the tenant that jobs with no owner are accounted to.
// Mapping ownerless work onto one real tenant (instead of ignoring it)
// means it accrues usage and allocation history like anyone else —
// submitting without an owner is not a way around fair-share.
const Anonymous = "anonymous"

// Defaults used when Config fields are zero.
const (
	// DefaultHalfLife is the usage decay half-life: a tenant's recorded
	// CPU-seconds count half after this much (virtual) time.
	DefaultHalfLife = 10 * time.Minute
	// DefaultUsageScale is the decayed usage (CPU-seconds) at which a
	// tenant's effective priority halves relative to an idle tenant of
	// equal weight.
	DefaultUsageScale = 300
	// DefaultStarvationWindow is how long a job may sit idle before the
	// starvation guard promotes it ahead of effective-priority order.
	DefaultStarvationWindow = 5 * time.Minute
)

// Config parameterizes a Manager.
type Config struct {
	// Clock drives usage decay and the starvation guard. Required:
	// deployments pass the grid engine's simulated clock so fairness
	// evolves on virtual time.
	Clock vtime.Clock
	// HalfLife is the usage decay half-life. Zero selects
	// DefaultHalfLife; a negative value disables decay entirely (usage
	// accumulates forever — the "infinite memory" ablation).
	HalfLife time.Duration
	// UsageScale is the decayed usage that halves effective priority.
	// Zero selects DefaultUsageScale.
	UsageScale float64
	// StarvationWindow bounds how long any job waits regardless of its
	// owner's standing. Zero selects DefaultStarvationWindow; a negative
	// value disables the guard.
	StarvationWindow time.Duration
	// DefaultWeight is assigned to tenants first seen via RecordUsage or
	// ordering rather than SetTenant. Zero selects 1.
	DefaultWeight float64
	// DefaultGroup receives auto-registered tenants. Empty selects
	// "default".
	DefaultGroup string
	// TransferUsagePerMB is the CPU-second-equivalents of standing one
	// transferred MB accrues, making the fairness weight of data movement
	// an explicit policy choice in physical units. Zero leaves the
	// integration's fallback in force (the core wiring falls back to one
	// billed transfer credit = one CPU-second).
	TransferUsagePerMB float64
}

// TransferUsagePerMB exposes the configured MB→CPU-second exchange rate.
func (m *Manager) TransferUsagePerMB() float64 { return m.cfg.TransferUsagePerMB }

// account is one node of the accounting hierarchy: a group, a tenant, or
// a tenant's per-site usage bucket. Usage decays lazily: it is brought
// forward to the clock's current time whenever it is read or added to.
// rate is the aggregate inflow (CPU-seconds per second) of the open
// usage flows feeding this account; the lazy settle folds it in with the
// closed-form integral, so a million running jobs cost nothing between
// read points.
type account struct {
	weight float64
	usage  float64
	rate   float64
	last   time.Time
}

// tenantAccount adds group membership and a per-site usage breakdown.
type tenantAccount struct {
	account
	group string
	sites map[string]*account
}

// Manager is the central fair-share state: a two-level hierarchy of
// groups and tenants, each carrying exponentially-decayed CPU-second
// usage. All methods are safe for concurrent use.
type Manager struct {
	mu        sync.Mutex
	clock     vtime.Clock
	cfg       Config
	groups    map[string]*account
	tenants   map[string]*tenantAccount
	lastStart map[string]time.Time // most recent machine allocation per tenant

	// Effective priorities memoized for one clock instant: negotiation
	// sorts call EffectivePriority O(n log n) times with the clock frozen,
	// so each tenant's hierarchy walk happens once per tick instead of
	// once per comparison. Any usage or weight mutation clears the memo.
	// The map itself is recycled across invalidations (clear, not
	// reallocate): negotiation passes invalidate it on every completion,
	// and at million-job scale the per-pass make() showed up in profiles.
	epCache   map[string]float64
	epCacheAt time.Time
	epCacheOK bool
}

// NewManager creates a Manager. It panics if cfg.Clock is nil, since a
// fair-share state without a time source cannot decay.
func NewManager(cfg Config) *Manager {
	if cfg.Clock == nil {
		panic("fairshare: Config.Clock is required")
	}
	if cfg.HalfLife == 0 {
		cfg.HalfLife = DefaultHalfLife
	}
	if cfg.UsageScale <= 0 {
		cfg.UsageScale = DefaultUsageScale
	}
	if cfg.StarvationWindow == 0 {
		cfg.StarvationWindow = DefaultStarvationWindow
	}
	if cfg.DefaultWeight <= 0 {
		cfg.DefaultWeight = 1
	}
	if cfg.DefaultGroup == "" {
		cfg.DefaultGroup = "default"
	}
	return &Manager{
		clock:     cfg.Clock,
		cfg:       cfg,
		groups:    make(map[string]*account),
		tenants:   make(map[string]*tenantAccount),
		lastStart: make(map[string]time.Time),
	}
}

// SetGroup declares (or reweights) a group. Weight must be positive.
func (m *Manager) SetGroup(name string, weight float64) {
	if weight <= 0 {
		panic("fairshare: non-positive group weight")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.groupLocked(name)
	g.weight = weight
	m.epCacheOK = false
}

// SetTenant declares (or moves/reweights) a tenant within a group. An
// empty group selects the default group; moving a tenant carries its
// accumulated usage from the old group to the new one, so neither group
// arbitrates on consumption it didn't (or did) generate. Weight must be
// positive.
func (m *Manager) SetTenant(name, group string, weight float64) {
	if weight <= 0 {
		panic("fairshare: non-positive tenant weight")
	}
	if group == "" {
		group = m.cfg.DefaultGroup
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.tenantLocked(name)
	t.weight = weight
	if t.group != group {
		now := m.clock.Now()
		m.decayLocked(&t.account, now)
		old := m.groupLocked(t.group)
		m.decayLocked(old, now)
		old.usage -= t.usage
		if old.usage < 0 {
			old.usage = 0
		}
		old.rate -= t.rate
		next := m.groupLocked(group)
		m.decayLocked(next, now)
		next.usage += t.usage
		next.rate += t.rate
		t.group = group
	}
	m.groupLocked(group)
	m.epCacheOK = false
}

// RecordUsage folds cpuSeconds of consumption by tenant at site into the
// decayed accounting state — the Sink implementation that Condor
// completion events and quota-ledger charges feed. Non-positive usage is
// ignored; an empty tenant accounts to Anonymous, and an empty site
// records tenant/group usage only.
func (m *Manager) RecordUsage(tenant, site string, cpuSeconds float64) {
	if cpuSeconds <= 0 {
		return
	}
	tenant = tenantName(tenant)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epCacheOK = false
	now := m.clock.Now()
	t := m.tenantLocked(tenant)
	m.decayLocked(&t.account, now)
	t.usage += cpuSeconds
	g := m.groupLocked(t.group)
	m.decayLocked(g, now)
	g.usage += cpuSeconds
	if site != "" {
		s, ok := t.sites[site]
		if !ok {
			s = &account{last: now}
			t.sites[site] = s
		}
		m.decayLocked(s, now)
		s.usage += cpuSeconds
	}
}

// Usage returns the tenant's decayed CPU-second usage (0 for unknown
// tenants).
func (m *Manager) Usage(tenant string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[tenantName(tenant)]
	if !ok {
		return 0
	}
	m.decayLocked(&t.account, m.clock.Now())
	return t.usage
}

// GroupUsage returns the group's decayed CPU-second usage, aggregated
// over its tenants (0 for unknown groups).
func (m *Manager) GroupUsage(group string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[group]
	if !ok {
		return 0
	}
	m.decayLocked(g, m.clock.Now())
	return g.usage
}

// SiteUsage returns the tenant's decayed usage accrued at one site — the
// SiteStanding implementation the scheduler uses as its site-selection
// tie-break.
func (m *Manager) SiteUsage(tenant, site string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[tenantName(tenant)]
	if !ok {
		return 0
	}
	s, ok := t.sites[site]
	if !ok {
		return 0
	}
	m.decayLocked(s, m.clock.Now())
	return s.usage
}

// EffectivePriority returns the tenant's Condor-style effective priority:
// the product of the tenant's and its group's weight-over-decayed-usage
// factors. An idle tenant scores groupWeight×tenantWeight; every
// UsageScale CPU-seconds of decayed usage halves the corresponding
// factor. Higher is better. Unknown tenants score as fresh default-weight
// tenants.
func (m *Manager) EffectivePriority(tenant string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.effectiveLocked(tenant)
}

func (m *Manager) effectiveLocked(tenant string) float64 {
	return m.effectiveAtLocked(tenant, m.clock.Now())
}

func (m *Manager) effectiveAtLocked(tenant string, now time.Time) float64 {
	if !m.epCacheOK || !m.epCacheAt.Equal(now) {
		if m.epCache == nil {
			m.epCache = make(map[string]float64)
		} else {
			clear(m.epCache)
		}
		m.epCacheAt = now
		m.epCacheOK = true
	}
	if ep, ok := m.epCache[tenant]; ok {
		return ep
	}
	// Read-only: unknown tenants score as fresh default-weight members of
	// the default group without being registered (registration happens on
	// RecordUsage/SetTenant, so a typo'd query can't mint ghost tenants).
	tw, tu := m.cfg.DefaultWeight, 0.0
	gw, gu := m.cfg.DefaultWeight, 0.0
	group := m.cfg.DefaultGroup
	if t, ok := m.tenants[tenantName(tenant)]; ok {
		m.decayLocked(&t.account, now)
		tw, tu, group = t.weight, t.usage, t.group
	}
	if g, ok := m.groups[group]; ok {
		m.decayLocked(g, now)
		gw, gu = g.weight, g.usage
	}
	u := m.cfg.UsageScale
	ep := tw * (u / (u + tu)) * gw * (u / (u + gu))
	m.epCache[tenant] = ep
	return ep
}

// decayLocked brings an account's usage forward to now: the recorded
// usage decays exponentially, and any constant-rate flow inflow over the
// elapsed window accrues in closed form. With u' = rate − λ·u and
// λ = ln2/HalfLife, the interval solution is
// u(now) = u·2^(−dt/HL) + rate·(HL/ln2)·(1 − 2^(−dt/HL)); with decay
// disabled it degenerates to u += rate·dt. When no flows feed the
// account (rate == 0) this is exactly the pre-flow settle, bit for bit.
func (m *Manager) decayLocked(a *account, now time.Time) {
	if a.last.IsZero() {
		a.last = now
		return
	}
	dt := now.Sub(a.last)
	if dt <= 0 {
		return
	}
	a.last = now
	if m.cfg.HalfLife < 0 {
		if a.rate != 0 {
			a.usage += a.rate * dt.Seconds()
		}
		return // decay disabled
	}
	if a.usage == 0 && a.rate == 0 {
		return // nothing to decay, nothing flowing in
	}
	d := math.Exp2(-float64(dt) / float64(m.cfg.HalfLife))
	u := a.usage * d
	if a.rate != 0 {
		tau := m.cfg.HalfLife.Seconds() / math.Ln2
		u += a.rate * tau * (1 - d)
	}
	a.usage = u
}

// groupLocked returns the named group, creating it with the default
// weight on first reference.
func (m *Manager) groupLocked(name string) *account {
	g, ok := m.groups[name]
	if !ok {
		g = &account{weight: m.cfg.DefaultWeight}
		m.groups[name] = g
	}
	return g
}

// tenantName maps the empty owner onto the Anonymous tenant.
func tenantName(s string) string {
	if s == "" {
		return Anonymous
	}
	return s
}

// tenantLocked returns the named tenant, auto-registering unknown ones in
// the default group with the default weight.
func (m *Manager) tenantLocked(name string) *tenantAccount {
	name = tenantName(name)
	t, ok := m.tenants[name]
	if !ok {
		t = &tenantAccount{
			account: account{weight: m.cfg.DefaultWeight},
			group:   m.cfg.DefaultGroup,
			sites:   make(map[string]*account),
		}
		m.tenants[name] = t
		m.groupLocked(t.group)
	}
	return t
}

// Standing is one tenant's snapshot in the fairness state.
type Standing struct {
	Tenant     string
	Group      string
	Weight     float64
	Usage      float64 // decayed CPU-seconds
	GroupUsage float64
	Effective  float64 // effective priority, higher is better
}

// Standings snapshots every known tenant, sorted by name — the fairness
// view the simulator emits per tick.
func (m *Manager) Standings() []Standing {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clock.Now()
	names := make([]string, 0, len(m.tenants))
	for name := range m.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Standing, 0, len(names))
	for _, name := range names {
		t := m.tenants[name]
		m.decayLocked(&t.account, now)
		g := m.groupLocked(t.group)
		m.decayLocked(g, now)
		out = append(out, Standing{
			Tenant:     name,
			Group:      t.group,
			Weight:     t.weight,
			Usage:      t.usage,
			GroupUsage: g.usage,
			Effective:  m.effectiveAtLocked(name, now),
		})
	}
	return out
}
