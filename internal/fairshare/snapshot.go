package fairshare

import (
	"sort"
	"time"

	"repro/internal/durable"
)

// Export serializes the accounting hierarchy for the durable snapshot
// codec. Every account is first settled (decayed to the clock's current
// instant), so two exports of the same logical state at the same clock
// reading are identical — the canonical form the recovery suite compares.
func (m *Manager) Export() *durable.FairShareState {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clock.Now()
	st := &durable.FairShareState{}

	groups := make([]string, 0, len(m.groups))
	for name := range m.groups {
		groups = append(groups, name)
	}
	sort.Strings(groups)
	for _, name := range groups {
		g := m.groups[name]
		m.decayLocked(g, now)
		st.Groups = append(st.Groups, durable.FairShareAccount{
			Name: name, Weight: g.weight, Usage: g.usage, Last: g.last,
		})
	}

	tenants := make([]string, 0, len(m.tenants))
	for name := range m.tenants {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	for _, name := range tenants {
		t := m.tenants[name]
		m.decayLocked(&t.account, now)
		ft := durable.FairShareTenant{
			FairShareAccount: durable.FairShareAccount{
				Name: name, Weight: t.weight, Usage: t.usage, Last: t.last,
			},
			Group:     t.group,
			LastStart: m.lastStart[name],
		}
		sites := make([]string, 0, len(t.sites))
		for s := range t.sites {
			sites = append(sites, s)
		}
		sort.Strings(sites)
		for _, s := range sites {
			a := t.sites[s]
			m.decayLocked(a, now)
			ft.Sites = append(ft.Sites, durable.FairShareAccount{
				Name: s, Weight: a.weight, Usage: a.usage, Last: a.last,
			})
		}
		st.Tenants = append(st.Tenants, ft)
	}
	return st
}

// Restore overwrites the accounting hierarchy with an exported state.
// Configuration (half-life, scale, weights of accounts not in the export)
// is untouched: it comes from the deployment's Config, not the snapshot.
func (m *Manager) Restore(st *durable.FairShareState) {
	if st == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epCacheOK = false
	m.groups = make(map[string]*account, len(st.Groups))
	m.tenants = make(map[string]*tenantAccount, len(st.Tenants))
	m.lastStart = make(map[string]time.Time)
	for _, g := range st.Groups {
		m.groups[g.Name] = &account{weight: g.Weight, usage: g.Usage, last: g.Last}
	}
	for _, t := range st.Tenants {
		ta := &tenantAccount{
			account: account{weight: t.Weight, usage: t.Usage, last: t.Last},
			group:   t.Group,
			sites:   make(map[string]*account, len(t.Sites)),
		}
		for _, s := range t.Sites {
			ta.sites[s.Name] = &account{weight: s.Weight, usage: s.Usage, last: s.Last}
		}
		m.tenants[t.Name] = ta
		if !t.LastStart.IsZero() {
			m.lastStart[t.Name] = t.LastStart
		}
		// Ensure the tenant's group exists even if it carried no usage.
		if _, ok := m.groups[ta.group]; !ok {
			m.groups[ta.group] = &account{weight: m.cfg.DefaultWeight}
		}
	}
}
