package fairshare

import (
	"reflect"
	"time"
)

// IsNil reports whether a policy interface value is nil or wraps a
// typed-nil pointer (e.g. a nil *Manager stored in a Ranker). Integration
// points use it so a typed nil means "no policy", not a crash — the
// subtle rule lives in one place instead of being re-derived per caller.
func IsNil(v any) bool {
	if v == nil {
		return true
	}
	rv := reflect.ValueOf(v)
	return rv.Kind() == reflect.Pointer && rv.IsNil()
}

// JobRef is the ordering view of one queued job: everything a fair-share
// policy may consider when deciding which idle job the next free machine
// goes to. The execution service builds these from its queue; the policy
// never sees execution-service internals.
type JobRef struct {
	Owner          string    // submitting tenant
	StaticPriority int       // the job ad's static priority (larger first)
	Submitted      time.Time // when the job entered the queue
	Seq            int       // submission sequence, the final FIFO tie-break
}

// Ranker orders competing idle jobs. Less reports whether a should be
// offered a machine before b; implementations must be a strict weak
// ordering so sorts are well-defined.
type Ranker interface {
	Less(a, b JobRef) bool
}

// TickRanker is the form callers should prefer when comparing pairs: the
// caller captures one timestamp and uses it for the whole ordering pass,
// so the comparator stays a strict weak ordering even on a clock that
// advances mid-sort (a real-time vtime.Clock). Less alone re-reads the
// clock per comparison, which is only safe on a frozen simulated clock.
type TickRanker interface {
	Ranker
	LessAt(now time.Time, a, b JobRef) bool
}

// SortKey is one job's precomputed standing at one instant; together with
// the JobRef's static fields it fully determines negotiation order.
type SortKey struct {
	Starved   bool
	Effective float64
}

// KeyRanker is the bulk form sorts should prefer: all keys are computed
// in one locked pass and the sort itself runs lock-free via LessKeys —
// O(n) lock operations instead of O(n log n).
type KeyRanker interface {
	TickRanker
	SortKeysAt(now time.Time, refs []JobRef) []SortKey
}

// SortKeysAt computes each ref's standing at the given instant in a
// single locked pass. Among a starved tenant's refs, only the oldest is
// marked Starved: promoting one job per tenant per pass bounds the guard
// to its purpose — guaranteeing progress — instead of handing a starved
// tenant's whole backlog every machine that frees in the same cycle.
func (m *Manager) SortKeysAt(now time.Time, refs []JobRef) []SortKey {
	keys := make([]SortKey, len(refs))
	m.mu.Lock()
	defer m.mu.Unlock()
	var oldest map[string]int // starved owner → index of their oldest ref
	for i, r := range refs {
		keys[i].Effective = m.effectiveAtLocked(r.Owner, now)
		if m.cfg.StarvationWindow > 0 && m.starvedLocked(r, now) {
			if oldest == nil {
				oldest = make(map[string]int)
			}
			owner := tenantName(r.Owner)
			if j, ok := oldest[owner]; !ok || olderRef(r, refs[j]) {
				oldest[owner] = i
			}
		}
	}
	for _, i := range oldest {
		keys[i].Starved = true
	}
	return keys
}

// olderRef reports whether a entered the queue before b.
func olderRef(a, b JobRef) bool {
	if !a.Submitted.Equal(b.Submitted) {
		return a.Submitted.Before(b.Submitted)
	}
	return a.Seq < b.Seq
}

// LessKeys orders two jobs by their precomputed keys with exactly the
// tie-breaks LessAt applies.
func LessKeys(a, b JobRef, ka, kb SortKey) bool {
	if ka.Starved != kb.Starved {
		return ka.Starved
	}
	if ka.Starved { // both starved: strict FIFO so the oldest progresses
		if !a.Submitted.Equal(b.Submitted) {
			return a.Submitted.Before(b.Submitted)
		}
		return a.Seq < b.Seq
	}
	// Exact comparison keeps the order a strict weak ordering (an epsilon
	// band would break transitivity of equivalence); tenants with
	// identical weights and usage produce bitwise-equal priorities, so
	// equal standing still falls through to the static tie-breaks.
	if ka.Effective != kb.Effective {
		return ka.Effective > kb.Effective
	}
	if a.StaticPriority != b.StaticPriority {
		return a.StaticPriority > b.StaticPriority
	}
	if !a.Submitted.Equal(b.Submitted) {
		return a.Submitted.Before(b.Submitted)
	}
	return a.Seq < b.Seq
}

// Sink receives consumed usage. The execution service reports the
// CPU-seconds of each job reaching a terminal state; the quota service's
// ledger subscribers report charged usage.
type Sink interface {
	RecordUsage(tenant, site string, cpuSeconds float64)
}

// SiteStanding exposes per-site fair-share standing — the scheduler's
// site-selection tie-break: among sites with near-equal estimated cost,
// prefer the one where the tenant has consumed the least recent usage.
type SiteStanding interface {
	SiteUsage(tenant, site string) float64
}

// StartObserver receives job-start notifications from the execution
// service. The starvation guard needs them to distinguish a tenant that
// is backlogged but being served (a burst working its way through) from
// one that is actually starved: only the latter's jobs are promoted.
type StartObserver interface {
	ObserveStart(tenant string, at time.Time)
}

// ObserveStart records that tenant was allocated a machine at the given
// time. Empty tenants account to Anonymous.
func (m *Manager) ObserveStart(tenant string, at time.Time) {
	tenant = tenantName(tenant)
	m.mu.Lock()
	defer m.mu.Unlock()
	if at.After(m.lastStart[tenant]) {
		m.lastStart[tenant] = at
	}
}

// Less implements Ranker with the manager's time-aware policy:
//
//  1. Starvation guard: each starved tenant's oldest queued job precedes
//     any non-starved job; among those, oldest first. A tenant is starved
//     when the job has waited longer than the configured window AND the
//     tenant has not been allocated any machine within that window (per
//     ObserveStart). Serving one job per starved tenant per pass, and
//     treating a backlogged-but-served burst as not starved, keeps the
//     guard a progress guarantee rather than a way to monopolize the
//     pool. The guard is evaluated over the refs considered together, so
//     pairwise Less sees a ref as its owner's oldest within that pair.
//  2. Effective priority of the owning tenant, higher first.
//  3. The job's static priority, higher first.
//  4. Submission order (time, then sequence) — FIFO.
//
// Step 2 is what makes the queue time-aware: as a bursty tenant's decayed
// usage grows, its remaining jobs sink below other tenants' regardless of
// static priority.
func (m *Manager) Less(a, b JobRef) bool {
	return m.LessAt(m.clock.Now(), a, b)
}

// LessAt is Less evaluated at an explicit instant. It is defined in
// terms of SortKeysAt/LessKeys, so pairwise comparison and bulk key
// sorting can never disagree.
func (m *Manager) LessAt(now time.Time, a, b JobRef) bool {
	if a == b {
		return false // irreflexive, and the oldest-starved pick needs distinct refs
	}
	keys := m.SortKeysAt(now, []JobRef{a, b})
	return LessKeys(a, b, keys[0], keys[1])
}

// starvedLocked reports whether the job's wait and its owner's allocation
// drought both exceed the starvation window.
func (m *Manager) starvedLocked(r JobRef, now time.Time) bool {
	if now.Sub(r.Submitted) < m.cfg.StarvationWindow {
		return false
	}
	last, ok := m.lastStart[tenantName(r.Owner)]
	return !ok || now.Sub(last) >= m.cfg.StarvationWindow
}
