package fairshare

import (
	"math"
	"testing"
	"time"

	"repro/internal/vtime"
)

func newTestManager(cfg Config) (*Manager, *vtime.SimClock) {
	clock := vtime.NewSimClock(time.Time{})
	cfg.Clock = clock
	return NewManager(cfg), clock
}

func TestNewManagerRequiresClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil clock accepted")
		}
	}()
	NewManager(Config{})
}

func TestUsageDecaysWithHalfLife(t *testing.T) {
	m, clock := newTestManager(Config{HalfLife: time.Minute})
	m.RecordUsage("alice", "caltech", 100)
	if u := m.Usage("alice"); math.Abs(u-100) > 1e-9 {
		t.Fatalf("fresh usage = %v", u)
	}
	clock.Advance(time.Minute)
	if u := m.Usage("alice"); math.Abs(u-50) > 1e-9 {
		t.Fatalf("usage after one half-life = %v, want 50", u)
	}
	clock.Advance(time.Minute)
	if u := m.Usage("alice"); math.Abs(u-25) > 1e-9 {
		t.Fatalf("usage after two half-lives = %v, want 25", u)
	}
	// Per-site and group usage decay on the same schedule.
	if u := m.SiteUsage("alice", "caltech"); math.Abs(u-25) > 1e-9 {
		t.Fatalf("site usage = %v, want 25", u)
	}
	if u := m.GroupUsage("default"); math.Abs(u-25) > 1e-9 {
		t.Fatalf("group usage = %v, want 25", u)
	}
}

func TestNegativeHalfLifeDisablesDecay(t *testing.T) {
	m, clock := newTestManager(Config{HalfLife: -1})
	m.RecordUsage("alice", "", 100)
	clock.Advance(24 * time.Hour)
	if u := m.Usage("alice"); math.Abs(u-100) > 1e-9 {
		t.Fatalf("usage decayed despite HalfLife<0: %v", u)
	}
}

func TestEffectivePriorityWeightOverUsage(t *testing.T) {
	m, _ := newTestManager(Config{UsageScale: 100})
	m.SetTenant("alice", "", 1)
	m.SetTenant("bob", "", 1)
	if ea, eb := m.EffectivePriority("alice"), m.EffectivePriority("bob"); math.Abs(ea-eb) > 1e-12 {
		t.Fatalf("idle equal-weight tenants differ: %v vs %v", ea, eb)
	}
	m.RecordUsage("alice", "", 100) // one UsageScale halves the tenant factor
	ea, eb := m.EffectivePriority("alice"), m.EffectivePriority("bob")
	if ea >= eb {
		t.Fatalf("used tenant not deprioritized: alice %v, bob %v", ea, eb)
	}
	// alice's group also absorbed the usage; bob shares the group, so the
	// ratio reflects only the tenant factor: 1/2.
	if r := ea / eb; math.Abs(r-0.5) > 1e-9 {
		t.Fatalf("priority ratio = %v, want 0.5", r)
	}
}

func TestEffectivePriorityHierarchy(t *testing.T) {
	m, _ := newTestManager(Config{UsageScale: 100})
	m.SetGroup("atlas", 3)
	m.SetGroup("cms", 1)
	m.SetTenant("a1", "atlas", 1)
	m.SetTenant("c1", "cms", 1)
	if ea, ec := m.EffectivePriority("a1"), m.EffectivePriority("c1"); math.Abs(ea/ec-3) > 1e-9 {
		t.Fatalf("idle group-weighted ratio = %v, want 3", ea/ec)
	}
	// Usage by a sibling drags down the whole group.
	m.SetTenant("a2", "atlas", 1)
	m.RecordUsage("a2", "", 300)
	ea, ec := m.EffectivePriority("a1"), m.EffectivePriority("c1")
	if math.Abs(ea/ec-0.75) > 1e-9 { // 3 × 100/(100+300) = 0.75
		t.Fatalf("post-sibling-usage ratio = %v, want 0.75", ea/ec)
	}
}

func TestLessOrdersByEffectivePriority(t *testing.T) {
	m, clock := newTestManager(Config{UsageScale: 100})
	epoch := clock.Now()
	a := JobRef{Owner: "alice", Submitted: epoch, Seq: 1}
	b := JobRef{Owner: "bob", Submitted: epoch, Seq: 2}
	// Equal standing: FIFO by sequence.
	if !m.Less(a, b) || m.Less(b, a) {
		t.Fatal("equal standing should fall back to FIFO")
	}
	m.RecordUsage("alice", "", 500)
	if !m.Less(b, a) || m.Less(a, b) {
		t.Fatal("bob should precede the heavy user alice")
	}
	// Static priority only breaks effective-priority ties.
	hot := JobRef{Owner: "alice", StaticPriority: 99, Submitted: epoch, Seq: 3}
	if m.Less(hot, b) {
		t.Fatal("static priority must not override fair-share standing")
	}
	aHot := JobRef{Owner: "alice", StaticPriority: 1, Submitted: epoch, Seq: 4}
	aCold := JobRef{Owner: "alice", Submitted: epoch, Seq: 5}
	if !m.Less(aHot, aCold) {
		t.Fatal("same owner: higher static priority first")
	}
}

func TestStarvationGuard(t *testing.T) {
	m, clock := newTestManager(Config{UsageScale: 100, StarvationWindow: time.Minute})
	old := JobRef{Owner: "heavy", Submitted: clock.Now(), Seq: 1}
	m.RecordUsage("heavy", "", 1e6) // heavy is far beyond its share
	clock.Advance(2 * time.Minute)
	fresh := JobRef{Owner: "light", Submitted: clock.Now(), Seq: 2}
	if !m.Less(old, fresh) {
		t.Fatal("starved job should outrank any fresh job")
	}
	// Guard disabled: standing decides again.
	m2, clock2 := newTestManager(Config{UsageScale: 100, StarvationWindow: -1})
	old2 := JobRef{Owner: "heavy", Submitted: clock2.Now(), Seq: 1}
	m2.RecordUsage("heavy", "", 1e6)
	clock2.Advance(2 * time.Minute)
	fresh2 := JobRef{Owner: "light", Submitted: clock2.Now(), Seq: 2}
	if m2.Less(old2, fresh2) {
		t.Fatal("with the guard disabled the light tenant should win")
	}
	// Two starved jobs: strict FIFO.
	clock.Advance(time.Hour)
	s1 := JobRef{Owner: "light", Submitted: clock.Now().Add(-3 * time.Hour), Seq: 9}
	s2 := JobRef{Owner: "light", Submitted: clock.Now().Add(-2 * time.Hour), Seq: 3}
	if !m.Less(s1, s2) || m.Less(s2, s1) {
		t.Fatal("starved jobs must order oldest-first")
	}
}

func TestServedTenantIsNotStarved(t *testing.T) {
	m, clock := newTestManager(Config{UsageScale: 100, StarvationWindow: time.Minute})
	old := JobRef{Owner: "burst", Submitted: clock.Now(), Seq: 1}
	clock.Advance(2 * time.Minute)
	// burst keeps receiving machines, so its aged backlog is merely
	// queued, not starved — effective priority must decide instead.
	m.ObserveStart("burst", clock.Now())
	m.RecordUsage("burst", "", 500)
	fresh := JobRef{Owner: "light", Submitted: clock.Now(), Seq: 2}
	if m.Less(old, fresh) {
		t.Fatal("backlogged-but-served tenant must not jump the queue via the guard")
	}
	if !m.Less(fresh, old) {
		t.Fatal("light tenant should win on effective priority")
	}
}

func TestStarvationGuardPromotesOneJobPerTenant(t *testing.T) {
	m, clock := newTestManager(Config{UsageScale: 100, StarvationWindow: time.Minute})
	epoch := clock.Now()
	m.RecordUsage("heavy", "", 1000) // heavy would lose on effective priority
	clock.Advance(2 * time.Minute)
	now := clock.Now()
	refs := []JobRef{
		{Owner: "heavy", Submitted: epoch, Seq: 1},
		{Owner: "heavy", Submitted: epoch, Seq: 2},
		{Owner: "fresh", Submitted: now, Seq: 3},
	}
	keys := m.SortKeysAt(now, refs)
	if !keys[0].Starved || keys[1].Starved || keys[2].Starved {
		t.Fatalf("starved flags = %+v, want only heavy's oldest", keys)
	}
	// Oldest starved job leads; the rest of heavy's backlog still yields
	// to the fresh tenant on effective priority.
	if !LessKeys(refs[0], refs[2], keys[0], keys[2]) {
		t.Fatal("oldest starved job should precede the fresh job")
	}
	if LessKeys(refs[1], refs[2], keys[1], keys[2]) {
		t.Fatal("heavy's second job must not ride the guard past the fresh tenant")
	}
}

func TestSortKeysMatchPairwiseOrder(t *testing.T) {
	m, clock := newTestManager(Config{UsageScale: 100, StarvationWindow: time.Minute})
	epoch := clock.Now()
	m.RecordUsage("heavy", "", 800)
	m.RecordUsage("mid", "", 100)
	clock.Advance(90 * time.Second)
	now := clock.Now()
	refs := []JobRef{
		{Owner: "heavy", StaticPriority: 9, Submitted: epoch, Seq: 1}, // starved (no starts)
		{Owner: "mid", Submitted: now, Seq: 2},
		{Owner: "fresh", Submitted: now, Seq: 3},
		{Owner: "heavy", StaticPriority: 2, Submitted: now, Seq: 4},
		{Owner: "fresh", StaticPriority: 5, Submitted: now, Seq: 5},
	}
	keys := m.SortKeysAt(now, refs)
	for i := range refs {
		for j := range refs {
			got := LessKeys(refs[i], refs[j], keys[i], keys[j])
			want := m.LessAt(now, refs[i], refs[j])
			if got != want {
				t.Fatalf("LessKeys(%d,%d)=%v but LessAt=%v", i, j, got, want)
			}
		}
	}
}

func TestSetTenantMoveMigratesUsage(t *testing.T) {
	m, _ := newTestManager(Config{HalfLife: -1})
	m.SetGroup("g1", 1)
	m.SetGroup("g2", 1)
	m.SetTenant("x", "g1", 1)
	m.SetTenant("y", "g1", 1)
	m.RecordUsage("x", "", 1000)
	m.RecordUsage("y", "", 50)
	m.SetTenant("x", "g2", 1)
	if u := m.GroupUsage("g1"); math.Abs(u-50) > 1e-9 {
		t.Fatalf("old group usage = %v, want 50 (y's share only)", u)
	}
	if u := m.GroupUsage("g2"); math.Abs(u-1000) > 1e-9 {
		t.Fatalf("new group usage = %v, want 1000", u)
	}
	if u := m.Usage("x"); math.Abs(u-1000) > 1e-9 {
		t.Fatalf("tenant usage changed by move: %v", u)
	}
}

func TestEffectivePriorityReadDoesNotRegister(t *testing.T) {
	m, _ := newTestManager(Config{})
	m.SetTenant("real", "", 1)
	ghost := m.EffectivePriority("ghost")
	if real := m.EffectivePriority("real"); math.Abs(ghost-real) > 1e-12 {
		t.Fatalf("unknown tenant EP = %v, want fresh default %v", ghost, real)
	}
	for _, s := range m.Standings() {
		if s.Tenant == "ghost" {
			t.Fatal("EffectivePriority read minted a ghost tenant")
		}
	}
}

func TestLessAtUsesExplicitInstant(t *testing.T) {
	m, clock := newTestManager(Config{UsageScale: 100, StarvationWindow: time.Minute})
	a := JobRef{Owner: "x", Submitted: clock.Now(), Seq: 1}
	b := JobRef{Owner: "y", Submitted: clock.Now(), Seq: 2}
	m.RecordUsage("x", "", 500)
	// At the current instant, y wins on effective priority.
	if m.LessAt(clock.Now(), a, b) {
		t.Fatal("heavy x should not precede y now")
	}
	// At an instant two windows in the future, a has starved: the explicit
	// timestamp — not the clock — must decide.
	future := clock.Now().Add(2 * time.Minute)
	if !m.LessAt(future, a, b) {
		t.Fatal("starved a should precede at the future instant")
	}
	// Less delegates to LessAt(clock.Now()).
	if m.Less(a, b) != m.LessAt(clock.Now(), a, b) {
		t.Fatal("Less and LessAt(now) disagree")
	}
}

func TestAnonymousOwnerCannotBypassFairShare(t *testing.T) {
	m, clock := newTestManager(Config{UsageScale: 100, StarvationWindow: time.Minute})
	// Ownerless work accounts to the Anonymous tenant: it accrues usage
	// and allocation history like anyone else.
	m.RecordUsage("", "siteA", 500)
	if u := m.Usage(Anonymous); math.Abs(u-500) > 1e-9 {
		t.Fatalf("anonymous usage = %v", u)
	}
	if u := m.Usage(""); math.Abs(u-500) > 1e-9 {
		t.Fatalf("empty-name query = %v", u)
	}
	submitted := clock.Now()
	clock.Advance(2 * time.Minute)
	m.ObserveStart("", clock.Now()) // ownerless work keeps being served
	old := JobRef{Owner: "", Submitted: submitted, Seq: 1}
	fresh := JobRef{Owner: "light", Submitted: clock.Now(), Seq: 2}
	if m.Less(old, fresh) {
		t.Fatal("ownerless job must not outrank a light tenant via the guard")
	}
	if !m.Less(fresh, old) {
		t.Fatal("light tenant should win on effective priority")
	}
}

func TestStandings(t *testing.T) {
	m, _ := newTestManager(Config{})
	m.SetGroup("atlas", 1)
	m.SetTenant("bob", "atlas", 1)
	m.SetTenant("alice", "", 1)
	m.RecordUsage("bob", "caltech", 50)
	st := m.Standings()
	if len(st) != 2 || st[0].Tenant != "alice" || st[1].Tenant != "bob" {
		t.Fatalf("standings = %+v", st)
	}
	if st[1].Group != "atlas" || math.Abs(st[1].Usage-50) > 1e-9 {
		t.Fatalf("bob standing = %+v", st[1])
	}
	if st[0].Effective <= st[1].Effective {
		t.Fatal("idle alice should outrank used bob")
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{10, 10, 10, 10}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal allocations: J = %v", j)
	}
	if j := JainIndex([]float64{100, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("single-winner: J = %v, want 1/n", j)
	}
	if j := JainIndex(nil); j != 0 {
		t.Fatalf("empty: J = %v", j)
	}
	if j := JainIndex([]float64{0, 0}); j != 0 {
		t.Fatalf("all-zero: J = %v", j)
	}
	mid := JainIndex([]float64{30, 20, 10})
	if mid <= 0.25 || mid >= 1 {
		t.Fatalf("skewed: J = %v, want strictly between 1/n and 1", mid)
	}
}

func TestMinShare(t *testing.T) {
	if s := MinShare([]float64{10, 10}); math.Abs(s-1) > 1e-12 {
		t.Fatalf("equal: %v", s)
	}
	if s := MinShare([]float64{100, 0}); s != 0 {
		t.Fatalf("starved: %v", s)
	}
	if s := MinShare(nil); s != 0 {
		t.Fatalf("empty: %v", s)
	}
}
