package fairshare

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/vtime"
)

// Lazy-vs-eager accrual equivalence: a manager fed through a usage flow
// (closed-form accrual settled at read points) must agree with a manager
// fed the same CPU through fine-grained eager RecordUsage calls — at
// randomized read points mid-flight within discretization tolerance, and
// at the terminal Close, which reconciles to the measured total.

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

func TestFlowLazyMatchesEagerAccrual(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const tick = 50 * time.Millisecond
	for trial := 0; trial < 12; trial++ {
		clkL := vtime.NewSimClock(time.Time{})
		clkE := vtime.NewSimClock(time.Time{})
		halfLife := time.Minute
		if trial%3 == 2 {
			halfLife = -1 // decay disabled: totals must agree almost exactly
		}
		lazy := NewManager(Config{Clock: clkL, HalfLife: halfLife})
		eager := NewManager(Config{Clock: clkE, HalfLife: halfLife})

		rate := 0.5 + rng.Float64()
		flow := lazy.OpenFlow("alice", "cern", rate)
		var accrued float64 // ground-truth CPU delivered, tick by tick

		// Random piecewise-constant rate schedule, advanced in lockstep.
		elapsed := time.Duration(0)
		horizon := 30 * time.Second
		nextChange := time.Duration(1+rng.Intn(5)) * time.Second
		nextRead := time.Duration(1+rng.Intn(3)) * time.Second
		for elapsed < horizon {
			clkL.Advance(tick)
			clkE.Advance(tick)
			elapsed += tick
			accrued += rate * tick.Seconds()
			eager.RecordUsage("alice", "cern", rate*tick.Seconds())
			if elapsed >= nextChange {
				rate = rng.Float64() * 2
				flow.SetRate(rate)
				nextChange = elapsed + time.Duration(1+rng.Intn(5))*time.Second
			}
			if elapsed >= nextRead {
				nextRead = elapsed + time.Duration(1+rng.Intn(3))*time.Second
				tol := 1e-3
				if halfLife < 0 {
					tol = 1e-9 // only float association differs
				}
				if d := relDiff(lazy.Usage("alice"), eager.Usage("alice")); d > tol {
					t.Fatalf("trial %d at %v: usage lazy=%v eager=%v (rel %v)",
						trial, elapsed, lazy.Usage("alice"), eager.Usage("alice"), d)
				}
				if d := relDiff(lazy.EffectivePriority("alice"), eager.EffectivePriority("alice")); d > tol {
					t.Fatalf("trial %d at %v: ep lazy=%v eager=%v (rel %v)",
						trial, elapsed, lazy.EffectivePriority("alice"), eager.EffectivePriority("alice"), d)
				}
				if d := relDiff(lazy.SiteUsage("alice", "cern"), eager.SiteUsage("alice", "cern")); d > tol {
					t.Fatalf("trial %d at %v: site usage lazy=%v eager=%v (rel %v)",
						trial, elapsed, lazy.SiteUsage("alice", "cern"), eager.SiteUsage("alice", "cern"), d)
				}
			}
		}
		// Terminal reconciliation: Close settles the account to the
		// measured CPU; both managers have then been fed exactly accrued.
		flow.Close(accrued)
		tol := 1e-3
		if halfLife < 0 {
			tol = 1e-9
		}
		if d := relDiff(lazy.Usage("alice"), eager.Usage("alice")); d > tol {
			t.Fatalf("trial %d terminal: usage lazy=%v eager=%v (rel %v)",
				trial, lazy.Usage("alice"), eager.Usage("alice"), d)
		}
		if halfLife < 0 {
			if d := relDiff(lazy.Usage("alice"), accrued); d > 1e-9 {
				t.Fatalf("trial %d: closed flow usage %v != measured %v", trial, lazy.Usage("alice"), accrued)
			}
		}
	}
}

// TestFlowRateZeroAccruesNothing: a suspended flow (rate 0) must leave
// usage exactly flat across an arbitrarily long idle gap.
func TestFlowRateZeroAccruesNothing(t *testing.T) {
	clk := vtime.NewSimClock(time.Time{})
	m := NewManager(Config{Clock: clk, HalfLife: -1})
	f := m.OpenFlow("bob", "desy", 2.0)
	clk.Advance(10 * time.Second)
	got := m.Usage("bob")
	f.SetRate(0)
	clk.Advance(1000 * time.Hour)
	if m.Usage("bob") != got {
		t.Fatalf("suspended flow accrued: %v -> %v", got, m.Usage("bob"))
	}
	f.SetRate(2.0)
	clk.Advance(5 * time.Second)
	f.Close(30)
	if d := relDiff(m.Usage("bob"), 30); d > 1e-9 {
		t.Fatalf("closed usage %v, want 30", m.Usage("bob"))
	}
}
