package fairshare

// JainIndex computes Jain's fairness index over per-tenant allocations:
//
//	J = (Σxᵢ)² / (n·Σxᵢ²)
//
// J is 1 when every tenant received the same allocation and approaches
// 1/n when one tenant received everything. Non-positive allocations count
// as zero received share; an empty or all-zero input yields 0.
func JainIndex(allocations []float64) float64 {
	n := len(allocations)
	if n == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range allocations {
		if x < 0 {
			x = 0
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// MinShare returns the smallest tenant's fraction of its fair share: each
// allocation is divided by the mean, so 1 means the worst-off tenant got
// exactly its equal share and 0 means it was fully starved. Callers
// normalize allocations by entitlement first when weights differ.
func MinShare(allocations []float64) float64 {
	if len(allocations) == 0 {
		return 0
	}
	var sum float64
	for _, x := range allocations {
		if x > 0 {
			sum += x
		}
	}
	if sum == 0 {
		return 0
	}
	mean := sum / float64(len(allocations))
	min := allocations[0]
	for _, x := range allocations[1:] {
		if x < min {
			min = x
		}
	}
	if min < 0 {
		min = 0
	}
	return min / mean
}
