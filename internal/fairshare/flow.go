package fairshare

import "time"

// UsageFlow is one job's constant-rate usage stream. The execution
// service opens a flow when a job starts on a machine whose execution
// rate is analytically known (constant background load, sole occupant),
// adjusts the rate when the machine's picture changes, and closes it
// with the exact executed total when the job reaches a terminal state.
// Between those calls the owning accounts accrue the flow lazily, in
// closed form, at read points — replacing the per-tick RecordUsage
// drumbeat that otherwise forces a pool wake-up every tick for every
// running job.
type UsageFlow interface {
	// SetRate changes the flow's inflow (CPU-seconds per second of
	// simulated time) from now on; accrual so far is settled first.
	SetRate(rate float64)
	// Close settles the flow and reconciles it against the exact total
	// CPU-seconds the job actually executed: any residual between the
	// analytic integral and the measured total is applied as an
	// instantaneous usage correction, so terminal accounting matches the
	// eager path to float precision. A closed flow is inert.
	Close(total float64)
}

// FlowSink is the optional Sink extension for lazily-accrued usage.
// Pools probe for it with a type assertion; sinks that only implement
// RecordUsage keep receiving eager per-tick deltas.
type FlowSink interface {
	Sink
	OpenFlow(tenant, site string, rate float64) UsageFlow
}

// flow is the Manager's UsageFlow: it pins the tenant, group, and site
// accounts its rate feeds and tracks the undecayed total it has emitted
// so Close can reconcile against the measured CPU-seconds.
type flow struct {
	m       *Manager
	tenant  string
	site    string
	rate    float64
	since   time.Time // when the current rate took effect
	emitted float64   // undecayed CPU-seconds contributed so far
	closed  bool
}

// OpenFlow starts a constant-rate usage flow for tenant at site,
// implementing FlowSink. An empty tenant accounts to Anonymous; an empty
// site accrues tenant/group usage only. Negative rates are clamped to 0.
func (m *Manager) OpenFlow(tenant, site string, rate float64) UsageFlow {
	if rate < 0 {
		rate = 0
	}
	tenant = tenantName(tenant)
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &flow{m: m, tenant: tenant, site: site}
	m.setFlowRateLocked(f, rate, m.clock.Now())
	return f
}

// SetRate implements UsageFlow.
func (f *flow) SetRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	m := f.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if f.closed {
		return
	}
	m.setFlowRateLocked(f, rate, m.clock.Now())
}

// setFlowRateLocked settles the accounts f feeds through now at the old
// rate, then swaps in the new one. It is a Manager method — the mutex
// it runs under is m.mu, not anything of the flow's — so the *Locked
// suffix names whose lock is held.
func (m *Manager) setFlowRateLocked(f *flow, rate float64, now time.Time) {
	if !f.since.IsZero() {
		f.emitted += f.rate * now.Sub(f.since).Seconds()
	}
	delta := rate - f.rate
	f.rate = rate
	f.since = now
	if delta == 0 {
		return
	}
	m.epCacheOK = false
	t := m.tenantLocked(f.tenant)
	m.decayLocked(&t.account, now)
	t.rate += delta
	g := m.groupLocked(t.group)
	m.decayLocked(g, now)
	g.rate += delta
	if f.site != "" {
		s, ok := t.sites[f.site]
		if !ok {
			s = &account{last: now}
			t.sites[f.site] = s
		}
		m.decayLocked(s, now)
		s.rate += delta
	}
}

// Close implements UsageFlow.
func (f *flow) Close(total float64) {
	m := f.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if f.closed {
		return
	}
	now := m.clock.Now()
	m.setFlowRateLocked(f, 0, now)
	f.closed = true
	residual := total - f.emitted
	if residual == 0 {
		return
	}
	m.epCacheOK = false
	t := m.tenantLocked(f.tenant)
	m.decayLocked(&t.account, now)
	t.usage += residual
	if t.usage < 0 {
		t.usage = 0
	}
	g := m.groupLocked(t.group)
	m.decayLocked(g, now)
	g.usage += residual
	if g.usage < 0 {
		g.usage = 0
	}
	if f.site != "" {
		if s, ok := t.sites[f.site]; ok {
			m.decayLocked(s, now)
			s.usage += residual
			if s.usage < 0 {
				s.usage = 0
			}
		}
	}
}
