package workload

import "math"

// The paper's Figure 7 job is "a simple C++ program that calculates prime
// numbers over an input range", calibrated to take 283 seconds on a free
// CPU. PrimeJob models that: it carries the input range, knows how many
// CPU-seconds the computation takes on the reference processor (via a
// calibrated cost model), and can actually perform the computation (used
// by examples to produce a verifiable answer).

// PrimeJob is a prime-counting task over [From, To].
type PrimeJob struct {
	From, To int
}

// referenceRate is the calibrated sieve throughput of the reference
// (Mips = 1) processor in "candidates per second", chosen so the paper's
// range takes exactly 283 reference seconds.
const referenceRate = float64(PaperRangeTo-PaperRangeFrom) / 283.0

// The range used for the Figure 7 experiment.
const (
	PaperRangeFrom = 1
	PaperRangeTo   = 200_000_000
)

// PaperPrimeJob returns the Figure 7 job: 283 CPU-seconds on a free CPU.
func PaperPrimeJob() PrimeJob { return PrimeJob{From: PaperRangeFrom, To: PaperRangeTo} }

// CPUSeconds returns the job's cost on the reference processor.
func (j PrimeJob) CPUSeconds() float64 {
	if j.To <= j.From {
		return 0
	}
	return float64(j.To-j.From) / referenceRate
}

// CountPrimes actually counts primes in [From, To] with a segmented trial
// division over odd candidates — the real computation, for ranges small
// enough to run inside tests and examples.
func (j PrimeJob) CountPrimes() int {
	if j.To < 2 || j.To < j.From {
		return 0
	}
	from := j.From
	if from < 2 {
		from = 2
	}
	count := 0
	for n := from; n <= j.To; n++ {
		if isPrime(n) {
			count++
		}
	}
	return count
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	limit := int(math.Sqrt(float64(n)))
	for d := 3; d <= limit; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}
