package workload

// Multi-tenant fairness scenarios: deterministic submission schedules in
// which several tenants with different weights, static priorities, and
// arrival patterns compete for the same machines. The fairness simulator
// (cmd/gae-sim) and the fairness benchmark replay these on the simulated
// grid to show how the fair-share subsystem changes allocation over time.
// Schedules are fully deterministic — no randomness — so the emitted
// allocation history is byte-stable across runs.

import "fmt"

// TenantSpec is one tenant's demand pattern inside a scenario. A tenant
// may submit a burst (BurstJobs jobs all at StartTick) and/or a steady
// stream (SteadyJobs jobs, one every Every ticks, starting at StartTick).
type TenantSpec struct {
	Name     string
	Group    string
	Weight   float64
	Priority int // static job priority carried in the ad

	JobCPUSeconds float64 // work per job on a reference CPU

	BurstJobs  int // jobs submitted at once at StartTick
	SteadyJobs int // jobs submitted one per Every ticks
	Every      int // steady-arrival period in ticks
	StartTick  int
}

// GroupWeight assigns a fair-share weight to a tenant group.
type GroupWeight struct {
	Name   string
	Weight float64
}

// Submission is one job arrival: at Tick, Tenant submits a job of
// CPUSeconds work with the given static Priority.
type Submission struct {
	Tick       int
	Tenant     string
	Group      string
	Priority   int
	CPUSeconds float64
}

// FairnessScenario is a replayable multi-tenant contention scenario.
type FairnessScenario struct {
	Name        string
	Description string
	Tenants     []TenantSpec
	Groups      []GroupWeight // empty: every group weighs 1
	Machines    int           // machines in the primary pool
	// FlockMachines, when positive, adds a second pool of this many
	// machines and enables flocking from the primary pool to it — the
	// federated case, where one fairness state spans both pools.
	FlockMachines int
	Ticks         int // default simulation horizon (1 tick = 1 s)
}

// Validate rejects scenario specs that would silently distort the
// fairness metrics — a tenant that can never submit makes a low Jain
// index look like a scheduler regression instead of a spec typo.
func (s FairnessScenario) Validate() error {
	if s.Machines <= 0 {
		return fmt.Errorf("workload: scenario %q needs machines", s.Name)
	}
	for _, t := range s.Tenants {
		if t.JobCPUSeconds <= 0 {
			return fmt.Errorf("workload: scenario %q tenant %q needs positive JobCPUSeconds", s.Name, t.Name)
		}
		if t.SteadyJobs > 0 && t.Every <= 0 {
			return fmt.Errorf("workload: scenario %q tenant %q sets SteadyJobs without a positive Every", s.Name, t.Name)
		}
		if t.BurstJobs <= 0 && t.SteadyJobs <= 0 {
			return fmt.Errorf("workload: scenario %q tenant %q submits no jobs", s.Name, t.Name)
		}
	}
	return nil
}

// Submissions expands the scenario into its deterministic arrival
// schedule, ordered by tick, then by tenant declaration order, then by
// per-tenant sequence.
func (s FairnessScenario) Submissions() []Submission {
	var out []Submission
	// Expand tick by tick so same-tick arrivals keep declaration order
	// without a sort (sorting would need an extra tie-break key anyway).
	for tick := 0; tick <= s.lastArrival(); tick++ {
		for _, t := range s.Tenants {
			n := t.arrivalsAt(tick)
			for i := 0; i < n; i++ {
				out = append(out, Submission{
					Tick:       tick,
					Tenant:     t.Name,
					Group:      t.Group,
					Priority:   t.Priority,
					CPUSeconds: t.JobCPUSeconds,
				})
			}
		}
	}
	return out
}

// arrivalsAt reports how many jobs the tenant submits at tick.
func (t TenantSpec) arrivalsAt(tick int) int {
	n := 0
	if t.BurstJobs > 0 && tick == t.StartTick {
		n += t.BurstJobs
	}
	if t.SteadyJobs > 0 && t.Every > 0 && tick >= t.StartTick {
		if k := (tick - t.StartTick) / t.Every; k < t.SteadyJobs && (tick-t.StartTick)%t.Every == 0 {
			n++
		}
	}
	return n
}

// lastArrival is the latest tick at which any tenant submits.
func (s FairnessScenario) lastArrival() int {
	last := 0
	for _, t := range s.Tenants {
		end := t.StartTick
		if t.SteadyJobs > 0 && t.Every > 0 {
			end = t.StartTick + (t.SteadyJobs-1)*t.Every
		}
		if end > last {
			last = end
		}
	}
	return last
}

// FairnessScenarios returns the built-in scenario catalogue.
func FairnessScenarios() []FairnessScenario {
	return []FairnessScenario{
		{
			Name: "bursty-tenant",
			Description: "Four equal-weight tenants with equal total demand; " +
				"one dumps its entire demand as a burst at t=0 while the " +
				"others trickle. Fair-share should keep allocations near-equal.",
			Machines: 4,
			Ticks:    900,
			Tenants: []TenantSpec{
				{Name: "mallory", Weight: 1, JobCPUSeconds: 30, BurstJobs: 60},
				{Name: "alice", Weight: 1, JobCPUSeconds: 30, SteadyJobs: 60, Every: 10},
				{Name: "bob", Weight: 1, JobCPUSeconds: 30, SteadyJobs: 60, Every: 10},
				{Name: "carol", Weight: 1, JobCPUSeconds: 30, SteadyJobs: 60, Every: 10},
			},
		},
		{
			Name: "starvation-recovery",
			Description: "A flooding tenant submits at maximum static priority; " +
				"a meek tenant submits small low-priority jobs. Without " +
				"fair-share the meek tenant starves behind the flood; with it, " +
				"decayed usage and the starvation guard recover the meek jobs.",
			Machines: 2,
			Ticks:    900,
			Tenants: []TenantSpec{
				{Name: "flood", Weight: 1, Priority: 10, JobCPUSeconds: 60,
					BurstJobs: 30, SteadyJobs: 40, Every: 15},
				{Name: "meek", Weight: 1, Priority: 0, JobCPUSeconds: 30,
					SteadyJobs: 20, Every: 30},
			},
		},
		{
			Name: "weighted-groups",
			Description: "Group atlas (weight 3, two tenants) versus group cms " +
				"(weight 1, one tenant), all saturating the pool; allocations " +
				"should track group weights, not head counts.",
			Machines: 4,
			Ticks:    600,
			Groups: []GroupWeight{
				{Name: "atlas", Weight: 3},
				{Name: "cms", Weight: 1},
			},
			Tenants: []TenantSpec{
				{Name: "atlas-a", Group: "atlas", Weight: 1, JobCPUSeconds: 30, SteadyJobs: 120, Every: 5},
				{Name: "atlas-b", Group: "atlas", Weight: 1, JobCPUSeconds: 30, SteadyJobs: 120, Every: 5},
				{Name: "cms-a", Group: "cms", Weight: 1, JobCPUSeconds: 30, SteadyJobs: 120, Every: 5},
			},
		},
		{
			Name: "federated-flocking",
			Description: "All tenants submit to a one-machine pool that flocks " +
				"to a three-machine peer; a single fairness state spans the " +
				"federation, so the bursty tenant cannot monopolize the " +
				"overflow capacity either.",
			Machines:      1,
			FlockMachines: 3,
			Ticks:         900,
			Tenants: []TenantSpec{
				{Name: "dana", Weight: 1, JobCPUSeconds: 30, BurstJobs: 60},
				{Name: "erin", Weight: 1, JobCPUSeconds: 30, SteadyJobs: 60, Every: 10},
				{Name: "frank", Weight: 1, JobCPUSeconds: 30, SteadyJobs: 60, Every: 10},
				{Name: "grace", Weight: 1, JobCPUSeconds: 30, SteadyJobs: 60, Every: 10},
			},
		},
	}
}

// FairnessScenarioByName looks up a built-in scenario.
func FairnessScenarioByName(name string) (FairnessScenario, bool) {
	for _, s := range FairnessScenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return FairnessScenario{}, false
}
