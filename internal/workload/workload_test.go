package workload

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/estimator"
)

func TestParagonTraceDeterministic(t *testing.T) {
	a := ParagonTrace(ParagonConfig{Jobs: 50, Seed: 42})
	b := ParagonTrace(ParagonConfig{Jobs: 50, Seed: 42})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c := ParagonTrace(ParagonConfig{Jobs: 50, Seed: 43})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestParagonTraceShape(t *testing.T) {
	trace := ParagonTrace(ParagonConfig{Jobs: 500, Seed: 7})
	if len(trace) != 500 {
		t.Fatalf("len = %d", len(trace))
	}
	queues := map[string]bool{}
	var failures, interactive int
	for i, r := range trace {
		if err := r.Validate(); err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
		if r.RuntimeSeconds < 10 {
			t.Fatalf("record %d runtime %v below floor", i, r.RuntimeSeconds)
		}
		// Users over-request: requested hours exceed actual runtime.
		if r.ReqHours*3600 < r.RuntimeSeconds {
			t.Fatalf("record %d requested %.2fh < actual %.0fs", i, r.ReqHours, r.RuntimeSeconds)
		}
		if !r.Started.After(r.Submitted) && !r.Started.Equal(r.Submitted) {
			t.Fatalf("record %d started before submitted", i)
		}
		if !r.Completed.After(r.Started) {
			t.Fatalf("record %d completed before started", i)
		}
		queues[r.Queue] = true
		if !r.Succeeded {
			failures++
		}
		if r.JobType == "interactive" {
			interactive++
		}
	}
	if len(queues) < 4 {
		t.Fatalf("only %d queue classes used", len(queues))
	}
	if failures == 0 || failures > 60 {
		t.Fatalf("failures = %d, want ≈5%%", failures)
	}
	if interactive == 0 || interactive > 175 {
		t.Fatalf("interactive = %d, want ≈20%%", interactive)
	}
	// Submissions are time-ordered.
	for i := 1; i < len(trace); i++ {
		if trace[i].Submitted.Before(trace[i-1].Submitted) {
			t.Fatal("submissions out of order")
		}
	}
}

func TestParagonQueueClassesDiffer(t *testing.T) {
	trace := ParagonTrace(ParagonConfig{Jobs: 2000, Seed: 11})
	meanByQueue := map[string]float64{}
	countByQueue := map[string]int{}
	for _, r := range trace {
		meanByQueue[r.Queue] += r.RuntimeSeconds
		countByQueue[r.Queue]++
	}
	for q := range meanByQueue {
		meanByQueue[q] /= float64(countByQueue[q])
	}
	// Long queues must run much longer than short queues on average.
	if meanByQueue["q16l"] < 3*meanByQueue["q16s"] {
		t.Fatalf("q16l mean %v not >> q16s mean %v", meanByQueue["q16l"], meanByQueue["q16s"])
	}
	if meanByQueue["q64l"] < 3*meanByQueue["q64s"] {
		t.Fatalf("q64l mean %v not >> q64s mean %v", meanByQueue["q64l"], meanByQueue["q64s"])
	}
}

func TestParagonEmptyAndDefaults(t *testing.T) {
	if got := ParagonTrace(ParagonConfig{}); got != nil {
		t.Fatalf("zero jobs = %v", got)
	}
	trace := ParagonTrace(ParagonConfig{Jobs: 10, Seed: 1})
	if trace[0].Submitted.Year() != 1995 {
		t.Fatalf("default epoch year = %d", trace[0].Submitted.Year())
	}
}

func TestSplitHistoryTest(t *testing.T) {
	trace := ParagonTrace(ParagonConfig{Jobs: 130, Seed: 5})
	hist, test, err := SplitHistoryTest(trace, 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 100 || len(test) != 20 {
		t.Fatalf("split = %d/%d", len(hist), len(test))
	}
	for _, r := range test {
		if !r.Succeeded {
			t.Fatal("failed job in test set")
		}
	}
	if _, _, err := SplitHistoryTest(trace, 125, 20); err == nil {
		t.Fatal("oversized split accepted")
	}
	// Not enough successful jobs for the test set.
	allFail := make([]estimator.TaskRecord, 30)
	for i := range allFail {
		allFail[i] = estimator.TaskRecord{Queue: "q", RuntimeSeconds: 10}
	}
	if _, _, err := SplitHistoryTest(allFail, 10, 5); err == nil {
		t.Fatal("split with no successful test jobs accepted")
	}
}

func TestEstimatorOnParagonTrace(t *testing.T) {
	// End-to-end sanity: the history-based estimator on the synthetic
	// trace achieves a mean error comparable to the paper's 13.53%
	// (we accept anything under 40% here; the Figure 5 experiment pins
	// the tuned number).
	trace := ParagonTrace(ParagonConfig{Jobs: 130, Seed: 1995})
	hist, test, err := SplitHistoryTest(trace, 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	h := estimator.NewHistory(0)
	for _, r := range hist {
		if err := h.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	e := estimator.NewRuntimeEstimator(h)
	var actual, estimated []float64
	for _, r := range test {
		est, err := e.Estimate(r)
		if err != nil {
			t.Fatalf("estimating %+v: %v", r, err)
		}
		actual = append(actual, r.RuntimeSeconds)
		estimated = append(estimated, est.Seconds)
	}
	mape, err := estimator.MeanAbsolutePercentageError(actual, estimated)
	if err != nil {
		t.Fatal(err)
	}
	if mape > 60 {
		t.Fatalf("mean error %.1f%% — estimator is not learning the trace", mape)
	}
}

func TestPrimeJobCostModel(t *testing.T) {
	paper := PaperPrimeJob()
	if got := paper.CPUSeconds(); math.Abs(got-283) > 1e-9 {
		t.Fatalf("paper job = %v cpu-s, want 283", got)
	}
	// Cost scales linearly with range width.
	half := PrimeJob{From: PaperRangeFrom, To: PaperRangeFrom + (PaperRangeTo-PaperRangeFrom)/2}
	if got := half.CPUSeconds(); math.Abs(got-141.5) > 0.01 {
		t.Fatalf("half job = %v cpu-s, want 141.5", got)
	}
	if (PrimeJob{From: 10, To: 5}).CPUSeconds() != 0 {
		t.Fatal("inverted range has nonzero cost")
	}
}

func TestCountPrimes(t *testing.T) {
	cases := []struct {
		from, to, want int
	}{
		{1, 10, 4}, // 2 3 5 7
		{1, 100, 25},
		{90, 100, 1}, // 97
		{2, 2, 1},
		{14, 16, 0},
		{1, 1, 0},
		{10, 5, 0},
	}
	for _, c := range cases {
		got := PrimeJob{From: c.from, To: c.to}.CountPrimes()
		if got != c.want {
			t.Errorf("CountPrimes(%d..%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}
