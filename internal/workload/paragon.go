// Package workload synthesizes the inputs of the paper's evaluation:
// an SDSC Paragon-style accounting trace for the runtime-estimator
// experiment (Figure 5), the prime-counting test job of the steering
// experiment (Figure 7), and client request drivers for the service
// response-time experiment (Figure 6).
//
// The original trace — "accounting data from the Paragon Supercomputer at
// the San Diego Supercomputing Center ... collected by Allen Downey in
// 1995" — is not redistributable, so ParagonTrace generates a synthetic
// equivalent that preserves the structure the estimator exploits: jobs
// fall into queue classes whose names encode size and expected duration,
// runtimes within a class follow a heavy-tailed (log-normal) distribution
// around the class mean, and the requested CPU-hours correlate with (but
// systematically over-state) the actual runtime. This gives the
// history-based estimator the same prediction problem the paper faced.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/estimator"
)

// QueueClass describes one Paragon queue: its node count and the
// log-normal runtime distribution of jobs submitted to it.
type QueueClass struct {
	Name       string
	Nodes      int
	MeanSecs   float64 // median runtime (seconds)
	SigmaLog   float64 // log-space standard deviation
	ChargeRate float64 // dollars per CPU-hour, as in the accounting data
}

// DefaultQueues mirrors the Paragon's queue naming convention
// (q<nodes><duration-class>): short/medium/long queues at three partition
// sizes.
var DefaultQueues = []QueueClass{
	{Name: "q16s", Nodes: 16, MeanSecs: 600, SigmaLog: 0.45, ChargeRate: 0.8},
	{Name: "q16l", Nodes: 16, MeanSecs: 7200, SigmaLog: 0.55, ChargeRate: 0.6},
	{Name: "q32m", Nodes: 32, MeanSecs: 3600, SigmaLog: 0.50, ChargeRate: 1.0},
	{Name: "q32l", Nodes: 32, MeanSecs: 14400, SigmaLog: 0.60, ChargeRate: 0.9},
	{Name: "q64s", Nodes: 64, MeanSecs: 1800, SigmaLog: 0.45, ChargeRate: 1.6},
	{Name: "q64l", Nodes: 64, MeanSecs: 28800, SigmaLog: 0.65, ChargeRate: 1.4},
}

// ParagonConfig controls trace synthesis.
type ParagonConfig struct {
	Jobs   int
	Seed   int64
	Queues []QueueClass
	Start  time.Time // submission window start (default 1995-01-01)
	// FailureRate is the fraction of unsuccessful jobs (default 0.05).
	FailureRate float64
	// Interactive is the fraction of interactive (vs batch) jobs
	// (default 0.2).
	Interactive float64
}

// ParagonTrace generates a deterministic synthetic accounting trace.
func ParagonTrace(cfg ParagonConfig) []estimator.TaskRecord {
	if cfg.Jobs <= 0 {
		return nil
	}
	queues := cfg.Queues
	if len(queues) == 0 {
		queues = DefaultQueues
	}
	start := cfg.Start
	if start.IsZero() {
		start = time.Date(1995, time.January, 1, 0, 0, 0, 0, time.UTC)
	}
	failRate := cfg.FailureRate
	if failRate == 0 {
		failRate = 0.05
	}
	interactive := cfg.Interactive
	if interactive == 0 {
		interactive = 0.2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	accounts := []string{"hep", "astro", "chem", "cfd", "bio"}
	logins := []string{"downey", "feitel", "smith", "taylor", "foster", "bunn", "anjum"}

	records := make([]estimator.TaskRecord, 0, cfg.Jobs)
	submit := start
	for i := 0; i < cfg.Jobs; i++ {
		q := queues[rng.Intn(len(queues))]
		// Log-normal runtime around the class median.
		runtime := q.MeanSecs * math.Exp(rng.NormFloat64()*q.SigmaLog)
		if runtime < 10 {
			runtime = 10
		}
		// Users over-request: requested hours = actual × U[1.1, 2.2],
		// rounded up to a round number, exactly the over-estimation bias
		// real accounting traces show.
		reqHours := runtime / 3600 * (1.1 + 1.1*rng.Float64())
		reqHours = math.Ceil(reqHours*4) / 4 // quarter-hour granularity
		jobType := "batch"
		if rng.Float64() < interactive {
			jobType = "interactive"
		}
		succeeded := rng.Float64() >= failRate
		// Poisson-ish arrivals: exponential gaps, mean 20 minutes.
		submit = submit.Add(time.Duration(rng.ExpFloat64() * 20 * float64(time.Minute)))
		queueWait := time.Duration(rng.ExpFloat64() * 10 * float64(time.Minute))
		started := submit.Add(queueWait)
		completed := started.Add(time.Duration(runtime * float64(time.Second)))

		records = append(records, estimator.TaskRecord{
			Account:        accounts[rng.Intn(len(accounts))],
			Login:          logins[rng.Intn(len(logins))],
			Partition:      fmt.Sprintf("p%d", q.Nodes),
			Nodes:          q.Nodes,
			JobType:        jobType,
			Succeeded:      succeeded,
			ReqHours:       reqHours,
			Queue:          q.Name,
			CPURate:        q.ChargeRate,
			IdleRate:       q.ChargeRate / 4,
			Submitted:      submit,
			Started:        started,
			Completed:      completed,
			RuntimeSeconds: math.Round(runtime),
		})
	}
	return records
}

// SplitHistoryTest partitions a trace into history and test sets the way
// the paper did ("The history consisted of 100 jobs and the runtime for
// 20 jobs was estimated"). Only successful jobs are eligible as test
// cases, since their actual runtimes are the accuracy reference.
func SplitHistoryTest(trace []estimator.TaskRecord, historyN, testN int) (history, test []estimator.TaskRecord, err error) {
	if historyN+testN > len(trace) {
		return nil, nil, fmt.Errorf("workload: trace has %d jobs, need %d", len(trace), historyN+testN)
	}
	history = trace[:historyN]
	for _, r := range trace[historyN:] {
		if len(test) == testN {
			break
		}
		if r.Succeeded {
			test = append(test, r)
		}
	}
	if len(test) < testN {
		return nil, nil, fmt.Errorf("workload: only %d successful test jobs available, need %d", len(test), testN)
	}
	return history, test, nil
}
