package workload

import (
	"reflect"
	"testing"
)

func TestFairnessScenarioCatalogue(t *testing.T) {
	scenarios := FairnessScenarios()
	if len(scenarios) < 4 {
		t.Fatalf("catalogue = %d scenarios", len(scenarios))
	}
	seen := map[string]bool{}
	for _, sc := range scenarios {
		if sc.Name == "" || seen[sc.Name] {
			t.Fatalf("bad or duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Machines <= 0 || sc.Ticks <= 0 || len(sc.Tenants) < 2 {
			t.Fatalf("degenerate scenario %+v", sc)
		}
		for _, tn := range sc.Tenants {
			if tn.JobCPUSeconds <= 0 || tn.Weight <= 0 {
				t.Fatalf("%s: degenerate tenant %+v", sc.Name, tn)
			}
		}
	}
	for _, name := range []string{"bursty-tenant", "starvation-recovery", "weighted-groups", "federated-flocking"} {
		if _, ok := FairnessScenarioByName(name); !ok {
			t.Fatalf("built-in scenario %q missing", name)
		}
	}
	if _, ok := FairnessScenarioByName("nope"); ok {
		t.Fatal("unknown scenario resolved")
	}
}

func TestSubmissionsExpansion(t *testing.T) {
	sc := FairnessScenario{
		Name:     "t",
		Machines: 1,
		Ticks:    100,
		Tenants: []TenantSpec{
			{Name: "burst", Weight: 1, JobCPUSeconds: 10, BurstJobs: 3},
			{Name: "steady", Weight: 1, JobCPUSeconds: 5, SteadyJobs: 4, Every: 10, StartTick: 5},
		},
	}
	subs := sc.Submissions()
	counts := map[string]int{}
	lastTick := -1
	for _, s := range subs {
		counts[s.Tenant]++
		if s.Tick < lastTick {
			t.Fatalf("submissions out of tick order: %+v", subs)
		}
		lastTick = s.Tick
	}
	if counts["burst"] != 3 || counts["steady"] != 4 {
		t.Fatalf("counts = %v", counts)
	}
	// Steady arrivals land at StartTick + k·Every.
	var steadyTicks []int
	for _, s := range subs {
		if s.Tenant == "steady" {
			steadyTicks = append(steadyTicks, s.Tick)
		}
	}
	if want := []int{5, 15, 25, 35}; !reflect.DeepEqual(steadyTicks, want) {
		t.Fatalf("steady ticks = %v, want %v", steadyTicks, want)
	}
	// Deterministic: expansion is pure.
	if !reflect.DeepEqual(subs, sc.Submissions()) {
		t.Fatal("Submissions not deterministic")
	}
}

func TestScenarioDemandExceedsCapacity(t *testing.T) {
	// Fairness is only observable under contention: every built-in
	// scenario must demand more CPU-seconds than its horizon supplies.
	for _, sc := range FairnessScenarios() {
		demand := 0.0
		for _, s := range sc.Submissions() {
			demand += s.CPUSeconds
		}
		capacity := float64((sc.Machines + sc.FlockMachines) * sc.Ticks)
		if demand <= capacity {
			t.Fatalf("%s: demand %.0f ≤ capacity %.0f, no contention", sc.Name, demand, capacity)
		}
	}
}
