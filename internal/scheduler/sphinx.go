package scheduler

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/classad"
	"repro/internal/condor"
	"repro/internal/estimator"
	"repro/internal/fairshare"
	"repro/internal/monalisa"
	"repro/internal/quota"
	"repro/internal/replica"
	"repro/internal/simgrid"
	"repro/internal/telemetry"
)

// SiteServices bundles what the scheduler needs per execution site: the
// site's execution service (Condor pool) and its decentralized runtime
// estimator.
type SiteServices struct {
	Pool    *condor.Pool
	Runtime *estimator.RuntimeEstimator
	// RuntimeSource, when set, overrides Runtime as the site's runtime
	// oracle — typically a proxy to a remote Estimator Service, which can
	// be down. An error degrades the estimate to the plan's own hints
	// (ReqHours, then the scheduler default) instead of failing the
	// submit.
	RuntimeSource RuntimeSource
}

// RuntimeSource is a fallible per-site runtime oracle.
type RuntimeSource interface {
	EstimateRuntime(rec estimator.TaskRecord) (float64, error)
}

// LoadSource supplies a site's observed load for scoring. It is
// fallible on purpose: a deployment may proxy a remote monitor, and an
// unreachable monitor must degrade site selection (zero load assumed),
// not break it.
type LoadSource interface {
	SiteLoad(site string) (float64, error)
}

// repoLoad adapts the in-process MonALISA repository to LoadSource.
type repoLoad struct {
	repo *monalisa.Repository
}

func (r repoLoad) SiteLoad(site string) (float64, error) {
	return r.repo.LatestValue(site, monalisa.MetricLoadAvg, 0), nil
}

// Scheduler is the Sphinx-like middleware.
type Scheduler struct {
	grid     *simgrid.Grid
	wake     *simgrid.Wake
	repo     *monalisa.Repository
	load     LoadSource // nil: score with zero load
	estDB    *estimator.EstimateDB
	transfer *estimator.TransferEstimator
	quota    *quota.Service         // optional
	replicas *replica.Catalog       // optional
	fair     fairshare.SiteStanding // optional

	// LoadWeight scales how strongly MonALISA's observed site load
	// penalizes a site's score (default 1: a fully loaded site doubles
	// its effective runtime).
	LoadWeight float64
	// DefaultEstimate substitutes when a site has no usable history.
	DefaultEstimate float64
	// AutoResubmit makes the scheduler retry failed tasks on the
	// next-best site by itself. The paper routes this decision through
	// the Steering Service's Backup & Recovery module, so it defaults to
	// false.
	AutoResubmit bool
	// MaxAttempts bounds per-task submissions when AutoResubmit is on.
	MaxAttempts int
	// Learn feeds completed tasks back into the executing site's history.
	Learn bool
	// TieMargin is the relative score band within which site estimates
	// count as tied; when a fair-share standing is configured, ties break
	// toward the site where the plan owner has the least decayed usage,
	// spreading each tenant's load across the grid. Default 0.02.
	TieMargin float64

	mu       sync.Mutex
	sites    map[string]*SiteServices
	plans    []*ConcretePlan
	planSubs []func(*ConcretePlan)
	jobIndex map[jobKey]planTask
	events   []condor.Event

	// backlogCache memoizes backlogSeconds per site for one simulation
	// instant: site scoring walks every queued job at a site, and a plan
	// with N ready tasks would otherwise pay that walk N times per tick.
	// Entries are dropped whenever the site's queue changes at the same
	// instant — on any pool event (completion, start, failure) and on
	// scheduler-side submit/remove — so cached reads always equal what a
	// fresh walk would return. backlogGen guards against a stale value
	// computed concurrently with an invalidation being stored back.
	backlogAt    time.Time
	backlogCache map[string]float64
	backlogGen   uint64

	// Pre-resolved telemetry handles (nil without Config.Telemetry; nil
	// instruments no-op).
	obsWakes        *telemetry.Counter
	obsPlaceSeconds *telemetry.Histogram
	obsDegradedLoad *telemetry.Counter
	obsDegradedRun  *telemetry.Counter
}

type jobKey struct {
	pool string
	id   int
}

type planTask struct {
	cp     *ConcretePlan
	taskID string
}

// Config carries the scheduler's collaborators.
type Config struct {
	Grid    *simgrid.Grid
	Monitor *monalisa.Repository
	// Load, when set, replaces Monitor as the site-load oracle (e.g. a
	// proxy to a remote Grid-weather service). Errors degrade scoring to
	// zero load for that site; they never fail a submit.
	Load     LoadSource
	EstDB    *estimator.EstimateDB
	Transfer *estimator.TransferEstimator
	Quota    *quota.Service
	// Replicas, when set, lets task inputs name a dataset without a
	// fixed source (FileRef.Site == ""): the scheduler resolves the
	// closest replica and registers new copies it creates.
	Replicas *replica.Catalog
	// FairShare, when set, supplies per-tenant per-site standing used as
	// the site-selection tie-break (see Scheduler.TieMargin).
	FairShare fairshare.SiteStanding
	// Telemetry, when set, records scheduler vitals: wake-ups, site-
	// selection latency, and oracle degradations (a load or runtime
	// oracle answering with an error while placement proceeds on
	// fallbacks).
	Telemetry *telemetry.Registry
}

// New creates a scheduler and registers it with the grid engine.
func New(cfg Config) *Scheduler {
	if cfg.Grid == nil {
		panic("scheduler: Config.Grid is required")
	}
	if fairshare.IsNil(cfg.FairShare) {
		cfg.FairShare = nil
	}
	if cfg.EstDB == nil {
		cfg.EstDB = estimator.NewEstimateDB()
	}
	if cfg.Transfer == nil {
		cfg.Transfer = &estimator.TransferEstimator{Network: cfg.Grid.Network}
	}
	load := cfg.Load
	if load == nil && cfg.Monitor != nil {
		load = repoLoad{repo: cfg.Monitor}
	}
	s := &Scheduler{
		grid:            cfg.Grid,
		repo:            cfg.Monitor,
		load:            load,
		estDB:           cfg.EstDB,
		transfer:        cfg.Transfer,
		quota:           cfg.Quota,
		replicas:        cfg.Replicas,
		fair:            cfg.FairShare,
		LoadWeight:      1.0,
		TieMargin:       0.02,
		DefaultEstimate: 300,
		MaxAttempts:     3,
		Learn:           true,
		sites:           make(map[string]*SiteServices),
		jobIndex:        make(map[jobKey]planTask),
		backlogCache:    make(map[string]float64),
	}
	if cfg.Telemetry != nil {
		s.obsWakes = cfg.Telemetry.Counter("scheduler_wakes_total")
		s.obsPlaceSeconds = cfg.Telemetry.Histogram("scheduler_place_seconds", nil)
		s.obsDegradedLoad = cfg.Telemetry.LabeledCounter("scheduler_degraded_total", "oracle", "load")
		s.obsDegradedRun = cfg.Telemetry.LabeledCounter("scheduler_degraded_total", "oracle", "runtime")
	}
	s.wake = cfg.Grid.Engine.Register(s.onWake)
	return s
}

// EstimateDB exposes the submission-time estimate database (shared with
// the queue-time estimator).
func (s *Scheduler) EstimateDB() *estimator.EstimateDB { return s.estDB }

// RegisterSite makes an execution site schedulable.
func (s *Scheduler) RegisterSite(site string, svc *SiteServices) {
	if svc == nil || svc.Pool == nil {
		panic("scheduler: RegisterSite needs a pool")
	}
	if svc.Runtime == nil {
		svc.Runtime = estimator.NewRuntimeEstimator(estimator.NewHistory(0))
	}
	s.mu.Lock()
	s.sites[site] = svc
	s.mu.Unlock()
	// Queue pool events; they are processed at the scheduler's next
	// engine wakeup to avoid re-entering the pool from inside its own
	// lock. Any event means the site's queue changed, so its cached
	// backlog is stale immediately.
	svc.Pool.Subscribe(func(e condor.Event) {
		s.mu.Lock()
		s.events = append(s.events, e)
		delete(s.backlogCache, site)
		s.backlogGen++
		s.mu.Unlock()
		s.wake.Request(s.grid.Engine.Now())
	})
}

// Sites returns registered site names, sorted.
func (s *Scheduler) Sites() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sites))
	for name := range s.sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SiteServicesFor returns the registered services for a site.
func (s *Scheduler) SiteServicesFor(site string) (*SiteServices, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	svc, ok := s.sites[site]
	return svc, ok
}

// SubscribePlans registers a callback invoked with every new concrete
// plan — how the Steering Service's Subscriber receives plans.
func (s *Scheduler) SubscribePlans(fn func(*ConcretePlan)) {
	if fn == nil {
		panic("scheduler: SubscribePlans with nil callback")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.planSubs = append(s.planSubs, fn)
}

// Submit validates an abstract plan, creates its concrete plan, announces
// it to subscribers, and begins scheduling ready tasks.
func (s *Scheduler) Submit(plan *JobPlan) (*ConcretePlan, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if len(s.sites) == 0 {
		s.mu.Unlock()
		return nil, fmt.Errorf("scheduler: no registered sites")
	}
	cp := newConcretePlan(plan)
	s.plans = append(s.plans, cp)
	subs := make([]func(*ConcretePlan), len(s.planSubs))
	copy(subs, s.planSubs)
	s.mu.Unlock()
	for _, fn := range subs {
		fn(cp)
	}
	s.pump()
	return cp, nil
}

// onWake processes queued execution-service events, then launches any
// newly unblocked tasks. The scheduler is purely event-driven: it wakes
// only when a watched pool reports a transition (assignment state can
// change no other way between wakeups — direct API calls do their own
// launching), so an idle grid schedules nothing.
func (s *Scheduler) onWake(now time.Time) {
	s.obsWakes.Inc()
	s.drainEvents()
	s.pump()
}

// drainEvents applies completion/failure events to assignments.
func (s *Scheduler) drainEvents() {
	s.mu.Lock()
	events := s.events
	s.events = nil
	s.mu.Unlock()
	for _, e := range events {
		s.mu.Lock()
		pt, ok := s.jobIndex[jobKey{pool: e.Pool, id: e.JobID}]
		s.mu.Unlock()
		if !ok {
			continue
		}
		switch e.To {
		case condor.StatusCompleted:
			pt.cp.update(pt.taskID, func(a *Assignment) { a.State = TaskCompleted })
			s.learnFrom(pt, e)
			s.registerOutput(pt)
		case condor.StatusFailed:
			pt.cp.update(pt.taskID, func(a *Assignment) { a.State = TaskFailed })
			if s.AutoResubmit {
				if a, ok := pt.cp.Assignment(pt.taskID); ok && a.Attempts < s.MaxAttempts {
					_, _ = s.Resubmit(pt.cp, pt.taskID)
				}
			}
		}
	}
}

// learnFrom closes the estimator's feedback loop: the actual runtime of a
// completed task becomes a history record at its execution site.
func (s *Scheduler) learnFrom(pt planTask, e condor.Event) {
	if !s.Learn {
		return
	}
	a, ok := pt.cp.Assignment(pt.taskID)
	if !ok {
		return
	}
	task, ok := pt.cp.Plan.Task(pt.taskID)
	if !ok {
		return
	}
	s.mu.Lock()
	svc := s.sites[a.Site]
	s.mu.Unlock()
	if svc == nil || svc.Runtime == nil || svc.Runtime.History == nil {
		return
	}
	info, err := svc.Pool.Job(a.CondorID)
	if err != nil {
		return
	}
	_ = svc.Runtime.History.Add(estimator.TaskRecord{
		Account:        pt.cp.Plan.Owner,
		Login:          pt.cp.Plan.Owner,
		Partition:      task.Partition,
		Nodes:          task.Nodes,
		JobType:        task.JobType,
		Succeeded:      true,
		ReqHours:       task.ReqHours,
		Queue:          task.Queue,
		Submitted:      info.SubmitTime,
		Started:        info.StartTime,
		Completed:      info.CompletionTime,
		RuntimeSeconds: info.WallClock.Seconds(),
	})
}

// registerOutput catalogues a completed task's output file, so downstream
// tasks (and future plans) can stage it from wherever it was produced.
func (s *Scheduler) registerOutput(pt planTask) {
	if s.replicas == nil {
		return
	}
	task, ok := pt.cp.Plan.Task(pt.taskID)
	if !ok || task.OutputFile == "" {
		return
	}
	a, ok := pt.cp.Assignment(pt.taskID)
	if !ok || a.Site == "" {
		return
	}
	size := task.OutputMB
	if site := s.grid.Site(a.Site); site != nil {
		if f, ok := site.Storage().Get(task.OutputFile); ok {
			size = f.SizeMB
		}
	}
	_ = s.replicas.Register(task.OutputFile, a.Site, size)
}

// pump launches every pending task whose dependencies completed.
func (s *Scheduler) pump() {
	s.mu.Lock()
	plans := make([]*ConcretePlan, len(s.plans))
	copy(plans, s.plans)
	s.mu.Unlock()
	for _, cp := range plans {
		for _, t := range cp.Plan.Tasks {
			a, ok := cp.Assignment(t.ID)
			if !ok || a.State != TaskPending {
				continue
			}
			if !s.depsDone(cp, t) {
				continue
			}
			if err := s.launch(cp, t, nil, 0); err != nil {
				cp.update(t.ID, func(a *Assignment) { a.State = TaskFailed })
			}
		}
	}
}

func (s *Scheduler) depsDone(cp *ConcretePlan, t TaskPlan) bool {
	for _, dep := range t.DependsOn {
		a, ok := cp.Assignment(dep)
		if !ok || a.State != TaskCompleted {
			return false
		}
	}
	return true
}

// launch selects a site, stages inputs, and submits the task. cpuDone
// carries checkpointed progress on migration.
func (s *Scheduler) launch(cp *ConcretePlan, t TaskPlan, exclude map[string]bool, cpuDone float64) error {
	best, considered, err := s.SelectSiteFor(cp.Plan.Owner, t, exclude)
	if err != nil {
		return err
	}
	cp.update(t.ID, func(a *Assignment) {
		a.Site = best.Site
		a.State = TaskStaging
		a.Estimates = best
		a.Considered = considered
		a.Attempts++
	})
	return s.stageAndSubmit(cp, t, best, cpuDone)
}

// SelectSite performs the paper's steps (a)–(e) with no owner context;
// see SelectSiteFor.
func (s *Scheduler) SelectSite(t TaskPlan, exclude map[string]bool) (SiteEstimate, []SiteEstimate, error) {
	return s.SelectSiteFor("", t, exclude)
}

// SelectSiteFor performs the paper's steps (a)–(e): per-site runtime
// estimates, queue-time estimates, MonALISA load, transfer time, and (when
// a quota service is configured) monetary cost. When a fair-share standing
// is configured, candidates whose score lies within TieMargin of the best
// are re-ranked by the owner's decayed usage at each site, lowest first —
// planning then steers tenants toward sites they have used least recently
// (an empty owner accounts to the Anonymous tenant, as in the execution
// service). The returned slice holds every candidate for explainability.
func (s *Scheduler) SelectSiteFor(owner string, t TaskPlan, exclude map[string]bool) (SiteEstimate, []SiteEstimate, error) {
	s.mu.Lock()
	names := make([]string, 0, len(s.sites))
	svcs := make([]*SiteServices, 0, len(s.sites))
	for name := range s.sites {
		if !exclude[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		svcs = append(svcs, s.sites[name])
	}
	s.mu.Unlock()
	if len(names) == 0 {
		return SiteEstimate{}, nil, fmt.Errorf("scheduler: no eligible sites for task %q", t.ID)
	}
	var t0 time.Time
	if s.obsPlaceSeconds != nil {
		t0 = time.Now()                                                        //lint:walltime telemetry: real placement latency for operator metrics, never feeds the estimate
		defer func() { s.obsPlaceSeconds.Observe(time.Since(t0).Seconds()) }() //lint:walltime telemetry: real placement latency for operator metrics, never feeds the estimate
	}
	all := make([]SiteEstimate, 0, len(names))
	for i, site := range names {
		svc := svcs[i]
		est := SiteEstimate{Site: site}
		est.RuntimeSeconds = s.runtimeEstimate(svc, t)
		est.QueueSeconds = s.backlogSeconds(site, svc)
		est.TransferSeconds = s.transferSeconds(t, site)
		if s.load != nil {
			// Graceful degradation: an unreachable monitor contributes
			// zero load rather than failing the placement.
			if v, err := s.load.SiteLoad(site); err == nil {
				est.Load = v
			} else {
				s.obsDegradedLoad.Inc()
			}
		}
		if s.quota != nil {
			if c, err := s.quota.Cost(site, est.RuntimeSeconds, inputMB(t)); err == nil {
				est.CostCredits = c
			}
		}
		est.Score = est.RuntimeSeconds*(1+s.LoadWeight*est.Load) + est.QueueSeconds + est.TransferSeconds
		all = append(all, est)
	}
	best := all[0]
	for _, e := range all[1:] {
		if e.Score < best.Score {
			best = e
		}
	}
	if s.fair != nil {
		// Tie-break by fair-share standing: among near-tied sites, the one
		// where this tenant has the least recent usage wins. Candidates are
		// name-sorted, so equal standings keep the deterministic name order.
		// Ownerless plans account to the Anonymous tenant, matching how the
		// execution service attributes their usage.
		if owner == "" {
			owner = fairshare.Anonymous
		}
		limit := best.Score * (1 + s.TieMargin)
		chosen, chosenUsage := best, s.fair.SiteUsage(owner, best.Site)
		for _, e := range all {
			if e.Score > limit {
				continue
			}
			if u := s.fair.SiteUsage(owner, e.Site); u < chosenUsage {
				chosen, chosenUsage = e, u
			}
		}
		best = chosen
	}
	return best, all, nil
}

// runtimeEstimate queries a site's runtime oracle — the injected
// RuntimeSource if any, else the decentralized estimator — falling back
// to the requested-hours hint and then the scheduler default. Oracle
// errors (an unreachable Estimator Service) degrade, never fail.
func (s *Scheduler) runtimeEstimate(svc *SiteServices, t TaskPlan) float64 {
	if svc.RuntimeSource != nil {
		sec, err := svc.RuntimeSource.EstimateRuntime(taskRecordOf(t))
		if err == nil && sec > 0 {
			return sec
		}
		if err != nil {
			s.obsDegradedRun.Inc()
		}
	} else if svc.Runtime != nil {
		est, err := svc.Runtime.Estimate(taskRecordOf(t))
		if err == nil && est.Seconds > 0 {
			return est.Seconds
		}
	}
	if t.ReqHours > 0 {
		return t.ReqHours * 3600
	}
	return s.DefaultEstimate
}

// backlogSeconds approximates a site's queue wait: the summed remaining
// estimates of every non-terminal job, divided by machine count. Results
// are cached per site for the current simulation instant — the queue only
// changes when the clock advances, so repeated scoring within one tick
// reuses the first walk.
func (s *Scheduler) backlogSeconds(site string, svc *SiteServices) float64 {
	now := s.grid.Engine.Now()
	s.mu.Lock()
	if !s.backlogAt.Equal(now) {
		s.backlogAt = now
		for k := range s.backlogCache {
			delete(s.backlogCache, k)
		}
	} else if v, ok := s.backlogCache[site]; ok {
		s.mu.Unlock()
		return v
	}
	gen := s.backlogGen
	s.mu.Unlock()
	v := s.backlogSecondsUncached(svc)
	s.mu.Lock()
	// Store only if nothing invalidated while we walked the queue
	// unlocked; otherwise the value may predate a concurrent change.
	if s.backlogAt.Equal(now) && s.backlogGen == gen {
		s.backlogCache[site] = v
	}
	s.mu.Unlock()
	return v
}

func (s *Scheduler) backlogSecondsUncached(svc *SiteServices) float64 {
	jobs, err := svc.Pool.Jobs()
	if err != nil {
		return 0
	}
	total := 0.0
	for _, j := range jobs {
		if j.Status.Terminal() {
			continue
		}
		est := j.EstimatedRuntime
		if v, ok := s.estDB.Lookup(j.Pool, j.ID); ok {
			est = v
		}
		if est <= 0 {
			est = s.DefaultEstimate
		}
		rem := est - j.WallClock.Seconds()
		if rem > 0 {
			total += rem
		}
	}
	m := svc.Pool.Machines()
	if m < 1 {
		m = 1
	}
	return total / float64(m)
}

// resolveInput determines where an input file should be fetched from for
// execution at site. Inputs with an explicit Site use it; otherwise the
// replica catalog picks the closest replica. The returned source equals
// site when no transfer is needed.
func (s *Scheduler) resolveInput(f FileRef, site string) (src string, sizeMB float64, err error) {
	if f.Site != "" {
		return f.Site, f.SizeMB, nil
	}
	if s.replicas == nil {
		return "", 0, fmt.Errorf("scheduler: input %q names no site and no replica catalog is configured", f.Name)
	}
	loc, _, err := s.replicas.Best(s.transfer, f.Name, site)
	if err != nil {
		return "", 0, err
	}
	return loc.Site, loc.SizeMB, nil
}

// transferSeconds sums predicted input-staging time for files not already
// resident at the site.
func (s *Scheduler) transferSeconds(t TaskPlan, site string) float64 {
	total := 0.0
	for _, f := range t.Inputs {
		if dst := s.grid.Site(site); dst != nil {
			if _, ok := dst.Storage().Get(f.Name); ok {
				continue // replica already present
			}
		}
		src, size, err := s.resolveInput(f, site)
		if err != nil {
			// No replica reachable: heavy penalty rather than failure, so
			// another site can win.
			total += 1e6
			continue
		}
		if src == site {
			continue
		}
		te, err := s.transfer.Estimate(src, site, size)
		if err != nil {
			total += 1e6
			continue
		}
		total += te.Seconds
	}
	return total
}

func inputMB(t TaskPlan) float64 {
	total := 0.0
	for _, f := range t.Inputs {
		total += f.SizeMB
	}
	return total
}

// stageAndSubmit replicates missing inputs to the chosen site and submits
// the job once every transfer lands. Transfers for one task run as
// concurrent network flows, so inputs staged over a shared link contend
// with each other (and with everything else in flight) for bandwidth.
func (s *Scheduler) stageAndSubmit(cp *ConcretePlan, t TaskPlan, est SiteEstimate, cpuDone float64) error {
	site := est.Site
	dst := s.grid.Site(site)
	pending := 0
	aborted := false
	var mu sync.Mutex
	submit := func() {
		if err := s.submitTask(cp, t, est, cpuDone); err != nil {
			cp.update(t.ID, func(a *Assignment) { a.State = TaskFailed })
		}
	}
	done := func() {
		mu.Lock()
		pending--
		// A later input in the loop may have failed to stage after this
		// transfer was already in flight; the task was marked failed then,
		// and the surviving transfers must not resurrect it by submitting.
		ready := pending == 0 && !aborted
		mu.Unlock()
		if ready {
			submit()
		}
	}
	abort := func() {
		mu.Lock()
		aborted = true
		mu.Unlock()
	}
	for _, f := range t.Inputs {
		if dst != nil {
			if _, ok := dst.Storage().Get(f.Name); ok {
				continue
			}
		}
		srcSite, size, err := s.resolveInput(f, site)
		if err != nil {
			abort()
			return fmt.Errorf("scheduler: staging %q to %s: %w", f.Name, site, err)
		}
		if srcSite == site {
			continue
		}
		if src := s.grid.Site(srcSite); src != nil {
			if fl, ok := src.Storage().Get(f.Name); ok {
				size = fl.SizeMB
			}
		}
		fName, fSize := f.Name, size
		if _, err := s.grid.Network.StartTransfer(srcSite, site, size, func(time.Duration) {
			if dst != nil {
				_ = dst.Storage().Put(fName, fSize)
			}
			if s.replicas != nil {
				_ = s.replicas.Register(fName, site, fSize)
			}
			done()
		}); err != nil {
			abort()
			return fmt.Errorf("scheduler: staging %q to %s: %w", f.Name, site, err)
		}
		// Counted only once the transfer is actually in flight (callbacks
		// cannot fire before simulated time advances, so this cannot race
		// the transfer completing).
		mu.Lock()
		pending++
		mu.Unlock()
	}
	mu.Lock()
	none := pending == 0 && !aborted
	mu.Unlock()
	if none {
		submit()
	}
	return nil
}

// submitTask hands the task to the chosen site's execution service.
func (s *Scheduler) submitTask(cp *ConcretePlan, t TaskPlan, est SiteEstimate, cpuDone float64) error {
	s.mu.Lock()
	svc := s.sites[est.Site]
	s.mu.Unlock()
	if svc == nil {
		return fmt.Errorf("scheduler: site %q vanished", est.Site)
	}
	ad := classad.New().
		Set(condor.AttrOwner, cp.Plan.Owner).
		Set(condor.AttrCmd, t.ID).
		Set(condor.AttrCpuSeconds, t.CPUSeconds).
		Set(condor.AttrPriority, t.Priority).
		Set(condor.AttrEstimate, est.RuntimeSeconds).
		Set(condor.AttrInputMB, inputMB(t)).
		Set(condor.AttrOutputMB, t.OutputMB).
		Set(condor.AttrCheckpoint, t.Checkpointable)
	if t.OutputFile != "" {
		ad.Set(condor.AttrOutputFile, t.OutputFile)
	}
	if t.FailAfterCPU > 0 {
		ad.Set(condor.AttrFailAfter, t.FailAfterCPU)
	}
	if t.Requirements != "" {
		if err := ad.SetExpr(condor.AttrRequirements, t.Requirements); err != nil {
			return err
		}
	}
	var id int
	var err error
	if cpuDone > 0 {
		id, err = svc.Pool.SubmitCheckpointed(ad, cpuDone)
	} else {
		id, err = svc.Pool.Submit(ad)
	}
	if err != nil {
		return fmt.Errorf("scheduler: submitting %q to %s: %w", t.ID, est.Site, err)
	}
	s.estDB.Record(svc.Pool.Name, id, est.RuntimeSeconds)
	s.mu.Lock()
	s.jobIndex[jobKey{pool: svc.Pool.Name, id: id}] = planTask{cp: cp, taskID: t.ID}
	// The submission changed this site's queue mid-tick; drop its cached
	// backlog so sibling tasks scored later this tick see the new depth.
	delete(s.backlogCache, est.Site)
	s.backlogGen++
	s.mu.Unlock()
	cp.update(t.ID, func(a *Assignment) {
		a.CondorID = id
		a.State = TaskSubmitted
		a.SubmittedAt = s.grid.Engine.Now()
	})
	return nil
}

// Reschedule moves a submitted task to a different site — the paper's
// "job redirection" request from the Steering Service. Checkpointable
// jobs carry their completed CPU-seconds; others restart. The old job is
// removed from its original site.
func (s *Scheduler) Reschedule(cp *ConcretePlan, taskID string, exclude []string) (Assignment, error) {
	a, ok := cp.Assignment(taskID)
	if !ok {
		return Assignment{}, fmt.Errorf("scheduler: plan has no task %q", taskID)
	}
	t, ok := cp.Plan.Task(taskID)
	if !ok {
		return Assignment{}, fmt.Errorf("scheduler: plan definition lost task %q", taskID)
	}
	excl := map[string]bool{}
	for _, e := range exclude {
		excl[e] = true
	}
	if a.Site != "" {
		excl[a.Site] = true
	}
	cpuDone := 0.0
	if a.State == TaskSubmitted {
		s.mu.Lock()
		svc := s.sites[a.Site]
		s.mu.Unlock()
		if svc != nil {
			if t.Checkpointable {
				if cpu, err := svc.Pool.Checkpoint(a.CondorID); err == nil {
					cpuDone = cpu
				}
			}
			_ = svc.Pool.Remove(a.CondorID)
			s.mu.Lock()
			delete(s.jobIndex, jobKey{pool: svc.Pool.Name, id: a.CondorID})
			delete(s.backlogCache, a.Site)
			s.backlogGen++
			s.mu.Unlock()
		}
	}
	if err := s.launch(cp, t, excl, cpuDone); err != nil {
		return Assignment{}, err
	}
	na, _ := cp.Assignment(taskID)
	return na, nil
}

// Resubmit relaunches a failed task on a site other than the one that
// failed it — invoked by the Steering Service's Backup & Recovery module
// ("the Backup and Recovery module contacts Sphinx to allocate a new
// execution service; the scheduler will then resubmit the job").
func (s *Scheduler) Resubmit(cp *ConcretePlan, taskID string) (Assignment, error) {
	a, ok := cp.Assignment(taskID)
	if !ok {
		return Assignment{}, fmt.Errorf("scheduler: plan has no task %q", taskID)
	}
	t, ok := cp.Plan.Task(taskID)
	if !ok {
		return Assignment{}, fmt.Errorf("scheduler: plan definition lost task %q", taskID)
	}
	excl := map[string]bool{}
	if a.Site != "" {
		excl[a.Site] = true
	}
	if err := s.launch(cp, t, excl, 0); err != nil {
		// Fall back to any site (including the failed one) rather than
		// abandoning the task when the grid has a single site.
		if err2 := s.launch(cp, t, nil, 0); err2 != nil {
			return Assignment{}, err
		}
	}
	na, _ := cp.Assignment(taskID)
	return na, nil
}

func taskRecordOf(t TaskPlan) estimator.TaskRecord {
	return estimator.TaskRecord{
		Queue:     t.Queue,
		Partition: t.Partition,
		Nodes:     t.Nodes,
		JobType:   t.JobType,
		ReqHours:  t.ReqHours,
	}
}
