// Package scheduler implements a Sphinx-like scheduling middleware: the
// component the paper's services submit job plans to, receive "concrete
// job plans" from, and call back into for job redirection.
//
// The paper's workflow (§4.2.1, §6.1) is reproduced faithfully:
//
//   - users submit an abstract job plan — a DAG of tasks;
//   - for each task, the scheduler "contacts the available execution
//     sites" and asks each site's runtime estimator for a prediction
//     (history maintenance is decentralized, one history per site);
//   - it then "contact[s] the MonALISA repository to get the status of
//     load at execution sites";
//   - it "select[s] a site that has the least estimated run time and
//     where the queue time for the task is a minimum", also accounting
//     for input-file transfer time;
//   - the resulting concrete job plan (tasks bound to sites) is sent to
//     the Steering Service, which subscribes to plan announcements;
//   - the Steering Service sends "requests for job redirection ... to the
//     scheduler", handled here by Reschedule.
package scheduler

import (
	"fmt"
)

// FileRef names an input dataset and the site currently holding it.
type FileRef struct {
	Name   string
	Site   string
	SizeMB float64
}

// TaskPlan is one node of an abstract job plan: the work description plus
// the estimator covariates (queue, partition, nodes, job type, requested
// hours — the SDSC accounting attributes the runtime estimator matches
// on).
type TaskPlan struct {
	ID string

	// Simulation ground truth: CPU-seconds on a reference processor.
	CPUSeconds float64

	// Estimator covariates.
	Queue     string
	Partition string
	Nodes     int
	JobType   string
	ReqHours  float64

	Priority       int
	DependsOn      []string
	Inputs         []FileRef
	OutputFile     string
	OutputMB       float64
	Checkpointable bool
	// Requirements is an optional ClassAd constraint on machines.
	Requirements string
	// FailAfterCPU injects a fault: the task fails once it has consumed
	// this many CPU-seconds. Zero disables injection. Used by failure
	//-recovery tests and the steering ablation benches.
	FailAfterCPU float64
}

// JobPlan is an abstract job: a named DAG of tasks owned by a user.
type JobPlan struct {
	Name  string
	Owner string
	Tasks []TaskPlan
}

// Validate checks IDs, dependency references, and acyclicity.
func (p *JobPlan) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("scheduler: plan without name")
	}
	if len(p.Tasks) == 0 {
		return fmt.Errorf("scheduler: plan %q has no tasks", p.Name)
	}
	seen := make(map[string]bool, len(p.Tasks))
	for _, t := range p.Tasks {
		if t.ID == "" {
			return fmt.Errorf("scheduler: plan %q has a task without ID", p.Name)
		}
		if seen[t.ID] {
			return fmt.Errorf("scheduler: plan %q has duplicate task %q", p.Name, t.ID)
		}
		if t.CPUSeconds <= 0 {
			return fmt.Errorf("scheduler: task %q needs positive CPUSeconds", t.ID)
		}
		seen[t.ID] = true
	}
	for _, t := range p.Tasks {
		for _, dep := range t.DependsOn {
			if !seen[dep] {
				return fmt.Errorf("scheduler: task %q depends on unknown task %q", t.ID, dep)
			}
			if dep == t.ID {
				return fmt.Errorf("scheduler: task %q depends on itself", t.ID)
			}
		}
	}
	if _, err := p.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the task IDs in a dependency-respecting order
// (Kahn's algorithm, FIFO among ready tasks so order is deterministic).
func (p *JobPlan) TopoOrder() ([]string, error) {
	indeg := make(map[string]int, len(p.Tasks))
	dependents := make(map[string][]string)
	for _, t := range p.Tasks {
		indeg[t.ID] += 0
		for _, dep := range t.DependsOn {
			indeg[t.ID]++
			dependents[dep] = append(dependents[dep], t.ID)
		}
	}
	var ready []string
	for _, t := range p.Tasks { // plan order, not map order
		if indeg[t.ID] == 0 {
			ready = append(ready, t.ID)
		}
	}
	var order []string
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		for _, d := range dependents[id] {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if len(order) != len(p.Tasks) {
		return nil, fmt.Errorf("scheduler: plan %q has a dependency cycle", p.Name)
	}
	return order, nil
}

// Task returns the named task plan.
func (p *JobPlan) Task(id string) (TaskPlan, bool) {
	for _, t := range p.Tasks {
		if t.ID == id {
			return t, true
		}
	}
	return TaskPlan{}, false
}
