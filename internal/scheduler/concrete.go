package scheduler

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// TaskState tracks a planned task through the scheduler.
type TaskState int

// Task states within a concrete plan.
const (
	TaskPending   TaskState = iota // waiting on dependencies
	TaskStaging                    // input transfers in flight
	TaskSubmitted                  // handed to an execution service
	TaskCompleted
	TaskFailed
)

func (s TaskState) String() string {
	switch s {
	case TaskPending:
		return "pending"
	case TaskStaging:
		return "staging"
	case TaskSubmitted:
		return "submitted"
	case TaskCompleted:
		return "completed"
	case TaskFailed:
		return "failed"
	}
	return fmt.Sprintf("taskstate(%d)", int(s))
}

// SiteEstimate is one site's predicted cost for a task — the quantities
// the paper's selection step weighs (estimated runtime, queue time,
// transfer time, monetary cost, observed load).
type SiteEstimate struct {
	Site            string
	RuntimeSeconds  float64
	QueueSeconds    float64
	TransferSeconds float64
	Load            float64
	CostCredits     float64
	Score           float64 // lower is better
}

// Assignment binds a planned task to an execution site and its Condor ID.
type Assignment struct {
	TaskID      string
	Site        string
	CondorID    int
	State       TaskState
	Estimates   SiteEstimate   // chosen site's estimates at decision time
	Considered  []SiteEstimate // every candidate, for explainability
	SubmittedAt time.Time
	Attempts    int
}

// ConcretePlan is the scheduler's output: "a job plan precisely describing
// the nodes where the job will be executed", which the Steering Service's
// Subscriber analyzes for the list of execution services in play.
type ConcretePlan struct {
	Plan *JobPlan

	mu          sync.Mutex
	assignments map[string]*Assignment
}

func newConcretePlan(p *JobPlan) *ConcretePlan {
	cp := &ConcretePlan{Plan: p, assignments: make(map[string]*Assignment, len(p.Tasks))}
	for _, t := range p.Tasks {
		cp.assignments[t.ID] = &Assignment{TaskID: t.ID, State: TaskPending}
	}
	return cp
}

// Assignment returns a copy of the named task's current assignment.
func (cp *ConcretePlan) Assignment(taskID string) (Assignment, bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	a, ok := cp.assignments[taskID]
	if !ok {
		return Assignment{}, false
	}
	return *a, true
}

// Assignments returns copies of all assignments sorted by task ID.
func (cp *ConcretePlan) Assignments() []Assignment {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	out := make([]Assignment, 0, len(cp.assignments))
	for _, a := range cp.assignments {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TaskID < out[j].TaskID })
	return out
}

// Sites returns the distinct execution sites this plan touches — what the
// steering Subscriber extracts.
func (cp *ConcretePlan) Sites() []string {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	set := make(map[string]bool)
	for _, a := range cp.assignments {
		if a.Site != "" {
			set[a.Site] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Done reports whether every task reached a terminal state, and whether
// all of them completed successfully.
func (cp *ConcretePlan) Done() (done, succeeded bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	succeeded = true
	for _, a := range cp.assignments {
		switch a.State {
		case TaskCompleted:
		case TaskFailed:
			succeeded = false
		default:
			return false, false
		}
	}
	return true, succeeded
}

// update mutates an assignment under the plan lock.
func (cp *ConcretePlan) update(taskID string, fn func(*Assignment)) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if a, ok := cp.assignments[taskID]; ok {
		fn(a)
	}
}
