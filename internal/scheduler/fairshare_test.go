package scheduler

import (
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/estimator"
	"repro/internal/fairshare"
	"repro/internal/simgrid"
)

// twinSiteScheduler builds two identical idle sites whose estimates tie
// exactly, plus a fair-share manager wired into the scheduler.
func twinSiteScheduler(t *testing.T) (*Scheduler, *fairshare.Manager) {
	t.Helper()
	g := simgrid.NewGrid(time.Second, 1)
	fs := fairshare.NewManager(fairshare.Config{Clock: g.Engine.Clock(), HalfLife: -1})
	sched := New(Config{Grid: g, FairShare: fs})
	for _, name := range []string{"siteA", "siteB"} {
		site := g.AddSite(name)
		pool := condor.NewPool(name, g, site)
		n := site.AddNode(g.Engine, name+"-n0", 1.0, simgrid.IdleLoad())
		pool.AddMachine(n, nil)
		sched.RegisterSite(name, &SiteServices{
			Pool:    pool,
			Runtime: estimator.NewRuntimeEstimator(estimator.NewHistory(0)),
		})
	}
	return sched, fs
}

func TestTypedNilFairShareMeansDisabled(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	var none *fairshare.Manager
	sched := New(Config{Grid: g, FairShare: none})
	site := g.AddSite("siteA")
	pool := condor.NewPool("siteA", g, site)
	n := site.AddNode(g.Engine, "siteA-n0", 1.0, simgrid.IdleLoad())
	pool.AddMachine(n, nil)
	sched.RegisterSite("siteA", &SiteServices{Pool: pool})
	if best, _, err := sched.SelectSiteFor("alice", task("t", 100), nil); err != nil || best.Site != "siteA" {
		t.Fatalf("typed-nil fair-share: best = %+v, err = %v", best, err)
	}
}

func TestSelectSiteFairShareTieBreak(t *testing.T) {
	sched, fs := twinSiteScheduler(t)
	// Fresh tenant, tied scores: deterministic name order wins.
	best, all, err := sched.SelectSiteFor("alice", task("t", 100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || best.Site != "siteA" {
		t.Fatalf("fresh tenant best = %+v (all %+v)", best, all)
	}
	// Alice has burned CPU at siteA recently: the tie now breaks to siteB.
	fs.RecordUsage("alice", "siteA", 500)
	best, _, err = sched.SelectSiteFor("alice", task("t", 100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.Site != "siteB" {
		t.Fatalf("standing tie-break chose %s, want siteB", best.Site)
	}
	// Other tenants and owner-less selection are unaffected.
	if best, _, _ := sched.SelectSiteFor("bob", task("t", 100), nil); best.Site != "siteA" {
		t.Fatalf("bob best = %s, want siteA", best.Site)
	}
	if best, _, _ := sched.SelectSite(task("t", 100), nil); best.Site != "siteA" {
		t.Fatalf("owner-less best = %s, want siteA", best.Site)
	}
}

func TestFairShareTieBreakRespectsMargin(t *testing.T) {
	sched, fs := twinSiteScheduler(t)
	sched.TieMargin = 0.02
	fs.RecordUsage("alice", "siteA", 500)
	// Give siteB a decisively worse runtime estimate: ~200 s of history
	// versus the 100 s ReqHours hint siteA falls back to. Standing must
	// not override a real score gap.
	svcB, _ := sched.SiteServicesFor("siteB")
	for i := 0; i < 4; i++ {
		rec := estimator.TaskRecord{
			Account: "a", Login: "a", Queue: "q", Partition: "p", Nodes: 1,
			JobType: "batch", Succeeded: true, ReqHours: 100.0 / 3600,
			Submitted: t0(i), Started: t0(i), Completed: t0(i).Add(200 * time.Second),
			RuntimeSeconds: 200,
		}
		if err := svcB.Runtime.History.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	best, all, err := sched.SelectSiteFor("alice", task("t", 100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.Site != "siteA" {
		t.Fatalf("best = %s (all %+v): tie-break overrode a real score gap", best.Site, all)
	}
}

func t0(i int) time.Time {
	return time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Hour)
}
