package scheduler

import (
	"fmt"

	"repro/internal/durable"
)

// ExportTasks serializes a concrete plan's per-task bindings for the
// durable snapshot codec (assignments are already task-ID sorted).
// Estimates and candidate lists are advisory decision records, not state
// the grid depends on, and are not exported.
func ExportTasks(cp *ConcretePlan) []durable.PlanTaskState {
	var out []durable.PlanTaskState
	for _, a := range cp.Assignments() {
		out = append(out, durable.PlanTaskState{
			TaskID:      a.TaskID,
			Site:        a.Site,
			CondorID:    a.CondorID,
			State:       int(a.State),
			SubmittedAt: a.SubmittedAt,
			Attempts:    a.Attempts,
		})
	}
	return out
}

// RestorePlan rebuilds a submitted plan from its exported bindings: the
// concrete plan re-registers with the scheduler, submitted tasks rejoin
// the job index (so pool completions find their plan again), and the plan
// is announced to subscribers exactly as a fresh submission would be — the
// steering service re-learns its watches through the same channel. Tasks
// captured mid-staging restart as pending: their in-flight transfers died
// with the process, so the next pump re-stages them.
func (s *Scheduler) RestorePlan(plan *JobPlan, tasks []durable.PlanTaskState) (*ConcretePlan, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	cp := newConcretePlan(plan)
	for _, t := range tasks {
		a, ok := cp.assignments[t.TaskID]
		if !ok {
			return nil, fmt.Errorf("scheduler: restored plan %q has no task %q", plan.Name, t.TaskID)
		}
		a.Site = t.Site
		a.CondorID = t.CondorID
		a.State = TaskState(t.State)
		a.SubmittedAt = t.SubmittedAt
		a.Attempts = t.Attempts
		if a.State == TaskStaging {
			a.State = TaskPending
			a.Site, a.CondorID = "", 0
		}
	}
	s.mu.Lock()
	s.plans = append(s.plans, cp)
	for _, a := range cp.assignments {
		if a.State == TaskSubmitted && a.Site != "" {
			if svc := s.sites[a.Site]; svc != nil {
				s.jobIndex[jobKey{pool: svc.Pool.Name, id: a.CondorID}] = planTask{cp: cp, taskID: a.TaskID}
			}
		}
	}
	subs := make([]func(*ConcretePlan), len(s.planSubs))
	copy(subs, s.planSubs)
	s.mu.Unlock()
	for _, fn := range subs {
		fn(cp)
	}
	return cp, nil
}

// Pump re-examines every plan for launchable tasks — recovery calls it
// once after all plans are restored, standing in for the submissions'
// original pump calls.
func (s *Scheduler) Pump() { s.pump() }
