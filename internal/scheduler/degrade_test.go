package scheduler

import (
	"errors"
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/estimator"
	"repro/internal/simgrid"
)

// Oracles that are "down": every call fails, the way proxies to a
// crashed monitor or estimator service would.

type downLoad struct{}

func (downLoad) SiteLoad(string) (float64, error) {
	return 99, errors.New("monitor unreachable")
}

type downRuntime struct{}

func (downRuntime) EstimateRuntime(estimator.TaskRecord) (float64, error) {
	return 0, errors.New("estimator unreachable")
}

// TestSubmitDegradesWhenOraclesDown pins graceful degradation: with the
// load and runtime oracles both failing, a submit must still place and
// run the task — scored with zero load and the plan's own runtime hint —
// instead of surfacing the outage to the user.
func TestSubmitDegradesWhenOraclesDown(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	site := g.AddSite("siteA")
	pool := condor.NewPool("siteA", g, site)
	pool.AddMachine(site.AddNode(g.Engine, "siteA-n0", 1.0, nil), nil)
	s := New(Config{Grid: g, Load: downLoad{}})
	s.RegisterSite("siteA", &SiteServices{Pool: pool, RuntimeSource: downRuntime{}})

	cp, err := s.Submit(simplePlan("alice", task("t1", 30)))
	if err != nil {
		t.Fatalf("submit with oracles down: %v", err)
	}
	a, ok := cp.Assignment("t1")
	if !ok {
		t.Fatal("task t1 has no assignment")
	}
	if a.Estimates.Load != 0 {
		t.Fatalf("load = %v, want 0 (failed monitor must not contribute)", a.Estimates.Load)
	}
	// task() sets ReqHours = cpu/3600, so the fallback runtime is cpu.
	if a.Estimates.RuntimeSeconds != 30 {
		t.Fatalf("runtime estimate = %v, want 30 (ReqHours fallback)", a.Estimates.RuntimeSeconds)
	}
	if err := g.Engine.RunUntil(func() bool { d, _ := cp.Done(); return d }, time.Hour); err != nil {
		t.Fatal(err)
	}
	if done, succeeded := cp.Done(); !done || !succeeded {
		t.Fatalf("plan done=%v succeeded=%v, want clean completion", done, succeeded)
	}
}
