package scheduler

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/classad"
	"repro/internal/condor"
	"repro/internal/estimator"
	"repro/internal/monalisa"
	"repro/internal/quota"
	"repro/internal/replica"
	"repro/internal/simgrid"
)

// fixture is a two-site grid with pools, monitor, and scheduler.
type fixture struct {
	grid  *simgrid.Grid
	repo  *monalisa.Repository
	sched *Scheduler
	pools map[string]*condor.Pool
}

// newFixture builds sites named in nodesPerSite with the given loads.
func newFixture(t *testing.T, sites map[string]struct {
	nodes int
	load  float64
}) *fixture {
	t.Helper()
	g := simgrid.NewGrid(time.Second, 1)
	repo := monalisa.NewRepository()
	f := &fixture{grid: g, repo: repo, pools: make(map[string]*condor.Pool)}
	names := make([]string, 0, len(sites))
	for name := range sites {
		names = append(names, name)
	}
	// Deterministic construction order.
	for _, name := range []string{"siteA", "siteB", "siteC"} {
		cfg, ok := sites[name]
		if !ok {
			continue
		}
		site := g.AddSite(name)
		pool := condor.NewPool(name, g, site)
		for i := 0; i < cfg.nodes; i++ {
			n := site.AddNode(g.Engine, name+"-n"+string(rune('0'+i)), 1.0, simgrid.ConstantLoad(cfg.load))
			pool.AddMachine(n, nil)
		}
		f.pools[name] = pool
	}
	_ = names
	// Fully connected network.
	siteNames := g.SiteNames()
	for i := 0; i < len(siteNames); i++ {
		for j := i + 1; j < len(siteNames); j++ {
			g.Network.Connect(siteNames[i], siteNames[j], simgrid.Link{BandwidthMBps: 10})
		}
	}
	monalisa.NewFarmMonitor(repo, g, 5*time.Second)
	f.sched = New(Config{Grid: g, Monitor: repo})
	for _, name := range siteNames {
		f.sched.RegisterSite(name, &SiteServices{
			Pool:    f.pools[name],
			Runtime: estimator.NewRuntimeEstimator(estimator.NewHistory(0)),
		})
	}
	return f
}

func simplePlan(owner string, tasks ...TaskPlan) *JobPlan {
	return &JobPlan{Name: "plan-" + owner, Owner: owner, Tasks: tasks}
}

func task(id string, cpu float64, deps ...string) TaskPlan {
	return TaskPlan{ID: id, CPUSeconds: cpu, Queue: "q", Partition: "p", Nodes: 1, JobType: "batch", ReqHours: cpu / 3600, DependsOn: deps}
}

func TestPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		plan *JobPlan
	}{
		{"no name", &JobPlan{Tasks: []TaskPlan{task("a", 1)}}},
		{"no tasks", &JobPlan{Name: "p"}},
		{"empty id", &JobPlan{Name: "p", Tasks: []TaskPlan{{CPUSeconds: 1}}}},
		{"dup id", &JobPlan{Name: "p", Tasks: []TaskPlan{task("a", 1), task("a", 1)}}},
		{"zero cpu", &JobPlan{Name: "p", Tasks: []TaskPlan{task("a", 0)}}},
		{"bad dep", &JobPlan{Name: "p", Tasks: []TaskPlan{task("a", 1, "ghost")}}},
		{"self dep", &JobPlan{Name: "p", Tasks: []TaskPlan{task("a", 1, "a")}}},
		{"cycle", &JobPlan{Name: "p", Tasks: []TaskPlan{task("a", 1, "b"), task("b", 1, "a")}}},
	}
	for _, c := range cases {
		if err := c.plan.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded", c.name)
		}
	}
	good := simplePlan("u", task("a", 1), task("b", 1, "a"))
	if err := good.Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

func TestTopoOrder(t *testing.T) {
	p := simplePlan("u",
		task("fetch", 1),
		task("reco1", 1, "fetch"),
		task("reco2", 1, "fetch"),
		task("merge", 1, "reco1", "reco2"),
	)
	order, err := p.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos["fetch"] != 0 || pos["merge"] != 3 {
		t.Fatalf("order = %v", order)
	}
	if pos["reco1"] > pos["merge"] || pos["reco2"] > pos["merge"] {
		t.Fatalf("order = %v", order)
	}
}

func TestSubmitRunsSingleTask(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{"siteA": {1, 0}})
	cp, err := f.sched.Submit(simplePlan("alice", task("t1", 30)))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.grid.Engine.RunUntil(func() bool { d, ok := cp.Done(); return d && ok }, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	a, _ := cp.Assignment("t1")
	if a.Site != "siteA" || a.State != TaskCompleted || a.CondorID == 0 {
		t.Fatalf("assignment = %+v", a)
	}
}

func TestSubmitValidatesAndRequiresSites(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{"siteA": {1, 0}})
	if _, err := f.sched.Submit(&JobPlan{}); err == nil {
		t.Fatal("invalid plan accepted")
	}
	empty := New(Config{Grid: simgrid.NewGrid(time.Second, 1)})
	if _, err := empty.Submit(simplePlan("u", task("a", 1))); err == nil {
		t.Fatal("siteless scheduler accepted a plan")
	}
}

func TestDAGOrderRespected(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{"siteA": {2, 0}})
	cp, err := f.sched.Submit(simplePlan("alice",
		task("first", 10),
		task("second", 10, "first"),
	))
	if err != nil {
		t.Fatal(err)
	}
	f.grid.Engine.RunFor(5 * time.Second)
	// While first runs, second must not be submitted.
	a2, _ := cp.Assignment("second")
	if a2.State != TaskPending {
		t.Fatalf("dependent task state = %v", a2.State)
	}
	if err := f.grid.Engine.RunUntil(func() bool { d, ok := cp.Done(); return d && ok }, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	a1, _ := cp.Assignment("first")
	a2, _ = cp.Assignment("second")
	if !a2.SubmittedAt.After(a1.SubmittedAt) {
		t.Fatalf("second submitted at %v, first at %v", a2.SubmittedAt, a1.SubmittedAt)
	}
}

func TestSelectSitePrefersIdleSite(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{
		"siteA": {1, 0.8}, // heavily loaded
		"siteB": {1, 0.0}, // idle
	})
	f.grid.Engine.RunFor(6 * time.Second) // let MonALISA sample
	best, all, err := f.sched.SelectSite(task("t", 100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.Site != "siteB" {
		t.Fatalf("best = %+v (all %+v)", best, all)
	}
	if len(all) != 2 {
		t.Fatalf("considered %d sites", len(all))
	}
	// Loaded site's score reflects the load multiplier.
	var a, b SiteEstimate
	for _, e := range all {
		if e.Site == "siteA" {
			a = e
		} else {
			b = e
		}
	}
	if a.Load < 0.7 || b.Load > 0.1 {
		t.Fatalf("loads = %+v %+v", a, b)
	}
	if a.Score <= b.Score {
		t.Fatalf("scores: loaded %v <= idle %v", a.Score, b.Score)
	}
}

func TestSelectSiteAccountsForBacklog(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{
		"siteA": {1, 0},
		"siteB": {1, 0},
	})
	// Pile work on siteA's pool directly.
	for i := 0; i < 5; i++ {
		ad := jobAdForTest("bg", 500)
		if _, err := f.pools["siteA"].Submit(ad); err != nil {
			t.Fatal(err)
		}
	}
	f.grid.Engine.RunFor(2 * time.Second)
	best, _, err := f.sched.SelectSite(task("t", 100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.Site != "siteB" {
		t.Fatalf("backlog ignored: best = %+v", best)
	}
}

func TestSelectSiteExclusion(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{
		"siteA": {1, 0},
		"siteB": {1, 0.9},
	})
	f.grid.Engine.RunFor(6 * time.Second)
	best, _, err := f.sched.SelectSite(task("t", 100), map[string]bool{"siteA": true})
	if err != nil {
		t.Fatal(err)
	}
	if best.Site != "siteB" {
		t.Fatalf("exclusion ignored: %+v", best)
	}
	if _, _, err := f.sched.SelectSite(task("t", 100), map[string]bool{"siteA": true, "siteB": true}); err == nil {
		t.Fatal("all-excluded select succeeded")
	}
}

func TestInputStagingDelaysSubmission(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{
		"siteA": {1, 0},
		"siteB": {1, 0},
	})
	// 100 MB dataset at siteA; force execution at siteB via exclusion of
	// nothing — make siteA unattractive with background jobs instead.
	f.grid.Site("siteA").Storage().Put("data.root", 100)
	for i := 0; i < 4; i++ {
		f.pools["siteA"].Submit(jobAdForTest("bg", 1000))
	}
	f.grid.Engine.RunFor(2 * time.Second)
	tk := task("t1", 10)
	tk.Inputs = []FileRef{{Name: "data.root", Site: "siteA", SizeMB: 100}}
	cp, err := f.sched.Submit(simplePlan("alice", tk))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := cp.Assignment("t1")
	if a.Site != "siteB" {
		t.Fatalf("expected siteB placement, got %+v", a)
	}
	if a.State != TaskStaging {
		t.Fatalf("state = %v, want staging", a.State)
	}
	if a.Estimates.TransferSeconds < 9 {
		t.Fatalf("transfer estimate = %v, want ≈10s", a.Estimates.TransferSeconds)
	}
	// 100MB over 10MB/s = 10s; after that the job must be submitted and
	// the replica must exist at siteB.
	f.grid.Engine.RunFor(12 * time.Second)
	a, _ = cp.Assignment("t1")
	if a.State != TaskSubmitted && a.State != TaskCompleted {
		t.Fatalf("post-staging state = %v", a.State)
	}
	if _, ok := f.grid.Site("siteB").Storage().Get("data.root"); !ok {
		t.Fatal("replica not created at siteB")
	}
	if err := f.grid.Engine.RunUntil(func() bool { d, ok := cp.Done(); return d && ok }, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateRecordedAtSubmission(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{"siteA": {1, 0}})
	cp, err := f.sched.Submit(simplePlan("alice", task("t1", 30)))
	if err != nil {
		t.Fatal(err)
	}
	f.grid.Engine.Step()
	a, _ := cp.Assignment("t1")
	if _, ok := f.sched.EstimateDB().Lookup("siteA", a.CondorID); !ok {
		t.Fatal("submission-time estimate not recorded")
	}
}

func TestLearningImprovesEstimates(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{"siteA": {1, 0}})
	// First task: no history → default/ReqHours-based estimate.
	cp1, _ := f.sched.Submit(simplePlan("alice", task("warm", 120)))
	if err := f.grid.Engine.RunUntil(func() bool { d, _ := cp1.Done(); return d }, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	svc, _ := f.sched.SiteServicesFor("siteA")
	if svc.Runtime.History.Len() != 1 {
		t.Fatalf("history length = %d, want 1", svc.Runtime.History.Len())
	}
	// Second, identical task: estimate should now reflect the observed
	// ~120s runtime.
	best, _, err := f.sched.SelectSite(task("next", 120), nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.RuntimeSeconds < 100 || best.RuntimeSeconds > 140 {
		t.Fatalf("learned estimate = %v, want ≈120", best.RuntimeSeconds)
	}
}

func TestRescheduleMovesJob(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{
		"siteA": {1, 0},
		"siteB": {1, 0},
	})
	tk := task("t1", 200)
	tk.Checkpointable = true
	cp, err := f.sched.Submit(simplePlan("alice", tk))
	if err != nil {
		t.Fatal(err)
	}
	f.grid.Engine.RunFor(50 * time.Second)
	before, _ := cp.Assignment("t1")
	if before.State != TaskSubmitted {
		t.Fatalf("pre-move state = %v", before.State)
	}
	after, err := f.sched.Reschedule(cp, "t1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.Site == before.Site {
		t.Fatalf("reschedule stayed at %s", after.Site)
	}
	if after.Attempts != 2 {
		t.Fatalf("attempts = %d", after.Attempts)
	}
	// Old job must be gone from the original pool.
	old, err := f.pools[before.Site].Job(before.CondorID)
	if err != nil {
		t.Fatal(err)
	}
	if old.Status != condor.StatusRemoved {
		t.Fatalf("old job status = %v", old.Status)
	}
	// Checkpointed: remaining ~150s, so total completion well before 200s
	// more.
	start := f.grid.Engine.Now()
	if err := f.grid.Engine.RunUntil(func() bool { d, ok := cp.Done(); return d && ok }, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if took := f.grid.Engine.Now().Sub(start); took > 170*time.Second {
		t.Fatalf("checkpointed move took %v, want ≈150s", took)
	}
}

func TestRescheduleUnknownTask(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{"siteA": {1, 0}})
	cp, _ := f.sched.Submit(simplePlan("alice", task("t1", 10)))
	if _, err := f.sched.Reschedule(cp, "ghost", nil); err == nil {
		t.Fatal("rescheduling a phantom task succeeded")
	}
}

func TestResubmitAfterFailure(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{
		"siteA": {1, 0},
		"siteB": {1, 0},
	})
	// Fail injection lives in the condor ad, which the scheduler does not
	// expose; emulate a failure by failing siteA's pool after submission.
	cp, err := f.sched.Submit(simplePlan("alice", task("t1", 100)))
	if err != nil {
		t.Fatal(err)
	}
	f.grid.Engine.RunFor(5 * time.Second)
	a, _ := cp.Assignment("t1")
	firstSite := a.Site
	na, err := f.sched.Resubmit(cp, "t1")
	if err != nil {
		t.Fatal(err)
	}
	if na.Site == firstSite {
		t.Fatalf("resubmit chose the same site %s", na.Site)
	}
}

func TestResubmitSingleSiteFallsBack(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{"siteA": {1, 0}})
	cp, _ := f.sched.Submit(simplePlan("alice", task("t1", 50)))
	f.grid.Engine.RunFor(2 * time.Second)
	na, err := f.sched.Resubmit(cp, "t1")
	if err != nil {
		t.Fatal(err)
	}
	if na.Site != "siteA" {
		t.Fatalf("fallback site = %s", na.Site)
	}
}

func TestAutoResubmitRetriesFailedTask(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{
		"siteA": {1, 0},
		"siteB": {1, 0},
	})
	f.sched.AutoResubmit = true
	f.sched.MaxAttempts = 2
	tk := task("t1", 100)
	tk.FailAfterCPU = 5 // fails everywhere; exercises the retry loop
	cp, err := f.sched.Submit(simplePlan("alice", tk))
	if err != nil {
		t.Fatal(err)
	}
	f.grid.Engine.RunFor(60 * time.Second)
	a, _ := cp.Assignment("t1")
	if a.State != TaskFailed {
		t.Fatalf("state = %v, want failed after exhausting retries", a.State)
	}
	if a.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", a.Attempts)
	}
	// The retry went to the other site.
	if len(a.Considered) == 0 || a.Site == "" {
		t.Fatalf("assignment lost provenance: %+v", a)
	}
}

func TestSchedulerMarksCondorFailure(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{"siteA": {1, 0}})
	tk := task("t1", 100)
	tk.FailAfterCPU = 10
	cp, err := f.sched.Submit(simplePlan("alice", tk))
	if err != nil {
		t.Fatal(err)
	}
	f.grid.Engine.RunFor(30 * time.Second)
	a, _ := cp.Assignment("t1")
	if a.State != TaskFailed {
		t.Fatalf("state = %v, want failed", a.State)
	}
	// Steering-driven recovery: Resubmit places it again (single site →
	// same site) and it fails again; the scheduler must keep functioning.
	if _, err := f.sched.Resubmit(cp, "t1"); err != nil {
		t.Fatal(err)
	}
	f.grid.Engine.RunFor(30 * time.Second)
	a, _ = cp.Assignment("t1")
	if a.State != TaskFailed {
		t.Fatalf("state after doomed resubmit = %v", a.State)
	}
}

func TestQuotaCostInSelection(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	repo := monalisa.NewRepository()
	q := quota.NewService()
	q.SetRate("siteA", quota.Rate{CPUSecond: 0.5})
	q.SetRate("siteB", quota.Rate{CPUSecond: 0.1})
	sched := New(Config{Grid: g, Monitor: repo, Quota: q})
	for _, name := range []string{"siteA", "siteB"} {
		site := g.AddSite(name)
		pool := condor.NewPool(name, g, site)
		pool.AddMachine(site.AddNode(g.Engine, name+"-n", 1, simgrid.IdleLoad()), nil)
		sched.RegisterSite(name, &SiteServices{Pool: pool})
	}
	_, all, err := sched.SelectSite(task("t", 100), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range all {
		if e.Site == "siteA" && e.CostCredits <= 0 {
			t.Fatalf("siteA cost = %v", e.CostCredits)
		}
		if e.Site == "siteB" && e.CostCredits >= allCost(all, "siteA") {
			t.Fatalf("cost ordering wrong: %+v", all)
		}
	}
}

func allCost(all []SiteEstimate, site string) float64 {
	for _, e := range all {
		if e.Site == site {
			return e.CostCredits
		}
	}
	return 0
}

func TestPlanSubscriberReceivesConcretePlan(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{"siteA": {1, 0}})
	var got *ConcretePlan
	f.sched.SubscribePlans(func(cp *ConcretePlan) { got = cp })
	cp, err := f.sched.Submit(simplePlan("alice", task("t1", 10)))
	if err != nil {
		t.Fatal(err)
	}
	if got != cp {
		t.Fatal("subscriber did not receive the plan")
	}
	f.grid.Engine.Step()
	if sites := cp.Sites(); len(sites) != 1 || sites[0] != "siteA" {
		t.Fatalf("plan sites = %v", sites)
	}
}

func TestConcretePlanDoneSemantics(t *testing.T) {
	p := simplePlan("u", task("a", 1), task("b", 1))
	cp := newConcretePlan(p)
	if d, _ := cp.Done(); d {
		t.Fatal("fresh plan reports done")
	}
	cp.update("a", func(x *Assignment) { x.State = TaskCompleted })
	cp.update("b", func(x *Assignment) { x.State = TaskFailed })
	d, ok := cp.Done()
	if !d || ok {
		t.Fatalf("Done = %v, %v", d, ok)
	}
}

func TestTaskStateStrings(t *testing.T) {
	for s, want := range map[TaskState]string{
		TaskPending: "pending", TaskStaging: "staging", TaskSubmitted: "submitted",
		TaskCompleted: "completed", TaskFailed: "failed",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func jobAdForTest(owner string, cpu float64) *classad.Ad {
	return classad.New().Set(condor.AttrOwner, owner).Set(condor.AttrCpuSeconds, cpu)
}

func TestReplicaCatalogStaging(t *testing.T) {
	// Three sites; dataset replicated at siteA and siteC. A task pinned
	// to siteB (every other site backlogged) must stage from the closest
	// replica, and the new copy must be catalogued.
	g := simgrid.NewGrid(time.Second, 1)
	repo := monalisa.NewRepository()
	cat := replica.NewCatalog()
	sched := New(Config{Grid: g, Monitor: repo, Replicas: cat})
	pools := map[string]*condor.Pool{}
	for _, name := range []string{"siteA", "siteB", "siteC"} {
		site := g.AddSite(name)
		pool := condor.NewPool(name, g, site)
		pool.AddMachine(site.AddNode(g.Engine, name+"-n", 1, simgrid.IdleLoad()), nil)
		sched.RegisterSite(name, &SiteServices{Pool: pool})
		pools[name] = pool
	}
	// siteA—siteB is fast; siteC—siteB is slow.
	g.Network.Connect("siteA", "siteB", simgrid.Link{BandwidthMBps: 100})
	g.Network.Connect("siteA", "siteC", simgrid.Link{BandwidthMBps: 1})
	g.Network.Connect("siteB", "siteC", simgrid.Link{BandwidthMBps: 1})
	g.Site("siteA").Storage().Put("data.root", 200)
	g.Site("siteC").Storage().Put("data.root", 200)
	cat.Register("data.root", "siteA", 200)
	cat.Register("data.root", "siteC", 200)
	// Backlog A and C so B wins placement.
	for _, name := range []string{"siteA", "siteC"} {
		for i := 0; i < 4; i++ {
			pools[name].Submit(jobAdForTest("bg", 2000))
		}
	}
	g.Engine.RunFor(2 * time.Second)

	tk := task("t1", 30)
	tk.Inputs = []FileRef{{Name: "data.root"}} // no site: catalog resolves
	cp, err := sched.Submit(simplePlan("alice", tk))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := cp.Assignment("t1")
	if a.Site != "siteB" {
		t.Fatalf("placed at %s, want siteB", a.Site)
	}
	// Closest replica is siteA at 100MB/s: 2s transfer, not 200s.
	if a.Estimates.TransferSeconds > 5 {
		t.Fatalf("transfer estimate = %v; picked the slow replica", a.Estimates.TransferSeconds)
	}
	if err := g.Engine.RunUntil(func() bool { d, ok := cp.Done(); return d && ok }, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	// The staged copy is now catalogued at siteB.
	if !cat.Has("data.root", "siteB") {
		t.Fatal("staged replica not registered")
	}
	if _, ok := g.Site("siteB").Storage().Get("data.root"); !ok {
		t.Fatal("staged file missing from siteB storage")
	}
}

func TestOutputRegisteredInCatalog(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	cat := replica.NewCatalog()
	sched := New(Config{Grid: g, Replicas: cat})
	site := g.AddSite("siteA")
	pool := condor.NewPool("siteA", g, site)
	pool.AddMachine(site.AddNode(g.Engine, "n", 1, simgrid.IdleLoad()), nil)
	sched.RegisterSite("siteA", &SiteServices{Pool: pool})
	tk := task("t1", 10)
	tk.OutputFile = "result.root"
	tk.OutputMB = 33
	cp, err := sched.Submit(simplePlan("alice", tk))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Engine.RunUntil(func() bool { d, ok := cp.Done(); return d && ok }, time.Minute); err != nil {
		t.Fatal(err)
	}
	g.Engine.RunFor(3 * time.Second)
	locs := cat.Locations("result.root")
	if len(locs) != 1 || locs[0].Site != "siteA" || locs[0].SizeMB != 33 {
		t.Fatalf("output replica = %+v", locs)
	}
}

func TestUnresolvableInputFailsTask(t *testing.T) {
	f := newFixture(t, map[string]struct {
		nodes int
		load  float64
	}{"siteA": {1, 0}})
	tk := task("t1", 10)
	tk.Inputs = []FileRef{{Name: "nowhere.root"}} // no site, no catalog
	cp, err := f.sched.Submit(simplePlan("alice", tk))
	if err != nil {
		t.Fatal(err)
	}
	f.grid.Engine.Step()
	a, _ := cp.Assignment("t1")
	if a.State != TaskFailed {
		t.Fatalf("state = %v, want failed", a.State)
	}
}

// Property: TopoOrder respects every dependency edge for random DAGs.
func TestQuickTopoOrderRespectsEdges(t *testing.T) {
	f := func(nRaw uint8, edgeBits uint64) bool {
		n := int(nRaw%8) + 2
		plan := &JobPlan{Name: "rand", Owner: "u"}
		for i := 0; i < n; i++ {
			tp := TaskPlan{ID: fmt.Sprintf("t%d", i), CPUSeconds: 1}
			// Edges only from lower to higher index: a DAG by construction.
			for j := 0; j < i; j++ {
				if edgeBits>>(uint(i*7+j)%63)&1 == 1 {
					tp.DependsOn = append(tp.DependsOn, fmt.Sprintf("t%d", j))
				}
			}
			plan.Tasks = append(plan.Tasks, tp)
		}
		if err := plan.Validate(); err != nil {
			return false
		}
		order, err := plan.TopoOrder()
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, id := range order {
			pos[id] = i
		}
		for _, tsk := range plan.Tasks {
			for _, dep := range tsk.DependsOn {
				if pos[dep] >= pos[tsk.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
