package scheduler

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/estimator"
	"repro/internal/monalisa"
	"repro/internal/simgrid"
)

// Tests for input staging over the network flow model: the aborted-plan
// double-submit regression and tick-vs-event parity for a staging storm
// on a shared link with a mid-flight utilization change.

// TestStagingAbortedTaskNotSubmitted is the regression test for the
// staging double-submit bug: when a later input in the staging loop fails
// — whether at resolution (no site, no catalog) or at transfer start
// (missing link) — the task is marked failed, but the transfers already
// in flight still complete, and their callbacks used to drain pending to
// zero and submit the failed task anyway.
func TestStagingAbortedTaskNotSubmitted(t *testing.T) {
	cases := []struct {
		name string
		bad  FileRef
	}{
		// resolveInput error, before any pending bookkeeping: this was the
		// live double-submit path.
		{"unresolvable-input", FileRef{Name: "lost.root"}},
		// StartTransfer error on a link that does not exist: the second
		// input names a site unlinked to the execution site.
		{"missing-link", FileRef{Name: "lost.root", Site: "siteC", SizeMB: 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := simgrid.NewGrid(time.Second, 1)
			sched := New(Config{Grid: g})
			for _, name := range []string{"siteA", "siteB", "siteC"} {
				g.AddSite(name)
			}
			// Execution only at siteB; the first input stages from siteA
			// over a working link, the second fails.
			site := g.Site("siteB")
			pool := condor.NewPool("siteB", g, site)
			pool.AddMachine(site.AddNode(g.Engine, "n", 1, simgrid.IdleLoad()), nil)
			sched.RegisterSite("siteB", &SiteServices{Pool: pool})
			g.Network.Connect("siteA", "siteB", simgrid.Link{BandwidthMBps: 10})
			g.Site("siteA").Storage().Put("good.root", 100)

			tk := task("t1", 10)
			tk.Inputs = []FileRef{
				{Name: "good.root", Site: "siteA", SizeMB: 100},
				c.bad,
			}
			cp, err := sched.Submit(simplePlan("alice", tk))
			if err != nil {
				t.Fatal(err)
			}
			a, _ := cp.Assignment("t1")
			if a.State != TaskFailed {
				t.Fatalf("state after failed staging = %v, want failed", a.State)
			}
			// Let the first input's in-flight transfer land (10s at
			// 10 MB/s): its callback must not resurrect the aborted plan.
			g.Engine.RunFor(15 * time.Second)
			if _, ok := g.Site("siteB").Storage().Get("good.root"); !ok {
				t.Fatal("surviving transfer never landed; test exercises nothing")
			}
			a, _ = cp.Assignment("t1")
			if a.State != TaskFailed {
				t.Fatalf("state after surviving transfer landed = %v, want failed", a.State)
			}
			jobs, err := pool.Jobs()
			if err != nil {
				t.Fatal(err)
			}
			if len(jobs) != 0 {
				t.Fatalf("aborted task was submitted anyway: %+v", jobs)
			}
		})
	}
}

// runStagingStorm drives a staging storm under one driver: two tasks,
// four 50MB inputs, all staged from siteA to siteB over one shared
// 10MB/s link, with background utilization jumping to 0.5 mid-staging.
// The trace captures assignments, pool job snapshots, and the staged
// replica set.
func runStagingStorm(t *testing.T, driver simgrid.Driver) []string {
	t.Helper()
	g := simgrid.NewGrid(time.Second, 1)
	g.Engine.SetDriver(driver)
	repo := monalisa.NewRepository()
	sched := New(Config{Grid: g, Monitor: repo})
	pools := map[string]*condor.Pool{}
	for _, name := range []string{"siteA", "siteB"} {
		site := g.AddSite(name)
		pool := condor.NewPool(name, g, site)
		pool.AddMachine(site.AddNode(g.Engine, name+"-n", 1, simgrid.IdleLoad()), nil)
		pools[name] = pool
		sched.RegisterSite(name, &SiteServices{
			Pool:    pool,
			Runtime: estimator.NewRuntimeEstimator(estimator.NewHistory(0)),
		})
	}
	g.Network.Connect("siteA", "siteB", simgrid.Link{BandwidthMBps: 10})
	monalisa.NewFarmMonitor(repo, g, 5*time.Second)
	for i := 0; i < 4; i++ {
		g.Site("siteA").Storage().Put(fmt.Sprintf("d%d.root", i), 50)
	}
	// Backlog siteA so both tasks place at siteB and must stage.
	for i := 0; i < 4; i++ {
		if _, err := pools["siteA"].Submit(jobAdForTest("bg", 5000)); err != nil {
			t.Fatal(err)
		}
	}
	g.Engine.RunFor(2 * time.Second)

	t1 := task("t1", 20)
	t1.Inputs = []FileRef{
		{Name: "d0.root", Site: "siteA", SizeMB: 50},
		{Name: "d1.root", Site: "siteA", SizeMB: 50},
	}
	t2 := task("t2", 20)
	t2.Inputs = []FileRef{
		{Name: "d2.root", Site: "siteA", SizeMB: 50},
		{Name: "d3.root", Site: "siteA", SizeMB: 50},
	}
	cp, err := sched.Submit(simplePlan("alice", t1, t2))
	if err != nil {
		t.Fatal(err)
	}
	// Mid-staging, the shared link loses half its capacity.
	g.Engine.Schedule(6*time.Second, func(time.Time) {
		if err := g.Network.SetUtilization("siteA", "siteB", 0.5); err != nil {
			t.Error(err)
		}
	})
	if err := g.Engine.RunUntil(func() bool { d, ok := cp.Done(); return d && ok }, 10*time.Minute); err != nil {
		t.Fatal(err)
	}

	var trace []string
	for _, id := range []string{"t1", "t2"} {
		a, _ := cp.Assignment(id)
		trace = append(trace, fmt.Sprintf("%s: %+v", id, a))
	}
	for _, name := range []string{"siteA", "siteB"} {
		jobs, err := pools[name].Jobs()
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			trace = append(trace, fmt.Sprintf("%s job %+v", name, j))
		}
	}
	for _, f := range g.Site("siteB").Storage().List() {
		trace = append(trace, fmt.Sprintf("replica %+v", f))
	}
	return trace
}

// TestStagingStormParityTickVsEvent: concurrent staging on a shared link
// plus a mid-flight SetUtilization must leave byte-identical traces under
// the tick and event drivers.
func TestStagingStormParityTickVsEvent(t *testing.T) {
	tick := runStagingStorm(t, simgrid.DriverTick)
	ev := runStagingStorm(t, simgrid.DriverEvent)
	if len(tick) != len(ev) {
		t.Fatalf("trace lengths diverged: %d vs %d\n tick: %v\n event: %v", len(tick), len(ev), tick, ev)
	}
	for i := range tick {
		if tick[i] != ev[i] {
			t.Errorf("trace line %d diverged:\n tick:  %s\n event: %s", i, tick[i], ev[i])
		}
	}
	// The storm must actually have staged replicas at siteB.
	found := 0
	for _, line := range tick {
		if len(line) > 7 && line[:7] == "replica" {
			found++
		}
	}
	if found != 4 {
		t.Fatalf("staged %d replicas at siteB, want 4:\n%v", found, tick)
	}
}
