package jobmon

import (
	"context"

	"repro/internal/condor"
	"repro/pkg/gae"
)

// InfoDTO converts a job snapshot to the typed monitoring view the gae
// API exposes, carrying the paper's monitoring fields.
func InfoDTO(info condor.JobInfo) gae.JobInfo {
	return gae.JobInfo{
		ID:                info.ID,
		Pool:              info.Pool,
		Status:            info.Status.String(),
		Owner:             info.Owner,
		Cmd:               info.Cmd,
		Priority:          info.Priority,
		Env:               info.Env,
		QueuePosition:     info.QueuePosition,
		EstimatedRuntime:  info.EstimatedRuntime,
		RemainingEstimate: info.RemainingEstimate,
		WallclockSeconds:  info.WallClock.Seconds(),
		ElapsedSeconds:    info.Elapsed.Seconds(),
		CPUSeconds:        info.CPUSeconds,
		Progress:          info.Progress,
		InputMB:           info.InputMB,
		OutputMB:          info.OutputMB,
		Node:              info.Node,
		SubmitTime:        info.SubmitTime,
		StartTime:         info.StartTime,
		CompletionTime:    info.CompletionTime,
	}
}

// API returns the service's typed gae.JobMon contract — the JMExecutable.
// Hosting it on Clarens is one line: gae.JobMonHandlers(svc.API()).
func (s *Service) API() gae.JobMon { return jobMonAPI{s} }

type jobMonAPI struct{ s *Service }

func (a jobMonAPI) get(pool string, id int) (condor.JobInfo, error) {
	return a.s.Manager.Get(pool, id)
}

func (a jobMonAPI) Job(_ context.Context, pool string, id int) (gae.JobInfo, error) {
	info, err := a.get(pool, id)
	if err != nil {
		return gae.JobInfo{}, err
	}
	return InfoDTO(info), nil
}

func (a jobMonAPI) JobStatus(_ context.Context, pool string, id int) (string, error) {
	info, err := a.get(pool, id)
	if err != nil {
		return "", err
	}
	return info.Status.String(), nil
}

func (a jobMonAPI) JobProgress(_ context.Context, pool string, id int) (float64, error) {
	info, err := a.get(pool, id)
	if err != nil {
		return 0, err
	}
	return info.Progress, nil
}

func (a jobMonAPI) JobWallclock(_ context.Context, pool string, id int) (float64, error) {
	info, err := a.get(pool, id)
	if err != nil {
		return 0, err
	}
	return info.WallClock.Seconds(), nil
}

func (a jobMonAPI) JobElapsed(_ context.Context, pool string, id int) (float64, error) {
	info, err := a.get(pool, id)
	if err != nil {
		return 0, err
	}
	return info.Elapsed.Seconds(), nil
}

func (a jobMonAPI) JobRemaining(_ context.Context, pool string, id int) (float64, error) {
	info, err := a.get(pool, id)
	if err != nil {
		return 0, err
	}
	return info.RemainingEstimate, nil
}

func (a jobMonAPI) JobQueuePosition(_ context.Context, pool string, id int) (int, error) {
	info, err := a.get(pool, id)
	if err != nil {
		return 0, err
	}
	return info.QueuePosition, nil
}

func (a jobMonAPI) JobList(_ context.Context, pool string) ([]gae.JobInfo, error) {
	jobs, err := a.s.Manager.List(pool)
	if err != nil {
		return nil, err
	}
	out := make([]gae.JobInfo, len(jobs))
	for i, j := range jobs {
		out[i] = InfoDTO(j)
	}
	return out, nil
}

func (a jobMonAPI) Pools(context.Context) ([]string, error) {
	return a.s.Collector.Pools(), nil
}
