// Package jobmon implements the paper's Job Monitoring Service (§5): the
// service that "provides the facility of monitoring jobs that have been
// submitted for execution, and provides the job monitoring information to
// the Steering Service".
//
// The paper's four components map directly onto this package:
//
//   - Job Information Collector (Collector): watches execution services,
//     forwards terminal-state snapshots to the DBManager, and answers
//     live queries for running jobs;
//   - DBManager: the per-instance repository of finished-job records,
//     which "publishes the job monitoring information to MonALISA";
//   - JMManager (Manager): routes queries — database first, live
//     collector second — exactly the paper's flow ("It first queries the
//     DBManager and if the information is not found in its repository,
//     the request is forwarded to the Job Information Collector");
//   - JMExecutable (Methods): the XML-RPC facade hosted on Clarens that
//     the Steering Service and clients call.
//
// The exposed per-job fields are the paper's list: job status, remaining
// time, elapsed time, estimated run time, queue position, priority,
// submission time, execution time, completion time, CPU time used, input
// and output I/O, owner name and environment variables.
package jobmon

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/condor"
	"repro/internal/monalisa"
	"repro/internal/simgrid"
)

// DBManager stores finished-job records and publishes updates to
// MonALISA.
type DBManager struct {
	repo *monalisa.Repository // optional

	mu      sync.RWMutex
	records map[string]condor.JobInfo
}

// NewDBManager creates a DBManager publishing to repo (nil disables
// publication).
func NewDBManager(repo *monalisa.Repository) *DBManager {
	return &DBManager{repo: repo, records: make(map[string]condor.JobInfo)}
}

func recordKey(pool string, id int) string { return fmt.Sprintf("%s/%d", pool, id) }

// Store saves a job's (usually terminal) snapshot and publishes the
// update to MonALISA.
func (db *DBManager) Store(info condor.JobInfo) {
	db.mu.Lock()
	db.records[recordKey(info.Pool, info.ID)] = info
	db.mu.Unlock()
	if db.repo != nil {
		src := monalisa.FormatJobSource(info.Pool, info.ID)
		db.repo.PublishEvent(info.CompletionTime, src, "status", info.Status.String())
		db.repo.Publish(src, monalisa.MetricJobProgress, info.CompletionTime, info.Progress)
	}
}

// Lookup fetches a stored record.
func (db *DBManager) Lookup(pool string, id int) (condor.JobInfo, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	info, ok := db.records[recordKey(pool, id)]
	return info, ok
}

// Len returns the stored record count.
func (db *DBManager) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.records)
}

// Save persists the repository to a JSON file — each Job Monitoring
// Service instance owns "a database repository" in the paper; this is its
// durability path.
func (db *DBManager) Save(path string) error {
	db.mu.RLock()
	data, err := json.MarshalIndent(db.records, "", "  ")
	db.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("jobmon: encoding repository: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load replaces the repository contents from a file written by Save.
func (db *DBManager) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("jobmon: reading repository: %w", err)
	}
	records := make(map[string]condor.JobInfo)
	if err := json.Unmarshal(data, &records); err != nil {
		return fmt.Errorf("jobmon: decoding repository: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.records = records
	return nil
}

// Collector is the Job Information Collector: it subscribes to execution
// services, harvests terminal snapshots into the DBManager, publishes
// state transitions to MonALISA, and serves live job queries.
type Collector struct {
	db   *DBManager
	repo *monalisa.Repository // optional

	mu     sync.Mutex
	pools  map[string]*condor.Pool
	events []condor.Event
	// notify, when set, is called after an event is queued so the owning
	// service can request an engine wakeup to drain it.
	notify func()
}

// NewCollector creates a collector backed by db.
func NewCollector(db *DBManager, repo *monalisa.Repository) *Collector {
	return &Collector{db: db, repo: repo, pools: make(map[string]*condor.Pool)}
}

// Watch subscribes the collector to an execution service's events.
func (c *Collector) Watch(pool *condor.Pool) {
	c.mu.Lock()
	c.pools[pool.Name] = pool
	c.mu.Unlock()
	pool.Subscribe(func(e condor.Event) {
		c.mu.Lock()
		c.events = append(c.events, e)
		notify := c.notify
		c.mu.Unlock()
		if notify != nil {
			notify()
		}
	})
}

// Pools returns the watched execution service names, sorted.
func (c *Collector) Pools() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.pools))
	for name := range c.pools {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Pool returns a watched pool by name.
func (c *Collector) Pool(name string) (*condor.Pool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pools[name]
	return p, ok
}

// Drain flushes queued execution-service events: every transition is
// published to MonALISA ("sends an update to MonALISA whenever the state
// of a job changes"), and terminal transitions store the job's final
// snapshot in the DBManager.
func (c *Collector) Drain() {
	c.mu.Lock()
	events := c.events
	c.events = nil
	pools := make(map[string]*condor.Pool, len(c.pools))
	for k, v := range c.pools {
		pools[k] = v
	}
	c.mu.Unlock()

	for _, e := range events {
		if c.repo != nil {
			src := monalisa.FormatJobSource(e.Pool, e.JobID)
			c.repo.PublishEvent(e.At, src, "status", fmt.Sprintf("%v->%v", e.From, e.To))
		}
		if !e.To.Terminal() {
			continue
		}
		pool := pools[e.Pool]
		if pool == nil {
			continue
		}
		info, err := pool.Job(e.JobID)
		if err != nil {
			continue // service down; the record stays live-only
		}
		c.db.Store(info)
	}
}

// Live fetches the current snapshot straight from the execution service.
func (c *Collector) Live(pool string, id int) (condor.JobInfo, error) {
	p, ok := c.Pool(pool)
	if !ok {
		return condor.JobInfo{}, fmt.Errorf("jobmon: unknown execution service %q", pool)
	}
	return p.Job(id)
}

// Manager is the JMManager: it serves queries from the DBManager first and
// falls back to the live collector.
type Manager struct {
	DB        *DBManager
	Collector *Collector
}

// NewManager wires the manager's two sources.
func NewManager(db *DBManager, col *Collector) *Manager {
	return &Manager{DB: db, Collector: col}
}

// Get resolves a job's monitoring information: stored record first, then
// live query.
func (m *Manager) Get(pool string, id int) (condor.JobInfo, error) {
	if info, ok := m.DB.Lookup(pool, id); ok {
		return info, nil
	}
	return m.Collector.Live(pool, id)
}

// List returns every known job at a pool (live list merged over stored
// terminal records, keyed by ID).
func (m *Manager) List(pool string) ([]condor.JobInfo, error) {
	p, ok := m.Collector.Pool(pool)
	if !ok {
		return nil, fmt.Errorf("jobmon: unknown execution service %q", pool)
	}
	live, err := p.Jobs()
	if err != nil {
		return nil, err
	}
	return live, nil
}

// Service is the complete Job Monitoring Service instance.
type Service struct {
	DB        *DBManager
	Collector *Collector
	Manager   *Manager
	// PollInterval controls how often running-job progress is published
	// to MonALISA. It is re-read at every poll, so changes apply from the
	// next one.
	PollInterval time.Duration

	drainWake *simgrid.Wake
	repo      *monalisa.Repository
}

// NewService assembles a Job Monitoring Service and registers it with the
// grid engine. The service is event-driven: a pool transition wakes its
// collector at the next legal boundary (exactly when the legacy per-tick
// drain would have seen it), and running-job progress publication runs
// on a PollInterval poller.
func NewService(grid *simgrid.Grid, repo *monalisa.Repository) *Service {
	db := NewDBManager(repo)
	col := NewCollector(db, repo)
	s := &Service{
		DB:           db,
		Collector:    col,
		Manager:      NewManager(db, col),
		PollInterval: 5 * time.Second,
		repo:         repo,
	}
	s.drainWake = grid.Engine.Register(func(time.Time) { s.Collector.Drain() })
	col.notify = func() { s.drainWake.Request(grid.Engine.Now()) }
	if repo != nil {
		// Registered after the drain wake, so a poll landing on the same
		// boundary as queued events publishes post-drain state — the
		// legacy drain-then-publish order within one tick.
		grid.Engine.NewPoller(func() time.Duration { return s.PollInterval }, s.publishProgress)
	}
	return s
}

// Watch attaches an execution service.
func (s *Service) Watch(pool *condor.Pool) { s.Collector.Watch(pool) }

// publishProgress publishes running-job progress and queue depths to
// MonALISA; the engine's Poller invokes it on the PollInterval cadence.
func (s *Service) publishProgress(now time.Time) {
	s.Collector.Drain()
	for _, name := range s.Collector.Pools() {
		pool, ok := s.Collector.Pool(name)
		if !ok {
			continue
		}
		jobs, err := pool.Jobs()
		if err != nil {
			continue
		}
		queued := 0
		for _, j := range jobs {
			switch j.Status {
			case condor.StatusRunning:
				src := monalisa.FormatJobSource(j.Pool, j.ID)
				s.repo.Publish(src, monalisa.MetricJobProgress, now, j.Progress)
			case condor.StatusIdle:
				queued++
			}
		}
		s.repo.Publish(name, monalisa.MetricQueuedJobs, now, float64(queued))
	}
}
