package jobmon

import (
	"context"

	"repro/internal/condor"
	"repro/internal/xmlrpc"
)

// InfoToStruct converts a job snapshot to an XML-RPC struct exposing the
// paper's monitoring fields.
func InfoToStruct(info condor.JobInfo) map[string]any {
	out := map[string]any{
		"id":                 info.ID,
		"pool":               info.Pool,
		"status":             info.Status.String(),
		"owner":              info.Owner,
		"cmd":                info.Cmd,
		"priority":           info.Priority,
		"env":                info.Env,
		"queue_position":     info.QueuePosition,
		"estimated_runtime":  info.EstimatedRuntime,
		"remaining_estimate": info.RemainingEstimate,
		"wallclock_seconds":  info.WallClock.Seconds(),
		"elapsed_seconds":    info.Elapsed.Seconds(),
		"cpu_seconds":        info.CPUSeconds,
		"progress":           info.Progress,
		"input_mb":           info.InputMB,
		"output_mb":          info.OutputMB,
		"node":               info.Node,
	}
	if !info.SubmitTime.IsZero() {
		out["submit_time"] = info.SubmitTime
	}
	if !info.StartTime.IsZero() {
		out["start_time"] = info.StartTime
	}
	if !info.CompletionTime.IsZero() {
		out["completion_time"] = info.CompletionTime
	}
	return out
}

// Methods returns the JMExecutable: the XML-RPC method set hosted on a
// Clarens server under the "jobmon" service name.
func (s *Service) Methods() map[string]xmlrpc.Handler {
	getInfo := func(args []any) (condor.JobInfo, error) {
		p := xmlrpc.Params(args)
		if err := p.Want(2); err != nil {
			return condor.JobInfo{}, err
		}
		pool, err := p.String(0)
		if err != nil {
			return condor.JobInfo{}, err
		}
		id, err := p.Int(1)
		if err != nil {
			return condor.JobInfo{}, err
		}
		info, err := s.Manager.Get(pool, id)
		if err != nil {
			return condor.JobInfo{}, xmlrpc.NewFault(xmlrpc.FaultApplication, "%v", err)
		}
		return info, nil
	}
	return map[string]xmlrpc.Handler{
		// info returns the full monitoring struct.
		"info": func(_ context.Context, args []any) (any, error) {
			info, err := getInfo(args)
			if err != nil {
				return nil, err
			}
			return InfoToStruct(info), nil
		},
		// status returns just the job status string.
		"status": func(_ context.Context, args []any) (any, error) {
			info, err := getInfo(args)
			if err != nil {
				return nil, err
			}
			return info.Status.String(), nil
		},
		// progress returns completion fraction in [0,1].
		"progress": func(_ context.Context, args []any) (any, error) {
			info, err := getInfo(args)
			if err != nil {
				return nil, err
			}
			return info.Progress, nil
		},
		// wallclock returns accumulated execution seconds (Condor
		// wall-clock), the Figure 7 progress proxy.
		"wallclock": func(_ context.Context, args []any) (any, error) {
			info, err := getInfo(args)
			if err != nil {
				return nil, err
			}
			return info.WallClock.Seconds(), nil
		},
		// elapsed returns seconds since submission.
		"elapsed": func(_ context.Context, args []any) (any, error) {
			info, err := getInfo(args)
			if err != nil {
				return nil, err
			}
			return info.Elapsed.Seconds(), nil
		},
		// remaining returns the estimated seconds left.
		"remaining": func(_ context.Context, args []any) (any, error) {
			info, err := getInfo(args)
			if err != nil {
				return nil, err
			}
			return info.RemainingEstimate, nil
		},
		// queueposition returns the 1-based queue slot (0 = not queued).
		"queueposition": func(_ context.Context, args []any) (any, error) {
			info, err := getInfo(args)
			if err != nil {
				return nil, err
			}
			return info.QueuePosition, nil
		},
		// list returns every job at an execution service.
		"list": func(_ context.Context, args []any) (any, error) {
			p := xmlrpc.Params(args)
			pool, err := p.String(0)
			if err != nil {
				return nil, err
			}
			jobs, err := s.Manager.List(pool)
			if err != nil {
				return nil, xmlrpc.NewFault(xmlrpc.FaultApplication, "%v", err)
			}
			out := make([]any, len(jobs))
			for i, j := range jobs {
				out[i] = InfoToStruct(j)
			}
			return out, nil
		},
		// pools lists the watched execution services.
		"pools": func(context.Context, []any) (any, error) {
			names := s.Collector.Pools()
			out := make([]any, len(names))
			for i, n := range names {
				out[i] = n
			}
			return out, nil
		},
	}
}
