package jobmon

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/clarens"
	"repro/internal/classad"
	"repro/internal/condor"
	"repro/internal/monalisa"
	"repro/internal/simgrid"
	"repro/internal/xmlrpc"
	"repro/pkg/gae"
)

// fixture: one-site grid with a pool and a jobmon service.
func newFixture(t *testing.T) (*simgrid.Grid, *condor.Pool, *monalisa.Repository, *Service) {
	t.Helper()
	g := simgrid.NewGrid(time.Second, 1)
	site := g.AddSite("siteA")
	pool := condor.NewPool("poolA", g, site)
	pool.AddMachine(site.AddNode(g.Engine, "n1", 1, simgrid.IdleLoad()), nil)
	repo := monalisa.NewRepository()
	svc := NewService(g, repo)
	svc.Watch(pool)
	return g, pool, repo, svc
}

func submit(t *testing.T, pool *condor.Pool, cpu float64, prio int) int {
	t.Helper()
	ad := classad.New().
		Set(condor.AttrOwner, "alice").
		Set(condor.AttrCmd, "analysis").
		Set(condor.AttrCpuSeconds, cpu).
		Set(condor.AttrPriority, prio).
		Set(condor.AttrEstimate, cpu).
		Set(condor.AttrEnv, "MODE=test")
	id, err := pool.Submit(ad)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestManagerLiveLookup(t *testing.T) {
	g, pool, _, svc := newFixture(t)
	id := submit(t, pool, 100, 0)
	g.Engine.RunFor(10 * time.Second)
	info, err := svc.Manager.Get("poolA", id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != condor.StatusRunning || info.Owner != "alice" {
		t.Fatalf("live info = %+v", info)
	}
	// Live lookups do not come from the DB.
	if svc.DB.Len() != 0 {
		t.Fatalf("DB has %d records for a running job", svc.DB.Len())
	}
}

func TestTerminalJobStoredInDB(t *testing.T) {
	g, pool, _, svc := newFixture(t)
	id := submit(t, pool, 10, 0)
	g.Engine.RunFor(15 * time.Second)
	if svc.DB.Len() != 1 {
		t.Fatalf("DB records = %d, want 1", svc.DB.Len())
	}
	stored, ok := svc.DB.Lookup("poolA", id)
	if !ok || stored.Status != condor.StatusCompleted {
		t.Fatalf("stored = %+v, %v", stored, ok)
	}
	// Manager now answers from the DB even if the pool dies.
	pool.Fail()
	info, err := svc.Manager.Get("poolA", id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != condor.StatusCompleted {
		t.Fatalf("post-failure info = %+v", info)
	}
}

func TestManagerFallsBackToLiveOnMiss(t *testing.T) {
	g, pool, _, svc := newFixture(t)
	id := submit(t, pool, 100, 0)
	g.Engine.RunFor(5 * time.Second)
	if _, ok := svc.DB.Lookup("poolA", id); ok {
		t.Fatal("running job unexpectedly in DB")
	}
	if _, err := svc.Manager.Get("poolA", id); err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if _, err := svc.Manager.Get("ghostpool", 1); err == nil {
		t.Fatal("unknown pool lookup succeeded")
	}
	if _, err := svc.Manager.Get("poolA", 999); err == nil {
		t.Fatal("unknown job lookup succeeded")
	}
}

func TestStatusChangePublishedToMonALISA(t *testing.T) {
	g, pool, repo, _ := newFixture(t)
	id := submit(t, pool, 10, 0)
	g.Engine.RunFor(15 * time.Second)
	src := monalisa.FormatJobSource("poolA", id)
	events := repo.Events(time.Time{}, src)
	if len(events) < 3 { // idle, idle->running, running->completed
		t.Fatalf("MonALISA events = %+v", events)
	}
	last := events[len(events)-1]
	if !strings.Contains(last.Detail, "completed") {
		t.Fatalf("last event = %+v", last)
	}
}

func TestRunningProgressPublished(t *testing.T) {
	g, pool, repo, _ := newFixture(t)
	id := submit(t, pool, 120, 0)
	g.Engine.RunFor(60 * time.Second)
	src := monalisa.FormatJobSource("poolA", id)
	pts := repo.Series(src, monalisa.MetricJobProgress, time.Time{}, g.Engine.Now())
	if len(pts) < 5 {
		t.Fatalf("progress series = %d points", len(pts))
	}
	lastVal := pts[len(pts)-1].Value
	if lastVal < 0.4 || lastVal > 0.6 {
		t.Fatalf("progress at 60s = %v, want ≈0.5", lastVal)
	}
	// Monotone non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value {
			t.Fatalf("progress not monotone: %v", pts)
		}
	}
}

func TestQueuedJobsMetric(t *testing.T) {
	g, pool, repo, _ := newFixture(t)
	submit(t, pool, 1000, 5) // occupies the only machine
	submit(t, pool, 10, 0)   // queued
	submit(t, pool, 10, 0)   // queued
	g.Engine.RunFor(10 * time.Second)
	if got := repo.LatestValue("poolA", monalisa.MetricQueuedJobs, -1); got != 2 {
		t.Fatalf("queued jobs metric = %v", got)
	}
}

func TestManagerList(t *testing.T) {
	g, pool, _, svc := newFixture(t)
	submit(t, pool, 10, 0)
	submit(t, pool, 20, 0)
	g.Engine.Step()
	jobs, err := svc.Manager.List("poolA")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("List = %d jobs", len(jobs))
	}
	if _, err := svc.Manager.List("ghost"); err == nil {
		t.Fatal("List of unknown pool succeeded")
	}
}

func TestInfoDTOFields(t *testing.T) {
	g, pool, _, svc := newFixture(t)
	id := submit(t, pool, 100, 3)
	g.Engine.RunFor(10 * time.Second)
	info, err := svc.Manager.Get("poolA", id)
	if err != nil {
		t.Fatal(err)
	}
	w, err := xmlrpc.Marshal(InfoDTO(info))
	if err != nil {
		t.Fatal(err)
	}
	m := w.(map[string]any)
	// Every paper-mandated field must keep its wire name.
	for _, key := range []string{
		"status", "remaining_estimate", "elapsed_seconds", "estimated_runtime",
		"queue_position", "priority", "submit_time", "start_time",
		"cpu_seconds", "input_mb", "output_mb", "owner", "env",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("InfoDTO wire struct missing %q", key)
		}
	}
	if m["owner"] != "alice" || m["priority"] != 3 || m["env"] != "MODE=test" {
		t.Fatalf("struct = %v", m)
	}
	if _, ok := m["completion_time"]; ok {
		t.Error("running job has completion_time")
	}
	// The struct must be XML-RPC encodable as-is.
	if _, err := xmlrpc.EncodeResponse(w); err != nil {
		t.Fatalf("struct not encodable: %v", err)
	}
}

// rpcFixture hosts the jobmon service on a Clarens server over HTTP.
func rpcFixture(t *testing.T) (*simgrid.Grid, *condor.Pool, *clarens.Client) {
	t.Helper()
	g, pool, _, svc := newFixture(t)
	srv := clarens.NewServer("host", nil)
	srv.RegisterService("jobmon", "job monitoring service", gae.JobMonHandlers(svc.API()))
	srv.ACL.Allow("*", "jobmon.*") // monitoring data is world-readable
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	srv.SetBaseURL(hs.URL)
	return g, pool, clarens.NewClient(hs.URL)
}

func TestRPCStatusAndInfo(t *testing.T) {
	g, pool, c := rpcFixture(t)
	id := submit(t, pool, 100, 0)
	g.Engine.RunFor(10 * time.Second)
	ctx := context.Background()
	status, err := c.CallString(ctx, "jobmon.status", "poolA", id)
	if err != nil {
		t.Fatal(err)
	}
	if status != "running" {
		t.Fatalf("status = %q", status)
	}
	info, err := c.CallStruct(ctx, "jobmon.info", "poolA", id)
	if err != nil {
		t.Fatal(err)
	}
	if info["owner"] != "alice" {
		t.Fatalf("info = %v", info)
	}
	wall, err := c.CallFloat(ctx, "jobmon.wallclock", "poolA", id)
	if err != nil {
		t.Fatal(err)
	}
	if wall < 8 || wall > 11 {
		t.Fatalf("wallclock = %v", wall)
	}
	prog, err := c.CallFloat(ctx, "jobmon.progress", "poolA", id)
	if err != nil {
		t.Fatal(err)
	}
	if prog < 0.08 || prog > 0.12 {
		t.Fatalf("progress = %v", prog)
	}
}

func TestRPCListAndPools(t *testing.T) {
	g, pool, c := rpcFixture(t)
	submit(t, pool, 10, 0)
	submit(t, pool, 20, 0)
	g.Engine.Step()
	ctx := context.Background()
	jobs, err := c.CallArray(ctx, "jobmon.list", "poolA")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("list = %d", len(jobs))
	}
	pools, err := c.CallArray(ctx, "jobmon.pools")
	if err != nil {
		t.Fatal(err)
	}
	if len(pools) != 1 || pools[0] != "poolA" {
		t.Fatalf("pools = %v", pools)
	}
}

func TestRPCErrors(t *testing.T) {
	_, _, c := rpcFixture(t)
	ctx := context.Background()
	if _, err := c.Call(ctx, "jobmon.status", "poolA"); !xmlrpc.IsFault(err, xmlrpc.FaultInvalidParams) {
		t.Fatalf("short args error = %v", err)
	}
	if _, err := c.Call(ctx, "jobmon.status", "poolA", 999); !xmlrpc.IsFault(err, xmlrpc.FaultApplication) {
		t.Fatalf("missing job error = %v", err)
	}
	if _, err := c.Call(ctx, "jobmon.list", "ghost"); !xmlrpc.IsFault(err, xmlrpc.FaultApplication) {
		t.Fatalf("ghost pool error = %v", err)
	}
	if _, err := c.Call(ctx, "jobmon.status", 5, "x"); !xmlrpc.IsFault(err, xmlrpc.FaultInvalidParams) {
		t.Fatalf("type error = %v", err)
	}
}

func TestRemainingAndQueuePositionRPC(t *testing.T) {
	g, pool, c := rpcFixture(t)
	submit(t, pool, 1000, 9)      // hogs the machine
	id := submit(t, pool, 100, 0) // queued
	g.Engine.RunFor(5 * time.Second)
	ctx := context.Background()
	qp, err := c.CallInt(ctx, "jobmon.queueposition", "poolA", id)
	if err != nil {
		t.Fatal(err)
	}
	if qp != 1 {
		t.Fatalf("queue position = %d", qp)
	}
	rem, err := c.CallFloat(ctx, "jobmon.remaining", "poolA", id)
	if err != nil {
		t.Fatal(err)
	}
	if rem != 100 { // estimate 100, no wallclock yet
		t.Fatalf("remaining = %v", rem)
	}
	el, err := c.CallFloat(ctx, "jobmon.elapsed", "poolA", id)
	if err != nil {
		t.Fatal(err)
	}
	if el < 4 || el > 6 {
		t.Fatalf("elapsed = %v", el)
	}
}

func TestDBManagerSaveLoad(t *testing.T) {
	g, pool, _, svc := newFixture(t)
	id := submit(t, pool, 10, 0)
	g.Engine.RunFor(15 * time.Second)
	if svc.DB.Len() != 1 {
		t.Fatalf("records = %d", svc.DB.Len())
	}
	path := filepath.Join(t.TempDir(), "jobdb.json")
	if err := svc.DB.Save(path); err != nil {
		t.Fatal(err)
	}
	fresh := NewDBManager(nil)
	if err := fresh.Load(path); err != nil {
		t.Fatal(err)
	}
	got, ok := fresh.Lookup("poolA", id)
	if !ok {
		t.Fatal("record lost in round trip")
	}
	if got.Status != condor.StatusCompleted || got.Owner != "alice" {
		t.Fatalf("round trip = %+v", got)
	}
	if got.WallClock.Seconds() < 9 || got.WallClock.Seconds() > 11 {
		t.Fatalf("wallclock round trip = %v", got.WallClock)
	}
	if err := fresh.Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("loading missing file succeeded")
	}
}
