package condor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/classad"
	"repro/internal/simgrid"
)

// testPool builds a grid with one site of n idle Mips-1 nodes and a pool.
func testPool(t *testing.T, n int) (*simgrid.Grid, *Pool) {
	t.Helper()
	g := simgrid.NewGrid(time.Second, 1)
	site := g.AddSite("siteA")
	p := NewPool("poolA", g, site)
	for i := 0; i < n; i++ {
		node := site.AddNode(g.Engine, nodeName(i), 1.0, simgrid.IdleLoad())
		p.AddMachine(node, nil)
	}
	return g, p
}

func nodeName(i int) string { return string(rune('a'+i)) + "-node" }

// jobAd builds a minimal job ad.
func jobAd(owner string, cpu float64, prio int) *classad.Ad {
	return classad.New().
		Set(AttrOwner, owner).
		Set(AttrCmd, "primes").
		Set(AttrCpuSeconds, cpu).
		Set(AttrPriority, prio)
}

func mustSubmit(t *testing.T, p *Pool, ad *classad.Ad) int {
	t.Helper()
	id, err := p.Submit(ad)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return id
}

func mustJob(t *testing.T, p *Pool, id int) JobInfo {
	t.Helper()
	info, err := p.Job(id)
	if err != nil {
		t.Fatalf("Job(%d): %v", id, err)
	}
	return info
}

func TestSubmitValidation(t *testing.T) {
	_, p := testPool(t, 1)
	if _, err := p.Submit(nil); err == nil {
		t.Error("nil ad accepted")
	}
	if _, err := p.Submit(classad.New().Set(AttrOwner, "x")); err == nil {
		t.Error("ad without CpuSeconds accepted")
	}
	if _, err := p.Submit(classad.New().Set(AttrCpuSeconds, -5)); err == nil {
		t.Error("negative CpuSeconds accepted")
	}
}

func TestJobRunsToCompletion(t *testing.T) {
	g, p := testPool(t, 1)
	id := mustSubmit(t, p, jobAd("alice", 30, 0))
	info := mustJob(t, p, id)
	if info.Status != StatusIdle || info.QueuePosition != 1 {
		t.Fatalf("fresh job = %+v", info)
	}
	g.Engine.Step() // negotiation places the job
	if got := mustJob(t, p, id); got.Status != StatusRunning || got.Node == "" {
		t.Fatalf("after negotiation = %+v", got)
	}
	g.Engine.RunFor(35 * time.Second)
	final := mustJob(t, p, id)
	if final.Status != StatusCompleted {
		t.Fatalf("final = %+v", final)
	}
	if final.Progress != 1 || math.Abs(final.CPUSeconds-30) > 1e-9 {
		t.Fatalf("accounting = %+v", final)
	}
	if final.CompletionTime.Sub(final.SubmitTime) > 35*time.Second {
		t.Fatalf("completion took %v", final.CompletionTime.Sub(final.SubmitTime))
	}
	if final.Elapsed != final.CompletionTime.Sub(final.SubmitTime) {
		t.Fatalf("Elapsed %v != completion-submit %v", final.Elapsed, final.CompletionTime.Sub(final.SubmitTime))
	}
}

func TestPriorityOrdering(t *testing.T) {
	g, p := testPool(t, 1) // single machine: jobs run one at a time
	low := mustSubmit(t, p, jobAd("alice", 10, 1))
	high := mustSubmit(t, p, jobAd("bob", 10, 9))
	g.Engine.Step()
	if got := mustJob(t, p, high); got.Status != StatusRunning {
		t.Fatalf("high-priority job = %v", got.Status)
	}
	if got := mustJob(t, p, low); got.Status != StatusIdle {
		t.Fatalf("low-priority job = %v", got.Status)
	}
	// FIFO within a priority level.
	first := mustSubmit(t, p, jobAd("c", 10, 1))
	second := mustSubmit(t, p, jobAd("d", 10, 1))
	g.Engine.RunFor(12 * time.Second) // high finishes, one of the prio-1 jobs starts
	running := 0
	for _, id := range []int{low, first, second} {
		if mustJob(t, p, id).Status == StatusRunning {
			running++
			if id != low {
				t.Fatalf("job %d ran before the older job %d", id, low)
			}
		}
	}
	if running != 1 {
		t.Fatalf("%d prio-1 jobs running, want 1", running)
	}
}

func TestQueuePositionsReflectPriority(t *testing.T) {
	_, p := testPool(t, 0) // no machines: everything stays queued
	a := mustSubmit(t, p, jobAd("a", 10, 1))
	b := mustSubmit(t, p, jobAd("b", 10, 5))
	c := mustSubmit(t, p, jobAd("c", 10, 1))
	if got := mustJob(t, p, b).QueuePosition; got != 1 {
		t.Errorf("high-prio position = %d", got)
	}
	if got := mustJob(t, p, a).QueuePosition; got != 2 {
		t.Errorf("older prio-1 position = %d", got)
	}
	if got := mustJob(t, p, c).QueuePosition; got != 3 {
		t.Errorf("newer prio-1 position = %d", got)
	}
}

func TestQueueAbove(t *testing.T) {
	_, p := testPool(t, 0)
	mustSubmit(t, p, jobAd("a", 10, 1))
	b := mustSubmit(t, p, jobAd("b", 20, 5))
	c := mustSubmit(t, p, jobAd("c", 10, 3))
	above, err := p.QueueAbove(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(above) != 1 || above[0].ID != b {
		t.Fatalf("QueueAbove = %+v", above)
	}
	if _, err := p.QueueAbove(99); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("QueueAbove(99) = %v", err)
	}
}

func TestSuspendResume(t *testing.T) {
	g, p := testPool(t, 1)
	id := mustSubmit(t, p, jobAd("alice", 50, 0))
	g.Engine.RunFor(10 * time.Second)
	if err := p.Suspend(id); err != nil {
		t.Fatal(err)
	}
	atSuspend := mustJob(t, p, id)
	if atSuspend.Status != StatusSuspended {
		t.Fatalf("status = %v", atSuspend.Status)
	}
	g.Engine.RunFor(30 * time.Second)
	frozen := mustJob(t, p, id)
	if frozen.CPUSeconds != atSuspend.CPUSeconds {
		t.Fatalf("suspended job progressed: %v → %v", atSuspend.CPUSeconds, frozen.CPUSeconds)
	}
	if err := p.Resume(id); err != nil {
		t.Fatal(err)
	}
	g.Engine.RunFor(60 * time.Second)
	if got := mustJob(t, p, id); got.Status != StatusCompleted {
		t.Fatalf("after resume = %+v", got)
	}
	// Double suspend/resume on wrong states error.
	if err := p.Suspend(id); err == nil {
		t.Error("suspending a completed job succeeded")
	}
	if err := p.Resume(id); err == nil {
		t.Error("resuming a completed job succeeded")
	}
}

func TestRemove(t *testing.T) {
	g, p := testPool(t, 1)
	id := mustSubmit(t, p, jobAd("alice", 50, 0))
	g.Engine.RunFor(5 * time.Second)
	if err := p.Remove(id); err != nil {
		t.Fatal(err)
	}
	info := mustJob(t, p, id)
	if info.Status != StatusRemoved {
		t.Fatalf("status = %v", info.Status)
	}
	g.Engine.RunFor(60 * time.Second)
	if got := mustJob(t, p, id); got.Status != StatusRemoved {
		t.Fatalf("removed job changed state to %v", got.Status)
	}
	if err := p.Remove(id); err == nil {
		t.Error("double remove succeeded")
	}
	// Removing an idle job dequeues it.
	idle := mustSubmit(t, p, jobAd("bob", 50, 0))
	if err := p.Remove(idle); err != nil {
		t.Fatal(err)
	}
	g.Engine.Step()
	if got := mustJob(t, p, idle); got.Status != StatusRemoved {
		t.Fatalf("idle remove = %v", got.Status)
	}
}

func TestSetPriorityReordersQueue(t *testing.T) {
	_, p := testPool(t, 0)
	a := mustSubmit(t, p, jobAd("a", 10, 1))
	b := mustSubmit(t, p, jobAd("b", 10, 1))
	if err := p.SetPriority(b, 10); err != nil {
		t.Fatal(err)
	}
	if got := mustJob(t, p, b).QueuePosition; got != 1 {
		t.Fatalf("boosted job position = %d", got)
	}
	if got := mustJob(t, p, a).QueuePosition; got != 2 {
		t.Fatalf("other job position = %d", got)
	}
	if got := mustJob(t, p, b).Priority; got != 10 {
		t.Fatalf("priority = %d", got)
	}
}

func TestWallClockExcludesQueueTime(t *testing.T) {
	g, p := testPool(t, 1)
	first := mustSubmit(t, p, jobAd("a", 20, 5))
	second := mustSubmit(t, p, jobAd("b", 10, 0))
	g.Engine.RunFor(25 * time.Second) // first runs 20s, then second starts
	_ = first
	info := mustJob(t, p, second)
	if info.Status != StatusRunning {
		t.Fatalf("second job = %v", info.Status)
	}
	// Second job waited ~21s in queue; its wall-clock must reflect only
	// execution time (~4s), while Elapsed includes the wait.
	if got := info.WallClock.Seconds(); got > 5 {
		t.Fatalf("wall clock = %vs includes queue time", got)
	}
	if got := info.Elapsed.Seconds(); got < 24 {
		t.Fatalf("elapsed = %vs, want ~25s", got)
	}
}

func TestRequirementsRespected(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	site := g.AddSite("s")
	p := NewPool("p", g, site)
	small := site.AddNode(g.Engine, "small", 1, simgrid.IdleLoad())
	big := site.AddNode(g.Engine, "big", 1, simgrid.IdleLoad())
	p.AddMachine(small, classad.New().Set("Memory", 512))
	p.AddMachine(big, classad.New().Set("Memory", 4096))
	ad := jobAd("alice", 10, 0)
	ad.MustSetExpr(AttrRequirements, "TARGET.Memory >= 2048")
	id := mustSubmit(t, p, ad)
	g.Engine.Step()
	info := mustJob(t, p, id)
	if info.Node != "big" {
		t.Fatalf("job placed on %q, want big", info.Node)
	}
}

func TestUnsatisfiableRequirementsStayIdle(t *testing.T) {
	g, p := testPool(t, 2)
	ad := jobAd("alice", 10, 0)
	ad.MustSetExpr(AttrRequirements, "TARGET.Memory >= 1")
	id := mustSubmit(t, p, ad) // machines advertise no Memory attribute
	g.Engine.RunFor(10 * time.Second)
	if got := mustJob(t, p, id); got.Status != StatusIdle {
		t.Fatalf("unmatchable job = %v", got.Status)
	}
}

func TestRankPrefersFasterMachine(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	site := g.AddSite("s")
	p := NewPool("p", g, site)
	slow := site.AddNode(g.Engine, "slow", 1.0, simgrid.IdleLoad())
	fast := site.AddNode(g.Engine, "fast", 2.0, simgrid.IdleLoad())
	p.AddMachine(slow, nil)
	p.AddMachine(fast, nil)
	ad := jobAd("alice", 10, 0)
	ad.MustSetExpr(AttrRank, "TARGET.Mips")
	id := mustSubmit(t, p, ad)
	g.Engine.Step()
	if got := mustJob(t, p, id); got.Node != "fast" {
		t.Fatalf("ranked job on %q, want fast", got.Node)
	}
}

func TestEventsEmittedInOrder(t *testing.T) {
	g, p := testPool(t, 1)
	var events []Event
	p.Subscribe(func(e Event) { events = append(events, e) })
	id := mustSubmit(t, p, jobAd("alice", 5, 0))
	g.Engine.RunFor(10 * time.Second)
	var got []Status
	for _, e := range events {
		if e.JobID == id {
			got = append(got, e.To)
		}
	}
	want := []Status{StatusIdle, StatusRunning, StatusCompleted}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events = %v, want %v", got, want)
		}
	}
}

func TestOutputFileProduced(t *testing.T) {
	g, p := testPool(t, 1)
	ad := jobAd("alice", 5, 0)
	ad.Set(AttrOutputFile, "result.root")
	ad.Set(AttrOutputMB, 42.0)
	mustSubmit(t, p, ad)
	g.Engine.RunFor(10 * time.Second)
	f, ok := p.Site().Storage().Get("result.root")
	if !ok || f.SizeMB != 42 {
		t.Fatalf("output file = %+v, %v", f, ok)
	}
}

func TestFailureInjection(t *testing.T) {
	g, p := testPool(t, 1)
	ad := jobAd("alice", 100, 0)
	ad.Set(AttrFailAfter, 10.0)
	id := mustSubmit(t, p, ad)
	g.Engine.RunFor(30 * time.Second)
	info := mustJob(t, p, id)
	if info.Status != StatusFailed {
		t.Fatalf("status = %v, want failed", info.Status)
	}
	if info.CPUSeconds < 10 || info.CPUSeconds > 12 {
		t.Fatalf("failed at %v cpu-seconds", info.CPUSeconds)
	}
}

func TestPoolFailAndRecover(t *testing.T) {
	g, p := testPool(t, 1)
	id := mustSubmit(t, p, jobAd("alice", 60, 0))
	g.Engine.RunFor(10 * time.Second)
	p.Fail()
	if p.Healthy() {
		t.Fatal("failed pool reports healthy")
	}
	if _, err := p.Job(id); !errors.Is(err, ErrPoolDown) {
		t.Fatalf("Job on failed pool = %v", err)
	}
	if _, err := p.Jobs(); !errors.Is(err, ErrPoolDown) {
		t.Fatalf("Jobs on failed pool = %v", err)
	}
	if _, err := p.Submit(jobAd("x", 1, 0)); !errors.Is(err, ErrPoolDown) {
		t.Fatalf("Submit on failed pool = %v", err)
	}
	if err := p.Suspend(id); !errors.Is(err, ErrPoolDown) {
		t.Fatalf("Suspend on failed pool = %v", err)
	}
	g.Engine.RunFor(30 * time.Second)
	p.Recover()
	// Job did not progress while the service was down.
	info := mustJob(t, p, id)
	if info.CPUSeconds > 12 {
		t.Fatalf("job progressed during outage: %v cpu-s", info.CPUSeconds)
	}
	g.Engine.RunFor(60 * time.Second)
	if got := mustJob(t, p, id); got.Status != StatusCompleted {
		t.Fatalf("after recovery = %v", got.Status)
	}
}

func TestCheckpointMigration(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	siteA := g.AddSite("a")
	siteB := g.AddSite("b")
	poolA := NewPool("poolA", g, siteA)
	poolB := NewPool("poolB", g, siteB)
	poolA.AddMachine(siteA.AddNode(g.Engine, "a1", 1, simgrid.IdleLoad()), nil)
	poolB.AddMachine(siteB.AddNode(g.Engine, "b1", 1, simgrid.IdleLoad()), nil)

	ad := jobAd("alice", 100, 0)
	ad.Set(AttrCheckpoint, true)
	id, err := poolA.Submit(ad)
	if err != nil {
		t.Fatal(err)
	}
	g.Engine.RunFor(40 * time.Second)
	cpu, err := poolA.Checkpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	if cpu < 38 || cpu > 40 {
		t.Fatalf("checkpoint = %v cpu-s", cpu)
	}
	if err := poolA.Remove(id); err != nil {
		t.Fatal(err)
	}
	id2, err := poolB.SubmitCheckpointed(ad, cpu)
	if err != nil {
		t.Fatal(err)
	}
	start := g.Engine.Now()
	if err := g.Engine.RunUntil(func() bool {
		info, err := poolB.Job(id2)
		return err == nil && info.Status == StatusCompleted
	}, 120*time.Second); err != nil {
		t.Fatal(err)
	}
	// Only the remaining ~60s of work should have run at B.
	migrated := g.Engine.Now().Sub(start)
	if migrated > 65*time.Second {
		t.Fatalf("migrated job took %v, want ~61s", migrated)
	}
	info, _ := poolB.Job(id2)
	if info.Progress != 1 {
		t.Fatalf("migrated progress = %v", info.Progress)
	}
}

func TestNonCheckpointableRestartsFromZero(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	site := g.AddSite("a")
	p := NewPool("p", g, site)
	p.AddMachine(site.AddNode(g.Engine, "n", 1, simgrid.IdleLoad()), nil)
	ad := jobAd("alice", 50, 0) // Checkpointable unset
	id, err := p.SubmitCheckpointed(ad, 40)
	if err != nil {
		t.Fatal(err)
	}
	g.Engine.RunFor(20 * time.Second)
	info := mustJob(t, p, id)
	if info.Status != StatusRunning || info.CPUSeconds > 20 {
		t.Fatalf("non-checkpointable restart = %+v", info)
	}
	if _, err := p.SubmitCheckpointed(ad, -1); err == nil {
		t.Fatal("negative checkpoint accepted")
	}
}

func TestCheckpointCoversAllWork(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	site := g.AddSite("a")
	p := NewPool("p", g, site)
	p.AddMachine(site.AddNode(g.Engine, "n", 1, simgrid.IdleLoad()), nil)
	ad := jobAd("alice", 50, 0)
	ad.Set(AttrCheckpoint, true)
	id, err := p.SubmitCheckpointed(ad, 50)
	if err != nil {
		t.Fatal(err)
	}
	g.Engine.Step()
	if got := mustJob(t, p, id); got.Status != StatusCompleted {
		t.Fatalf("fully-checkpointed job = %v", got.Status)
	}
}

func TestFlocking(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	siteA := g.AddSite("a")
	siteB := g.AddSite("b")
	poolA := NewPool("poolA", g, siteA)
	poolB := NewPool("poolB", g, siteB)
	// Pool A has no machines at all; B has one.
	poolB.AddMachine(siteB.AddNode(g.Engine, "b1", 1, simgrid.IdleLoad()), nil)
	poolA.EnableFlocking(poolB)
	id, err := poolA.Submit(jobAd("alice", 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	g.Engine.RunFor(15 * time.Second)
	info := mustJob(t, poolA, id)
	if info.Status != StatusCompleted {
		t.Fatalf("flocked job = %v", info.Status)
	}
	if info.Node != "b1" {
		t.Fatalf("flocked job ran on %q", info.Node)
	}
}

func TestJobsSnapshotOrdered(t *testing.T) {
	_, p := testPool(t, 0)
	for i := 0; i < 5; i++ {
		mustSubmit(t, p, jobAd("u", 10, i))
	}
	jobs, err := p.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 5 {
		t.Fatalf("len = %d", len(jobs))
	}
	for i, j := range jobs {
		if j.ID != i+1 {
			t.Fatalf("jobs[%d].ID = %d", i, j.ID)
		}
	}
}

func TestRemainingEstimate(t *testing.T) {
	g, p := testPool(t, 1)
	ad := jobAd("alice", 100, 0)
	ad.Set(AttrEstimate, 100.0)
	id := mustSubmit(t, p, ad)
	g.Engine.RunFor(40 * time.Second)
	info := mustJob(t, p, id)
	if math.Abs(info.RemainingEstimate-60) > 2 {
		t.Fatalf("remaining = %v, want ~60", info.RemainingEstimate)
	}
	g.Engine.RunFor(70 * time.Second)
	if got := mustJob(t, p, id).RemainingEstimate; got != 0 {
		t.Fatalf("remaining after completion = %v", got)
	}
}

func TestParseEnv(t *testing.T) {
	m := ParseEnv("HOME=/u/alice;DEBUG=1;;BAD;X=a=b")
	if m["HOME"] != "/u/alice" || m["DEBUG"] != "1" || m["X"] != "a=b" {
		t.Fatalf("ParseEnv = %v", m)
	}
	if len(ParseEnv("")) != 0 {
		t.Fatal("empty env not empty")
	}
}

func TestErrNoSuchJob(t *testing.T) {
	_, p := testPool(t, 0)
	if _, err := p.Job(42); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("Job(42) = %v", err)
	}
	if err := p.Suspend(42); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("Suspend(42) = %v", err)
	}
}

func TestStatusStringsAndTerminal(t *testing.T) {
	cases := map[Status]string{
		StatusIdle: "idle", StatusRunning: "running", StatusSuspended: "suspended",
		StatusCompleted: "completed", StatusFailed: "failed", StatusRemoved: "removed",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if StatusIdle.Terminal() || StatusRunning.Terminal() || StatusSuspended.Terminal() {
		t.Error("non-terminal state reports terminal")
	}
	if !StatusCompleted.Terminal() || !StatusFailed.Terminal() || !StatusRemoved.Terminal() {
		t.Error("terminal state reports non-terminal")
	}
}

func TestManyJobsManyMachinesThroughput(t *testing.T) {
	g, p := testPool(t, 4)
	const n = 16
	ids := make([]int, n)
	for i := range ids {
		ids[i] = mustSubmit(t, p, jobAd("u", 10, 0))
	}
	// 16 jobs × 10s on 4 machines = 40s serial; allow negotiation slack.
	if err := g.Engine.RunUntil(func() bool {
		for _, id := range ids {
			info, err := p.Job(id)
			if err != nil || info.Status != StatusCompleted {
				return false
			}
		}
		return true
	}, 60*time.Second); err != nil {
		t.Fatal(err)
	}
}

// Property: for any running job, accumulated wall-clock never exceeds the
// time since its start, and CPU-seconds never exceed wall-clock × Mips.
func TestQuickWallClockInvariants(t *testing.T) {
	f := func(loadPct, runSecs uint8) bool {
		load := float64(loadPct%95) / 100
		run := int(runSecs%120) + 10
		g := simgrid.NewGrid(time.Second, 1)
		site := g.AddSite("s")
		p := NewPool("p", g, site)
		p.AddMachine(site.AddNode(g.Engine, "n", 1.0, simgrid.ConstantLoad(load)), nil)
		id, err := p.Submit(jobAd("u", 1e6, 0))
		if err != nil {
			return false
		}
		g.Engine.RunFor(time.Duration(run) * time.Second)
		info, err := p.Job(id)
		if err != nil {
			return false
		}
		if info.StartTime.IsZero() {
			return true
		}
		// One tick of slack: the job receives its first tick's CPU in the
		// same engine step that stamps its start time.
		sinceStart := g.Engine.Now().Sub(info.StartTime).Seconds() + 1
		if info.WallClock.Seconds() > sinceStart+1e-6 {
			return false
		}
		return info.CPUSeconds <= info.WallClock.Seconds()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the negotiator never places two jobs on one machine.
func TestQuickOneJobPerMachine(t *testing.T) {
	f := func(nJobs, nMachines uint8) bool {
		j := int(nJobs%12) + 1
		m := int(nMachines%4) + 1
		g := simgrid.NewGrid(time.Second, 1)
		site := g.AddSite("s")
		p := NewPool("p", g, site)
		nodes := make([]*simgrid.Node, m)
		for i := 0; i < m; i++ {
			nodes[i] = site.AddNode(g.Engine, nodeName(i), 1.0, simgrid.IdleLoad())
			p.AddMachine(nodes[i], nil)
		}
		for i := 0; i < j; i++ {
			if _, err := p.Submit(jobAd("u", 1000, i%3)); err != nil {
				return false
			}
		}
		g.Engine.RunFor(5 * time.Second)
		for _, n := range nodes {
			if len(n.Tasks()) > 1 {
				return false
			}
		}
		jobs, err := p.Jobs()
		if err != nil {
			return false
		}
		running := 0
		for _, info := range jobs {
			if info.Status == StatusRunning {
				running++
			}
		}
		want := j
		if m < j {
			want = m
		}
		return running == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
