package condor

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/classad"
	"repro/internal/fairshare"
	"repro/internal/simgrid"
)

// The tick-vs-event equivalence suite: identically seeded scenarios must
// produce byte-identical job traces (every state transition with its
// timestamp), assignments, and accounting under the legacy fixed-tick
// driver and the discrete-event driver. This is the contract that lets
// RunFor skip idle boundaries: nothing observable may depend on visiting
// them.

// driverTrace is one run's complete observable footprint.
type driverTrace struct {
	events   []Event
	outcomes []JobInfo
}

func (tr *driverTrace) diff(other *driverTrace) string {
	if len(tr.events) != len(other.events) {
		return fmt.Sprintf("event count %d vs %d", len(tr.events), len(other.events))
	}
	for i := range tr.events {
		if tr.events[i] != other.events[i] {
			return fmt.Sprintf("event %d: %+v vs %+v", i, tr.events[i], other.events[i])
		}
	}
	if len(tr.outcomes) != len(other.outcomes) {
		return fmt.Sprintf("job count %d vs %d", len(tr.outcomes), len(other.outcomes))
	}
	for i := range tr.outcomes {
		a, b := tr.outcomes[i], other.outcomes[i]
		if a != b {
			return fmt.Sprintf("job %s/%d: %+v vs %+v", a.Pool, a.ID, a, b)
		}
	}
	return ""
}

// collectOutcomes snapshots every job of every pool, in pool order.
func collectOutcomes(t *testing.T, pools ...*Pool) []JobInfo {
	t.Helper()
	var out []JobInfo
	for _, p := range pools {
		infos, err := p.Jobs()
		if err != nil {
			t.Fatalf("jobs: %v", err)
		}
		out = append(out, infos...)
	}
	return out
}

// runDriverParityScenario replays the golden-parity workload (flocking,
// fair-share ordering, Requirements constraints, checkpoint-complete
// migrants, fault injection) under the given driver, with submissions
// arriving through engine timers so both drivers see the identical input
// schedule.
func runDriverParityScenario(t *testing.T, seed int64, driver simgrid.Driver) *driverTrace {
	t.Helper()
	g := simgrid.NewGrid(time.Second, 1)
	g.Engine.SetDriver(driver)
	siteA, siteB := g.AddSite("siteA"), g.AddSite("siteB")
	poolA, poolB := NewPool("poolA", g, siteA), NewPool("poolB", g, siteB)
	poolA.EnableFlocking(poolB)
	poolB.EnableFlocking(poolA)

	for i := 0; i < 10; i++ {
		arch := "x86"
		if i%3 == 0 {
			arch = "sparc"
		}
		load := simgrid.ConstantLoad(float64(i%5) / 10)
		adA := classad.New().Set("Arch", arch).Set("Disk", 100+40*i)
		poolA.AddMachine(siteA.AddNode(g.Engine, fmt.Sprintf("a%02d", i), float64(1+i%3), load), adA)
		adB := classad.New().Set("Arch", arch).Set("Disk", 80+60*i)
		adB.MustSetExpr(AttrRequirements, "TARGET.ImageSize <= 320")
		poolB.AddMachine(siteB.AddNode(g.Engine, fmt.Sprintf("b%02d", i), float64(1+i%4), load), adB)
	}

	for _, p := range []*Pool{poolA, poolB} {
		mgr := fairshare.NewManager(fairshare.Config{
			Clock:    g.Engine.Clock(),
			HalfLife: time.Minute,
		})
		p.SetFairShare(mgr)
	}

	tr := &driverTrace{}
	for _, p := range []*Pool{poolA, poolB} {
		p.Subscribe(func(e Event) { tr.events = append(tr.events, e) })
	}

	pools := []*Pool{poolA, poolB}
	for _, s := range parityWorkload(seed) {
		s := s
		g.Engine.Schedule(time.Duration(s.tick)*time.Second, func(time.Time) {
			var err error
			if s.ckptCPU > 0 {
				_, err = pools[s.pool].SubmitCheckpointed(s.ad.Clone(), s.ckptCPU)
			} else {
				_, err = pools[s.pool].Submit(s.ad.Clone())
			}
			if err != nil {
				t.Errorf("submit: %v", err)
			}
		})
	}
	g.Engine.RunFor(400 * time.Second)
	tr.outcomes = collectOutcomes(t, poolA, poolB)
	return tr
}

// TestDriverEquivalenceParitySeeds pins the refactor's core promise on
// the condor parity seeds: the event driver reproduces the tick driver's
// traces transition for transition.
func TestDriverEquivalenceParitySeeds(t *testing.T) {
	for _, seed := range []int64{7, 42, 216} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			tick := runDriverParityScenario(t, seed, simgrid.DriverTick)
			ev := runDriverParityScenario(t, seed, simgrid.DriverEvent)
			if d := tick.diff(ev); d != "" {
				t.Fatalf("tick and event drivers diverged: %s", d)
			}
			if len(tick.events) == 0 {
				t.Fatal("scenario produced no events; equivalence test is vacuous")
			}
		})
	}
}

// TestDriverEquivalenceSparseLongHorizon is the sparse case the refactor
// exists for: a long-horizon run with a handful of long jobs. The event
// driver must visit orders of magnitude fewer boundaries while producing
// the identical trace.
func TestDriverEquivalenceSparseLongHorizon(t *testing.T) {
	run := func(driver simgrid.Driver) (*driverTrace, int64) {
		g := simgrid.NewGrid(time.Second, 1)
		g.Engine.SetDriver(driver)
		site := g.AddSite("s")
		pool := NewPool("s", g, site)
		for i := 0; i < 16; i++ {
			pool.AddMachine(site.AddNode(g.Engine, fmt.Sprintf("n%02d", i), 1, simgrid.ConstantLoad(0.25)), nil)
		}
		tr := &driverTrace{}
		pool.Subscribe(func(e Event) { tr.events = append(tr.events, e) })
		for i := 0; i < 8; i++ {
			if _, err := pool.Submit(classad.New().Set(AttrOwner, "u").Set(AttrCpuSeconds, 50000.0)); err != nil {
				t.Fatal(err)
			}
		}
		g.Engine.RunFor(200000 * time.Second)
		tr.outcomes = collectOutcomes(t, pool)
		return tr, g.Engine.Ticks()
	}
	tick, tickBoundaries := run(simgrid.DriverTick)
	ev, evBoundaries := run(simgrid.DriverEvent)
	if d := tick.diff(ev); d != "" {
		t.Fatalf("tick and event drivers diverged: %s", d)
	}
	for _, o := range tick.outcomes {
		if o.Status != StatusCompleted {
			t.Fatalf("job %d not completed (%v); scenario broken", o.ID, o.Status)
		}
	}
	if evBoundaries*100 > tickBoundaries {
		t.Fatalf("event driver visited %d boundaries vs %d ticks — expected ≥100x sparser", evBoundaries, tickBoundaries)
	}
}
