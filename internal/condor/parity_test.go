package condor

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/classad"
	"repro/internal/fairshare"
	"repro/internal/simgrid"
)

// The golden-parity suite: the indexed negotiator (per-cycle machine
// snapshots, incremental free buckets, compiled matchers) must reproduce
// the retained reference negotiator's job→machine assignments exactly —
// including flocking spillover, fair-share ordering, Requirements-
// constrained jobs, checkpoint-complete submissions, and fault injection.

// parityOutcome is the comparable footprint of one job after a run.
type parityOutcome struct {
	Pool       string
	ID         int
	Status     Status
	Node       string
	Start      time.Time
	Completion time.Time
}

// paritySubmission is one scheduled submit in the seeded workload.
type paritySubmission struct {
	tick    int // engine step index at which to submit
	pool    int // 0 = site A's pool, 1 = site B's pool
	ad      *classad.Ad
	ckptCPU float64 // >0: use SubmitCheckpointed
}

// parityWorkload builds a deterministic submission schedule from seed.
// Ads are built fresh per call so the two runs share no mutable state.
func parityWorkload(seed int64) []paritySubmission {
	rng := rand.New(rand.NewSource(seed))
	owners := []string{"alice", "bob", "carol"}
	var subs []paritySubmission
	for i := 0; i < 120; i++ {
		ad := classad.New().
			Set(AttrOwner, owners[rng.Intn(len(owners))]).
			Set(AttrCpuSeconds, float64(1+rng.Intn(25))).
			Set(AttrPriority, rng.Intn(4)).
			Set("ImageSize", 50+rng.Intn(300))
		switch rng.Intn(5) {
		case 0:
			ad.MustSetExpr(AttrRequirements, `TARGET.Arch == "x86" && TARGET.LoadAvg < 0.8`)
		case 1:
			ad.MustSetExpr(AttrRequirements, `Arch == "sparc"`)
		case 2:
			ad.MustSetExpr(AttrRequirements, `TARGET.Disk >= MY.ImageSize`)
		case 3:
			ad.MustSetExpr(AttrRequirements, `TARGET.OpSys == "LINUX" && TARGET.Mips >= 1`)
		}
		switch rng.Intn(3) {
		case 0:
			ad.MustSetExpr(AttrRank, "TARGET.Mips")
		case 1:
			ad.MustSetExpr(AttrRank, "10 - LoadAvg * 10")
		}
		if rng.Intn(10) == 0 {
			ad.Set(AttrFailAfter, 2.0)
		}
		sub := paritySubmission{tick: rng.Intn(120), pool: rng.Intn(2), ad: ad}
		if rng.Intn(12) == 0 {
			// Checkpoint-complete migrant: all work already done elsewhere,
			// completes the instant it wins an offer.
			ad.Set(AttrCheckpoint, true)
			need := ad.Float(AttrCpuSeconds, 0)
			sub.ckptCPU = need + 1
		}
		subs = append(subs, sub)
	}
	return subs
}

// runParityScenario replays the seeded workload on a fresh two-site grid
// with mutual flocking and a fair-share manager, using either the
// reference or the indexed negotiator, and returns every job's outcome.
func runParityScenario(t *testing.T, seed int64, reference bool) []parityOutcome {
	t.Helper()
	g := simgrid.NewGrid(time.Second, 1)
	siteA, siteB := g.AddSite("siteA"), g.AddSite("siteB")
	poolA, poolB := NewPool("poolA", g, siteA), NewPool("poolB", g, siteB)
	poolA.refNegotiate, poolB.refNegotiate = reference, reference
	poolA.EnableFlocking(poolB)
	poolB.EnableFlocking(poolA)

	for i := 0; i < 10; i++ {
		arch := "x86"
		if i%3 == 0 {
			arch = "sparc"
		}
		load := simgrid.ConstantLoad(float64(i%5) / 10)
		adA := classad.New().Set("Arch", arch).Set("Disk", 100+40*i)
		poolA.AddMachine(siteA.AddNode(g.Engine, fmt.Sprintf("a%02d", i), float64(1+i%3), load), adA)
		adB := classad.New().Set("Arch", arch).Set("Disk", 80+60*i)
		if i == 4 {
			// Target-dependent Arch: unresolvable on the machine ad alone,
			// so it lands in the catch-all bucket and must stay matchable
			// by arch-constrained jobs (every workload job has ImageSize,
			// so this machine matches as sparc at negotiation time).
			adB.MustSetExpr("Arch", `ifThenElse(isUndefined(TARGET.ImageSize), "x86", "sparc")`)
		}
		adB.MustSetExpr(AttrRequirements, "TARGET.ImageSize <= 320")
		poolB.AddMachine(siteB.AddNode(g.Engine, fmt.Sprintf("b%02d", i), float64(1+i%4), load), adB)
	}

	for p, site := range map[*Pool]string{poolA: "siteA", poolB: "siteB"} {
		_ = site
		mgr := fairshare.NewManager(fairshare.Config{
			Clock:    g.Engine.Clock(),
			HalfLife: time.Minute,
		})
		p.SetFairShare(mgr)
	}

	subs := parityWorkload(seed)
	pools := []*Pool{poolA, poolB}
	for step := 0; step < 300; step++ {
		for _, s := range subs {
			if s.tick != step {
				continue
			}
			var err error
			if s.ckptCPU > 0 {
				_, err = pools[s.pool].SubmitCheckpointed(s.ad.Clone(), s.ckptCPU)
			} else {
				_, err = pools[s.pool].Submit(s.ad.Clone())
			}
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
		g.Engine.Step()
	}

	var out []parityOutcome
	for _, p := range pools {
		infos, err := p.Jobs()
		if err != nil {
			t.Fatalf("jobs: %v", err)
		}
		for _, in := range infos {
			out = append(out, parityOutcome{
				Pool:       in.Pool,
				ID:         in.ID,
				Status:     in.Status,
				Node:       in.Node,
				Start:      in.StartTime,
				Completion: in.CompletionTime,
			})
		}
	}
	return out
}

// TestNegotiationParity drives identical seeded multi-pool workloads
// through the reference and indexed negotiators and requires
// assignment-for-assignment identical outcomes.
func TestNegotiationParity(t *testing.T) {
	for _, seed := range []int64{7, 42, 216} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			ref := runParityScenario(t, seed, true)
			idx := runParityScenario(t, seed, false)
			if len(ref) != len(idx) {
				t.Fatalf("job count diverged: reference %d, indexed %d", len(ref), len(idx))
			}
			started := 0
			for i := range ref {
				if ref[i] != idx[i] {
					t.Errorf("job %s/%d diverged:\n  reference: %+v\n  indexed:   %+v",
						ref[i].Pool, ref[i].ID, ref[i], idx[i])
				}
				if ref[i].Node != "" {
					started++
				}
			}
			if started == 0 {
				t.Fatal("scenario never assigned a machine; parity test is vacuous")
			}
		})
	}
}

// TestPickMachineDeterminismOnRankTies submits a rank-tied job against
// machines registered in different orders; the winner must always be the
// lexicographically smallest machine name, independent of insertion order
// and of the indexed path's bucket iteration.
func TestPickMachineDeterminismOnRankTies(t *testing.T) {
	orders := [][]string{
		{"n1", "n2", "n3", "n4"},
		{"n4", "n3", "n2", "n1"},
		{"n3", "n1", "n4", "n2"},
	}
	for _, reference := range []bool{false, true} {
		for _, order := range orders {
			g := simgrid.NewGrid(time.Second, 1)
			site := g.AddSite("s")
			p := NewPool("p", g, site)
			p.refNegotiate = reference
			for _, name := range order {
				// Identical ads: every machine matches with rank 0.
				p.AddMachine(site.AddNode(g.Engine, name, 1, simgrid.IdleLoad()), nil)
			}
			id, err := p.Submit(classad.New().Set(AttrCpuSeconds, 5.0))
			if err != nil {
				t.Fatal(err)
			}
			g.Engine.Step()
			info, err := p.Job(id)
			if err != nil {
				t.Fatal(err)
			}
			if info.Node != "n1" {
				t.Errorf("reference=%v order=%v: rank tie went to %q, want n1",
					reference, order, info.Node)
			}
		}
	}
}

// TestIndexedArchConstraint pins jobs to architectures via Requirements
// and checks each lands on the right machine: literal Arch buckets, and
// expression-valued Arch (self-contained or target-dependent), which
// only the always-scanned catch-all bucket can satisfy.
func TestIndexedArchConstraint(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	site := g.AddSite("s")
	p := NewPool("p", g, site)
	p.AddMachine(site.AddNode(g.Engine, "x1", 1, simgrid.IdleLoad()),
		classad.New().Set("Arch", "x86"))
	p.AddMachine(site.AddNode(g.Engine, "s1", 1, simgrid.IdleLoad()),
		classad.New().Set("Arch", "sparc"))
	selfEval := classad.New()
	selfEval.MustSetExpr("Arch", `"mips64"`)
	p.AddMachine(site.AddNode(g.Engine, "e1", 1, simgrid.IdleLoad()), selfEval)
	dyn := classad.New()
	dyn.MustSetExpr("Arch", `TARGET.WantArch`)
	p.AddMachine(site.AddNode(g.Engine, "d1", 1, simgrid.IdleLoad()), dyn)
	// Both expression-valued machines must sit in the catch-all bucket:
	// only literal Arch values are target-independent index keys.
	p.mu.Lock()
	if got := len(p.freeBuckets[dynamicBucket]); got != 2 {
		p.mu.Unlock()
		t.Fatalf("dynamic bucket holds %d machines, want 2", got)
	}
	p.mu.Unlock()

	submit := func(req string, extra map[string]any) int {
		ad := classad.New().Set(AttrCpuSeconds, 5.0)
		for k, v := range extra {
			ad.Set(k, v)
		}
		ad.MustSetExpr(AttrRequirements, req)
		id, err := p.Submit(ad)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	sparcJob := submit(`TARGET.Arch == "sparc"`, nil)
	exprJob := submit(`TARGET.Arch == "mips64"`, nil)
	dynJob := submit(`TARGET.Arch == "alpha"`, map[string]any{"WantArch": "alpha"})
	g.Engine.Step()
	for id, want := range map[int]string{sparcJob: "s1", exprJob: "e1", dynJob: "d1"} {
		info, err := p.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Node != want {
			t.Errorf("job %d landed on %q, want %q", id, info.Node, want)
		}
	}
}

// TestMachineAdResync mutates the caller's machine ad after AddMachine —
// supported in the seed, which re-read the ad every pick — and checks
// the indexed negotiator honors the update, including an Arch rebucket.
func TestMachineAdResync(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	site := g.AddSite("s")
	p := NewPool("p", g, site)
	ad := classad.New().Set("Arch", "x86").Set("Disk", 100)
	p.AddMachine(site.AddNode(g.Engine, "m1", 1, simgrid.IdleLoad()), ad)

	needDisk := classad.New().Set(AttrCpuSeconds, 2.0).Set("ImageSize", 400)
	needDisk.MustSetExpr(AttrRequirements, `TARGET.Disk >= MY.ImageSize`)
	id1, err := p.Submit(needDisk.Clone())
	if err != nil {
		t.Fatal(err)
	}
	g.Engine.Step()
	if info, _ := p.Job(id1); info.Status != StatusIdle {
		t.Fatalf("job with Disk 400 requirement = %v on a Disk-100 machine, want idle", info.Status)
	}
	ad.Set("Disk", 500) // capacity upgrade on the caller's ad
	g.Engine.Step()
	if info, _ := p.Job(id1); info.Node != "m1" {
		t.Fatalf("job did not match after Disk upgrade; status %v", info.Status)
	}
	g.Engine.RunFor(5 * time.Second)

	ad.Set("Arch", "sparc") // rebucket while free
	id2, err := p.Submit(func() *classad.Ad {
		a := classad.New().Set(AttrCpuSeconds, 2.0)
		a.MustSetExpr(AttrRequirements, `TARGET.Arch == "sparc"`)
		return a
	}())
	if err != nil {
		t.Fatal(err)
	}
	g.Engine.Step()
	if info, _ := p.Job(id2); info.Node != "m1" {
		t.Fatalf("sparc-pinned job did not match rebucketed machine; status %v", info.Status)
	}
}

// TestCrossPoolRemoveNoDeadlock hammers the flocked-job teardown path
// from an API goroutine while the engine negotiates: Remove on a job
// running on a peer's machine must enqueue the foreign release (leaf
// lock) instead of taking the peer's main lock, or this test deadlocks
// against engine-side peer snapshots.
func TestCrossPoolRemoveNoDeadlock(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	siteA, siteB := g.AddSite("siteA"), g.AddSite("siteB")
	poolA, poolB := NewPool("poolA", g, siteA), NewPool("poolB", g, siteB)
	poolA.EnableFlocking(poolB)
	poolB.EnableFlocking(poolA)
	for i := 0; i < 4; i++ {
		// Only A has machines: every B job flocks onto A.
		poolA.AddMachine(siteA.AddNode(g.Engine, fmt.Sprintf("a%d", i), 1, simgrid.IdleLoad()), nil)
	}
	var ids []int
	for i := 0; i < 40; i++ {
		id, err := poolB.Submit(classad.New().Set(AttrCpuSeconds, 50.0))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, id := range ids {
			for {
				info, err := poolB.Job(id)
				if err != nil {
					return
				}
				if info.Status == StatusRunning {
					_ = poolB.Remove(id)
					break
				}
				if info.Status.Terminal() {
					break
				}
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		g.Engine.Step()
		select {
		case <-done:
			i = 2000
		default:
		}
	}
	<-done
	// Every machine must eventually return to A's free set.
	g.Engine.Step() // drain queued releases
	poolA.mu.Lock()
	free := 0
	for _, b := range poolA.freeBuckets {
		free += len(b)
	}
	poolA.mu.Unlock()
	if free != 4 {
		t.Fatalf("poolA free machines after teardown = %d, want 4", free)
	}
}

// TestFreeSetReleasedOnCompletion asserts the incremental free set
// returns machines after completion, removal, and fault injection, so a
// long-running pool never leaks capacity.
func TestFreeSetReleasedOnCompletion(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	site := g.AddSite("s")
	p := NewPool("p", g, site)
	for i := 0; i < 3; i++ {
		p.AddMachine(site.AddNode(g.Engine, fmt.Sprintf("n%d", i), 1, simgrid.IdleLoad()), nil)
	}
	freeCount := func() int {
		p.mu.Lock()
		defer p.mu.Unlock()
		n := 0
		for _, b := range p.freeBuckets {
			n += len(b)
		}
		return n
	}
	if got := freeCount(); got != 3 {
		t.Fatalf("initial free machines = %d, want 3", got)
	}
	a, _ := p.Submit(classad.New().Set(AttrCpuSeconds, 2.0))
	b, _ := p.Submit(classad.New().Set(AttrCpuSeconds, 100.0))
	c, _ := p.Submit(classad.New().Set(AttrCpuSeconds, 100.0).Set(AttrFailAfter, 1.0))
	g.Engine.Step()
	if got := freeCount(); got != 0 {
		t.Fatalf("free machines while 3 jobs run = %d, want 0", got)
	}
	g.Engine.RunFor(5 * time.Second)
	// a completed, c fault-injected; b still runs.
	for id, want := range map[int]Status{a: StatusCompleted, c: StatusFailed} {
		info, err := p.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Status != want {
			t.Fatalf("job %d = %v, want %v", id, info.Status, want)
		}
	}
	if got := freeCount(); got != 2 {
		t.Errorf("free machines after completion+failure = %d, want 2", got)
	}
	if err := p.Remove(b); err != nil {
		t.Fatal(err)
	}
	if got := freeCount(); got != 3 {
		t.Errorf("free machines after removal = %d, want 3", got)
	}
}
