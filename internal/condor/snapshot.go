package condor

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/classad"
	"repro/internal/durable"
	"repro/internal/simgrid"
)

// Export serializes the pool's queue for the durable snapshot codec:
// every job ever submitted (terminal jobs keep their accounting record),
// the ID allocator, and — for jobs occupying a machine — the claim as a
// lease expiring leaseTTL from now. The live pool is the lease authority,
// so an export always stamps its claims fresh; a snapshot that sits on
// disk longer than leaseTTL of simulated time therefore recovers with its
// leases expired and its running jobs requeued.
func (p *Pool) Export(leaseTTL time.Duration) durable.PoolState {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.grid.Engine.Now()
	ids := make([]int, 0, len(p.jobs))
	for id := range p.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	st := durable.PoolState{Name: p.Name, NextID: p.nextID}
	for _, id := range ids {
		j := p.jobs[id]
		js := durable.JobState{
			ID:             j.id,
			Ad:             j.ad.String(),
			Status:         int(j.status),
			Priority:       j.priority,
			Owner:          j.owner,
			SubmitTime:     j.submitTime,
			StartTime:      j.startTime,
			CompletionTime: j.completionTime,
			CPUSeconds:     p.cpuSecondsLocked(j),
		}
		if j.node != nil {
			js.Node = j.node.Name
		}
		if j.claimed != nil && (j.status == StatusRunning || j.status == StatusSuspended) {
			js.LeaseExpires = now.Add(leaseTTL)
		}
		st.Jobs = append(st.Jobs, js)
	}
	return st
}

// Restore rebuilds the queue from an exported state. It must run on an
// empty pool whose machines are already advertised, with the engine
// standing at the snapshot's capture instant.
//
// Lease reconciliation: a job whose lease is still live and whose machine
// still exists is re-bound to that machine and continues with its
// remaining work; an expired or unresolvable lease requeues the job idle
// — keeping its completed CPU-seconds only if the ad declares it
// checkpointable, since requeueing is a migration in all but name.
//
// Restore emits no events and reports nothing to the fair-share sink:
// listeners learn state by asking, and pre-crash usage is restored
// through the fair-share snapshot, not re-accrued.
func (p *Pool) Restore(st durable.PoolState) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.jobs) != 0 {
		return fmt.Errorf("condor: restore into non-empty pool %s", p.Name)
	}
	now := p.grid.Engine.Now()
	p.nextID = st.NextID
	for _, js := range st.Jobs {
		ad, err := classad.ParseAd(js.Ad)
		if err != nil {
			return fmt.Errorf("condor: restoring job %d: %w", js.ID, err)
		}
		j := &job{
			id:             js.ID,
			ad:             ad,
			status:         Status(js.Status),
			priority:       js.Priority,
			owner:          js.Owner,
			submitTime:     js.SubmitTime,
			startTime:      js.StartTime,
			completionTime: js.CompletionTime,
			cpuBase:        js.CPUSeconds,
		}
		j.failAfter = ad.Float(AttrFailAfter, 0)
		j.matcher = classad.NewMatcher(ad)
		j.reqArch, _ = ad.ReqStringConstraint("Arch")
		j.reqOpSys, _ = ad.ReqStringConstraint("OpSys")
		p.jobs[j.id] = j

		if j.status.Terminal() {
			// Terminal jobs keep their node name for the monitoring view
			// but hold no claim.
			j.node = p.nodeByNameLocked(js.Node)
			continue
		}
		p.active = append(p.active, j.id)
		p.liveCount++

		if j.status == StatusRunning || j.status == StatusSuspended {
			m := p.machineByNameLocked(js.Node)
			leaseLive := !js.LeaseExpires.IsZero() && js.LeaseExpires.After(now)
			if m == nil || !leaseLive || m.freeIdx < 0 {
				p.requeueRestoredLocked(j)
				continue
			}
			p.rebindLocked(j, m, now)
			continue
		}
		// Idle: nothing held; cpuBase is whatever the capture carried
		// (checkpointed submissions), which cpuSecondsLocked re-exports.
		p.idleCount++
		p.enqueueIdleLocked(j)
	}
	p.requestWake()
	return nil
}

// requeueRestoredLocked turns a restored running/suspended job back into
// an idle one: its lease died with the crash. Non-checkpointable work is
// lost, exactly as it would be on a migration.
func (p *Pool) requeueRestoredLocked(j *job) {
	if !j.ad.Bool(AttrCheckpoint, false) {
		j.cpuBase = 0
	}
	j.status = StatusIdle
	j.node = nil
	p.idleCount++
	p.enqueueIdleLocked(j)
}

// rebindLocked re-places a restored job on its leased machine: the task
// restarts with the remaining work, the claim is re-taken, and the status
// is reinstated without events or fair-share start observation.
func (p *Pool) rebindLocked(j *job, m *machine, now time.Time) {
	remaining := j.ad.Float(AttrCpuSeconds, 0) - j.cpuBase
	if remaining <= 0 {
		// The capture raced completion; the next harvest would have
		// finished it, so finish it here.
		j.completionTime = now
		j.status = StatusCompleted
		p.liveCount--
		p.produceOutputLocked(j)
		return
	}
	p.claimMachineLocked(m)
	j.claimed = m
	j.task = simgrid.NewTask(fmt.Sprintf("%s-%d", p.Name, j.id), remaining, func(*simgrid.Task) {
		p.mu.Lock()
		p.releaseClaimLocked(j)
		p.doneQ = append(p.doneQ, j)
		p.mu.Unlock()
		p.requestWake()
	})
	j.node = m.node
	m.node.Place(j.task)
	if j.status == StatusSuspended {
		j.task.Suspend()
	}
	j.supervised = j.failAfter > 0 || p.fairSink != nil
	if j.supervised && j.status == StatusRunning {
		p.superviseCount++
	}
}

// machineByNameLocked resolves an advertised machine by node name.
func (p *Pool) machineByNameLocked(name string) *machine {
	if name == "" {
		return nil
	}
	for _, m := range p.machines {
		if m.node.Name == name {
			return m
		}
	}
	return nil
}

// nodeByNameLocked resolves a node for display-only restoration.
func (p *Pool) nodeByNameLocked(name string) *simgrid.Node {
	if m := p.machineByNameLocked(name); m != nil {
		return m.node
	}
	return nil
}
