package condor

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/classad"
	"repro/internal/fairshare"
	"repro/internal/simgrid"
)

// Driver parity across load-segment boundaries: machines whose background
// load steps (StepLoad) or cycles (DiurnalLoad) gate matching through
// LoadAvg requirements, so a job can only start once a segment boundary
// lowers the load. The event driver computes those boundaries analytically
// (loadWakeAt); the tick driver samples every boundary. Their traces must
// be byte-identical, and the event run must stay sparse when every load
// is piecewise. An opaque NoisyLoad machine pins the per-tick fallback.

func runPiecewiseParityScenario(t *testing.T, driver simgrid.Driver, noisy bool) (*driverTrace, int64) {
	t.Helper()
	epoch := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	g := simgrid.NewGrid(time.Second, 1)
	g.Engine.SetDriver(driver)
	site := g.AddSite("s")
	pool := NewPool("s", g, site)

	step := simgrid.StepLoad(epoch,
		[]time.Duration{100 * time.Second, 300 * time.Second, 900 * time.Second},
		[]float64{0.9, 0.2, 0.7, 0.1})
	for i := 0; i < 3; i++ {
		pool.AddMachine(site.AddNode(g.Engine, fmt.Sprintf("step%d", i), 1, step), nil)
	}
	for i := 0; i < 2; i++ {
		pool.AddMachine(site.AddNode(g.Engine, fmt.Sprintf("diurnal%d", i), 2, simgrid.DiurnalLoad(0.3, 0.4, 0)), nil)
	}
	if noisy {
		pool.AddMachine(site.AddNode(g.Engine, "noisy", 1, simgrid.NoisyLoad(simgrid.ConstantLoad(0.4), 0.2, 5)), nil)
	}

	mgr := fairshare.NewManager(fairshare.Config{Clock: g.Engine.Clock(), HalfLife: time.Minute})
	pool.SetFairShare(mgr)

	tr := &driverTrace{}
	pool.Subscribe(func(e Event) { tr.events = append(tr.events, e) })

	owners := []string{"alice", "bob", "carol"}
	for i := 0; i < 18; i++ {
		i := i
		at := time.Duration(3+7*i) * time.Second
		g.Engine.Schedule(at, func(time.Time) {
			ad := classad.New().
				Set(AttrOwner, owners[i%len(owners)]).
				Set(AttrCpuSeconds, float64(40+10*(i%5))).
				Set(AttrPriority, i%3)
			if i%2 == 0 {
				// Only matchable once a segment boundary drops the load.
				ad.MustSetExpr(AttrRequirements, "TARGET.LoadAvg < 0.5")
			}
			if _, err := pool.Submit(ad); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		})
	}
	g.Engine.RunFor(3 * time.Hour)
	tr.outcomes = collectOutcomes(t, pool)
	return tr, g.Engine.Ticks()
}

func TestDriverEquivalencePiecewiseLoads(t *testing.T) {
	tick, tickN := runPiecewiseParityScenario(t, simgrid.DriverTick, false)
	ev, evN := runPiecewiseParityScenario(t, simgrid.DriverEvent, false)
	if d := tick.diff(ev); d != "" {
		t.Fatalf("tick and event drivers diverged: %s", d)
	}
	completed := 0
	for _, o := range tick.outcomes {
		if o.Status == StatusCompleted {
			completed++
		}
	}
	if completed == 0 {
		t.Fatal("no job completed; scenario is vacuous")
	}
	// Piecewise loads everywhere: the event driver needs at most one wake
	// per load segment, not one per tick.
	if evN*10 > tickN {
		t.Fatalf("event driver visited %d boundaries vs %d ticks — expected ≥10x sparser", evN, tickN)
	}
}

func TestDriverEquivalenceOpaqueLoadFallback(t *testing.T) {
	tick, _ := runPiecewiseParityScenario(t, simgrid.DriverTick, true)
	ev, _ := runPiecewiseParityScenario(t, simgrid.DriverEvent, true)
	if d := tick.diff(ev); d != "" {
		t.Fatalf("tick and event drivers diverged with an opaque load present: %s", d)
	}
}
