package condor

import (
	"container/heap"
	"sort"
	"time"

	"repro/internal/fairshare"
)

// This file maintains the negotiation order incrementally across passes.
//
// The legacy negotiator re-sorted every idle job on every pass —
// O(idle log idle) per pass, ruinous for a deep backlog where each pass
// matches only the handful of machines that freed since the last one.
// The orders the pool actually negotiates under are both "block
// orders" whose within-owner part is static:
//
//   - static policy (no fair share): priority desc, then ID asc;
//   - fairshare.KeyRanker (the Manager): starved owners' oldest jobs
//     first in FIFO order, then by (owner effective priority desc, job
//     static priority desc, submit time, seq) — see fairshare.LessKeys.
//
// Within one owner, every comparison after the owner-level effective
// priority is static (priority, submit time, seq never change while a
// job waits, and SetPriority re-files the job). So each owner's idle
// jobs live in per-priority FIFO buckets maintained incrementally at
// submit / priority-change / dequeue time, and a pass merges the
// per-owner streams with a small heap keyed by the time-varying
// owner-level standing — O(matched · log owners) instead of a full
// sort. Stale entries (job left Idle, or priority changed) are skipped
// lazily and garbage-collected as bucket heads advance past them.
//
// Rankers that are neither nil nor KeyRanker (an arbitrary Less) admit
// no such decomposition; the pool falls back to the legacy sorted pass
// for those.

// qentry is one queue slot; it is stale once the job left Idle or its
// qgen moved on (priority change re-filed it). A negative gen opts out
// of the generation check: the submission-order list is
// priority-independent, so its entries stay valid across refiles.
type qentry struct {
	j   *job
	gen int
}

func (e qentry) valid() bool {
	return e.j.status == StatusIdle && (e.gen < 0 || e.gen == e.j.qgen)
}

// qlist is an append-only FIFO with lazy head compaction.
type qlist struct {
	items []qentry
	head  int
}

func (l *qlist) push(e qentry) { l.items = append(l.items, e) }

// gcHead drops exhausted prefixes and stale heads so repeated scans do
// not re-walk dead entries; interior stale entries are skipped by
// cursors and collected when the head reaches them.
func (l *qlist) gcHead() {
	for l.head < len(l.items) && !l.items[l.head].valid() {
		l.items[l.head].j = nil
		l.head++
	}
	if l.head == len(l.items) {
		l.items = l.items[:0]
		l.head = 0
	}
}

// ownerQueue holds one owner's idle jobs (or, under the static policy,
// the whole pool's) in negotiation order: per-priority FIFO buckets
// plus a submission-order list for the starvation guard's oldest pick.
type ownerQueue struct {
	prios  []int // distinct priorities seen, sorted desc
	byPrio map[int]*qlist
	sub    qlist
	count  int // valid entries (one per idle job filed here)
}

func newOwnerQueue() *ownerQueue {
	return &ownerQueue{byPrio: make(map[int]*qlist)}
}

// add files j under its current priority. Submissions arrive in
// (submitTime, id) order, so bucket and submission lists stay sorted by
// appending.
func (q *ownerQueue) add(j *job) {
	q.bucket(j.priority).push(qentry{j: j, gen: j.qgen})
	q.sub.push(qentry{j: j, gen: -1})
	q.count++
}

// refile moves an idle job to a new priority bucket after SetPriority:
// the old entry is invalidated by the qgen bump and the job is inserted
// into the new bucket at its (submitTime, id) rank, since mid-life
// priority changes arrive out of submission order.
func (q *ownerQueue) refile(j *job) {
	j.qgen++
	b := q.bucket(j.priority)
	b.gcHead()
	items := b.items
	i := b.head + sort.Search(len(items)-b.head, func(k int) bool {
		o := items[b.head+k].j
		if !o.submitTime.Equal(j.submitTime) {
			return o.submitTime.After(j.submitTime)
		}
		return o.id > j.id
	})
	items = append(items, qentry{})
	copy(items[i+1:], items[i:])
	items[i] = qentry{j: j, gen: j.qgen}
	b.items = items
}

func (q *ownerQueue) bucket(prio int) *qlist {
	b, ok := q.byPrio[prio]
	if !ok {
		b = &qlist{}
		q.byPrio[prio] = b
		i := sort.Search(len(q.prios), func(k int) bool { return q.prios[k] < prio })
		q.prios = append(q.prios, 0)
		copy(q.prios[i+1:], q.prios[i:])
		q.prios[i] = prio
	}
	return b
}

// oldest returns the owner's oldest valid idle job (submission order),
// or nil.
func (q *ownerQueue) oldest() *job {
	q.sub.gcHead()
	for k := q.sub.head; k < len(q.sub.items); k++ {
		if q.sub.items[k].valid() {
			return q.sub.items[k].j
		}
	}
	return nil
}

// ownerCursor walks one owner's buckets in (priority desc, FIFO) order,
// skipping stale entries and at most one already-offered job (the
// starvation guard's phase-a pick).
type ownerCursor struct {
	q    *ownerQueue
	ep   float64
	skip *job
	pi   int // index into q.prios
	idx  int // index into current bucket, counted from items[0]
	cur  *job
}

// advance moves cur to the next valid job, or nil when exhausted.
func (c *ownerCursor) advance() {
	c.cur = nil
	for c.pi < len(c.q.prios) {
		b := c.q.byPrio[c.q.prios[c.pi]]
		b.gcHead()
		if c.idx < b.head {
			c.idx = b.head
		}
		for c.idx < len(b.items) {
			e := b.items[c.idx]
			c.idx++
			if !e.valid() || e.j == c.skip {
				continue
			}
			c.cur = e.j
			return
		}
		c.pi++
		c.idx = 0
	}
}

// cursorHeap orders owner cursors by the head job each would yield
// next, exactly as fairshare.LessKeys orders non-starved jobs: owner
// effective priority desc, then the job's static key. Seq uniqueness
// makes the order total, so the merged stream is deterministic.
type cursorHeap []*ownerCursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(a, b int) bool {
	x, y := h[a], h[b]
	if x.ep != y.ep {
		return x.ep > y.ep
	}
	if x.cur.priority != y.cur.priority {
		return x.cur.priority > y.cur.priority
	}
	if !x.cur.submitTime.Equal(y.cur.submitTime) {
		return x.cur.submitTime.Before(y.cur.submitTime)
	}
	return x.cur.id < y.cur.id
}
func (h cursorHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *cursorHeap) Push(x any)   { *h = append(*h, x.(*ownerCursor)) }
func (h *cursorHeap) Pop() any {
	old := *h
	n := len(old) - 1
	c := old[n]
	old[n] = nil
	*h = old[:n]
	return c
}

// negotiationStream yields idle jobs in negotiation order without
// sorting them: phase (a) offers each starved owner's oldest job in
// FIFO order, phase (b) merges the per-owner static streams by
// owner-level standing. Jobs that start mid-stream invalidate their
// entries, so the stream and the queue stay consistent while the
// caller matches.
type negotiationStream struct {
	starved []*job
	si      int
	heap    cursorHeap
}

// next returns the next idle job to offer a machine, or nil when the
// queue is exhausted.
func (s *negotiationStream) next() *job {
	for s.si < len(s.starved) {
		j := s.starved[s.si]
		s.si++
		if j.status == StatusIdle {
			return j
		}
	}
	for len(s.heap) > 0 {
		c := s.heap[0]
		j := c.cur
		c.advance()
		if c.cur != nil {
			heap.Fix(&s.heap, 0)
		} else {
			heap.Pop(&s.heap)
		}
		if j.status == StatusIdle {
			return j
		}
	}
	return nil
}

// queueKey returns the owner queue a job files under: per-owner when a
// key-ranking fair-share policy is installed, one shared queue under
// the static policy.
func (p *Pool) queueKeyLocked(j *job) string {
	if p.streamByOwner {
		return j.owner
	}
	return ""
}

func (p *Pool) enqueueIdleLocked(j *job) {
	key := p.queueKeyLocked(j)
	q, ok := p.owners[key]
	if !ok {
		q = newOwnerQueue()
		p.owners[key] = q
	}
	q.add(j)
}

// dequeueIdleLocked accounts a job leaving Idle; its queue entries are
// invalidated by the status change itself and collected lazily.
func (p *Pool) dequeueIdleLocked(j *job) {
	if q, ok := p.owners[p.queueKeyLocked(j)]; ok {
		q.count--
	}
}

// refileIdleLocked re-ranks an idle job after a priority change.
func (p *Pool) refileIdleLocked(j *job) {
	if q, ok := p.owners[p.queueKeyLocked(j)]; ok {
		q.refile(j)
	}
}

// rebuildQueuesLocked refiles every idle job from scratch; called when
// the policy mode (per-owner vs shared keying) changes.
func (p *Pool) rebuildQueuesLocked() {
	p.owners = make(map[string]*ownerQueue)
	for _, id := range p.active {
		j := p.jobs[id]
		if j.status == StatusIdle {
			j.qgen++
			p.enqueueIdleLocked(j)
		}
	}
}

// streamRanker reports whether the installed policy supports the
// incremental stream (nil policy, or a KeyRanker whose order LessKeys
// defines); other rankers use the legacy sorted pass.
func (p *Pool) streamRankerLocked() (fairshare.KeyRanker, bool) {
	if p.fair == nil {
		return nil, true
	}
	kr, ok := p.fair.(fairshare.KeyRanker)
	return kr, ok
}

// negotiationStreamLocked builds the pass's job stream at the given
// instant. One SortKeysAt call over each owner's oldest job prices the
// whole pass: it yields every owner's effective priority and marks the
// starved picks, which a full-queue SortKeysAt would mark identically
// (an owner's oldest job is starved iff any of its jobs is, and the
// guard promotes exactly the oldest).
func (p *Pool) negotiationStreamLocked(now time.Time, kr fairshare.KeyRanker) *negotiationStream {
	s := &p.streamScratch
	s.starved, s.si, s.heap = s.starved[:0], 0, s.heap[:0]
	if kr == nil {
		// Static policy: single shared queue, priority desc then ID asc
		// (submission order within a bucket), no owner-level standing.
		if q, ok := p.owners[""]; ok && q.count > 0 {
			cursors := append(p.curScratch[:0], ownerCursor{q: q})
			p.curScratch = cursors[:0]
			c := &cursors[0]
			c.advance()
			if c.cur != nil {
				s.heap = append(s.heap, c)
			}
		}
		return s
	}
	refs := p.refScratch[:0]
	cursors := p.curScratch[:0]
	//lint:unordered cursorHeap.Less fully tie-breaks (ep, priority, submitTime, id), so the heap's pop order is independent of this seed order
	for _, q := range p.owners {
		if q.count <= 0 {
			continue
		}
		j := q.oldest()
		if j == nil {
			q.count = 0 // lost count to stale entries; resync
			continue
		}
		refs = append(refs, jobRef(j))
		cursors = append(cursors, ownerCursor{q: q})
	}
	p.refScratch = refs[:0]
	p.curScratch = cursors[:0]
	if len(refs) == 0 {
		return s
	}
	keys := kr.SortKeysAt(now, refs)
	for i := range cursors {
		cursors[i].ep = keys[i].Effective
		if keys[i].Starved {
			j := p.ownerOldest(cursors[i].q)
			s.starved = append(s.starved, j)
			cursors[i].skip = j
		}
	}
	// Phase (a): starved picks in strict FIFO, as LessKeys orders the
	// starved block.
	sort.Slice(s.starved, func(a, b int) bool {
		if !s.starved[a].submitTime.Equal(s.starved[b].submitTime) {
			return s.starved[a].submitTime.Before(s.starved[b].submitTime)
		}
		return s.starved[a].id < s.starved[b].id
	})
	for i := range cursors {
		c := &cursors[i]
		c.advance()
		if c.cur != nil {
			s.heap = append(s.heap, c)
		}
	}
	heap.Init(&s.heap)
	return s
}

// ownerOldest re-reads q's oldest valid job; the stream builder calls
// it only for starved owners, whose oldest was just computed, so the
// list head is already compacted.
func (p *Pool) ownerOldest(q *ownerQueue) *job { return q.oldest() }

// negotiationOrderLocked drains a fresh stream without matching —
// test-only, for comparing the incremental order against the legacy
// sorted order.
func (p *Pool) negotiationOrderLocked(now time.Time) []*job {
	kr, ok := p.streamRankerLocked()
	if !ok {
		return p.idleOrderedLocked()
	}
	s := p.negotiationStreamLocked(now, kr)
	var out []*job
	for j := s.next(); j != nil; j = s.next() {
		out = append(out, j)
	}
	return out
}
