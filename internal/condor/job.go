// Package condor implements the execution service of the GAE
// reproduction: a Condor-like batch system running on the simulated grid.
//
// The paper's Job Monitoring Service "operat[es] in close interaction with
// an execution service (which can be based on any execution engine such as
// Condor)", the Queue-Time Estimator consumes "Condor IDs and the elapsed
// runtime of all tasks having a priority greater than the input task", and
// Figure 7 relies on Condor's accumulated wall-clock accounting. This
// package supplies all of those contracts:
//
//   - ClassAd-based job submission and job↔machine matchmaking
//   - a priority queue with FIFO order within a priority level
//   - job lifecycle: Idle → Running → (Suspended ↔ Running) →
//     Completed / Failed / Removed
//   - per-job accounting: wall-clock (execution time only), CPU seconds,
//     queue position, submit/start/completion timestamps, I/O volumes
//   - checkpointing (resume from accumulated CPU work after migration)
//   - flocking (overflow submission to a peer pool)
//   - failure injection, for exercising the Steering Service's Backup &
//     Recovery module
package condor

import (
	"fmt"
	"time"

	"repro/internal/classad"
	"repro/internal/fairshare"
	"repro/internal/simgrid"
)

// Status is a job's lifecycle state, mirroring Condor's JobStatus integers
// where they exist.
type Status int

// Job states.
const (
	StatusIdle Status = iota + 1
	StatusRunning
	StatusSuspended
	StatusCompleted
	StatusFailed
	StatusRemoved
)

func (s Status) String() string {
	switch s {
	case StatusIdle:
		return "idle"
	case StatusRunning:
		return "running"
	case StatusSuspended:
		return "suspended"
	case StatusCompleted:
		return "completed"
	case StatusFailed:
		return "failed"
	case StatusRemoved:
		return "removed"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Terminal reports whether the state is final.
func (s Status) Terminal() bool {
	return s == StatusCompleted || s == StatusFailed || s == StatusRemoved
}

// Well-known job ad attributes. Submitters set the Attr* inputs; the pool
// maintains the rest.
const (
	AttrOwner        = "Owner"               // string: submitting user
	AttrCmd          = "Cmd"                 // string: executable name (informational)
	AttrPriority     = "JobPrio"             // int: larger runs first
	AttrCpuSeconds   = "CpuSeconds"          // real: ground-truth work on a Mips-1 CPU
	AttrEstimate     = "EstimatedRuntime"    // real: estimator's predicted runtime (s)
	AttrInputMB      = "InputMB"             // real: input I/O volume
	AttrOutputMB     = "OutputMB"            // real: output I/O volume
	AttrOutputFile   = "OutputFile"          // string: file created in site storage on success
	AttrEnv          = "Env"                 // string: environment variables ("K=V;K2=V2")
	AttrRequirements = "Requirements"        // expr: machine constraints
	AttrRank         = "Rank"                // expr: machine preference
	AttrCheckpoint   = "Checkpointable"      // bool: job can resume from a checkpoint
	AttrFailAfter    = "FailAfterCpuSeconds" // real: fault injection point
)

// Event records a job state transition; the Job Monitoring Service's
// collector subscribes to these and forwards them to MonALISA.
type Event struct {
	Pool  string
	JobID int
	From  Status
	To    Status
	At    time.Time
}

// job is the pool-internal job record.
type job struct {
	id       int
	ad       *classad.Ad
	status   Status
	priority int
	owner    string // cached AttrOwner, read on every accounting pass

	// matcher is the job ad compiled for repeated matchmaking; reqArch
	// and reqOpSys are the static machine constraints extracted from its
	// Requirements (lower-cased, "" when unconstrained), which key the
	// negotiator's free-machine index.
	matcher  *classad.Matcher
	reqArch  string
	reqOpSys string

	submitTime     time.Time
	startTime      time.Time
	completionTime time.Time

	node    *simgrid.Node
	task    *simgrid.Task
	claimed *machine // machine held while the task occupies its node
	cpuBase float64  // CPU-seconds carried over from a checkpoint
	ckptCPU float64  // last checkpointed CPU-seconds

	// failAfter caches AttrFailAfter: >0 means the job needs per-tick
	// supervision while running so fault injection trips at the same
	// boundary the legacy per-tick harvest would have caught.
	failAfter float64

	// usageRecorded is the locally-executed CPU already reported to the
	// fair-share sink, so accrual stays incremental and exactly-once.
	usageRecorded float64

	// qgen invalidates this job's entries in the incremental negotiation
	// queues: SetPriority bumps it and re-inserts, so the stale entry in
	// the old priority bucket is skipped rather than searched for.
	qgen int

	// supervised marks a running job that needs the per-tick wakeup:
	// fault injection (failAfter) or eager fair-share accrual when no
	// usage flow could be opened. The pool counts supervised running
	// jobs; zero means completions alone drive the wake schedule.
	supervised bool

	// flow is the job's lazily-accrued fair-share usage stream (nil when
	// accruing eagerly); flowRate is its current analytic rate and
	// flowNode the node whose load segment the rate was derived from.
	flow     fairshare.UsageFlow
	flowRate float64
	flowNode *simgrid.Node
}

// JobInfo is an immutable snapshot of a job, carrying every field the
// paper's Job Monitoring Service API exposes: "job status, remaining time,
// elapsed time, estimated run time, queue position, priority, submission
// time, execution time, completion time, CPU time used, amount of input IO
// and output IO, owner name and environment variables".
type JobInfo struct {
	ID       int
	Pool     string
	Status   Status
	Owner    string
	Cmd      string
	Priority int
	Env      string

	SubmitTime     time.Time
	StartTime      time.Time // zero until first execution
	CompletionTime time.Time // zero until terminal

	QueuePosition int // 1-based among idle jobs; 0 when not queued

	EstimatedRuntime  float64       // seconds, 0 when no estimate recorded
	WallClock         time.Duration // accumulated execution time (Condor wall-clock)
	Elapsed           time.Duration // now - submit
	RemainingEstimate float64       // estimate - wallclock, floored at 0

	CPUSeconds float64
	Progress   float64 // CPU done / CPU needed, in [0,1]
	InputMB    float64
	OutputMB   float64

	Node string // execution node name, "" when not placed
}
