package condor

import (
	"reflect"
	"testing"
	"time"
)

const testTTL = 10 * time.Minute

// restoredPool builds a second grid/pool with the same machine layout as
// testPool and advances its engine to the donor's capture instant — the
// state a crash-recovered process presents before Restore runs.
func restoredPool(t *testing.T, nodes int, at time.Duration) *Pool {
	t.Helper()
	g2, p2 := testPool(t, nodes)
	g2.Engine.RunFor(at)
	return p2
}

func TestSnapshotRoundTrip(t *testing.T) {
	g, p := testPool(t, 2)
	running := mustSubmit(t, p, jobAd("alice", 300, 0))
	mustSubmit(t, p, jobAd("bob", 200, 3))
	queued := mustSubmit(t, p, jobAd("carol", 100, 0)) // 2 nodes: third job waits
	g.Engine.RunFor(30 * time.Second)

	st := p.Export(testTTL)
	if len(st.Jobs) != 3 {
		t.Fatalf("exported %d jobs, want 3", len(st.Jobs))
	}

	p2 := restoredPool(t, 2, 30*time.Second)
	if err := p2.Restore(st); err != nil {
		t.Fatal(err)
	}
	// A re-export at the same instant is indistinguishable from the
	// original capture — the codec round-trips losslessly.
	if st2 := p2.Export(testTTL); !reflect.DeepEqual(st, st2) {
		t.Fatalf("round-trip diverged:\n got %+v\nwant %+v", st2, st)
	}
	if got := mustJob(t, p2, running); got.Status != StatusRunning || got.Node == "" {
		t.Fatalf("restored running job = %+v", got)
	}
	if got := mustJob(t, p2, queued); got.Status != StatusIdle {
		t.Fatalf("restored queued job = %+v", got)
	}
}

func TestRestoreLiveLeaseResumesWork(t *testing.T) {
	g, p := testPool(t, 1)
	id := mustSubmit(t, p, jobAd("alice", 100, 0))
	g.Engine.RunFor(40 * time.Second)
	st := p.Export(testTTL)

	p2 := restoredPool(t, 1, 40*time.Second)
	if err := p2.Restore(st); err != nil {
		t.Fatal(err)
	}
	info := mustJob(t, p2, id)
	if info.Status != StatusRunning {
		t.Fatalf("status = %v, want running", info.Status)
	}
	if info.CPUSeconds < 35 {
		t.Fatalf("CPU accrual lost across restore: %v", info.CPUSeconds)
	}
	// Only the remaining ~60s of work is left, not a fresh 100.
	p2.grid.Engine.RunFor(70 * time.Second)
	if got := mustJob(t, p2, id); got.Status != StatusCompleted {
		t.Fatalf("restored job did not finish remaining work: %+v", got)
	}
}

func TestRestoreExpiredLeaseRequeues(t *testing.T) {
	g, p := testPool(t, 2)
	plain := mustSubmit(t, p, jobAd("alice", 500, 0))
	ckpt := mustSubmit(t, p, jobAd("bob", 500, 0).Set(AttrCheckpoint, true))
	g.Engine.RunFor(60 * time.Second)
	st := p.Export(testTTL)

	// The snapshot sat on disk past the lease TTL: recovery happens
	// after every lease has expired.
	p2 := restoredPool(t, 2, 60*time.Second+testTTL+time.Second)
	for _, js := range st.Jobs {
		if js.LeaseExpires.After(p2.grid.Engine.Now()) {
			t.Fatalf("job %d lease still live at restore instant", js.ID)
		}
	}
	if err := p2.Restore(st); err != nil {
		t.Fatal(err)
	}
	st2 := p2.Export(testTTL)
	byID := make(map[int]int)
	for i, js := range st2.Jobs {
		byID[js.ID] = i
	}
	// Both jobs requeued idle; only the checkpointable one keeps its
	// accrued CPU-seconds — requeueing is a migration in all but name.
	if js := st2.Jobs[byID[plain]]; Status(js.Status) != StatusIdle || js.CPUSeconds != 0 {
		t.Fatalf("non-checkpointable job after expired lease = %+v", js)
	}
	if js := st2.Jobs[byID[ckpt]]; Status(js.Status) != StatusIdle || js.CPUSeconds < 55 {
		t.Fatalf("checkpointable job after expired lease = %+v", js)
	}
	// The pool is healthy: the requeued jobs negotiate back onto machines.
	p2.grid.Engine.Step()
	if got := mustJob(t, p2, plain); got.Status != StatusRunning {
		t.Fatalf("requeued job did not re-match: %+v", got)
	}
}

func TestRestoreMissingMachineRequeues(t *testing.T) {
	g, p := testPool(t, 2)
	a := mustSubmit(t, p, jobAd("alice", 300, 0))
	b := mustSubmit(t, p, jobAd("bob", 300, 0))
	g.Engine.RunFor(10 * time.Second)
	st := p.Export(testTTL)

	// The recovered deployment lost a node: one lease names a machine
	// that no longer exists and must requeue even though it is live.
	p2 := restoredPool(t, 1, 10*time.Second)
	if err := p2.Restore(st); err != nil {
		t.Fatal(err)
	}
	ia, ib := mustJob(t, p2, a), mustJob(t, p2, b)
	var running, idle int
	for _, info := range []JobInfo{ia, ib} {
		switch info.Status {
		case StatusRunning:
			running++
		case StatusIdle:
			idle++
		}
	}
	if running != 1 || idle != 1 {
		t.Fatalf("after losing a node: %v / %v (want one rebound, one requeued)",
			ia.Status, ib.Status)
	}
}

func TestRestoreIntoNonEmptyPoolFails(t *testing.T) {
	g, p := testPool(t, 1)
	mustSubmit(t, p, jobAd("alice", 10, 0))
	st := p.Export(testTTL)
	_ = g
	if err := p.Restore(st); err == nil {
		t.Fatal("restore into non-empty pool accepted")
	}
}
