package condor

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/fairshare"
	"repro/internal/simgrid"
)

// fairManager builds a manager on the pool's engine clock with decay
// disabled so usage assertions are exact.
func fairManager(p *Pool) *fairshare.Manager {
	return fairshare.NewManager(fairshare.Config{
		Clock:    p.grid.Engine.Clock(),
		HalfLife: -1,
	})
}

func TestFairShareOrdersNegotiation(t *testing.T) {
	g, p := testPool(t, 1)
	fs := fairManager(p)
	p.SetFairShare(fs)
	fs.RecordUsage("heavy", "siteA", 1000)

	heavy := mustSubmit(t, p, jobAd("heavy", 30, 0))
	light := mustSubmit(t, p, jobAd("light", 30, 0))
	g.Engine.Step()
	if got := mustJob(t, p, light).Status; got != StatusRunning {
		t.Fatalf("light job = %v, want running", got)
	}
	if got := mustJob(t, p, heavy).Status; got != StatusIdle {
		t.Fatalf("heavy job = %v, want idle", got)
	}
	// Static priority cannot buy the heavy tenant back in: among the idle
	// jobs (heavy@0, heavy@99, light@0), the light tenant leads and the
	// heavy tenant's own jobs order by static priority behind it.
	hot := mustSubmit(t, p, jobAd("heavy", 30, 99))
	light2 := mustSubmit(t, p, jobAd("light", 30, 0))
	if got := mustJob(t, p, light2).QueuePosition; got != 1 {
		t.Fatalf("light position = %d, want 1", got)
	}
	if got := mustJob(t, p, hot).QueuePosition; got != 2 {
		t.Fatalf("heavy hot-priority position = %d, want 2", got)
	}
	if got := mustJob(t, p, heavy).QueuePosition; got != 3 {
		t.Fatalf("heavy cold position = %d, want 3", got)
	}
	// Uninstalling the policy restores static order; a typed-nil manager
	// means the same thing.
	var none *fairshare.Manager
	p.SetFairShare(none)
	if got := mustJob(t, p, hot).QueuePosition; got != 1 {
		t.Fatalf("static position after uninstall = %d, want 1", got)
	}
	g.Engine.Step() // negotiation must not panic with the policy cleared
}

func TestFairShareRecordsCompletionUsage(t *testing.T) {
	g, p := testPool(t, 1)
	fs := fairManager(p)
	p.SetFairShare(fs)
	mustSubmit(t, p, jobAd("alice", 10, 0))
	g.Engine.RunFor(15 * time.Second)
	if u := fs.Usage("alice"); math.Abs(u-10) > 1e-6 {
		t.Fatalf("usage after completion = %v, want 10", u)
	}
	// Usage is attributed to the site, keyed for the scheduler tie-break.
	if u := fs.SiteUsage("alice", "siteA"); math.Abs(u-10) > 1e-6 {
		t.Fatalf("site usage = %v, want 10", u)
	}
	if u := fs.SiteUsage("alice", "elsewhere"); u != 0 {
		t.Fatalf("foreign site usage = %v", u)
	}
}

func TestFairShareRemovedJobChargesPartialUsage(t *testing.T) {
	g, p := testPool(t, 1)
	fs := fairManager(p)
	p.SetFairShare(fs)
	id := mustSubmit(t, p, jobAd("alice", 100, 0))
	g.Engine.RunFor(10 * time.Second)
	if err := p.Remove(id); err != nil {
		t.Fatal(err)
	}
	u := fs.Usage("alice")
	if u < 5 || u > 15 {
		t.Fatalf("partial usage = %v, want ≈10", u)
	}
}

func TestFairShareCheckpointBaseNotDoubleCounted(t *testing.T) {
	g, p := testPool(t, 1)
	fs := fairManager(p)
	p.SetFairShare(fs)
	ad := jobAd("alice", 30, 0).Set(AttrCheckpoint, true)
	if _, err := p.SubmitCheckpointed(ad, 20); err != nil {
		t.Fatal(err)
	}
	g.Engine.RunFor(15 * time.Second)
	// Only the 10 CPU-seconds executed here count; the 20 carried in were
	// accounted by the site that ran them.
	if u := fs.Usage("alice"); math.Abs(u-10) > 1e-6 {
		t.Fatalf("usage = %v, want 10", u)
	}
	// A fully-covered checkpoint completes without occupying a machine —
	// it must not count as an allocation for the starvation guard: bob's
	// heavy usage would lose on effective priority, so only his (intact)
	// starvation drought can put the old job first.
	fs.RecordUsage("bob", "siteA", 1000)
	full := jobAd("bob", 30, 0).Set(AttrCheckpoint, true)
	if _, err := p.SubmitCheckpointed(full, 30); err != nil {
		t.Fatal(err)
	}
	g.Engine.Step()
	drought := fairshare.JobRef{Owner: "bob", Submitted: g.Engine.Now().Add(-time.Hour), Seq: 99}
	fresh := fairshare.JobRef{Owner: "carol", Submitted: g.Engine.Now(), Seq: 100}
	if !fs.LessAt(g.Engine.Now(), drought, fresh) {
		t.Fatal("zero-work completion reset bob's starvation drought")
	}
}

func TestFairShareStarvationGuardInPool(t *testing.T) {
	g, p := testPool(t, 1)
	fs := fairshare.NewManager(fairshare.Config{
		Clock:            p.grid.Engine.Clock(),
		HalfLife:         -1,
		StarvationWindow: 30 * time.Second,
	})
	p.SetFairShare(fs)
	// light hoards enormous usage, but its queued job is the only one
	// waiting while a long job occupies the machine.
	fs.RecordUsage("light", "siteA", 1e6)
	mustSubmit(t, p, jobAd("big", 120, 0))
	waiting := mustSubmit(t, p, jobAd("light", 10, 0))
	g.Engine.RunFor(40 * time.Second)
	// light's job has now starved past the window; a fresh zero-usage
	// tenant arrives — the guard must put the starved job first anyway.
	fresh := mustSubmit(t, p, jobAd("fresh", 10, 0))
	if got := mustJob(t, p, waiting).QueuePosition; got != 1 {
		t.Fatalf("starved job position = %d, want 1", got)
	}
	if got := mustJob(t, p, fresh).QueuePosition; got != 2 {
		t.Fatalf("fresh job position = %d, want 2", got)
	}
}

func TestFairShareFlockedUsageChargesExecutingSite(t *testing.T) {
	// Origin pool has no machines of its own; every job flocks to the
	// peer. Usage must land on the peer's site, where the work ran.
	g, origin := testPool(t, 0)
	peerSite := g.AddSite("siteB")
	peer := NewPool("poolB", g, peerSite)
	n := peerSite.AddNode(g.Engine, "siteB-n0", 1.0, simgrid.IdleLoad())
	peer.AddMachine(n, nil)
	origin.EnableFlocking(peer)
	fs := fairManager(origin)
	origin.SetFairShare(fs)

	mustSubmit(t, origin, jobAd("alice", 10, 0))
	g.Engine.RunFor(15 * time.Second)
	if u := fs.SiteUsage("alice", "siteB"); math.Abs(u-10) > 1e-6 {
		t.Fatalf("executing-site usage = %v, want 10", u)
	}
	if u := fs.SiteUsage("alice", "siteA"); u != 0 {
		t.Fatalf("origin-site usage = %v, want 0", u)
	}
}

func TestQueueAboveFollowsFairShareOrder(t *testing.T) {
	g, p := testPool(t, 1)
	fs := fairManager(p)
	p.SetFairShare(fs)
	fs.RecordUsage("heavy", "siteA", 1000)
	running := mustSubmit(t, p, jobAd("other", 100, 0))
	g.Engine.Step() // occupies the machine
	hot := mustSubmit(t, p, jobAd("heavy", 30, 99))
	cold := mustSubmit(t, p, jobAd("light", 30, 0))
	// Fair order puts light's job ahead of heavy's despite priority 99,
	// and queue-time inputs must agree with that order.
	above, err := p.QueueAbove(cold)
	if err != nil {
		t.Fatal(err)
	}
	if len(above) != 1 || above[0].ID != running {
		t.Fatalf("light's QueueAbove = %+v, want only the running job", above)
	}
	above, err = p.QueueAbove(hot)
	if err != nil {
		t.Fatal(err)
	}
	if len(above) != 2 || above[0].ID != running || above[1].ID != cold {
		t.Fatalf("heavy's QueueAbove = %+v, want running + light's job", above)
	}
}

// --- satellite: QueueAbove / SetPriority edge cases ---------------------

func TestQueueAboveExcludesTerminalAndEqual(t *testing.T) {
	g, p := testPool(t, 1)
	done := mustSubmit(t, p, jobAd("a", 5, 9))
	g.Engine.RunFor(10 * time.Second) // completes the prio-9 job
	if got := mustJob(t, p, done).Status; got != StatusCompleted {
		t.Fatalf("setup: %v", got)
	}
	running := mustSubmit(t, p, jobAd("b", 100, 7))
	g.Engine.Step() // running now occupies the machine
	equal := mustSubmit(t, p, jobAd("c", 10, 3))
	target := mustSubmit(t, p, jobAd("d", 10, 3))
	above, err := p.QueueAbove(target)
	if err != nil {
		t.Fatal(err)
	}
	// Only the running prio-7 job qualifies: the completed prio-9 job is
	// terminal and the prio-3 job is not strictly greater.
	if len(above) != 1 || above[0].ID != running {
		t.Fatalf("QueueAbove = %+v", above)
	}
	_ = equal
}

func TestSetPriorityEdgeCases(t *testing.T) {
	g, p := testPool(t, 1)
	done := mustSubmit(t, p, jobAd("a", 5, 0))
	g.Engine.RunFor(10 * time.Second)
	if err := p.SetPriority(done, 3); err == nil {
		t.Fatal("SetPriority on a completed job succeeded")
	}
	if err := p.SetPriority(99, 3); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("unknown job error = %v", err)
	}
	// Running jobs accept priority changes (affects QueueAbove, not the
	// running task), and the ad stays in sync.
	run := mustSubmit(t, p, jobAd("b", 100, 0))
	g.Engine.Step()
	if err := p.SetPriority(run, -5); err != nil {
		t.Fatal(err)
	}
	info := mustJob(t, p, run)
	if info.Priority != -5 || info.Status != StatusRunning {
		t.Fatalf("running job after SetPriority = %+v", info)
	}
	// Demoting one idle job reorders the queue tail.
	x := mustSubmit(t, p, jobAd("c", 10, 5))
	y := mustSubmit(t, p, jobAd("d", 10, 5))
	if err := p.SetPriority(x, -1); err != nil {
		t.Fatal(err)
	}
	if got := mustJob(t, p, y).QueuePosition; got != 1 {
		t.Fatalf("y position = %d, want 1", got)
	}
	if got := mustJob(t, p, x).QueuePosition; got != 2 {
		t.Fatalf("demoted x position = %d, want 2", got)
	}
}
