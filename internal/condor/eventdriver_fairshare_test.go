package condor_test

// The fair-share half of the tick-vs-event equivalence suite lives in an
// external test package: the scenario specs come from internal/workload,
// which (through the estimator) imports condor itself.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/classad"
	"repro/internal/condor"
	"repro/internal/fairshare"
	"repro/internal/simgrid"
	"repro/internal/workload"
)

// fsTrace is one run's observable footprint: every pool transition plus
// final job snapshots.
type fsTrace struct {
	events   []condor.Event
	outcomes []condor.JobInfo
}

func (tr *fsTrace) diff(other *fsTrace) string {
	if len(tr.events) != len(other.events) {
		return fmt.Sprintf("event count %d vs %d", len(tr.events), len(other.events))
	}
	for i := range tr.events {
		if tr.events[i] != other.events[i] {
			return fmt.Sprintf("event %d: %+v vs %+v", i, tr.events[i], other.events[i])
		}
	}
	if len(tr.outcomes) != len(other.outcomes) {
		return fmt.Sprintf("job count %d vs %d", len(tr.outcomes), len(other.outcomes))
	}
	for i := range tr.outcomes {
		if tr.outcomes[i] != other.outcomes[i] {
			return fmt.Sprintf("job %s/%d: %+v vs %+v", tr.outcomes[i].Pool, tr.outcomes[i].ID, tr.outcomes[i], other.outcomes[i])
		}
	}
	return ""
}

// runDriverFairshareScenario replays a multi-tenant fairness scenario
// (the same specs the fairness simulator and benchmark use) under the
// given driver and returns the full trace plus per-tenant completed CPU.
func runDriverFairshareScenario(t *testing.T, sc workload.FairnessScenario, driver simgrid.Driver) (*fsTrace, map[string]float64) {
	t.Helper()
	g := simgrid.NewGrid(time.Second, 1)
	g.Engine.SetDriver(driver)
	site := g.AddSite("siteA")
	pool := condor.NewPool("siteA", g, site)
	for i := 0; i < sc.Machines; i++ {
		pool.AddMachine(site.AddNode(g.Engine, fmt.Sprintf("siteA-n%d", i), 1, nil), nil)
	}
	pools := []*condor.Pool{pool}
	if sc.FlockMachines > 0 {
		peerSite := g.AddSite("siteB")
		peer := condor.NewPool("siteB", g, peerSite)
		for i := 0; i < sc.FlockMachines; i++ {
			peer.AddMachine(peerSite.AddNode(g.Engine, fmt.Sprintf("siteB-n%d", i), 1, nil), nil)
		}
		pool.EnableFlocking(peer)
		pools = append(pools, peer)
	}
	fs := fairshare.NewManager(fairshare.Config{Clock: g.Engine.Clock()})
	for _, gr := range sc.Groups {
		fs.SetGroup(gr.Name, gr.Weight)
	}
	for _, tn := range sc.Tenants {
		fs.SetTenant(tn.Name, tn.Group, tn.Weight)
	}
	pool.SetFairShare(fs)

	tr := &fsTrace{}
	byTenant := make(map[string]float64)
	meta := make(map[int]workload.Submission)
	pool.Subscribe(func(e condor.Event) {
		tr.events = append(tr.events, e)
		if e.To == condor.StatusCompleted {
			byTenant[meta[e.JobID].Tenant] += meta[e.JobID].CPUSeconds
		}
	})

	for _, sub := range sc.Submissions() {
		sub := sub
		g.Engine.Schedule(time.Duration(sub.Tick)*time.Second, func(time.Time) {
			ad := classad.New().
				Set(condor.AttrOwner, sub.Tenant).
				Set(condor.AttrCpuSeconds, sub.CPUSeconds).
				Set(condor.AttrPriority, sub.Priority)
			id, err := pool.Submit(ad)
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			meta[id] = sub
		})
	}
	g.Engine.RunFor(time.Duration(sc.Ticks+60) * time.Second)
	for _, p := range pools {
		infos, err := p.Jobs()
		if err != nil {
			t.Fatalf("jobs: %v", err)
		}
		tr.outcomes = append(tr.outcomes, infos...)
	}
	return tr, byTenant
}

// TestDriverEquivalenceFairshareScenarios runs every built-in
// multi-tenant fairness scenario under both drivers: traces and
// per-tenant allocation metrics must match exactly — the fair-share
// accounting (decayed usage accrued tick by tick) is the most
// timing-sensitive consumer of the engine.
func TestDriverEquivalenceFairshareScenarios(t *testing.T) {
	for _, sc := range workload.FairnessScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			tick, tickCPU := runDriverFairshareScenario(t, sc, simgrid.DriverTick)
			ev, evCPU := runDriverFairshareScenario(t, sc, simgrid.DriverEvent)
			if d := tick.diff(ev); d != "" {
				t.Fatalf("tick and event drivers diverged: %s", d)
			}
			if len(tickCPU) != len(evCPU) {
				t.Fatalf("tenant sets diverged: %v vs %v", tickCPU, evCPU)
			}
			for tenant, cpu := range tickCPU {
				if evCPU[tenant] != cpu {
					t.Errorf("tenant %s completed CPU %v (tick) vs %v (event)", tenant, cpu, evCPU[tenant])
				}
			}
			if len(tick.events) == 0 {
				t.Fatal("scenario produced no events; equivalence test is vacuous")
			}
		})
	}
}
