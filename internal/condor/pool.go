package condor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/classad"
	"repro/internal/fairshare"
	"repro/internal/simgrid"
)

// ErrPoolDown is returned by every operation while the pool's execution
// service is failed (see Fail), letting the Steering Service's Backup &
// Recovery module observe a dead execution service exactly as it would a
// crashed Condor schedd.
var ErrPoolDown = fmt.Errorf("condor: execution service unavailable")

// ErrNoSuchJob is returned for unknown job IDs.
var ErrNoSuchJob = fmt.Errorf("condor: no such job")

// Pool is one site's execution service: a schedd (queue) plus a negotiator
// (matchmaker) over the site's machines. Register the pool as an engine
// actor; each tick runs one negotiation cycle and harvests completions.
type Pool struct {
	Name string

	grid *simgrid.Grid
	site *simgrid.Site

	mu        sync.Mutex
	machines  []*machine
	jobs      map[int]*job
	order     []int // submission order, for FIFO within a priority
	nextID    int
	down      bool
	flockPeer *Pool
	listeners []func(Event)
	fair      fairshare.Ranker
	fairSink  fairshare.Sink
	fairStart fairshare.StartObserver
}

type machine struct {
	node *simgrid.Node
	ad   *classad.Ad
}

// NewPool creates an execution service for site, registered with the
// grid's engine.
func NewPool(name string, grid *simgrid.Grid, site *simgrid.Site) *Pool {
	p := &Pool{
		Name: name,
		grid: grid,
		site: site,
		jobs: make(map[int]*job),
	}
	grid.Engine.AddActor(p)
	return p
}

// Site returns the site this pool executes on.
func (p *Pool) Site() *simgrid.Site { return p.site }

// AddMachine advertises a node to the negotiator. The machine ad is
// augmented with standard attributes (Machine, Mips); a nil ad is allowed.
func (p *Pool) AddMachine(node *simgrid.Node, ad *classad.Ad) {
	if ad == nil {
		ad = classad.New()
	}
	ad.Set("Machine", node.Name)
	ad.Set("Mips", node.Mips)
	if !ad.Has("Arch") {
		ad.Set("Arch", "x86")
	}
	if !ad.Has("OpSys") {
		ad.Set("OpSys", "LINUX")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.machines = append(p.machines, &machine{node: node, ad: ad})
}

// Machines returns the advertised machine count.
func (p *Pool) Machines() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.machines)
}

// EnableFlocking lets idle jobs overflow to peer when no local machine
// matches. Condor flocking submits to a remote pool while preserving the
// job's identity; here the job simply also negotiates against the peer's
// machines.
func (p *Pool) EnableFlocking(peer *Pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flockPeer = peer
}

// SetFairShare installs a fair-share policy: negotiation (and the
// reported queue position) orders idle jobs by pol.Less instead of static
// priority with FIFO, making the queue time-aware. If pol also implements
// fairshare.Sink — as *fairshare.Manager does — the CPU-seconds each job
// executed here are recorded as owner usage at this pool's site when the
// job reaches a terminal state, closing the accounting loop the paper's
// stack lacks. A nil pol restores the static ordering.
func (p *Pool) SetFairShare(pol fairshare.Ranker) {
	if fairshare.IsNil(pol) {
		pol = nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fair = pol
	p.fairSink, _ = pol.(fairshare.Sink)
	p.fairStart, _ = pol.(fairshare.StartObserver)
}

// Subscribe registers a listener for job state transitions. Listeners run
// synchronously on the simulation goroutine; they must not block.
func (p *Pool) Subscribe(fn func(Event)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.listeners = append(p.listeners, fn)
}

// Fail marks the execution service down: all API calls error and running
// tasks stop progressing (their nodes keep ticking, but harvest pauses).
func (p *Pool) Fail() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down = true
	for _, j := range p.jobs {
		if j.status == StatusRunning && j.task != nil {
			j.task.Suspend()
		}
	}
}

// Recover brings a failed service back; suspended-by-failure jobs resume.
func (p *Pool) Recover() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down = false
	for _, j := range p.jobs {
		if j.status == StatusRunning && j.task != nil {
			j.task.Resume()
		}
	}
}

// Healthy reports whether the execution service answers requests — the
// probe the Backup & Recovery module polls.
func (p *Pool) Healthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.down
}

// Submit enqueues a job described by ad. The ad must carry AttrCpuSeconds
// (the ground-truth work) and should carry AttrOwner. The returned ID is
// the pool-local "Condor ID".
func (p *Pool) Submit(ad *classad.Ad) (int, error) {
	if ad == nil {
		return 0, fmt.Errorf("condor: nil job ad")
	}
	need := ad.Float(AttrCpuSeconds, 0)
	if need <= 0 {
		return 0, fmt.Errorf("condor: job ad missing positive %s", AttrCpuSeconds)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return 0, ErrPoolDown
	}
	p.nextID++
	id := p.nextID
	j := &job{
		id:         id,
		ad:         ad.Clone(),
		status:     StatusIdle,
		priority:   int(ad.Int(AttrPriority, 0)),
		submitTime: p.grid.Engine.Now(),
	}
	p.jobs[id] = j
	p.order = append(p.order, id)
	p.emitLocked(j, 0, StatusIdle)
	return id, nil
}

// SubmitCheckpointed enqueues a job that already completed cpuDone seconds
// of work elsewhere — the flocking/steering migration path for
// checkpointable jobs.
func (p *Pool) SubmitCheckpointed(ad *classad.Ad, cpuDone float64) (int, error) {
	if cpuDone < 0 {
		return 0, fmt.Errorf("condor: negative checkpoint %v", cpuDone)
	}
	id, err := p.Submit(ad)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.jobs[id].ad.Bool(AttrCheckpoint, false) {
		// Non-checkpointable jobs restart from zero.
		return id, nil
	}
	p.jobs[id].cpuBase = cpuDone
	return id, nil
}

// Job returns a snapshot of the identified job.
func (p *Pool) Job(id int) (JobInfo, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return JobInfo{}, ErrPoolDown
	}
	j, ok := p.jobs[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("%w: %d", ErrNoSuchJob, id)
	}
	return p.snapshotLocked(j), nil
}

// Jobs returns snapshots of every job, ordered by ID.
func (p *Pool) Jobs() ([]JobInfo, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return nil, ErrPoolDown
	}
	ids := make([]int, 0, len(p.jobs))
	for id := range p.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	pos := p.idlePositionsLocked()
	out := make([]JobInfo, 0, len(ids))
	for _, id := range ids {
		out = append(out, p.snapshotPosLocked(p.jobs[id], pos))
	}
	return out, nil
}

// QueueAbove returns the running and idle jobs scheduled ahead of job id
// — the queue-time estimator's step (a)/(b) input. Under the default
// static policy that is every non-terminal job with strictly greater
// priority; when a fair-share policy is installed, it is every running
// job plus the idle jobs the policy orders before this one, so queue-time
// estimates track the order the negotiator will actually use.
func (p *Pool) QueueAbove(id int) ([]JobInfo, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return nil, ErrPoolDown
	}
	j, ok := p.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchJob, id)
	}
	var out []JobInfo
	if p.fair != nil {
		// Running and suspended jobs both hold machines the target must
		// wait on (a suspended task keeps its node until resumed); they
		// carry no queue position, so the ordering pass is only paid when
		// the target itself is idle.
		var pos map[int]int
		for _, oid := range p.order {
			o := p.jobs[oid]
			if o.id != id && (o.status == StatusRunning || o.status == StatusSuspended) {
				out = append(out, p.snapshotPosLocked(o, pos))
			}
		}
		if j.status == StatusIdle {
			ordered := p.idleOrderedLocked()
			pos = positionsOf(ordered)
			for _, o := range ordered {
				if o.id == id {
					break
				}
				out = append(out, p.snapshotPosLocked(o, pos))
			}
		}
		return out, nil
	}
	pos := p.idlePositionsLocked()
	for _, oid := range p.order {
		o := p.jobs[oid]
		if o.id == id || o.status.Terminal() {
			continue
		}
		if o.priority > j.priority {
			out = append(out, p.snapshotPosLocked(o, pos))
		}
	}
	return out, nil
}

// Suspend pauses a running job (paper: "pause").
func (p *Pool) Suspend(id int) error {
	return p.transition(id, func(j *job) error {
		if j.status != StatusRunning {
			return fmt.Errorf("condor: job %d is %v, cannot suspend", id, j.status)
		}
		j.task.Suspend()
		p.setStatusLocked(j, StatusSuspended)
		return nil
	})
}

// Resume continues a suspended job.
func (p *Pool) Resume(id int) error {
	return p.transition(id, func(j *job) error {
		if j.status != StatusSuspended {
			return fmt.Errorf("condor: job %d is %v, cannot resume", id, j.status)
		}
		j.task.Resume()
		p.setStatusLocked(j, StatusRunning)
		return nil
	})
}

// Remove kills a job (paper: "kill"); idle jobs leave the queue, running
// jobs are torn down.
func (p *Pool) Remove(id int) error {
	return p.transition(id, func(j *job) error {
		if j.status.Terminal() {
			return fmt.Errorf("condor: job %d already %v", id, j.status)
		}
		p.detachLocked(j)
		j.completionTime = p.grid.Engine.Now()
		p.setStatusLocked(j, StatusRemoved)
		return nil
	})
}

// SetPriority changes a pending or running job's priority (paper: "change
// priority of the job"). Queue order adjusts on the next negotiation.
func (p *Pool) SetPriority(id, prio int) error {
	return p.transition(id, func(j *job) error {
		if j.status.Terminal() {
			return fmt.Errorf("condor: job %d already %v", id, j.status)
		}
		j.priority = prio
		j.ad.Set(AttrPriority, prio)
		return nil
	})
}

// Checkpoint records and returns the job's completed CPU-seconds; a
// subsequent SubmitCheckpointed elsewhere resumes from this point.
func (p *Pool) Checkpoint(id int) (float64, error) {
	var cpu float64
	err := p.transition(id, func(j *job) error {
		cpu = p.cpuSecondsLocked(j)
		j.ckptCPU = cpu
		return nil
	})
	return cpu, err
}

// WallClock returns the job's accumulated execution time — Condor's
// "wall-clock time the job has accumulated while running", the Figure 7
// progress proxy.
func (p *Pool) WallClock(id int) (time.Duration, error) {
	info, err := p.Job(id)
	if err != nil {
		return 0, err
	}
	return info.WallClock, nil
}

// transition runs fn on the identified job under the pool lock.
func (p *Pool) transition(id int, fn func(*job) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return ErrPoolDown
	}
	j, ok := p.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchJob, id)
	}
	return fn(j)
}

// OnTick runs one negotiation cycle and harvests task completions/faults.
func (p *Pool) OnTick(now time.Time, dt time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return
	}
	p.harvestLocked(now)
	p.negotiateLocked(now)
}

// harvestLocked promotes finished tasks to Completed and applies fault
// injection. Running jobs also accrue their fair-share usage here, tick
// by tick, so a tenant holding machines with long jobs is penalized
// while it runs — not only when the job finally completes (Condor's
// periodic usage update does the same).
func (p *Pool) harvestLocked(now time.Time) {
	for _, id := range p.order {
		j := p.jobs[id]
		if j.status != StatusRunning || j.task == nil {
			continue
		}
		p.accrueUsageLocked(j)
		if fail := j.ad.Float(AttrFailAfter, 0); fail > 0 && p.cpuSecondsLocked(j) >= fail {
			j.task.Kill()
			p.detachLocked(j)
			j.completionTime = now
			p.setStatusLocked(j, StatusFailed)
			continue
		}
		if j.task.State() == simgrid.TaskDone {
			j.node.Remove(j.task)
			j.completionTime = now
			p.setStatusLocked(j, StatusCompleted)
			p.produceOutputLocked(j)
		}
	}
}

// produceOutputLocked materializes the job's declared output file in the
// site's storage element, so Backup & Recovery can fetch "local files that
// were produced".
func (p *Pool) produceOutputLocked(j *job) {
	name := j.ad.Str(AttrOutputFile, "")
	if name == "" {
		return
	}
	size := j.ad.Float(AttrOutputMB, 1)
	_ = p.site.Storage().Put(name, size)
}

// idleOrderedLocked returns the idle jobs in negotiation order: the
// fair-share policy's order when one is installed, otherwise priority
// descending with FIFO within a level.
func (p *Pool) idleOrderedLocked() []*job {
	idle := make([]*job, 0)
	for _, id := range p.order {
		j := p.jobs[id]
		if j.status == StatusIdle {
			idle = append(idle, j)
		}
	}
	if p.fair != nil {
		// Refs are built once per sort: a comparator that re-evaluates
		// classad attributes per comparison dominates negotiation cost.
		refs := make([]fairshare.JobRef, len(idle))
		for i, j := range idle {
			refs[i] = jobRef(j)
		}
		order := make([]int, len(idle))
		for i := range order {
			order[i] = i
		}
		// One timestamp for the whole pass keeps the comparator a strict
		// weak ordering even on a clock that advances mid-sort, and the
		// key form computes standing in one locked pass so the sort
		// itself runs lock-free.
		switch r := p.fair.(type) {
		case fairshare.KeyRanker:
			keys := r.SortKeysAt(p.grid.Engine.Now(), refs)
			sort.SliceStable(order, func(a, b int) bool {
				ia, ib := order[a], order[b]
				return fairshare.LessKeys(refs[ia], refs[ib], keys[ia], keys[ib])
			})
		case fairshare.TickRanker:
			now := p.grid.Engine.Now()
			sort.SliceStable(order, func(a, b int) bool {
				return r.LessAt(now, refs[order[a]], refs[order[b]])
			})
		default:
			sort.SliceStable(order, func(a, b int) bool {
				return p.fair.Less(refs[order[a]], refs[order[b]])
			})
		}
		out := make([]*job, len(idle))
		for i, idx := range order {
			out[i] = idle[idx]
		}
		return out
	}
	sort.SliceStable(idle, func(a, b int) bool {
		if idle[a].priority != idle[b].priority {
			return idle[a].priority > idle[b].priority
		}
		return idle[a].id < idle[b].id
	})
	return idle
}

// jobRef is the fair-share policy's view of a queued job.
func jobRef(j *job) fairshare.JobRef {
	return fairshare.JobRef{
		Owner:          j.ad.Str(AttrOwner, ""),
		StaticPriority: j.priority,
		Submitted:      j.submitTime,
		Seq:            j.id,
	}
}

// negotiateLocked matches idle jobs to free machines in negotiation order
// (see idleOrderedLocked); each job picks its highest-Rank matching
// machine.
func (p *Pool) negotiateLocked(now time.Time) {
	idle := p.idleOrderedLocked()
	if len(idle) == 0 {
		return
	}
	free := p.freeMachinesLocked(now)
	var peerFree []*machine
	if p.flockPeer != nil {
		peerFree = p.flockPeer.freeMachines(now)
	}
	for _, j := range idle {
		m := pickMachine(j.ad, free, now)
		if m == nil && len(peerFree) > 0 {
			m = pickMachine(j.ad, peerFree, now)
			peerFree = removeMachine(peerFree, m)
		} else {
			free = removeMachine(free, m)
		}
		if m == nil {
			continue
		}
		p.startLocked(j, m, now)
	}
}

// freeMachinesLocked lists machines with no running task.
func (p *Pool) freeMachinesLocked(now time.Time) []*machine {
	var out []*machine
	for _, m := range p.machines {
		if len(m.node.Tasks()) == 0 {
			out = append(out, m)
		}
	}
	return out
}

func (p *Pool) freeMachines(now time.Time) []*machine {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return nil
	}
	return p.freeMachinesLocked(now)
}

// pickMachine returns the matching machine with the highest job Rank,
// breaking ties by machine name for determinism.
func pickMachine(jobAd *classad.Ad, machines []*machine, now time.Time) *machine {
	var best *machine
	bestRank := 0.0
	for _, m := range machines {
		ad := m.ad.Clone()
		ad.Set("LoadAvg", m.node.LoadAt(now))
		if !classad.Match(jobAd, ad) {
			continue
		}
		r := classad.Rank(jobAd, ad)
		if best == nil || r > bestRank || (r == bestRank && m.node.Name < best.node.Name) {
			best, bestRank = m, r
		}
	}
	return best
}

func removeMachine(ms []*machine, m *machine) []*machine {
	if m == nil {
		return ms
	}
	for i, x := range ms {
		if x == m {
			return append(ms[:i], ms[i+1:]...)
		}
	}
	return ms
}

// startLocked launches job j on machine m.
func (p *Pool) startLocked(j *job, m *machine, now time.Time) {
	need := j.ad.Float(AttrCpuSeconds, 0) - j.cpuBase
	if need <= 0 {
		// Checkpoint covered all remaining work; complete immediately. No
		// machine time was consumed, so this is not an allocation for the
		// starvation guard.
		j.startTime = now
		j.completionTime = now
		p.setStatusLocked(j, StatusCompleted)
		p.produceOutputLocked(j)
		return
	}
	if p.fairStart != nil {
		p.fairStart.ObserveStart(j.ad.Str(AttrOwner, ""), now)
	}
	j.task = simgrid.NewTask(fmt.Sprintf("%s-%d", p.Name, j.id), need, nil)
	j.node = m.node
	m.node.Place(j.task)
	if j.startTime.IsZero() {
		j.startTime = now
	}
	p.setStatusLocked(j, StatusRunning)
}

// detachLocked removes the job's task from its node, if any.
func (p *Pool) detachLocked(j *job) {
	if j.task != nil {
		j.task.Kill()
		if j.node != nil {
			j.node.Remove(j.task)
		}
	}
}

// cpuSecondsLocked returns checkpoint base plus live task CPU.
func (p *Pool) cpuSecondsLocked(j *job) float64 {
	cpu := j.cpuBase
	if j.task != nil {
		cpu += j.task.CPUSeconds()
	}
	return cpu
}

// accrueUsageLocked reports the job's locally-executed CPU-seconds to
// the fair-share sink incrementally, attributed to the site whose
// machine ran them — a flocked job charges the peer's site, not this
// pool's. Checkpointed work carried in from another site is excluded;
// that site already accounted for it.
func (p *Pool) accrueUsageLocked(j *job) {
	if p.fairSink == nil {
		return
	}
	cpu := p.cpuSecondsLocked(j) - j.cpuBase
	if delta := cpu - j.usageRecorded; delta > 0 {
		site := p.site.Name
		if j.node != nil {
			site = j.node.Site
		}
		p.fairSink.RecordUsage(j.ad.Str(AttrOwner, ""), site, delta)
		j.usageRecorded = cpu
	}
}

// setStatusLocked applies a state change and notifies listeners. Jobs
// reaching a terminal state settle any CPU not yet accrued by the
// per-tick update.
func (p *Pool) setStatusLocked(j *job, to Status) {
	from := j.status
	j.status = to
	if to.Terminal() {
		p.accrueUsageLocked(j)
	}
	p.emitLocked(j, from, to)
}

func (p *Pool) emitLocked(j *job, from, to Status) {
	if len(p.listeners) == 0 {
		return
	}
	ev := Event{Pool: p.Name, JobID: j.id, From: from, To: to, At: p.grid.Engine.Now()}
	for _, fn := range p.listeners {
		fn(ev)
	}
}

// idlePositionsLocked maps idle job IDs to their 1-based place in
// negotiation order. Bulk snapshotters compute it once so a whole-queue
// listing costs one ordering pass instead of one per job.
func (p *Pool) idlePositionsLocked() map[int]int {
	return positionsOf(p.idleOrderedLocked())
}

func positionsOf(ordered []*job) map[int]int {
	pos := make(map[int]int, len(ordered))
	for i, j := range ordered {
		pos[j.id] = i + 1
	}
	return pos
}

// snapshotLocked builds the JobInfo view of a single job, paying for an
// ordering pass only when the job is idle.
func (p *Pool) snapshotLocked(j *job) JobInfo {
	var pos map[int]int
	if j.status == StatusIdle {
		pos = p.idlePositionsLocked()
	}
	return p.snapshotPosLocked(j, pos)
}

// snapshotPosLocked builds the JobInfo view using precomputed idle
// positions.
func (p *Pool) snapshotPosLocked(j *job, pos map[int]int) JobInfo {
	now := p.grid.Engine.Now()
	info := JobInfo{
		ID:               j.id,
		Pool:             p.Name,
		Status:           j.status,
		Owner:            j.ad.Str(AttrOwner, ""),
		Cmd:              j.ad.Str(AttrCmd, ""),
		Priority:         j.priority,
		Env:              j.ad.Str(AttrEnv, ""),
		SubmitTime:       j.submitTime,
		StartTime:        j.startTime,
		CompletionTime:   j.completionTime,
		EstimatedRuntime: j.ad.Float(AttrEstimate, 0),
		InputMB:          j.ad.Float(AttrInputMB, 0),
		OutputMB:         j.ad.Float(AttrOutputMB, 0),
		CPUSeconds:       p.cpuSecondsLocked(j),
	}
	if j.node != nil {
		info.Node = j.node.Name
	}
	need := j.ad.Float(AttrCpuSeconds, 0)
	if need > 0 {
		info.Progress = info.CPUSeconds / need
		if info.Progress > 1 {
			info.Progress = 1
		}
	}
	if j.task != nil {
		info.WallClock = j.task.WallClock()
	}
	if j.cpuBase > 0 {
		// Wall-clock carried from before the checkpointed migration is the
		// base CPU at Mips 1.
		info.WallClock += time.Duration(j.cpuBase * float64(time.Second))
	}
	end := now
	if !j.completionTime.IsZero() {
		end = j.completionTime
	}
	info.Elapsed = end.Sub(j.submitTime)
	if info.EstimatedRuntime > 0 {
		rem := info.EstimatedRuntime - info.WallClock.Seconds()
		if rem < 0 {
			rem = 0
		}
		info.RemainingEstimate = rem
	}
	if j.status == StatusIdle {
		info.QueuePosition = pos[j.id]
	}
	return info
}

// ParseEnv splits the AttrEnv convention "K=V;K2=V2" into a map.
func ParseEnv(env string) map[string]string {
	out := make(map[string]string)
	for _, kv := range strings.Split(env, ";") {
		if kv == "" {
			continue
		}
		if i := strings.IndexByte(kv, '='); i > 0 {
			out[kv[:i]] = kv[i+1:]
		}
	}
	return out
}
