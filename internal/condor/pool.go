package condor

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/classad"
	"repro/internal/fairshare"
	"repro/internal/simgrid"
	"repro/internal/telemetry"
)

// ErrPoolDown is returned by every operation while the pool's execution
// service is failed (see Fail), letting the Steering Service's Backup &
// Recovery module observe a dead execution service exactly as it would a
// crashed Condor schedd.
var ErrPoolDown = fmt.Errorf("condor: execution service unavailable")

// ErrNoSuchJob is returned for unknown job IDs.
var ErrNoSuchJob = fmt.Errorf("condor: no such job")

// Pool is one site's execution service: a schedd (queue) plus a negotiator
// (matchmaker) over the site's machines. The pool is event-driven: it
// asks the engine for a wakeup when there is work to do — a job was
// submitted, a machine was freed, a running task completed — and keeps a
// periodic (once-per-tick) wakeup only while it must re-examine state
// that changes with time: idle jobs waiting for a match (machine loads,
// and hence Requirements like `LoadAvg < 0.5`, vary every tick) and
// running jobs that need per-tick supervision (fault injection via
// AttrFailAfter, or incremental fair-share usage accrual). A drained pool
// with no queue costs the simulation nothing.
//
// The negotiation hot path is indexed: free machines are maintained
// incrementally in per-architecture buckets as jobs start and finish
// (rather than rescanned from the full machine list every tick), each
// machine carries a pool-owned match ad whose LoadAvg is written once per
// negotiation pass (rather than cloned per candidate), and job ads are
// compiled to classad.Matchers with their static Arch/OpSys Requirements
// constraints extracted, so each idle job evaluates the full ClassAd
// match only against plausible candidates. The seed's O(idle × free)
// clone-based negotiator is retained (see negotiateReferenceLocked) as
// the specification the indexed path must reproduce assignment-for-
// assignment; the golden-parity test runs both on identical workloads.
type Pool struct {
	Name string

	grid *simgrid.Grid
	site *simgrid.Site
	wake *simgrid.Wake

	mu       sync.Mutex
	machines []*machine
	// freeBuckets holds machines with no pool-placed task, keyed by the
	// lower-cased literal Arch of their ad (dynamicBucket for machines
	// whose Arch is not a static string). Maintained incrementally by
	// claim/release on job start/completion.
	freeBuckets map[string][]*machine
	jobs        map[int]*job
	// active lists non-terminal job IDs in submission order; harvest
	// compacts terminal entries out so per-tick passes cost O(live jobs),
	// not O(every job ever submitted).
	active      []int
	idleScratch []*job
	peerScratch []*machine
	refScratch  []fairshare.JobRef
	curScratch  []ownerCursor
	// streamScratch is the recycled negotiation stream: one stream is
	// live per pass (built and drained under p.mu), so its slices are
	// reused instead of reallocated on every wake.
	streamScratch negotiationStream
	// pickGen/pickSorted back the constant-rank ordered pick: per pass,
	// large free buckets are snapshotted in machine-name order and
	// consumed by a cursor (see pickFromBucketLocked).
	pickGen    uint64
	pickSorted map[string]*pickBucket
	nextID     int
	down       bool
	flockPeer  *Pool
	listeners  []func(Event)
	fair       fairshare.Ranker
	fairSink   fairshare.Sink
	fairFlow   fairshare.FlowSink
	fairStart  fairshare.StartObserver
	// refNegotiate switches negotiation to the retained reference
	// implementation; set only by the golden-parity test.
	refNegotiate bool

	// owners holds the incrementally maintained negotiation queues (see
	// queue.go): per-owner when a KeyRanker policy is installed
	// (streamByOwner), one shared queue under the static policy.
	owners        map[string]*ownerQueue
	streamByOwner bool

	// idleCount / liveCount / superviseCount summarize the queue so the
	// wake-up policy never walks it: idle jobs awaiting a match,
	// non-terminal jobs (for lazy active-list compaction), and running
	// jobs that need per-tick supervision (fault injection or eager
	// fair-share accrual). When superviseCount is zero the pool wakes
	// only on events — submit, machine freed, ad mutated, node changed,
	// completion deadline — plus the analytic load-segment boundary
	// computed by the last pass (loadWakeAt).
	idleCount      int
	liveCount      int
	superviseCount int
	loadWakeAt     time.Time

	// doneQ collects jobs whose completion deadline fired since the last
	// harvest; with no supervised jobs, harvest promotes exactly these
	// instead of walking every active job.
	doneQ []*job

	// nodeJob maps a node to the flow-accounted job running on it, so
	// node-change notifications can re-rate or demote the flow.
	nodeJob map[*simgrid.Node]*job

	// relMu guards pendingRel, the cross-pool release queue. A flocked
	// job's terminal transition can run on an arbitrary API goroutine
	// that already holds its own pool's lock, so it must not take the
	// machine owner's main lock (AB-BA inversion against engine-side peer
	// negotiation, which locks pools in the opposite order). Releases of
	// foreign machines enqueue here under this leaf lock instead; the
	// owner folds the queue back into its free buckets at the next tick
	// or peer snapshot — the same point a physical rescan would first
	// observe the machine idle.
	relMu      sync.Mutex
	pendingRel []*machine
	// dirtyNodes (relMu-guarded, like pendingRel) collects nodes whose
	// load, task set, or wake observer fired since the last pass; the
	// pool folds them in at the next wake to re-rate usage flows.
	// flockedFrom lists pools flocking into this one; they are woken
	// whenever this pool's machine picture changes, since their
	// negotiation reads it. Guarded by relMu because the notification
	// paths run under the notifying pool's main lock.
	dirtyNodes  map[*simgrid.Node]struct{}
	flockedFrom []*Pool

	// Pre-resolved telemetry handles (nil without SetTelemetry; nil
	// instruments no-op). Negotiation metrics cover the indexed path
	// only — the reference negotiator exists for the parity test, not
	// production serving.
	obsWakes       *telemetry.Counter
	obsPasses      *telemetry.Counter
	obsMatches     *telemetry.Counter
	obsPassSeconds *telemetry.Histogram
}

// SetTelemetry registers the pool's negotiation metrics in reg, labeled
// by site: wake-ups, negotiation passes (those with at least one idle
// job), matches started, and wall-clock pass duration.
func (p *Pool) SetTelemetry(reg *telemetry.Registry) {
	p.obsWakes = reg.LabeledCounter("pool_wakes_total", "site", p.Name)
	p.obsPasses = reg.LabeledCounter("negotiation_passes_total", "site", p.Name)
	p.obsMatches = reg.LabeledCounter("negotiation_matches_total", "site", p.Name)
	p.obsPassSeconds = reg.LabeledHistogram("negotiation_pass_seconds", "site", p.Name, nil)
}

// dynamicBucket indexes machines whose Arch is not a literal string
// (i.e. an expression, whose value may depend on the candidate job);
// they are scanned for every job regardless of its constraint.
const dynamicBucket = "\x00dynamic"

type machine struct {
	node  *simgrid.Node
	owner *Pool
	ad    *classad.Ad // caller-supplied ad, kept free of negotiation scratch
	// matchAd is the pool-owned snapshot offered to the matchmaker; its
	// LoadAvg is refreshed once per machine per negotiation pass instead
	// of cloning the ad for every (job, machine) candidate. adVersion
	// records the source ad's mutation counter at snapshot time: callers
	// may keep updating the ad they registered (the seed re-read it every
	// pick), so the snapshot and index keys resync when it changes.
	matchAd   *classad.Ad
	matcher   *classad.Matcher
	adVersion uint64
	// loadAvg mirrors the LoadAvg last written into matchAd so unchanged
	// values skip the ad mutation on every negotiation pass.
	loadAvg    float64
	loadAvgSet bool
	archKey    string // lowered Arch value, or dynamicBucket
	opsKey     string // lowered OpSys value when opsKnown
	opsKnown   bool
	// freeIdx is the machine's position in its owner's free bucket, -1
	// while claimed by a job.
	freeIdx int
	// skipFor excludes the machine from the named pool's current
	// negotiation pass: set when an externally placed task occupies the
	// node, or when a checkpoint-complete job consumed the offer without
	// placing work.
	skipFor *Pool
}

// NewPool creates an execution service for site, registered with the
// grid's engine.
func NewPool(name string, grid *simgrid.Grid, site *simgrid.Site) *Pool {
	p := &Pool{
		Name:        name,
		grid:        grid,
		site:        site,
		jobs:        make(map[int]*job),
		freeBuckets: make(map[string][]*machine),
		owners:      make(map[string]*ownerQueue),
		nodeJob:     make(map[*simgrid.Node]*job),
	}
	p.wake = grid.Engine.Register(p.onWake)
	return p
}

// requestWake asks for a negotiation/harvest pass at the earliest legal
// boundary: the current one if this pool's turn is still ahead in the
// boundary being processed (e.g. a completion deadline fired on a node
// registered before the pool), the next one otherwise — exactly when the
// legacy per-tick loop would next have reached the pool.
func (p *Pool) requestWake() {
	p.wake.Request(p.grid.Engine.Now())
}

// Site returns the site this pool executes on.
func (p *Pool) Site() *simgrid.Site { return p.site }

// AddMachine advertises a node to the negotiator. The machine ad is
// augmented with standard attributes (Machine, Mips); a nil ad is allowed.
func (p *Pool) AddMachine(node *simgrid.Node, ad *classad.Ad) {
	if ad == nil {
		ad = classad.New()
	}
	ad.Set("Machine", node.Name)
	ad.Set("Mips", node.Mips)
	if !ad.Has("Arch") {
		ad.Set("Arch", "x86")
	}
	if !ad.Has("OpSys") {
		ad.Set("OpSys", "LINUX")
	}
	m := &machine{node: node, owner: p, ad: ad, freeIdx: -1}
	m.snapshotAd()
	// Subscriptions replace per-tick polling: an ad attribute change or a
	// node-level change (load segment rollover, task placed or removed,
	// progress settled) marks the node dirty and wakes the negotiator —
	// this pool's and any pool flocking into it. The hook is registered
	// after the standard attributes above so the pool's own writes don't
	// self-wake. One observer per node: a node advertised to several
	// pools keeps only the last registration.
	ad.OnMutate(func() { p.machineChanged(nil) })
	node.SetObserver(func() { p.machineChanged(node) })
	p.mu.Lock()
	defer p.mu.Unlock()
	p.machines = append(p.machines, m)
	p.addFreeLocked(m)
	p.requestWake()
	p.wakeFlockedFrom()
}

// machineChanged records a machine-side change and wakes every
// negotiator that reads this pool's machines. It must not take p.mu:
// node observers fire from paths already holding it (detach, harvest).
func (p *Pool) machineChanged(n *simgrid.Node) {
	if n != nil {
		p.relMu.Lock()
		if p.dirtyNodes == nil {
			p.dirtyNodes = make(map[*simgrid.Node]struct{})
		}
		p.dirtyNodes[n] = struct{}{}
		p.relMu.Unlock()
	}
	p.requestWake()
	p.wakeFlockedFrom()
}

// wakeFlockedFrom wakes the pools flocking into this one.
func (p *Pool) wakeFlockedFrom() {
	p.relMu.Lock()
	ff := p.flockedFrom
	p.relMu.Unlock()
	for _, q := range ff {
		q.requestWake()
	}
}

// snapshotAd (re)builds the machine's match ad, compiled matcher, and
// index keys from the caller's ad.
func (m *machine) snapshotAd() {
	m.adVersion = m.ad.Version()
	m.matchAd = m.ad.Clone()
	m.matcher = classad.NewMatcher(m.matchAd)
	m.loadAvgSet = false
	// Only literal attributes are safe index keys: an expression-valued
	// Arch/OpSys can evaluate differently per candidate job, so such
	// machines take the catch-all bucket / skip the OpSys pre-filter.
	m.archKey = dynamicBucket
	if s, ok := m.matchAd.LiteralString("Arch"); ok {
		m.archKey = strings.ToLower(s)
	}
	m.opsKey, m.opsKnown = "", false
	if s, ok := m.matchAd.LiteralString("OpSys"); ok {
		m.opsKey, m.opsKnown = strings.ToLower(s), true
	}
}

// resyncMachineLocked refreshes a machine whose caller-side ad mutated
// since the last snapshot, rebucketing it if its Arch changed.
func (p *Pool) resyncMachineLocked(m *machine) {
	wasFree := m.freeIdx >= 0
	if wasFree {
		p.removeFreeLocked(m)
	}
	m.snapshotAd()
	if wasFree {
		p.addFreeLocked(m)
	}
}

// Machines returns the advertised machine count.
func (p *Pool) Machines() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.machines)
}

// EnableFlocking lets idle jobs overflow to peer when no local machine
// matches. Condor flocking submits to a remote pool while preserving the
// job's identity; here the job simply also negotiates against the peer's
// machines.
func (p *Pool) EnableFlocking(peer *Pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flockPeer = peer
	if peer != nil {
		peer.relMu.Lock()
		peer.flockedFrom = append(peer.flockedFrom, p)
		peer.relMu.Unlock()
	}
	p.requestWake()
}

// SetFairShare installs a fair-share policy: negotiation (and the
// reported queue position) orders idle jobs by pol.Less instead of static
// priority with FIFO, making the queue time-aware. If pol also implements
// fairshare.Sink — as *fairshare.Manager does — the CPU-seconds each job
// executed here are recorded as owner usage at this pool's site when the
// job reaches a terminal state, closing the accounting loop the paper's
// stack lacks. A nil pol restores the static ordering.
func (p *Pool) SetFairShare(pol fairshare.Ranker) {
	if fairshare.IsNil(pol) {
		pol = nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// Settle usage flows opened against the outgoing sink before the
	// policy swap: each closes with its measured total, so the old sink's
	// books end exactly where the eager path's would.
	for _, id := range p.active {
		j := p.jobs[id]
		if j.flow != nil {
			p.closeFlowLocked(j)
		}
	}
	p.fair = pol
	p.fairSink, _ = pol.(fairshare.Sink)
	p.fairFlow, _ = pol.(fairshare.FlowSink)
	p.fairStart, _ = pol.(fairshare.StartObserver)
	_, byOwner := p.fair.(fairshare.KeyRanker)
	if byOwner != p.streamByOwner {
		p.streamByOwner = byOwner
		p.rebuildQueuesLocked()
	}
	// Re-derive supervision for running jobs under the new policy:
	// existing jobs accrue eagerly (flows reopen only at start time).
	p.superviseCount = 0
	for _, id := range p.active {
		j := p.jobs[id]
		j.supervised = j.failAfter > 0 || p.fairSink != nil
		if j.supervised && j.status == StatusRunning {
			p.superviseCount++
		}
	}
	if p.fairSink != nil {
		p.requestWake() // running jobs now need per-tick usage accrual
	}
}

// Subscribe registers a listener for job state transitions. Listeners run
// synchronously on the simulation goroutine; they must not block.
func (p *Pool) Subscribe(fn func(Event)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.listeners = append(p.listeners, fn)
}

// Fail marks the execution service down: all API calls error and running
// tasks stop progressing (their nodes keep ticking, but harvest pauses).
func (p *Pool) Fail() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down = true
	for _, j := range p.jobs {
		if j.status == StatusRunning && j.task != nil {
			j.task.Suspend()
			if j.flow != nil {
				j.flow.SetRate(0) // tasks stop progressing while down
			}
		}
	}
}

// Recover brings a failed service back; suspended-by-failure jobs resume
// and the pool re-arms its engine wakeup.
func (p *Pool) Recover() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down = false
	for _, j := range p.jobs {
		if j.status == StatusRunning && j.task != nil {
			j.task.Resume()
			if j.flow != nil {
				j.flow.SetRate(j.flowRate)
			}
		}
	}
	p.requestWake()
	p.wakeFlockedFrom() // peers can match against this pool again
}

// Healthy reports whether the execution service answers requests — the
// probe the Backup & Recovery module polls.
func (p *Pool) Healthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.down
}

// Submit enqueues a job described by ad. The ad must carry AttrCpuSeconds
// (the ground-truth work) and should carry AttrOwner. The returned ID is
// the pool-local "Condor ID".
func (p *Pool) Submit(ad *classad.Ad) (int, error) {
	if ad == nil {
		return 0, fmt.Errorf("condor: nil job ad")
	}
	need := ad.Float(AttrCpuSeconds, 0)
	if need <= 0 {
		return 0, fmt.Errorf("condor: job ad missing positive %s", AttrCpuSeconds)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return 0, ErrPoolDown
	}
	p.nextID++
	id := p.nextID
	j := &job{
		id:         id,
		ad:         ad.Clone(),
		status:     StatusIdle,
		priority:   int(ad.Int(AttrPriority, 0)),
		submitTime: p.grid.Engine.Now(),
	}
	j.owner = j.ad.Str(AttrOwner, "")
	j.failAfter = j.ad.Float(AttrFailAfter, 0)
	j.matcher = classad.NewMatcher(j.ad)
	j.reqArch, _ = j.ad.ReqStringConstraint("Arch")
	j.reqOpSys, _ = j.ad.ReqStringConstraint("OpSys")
	p.jobs[id] = j
	p.active = append(p.active, id)
	p.liveCount++
	p.idleCount++
	p.enqueueIdleLocked(j)
	p.emitLocked(j, 0, StatusIdle)
	p.requestWake()
	return id, nil
}

// SubmitCheckpointed enqueues a job that already completed cpuDone seconds
// of work elsewhere — the flocking/steering migration path for
// checkpointable jobs.
func (p *Pool) SubmitCheckpointed(ad *classad.Ad, cpuDone float64) (int, error) {
	if cpuDone < 0 {
		return 0, fmt.Errorf("condor: negative checkpoint %v", cpuDone)
	}
	id, err := p.Submit(ad)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.jobs[id].ad.Bool(AttrCheckpoint, false) {
		// Non-checkpointable jobs restart from zero.
		return id, nil
	}
	p.jobs[id].cpuBase = cpuDone
	return id, nil
}

// Job returns a snapshot of the identified job.
func (p *Pool) Job(id int) (JobInfo, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return JobInfo{}, ErrPoolDown
	}
	j, ok := p.jobs[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("%w: %d", ErrNoSuchJob, id)
	}
	return p.snapshotLocked(j), nil
}

// Jobs returns snapshots of every job, ordered by ID.
func (p *Pool) Jobs() ([]JobInfo, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return nil, ErrPoolDown
	}
	ids := make([]int, 0, len(p.jobs))
	for id := range p.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	pos := p.idlePositionsLocked()
	out := make([]JobInfo, 0, len(ids))
	for _, id := range ids {
		out = append(out, p.snapshotPosLocked(p.jobs[id], pos))
	}
	return out, nil
}

// QueueAbove returns the running and idle jobs scheduled ahead of job id
// — the queue-time estimator's step (a)/(b) input. Under the default
// static policy that is every non-terminal job with strictly greater
// priority; when a fair-share policy is installed, it is every running
// job plus the idle jobs the policy orders before this one, so queue-time
// estimates track the order the negotiator will actually use.
func (p *Pool) QueueAbove(id int) ([]JobInfo, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return nil, ErrPoolDown
	}
	j, ok := p.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchJob, id)
	}
	var out []JobInfo
	if p.fair != nil {
		// Running and suspended jobs both hold machines the target must
		// wait on (a suspended task keeps its node until resumed); they
		// carry no queue position, so the ordering pass is only paid when
		// the target itself is idle.
		var pos map[int]int
		for _, oid := range p.active {
			o := p.jobs[oid]
			if o.id != id && (o.status == StatusRunning || o.status == StatusSuspended) {
				out = append(out, p.snapshotPosLocked(o, pos))
			}
		}
		if j.status == StatusIdle {
			ordered := p.idleOrderedLocked()
			pos = positionsOf(ordered)
			for _, o := range ordered {
				if o.id == id {
					break
				}
				out = append(out, p.snapshotPosLocked(o, pos))
			}
		}
		return out, nil
	}
	pos := p.idlePositionsLocked()
	for _, oid := range p.active {
		o := p.jobs[oid]
		if o.id == id || o.status.Terminal() {
			continue
		}
		if o.priority > j.priority {
			out = append(out, p.snapshotPosLocked(o, pos))
		}
	}
	return out, nil
}

// Suspend pauses a running job (paper: "pause").
func (p *Pool) Suspend(id int) error {
	return p.transition(id, func(j *job) error {
		if j.status != StatusRunning {
			return fmt.Errorf("condor: job %d is %v, cannot suspend", id, j.status)
		}
		j.task.Suspend()
		if j.flow != nil {
			j.flow.SetRate(0) // a paused task consumes nothing
		}
		p.setStatusLocked(j, StatusSuspended)
		return nil
	})
}

// Resume continues a suspended job.
func (p *Pool) Resume(id int) error {
	return p.transition(id, func(j *job) error {
		if j.status != StatusSuspended {
			return fmt.Errorf("condor: job %d is %v, cannot resume", id, j.status)
		}
		j.task.Resume()
		if j.flow != nil {
			j.flow.SetRate(j.flowRate)
		}
		p.setStatusLocked(j, StatusRunning)
		if j.task.State() == simgrid.TaskDone {
			// The completion deadline fired while suspended; re-enter the
			// harvest queue so the fast path still promotes it.
			p.doneQ = append(p.doneQ, j)
		}
		p.requestWake() // the job may need per-tick supervision again
		return nil
	})
}

// Remove kills a job (paper: "kill"); idle jobs leave the queue, running
// jobs are torn down.
func (p *Pool) Remove(id int) error {
	return p.transition(id, func(j *job) error {
		if j.status.Terminal() {
			return fmt.Errorf("condor: job %d already %v", id, j.status)
		}
		p.detachLocked(j)
		j.completionTime = p.grid.Engine.Now()
		p.setStatusLocked(j, StatusRemoved)
		return nil
	})
}

// SetPriority changes a pending or running job's priority (paper: "change
// priority of the job"). Queue order adjusts on the next negotiation.
func (p *Pool) SetPriority(id, prio int) error {
	return p.transition(id, func(j *job) error {
		if j.status.Terminal() {
			return fmt.Errorf("condor: job %d already %v", id, j.status)
		}
		j.priority = prio
		j.ad.Set(AttrPriority, prio)
		if j.status == StatusIdle {
			p.refileIdleLocked(j)
		}
		p.requestWake() // queue order changed; re-negotiate next boundary
		return nil
	})
}

// Checkpoint records and returns the job's completed CPU-seconds; a
// subsequent SubmitCheckpointed elsewhere resumes from this point.
func (p *Pool) Checkpoint(id int) (float64, error) {
	var cpu float64
	err := p.transition(id, func(j *job) error {
		cpu = p.cpuSecondsLocked(j)
		j.ckptCPU = cpu
		return nil
	})
	return cpu, err
}

// WallClock returns the job's accumulated execution time — Condor's
// "wall-clock time the job has accumulated while running", the Figure 7
// progress proxy.
func (p *Pool) WallClock(id int) (time.Duration, error) {
	info, err := p.Job(id)
	if err != nil {
		return 0, err
	}
	return info.WallClock, nil
}

// transition runs fn on the identified job under the pool lock.
func (p *Pool) transition(id int, fn func(*job) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return ErrPoolDown
	}
	j, ok := p.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchJob, id)
	}
	return fn(j)
}

// onWake folds queued machine/node signals in, harvests task
// completions and faults, runs one negotiation cycle, and re-arms. A
// failed (down) pool does not re-arm: Recover requests a fresh wakeup.
func (p *Pool) onWake(now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.drainReleasesLocked()
	if p.down {
		return
	}
	p.obsWakes.Inc()
	p.drainDirtyLocked()
	p.harvestLocked(now)
	p.negotiateLocked(now)
	p.rearmLocked(now)
}

// rearmLocked schedules the pool's next wakeup. The per-tick drumbeat
// survives only while a running job needs per-tick supervision, or while
// idle jobs wait under a policy the incremental stream cannot serve
// (an opaque Ranker, or the reference negotiator, which is specified as
// a per-tick rescan). Otherwise the pool sleeps until an event wakes it
// — with one analytic exception: when idle jobs went unmatched and some
// free machine's advertised load will change at a known segment
// boundary, the pass recorded that instant in loadWakeAt.
func (p *Pool) rearmLocked(now time.Time) {
	if p.superviseCount > 0 || p.legacyTickLocked() {
		p.wake.Request(now.Add(p.grid.Engine.Tick()))
		return
	}
	if !p.loadWakeAt.IsZero() {
		p.wake.Request(p.loadWakeAt)
	}
}

// legacyTickLocked reports whether idle jobs still force per-tick
// negotiation: only under the reference negotiator or a Ranker outside
// the incremental stream's reach.
func (p *Pool) legacyTickLocked() bool {
	if p.idleCount == 0 {
		return false
	}
	if p.refNegotiate {
		return true
	}
	_, ok := p.streamRankerLocked()
	return !ok
}

// harvestLocked promotes finished tasks to Completed and applies fault
// injection. While any running job is supervised (fault injection, or
// eager fair-share accrual) it is the legacy walk over every active
// job, accruing usage tick by tick so a tenant holding machines with
// long jobs is penalized while it runs — not only when the job finally
// completes (Condor's periodic usage update does the same). With no
// supervised jobs the pass touches exactly the jobs whose completion
// deadlines fired (doneQ), in ID order — the order the legacy walk
// would have promoted them — and the active list compacts lazily.
func (p *Pool) harvestLocked(now time.Time) {
	if p.superviseCount > 0 {
		p.doneQ = p.doneQ[:0]
		kept := p.active[:0]
		for _, id := range p.active {
			j := p.jobs[id]
			if j.status.Terminal() {
				continue
			}
			kept = append(kept, id)
			if j.status != StatusRunning || j.task == nil {
				continue
			}
			p.accrueUsageLocked(j)
			if fail := j.failAfter; fail > 0 && p.cpuSecondsLocked(j) >= fail {
				j.task.Kill()
				p.detachLocked(j)
				j.completionTime = now
				p.setStatusLocked(j, StatusFailed)
				continue
			}
			if j.task.State() == simgrid.TaskDone {
				j.node.Remove(j.task)
				p.releaseClaimLocked(j)
				j.completionTime = now
				p.setStatusLocked(j, StatusCompleted)
				p.produceOutputLocked(j)
			}
		}
		p.active = kept
		return
	}
	if len(p.doneQ) > 0 {
		sort.Slice(p.doneQ, func(a, b int) bool { return p.doneQ[a].id < p.doneQ[b].id })
		for _, j := range p.doneQ {
			if j.status != StatusRunning || j.task == nil || j.task.State() != simgrid.TaskDone {
				continue
			}
			j.node.Remove(j.task)
			p.releaseClaimLocked(j)
			j.completionTime = now
			p.setStatusLocked(j, StatusCompleted)
			p.produceOutputLocked(j)
		}
		p.doneQ = p.doneQ[:0]
	}
	if len(p.active) > 128 && len(p.active) > 2*p.liveCount {
		kept := p.active[:0]
		for _, id := range p.active {
			if !p.jobs[id].status.Terminal() {
				kept = append(kept, id)
			}
		}
		p.active = kept
	}
}

// drainDirtyLocked folds queued node-change notifications in: each
// dirty node carrying a flow-accounted job gets its analytic rate
// re-derived — adjusted in place when the node still qualifies, or the
// flow is closed and the job demoted to eager supervision when it no
// longer does (a second task landed, or the load is no longer a
// constant segment).
func (p *Pool) drainDirtyLocked() {
	p.relMu.Lock()
	dirty := p.dirtyNodes
	p.dirtyNodes = nil
	p.relMu.Unlock()
	for node := range dirty {
		j := p.nodeJob[node]
		if j == nil || j.flow == nil {
			continue
		}
		if j.task != nil && j.task.State() == simgrid.TaskDone {
			// Completing at this very wake (the completion is what marked
			// the node dirty): the harvest's terminal settle closes the
			// flow exactly. Demoting to eager supervision here would force
			// a full active-list walk for every completion.
			continue
		}
		rate, ok := p.flowRateFor(node)
		if !ok {
			p.closeFlowLocked(j)
			j.supervised = j.failAfter > 0 || p.fairSink != nil
			if j.supervised && j.status == StatusRunning {
				p.superviseCount++
			}
			continue
		}
		if rate != j.flowRate {
			j.flowRate = rate
			if j.status == StatusRunning {
				j.flow.SetRate(rate)
			}
		}
	}
}

// produceOutputLocked materializes the job's declared output file in the
// site's storage element, so Backup & Recovery can fetch "local files that
// were produced".
func (p *Pool) produceOutputLocked(j *job) {
	name := j.ad.Str(AttrOutputFile, "")
	if name == "" {
		return
	}
	size := j.ad.Float(AttrOutputMB, 1)
	_ = p.site.Storage().Put(name, size)
}

// idleOrderedLocked returns the idle jobs in negotiation order: the
// fair-share policy's order when one is installed, otherwise priority
// descending with FIFO within a level. The returned slice aliases a
// per-pool scratch buffer valid until the next call under the same lock.
func (p *Pool) idleOrderedLocked() []*job {
	idle := p.idleScratch[:0]
	for _, id := range p.active {
		j := p.jobs[id]
		if j.status == StatusIdle {
			idle = append(idle, j)
		}
	}
	p.idleScratch = idle
	if p.fair != nil {
		// Refs are built once per sort: a comparator that re-evaluates
		// classad attributes per comparison dominates negotiation cost.
		refs := make([]fairshare.JobRef, len(idle))
		for i, j := range idle {
			refs[i] = jobRef(j)
		}
		order := make([]int, len(idle))
		for i := range order {
			order[i] = i
		}
		// One timestamp for the whole pass keeps the comparator a strict
		// weak ordering even on a clock that advances mid-sort, and the
		// key form computes standing in one locked pass so the sort
		// itself runs lock-free.
		switch r := p.fair.(type) {
		case fairshare.KeyRanker:
			keys := r.SortKeysAt(p.grid.Engine.Now(), refs)
			sort.SliceStable(order, func(a, b int) bool {
				ia, ib := order[a], order[b]
				return fairshare.LessKeys(refs[ia], refs[ib], keys[ia], keys[ib])
			})
		case fairshare.TickRanker:
			now := p.grid.Engine.Now()
			sort.SliceStable(order, func(a, b int) bool {
				return r.LessAt(now, refs[order[a]], refs[order[b]])
			})
		default:
			sort.SliceStable(order, func(a, b int) bool {
				return p.fair.Less(refs[order[a]], refs[order[b]])
			})
		}
		out := make([]*job, len(idle))
		for i, idx := range order {
			out[i] = idle[idx]
		}
		return out
	}
	sort.SliceStable(idle, func(a, b int) bool {
		if idle[a].priority != idle[b].priority {
			return idle[a].priority > idle[b].priority
		}
		return idle[a].id < idle[b].id
	})
	return idle
}

// jobRef is the fair-share policy's view of a queued job.
func jobRef(j *job) fairshare.JobRef {
	return fairshare.JobRef{
		Owner:          j.owner,
		StaticPriority: j.priority,
		Submitted:      j.submitTime,
		Seq:            j.id,
	}
}

// negotiateLocked matches idle jobs to free machines in negotiation
// order; each job picks its highest-Rank matching machine. Under the
// static policy or a KeyRanker the order comes from the incremental
// stream (see queue.go) and the pass ends as soon as every offer is
// spent; other rankers take the legacy sorted pass over the whole
// queue. Either way the pass records, in loadWakeAt, the earliest
// instant a free machine's advertised load is known to change — the
// only time-driven reason to negotiate again before the next event.
func (p *Pool) negotiateLocked(now time.Time) {
	p.loadWakeAt = time.Time{}
	if p.refNegotiate {
		p.negotiateReferenceLocked(now)
		return
	}
	if kr, ok := p.streamRankerLocked(); ok {
		p.negotiateStreamLocked(now, kr)
		return
	}
	idle := p.idleOrderedLocked()
	if len(idle) == 0 {
		return
	}
	var t0 time.Time
	if p.obsPasses != nil {
		t0 = time.Now() //lint:walltime telemetry: real pass latency for operator metrics, never read back into sim state
	}
	p.refreshFreeLocked(now)
	var peerFree []*machine
	if p.flockPeer != nil {
		peerFree, _ = p.flockPeer.snapshotFreeFor(now, p.peerScratch[:0])
		p.peerScratch = peerFree
	}
	matched := 0
	for _, j := range idle {
		m := p.pickIndexedLocked(j)
		if m == nil && len(peerFree) > 0 {
			m, _ = p.bestCandidate(j, peerFree, nil, 0)
			peerFree = removeMachine(peerFree, m)
		}
		if m == nil {
			continue
		}
		p.startLocked(j, m, now)
		matched++
	}
	if p.obsPasses != nil {
		p.obsPasses.Inc()
		p.obsMatches.Add(int64(matched))
		p.obsPassSeconds.Observe(time.Since(t0).Seconds()) //lint:walltime telemetry: real pass latency for operator metrics, never read back into sim state
	}
}

// negotiateStreamLocked is the event-driven pass: idle jobs arrive from
// the incrementally maintained queues in negotiation order, and the
// walk stops the moment no offer remains — O(matched) plus the stream's
// small per-owner bookkeeping, instead of O(idle log idle) every pass.
// Offers are counted up front: local free machines not excluded for
// this pass, plus the flocking peer's snapshot. Jobs that match nothing
// consume no offer and the stream simply moves on, so a queue full of
// unmatchable jobs still drains passes quickly once offers run out.
func (p *Pool) negotiateStreamLocked(now time.Time, kr fairshare.KeyRanker) {
	if p.idleCount == 0 {
		return
	}
	var t0 time.Time
	if p.obsPasses != nil {
		t0 = time.Now() //lint:walltime telemetry: real pass latency for operator metrics, never read back into sim state
	}
	st := p.refreshFreeLocked(now)
	var peerFree []*machine
	if p.flockPeer != nil {
		var pst freeStats
		peerFree, pst = p.flockPeer.snapshotFreeFor(now, p.peerScratch[:0])
		p.peerScratch = peerFree
		st.merge(pst)
	}
	matched := 0
	if st.avail > 0 || len(peerFree) > 0 {
		stream := p.negotiationStreamLocked(now, kr)
		for st.avail > 0 || len(peerFree) > 0 {
			j := stream.next()
			if j == nil {
				break
			}
			var m *machine
			if st.avail > 0 {
				m = p.pickIndexedLocked(j)
			}
			if m != nil {
				st.avail--
			} else if len(peerFree) > 0 {
				m, _ = p.bestCandidate(j, peerFree, nil, 0)
				peerFree = removeMachine(peerFree, m)
			}
			if m == nil {
				continue
			}
			p.startLocked(j, m, now)
			matched++
		}
	}
	if p.idleCount > 0 {
		// Unmatched idle jobs remain: wake when a free machine's load is
		// next known to change. Opaque (non-piecewise) loads force the
		// legacy per-tick cadence; piecewise ones wake at the earliest
		// segment boundary; with no free machines at all, only events can
		// change the picture and no timer is needed.
		if st.opaque {
			p.loadWakeAt = now.Add(p.grid.Engine.Tick())
		} else {
			p.loadWakeAt = st.until
		}
	}
	if p.obsPasses != nil {
		p.obsPasses.Inc()
		p.obsMatches.Add(int64(matched))
		p.obsPassSeconds.Observe(time.Since(t0).Seconds()) //lint:walltime telemetry: real pass latency for operator metrics, never read back into sim state
	}
}

// freeStats summarizes one pre-pass walk of the free machines: how many
// offers the pass holds, and when their advertised loads next change —
// the earliest piecewise segment boundary (until), or "unknowable
// analytically" (opaque) when any free machine's load is not piecewise.
type freeStats struct {
	avail  int
	opaque bool
	until  time.Time
}

func (st *freeStats) observe(until time.Time, piecewise bool) {
	st.avail++
	if !piecewise {
		st.opaque = true
		return
	}
	if !until.IsZero() && (st.until.IsZero() || until.Before(st.until)) {
		st.until = until
	}
}

func (st *freeStats) merge(o freeStats) {
	st.opaque = st.opaque || o.opaque
	if !o.until.IsZero() && (st.until.IsZero() || o.until.Before(st.until)) {
		st.until = o.until
	}
}

// refreshFreeLocked prepares the pool's free machines for one negotiation
// pass: queued cross-pool releases fold back in, machines whose caller ad
// mutated resync, each machine's LoadAvg is written into its match ad
// exactly once, and machines occupied by externally placed tasks (the
// pool's free set only tracks its own placements) are excluded for this
// pass.
func (p *Pool) refreshFreeLocked(now time.Time) freeStats {
	p.pickGen++ // new pass: constant-rank pick cursors rebuild lazily
	var st freeStats
	p.visitFreeLocked(func(m *machine) {
		if m.node.TaskCount() > 0 {
			m.skipFor = p
			return
		}
		m.skipFor = nil
		v, until, piecewise := m.node.LoadSegment(now)
		m.setLoadAvg(v)
		st.observe(until, piecewise)
	})
	return st
}

// setLoadAvg writes the machine's current load into its match ad, skipping
// the ad mutation (a map write plus a version bump) when the value hasn't
// changed since the last pass — the overwhelmingly common case for idle and
// piecewise-constant machines at scale.
func (m *machine) setLoadAvg(v float64) {
	if m.loadAvgSet && m.loadAvg == v {
		return
	}
	m.matchAd.Set("LoadAvg", v)
	m.loadAvg, m.loadAvgSet = v, true
}

// snapshotFreeFor lists this pool's free machines for a flocking peer's
// negotiation pass, refreshing each match ad's LoadAvg under this pool's
// lock. The caller supplies (and re-owns) the scratch buffer. Safe against
// deadlock: cross-pool calls happen only on the engine goroutine, where
// ticks are serialized.
func (p *Pool) snapshotFreeFor(now time.Time, buf []*machine) ([]*machine, freeStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var st freeStats
	if p.down {
		return buf, st
	}
	p.visitFreeLocked(func(m *machine) {
		if m.node.TaskCount() > 0 {
			return
		}
		m.skipFor = nil
		v, until, piecewise := m.node.LoadSegment(now)
		m.setLoadAvg(v)
		st.observe(until, piecewise)
		buf = append(buf, m)
	})
	return buf, st
}

// visitFreeLocked is the single pre-pass walk both negotiation views
// share: queued cross-pool releases fold in, machines whose caller ad
// mutated resync (possibly moving buckets, hence the deferral past the
// iteration), and visit runs once per free machine.
func (p *Pool) visitFreeLocked(visit func(*machine)) {
	p.drainReleasesLocked()
	var stale []*machine
	for _, b := range p.freeBuckets {
		for _, m := range b {
			if m.ad.Version() != m.adVersion {
				stale = append(stale, m)
				continue
			}
			visit(m)
		}
	}
	for _, m := range stale {
		p.resyncMachineLocked(m)
		visit(m)
	}
}

// pickBucket is one arch bucket's per-pass pick state for constant-rank
// jobs: the bucket's free machines in node-name order with a cursor that
// permanently skips machines claimed (or pass-excluded) earlier in the
// same pass. Rebuilt lazily once per pass per bucket.
type pickBucket struct {
	gen    uint64
	sorted []*machine
	cur    int
}

// pickIndexedLocked returns j's best matching local machine. Jobs whose
// Requirements pin Arch scan only that bucket (plus machines with
// non-literal Arch); unconstrained jobs scan every bucket. The winner is
// the highest job-Rank match, ties broken by machine name, a total order
// that makes the result independent of bucket iteration order.
func (p *Pool) pickIndexedLocked(j *job) *machine {
	if j.reqArch != "" {
		best, bestRank := p.pickFromBucketLocked(j, j.reqArch, nil, 0)
		best, _ = p.pickFromBucketLocked(j, dynamicBucket, best, bestRank)
		return best
	}
	var best *machine
	bestRank := 0.0
	for key := range p.freeBuckets {
		best, bestRank = p.pickFromBucketLocked(j, key, best, bestRank)
	}
	return best
}

// sortedPickThreshold is the free-bucket size above which constant-rank
// picks switch from the full best-rank scan to the per-pass name-sorted
// cursor. Small buckets (the steady state: a completion frees one
// machine) scan directly — building the sorted view would cost more.
const sortedPickThreshold = 16

// pickFromBucketLocked folds one free bucket into the running
// (best, bestRank) pair. For jobs whose Rank is constant the winner
// under the pinned total order (rank, then machine name) is simply the
// first acceptable machine in name order, so large buckets are consumed
// through a per-pass sorted cursor with early exit instead of scoring
// every free machine: the deep-backlog fill drops from
// O(jobs x free machines) matches to O(jobs) without changing a single
// placement. Target-dependent ranks keep the exhaustive scan.
func (p *Pool) pickFromBucketLocked(j *job, key string, best *machine, bestRank float64) (*machine, float64) {
	b := p.freeBuckets[key]
	if len(b) <= sortedPickThreshold || !j.matcher.ConstantRank() {
		return p.bestCandidate(j, b, best, bestRank)
	}
	pb := p.pickSorted[key]
	if pb == nil {
		if p.pickSorted == nil {
			p.pickSorted = make(map[string]*pickBucket)
		}
		pb = &pickBucket{}
		p.pickSorted[key] = pb
	}
	if pb.gen != p.pickGen {
		pb.gen = p.pickGen
		pb.sorted = append(pb.sorted[:0], b...)
		sort.Slice(pb.sorted, func(a, c int) bool {
			return pb.sorted[a].node.Name < pb.sorted[c].node.Name
		})
		pb.cur = 0
	}
	for i := pb.cur; i < len(pb.sorted); i++ {
		m := pb.sorted[i]
		if m.freeIdx < 0 || m.skipFor == p {
			// Claimed earlier in this pass, or excluded for the whole
			// pass: gone for good — compact the cursor past a leading run.
			if i == pb.cur {
				pb.cur++
			}
			continue
		}
		if j.reqOpSys != "" && m.opsKnown && m.opsKey != j.reqOpSys {
			continue // rejected for this job only; later jobs may differ
		}
		if !j.matcher.Match(m.matcher) {
			continue
		}
		// First acceptable machine in name order: no later machine in
		// this bucket can beat it, so fold against the other buckets'
		// carry and stop.
		r := j.matcher.Rank(m.matcher)
		if best == nil || r > bestRank || (r == bestRank && m.node.Name < best.node.Name) {
			return m, r
		}
		return best, bestRank
	}
	return best, bestRank
}

// bestCandidate scans cands for j's best match, carrying the running
// (best, bestRank) pair. Static Arch/OpSys filters prune candidates
// before the ClassAd match evaluates.
func (p *Pool) bestCandidate(j *job, cands []*machine, best *machine, bestRank float64) (*machine, float64) {
	for _, m := range cands {
		if m.skipFor == p {
			continue
		}
		if j.reqArch != "" && m.archKey != j.reqArch && m.archKey != dynamicBucket {
			continue
		}
		if j.reqOpSys != "" && m.opsKnown && m.opsKey != j.reqOpSys {
			continue
		}
		if !j.matcher.Match(m.matcher) {
			continue
		}
		r := j.matcher.Rank(m.matcher)
		if best == nil || r > bestRank || (r == bestRank && m.node.Name < best.node.Name) {
			best, bestRank = m, r
		}
	}
	return best, bestRank
}

// addFreeLocked inserts m into its arch bucket; the owner's lock is held.
// A machine whose caller ad mutated while it was claimed resyncs here so
// it re-enters under its current Arch key.
func (p *Pool) addFreeLocked(m *machine) {
	if m.freeIdx >= 0 {
		return
	}
	if m.ad.Version() != m.adVersion {
		m.snapshotAd()
	}
	b := p.freeBuckets[m.archKey]
	m.freeIdx = len(b)
	p.freeBuckets[m.archKey] = append(b, m)
}

// removeFreeLocked swap-removes m from its arch bucket.
func (p *Pool) removeFreeLocked(m *machine) {
	if m.freeIdx < 0 {
		return
	}
	b := p.freeBuckets[m.archKey]
	last := len(b) - 1
	moved := b[last]
	b[m.freeIdx] = moved
	moved.freeIdx = m.freeIdx
	b[last] = nil
	p.freeBuckets[m.archKey] = b[:last]
	m.freeIdx = -1
}

// claimMachineLocked removes m from its owner's free set when a job starts on
// it. The caller holds p.mu; a flocked machine's owner is locked briefly,
// which cannot deadlock because all cross-pool negotiation runs on the
// single engine goroutine.
func (p *Pool) claimMachineLocked(m *machine) {
	if m.owner == p {
		p.removeFreeLocked(m)
		return
	}
	m.owner.mu.Lock()
	m.owner.removeFreeLocked(m)
	m.owner.mu.Unlock()
}

// releaseClaimLocked returns j's claimed machine (if any) to its owner's
// free set — the completion/removal half of the incremental free-set
// maintenance. A foreign (flocked-onto) machine is enqueued on its
// owner's leaf-locked release queue rather than locked directly: this
// path runs from API goroutines (Remove, fault teardown) already holding
// this pool's lock, and taking another pool's main lock here would
// invert the engine's negotiation lock order.
func (p *Pool) releaseClaimLocked(j *job) {
	m := j.claimed
	if m == nil {
		return
	}
	j.claimed = nil
	if m.owner == p {
		p.addFreeLocked(m)
		// A machine freed is the negotiator's signal to run again; pools
		// flocking into this one read the same free set, so they wake too.
		p.requestWake()
		p.wakeFlockedFrom()
		return
	}
	o := m.owner
	o.relMu.Lock()
	o.pendingRel = append(o.pendingRel, m)
	o.relMu.Unlock()
	// Wake the owner so the queued release folds back into its free set
	// even if it has nothing else scheduled.
	o.requestWake()
	o.wakeFlockedFrom()
}

// drainReleasesLocked folds queued foreign releases into the free
// buckets. Called wherever the buckets are about to be read — tick
// start, pass refresh, peer snapshot — so the indexed view never lags
// the physical machine state a full rescan would observe.
func (p *Pool) drainReleasesLocked() {
	p.relMu.Lock()
	for _, m := range p.pendingRel {
		p.addFreeLocked(m)
	}
	p.pendingRel = p.pendingRel[:0]
	p.relMu.Unlock()
}

// --- reference negotiator --------------------------------------------------
//
// The seed's negotiation path, kept as the behavioral specification for
// the indexed implementation: a full free-machine rescan per tick and a
// fresh ad clone per (job, machine) candidate. The golden-parity test
// (TestNegotiationParity) replays seeded workloads through both paths and
// requires identical job→machine assignments and timings.

func (p *Pool) negotiateReferenceLocked(now time.Time) {
	idle := p.idleOrderedLocked()
	if len(idle) == 0 {
		return
	}
	free := p.scanFreeRefLocked()
	var peerFree []*machine
	if p.flockPeer != nil {
		peerFree = p.flockPeer.freeMachinesRef()
	}
	for _, j := range idle {
		m := pickMachineReference(j.ad, free, now)
		if m == nil && len(peerFree) > 0 {
			m = pickMachineReference(j.ad, peerFree, now)
			peerFree = removeMachine(peerFree, m)
		} else {
			free = removeMachine(free, m)
		}
		if m == nil {
			continue
		}
		p.startLocked(j, m, now)
	}
}

// scanFreeRefLocked lists machines with no running task by scanning the
// full machine list — the seed's per-tick behavior.
func (p *Pool) scanFreeRefLocked() []*machine {
	var out []*machine
	for _, m := range p.machines {
		if len(m.node.Tasks()) == 0 {
			out = append(out, m)
		}
	}
	return out
}

func (p *Pool) freeMachinesRef() []*machine {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return nil
	}
	return p.scanFreeRefLocked()
}

// pickMachineReference returns the matching machine with the highest job
// Rank, breaking ties by machine name for determinism — cloning each
// candidate's ad to overlay LoadAvg, as the seed did.
func pickMachineReference(jobAd *classad.Ad, machines []*machine, now time.Time) *machine {
	var best *machine
	bestRank := 0.0
	for _, m := range machines {
		ad := m.ad.Clone()
		ad.Set("LoadAvg", m.node.LoadAt(now))
		if !classad.Match(jobAd, ad) {
			continue
		}
		r := classad.Rank(jobAd, ad)
		if best == nil || r > bestRank || (r == bestRank && m.node.Name < best.node.Name) {
			best, bestRank = m, r
		}
	}
	return best
}

func removeMachine(ms []*machine, m *machine) []*machine {
	if m == nil {
		return ms
	}
	for i, x := range ms {
		if x == m {
			return append(ms[:i], ms[i+1:]...)
		}
	}
	return ms
}

// startLocked launches job j on machine m, claiming the machine in its
// owner's free set for as long as the task occupies the node.
func (p *Pool) startLocked(j *job, m *machine, now time.Time) {
	need := j.ad.Float(AttrCpuSeconds, 0) - j.cpuBase
	if need <= 0 {
		// Checkpoint covered all remaining work; complete immediately. No
		// machine time was consumed, so this is not an allocation for the
		// starvation guard — but the offer is spent for this pass, as it
		// was under the per-pass candidate list.
		m.skipFor = p
		j.startTime = now
		j.completionTime = now
		p.setStatusLocked(j, StatusCompleted)
		p.produceOutputLocked(j)
		return
	}
	if p.fairStart != nil {
		p.fairStart.ObserveStart(j.owner, now)
	}
	p.claimMachineLocked(m)
	j.claimed = m
	// The claim is released the moment the task completes (the node drops
	// finished tasks immediately), not at the next harvest — so the free
	// set always mirrors the physical machine state a full rescan would
	// observe, including for flocking peers that negotiate between this
	// pool's harvests. The callback fires lock-free on the engine
	// goroutine; job status still transitions at harvest time, driven by
	// the doneQ entry the callback leaves behind.
	j.task = simgrid.NewTask(p.Name+"-"+strconv.Itoa(j.id), need, func(*simgrid.Task) {
		p.mu.Lock()
		p.releaseClaimLocked(j)
		p.doneQ = append(p.doneQ, j)
		p.mu.Unlock()
		// Completion deadline fired: harvest at this boundary if the
		// pool's turn is still ahead, otherwise at the next one — the
		// same tick the legacy per-tick harvest would have seen it.
		p.requestWake()
	})
	j.node = m.node
	m.node.Place(j.task)
	if j.startTime.IsZero() {
		j.startTime = now
	}
	p.openUsageLocked(j, m)
	p.setStatusLocked(j, StatusRunning)
}

// openUsageLocked decides how a starting job's fair-share usage will be
// accounted: through a lazily-accrued flow when the sink supports flows
// and the machine's execution rate is analytically constant (sole
// occupant, constant-forever load segment, no fault injection), or by
// eager per-tick supervision otherwise.
func (p *Pool) openUsageLocked(j *job, m *machine) {
	j.supervised = false
	if p.fairFlow != nil && j.failAfter <= 0 {
		if rate, ok := p.flowRateFor(m.node); ok {
			j.flow = p.fairFlow.OpenFlow(j.owner, m.node.Site, rate)
			j.flowRate = rate
			j.flowNode = m.node
			p.nodeJob[m.node] = j
			return
		}
	}
	if j.failAfter > 0 || p.fairSink != nil {
		j.supervised = true
	}
}

// flowRateFor returns the node's analytic execution rate — (1-load) ×
// Mips while the sole task runs under a constant-forever load segment —
// or ok=false when no constant rate exists and the job must be
// supervised eagerly.
func (p *Pool) flowRateFor(node *simgrid.Node) (float64, bool) {
	v, until, piecewise := node.LoadSegment(p.grid.Engine.Now())
	if !piecewise || !until.IsZero() || node.TaskCount() != 1 {
		return 0, false
	}
	rate := (1 - v) * node.Mips
	if rate < 0 {
		rate = 0
	}
	return rate, true
}

// closeFlowLocked settles and closes a job's usage flow against its
// measured CPU-seconds, switching the job back to exact bookkeeping.
func (p *Pool) closeFlowLocked(j *job) {
	cpu := p.cpuSecondsLocked(j) - j.cpuBase
	if cpu < 0 {
		cpu = 0
	}
	j.flow.Close(cpu)
	j.flow = nil
	j.usageRecorded = cpu
	if j.flowNode != nil && p.nodeJob[j.flowNode] == j {
		delete(p.nodeJob, j.flowNode)
	}
	j.flowNode = nil
}

// detachLocked removes the job's task from its node, if any, and releases
// its machine claim.
func (p *Pool) detachLocked(j *job) {
	if j.task != nil {
		j.task.Kill()
		if j.node != nil {
			j.node.Remove(j.task)
		}
	}
	p.releaseClaimLocked(j)
}

// cpuSecondsLocked returns checkpoint base plus live task CPU.
func (p *Pool) cpuSecondsLocked(j *job) float64 {
	cpu := j.cpuBase
	if j.task != nil {
		cpu += j.task.CPUSeconds()
	}
	return cpu
}

// accrueUsageLocked reports the job's locally-executed CPU-seconds to
// the fair-share sink incrementally, attributed to the site whose
// machine ran them — a flocked job charges the peer's site, not this
// pool's. Checkpointed work carried in from another site is excluded;
// that site already accounted for it.
func (p *Pool) accrueUsageLocked(j *job) {
	if p.fairSink == nil || j.flow != nil {
		return // flow jobs accrue lazily inside the sink
	}
	cpu := p.cpuSecondsLocked(j) - j.cpuBase
	if delta := cpu - j.usageRecorded; delta > 0 {
		site := p.site.Name
		if j.node != nil {
			site = j.node.Site
		}
		p.fairSink.RecordUsage(j.owner, site, delta)
		j.usageRecorded = cpu
	}
}

// setStatusLocked applies a state change, maintains the queue summary
// counters the wake-up policy reads, and notifies listeners. Jobs
// reaching a terminal state settle any CPU not yet accounted — closing
// their usage flow with the measured total, or accruing the eager
// remainder.
func (p *Pool) setStatusLocked(j *job, to Status) {
	from := j.status
	j.status = to
	if from == StatusIdle && to != StatusIdle {
		p.idleCount--
		p.dequeueIdleLocked(j)
	}
	if j.supervised {
		if from == StatusRunning && to != StatusRunning {
			p.superviseCount--
		} else if from != StatusRunning && to == StatusRunning {
			p.superviseCount++
		}
	}
	if to.Terminal() {
		p.liveCount--
		if j.flow != nil {
			p.closeFlowLocked(j)
		} else {
			p.accrueUsageLocked(j)
		}
		j.supervised = false
	}
	p.emitLocked(j, from, to)
}

func (p *Pool) emitLocked(j *job, from, to Status) {
	if len(p.listeners) == 0 {
		return
	}
	ev := Event{Pool: p.Name, JobID: j.id, From: from, To: to, At: p.grid.Engine.Now()}
	for _, fn := range p.listeners {
		fn(ev)
	}
}

// idlePositionsLocked maps idle job IDs to their 1-based place in
// negotiation order. Bulk snapshotters compute it once so a whole-queue
// listing costs one ordering pass instead of one per job.
func (p *Pool) idlePositionsLocked() map[int]int {
	return positionsOf(p.idleOrderedLocked())
}

func positionsOf(ordered []*job) map[int]int {
	pos := make(map[int]int, len(ordered))
	for i, j := range ordered {
		pos[j.id] = i + 1
	}
	return pos
}

// snapshotLocked builds the JobInfo view of a single job, paying for an
// ordering pass only when the job is idle.
func (p *Pool) snapshotLocked(j *job) JobInfo {
	var pos map[int]int
	if j.status == StatusIdle {
		pos = p.idlePositionsLocked()
	}
	return p.snapshotPosLocked(j, pos)
}

// snapshotPosLocked builds the JobInfo view using precomputed idle
// positions.
func (p *Pool) snapshotPosLocked(j *job, pos map[int]int) JobInfo {
	now := p.grid.Engine.Now()
	info := JobInfo{
		ID:               j.id,
		Pool:             p.Name,
		Status:           j.status,
		Owner:            j.owner,
		Cmd:              j.ad.Str(AttrCmd, ""),
		Priority:         j.priority,
		Env:              j.ad.Str(AttrEnv, ""),
		SubmitTime:       j.submitTime,
		StartTime:        j.startTime,
		CompletionTime:   j.completionTime,
		EstimatedRuntime: j.ad.Float(AttrEstimate, 0),
		InputMB:          j.ad.Float(AttrInputMB, 0),
		OutputMB:         j.ad.Float(AttrOutputMB, 0),
		CPUSeconds:       p.cpuSecondsLocked(j),
	}
	if j.node != nil {
		info.Node = j.node.Name
	}
	need := j.ad.Float(AttrCpuSeconds, 0)
	if need > 0 {
		info.Progress = info.CPUSeconds / need
		if info.Progress > 1 {
			info.Progress = 1
		}
	}
	if j.task != nil {
		info.WallClock = j.task.WallClock()
	}
	if j.cpuBase > 0 {
		// Wall-clock carried from before the checkpointed migration is the
		// base CPU at Mips 1.
		info.WallClock += time.Duration(j.cpuBase * float64(time.Second))
	}
	end := now
	if !j.completionTime.IsZero() {
		end = j.completionTime
	}
	info.Elapsed = end.Sub(j.submitTime)
	if info.EstimatedRuntime > 0 {
		rem := info.EstimatedRuntime - info.WallClock.Seconds()
		if rem < 0 {
			rem = 0
		}
		info.RemainingEstimate = rem
	}
	if j.status == StatusIdle {
		info.QueuePosition = pos[j.id]
	}
	return info
}

// ParseEnv splits the AttrEnv convention "K=V;K2=V2" into a map.
func ParseEnv(env string) map[string]string {
	out := make(map[string]string)
	for _, kv := range strings.Split(env, ";") {
		if kv == "" {
			continue
		}
		if i := strings.IndexByte(kv, '='); i > 0 {
			out[kv[:i]] = kv[i+1:]
		}
	}
	return out
}
