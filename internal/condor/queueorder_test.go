package condor

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/classad"
	"repro/internal/fairshare"
	"repro/internal/simgrid"
)

// The incremental negotiation stream (per-owner FIFO buckets merged by a
// cursor heap) must yield exactly the order the legacy full re-sort
// produces — under the fair-share KeyRanker (effective priority, the
// starvation guard's FIFO phase, static priority, submit time, id) and
// under the static policy (priority desc, id asc). The scenarios below
// churn the queue through every mutation that can stale an entry:
// submissions, matches, priority refiles, and starvation promotions.

func orderIDs(js []*job) []int {
	ids := make([]int, len(js))
	for i, j := range js {
		ids[i] = j.id
	}
	return ids
}

func checkOrderParity(t *testing.T, p *Pool, label string) {
	t.Helper()
	p.mu.Lock()
	now := p.grid.Engine.Now()
	stream := orderIDs(p.negotiationOrderLocked(now))
	legacy := orderIDs(p.idleOrderedLocked())
	p.mu.Unlock()
	if len(stream) != len(legacy) {
		t.Fatalf("%s: stream yields %d jobs, legacy sort %d\nstream: %v\nlegacy: %v",
			label, len(stream), len(legacy), stream, legacy)
	}
	for i := range stream {
		if stream[i] != legacy[i] {
			t.Fatalf("%s: order diverges at %d\nstream: %v\nlegacy: %v", label, i, stream, legacy)
		}
	}
}

func runOrderParityScenario(t *testing.T, seed int64, static bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := simgrid.NewGrid(time.Second, 1)
	g.Engine.SetDriver(simgrid.DriverEvent)
	site := g.AddSite("s")
	pool := NewPool("s", g, site)
	// Few machines, many jobs: a deep backlog keeps a large idle queue
	// alive across many negotiation passes.
	for i := 0; i < 3; i++ {
		pool.AddMachine(site.AddNode(g.Engine, fmt.Sprintf("n%d", i), 1, simgrid.ConstantLoad(0.25)), nil)
	}
	if !static {
		mgr := fairshare.NewManager(fairshare.Config{
			Clock:            g.Engine.Clock(),
			HalfLife:         time.Minute,
			StarvationWindow: 40 * time.Second, // small: force phase-a promotions
		})
		pool.SetFairShare(mgr)
	}

	owners := []string{"alice", "bob", "carol", "dave", "erin"}
	var ids []int
	for i := 0; i < 80; i++ {
		at := time.Duration(rng.Intn(240)) * time.Second
		owner := owners[rng.Intn(len(owners))]
		prio := rng.Intn(4)
		cpu := float64(20 + rng.Intn(200))
		g.Engine.Schedule(at, func(time.Time) {
			ad := classad.New().Set(AttrOwner, owner).Set(AttrCpuSeconds, cpu).Set(AttrPriority, prio)
			id, err := pool.Submit(ad)
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			ids = append(ids, id)
		})
	}
	// Random priority churn re-files queue entries mid-life.
	for k := 0; k < 30; k++ {
		at := time.Duration(30+rng.Intn(300)) * time.Second
		newPrio := rng.Intn(5)
		pick := rng.Intn(80)
		g.Engine.Schedule(at, func(time.Time) {
			if pick < len(ids) {
				if err := pool.SetPriority(ids[pick], newPrio); err != nil {
					t.Errorf("setpriority: %v", err)
				}
			}
		})
	}
	for s := 10; s <= 400; s += 10 {
		s := s
		g.Engine.Schedule(time.Duration(s)*time.Second, func(time.Time) {
			checkOrderParity(t, pool, fmt.Sprintf("seed %d t=%ds", seed, s))
		})
	}
	g.Engine.RunFor(420 * time.Second)
	checkOrderParity(t, pool, fmt.Sprintf("seed %d final", seed))
}

func TestNegotiationOrderMatchesLegacySortFairShare(t *testing.T) {
	for _, seed := range []int64{1, 33, 512} {
		runOrderParityScenario(t, seed, false)
	}
}

func TestNegotiationOrderMatchesLegacySortStatic(t *testing.T) {
	for _, seed := range []int64{2, 99} {
		runOrderParityScenario(t, seed, true)
	}
}
