package loadgen

import (
	"context"

	"repro/internal/telemetry"
)

// ServerStats is the server-side view of a run, derived from the
// deployment's /metrics snapshot. The client-side percentiles in Result
// include the wire; these isolate where the server spent that time.
type ServerStats struct {
	// JournalFsyncP99Millis is the p99 of one journal flush's
	// write+fsync, in milliseconds (zero without a durable store).
	JournalFsyncP99Millis float64 `json:"journal_fsync_p99_ms"`
	// RPCP99Millis is the server-observed p99 latency per journaled RPC
	// method, in milliseconds.
	RPCP99Millis map[string]float64 `json:"rpc_p99_ms,omitempty"`
	// RPCRequests and RPCErrors total the server's journaled RPC path.
	RPCRequests float64 `json:"rpc_requests"`
	RPCErrors   float64 `json:"rpc_errors"`
	// IdemHits counts duplicate requests answered from the idempotency
	// window; IdemEvictions counts entries dropped from it (all causes).
	IdemHits      float64 `json:"idem_hits"`
	IdemEvictions float64 `json:"idem_evictions"`
}

// ServerStatsOf reduces a metrics snapshot to the report fields.
func ServerStatsOf(snap telemetry.Snapshot) *ServerStats {
	st := &ServerStats{
		RPCRequests:   snap.Total("rpc_requests_total"),
		RPCErrors:     snap.Total("rpc_errors_total"),
		IdemHits:      snap.Total("idem_hits_total"),
		IdemEvictions: snap.Total("idem_evictions_total"),
	}
	if m, ok := snap.Find("journal_fsync_seconds", ""); ok {
		st.JournalFsyncP99Millis = m.P99 * 1000
	}
	for _, m := range snap.Family("rpc_latency_seconds") {
		if st.RPCP99Millis == nil {
			st.RPCP99Millis = make(map[string]float64)
		}
		st.RPCP99Millis[m.Label] = m.P99 * 1000
	}
	return st
}

// ScrapeServerStats fetches baseURL's /metrics and reduces it. Use this
// for wire-mode runs; embedded runs read the registry directly via
// ServerStatsOf.
func ScrapeServerStats(ctx context.Context, baseURL string) (*ServerStats, error) {
	snap, err := telemetry.Scrape(ctx, baseURL)
	if err != nil {
		return nil, err
	}
	return ServerStatsOf(snap), nil
}
