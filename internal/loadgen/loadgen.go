// Package loadgen is the closed-loop load-generation harness for a GAE
// deployment. It drives N concurrent clients through a mixed analysis
// workload — plan submission, plan/steering monitoring, priority
// steering, session-state reads and writes, and grid-weather queries —
// and reports throughput plus latency percentiles.
//
// The harness is transport-agnostic: each worker gets its client from a
// Dialer, so the same workload measures the in-process local transport
// (core.GAE.Client) and the Clarens XML-RPC wire (gae.Dial). Closed loop
// means every worker issues its next operation only after the previous
// one returns, so reported RPS is the service rate at concurrency
// Config.Clients, not an open-loop arrival rate.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/pkg/gae"
)

// Dialer yields the client a worker uses for its whole run. It is called
// once per worker with the worker's index.
type Dialer func(ctx context.Context, worker int) (*gae.Client, error)

// Config sizes a load-generation run.
type Config struct {
	// Clients is the number of concurrent closed-loop workers (default 1).
	Clients int
	// Ops is the number of operations each worker issues (default 1).
	Ops int
	// Seed makes the per-worker operation mix reproducible.
	Seed int64
	// Prefix namespaces the plan names and state keys the run creates
	// (default "load") so repeated runs against one deployment — or one
	// durable data directory — never collide.
	Prefix string
}

// Result is the outcome of one run.
type Result struct {
	Clients int `json:"clients"`
	// Ops counts completed operations, successful or not.
	Ops    int `json:"ops"`
	Errors int `json:"errors"`
	// ByOp counts operations per workload kind.
	ByOp map[string]int `json:"by_op,omitempty"`
	// ErrorsByOp counts failed operations per workload kind.
	ErrorsByOp map[string]int `json:"errors_by_op,omitempty"`
	// Retries sums the clients' transport-level re-attempts (zero unless
	// the dialer enabled a retry policy).
	Retries        int64   `json:"retries"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// RPS is Ops / ElapsedSeconds across all workers.
	RPS float64 `json:"rps"`
	// Latency percentiles over individual operations, in milliseconds.
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
	// Server holds the server-side view from the deployment's /metrics
	// (nil when the target exposes none).
	Server *ServerStats `json:"server,omitempty"`
}

// sample is one timed operation.
type sample struct {
	op  string
	d   time.Duration
	err error
}

// Run executes the workload and aggregates the measurements. Dial
// failures abort the run; operation failures are counted in
// Result.Errors and the run continues.
func Run(ctx context.Context, cfg Config, dial Dialer) (Result, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 1
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "load"
	}

	perWorker := make([][]sample, cfg.Clients)
	clients := make([]*gae.Client, cfg.Clients)
	dialErrs := make([]error, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, err := dial(ctx, w)
			if err != nil {
				dialErrs[w] = fmt.Errorf("loadgen: worker %d dial: %w", w, err)
				return
			}
			clients[w] = client
			perWorker[w] = runWorker(ctx, cfg, client, w)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range dialErrs {
		if err != nil {
			return Result{}, err
		}
	}

	res := Result{
		Clients:        cfg.Clients,
		ByOp:           make(map[string]int),
		ErrorsByOp:     make(map[string]int),
		ElapsedSeconds: elapsed.Seconds(),
	}
	var lat []time.Duration
	for _, samples := range perWorker {
		for _, s := range samples {
			res.Ops++
			res.ByOp[s.op]++
			if s.err != nil {
				res.Errors++
				res.ErrorsByOp[s.op]++
			}
			lat = append(lat, s.d)
		}
	}
	for _, c := range clients {
		if c != nil {
			res.Retries += c.TransportStats().Retries
		}
	}
	if elapsed > 0 {
		res.RPS = float64(res.Ops) / elapsed.Seconds()
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.P50Millis = percentileMillis(lat, 0.50)
	res.P95Millis = percentileMillis(lat, 0.95)
	res.P99Millis = percentileMillis(lat, 0.99)
	return res, nil
}

// percentileMillis reads the q-th percentile from sorted latencies using
// the nearest-rank method.
func percentileMillis(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

// runWorker is one closed-loop client: a weighted mix of the operations
// an interactive analysis session performs. Plans are submitted with
// multi-hour tasks so monitoring and steering targets stay alive for the
// whole run.
func runWorker(ctx context.Context, cfg Config, client *gae.Client, w int) []sample {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
	samples := make([]sample, 0, cfg.Ops)
	var (
		lastPlan  string
		submitted int
		keysSet   []string
	)
	timed := func(op string, call func() error) {
		t0 := time.Now()
		err := call()
		samples = append(samples, sample{op: op, d: time.Since(t0), err: err})
	}
	// Every worker opens with a submission so monitor/steer ops have a
	// target from the first dice roll.
	submit := func() {
		name := fmt.Sprintf("%s-w%d-%d", cfg.Prefix, w, submitted)
		submitted++
		spec := gae.PlanSpec{
			Name: name,
			Tasks: []gae.TaskSpec{{
				ID:         "t0",
				CPUSeconds: 3600 + rng.Float64()*3600,
				Queue:      "batch",
				Nodes:      1,
				ReqHours:   2,
			}},
		}
		timed("submit", func() error {
			_, err := client.Submit(ctx, spec)
			if err == nil {
				lastPlan = name
			}
			return err
		})
	}
	submit()
	for len(samples) < cfg.Ops {
		switch p := rng.Float64(); {
		case p < 0.10:
			submit()
		case p < 0.30:
			timed("plan", func() error {
				_, err := client.Plan(ctx, lastPlan)
				return err
			})
		case p < 0.45:
			timed("taskstatus", func() error {
				_, err := client.TaskStatus(ctx, lastPlan, "t0")
				return err
			})
		case p < 0.55:
			timed("steer", func() error {
				return client.SetPriority(ctx, lastPlan, "t0", rng.Intn(10))
			})
		case p < 0.70:
			key := fmt.Sprintf("%s-w%d-k%d", cfg.Prefix, w, rng.Intn(8))
			timed("state-set", func() error {
				err := client.SetState(ctx, key, fmt.Sprintf("v%d", len(samples)))
				if err == nil {
					keysSet = append(keysSet, key)
				}
				return err
			})
		case p < 0.85:
			if len(keysSet) == 0 {
				timed("state-keys", func() error {
					_, err := client.StateKeys(ctx)
					return err
				})
				continue
			}
			key := keysSet[rng.Intn(len(keysSet))]
			timed("state-get", func() error {
				_, err := client.GetState(ctx, key)
				return err
			})
		case p < 0.95:
			timed("weather", func() error {
				_, err := client.Weather(ctx)
				return err
			})
		default:
			timed("sites", func() error {
				_, err := client.Sites(ctx)
				return err
			})
		}
	}
	return samples
}
