package loadgen

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/simgrid"
	"repro/pkg/gae"
)

func testDeployment() *core.GAE {
	return core.New(core.Config{
		Seed: 3,
		Sites: []core.SiteSpec{
			{Name: "siteA", Nodes: 2, Load: simgrid.IdleLoad(), CostPerCPUSecond: 0.05},
			{Name: "siteB", Nodes: 2, Load: simgrid.ConstantLoad(0.2), CostPerCPUSecond: 0.02},
		},
		Links: []core.LinkSpec{{A: "siteA", B: "siteB", MBps: 10, LatencyMS: 50}},
		Users: []core.UserSpec{{Name: "alice", Password: "pw", Credits: 1e9, Admin: true}},
	})
}

func TestRunMixedWorkload(t *testing.T) {
	g := testDeployment()
	res, err := Run(context.Background(), Config{Clients: 3, Ops: 40, Seed: 1},
		func(context.Context, int) (*gae.Client, error) { return g.Client("alice"), nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d of %d ops failed (%+v)", res.Errors, res.Ops, res.ByOp)
	}
	if res.Ops != 3*40 {
		t.Fatalf("Ops = %d, want %d", res.Ops, 3*40)
	}
	if res.Clients != 3 {
		t.Fatalf("Clients = %d, want 3", res.Clients)
	}
	if res.ByOp["submit"] == 0 {
		t.Fatal("workload issued no submissions")
	}
	if res.RPS <= 0 || res.ElapsedSeconds <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	if res.P50Millis > res.P95Millis || res.P95Millis > res.P99Millis {
		t.Fatalf("percentiles not monotone: p50=%v p95=%v p99=%v",
			res.P50Millis, res.P95Millis, res.P99Millis)
	}
	// The workload's plans really landed in the deployment.
	if _, ok := g.Plan("load-w0-0"); !ok {
		t.Fatal("worker 0's first plan not found in the deployment")
	}
}

func TestRunDialFailure(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(context.Background(), Config{Clients: 2, Ops: 4},
		func(_ context.Context, w int) (*gae.Client, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped dial error", err)
	}
}

func TestPercentileMillis(t *testing.T) {
	if got := percentileMillis(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
}
