// Package vtime provides the time abstraction used throughout the GAE
// reproduction. Services never call time.Now directly; they hold a Clock.
// Production deployments use the real clock, while experiments run on a
// deterministic simulated clock that can be advanced instantly, making the
// paper's multi-hundred-second scenarios (Figure 7) reproducible in
// milliseconds of wall time.
package vtime

import (
	"sort"
	"sync"
	"time"
)

// Clock is the minimal time interface required by GAE services.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks until the clock has advanced by d.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock time once the clock
	// has advanced by d.
	After(d time.Duration) <-chan time.Time
}

// Real returns a Clock backed by the system clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }    //lint:walltime realClock is the explicit wall-clock escape hatch; sim code injects SimClock
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }        //lint:walltime realClock is the explicit wall-clock escape hatch; sim code injects SimClock
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) } //lint:walltime realClock is the explicit wall-clock escape hatch; sim code injects SimClock

// SimClock is a deterministic simulated clock. Time advances only when
// Advance or Run is called. Goroutines blocked in Sleep/After are woken in
// timestamp order as the clock passes their deadline, which makes
// multi-goroutine simulations reproducible.
type SimClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*simWaiter
	// tickers registered via NewTicker, retained so Advance fires them.
	tickers []*SimTicker
}

type simWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewSimClock returns a SimClock starting at the given epoch. A zero epoch
// defaults to 2005-01-01T00:00:00Z, a nod to the paper's publication year
// and a stable base for golden outputs.
func NewSimClock(epoch time.Time) *SimClock {
	if epoch.IsZero() {
		epoch = time.Date(2005, time.January, 1, 0, 0, 0, 0, time.UTC)
	}
	return &SimClock{now: epoch}
}

// Now returns the current simulated time.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep blocks the calling goroutine until the simulated clock has been
// advanced by at least d. Sleeping for a non-positive duration returns
// immediately.
func (c *SimClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-c.After(d)
}

// After returns a channel that receives the simulated time when the clock
// reaches now+d. For non-positive d the channel is immediately ready.
func (c *SimClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, &simWaiter{deadline: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves simulated time forward by d, waking every sleeper whose
// deadline falls inside the advanced window in deadline order.
func (c *SimClock) Advance(d time.Duration) {
	if d < 0 {
		panic("vtime: negative advance")
	}
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		next, ok := c.earliestDeadlineLocked(target)
		if !ok {
			break
		}
		c.now = next
		c.fireDueLocked()
	}
	c.now = target
	c.fireDueLocked()
	c.mu.Unlock()
}

// AdvanceTo moves simulated time forward to the absolute instant t.
// It is a no-op if t is not after the current time.
func (c *SimClock) AdvanceTo(t time.Time) {
	now := c.Now()
	if t.After(now) {
		c.Advance(t.Sub(now))
	}
}

// earliestDeadlineLocked reports the earliest pending waiter or ticker
// deadline that is not after limit.
func (c *SimClock) earliestDeadlineLocked(limit time.Time) (time.Time, bool) {
	var best time.Time
	found := false
	consider := func(t time.Time) {
		if t.After(limit) || !t.After(c.now) {
			return
		}
		if !found || t.Before(best) {
			best, found = t, true
		}
	}
	for _, w := range c.waiters {
		consider(w.deadline)
	}
	for _, tk := range c.tickers {
		consider(tk.next)
	}
	return best, found
}

// fireDueLocked delivers to all waiters and tickers whose deadline has
// passed, in deadline order for determinism.
func (c *SimClock) fireDueLocked() {
	sort.SliceStable(c.waiters, func(i, j int) bool {
		return c.waiters[i].deadline.Before(c.waiters[j].deadline)
	})
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if w.deadline.After(c.now) {
			kept = append(kept, w)
			continue
		}
		w.ch <- c.now
	}
	c.waiters = kept
	for _, tk := range c.tickers {
		for !tk.stopped && !tk.next.After(c.now) {
			select {
			case tk.C <- tk.next:
			default: // ticker semantics: drop ticks nobody consumed
			}
			tk.next = tk.next.Add(tk.period)
		}
	}
}

// PendingWaiters reports how many goroutines are currently blocked on the
// clock. Tests use it to synchronize Advance with worker goroutines.
func (c *SimClock) PendingWaiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// SimTicker delivers ticks on simulated-clock advancement, mirroring
// time.Ticker semantics (missed ticks are dropped, not queued).
type SimTicker struct {
	C       chan time.Time
	clock   *SimClock
	period  time.Duration
	next    time.Time
	stopped bool
}

// NewTicker registers a ticker with period d on the simulated clock.
func (c *SimClock) NewTicker(d time.Duration) *SimTicker {
	if d <= 0 {
		panic("vtime: non-positive ticker period")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &SimTicker{
		C:      make(chan time.Time, 1),
		clock:  c,
		period: d,
		next:   c.now.Add(d),
	}
	c.tickers = append(c.tickers, t)
	return t
}

// Stop disables the ticker. Unlike time.Ticker it also removes the ticker
// from the clock so long simulations do not accumulate garbage.
func (t *SimTicker) Stop() {
	c := t.clock
	c.mu.Lock()
	defer c.mu.Unlock()
	t.stopped = true
	for i, tk := range c.tickers {
		if tk == t {
			c.tickers = append(c.tickers[:i], c.tickers[i+1:]...)
			break
		}
	}
}
