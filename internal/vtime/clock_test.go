package vtime

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockNow(t *testing.T) {
	c := Real()
	before := time.Now() //lint:walltime test exercises the real wall-clock escape hatch itself
	got := c.Now()
	after := time.Now() //lint:walltime test exercises the real wall-clock escape hatch itself
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real().Now() = %v, want within [%v, %v]", got, before, after)
	}
}

func TestRealClockAfter(t *testing.T) {
	c := Real()
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second): //lint:walltime real-time watchdog for a test of the real clock
		t.Fatal("Real().After(1ms) did not fire")
	}
}

func TestSimClockDefaultEpoch(t *testing.T) {
	c := NewSimClock(time.Time{})
	want := time.Date(2005, time.January, 1, 0, 0, 0, 0, time.UTC)
	if !c.Now().Equal(want) {
		t.Fatalf("default epoch = %v, want %v", c.Now(), want)
	}
}

func TestSimClockAdvance(t *testing.T) {
	epoch := time.Date(2020, 6, 1, 12, 0, 0, 0, time.UTC)
	c := NewSimClock(epoch)
	c.Advance(90 * time.Second)
	if got, want := c.Now(), epoch.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSimClockAdvanceTo(t *testing.T) {
	c := NewSimClock(time.Time{})
	target := c.Now().Add(5 * time.Minute)
	c.AdvanceTo(target)
	if !c.Now().Equal(target) {
		t.Fatalf("AdvanceTo: Now() = %v, want %v", c.Now(), target)
	}
	// Advancing to the past must be a no-op.
	c.AdvanceTo(target.Add(-time.Hour))
	if !c.Now().Equal(target) {
		t.Fatalf("AdvanceTo(past) moved clock to %v", c.Now())
	}
}

func TestSimClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewSimClock(time.Time{}).Advance(-1)
}

func TestSimClockAfterImmediate(t *testing.T) {
	c := NewSimClock(time.Time{})
	select {
	case got := <-c.After(0):
		if !got.Equal(c.Now()) {
			t.Fatalf("After(0) delivered %v, want %v", got, c.Now())
		}
	default:
		t.Fatal("After(0) not immediately ready")
	}
}

func TestSimClockAfterFiresAtDeadline(t *testing.T) {
	c := NewSimClock(time.Time{})
	ch := c.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before any advance")
	default:
	}
	c.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired one second early")
	default:
	}
	c.Advance(time.Second)
	select {
	case got := <-ch:
		if !got.Equal(c.Now()) {
			t.Fatalf("After delivered %v, want %v", got, c.Now())
		}
	default:
		t.Fatal("After did not fire at its deadline")
	}
}

func TestSimClockWakeOrderIsDeadlineOrder(t *testing.T) {
	c := NewSimClock(time.Time{})
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	durations := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	for i, d := range durations {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			<-c.After(d)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, d)
	}
	// Wait for all three goroutines to register.
	for c.PendingWaiters() != 3 {
		time.Sleep(time.Millisecond) //lint:walltime real sleep lets the woken goroutine run; sim state is unaffected
	}
	// Advance in small steps so each deadline is crossed separately; the
	// wake order must then be 1 (10s), 2 (20s), 0 (30s).
	for i := 0; i < 3; i++ {
		c.Advance(10 * time.Second)
		time.Sleep(5 * time.Millisecond) // let the woken goroutine record itself //lint:walltime real sleep lets the woken goroutine record itself; sim state is unaffected
	}
	wg.Wait()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestSimClockSleepNonPositive(t *testing.T) {
	c := NewSimClock(time.Time{})
	done := make(chan struct{})
	go func() {
		c.Sleep(0)
		c.Sleep(-time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second): //lint:walltime real-time watchdog so a missed wake fails instead of hanging
		t.Fatal("Sleep(<=0) blocked")
	}
}

func TestSimClockIntermediateWakeTimes(t *testing.T) {
	// A waiter woken mid-advance must observe its own deadline, not the
	// final target, so chained sleeps measure correct durations.
	c := NewSimClock(time.Time{})
	ch := c.After(10 * time.Second)
	c.Advance(time.Hour)
	got := <-ch
	want := time.Date(2005, 1, 1, 0, 0, 10, 0, time.UTC)
	if !got.Equal(want) {
		t.Fatalf("waiter observed %v, want its deadline %v", got, want)
	}
}

func TestSimTickerFiresEachPeriod(t *testing.T) {
	c := NewSimClock(time.Time{})
	tk := c.NewTicker(10 * time.Second)
	defer tk.Stop()
	for i := 1; i <= 3; i++ {
		c.Advance(10 * time.Second)
		select {
		case got := <-tk.C:
			want := time.Date(2005, 1, 1, 0, 0, 10*i, 0, time.UTC)
			if !got.Equal(want) {
				t.Fatalf("tick %d at %v, want %v", i, got, want)
			}
		default:
			t.Fatalf("tick %d missing", i)
		}
	}
}

func TestSimTickerDropsMissedTicks(t *testing.T) {
	c := NewSimClock(time.Time{})
	tk := c.NewTicker(time.Second)
	defer tk.Stop()
	c.Advance(10 * time.Second) // 10 ticks due, channel capacity 1
	n := 0
	for {
		select {
		case <-tk.C:
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("received %d buffered ticks, want 1 (missed ticks dropped)", n)
	}
}

func TestSimTickerStopRemoves(t *testing.T) {
	c := NewSimClock(time.Time{})
	tk := c.NewTicker(time.Second)
	tk.Stop()
	c.Advance(5 * time.Second)
	select {
	case <-tk.C:
		t.Fatal("stopped ticker delivered a tick")
	default:
	}
}

func TestSimTickerNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTicker(0) did not panic")
		}
	}()
	NewSimClock(time.Time{}).NewTicker(0)
}

func TestSimClockConcurrentAfter(t *testing.T) {
	c := NewSimClock(time.Time{})
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-c.After(time.Duration(i+1) * time.Second)
		}(i)
	}
	for c.PendingWaiters() != n {
		time.Sleep(time.Millisecond) //lint:walltime real sleep lets woken goroutines register; sim state is unaffected
	}
	c.Advance(time.Duration(n) * time.Second)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second): //lint:walltime real-time watchdog so a missed wake fails instead of hanging
		t.Fatalf("%d waiters still pending after advance", c.PendingWaiters())
	}
}

// --- Large-jump coverage -----------------------------------------------------
//
// The discrete-event engine advances the clock in arbitrarily large jumps
// (AdvanceTo straight to the next scheduled boundary), so a single
// Advance may cross many waiter deadlines and many ticker periods at
// once. These tests pin the contract that makes that safe: every waiter
// fires exactly once, stamped with its own deadline, in timestamp order.

func TestAfterWaitersUnderLargeAdvanceJump(t *testing.T) {
	c := NewSimClock(time.Time{})
	start := c.Now()
	delays := []time.Duration{
		7 * time.Second, 3 * time.Second, 3600 * time.Second, 59 * time.Second, 3 * time.Second,
	}
	chans := make([]<-chan time.Time, len(delays))
	for i, d := range delays {
		chans[i] = c.After(d)
	}
	// One advance crosses every deadline.
	c.Advance(2 * time.Hour)
	for i, ch := range chans {
		select {
		case got := <-ch:
			if want := start.Add(delays[i]); !got.Equal(want) {
				t.Errorf("waiter %d woke with timestamp %v, want its own deadline %v", i, got, want)
			}
		default:
			t.Fatalf("waiter %d did not fire after the jump", i)
		}
		// Exactly once: the channel must now be empty.
		select {
		case extra := <-ch:
			t.Fatalf("waiter %d fired twice (second value %v)", i, extra)
		default:
		}
	}
	if got := c.PendingWaiters(); got != 0 {
		t.Fatalf("%d waiters left registered after the jump", got)
	}
}

func TestWaitersAndTickersInterleavedAcrossJump(t *testing.T) {
	c := NewSimClock(time.Time{})
	start := c.Now()
	late := c.After(25 * time.Second)
	tk := c.NewTicker(10 * time.Second)
	defer tk.Stop()
	early := c.After(5 * time.Second)
	// One jump crosses the early waiter, two ticker periods, and the late
	// waiter. Each consumer observes its own deadline timestamp — proof
	// the clock visited the deadlines in order rather than stamping
	// everything with the jump target.
	c.Advance(60 * time.Second)
	if got := <-early; !got.Equal(start.Add(5 * time.Second)) {
		t.Fatalf("early waiter stamped %v, want +5s", got)
	}
	if got := <-late; !got.Equal(start.Add(25 * time.Second)) {
		t.Fatalf("late waiter stamped %v, want +25s", got)
	}
	if got := <-tk.C; !got.Equal(start.Add(10 * time.Second)) {
		t.Fatalf("ticker stamped %v, want +10s (its first period)", got)
	}
}

func TestTickerUnderLargeAdvanceJump(t *testing.T) {
	c := NewSimClock(time.Time{})
	start := c.Now()
	tk := c.NewTicker(10 * time.Second)
	defer tk.Stop()
	// Crossing many periods in one advance delivers the first tick (the
	// channel buffers one) and drops the rest — time.Ticker semantics —
	// while the ticker's schedule stays aligned to its period.
	c.Advance(95 * time.Second)
	select {
	case got := <-tk.C:
		if want := start.Add(10 * time.Second); !got.Equal(want) {
			t.Fatalf("first tick stamped %v, want %v", got, want)
		}
	default:
		t.Fatal("no tick delivered across the jump")
	}
	select {
	case extra := <-tk.C:
		t.Fatalf("queued more than one tick across the jump (%v)", extra)
	default:
	}
	// The next period lands on the grid (t=100s), not 95+10.
	c.Advance(5 * time.Second)
	select {
	case got := <-tk.C:
		if want := start.Add(100 * time.Second); !got.Equal(want) {
			t.Fatalf("post-jump tick stamped %v, want %v (period-aligned)", got, want)
		}
	default:
		t.Fatal("ticker missed its period-aligned tick after the jump")
	}
}

func TestTickerConsumedAcrossJumpSeesEachPeriodOnce(t *testing.T) {
	c := NewSimClock(time.Time{})
	start := c.Now()
	tk := c.NewTicker(time.Second)
	defer tk.Stop()
	var got []time.Time
	// Consuming between single-period advances must observe every period
	// exactly once, even when interleaved with one large jump.
	for i := 0; i < 3; i++ {
		c.Advance(time.Second)
		got = append(got, <-tk.C)
	}
	c.Advance(10 * time.Second) // jump: delivers t=4s, drops 5..13
	got = append(got, <-tk.C)
	c.Advance(time.Second)
	got = append(got, <-tk.C)
	want := []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second, 14 * time.Second}
	if len(got) != len(want) {
		t.Fatalf("got %d ticks, want %d", len(got), len(want))
	}
	for i := range want {
		if w := start.Add(want[i]); !got[i].Equal(w) {
			t.Fatalf("tick %d stamped %v, want %v", i, got[i], w)
		}
	}
}
