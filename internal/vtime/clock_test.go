package vtime

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockNow(t *testing.T) {
	c := Real()
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real().Now() = %v, want within [%v, %v]", got, before, after)
	}
}

func TestRealClockAfter(t *testing.T) {
	c := Real()
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("Real().After(1ms) did not fire")
	}
}

func TestSimClockDefaultEpoch(t *testing.T) {
	c := NewSimClock(time.Time{})
	want := time.Date(2005, time.January, 1, 0, 0, 0, 0, time.UTC)
	if !c.Now().Equal(want) {
		t.Fatalf("default epoch = %v, want %v", c.Now(), want)
	}
}

func TestSimClockAdvance(t *testing.T) {
	epoch := time.Date(2020, 6, 1, 12, 0, 0, 0, time.UTC)
	c := NewSimClock(epoch)
	c.Advance(90 * time.Second)
	if got, want := c.Now(), epoch.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSimClockAdvanceTo(t *testing.T) {
	c := NewSimClock(time.Time{})
	target := c.Now().Add(5 * time.Minute)
	c.AdvanceTo(target)
	if !c.Now().Equal(target) {
		t.Fatalf("AdvanceTo: Now() = %v, want %v", c.Now(), target)
	}
	// Advancing to the past must be a no-op.
	c.AdvanceTo(target.Add(-time.Hour))
	if !c.Now().Equal(target) {
		t.Fatalf("AdvanceTo(past) moved clock to %v", c.Now())
	}
}

func TestSimClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewSimClock(time.Time{}).Advance(-1)
}

func TestSimClockAfterImmediate(t *testing.T) {
	c := NewSimClock(time.Time{})
	select {
	case got := <-c.After(0):
		if !got.Equal(c.Now()) {
			t.Fatalf("After(0) delivered %v, want %v", got, c.Now())
		}
	default:
		t.Fatal("After(0) not immediately ready")
	}
}

func TestSimClockAfterFiresAtDeadline(t *testing.T) {
	c := NewSimClock(time.Time{})
	ch := c.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before any advance")
	default:
	}
	c.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired one second early")
	default:
	}
	c.Advance(time.Second)
	select {
	case got := <-ch:
		if !got.Equal(c.Now()) {
			t.Fatalf("After delivered %v, want %v", got, c.Now())
		}
	default:
		t.Fatal("After did not fire at its deadline")
	}
}

func TestSimClockWakeOrderIsDeadlineOrder(t *testing.T) {
	c := NewSimClock(time.Time{})
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	durations := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	for i, d := range durations {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			<-c.After(d)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, d)
	}
	// Wait for all three goroutines to register.
	for c.PendingWaiters() != 3 {
		time.Sleep(time.Millisecond)
	}
	// Advance in small steps so each deadline is crossed separately; the
	// wake order must then be 1 (10s), 2 (20s), 0 (30s).
	for i := 0; i < 3; i++ {
		c.Advance(10 * time.Second)
		time.Sleep(5 * time.Millisecond) // let the woken goroutine record itself
	}
	wg.Wait()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestSimClockSleepNonPositive(t *testing.T) {
	c := NewSimClock(time.Time{})
	done := make(chan struct{})
	go func() {
		c.Sleep(0)
		c.Sleep(-time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep(<=0) blocked")
	}
}

func TestSimClockIntermediateWakeTimes(t *testing.T) {
	// A waiter woken mid-advance must observe its own deadline, not the
	// final target, so chained sleeps measure correct durations.
	c := NewSimClock(time.Time{})
	ch := c.After(10 * time.Second)
	c.Advance(time.Hour)
	got := <-ch
	want := time.Date(2005, 1, 1, 0, 0, 10, 0, time.UTC)
	if !got.Equal(want) {
		t.Fatalf("waiter observed %v, want its deadline %v", got, want)
	}
}

func TestSimTickerFiresEachPeriod(t *testing.T) {
	c := NewSimClock(time.Time{})
	tk := c.NewTicker(10 * time.Second)
	defer tk.Stop()
	for i := 1; i <= 3; i++ {
		c.Advance(10 * time.Second)
		select {
		case got := <-tk.C:
			want := time.Date(2005, 1, 1, 0, 0, 10*i, 0, time.UTC)
			if !got.Equal(want) {
				t.Fatalf("tick %d at %v, want %v", i, got, want)
			}
		default:
			t.Fatalf("tick %d missing", i)
		}
	}
}

func TestSimTickerDropsMissedTicks(t *testing.T) {
	c := NewSimClock(time.Time{})
	tk := c.NewTicker(time.Second)
	defer tk.Stop()
	c.Advance(10 * time.Second) // 10 ticks due, channel capacity 1
	n := 0
	for {
		select {
		case <-tk.C:
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("received %d buffered ticks, want 1 (missed ticks dropped)", n)
	}
}

func TestSimTickerStopRemoves(t *testing.T) {
	c := NewSimClock(time.Time{})
	tk := c.NewTicker(time.Second)
	tk.Stop()
	c.Advance(5 * time.Second)
	select {
	case <-tk.C:
		t.Fatal("stopped ticker delivered a tick")
	default:
	}
}

func TestSimTickerNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTicker(0) did not panic")
		}
	}()
	NewSimClock(time.Time{}).NewTicker(0)
}

func TestSimClockConcurrentAfter(t *testing.T) {
	c := NewSimClock(time.Time{})
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-c.After(time.Duration(i+1) * time.Second)
		}(i)
	}
	for c.PendingWaiters() != n {
		time.Sleep(time.Millisecond)
	}
	c.Advance(time.Duration(n) * time.Second)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("%d waiters still pending after advance", c.PendingWaiters())
	}
}
