package xmlrpc

import (
	"bytes"
	"encoding/base64"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"
)

// iso8601 is the dateTime layout mandated by the XML-RPC specification.
// Note the absence of separators and timezone, per the original spec.
const iso8601 = "20060102T15:04:05"

// EncodeRequest serializes a method call with the given arguments.
func EncodeRequest(method string, args []any) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(`<?xml version="1.0" encoding="UTF-8"?>`)
	buf.WriteString("<methodCall><methodName>")
	escapeInto(&buf, method)
	buf.WriteString("</methodName><params>")
	for _, a := range args {
		buf.WriteString("<param>")
		if err := encodeValue(&buf, a); err != nil {
			return nil, fmt.Errorf("encoding request %q: %w", method, err)
		}
		buf.WriteString("</param>")
	}
	buf.WriteString("</params></methodCall>")
	return buf.Bytes(), nil
}

// EncodeResponse serializes a successful method response carrying result.
func EncodeResponse(result any) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(`<?xml version="1.0" encoding="UTF-8"?>`)
	buf.WriteString("<methodResponse><params><param>")
	if err := encodeValue(&buf, result); err != nil {
		return nil, fmt.Errorf("encoding response: %w", err)
	}
	buf.WriteString("</param></params></methodResponse>")
	return buf.Bytes(), nil
}

// EncodeFault serializes a fault response.
func EncodeFault(f *Fault) []byte {
	var buf bytes.Buffer
	buf.WriteString(`<?xml version="1.0" encoding="UTF-8"?>`)
	buf.WriteString("<methodResponse><fault>")
	// A fault struct has exactly two members; encode by hand so EncodeFault
	// cannot itself fail.
	buf.WriteString("<value><struct>")
	buf.WriteString("<member><name>faultCode</name><value><int>")
	buf.WriteString(strconv.Itoa(f.Code))
	buf.WriteString("</int></value></member>")
	buf.WriteString("<member><name>faultString</name><value><string>")
	escapeInto(&buf, f.Message)
	buf.WriteString("</string></value></member>")
	buf.WriteString("</struct></value>")
	buf.WriteString("</fault></methodResponse>")
	return buf.Bytes()
}

// encodeValue writes <value>...</value> for a single Go value.
func encodeValue(buf *bytes.Buffer, v any) error {
	buf.WriteString("<value>")
	if err := encodeInner(buf, v); err != nil {
		return err
	}
	buf.WriteString("</value>")
	return nil
}

func encodeInner(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case nil:
		buf.WriteString("<nil/>")
	case bool:
		if x {
			buf.WriteString("<boolean>1</boolean>")
		} else {
			buf.WriteString("<boolean>0</boolean>")
		}
	case int:
		return encodeInt(buf, int64(x))
	case int8:
		return encodeInt(buf, int64(x))
	case int16:
		return encodeInt(buf, int64(x))
	case int32:
		return encodeInt(buf, int64(x))
	case int64:
		return encodeInt(buf, x)
	case uint:
		return encodeInt(buf, int64(x))
	case uint8:
		return encodeInt(buf, int64(x))
	case uint16:
		return encodeInt(buf, int64(x))
	case uint32:
		return encodeInt(buf, int64(x))
	case float32:
		return encodeInner(buf, float64(x))
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w: non-finite double %v", ErrUnsupportedType, x)
		}
		buf.WriteString("<double>")
		buf.WriteString(strconv.FormatFloat(x, 'g', 17, 64))
		buf.WriteString("</double>")
	case string:
		buf.WriteString("<string>")
		escapeInto(buf, x)
		buf.WriteString("</string>")
	case time.Time:
		buf.WriteString("<dateTime.iso8601>")
		buf.WriteString(x.UTC().Format(iso8601))
		buf.WriteString("</dateTime.iso8601>")
	case []byte:
		buf.WriteString("<base64>")
		buf.WriteString(base64.StdEncoding.EncodeToString(x))
		buf.WriteString("</base64>")
	case []any:
		buf.WriteString("<array><data>")
		for _, e := range x {
			if err := encodeValue(buf, e); err != nil {
				return err
			}
		}
		buf.WriteString("</data></array>")
	case []string:
		arr := make([]any, len(x))
		for i, s := range x {
			arr[i] = s
		}
		return encodeInner(buf, arr)
	case []int:
		arr := make([]any, len(x))
		for i, n := range x {
			arr[i] = n
		}
		return encodeInner(buf, arr)
	case []float64:
		arr := make([]any, len(x))
		for i, f := range x {
			arr[i] = f
		}
		return encodeInner(buf, arr)
	case map[string]any:
		buf.WriteString("<struct>")
		// Deterministic member order keeps golden tests and hashes stable.
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			buf.WriteString("<member><name>")
			escapeInto(buf, k)
			buf.WriteString("</name>")
			if err := encodeValue(buf, x[k]); err != nil {
				return err
			}
			buf.WriteString("</member>")
		}
		buf.WriteString("</struct>")
	case map[string]string:
		m := make(map[string]any, len(x))
		for k, s := range x {
			m[k] = s
		}
		return encodeInner(buf, m)
	default:
		return fmt.Errorf("%w: %T", ErrUnsupportedType, v)
	}
	return nil
}

func encodeInt(buf *bytes.Buffer, x int64) error {
	if x > math.MaxInt32 || x < math.MinInt32 {
		return fmt.Errorf("%w: integer %d overflows XML-RPC i4", ErrUnsupportedType, x)
	}
	buf.WriteString("<int>")
	buf.WriteString(strconv.FormatInt(x, 10))
	buf.WriteString("</int>")
	return nil
}

// escapeInto writes s with the five XML predefined entities escaped.
// Carriage returns become character references: a literal CR in content
// would be folded to LF by the parser's line-ending normalization, while
// the reference survives the round trip.
func escapeInto(buf *bytes.Buffer, s string) {
	for _, r := range s {
		switch r {
		case '&':
			buf.WriteString("&amp;")
		case '<':
			buf.WriteString("&lt;")
		case '>':
			buf.WriteString("&gt;")
		case '\'':
			buf.WriteString("&apos;")
		case '"':
			buf.WriteString("&quot;")
		case '\r':
			buf.WriteString("&#13;")
		default:
			buf.WriteRune(r)
		}
	}
}
