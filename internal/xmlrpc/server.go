package xmlrpc

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Handler executes a single XML-RPC method. Args carry the decoded
// parameters; the returned value must be encodable (see package doc).
// Returning a *Fault propagates it verbatim; any other error becomes a
// FaultInternal with the error text.
type Handler func(ctx context.Context, args []any) (any, error)

// ServeMux dispatches XML-RPC method calls to registered handlers and
// implements http.Handler. Method names are conventionally
// "service.method" (e.g. "jobmon.status"), matching Clarens conventions.
type ServeMux struct {
	mu       sync.RWMutex
	handlers map[string]Handler

	// Intercept, if non-nil, wraps every dispatch. Clarens uses it to
	// enforce sessions and ACLs without teaching this package about
	// either concept.
	Intercept func(ctx context.Context, method string, args []any, next Handler) (any, error)
}

// NewServeMux returns an empty mux with the built-in system.listMethods
// introspection method registered.
func NewServeMux() *ServeMux {
	m := &ServeMux{handlers: make(map[string]Handler)}
	m.Handle("system.listMethods", func(context.Context, []any) (any, error) {
		return m.methodNames(), nil
	})
	return m
}

// Handle registers a handler for the given method name, replacing any
// existing registration.
func (m *ServeMux) Handle(method string, h Handler) {
	if method == "" || h == nil {
		panic("xmlrpc: Handle with empty method or nil handler")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[method] = h
}

// Unhandle removes a method registration if present.
func (m *ServeMux) Unhandle(method string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.handlers, method)
}

// methodNames returns all registered method names sorted, as []any for
// direct XML-RPC encoding.
func (m *ServeMux) methodNames() []any {
	m.mu.RLock()
	names := make([]string, 0, len(m.handlers))
	for k := range m.handlers {
		names = append(names, k)
	}
	m.mu.RUnlock()
	sort.Strings(names)
	out := make([]any, len(names))
	for i, n := range names {
		out[i] = n
	}
	return out
}

// Methods returns the registered method names, sorted.
func (m *ServeMux) Methods() []string {
	raw := m.methodNames()
	out := make([]string, len(raw))
	for i, v := range raw {
		out[i] = v.(string)
	}
	return out
}

// Dispatch runs one decoded request through the interceptor and handler.
func (m *ServeMux) Dispatch(ctx context.Context, method string, args []any) (any, error) {
	m.mu.RLock()
	h, ok := m.handlers[method]
	intercept := m.Intercept
	m.mu.RUnlock()
	if !ok {
		return nil, NewFault(FaultMethodNotFound, "no such method %q", method)
	}
	if intercept != nil {
		return intercept(ctx, method, args, h)
	}
	return h(ctx, args)
}

// ServeHTTP implements http.Handler: it decodes one method call from the
// request body, dispatches it, and writes the response or fault.
func (m *ServeMux) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "xmlrpc requires POST", http.StatusMethodNotAllowed)
		return
	}
	body := io.LimitReader(r.Body, MaxRequestBytes+1)
	req, err := DecodeRequest(body)
	if err != nil {
		writeFault(w, NewFault(FaultParse, "parse error: %v", err))
		return
	}
	result, err := m.Dispatch(r.Context(), req.Method, req.Args)
	if err != nil {
		writeFault(w, toFault(err))
		return
	}
	out, err := EncodeResponse(result)
	if err != nil {
		writeFault(w, NewFault(FaultInternal, "unencodable result: %v", err))
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Write(out)
}

func toFault(err error) *Fault {
	if f, ok := AsFault(err); ok {
		return f
	}
	return NewFault(FaultInternal, "%v", err)
}

func writeFault(w http.ResponseWriter, f *Fault) {
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	// Faults ride on HTTP 200 per the XML-RPC specification.
	w.Write(EncodeFault(f))
}

// Params provides positional, type-checked access to handler arguments.
// It converts between the numeric types XML-RPC can deliver, so handlers
// accept an int where a client sent a double and vice versa.
type Params []any

// Len returns the number of arguments.
func (p Params) Len() int { return len(p) }

// Want returns a FaultInvalidParams unless exactly n arguments are present.
func (p Params) Want(n int) error {
	if len(p) != n {
		return NewFault(FaultInvalidParams, "got %d arguments, want %d", len(p), n)
	}
	return nil
}

// WantAtLeast returns a FaultInvalidParams unless at least n arguments are
// present.
func (p Params) WantAtLeast(n int) error {
	if len(p) < n {
		return NewFault(FaultInvalidParams, "got %d arguments, want at least %d", len(p), n)
	}
	return nil
}

// String returns argument i as a string.
func (p Params) String(i int) (string, error) {
	if i >= len(p) {
		return "", NewFault(FaultInvalidParams, "missing argument %d", i)
	}
	s, ok := p[i].(string)
	if !ok {
		return "", NewFault(FaultInvalidParams, "argument %d is %T, want string", i, p[i])
	}
	return s, nil
}

// Int returns argument i as an int, accepting doubles with integral value.
func (p Params) Int(i int) (int, error) {
	if i >= len(p) {
		return 0, NewFault(FaultInvalidParams, "missing argument %d", i)
	}
	switch v := p[i].(type) {
	case int:
		return v, nil
	case float64:
		if v == float64(int(v)) {
			return int(v), nil
		}
	}
	return 0, NewFault(FaultInvalidParams, "argument %d is %T, want int", i, p[i])
}

// Float returns argument i as a float64, accepting ints.
func (p Params) Float(i int) (float64, error) {
	if i >= len(p) {
		return 0, NewFault(FaultInvalidParams, "missing argument %d", i)
	}
	switch v := p[i].(type) {
	case float64:
		return v, nil
	case int:
		return float64(v), nil
	}
	return 0, NewFault(FaultInvalidParams, "argument %d is %T, want double", i, p[i])
}

// Bool returns argument i as a bool.
func (p Params) Bool(i int) (bool, error) {
	if i >= len(p) {
		return false, NewFault(FaultInvalidParams, "missing argument %d", i)
	}
	b, ok := p[i].(bool)
	if !ok {
		return false, NewFault(FaultInvalidParams, "argument %d is %T, want boolean", i, p[i])
	}
	return b, nil
}

// Struct returns argument i as a map (XML-RPC struct).
func (p Params) Struct(i int) (map[string]any, error) {
	if i >= len(p) {
		return nil, NewFault(FaultInvalidParams, "missing argument %d", i)
	}
	m, ok := p[i].(map[string]any)
	if !ok {
		return nil, NewFault(FaultInvalidParams, "argument %d is %T, want struct", i, p[i])
	}
	return m, nil
}

// Array returns argument i as a slice (XML-RPC array).
func (p Params) Array(i int) ([]any, error) {
	if i >= len(p) {
		return nil, NewFault(FaultInvalidParams, "missing argument %d", i)
	}
	a, ok := p[i].([]any)
	if !ok {
		return nil, NewFault(FaultInvalidParams, "argument %d is %T, want array", i, p[i])
	}
	return a, nil
}

// StringsArray returns argument i as []string, converting each element.
func (p Params) StringsArray(i int) ([]string, error) {
	raw, err := p.Array(i)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(raw))
	for j, v := range raw {
		s, ok := v.(string)
		if !ok {
			return nil, NewFault(FaultInvalidParams,
				"argument %d element %d is %T, want string", i, j, v)
		}
		out[j] = s
	}
	return out, nil
}

// MethodService splits "service.method" into its two halves; method-only
// names yield an empty service.
func MethodService(method string) (service, name string) {
	if i := strings.LastIndex(method, "."); i >= 0 {
		return method[:i], method[i+1:]
	}
	return "", method
}

// FormatMethod joins a service and method name.
func FormatMethod(service, name string) string {
	if service == "" {
		return name
	}
	return fmt.Sprintf("%s.%s", service, name)
}
