package xmlrpc

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
	"unicode/utf8"
)

type nested struct {
	Label string  `xmlrpc:"label"`
	Score float64 `xmlrpc:"score"`
}

type sample struct {
	Name      string    `xmlrpc:"name"`
	Count     int       `xmlrpc:"count"`
	Ratio     float64   `xmlrpc:"ratio"`
	OK        bool      `xmlrpc:"ok"`
	Tags      []string  `xmlrpc:"tags"`
	Kids      []nested  `xmlrpc:"kids"`
	Child     *nested   `xmlrpc:"child,omitempty"`
	Started   time.Time `xmlrpc:"started,omitempty"`
	Ignored   string    `xmlrpc:"-"`
	Untagged  string
	internals string //nolint:unused // pins unexported-field skipping
}

func TestMarshalStruct(t *testing.T) {
	in := sample{
		Name:  "plan",
		Count: 3,
		Ratio: 0.5,
		OK:    true,
		Tags:  []string{"a", "b"},
		Kids:  []nested{{Label: "k", Score: 1.5}},
	}
	w, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := w.(map[string]any)
	if !ok {
		t.Fatalf("Marshal = %T", w)
	}
	if m["name"] != "plan" || m["count"] != 3 || m["ratio"] != 0.5 || m["ok"] != true {
		t.Fatalf("scalars = %v", m)
	}
	if _, ok := m["child"]; ok {
		t.Error("omitempty nil pointer emitted")
	}
	if _, ok := m["started"]; ok {
		t.Error("omitempty zero time emitted")
	}
	if _, ok := m["Ignored"]; ok {
		t.Error("skipped field emitted")
	}
	if m["Untagged"] != "" {
		t.Errorf("untagged field = %v", m["Untagged"])
	}
	tags, ok := m["tags"].([]any)
	if !ok || len(tags) != 2 || tags[0] != "a" {
		t.Fatalf("tags = %v", m["tags"])
	}
	kids := m["kids"].([]any)
	if kid := kids[0].(map[string]any); kid["label"] != "k" || kid["score"] != 1.5 {
		t.Fatalf("kids = %v", kids)
	}
}

func TestUnmarshalStruct(t *testing.T) {
	wire := map[string]any{
		"name":  "plan",
		"count": 3.0, // double with integral value → int
		"ratio": 2,   // int → float
		"ok":    true,
		"tags":  []any{"x"},
		"kids":  []any{map[string]any{"label": "k", "score": 9}},
		"child": map[string]any{"label": "c", "score": 0.25},
		"extra": "ignored",
	}
	var out sample
	if err := Unmarshal(wire, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "plan" || out.Count != 3 || out.Ratio != 2 || !out.OK {
		t.Fatalf("out = %+v", out)
	}
	if len(out.Tags) != 1 || out.Tags[0] != "x" {
		t.Fatalf("tags = %v", out.Tags)
	}
	if len(out.Kids) != 1 || out.Kids[0].Score != 9 {
		t.Fatalf("kids = %v", out.Kids)
	}
	if out.Child == nil || out.Child.Label != "c" {
		t.Fatalf("child = %v", out.Child)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var s sample
	if err := Unmarshal(map[string]any{"count": "NaN"}, &s); err == nil {
		t.Error("string into int accepted")
	}
	if err := Unmarshal(map[string]any{"count": 1.5}, &s); err == nil {
		t.Error("fractional double into int accepted")
	}
	if err := Unmarshal("str", &s); err == nil {
		t.Error("string into struct accepted")
	}
	var n int
	if err := Unmarshal("x", n); err == nil {
		t.Error("non-pointer target accepted")
	}
	// Integral doubles beyond int64 must be rejected, not converted to an
	// implementation-defined value.
	var big int64
	for _, v := range []float64{1e300, -1e300, math.MaxFloat64} {
		if err := Unmarshal(v, &big); err == nil {
			t.Errorf("double %g into int64 accepted (got %d)", v, big)
		}
	}
	if err := Unmarshal(9.007199254740992e15, &big); err != nil || big != 1<<53 {
		t.Errorf("in-range integral double = %d, %v", big, err)
	}
}

func TestUnmarshalArray(t *testing.T) {
	var coords [2]float64
	if err := Unmarshal([]any{1.5, 2}, &coords); err != nil || coords != [2]float64{1.5, 2} {
		t.Fatalf("array = %v, %v", coords, err)
	}
	if err := Unmarshal([]any{1.0}, &coords); err == nil {
		t.Error("length mismatch accepted")
	}
	// Arrays survive the full wire round trip that Marshal permits.
	in := struct {
		C [2]int `xmlrpc:"c"`
	}{C: [2]int{7, -3}}
	out := in
	out.C = [2]int{}
	roundTrip(t, in, &out)
	if out != in {
		t.Fatalf("array round trip = %+v", out)
	}
}

func TestUnmarshalScalarsAndAny(t *testing.T) {
	var f float64
	if err := Unmarshal(7, &f); err != nil || f != 7 {
		t.Fatalf("int→float = %v, %v", f, err)
	}
	var v any
	if err := Unmarshal(map[string]any{"a": 1}, &v); err != nil {
		t.Fatal(err)
	}
	if m := v.(map[string]any); m["a"] != 1 {
		t.Fatalf("any = %v", v)
	}
	var ss []string
	if err := Unmarshal([]any{"a", "b"}, &ss); err != nil || !reflect.DeepEqual(ss, []string{"a", "b"}) {
		t.Fatalf("[]string = %v, %v", ss, err)
	}
	var m map[string]float64
	if err := Unmarshal(map[string]any{"x": 1, "y": 2.5}, &m); err != nil || m["x"] != 1 || m["y"] != 2.5 {
		t.Fatalf("map = %v, %v", m, err)
	}
}

// roundTrip pushes a typed value through Marshal → wire encoding → wire
// decoding → Unmarshal, the exact path of a typed RPC response.
func roundTrip(t interface{ Fatalf(string, ...any) }, in, out any) {
	w, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	enc, err := EncodeResponse(w)
	if err != nil {
		t.Fatalf("EncodeResponse: %v", err)
	}
	dec, err := DecodeResponse(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if err := Unmarshal(dec, out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
}

func TestStructCodecRoundTrip(t *testing.T) {
	in := sample{
		Name:     "p&q<r>",
		Count:    -42,
		Ratio:    math.Pi,
		OK:       true,
		Tags:     []string{"α", "β"},
		Kids:     []nested{{Label: "k1", Score: 0.1}, {Label: "k2", Score: -3}},
		Child:    &nested{Label: "c", Score: 7},
		Started:  time.Date(2005, 4, 1, 12, 30, 45, 0, time.UTC),
		Untagged: "u",
	}
	var out sample
	roundTrip(t, in, &out)
	if out.Name != in.Name || out.Count != in.Count || out.Ratio != in.Ratio ||
		!reflect.DeepEqual(out.Tags, in.Tags) || !reflect.DeepEqual(out.Kids, in.Kids) ||
		out.Child == nil || *out.Child != *in.Child || !out.Started.Equal(in.Started) ||
		out.Untagged != in.Untagged {
		t.Fatalf("round trip:\n in=%+v\nout=%+v", in, out)
	}
}

// xmlSafe reports whether s survives the XML wire: valid UTF-8 with no
// control characters XML 1.0 cannot represent.
func xmlSafe(s string) bool {
	if !utf8.ValidString(s) {
		return false
	}
	return !strings.ContainsFunc(s, func(r rune) bool {
		return r < 0x20 && r != '\t' && r != '\n' && r != '\r'
	})
}

// FuzzStructCodecRoundTrip fuzzes the typed struct encoder/decoder
// end-to-end: build a struct from fuzz inputs, marshal, encode to XML,
// decode, unmarshal, and require value equality.
func FuzzStructCodecRoundTrip(f *testing.F) {
	f.Add("plan", int32(3), 0.5, true, "tag", int64(1104537600))
	f.Add("", int32(-1), -12.75, false, "", int64(0))
	f.Add("a&b<c>'d\"", int32(math.MaxInt32), math.SmallestNonzeroFloat64, true, "x\ny", int64(4102444800))
	f.Fuzz(func(t *testing.T, name string, count int32, ratio float64, ok bool, tag string, sec int64) {
		if math.IsNaN(ratio) || math.IsInf(ratio, 0) {
			t.Skip("non-finite doubles are rejected by the encoder")
		}
		if !xmlSafe(name) || !xmlSafe(tag) {
			t.Skip("string not representable in XML 1.0")
		}
		in := sample{Name: name, Count: int(count), Ratio: ratio, OK: ok, Tags: []string{tag}}
		if sec > 0 {
			ts := time.Unix(sec%253402300799, 0).UTC() // keep the year ≤ 9999
			if ts.Year() >= 1000 {                     // iso8601 needs 4-digit years
				in.Started = ts
			}
		}
		var out sample
		roundTrip(t, in, &out)
		if out.Name != in.Name || out.Count != in.Count || out.Ratio != in.Ratio || out.OK != in.OK {
			t.Fatalf("scalars: in=%+v out=%+v", in, out)
		}
		if len(out.Tags) != 1 || out.Tags[0] != in.Tags[0] {
			t.Fatalf("tags: in=%q out=%q", in.Tags, out.Tags)
		}
		if !out.Started.Equal(in.Started) {
			t.Fatalf("time: in=%v out=%v", in.Started, out.Started)
		}
	})
}
