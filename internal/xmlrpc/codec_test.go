package xmlrpc

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// roundTripArg encodes v as the sole argument of a request and decodes it
// back.
func roundTripArg(t *testing.T, v any) any {
	t.Helper()
	raw, err := EncodeRequest("echo", []any{v})
	if err != nil {
		t.Fatalf("EncodeRequest(%#v): %v", v, err)
	}
	req, err := DecodeRequest(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("DecodeRequest(%s): %v", raw, err)
	}
	if req.Method != "echo" {
		t.Fatalf("method = %q, want echo", req.Method)
	}
	if len(req.Args) != 1 {
		t.Fatalf("decoded %d args, want 1", len(req.Args))
	}
	return req.Args[0]
}

func TestRoundTripScalars(t *testing.T) {
	cases := []struct {
		in   any
		want any
	}{
		{42, 42},
		{-7, -7},
		{0, 0},
		{int32(123), 123},
		{int64(1 << 30), 1 << 30},
		{uint16(9), 9},
		{true, true},
		{false, false},
		{"hello grid", "hello grid"},
		{"", ""},
		{3.5, 3.5},
		{float32(0.25), 0.25},
		{-1e-9, -1e-9},
		{math.MaxFloat64, math.MaxFloat64},
	}
	for _, c := range cases {
		got := roundTripArg(t, c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("round trip %#v = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestRoundTripStringEscaping(t *testing.T) {
	hostile := `<script>&"it's"</script> ]]> &amp;`
	got := roundTripArg(t, hostile)
	if got != hostile {
		t.Fatalf("escaped round trip = %q, want %q", got, hostile)
	}
}

func TestRoundTripUnicode(t *testing.T) {
	s := "μερικά ελληνικά — 物理学 — ¡hola!"
	if got := roundTripArg(t, s); got != s {
		t.Fatalf("unicode round trip = %q, want %q", got, s)
	}
}

func TestRoundTripTime(t *testing.T) {
	ts := time.Date(2005, 4, 15, 10, 30, 45, 0, time.UTC)
	got := roundTripArg(t, ts)
	gt, ok := got.(time.Time)
	if !ok {
		t.Fatalf("decoded %T, want time.Time", got)
	}
	if !gt.Equal(ts) {
		t.Fatalf("time round trip = %v, want %v", gt, ts)
	}
}

func TestRoundTripBase64(t *testing.T) {
	blob := []byte{0, 1, 2, 0xff, 0xfe, 'g', 'a', 'e'}
	got := roundTripArg(t, blob)
	if !bytes.Equal(got.([]byte), blob) {
		t.Fatalf("base64 round trip = %v, want %v", got, blob)
	}
}

func TestRoundTripNil(t *testing.T) {
	if got := roundTripArg(t, nil); got != nil {
		t.Fatalf("nil round trip = %#v, want nil", got)
	}
}

func TestRoundTripArray(t *testing.T) {
	in := []any{1, "two", 3.0, true, nil, []any{"nested"}}
	got := roundTripArg(t, in)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("array round trip = %#v, want %#v", got, in)
	}
}

func TestRoundTripEmptyArray(t *testing.T) {
	got := roundTripArg(t, []any{})
	if !reflect.DeepEqual(got, []any{}) {
		t.Fatalf("empty array round trip = %#v", got)
	}
}

func TestRoundTripTypedSlices(t *testing.T) {
	if got := roundTripArg(t, []string{"a", "b"}); !reflect.DeepEqual(got, []any{"a", "b"}) {
		t.Errorf("[]string round trip = %#v", got)
	}
	if got := roundTripArg(t, []int{1, 2}); !reflect.DeepEqual(got, []any{1, 2}) {
		t.Errorf("[]int round trip = %#v", got)
	}
	if got := roundTripArg(t, []float64{1.5}); !reflect.DeepEqual(got, []any{1.5}) {
		t.Errorf("[]float64 round trip = %#v", got)
	}
}

func TestRoundTripStruct(t *testing.T) {
	in := map[string]any{
		"status":   "running",
		"priority": 5,
		"cpu":      12.25,
		"flags":    []any{true, false},
		"inner":    map[string]any{"site": "caltech"},
	}
	got := roundTripArg(t, in)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("struct round trip = %#v, want %#v", got, in)
	}
}

func TestRoundTripMapStringString(t *testing.T) {
	in := map[string]string{"owner": "alice", "queue": "q32l"}
	want := map[string]any{"owner": "alice", "queue": "q32l"}
	if got := roundTripArg(t, in); !reflect.DeepEqual(got, want) {
		t.Fatalf("map[string]string round trip = %#v", got)
	}
}

func TestStructEncodingDeterministic(t *testing.T) {
	m := map[string]any{"zebra": 1, "alpha": 2, "mid": 3}
	a, err := EncodeRequest("m", []any{m})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		b, err := EncodeRequest("m", []any{m})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatal("struct member order varies between encodings")
		}
	}
	if !strings.Contains(string(a), "<name>alpha</name>") {
		t.Fatalf("missing member in %s", a)
	}
}

func TestEncodeRejectsUnsupported(t *testing.T) {
	type weird struct{ X int }
	for _, v := range []any{weird{1}, make(chan int), func() {}, complex(1, 2)} {
		if _, err := EncodeRequest("m", []any{v}); !errors.Is(err, ErrUnsupportedType) {
			t.Errorf("EncodeRequest(%T) error = %v, want ErrUnsupportedType", v, err)
		}
	}
}

func TestEncodeRejectsNonFiniteDouble(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := EncodeRequest("m", []any{f}); !errors.Is(err, ErrUnsupportedType) {
			t.Errorf("EncodeRequest(%v) error = %v, want ErrUnsupportedType", f, err)
		}
	}
}

func TestEncodeRejectsInt64Overflow(t *testing.T) {
	if _, err := EncodeRequest("m", []any{int64(math.MaxInt32) + 1}); !errors.Is(err, ErrUnsupportedType) {
		t.Fatalf("overflowing int64 error = %v, want ErrUnsupportedType", err)
	}
}

func TestDecodeRequestNoParams(t *testing.T) {
	raw := `<?xml version="1.0"?><methodCall><methodName>ping</methodName></methodCall>`
	req, err := DecodeRequest(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "ping" || len(req.Args) != 0 {
		t.Fatalf("got %+v", req)
	}
}

func TestDecodeRequestMissingMethodName(t *testing.T) {
	raw := `<methodCall><params></params></methodCall>`
	if _, err := DecodeRequest(strings.NewReader(raw)); err == nil {
		t.Fatal("missing methodName accepted")
	}
}

func TestDecodeUntypedValueIsString(t *testing.T) {
	raw := `<methodCall><methodName>m</methodName><params><param><value>plain</value></param></params></methodCall>`
	req, err := DecodeRequest(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if req.Args[0] != "plain" {
		t.Fatalf("untyped value = %#v, want \"plain\"", req.Args[0])
	}
}

func TestDecodeI4AndI8(t *testing.T) {
	raw := `<methodCall><methodName>m</methodName><params>` +
		`<param><value><i4>7</i4></value></param>` +
		`<param><value><i8>1099511627776</i8></value></param>` +
		`</params></methodCall>`
	req, err := DecodeRequest(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if req.Args[0] != 7 || req.Args[1] != 1<<40 {
		t.Fatalf("args = %#v", req.Args)
	}
}

func TestDecodeBooleanWords(t *testing.T) {
	raw := `<methodCall><methodName>m</methodName><params>` +
		`<param><value><boolean>true</boolean></value></param>` +
		`<param><value><boolean>0</boolean></value></param>` +
		`</params></methodCall>`
	req, err := DecodeRequest(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if req.Args[0] != true || req.Args[1] != false {
		t.Fatalf("args = %#v", req.Args)
	}
}

func TestDecodeRFC3339DateAccepted(t *testing.T) {
	raw := `<methodCall><methodName>m</methodName><params>` +
		`<param><value><dateTime.iso8601>2005-06-01T10:00:00Z</dateTime.iso8601></value></param>` +
		`</params></methodCall>`
	req, err := DecodeRequest(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2005, 6, 1, 10, 0, 0, 0, time.UTC)
	if !req.Args[0].(time.Time).Equal(want) {
		t.Fatalf("got %v, want %v", req.Args[0], want)
	}
}

func TestDecodeMalformed(t *testing.T) {
	cases := []string{
		``,
		`<notxmlrpc/>`,
		`<methodCall><methodName>m`,
		`<methodCall><methodName>m</methodName><params><param></param></params></methodCall>`,
		`<methodCall><methodName>m</methodName><params><param><value><int>NaN</int></value></param></params></methodCall>`,
		`<methodCall><methodName>m</methodName><params><param><value><boolean>2</boolean></value></param></params></methodCall>`,
		`<methodCall><methodName>m</methodName><params><param><value><unknowntype>1</unknowntype></value></param></params></methodCall>`,
		`<methodCall><methodName>m</methodName><params><param><value><double>abc</double></value></param></params></methodCall>`,
		`<methodCall><methodName>m</methodName><params><param><value><dateTime.iso8601>yesterday</dateTime.iso8601></value></param></params></methodCall>`,
		`<methodCall><methodName>m</methodName><params><param><value><base64>!!!</base64></value></param></params></methodCall>`,
		`<methodCall><methodName>m</methodName><params><param><value><struct><member><name>x</name></member></struct></value></param></params></methodCall>`,
	}
	for _, raw := range cases {
		if _, err := DecodeRequest(strings.NewReader(raw)); err == nil {
			t.Errorf("malformed request accepted: %s", raw)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	raw, err := EncodeResponse(map[string]any{"ok": true, "n": 3})
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodeResponse(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{"ok": true, "n": 3}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("response round trip = %#v, want %#v", v, want)
	}
}

func TestFaultRoundTrip(t *testing.T) {
	raw := EncodeFault(NewFault(FaultAuth, "bad session <token> & more"))
	_, err := DecodeResponse(bytes.NewReader(raw))
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("DecodeResponse error = %v, want *Fault", err)
	}
	if f.Code != FaultAuth || f.Message != "bad session <token> & more" {
		t.Fatalf("fault = %+v", f)
	}
}

func TestDecodeResponseEmpty(t *testing.T) {
	raw := `<methodResponse></methodResponse>`
	if _, err := DecodeResponse(strings.NewReader(raw)); err == nil {
		t.Fatal("empty methodResponse accepted")
	}
}

func TestDecodeResponseMultipleParams(t *testing.T) {
	raw := `<methodResponse><params>` +
		`<param><value><int>1</int></value></param>` +
		`<param><value><int>2</int></value></param>` +
		`</params></methodResponse>`
	if _, err := DecodeResponse(strings.NewReader(raw)); err == nil {
		t.Fatal("two-param response accepted")
	}
}

func TestIsFaultAndAsFault(t *testing.T) {
	f := NewFault(FaultQuota, "over quota")
	wrapped := errorsJoin(f)
	if !IsFault(wrapped, FaultQuota) {
		t.Fatal("IsFault failed on wrapped fault")
	}
	if IsFault(wrapped, FaultAuth) {
		t.Fatal("IsFault matched wrong code")
	}
	if IsFault(errors.New("plain"), FaultQuota) {
		t.Fatal("IsFault matched non-fault")
	}
	if _, ok := AsFault(nil); ok {
		t.Fatal("AsFault(nil) returned ok")
	}
}

type wrapErr struct{ inner error }

func (w wrapErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w wrapErr) Unwrap() error { return w.inner }

func errorsJoin(err error) error { return wrapErr{inner: err} }

// Property: every printable string survives a request round trip.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if !isValidXMLString(s) {
			return true // XML cannot carry arbitrary control bytes; skip
		}
		raw, err := EncodeRequest("m", []any{s})
		if err != nil {
			return false
		}
		req, err := DecodeRequest(bytes.NewReader(raw))
		if err != nil {
			return false
		}
		return req.Args[0] == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every int32 and finite float64 survives a round trip.
func TestQuickNumericRoundTrip(t *testing.T) {
	fi := func(n int32) bool {
		raw, err := EncodeRequest("m", []any{int(n)})
		if err != nil {
			return false
		}
		req, err := DecodeRequest(bytes.NewReader(raw))
		if err != nil {
			return false
		}
		return req.Args[0] == int(n)
	}
	if err := quick.Check(fi, nil); err != nil {
		t.Fatal(err)
	}
	ff := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		raw, err := EncodeRequest("m", []any{x})
		if err != nil {
			return false
		}
		req, err := DecodeRequest(bytes.NewReader(raw))
		if err != nil {
			return false
		}
		return req.Args[0] == x
	}
	if err := quick.Check(ff, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary byte slices survive base64 round trips.
func TestQuickBase64RoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		raw, err := EncodeRequest("m", []any{b})
		if err != nil {
			return false
		}
		req, err := DecodeRequest(bytes.NewReader(raw))
		if err != nil {
			return false
		}
		got, ok := req.Args[0].([]byte)
		return ok && bytes.Equal(got, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func isValidXMLString(s string) bool {
	for _, r := range s {
		if r == 0xFFFD { // replacement: input was invalid UTF-8
			return false
		}
		if r < 0x20 && r != '\t' && r != '\n' && r != '\r' {
			return false
		}
		if r >= 0xD800 && r <= 0xDFFF {
			return false
		}
	}
	return true
}

func TestMethodServiceSplit(t *testing.T) {
	cases := []struct{ in, svc, name string }{
		{"jobmon.status", "jobmon", "status"},
		{"system.listMethods", "system", "listMethods"},
		{"a.b.c", "a.b", "c"},
		{"plain", "", "plain"},
	}
	for _, c := range cases {
		svc, name := MethodService(c.in)
		if svc != c.svc || name != c.name {
			t.Errorf("MethodService(%q) = (%q,%q), want (%q,%q)", c.in, svc, name, c.svc, c.name)
		}
		if got := FormatMethod(svc, name); got != c.in {
			t.Errorf("FormatMethod(%q,%q) = %q, want %q", svc, name, got, c.in)
		}
	}
}
