package xmlrpc

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client issues XML-RPC calls against a single endpoint URL.
// The zero http.Client is used unless HTTP is set; Headers (for example a
// Clarens session token) are attached to every request.
type Client struct {
	URL     string
	HTTP    *http.Client
	Headers map[string]string
}

// ctxHeadersKey carries per-call HTTP headers through a context.
type ctxHeadersKey struct{}

type headerKV struct{ key, value string }

// WithCallHeader returns a context that attaches one extra HTTP header to
// every XML-RPC request issued with it. Unlike Client.Headers — client
// configuration, set before sharing — call headers are per-request and
// safe to vary across concurrent calls (idempotency keys ride here).
func WithCallHeader(ctx context.Context, key, value string) context.Context {
	prev, _ := ctx.Value(ctxHeadersKey{}).([]headerKV)
	// Copy-on-append: contexts fork, so the slice must not be shared
	// mutable state between siblings.
	next := make([]headerKV, len(prev), len(prev)+1)
	copy(next, prev)
	next = append(next, headerKV{key, value})
	return context.WithValue(ctx, ctxHeadersKey{}, next)
}

func callHeaders(ctx context.Context) []headerKV {
	hs, _ := ctx.Value(ctxHeadersKey{}).([]headerKV)
	return hs
}

// NewClient returns a client for the endpoint with a default timeout
// suitable for LAN service calls.
func NewClient(url string) *Client {
	return &Client{
		URL:  url,
		HTTP: &http.Client{Timeout: 30 * time.Second},
	}
}

// Call invokes method with args and returns the decoded result.
// A remote fault is returned as a *Fault error.
func (c *Client) Call(ctx context.Context, method string, args ...any) (any, error) {
	body, err := EncodeRequest(method, args)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.URL, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/xml; charset=utf-8")
	for k, v := range c.Headers {
		req.Header.Set(k, v)
	}
	for _, h := range callHeaders(ctx) {
		req.Header.Set(h.key, h.value)
	}
	httpClient := c.HTTP
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("xmlrpc: calling %s: %w", method, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("xmlrpc: %s returned HTTP %d: %s", method, resp.StatusCode, snippet)
	}
	return DecodeResponse(resp.Body)
}

// CallString invokes method and asserts a string result.
func (c *Client) CallString(ctx context.Context, method string, args ...any) (string, error) {
	v, err := c.Call(ctx, method, args...)
	if err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("xmlrpc: %s returned %T, want string", method, v)
	}
	return s, nil
}

// CallInt invokes method and asserts an int result.
func (c *Client) CallInt(ctx context.Context, method string, args ...any) (int, error) {
	v, err := c.Call(ctx, method, args...)
	if err != nil {
		return 0, err
	}
	switch n := v.(type) {
	case int:
		return n, nil
	case float64:
		if n == float64(int(n)) {
			return int(n), nil
		}
	}
	return 0, fmt.Errorf("xmlrpc: %s returned %T, want int", method, v)
}

// CallFloat invokes method and asserts a double result.
func (c *Client) CallFloat(ctx context.Context, method string, args ...any) (float64, error) {
	v, err := c.Call(ctx, method, args...)
	if err != nil {
		return 0, err
	}
	switch n := v.(type) {
	case float64:
		return n, nil
	case int:
		return float64(n), nil
	}
	return 0, fmt.Errorf("xmlrpc: %s returned %T, want double", method, v)
}

// CallBool invokes method and asserts a boolean result.
func (c *Client) CallBool(ctx context.Context, method string, args ...any) (bool, error) {
	v, err := c.Call(ctx, method, args...)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("xmlrpc: %s returned %T, want boolean", method, v)
	}
	return b, nil
}

// CallStruct invokes method and asserts a struct result.
func (c *Client) CallStruct(ctx context.Context, method string, args ...any) (map[string]any, error) {
	v, err := c.Call(ctx, method, args...)
	if err != nil {
		return nil, err
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("xmlrpc: %s returned %T, want struct", method, v)
	}
	return m, nil
}

// CallArray invokes method and asserts an array result.
func (c *Client) CallArray(ctx context.Context, method string, args ...any) ([]any, error) {
	v, err := c.Call(ctx, method, args...)
	if err != nil {
		return nil, err
	}
	a, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("xmlrpc: %s returned %T, want array", method, v)
	}
	return a, nil
}
