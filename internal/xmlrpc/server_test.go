package xmlrpc

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func echoHandler(_ context.Context, args []any) (any, error) {
	return args, nil
}

func newTestServer(t *testing.T) (*ServeMux, *Client) {
	t.Helper()
	mux := NewServeMux()
	mux.Handle("test.echo", echoHandler)
	mux.Handle("test.add", func(_ context.Context, args []any) (any, error) {
		p := Params(args)
		if err := p.Want(2); err != nil {
			return nil, err
		}
		a, err := p.Int(0)
		if err != nil {
			return nil, err
		}
		b, err := p.Int(1)
		if err != nil {
			return nil, err
		}
		return a + b, nil
	})
	mux.Handle("test.fail", func(context.Context, []any) (any, error) {
		return nil, errors.New("boom")
	})
	mux.Handle("test.fault", func(context.Context, []any) (any, error) {
		return nil, NewFault(FaultQuota, "quota exceeded")
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return mux, NewClient(srv.URL)
}

func TestEndToEndEcho(t *testing.T) {
	_, c := newTestServer(t)
	got, err := c.Call(context.Background(), "test.echo", 1, "two", 3.5, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []any{1, "two", 3.5, true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("echo = %#v, want %#v", got, want)
	}
}

func TestEndToEndAdd(t *testing.T) {
	_, c := newTestServer(t)
	n, err := c.CallInt(context.Background(), "test.add", 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 42 {
		t.Fatalf("add = %d, want 42", n)
	}
}

func TestEndToEndMethodNotFound(t *testing.T) {
	_, c := newTestServer(t)
	_, err := c.Call(context.Background(), "test.nope")
	if !IsFault(err, FaultMethodNotFound) {
		t.Fatalf("error = %v, want method-not-found fault", err)
	}
}

func TestEndToEndInternalFault(t *testing.T) {
	_, c := newTestServer(t)
	_, err := c.Call(context.Background(), "test.fail")
	f, ok := AsFault(err)
	if !ok || f.Code != FaultInternal || !strings.Contains(f.Message, "boom") {
		t.Fatalf("error = %v, want internal fault wrapping boom", err)
	}
}

func TestEndToEndApplicationFault(t *testing.T) {
	_, c := newTestServer(t)
	_, err := c.Call(context.Background(), "test.fault")
	if !IsFault(err, FaultQuota) {
		t.Fatalf("error = %v, want quota fault", err)
	}
}

func TestEndToEndInvalidParams(t *testing.T) {
	_, c := newTestServer(t)
	_, err := c.Call(context.Background(), "test.add", 1)
	if !IsFault(err, FaultInvalidParams) {
		t.Fatalf("error = %v, want invalid-params fault", err)
	}
	_, err = c.Call(context.Background(), "test.add", "x", "y")
	if !IsFault(err, FaultInvalidParams) {
		t.Fatalf("error = %v, want invalid-params fault", err)
	}
}

func TestSystemListMethods(t *testing.T) {
	_, c := newTestServer(t)
	got, err := c.CallArray(context.Background(), "system.listMethods")
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(got))
	for i, v := range got {
		names[i] = v.(string)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"system.listMethods", "test.add", "test.echo"} {
		if !strings.Contains(joined, want) {
			t.Errorf("listMethods missing %s in %v", want, names)
		}
	}
	if !sortedStrings(names) {
		t.Errorf("listMethods not sorted: %v", names)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

func TestServerRejectsGET(t *testing.T) {
	mux := NewServeMux()
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}
}

func TestServerParseFault(t *testing.T) {
	mux := NewServeMux()
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Post(srv.URL, "text/xml", strings.NewReader("this is not xml"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, derr := DecodeResponse(resp.Body)
	if !IsFault(derr, FaultParse) {
		t.Fatalf("error = %v, want parse fault", derr)
	}
}

func TestInterceptSeesEveryCall(t *testing.T) {
	mux, c := newTestServer(t)
	var mu sync.Mutex
	var seen []string
	mux.Intercept = func(ctx context.Context, method string, args []any, next Handler) (any, error) {
		mu.Lock()
		seen = append(seen, method)
		mu.Unlock()
		if method == "test.fault" {
			return nil, NewFault(FaultAuth, "blocked")
		}
		return next(ctx, args)
	}
	if _, err := c.Call(context.Background(), "test.echo", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(context.Background(), "test.fault"); !IsFault(err, FaultAuth) {
		t.Fatalf("intercepted error = %v, want auth fault", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] != "test.echo" || seen[1] != "test.fault" {
		t.Fatalf("intercept saw %v", seen)
	}
}

func TestHandlePanicsOnBadArgs(t *testing.T) {
	mux := NewServeMux()
	for _, f := range []func(){
		func() { mux.Handle("", echoHandler) },
		func() { mux.Handle("x", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Handle with invalid args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestUnhandle(t *testing.T) {
	mux, c := newTestServer(t)
	mux.Unhandle("test.echo")
	_, err := c.Call(context.Background(), "test.echo")
	if !IsFault(err, FaultMethodNotFound) {
		t.Fatalf("error after Unhandle = %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, c := newTestServer(t)
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := c.CallInt(context.Background(), "test.add", i, i)
			if err != nil {
				errs <- err
				return
			}
			if got != 2*i {
				errs <- errors.New("wrong sum")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestParamsAccessors(t *testing.T) {
	p := Params{
		"str", 7, 2.5, true,
		map[string]any{"k": "v"},
		[]any{"a", "b"},
		3.0, // integral double should satisfy Int
	}
	if s, err := p.String(0); err != nil || s != "str" {
		t.Errorf("String = %q, %v", s, err)
	}
	if n, err := p.Int(1); err != nil || n != 7 {
		t.Errorf("Int = %d, %v", n, err)
	}
	if f, err := p.Float(2); err != nil || f != 2.5 {
		t.Errorf("Float = %v, %v", f, err)
	}
	if f, err := p.Float(1); err != nil || f != 7.0 {
		t.Errorf("Float(int) = %v, %v", f, err)
	}
	if b, err := p.Bool(3); err != nil || !b {
		t.Errorf("Bool = %v, %v", b, err)
	}
	if m, err := p.Struct(4); err != nil || m["k"] != "v" {
		t.Errorf("Struct = %v, %v", m, err)
	}
	if a, err := p.Array(5); err != nil || len(a) != 2 {
		t.Errorf("Array = %v, %v", a, err)
	}
	if ss, err := p.StringsArray(5); err != nil || ss[1] != "b" {
		t.Errorf("StringsArray = %v, %v", ss, err)
	}
	if n, err := p.Int(6); err != nil || n != 3 {
		t.Errorf("Int(integral double) = %d, %v", n, err)
	}
	// Type errors.
	if _, err := p.Int(0); !IsFault(err, FaultInvalidParams) {
		t.Errorf("Int(string) error = %v", err)
	}
	if _, err := p.String(99); !IsFault(err, FaultInvalidParams) {
		t.Errorf("String(oob) error = %v", err)
	}
	if _, err := p.StringsArray(4); !IsFault(err, FaultInvalidParams) {
		t.Errorf("StringsArray(struct) error = %v", err)
	}
	if err := p.Want(3); !IsFault(err, FaultInvalidParams) {
		t.Errorf("Want(3) on len-7 error = %v", err)
	}
	if err := p.WantAtLeast(8); !IsFault(err, FaultInvalidParams) {
		t.Errorf("WantAtLeast(8) error = %v", err)
	}
	if err := p.WantAtLeast(2); err != nil {
		t.Errorf("WantAtLeast(2) error = %v", err)
	}
}

func TestClientTypedCallErrors(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	// test.echo returns an array; every scalar-typed call must fail cleanly.
	if _, err := c.CallString(ctx, "test.echo", 1); err == nil {
		t.Error("CallString on array succeeded")
	}
	if _, err := c.CallInt(ctx, "test.echo", 1); err == nil {
		t.Error("CallInt on array succeeded")
	}
	if _, err := c.CallBool(ctx, "test.echo", 1); err == nil {
		t.Error("CallBool on array succeeded")
	}
	if _, err := c.CallStruct(ctx, "test.echo", 1); err == nil {
		t.Error("CallStruct on array succeeded")
	}
	if _, err := c.CallFloat(ctx, "test.echo", 1); err == nil {
		t.Error("CallFloat on array succeeded")
	}
}

func TestServerRejectsOversizedRequest(t *testing.T) {
	mux := NewServeMux()
	mux.Handle("big.echo", echoHandler)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	// A single string argument larger than MaxRequestBytes must produce a
	// parse fault (the body is truncated at the limit), not a success or
	// a hang.
	huge := strings.Repeat("x", MaxRequestBytes+1024)
	raw, err := EncodeRequest("big.echo", []any{huge})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL, "text/xml", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, derr := DecodeResponse(resp.Body)
	if !IsFault(derr, FaultParse) {
		t.Fatalf("oversized request error = %v, want parse fault", derr)
	}
}
