package xmlrpc

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"time"
)

// This file is the typed layer of the codec: reflection-based conversion
// between Go structs/slices and the wire representation the encoder and
// decoder speak (map[string]any, []any, int, bool, string, float64,
// time.Time, []byte). Handlers and clients exchange typed values; the
// hand-written field plucking the services used to carry is replaced by
// struct tags:
//
//	type Estimate struct {
//		Seconds    float64 `xmlrpc:"seconds"`
//		TasksAhead int     `xmlrpc:"tasks_ahead"`
//		Started    time.Time `xmlrpc:"started,omitempty"`
//		Internal   string  `xmlrpc:"-"`
//	}
//
// Untagged exported fields use their Go name. ",omitempty" drops
// zero-valued fields from the struct, matching the convention of omitting
// unset timestamps on the wire. Anonymous embedded structs without a tag
// are flattened into the parent struct.

var timeType = reflect.TypeOf(time.Time{})

// Marshal converts a typed Go value into the canonical wire value accepted
// by EncodeRequest/EncodeResponse. Scalars pass through, structs become
// map[string]any keyed by their xmlrpc tags, and slices become []any.
func Marshal(v any) (any, error) {
	if v == nil {
		return nil, nil
	}
	return marshalValue(reflect.ValueOf(v))
}

func marshalValue(rv reflect.Value) (any, error) {
	switch rv.Kind() {
	case reflect.Interface, reflect.Pointer:
		if rv.IsNil() {
			return nil, nil
		}
		return marshalValue(rv.Elem())
	}
	if rv.Type() == timeType {
		return rv.Interface().(time.Time), nil
	}
	switch rv.Kind() {
	case reflect.Bool:
		return rv.Bool(), nil
	case reflect.String:
		return rv.String(), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return int(rv.Int()), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u := rv.Uint()
		if u > math.MaxInt32 {
			return nil, fmt.Errorf("%w: unsigned %d overflows XML-RPC i4", ErrUnsupportedType, u)
		}
		return int(u), nil
	case reflect.Float32, reflect.Float64:
		return rv.Float(), nil
	case reflect.Slice, reflect.Array:
		if rv.Kind() == reflect.Slice && rv.Type().Elem().Kind() == reflect.Uint8 {
			return rv.Bytes(), nil
		}
		out := make([]any, rv.Len())
		for i := range out {
			e, err := marshalValue(rv.Index(i))
			if err != nil {
				return nil, err
			}
			out[i] = e
		}
		return out, nil
	case reflect.Map:
		if rv.Type().Key().Kind() != reflect.String {
			return nil, fmt.Errorf("%w: map key %s (want string)", ErrUnsupportedType, rv.Type().Key())
		}
		out := make(map[string]any, rv.Len())
		iter := rv.MapRange()
		for iter.Next() {
			e, err := marshalValue(iter.Value())
			if err != nil {
				return nil, err
			}
			out[iter.Key().String()] = e
		}
		return out, nil
	case reflect.Struct:
		out := make(map[string]any)
		if err := marshalStructInto(out, rv); err != nil {
			return nil, err
		}
		return out, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrUnsupportedType, rv.Type())
}

func marshalStructInto(out map[string]any, rv reflect.Value) error {
	t := rv.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name, omitempty, skip := fieldTag(f)
		if skip {
			continue
		}
		fv := rv.Field(i)
		if f.Anonymous && f.Tag.Get("xmlrpc") == "" && fv.Kind() == reflect.Struct && fv.Type() != timeType {
			if err := marshalStructInto(out, fv); err != nil {
				return err
			}
			continue
		}
		if omitempty && fv.IsZero() {
			continue
		}
		w, err := marshalValue(fv)
		if err != nil {
			return fmt.Errorf("field %s: %w", f.Name, err)
		}
		out[name] = w
	}
	return nil
}

// Unmarshal populates out (a non-nil pointer) from a wire value produced
// by the decoder or by Marshal. Numeric conversions follow the lenient
// rules of Params: ints accept integral doubles and doubles accept ints,
// since XML-RPC peers disagree about number types.
func Unmarshal(wire any, out any) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("xmlrpc: Unmarshal into non-pointer %T", out)
	}
	return unmarshalValue(wire, rv.Elem())
}

func unmarshalValue(wire any, rv reflect.Value) error {
	if wire == nil {
		rv.SetZero()
		return nil
	}
	if rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			rv.Set(reflect.New(rv.Type().Elem()))
		}
		return unmarshalValue(wire, rv.Elem())
	}
	if rv.Kind() == reflect.Interface && rv.NumMethod() == 0 {
		rv.Set(reflect.ValueOf(wire))
		return nil
	}
	if rv.Type() == timeType {
		t, ok := wire.(time.Time)
		if !ok {
			return unmarshalTypeError(wire, rv)
		}
		rv.Set(reflect.ValueOf(t))
		return nil
	}
	switch rv.Kind() {
	case reflect.Bool:
		b, ok := wire.(bool)
		if !ok {
			return unmarshalTypeError(wire, rv)
		}
		rv.SetBool(b)
	case reflect.String:
		s, ok := wire.(string)
		if !ok {
			return unmarshalTypeError(wire, rv)
		}
		rv.SetString(s)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n, ok := wireInt(wire)
		if !ok {
			return unmarshalTypeError(wire, rv)
		}
		if rv.OverflowInt(n) {
			return fmt.Errorf("xmlrpc: %d overflows %s", n, rv.Type())
		}
		rv.SetInt(n)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		n, ok := wireInt(wire)
		if !ok || n < 0 {
			return unmarshalTypeError(wire, rv)
		}
		if rv.OverflowUint(uint64(n)) {
			return fmt.Errorf("xmlrpc: %d overflows %s", n, rv.Type())
		}
		rv.SetUint(uint64(n))
	case reflect.Float32, reflect.Float64:
		switch w := wire.(type) {
		case float64:
			rv.SetFloat(w)
		case int:
			rv.SetFloat(float64(w))
		default:
			return unmarshalTypeError(wire, rv)
		}
	case reflect.Slice:
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			b, ok := wire.([]byte)
			if !ok {
				return unmarshalTypeError(wire, rv)
			}
			rv.SetBytes(b)
			return nil
		}
		arr, ok := wire.([]any)
		if !ok {
			return unmarshalTypeError(wire, rv)
		}
		out := reflect.MakeSlice(rv.Type(), len(arr), len(arr))
		for i, e := range arr {
			if err := unmarshalValue(e, out.Index(i)); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
		rv.Set(out)
	case reflect.Array:
		arr, ok := wire.([]any)
		if !ok {
			return unmarshalTypeError(wire, rv)
		}
		if len(arr) != rv.Len() {
			return fmt.Errorf("xmlrpc: array carries %d elements, want %d for %s",
				len(arr), rv.Len(), rv.Type())
		}
		for i, e := range arr {
			if err := unmarshalValue(e, rv.Index(i)); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
	case reflect.Map:
		if rv.Type().Key().Kind() != reflect.String {
			return fmt.Errorf("xmlrpc: cannot unmarshal into map keyed by %s", rv.Type().Key())
		}
		m, ok := wire.(map[string]any)
		if !ok {
			return unmarshalTypeError(wire, rv)
		}
		out := reflect.MakeMapWithSize(rv.Type(), len(m))
		for k, v := range m {
			ev := reflect.New(rv.Type().Elem()).Elem()
			if err := unmarshalValue(v, ev); err != nil {
				return fmt.Errorf("key %q: %w", k, err)
			}
			out.SetMapIndex(reflect.ValueOf(k), ev)
		}
		rv.Set(out)
	case reflect.Struct:
		m, ok := wire.(map[string]any)
		if !ok {
			return unmarshalTypeError(wire, rv)
		}
		return unmarshalStructFrom(m, rv)
	default:
		return fmt.Errorf("xmlrpc: cannot unmarshal into %s", rv.Type())
	}
	return nil
}

func unmarshalStructFrom(m map[string]any, rv reflect.Value) error {
	t := rv.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name, _, skip := fieldTag(f)
		if skip {
			continue
		}
		fv := rv.Field(i)
		if f.Anonymous && f.Tag.Get("xmlrpc") == "" && fv.Kind() == reflect.Struct && fv.Type() != timeType {
			if err := unmarshalStructFrom(m, fv); err != nil {
				return err
			}
			continue
		}
		w, ok := m[name]
		if !ok {
			continue
		}
		if err := unmarshalValue(w, fv); err != nil {
			return fmt.Errorf("member %q: %w", name, err)
		}
	}
	return nil
}

func wireInt(wire any) (int64, bool) {
	// Bounds are exact float64 values; doubles outside them would make
	// the int64 conversion implementation-defined.
	const (
		minInt64 = -9223372036854775808 // -2^63
		maxInt64 = 9223372036854775808  // 2^63
	)
	switch w := wire.(type) {
	case int:
		return int64(w), true
	case float64:
		if w == math.Trunc(w) && w >= minInt64 && w < maxInt64 {
			return int64(w), true
		}
	}
	return 0, false
}

func unmarshalTypeError(wire any, rv reflect.Value) error {
	return fmt.Errorf("xmlrpc: cannot unmarshal %T into %s", wire, rv.Type())
}

// fieldTag resolves a struct field's wire name from its xmlrpc tag.
func fieldTag(f reflect.StructField) (name string, omitempty, skip bool) {
	tag := f.Tag.Get("xmlrpc")
	if tag == "-" {
		return "", false, true
	}
	name = f.Name
	if tag != "" {
		parts := strings.Split(tag, ",")
		if parts[0] != "" {
			name = parts[0]
		}
		for _, opt := range parts[1:] {
			if opt == "omitempty" {
				omitempty = true
			}
		}
	}
	return name, omitempty, false
}
