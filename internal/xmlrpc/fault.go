package xmlrpc

import "fmt"

// Well-known fault codes used across the GAE services. The numbering
// follows the XML-RPC "specification for fault code interoperability"
// draft that Clarens-era services adopted.
const (
	FaultParse          = -32700 // malformed request XML
	FaultMethodNotFound = -32601 // unknown service.method
	FaultInvalidParams  = -32602 // wrong argument count or type
	FaultInternal       = -32603 // handler returned a non-fault error
	FaultApplication    = -32500 // generic application error
	FaultAuth           = -32401 // authentication / authorization failure
	FaultQuota          = -32402 // quota exhausted
	FaultUnavailable    = -32503 // server temporarily unavailable (draining, overloaded); safe to retry
)

// Fault is an XML-RPC fault: the remote peer executed the call and reports
// a structured error. Fault implements error so handlers can return one
// directly and clients can errors.As it out of a Call failure.
type Fault struct {
	Code    int
	Message string
}

// NewFault builds a fault with a formatted message.
func NewFault(code int, format string, args ...any) *Fault {
	return &Fault{Code: code, Message: fmt.Sprintf(format, args...)}
}

func (f *Fault) Error() string {
	return fmt.Sprintf("xmlrpc fault %d: %s", f.Code, f.Message)
}

// IsFault reports whether err is (or wraps) a *Fault with the given code.
func IsFault(err error, code int) bool {
	f, ok := AsFault(err)
	return ok && f.Code == code
}

// AsFault extracts a *Fault from err's chain.
func AsFault(err error) (*Fault, bool) {
	for err != nil {
		if f, ok := err.(*Fault); ok {
			return f, true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return nil, false
		}
		err = u.Unwrap()
	}
	return nil, false
}
