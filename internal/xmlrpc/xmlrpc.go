// Package xmlrpc implements the XML-RPC wire protocol on top of the
// standard library (encoding/xml, net/http).
//
// The Clarens framework that hosts every GAE service speaks XML-RPC, so
// this package is the transport substrate of the whole reproduction: the
// steering, job-monitoring and estimator services are all exposed through
// it, and Figure 6's response-time measurements exercise this code path
// end to end.
//
// Supported types follow the XML-RPC specification:
//
//	Go                      XML-RPC
//	int, int8..int64        <int> / <i4>  (must fit in 32 bits on the wire)
//	bool                    <boolean>
//	string                  <string>
//	float32, float64        <double>
//	time.Time               <dateTime.iso8601>
//	[]byte                  <base64>
//	map[string]any          <struct>
//	[]any                   <array>
//	nil                     <nil/> (common extension, accepted and emitted)
//
// Decoded values use the canonical Go types int, bool, string, float64,
// time.Time, []byte, map[string]any and []any.
package xmlrpc

import "errors"

// ErrUnsupportedType is returned when a Go value cannot be represented as
// an XML-RPC value.
var ErrUnsupportedType = errors.New("xmlrpc: unsupported type")

// MaxRequestBytes bounds the size of a request body the server will parse;
// oversized requests produce a fault rather than unbounded memory use.
const MaxRequestBytes = 8 << 20
