package xmlrpc

import (
	"encoding/base64"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Request is a decoded XML-RPC method call.
type Request struct {
	Method string
	Args   []any
}

// DecodeRequest parses a <methodCall> document.
func DecodeRequest(r io.Reader) (*Request, error) {
	d := xml.NewDecoder(r)
	if err := expectStart(d, "methodCall"); err != nil {
		return nil, err
	}
	req := &Request{}
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlrpc: truncated methodCall: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "methodName":
				name, err := readCharData(d, "methodName")
				if err != nil {
					return nil, err
				}
				req.Method = strings.TrimSpace(name)
			case "params":
				args, err := decodeParams(d)
				if err != nil {
					return nil, err
				}
				req.Args = args
			default:
				if err := d.Skip(); err != nil {
					return nil, err
				}
			}
		case xml.EndElement:
			if t.Name.Local == "methodCall" {
				if req.Method == "" {
					return nil, fmt.Errorf("xmlrpc: methodCall missing methodName")
				}
				return req, nil
			}
		}
	}
}

// DecodeResponse parses a <methodResponse> document, returning the result
// value or a *Fault as the error.
func DecodeResponse(r io.Reader) (any, error) {
	d := xml.NewDecoder(r)
	if err := expectStart(d, "methodResponse"); err != nil {
		return nil, err
	}
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlrpc: truncated methodResponse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "params":
				args, err := decodeParams(d)
				if err != nil {
					return nil, err
				}
				if len(args) != 1 {
					return nil, fmt.Errorf("xmlrpc: response carries %d params, want 1", len(args))
				}
				return args[0], nil
			case "fault":
				return nil, decodeFault(d)
			default:
				if err := d.Skip(); err != nil {
					return nil, err
				}
			}
		case xml.EndElement:
			if t.Name.Local == "methodResponse" {
				return nil, fmt.Errorf("xmlrpc: empty methodResponse")
			}
		}
	}
}

// decodeParams consumes the contents of an already-opened <params> element.
func decodeParams(d *xml.Decoder) ([]any, error) {
	var args []any
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlrpc: truncated params: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "param" {
				return nil, fmt.Errorf("xmlrpc: unexpected <%s> in params", t.Name.Local)
			}
			v, err := decodeParam(d)
			if err != nil {
				return nil, err
			}
			args = append(args, v)
		case xml.EndElement:
			if t.Name.Local == "params" {
				return args, nil
			}
		}
	}
}

// decodeParam consumes an already-opened <param> element.
func decodeParam(d *xml.Decoder) (any, error) {
	var val any
	seen := false
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlrpc: truncated param: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "value" {
				return nil, fmt.Errorf("xmlrpc: unexpected <%s> in param", t.Name.Local)
			}
			val, err = decodeValue(d)
			if err != nil {
				return nil, err
			}
			seen = true
		case xml.EndElement:
			if t.Name.Local == "param" {
				if !seen {
					return nil, fmt.Errorf("xmlrpc: param without value")
				}
				return val, nil
			}
		}
	}
}

// decodeValue consumes the contents of an already-opened <value> element
// through its matching end tag.
func decodeValue(d *xml.Decoder) (any, error) {
	var text strings.Builder
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlrpc: truncated value: %w", err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			text.Write(t)
		case xml.StartElement:
			v, err := decodeTyped(d, t.Name.Local)
			if err != nil {
				return nil, err
			}
			if err := consumeEnd(d, "value"); err != nil {
				return nil, err
			}
			return v, nil
		case xml.EndElement:
			if t.Name.Local == "value" {
				// Untyped <value>text</value> is a string per the spec.
				return text.String(), nil
			}
		}
	}
}

// decodeTyped decodes the body of a type element such as <int> or <array>.
func decodeTyped(d *xml.Decoder, typ string) (any, error) {
	switch typ {
	case "int", "i4", "i8":
		s, err := readCharData(d, typ)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("xmlrpc: bad %s %q", typ, s)
		}
		return int(n), nil
	case "boolean":
		s, err := readCharData(d, typ)
		if err != nil {
			return nil, err
		}
		switch strings.TrimSpace(s) {
		case "1", "true":
			return true, nil
		case "0", "false":
			return false, nil
		}
		return nil, fmt.Errorf("xmlrpc: bad boolean %q", s)
	case "string":
		return readCharData(d, typ)
	case "double":
		s, err := readCharData(d, typ)
		if err != nil {
			return nil, err
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("xmlrpc: bad double %q", s)
		}
		return f, nil
	case "dateTime.iso8601":
		s, err := readCharData(d, typ)
		if err != nil {
			return nil, err
		}
		s = strings.TrimSpace(s)
		for _, layout := range []string{iso8601, time.RFC3339, "2006-01-02T15:04:05"} {
			if ts, err := time.Parse(layout, s); err == nil {
				return ts.UTC(), nil
			}
		}
		return nil, fmt.Errorf("xmlrpc: bad dateTime %q", s)
	case "base64":
		s, err := readCharData(d, typ)
		if err != nil {
			return nil, err
		}
		b, err := base64.StdEncoding.DecodeString(strings.Map(dropSpace, s))
		if err != nil {
			return nil, fmt.Errorf("xmlrpc: bad base64: %v", err)
		}
		return b, nil
	case "nil":
		if err := consumeEnd(d, "nil"); err != nil {
			return nil, err
		}
		return nil, nil
	case "array":
		return decodeArray(d)
	case "struct":
		return decodeStruct(d)
	default:
		return nil, fmt.Errorf("xmlrpc: unknown value type <%s>", typ)
	}
}

// decodeArray consumes an already-opened <array> element.
func decodeArray(d *xml.Decoder) (any, error) {
	out := []any{}
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlrpc: truncated array: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "data":
				// elements handled by the value case below
			case "value":
				v, err := decodeValue(d)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			default:
				return nil, fmt.Errorf("xmlrpc: unexpected <%s> in array", t.Name.Local)
			}
		case xml.EndElement:
			if t.Name.Local == "array" {
				return out, nil
			}
		}
	}
}

// decodeStruct consumes an already-opened <struct> element.
func decodeStruct(d *xml.Decoder) (any, error) {
	out := map[string]any{}
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlrpc: truncated struct: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "member" {
				return nil, fmt.Errorf("xmlrpc: unexpected <%s> in struct", t.Name.Local)
			}
			name, val, err := decodeMember(d)
			if err != nil {
				return nil, err
			}
			out[name] = val
		case xml.EndElement:
			if t.Name.Local == "struct" {
				return out, nil
			}
		}
	}
}

func decodeMember(d *xml.Decoder) (string, any, error) {
	var name string
	var val any
	haveName, haveVal := false, false
	for {
		tok, err := d.Token()
		if err != nil {
			return "", nil, fmt.Errorf("xmlrpc: truncated member: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "name":
				name, err = readCharData(d, "name")
				if err != nil {
					return "", nil, err
				}
				haveName = true
			case "value":
				val, err = decodeValue(d)
				if err != nil {
					return "", nil, err
				}
				haveVal = true
			default:
				return "", nil, fmt.Errorf("xmlrpc: unexpected <%s> in member", t.Name.Local)
			}
		case xml.EndElement:
			if t.Name.Local == "member" {
				if !haveName || !haveVal {
					return "", nil, fmt.Errorf("xmlrpc: incomplete struct member")
				}
				return name, val, nil
			}
		}
	}
}

// decodeFault consumes an already-opened <fault> element and returns the
// contained *Fault.
func decodeFault(d *xml.Decoder) error {
	for {
		tok, err := d.Token()
		if err != nil {
			return fmt.Errorf("xmlrpc: truncated fault: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "value" {
				return fmt.Errorf("xmlrpc: unexpected <%s> in fault", t.Name.Local)
			}
			v, err := decodeValue(d)
			if err != nil {
				return err
			}
			m, ok := v.(map[string]any)
			if !ok {
				return fmt.Errorf("xmlrpc: fault value is %T, want struct", v)
			}
			f := &Fault{}
			if c, ok := m["faultCode"].(int); ok {
				f.Code = c
			}
			if s, ok := m["faultString"].(string); ok {
				f.Message = s
			}
			return f
		case xml.EndElement:
			if t.Name.Local == "fault" {
				return fmt.Errorf("xmlrpc: empty fault")
			}
		}
	}
}

// expectStart advances to the first start element, which must be <name>.
func expectStart(d *xml.Decoder, name string) error {
	for {
		tok, err := d.Token()
		if err != nil {
			return fmt.Errorf("xmlrpc: reading document: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != name {
				return fmt.Errorf("xmlrpc: root element <%s>, want <%s>", t.Name.Local, name)
			}
			return nil
		case xml.ProcInst, xml.CharData, xml.Comment, xml.Directive:
			// skip prologue
		default:
			return fmt.Errorf("xmlrpc: unexpected token %T before <%s>", tok, name)
		}
	}
}

// readCharData reads the character content of the current element through
// its end tag.
func readCharData(d *xml.Decoder, name string) (string, error) {
	var sb strings.Builder
	for {
		tok, err := d.Token()
		if err != nil {
			return "", fmt.Errorf("xmlrpc: truncated <%s>: %w", name, err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			sb.Write(t)
		case xml.EndElement:
			if t.Name.Local == name {
				return sb.String(), nil
			}
		case xml.StartElement:
			return "", fmt.Errorf("xmlrpc: unexpected <%s> inside <%s>", t.Name.Local, name)
		}
	}
}

// consumeEnd reads tokens until the end tag of name, skipping whitespace.
func consumeEnd(d *xml.Decoder, name string) error {
	for {
		tok, err := d.Token()
		if err != nil {
			return fmt.Errorf("xmlrpc: seeking </%s>: %w", name, err)
		}
		switch t := tok.(type) {
		case xml.EndElement:
			if t.Name.Local == name {
				return nil
			}
		case xml.CharData:
			// ignore whitespace between tags
		case xml.StartElement:
			return fmt.Errorf("xmlrpc: unexpected <%s> before </%s>", t.Name.Local, name)
		}
	}
}

func dropSpace(r rune) rune {
	switch r {
	case ' ', '\t', '\n', '\r':
		return -1
	}
	return r
}
