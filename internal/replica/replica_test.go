package replica

import (
	"testing"
	"time"

	"repro/internal/estimator"
	"repro/internal/simgrid"
)

func TestRegisterAndLocations(t *testing.T) {
	c := NewCatalog()
	if err := c.Register("run1.raw", "cern", 800); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("run1.raw", "caltech", 800); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("run2.raw", "cern", 400); err != nil {
		t.Fatal(err)
	}
	locs := c.Locations("run1.raw")
	if len(locs) != 2 || locs[0].Site != "caltech" || locs[1].Site != "cern" {
		t.Fatalf("Locations = %+v", locs)
	}
	if !c.Has("run1.raw", "cern") || c.Has("run1.raw", "nust") || c.Has("ghost", "cern") {
		t.Fatal("Has broken")
	}
	ds := c.Datasets()
	if len(ds) != 2 || ds[0] != "run1.raw" || ds[1] != "run2.raw" {
		t.Fatalf("Datasets = %v", ds)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestRegisterValidation(t *testing.T) {
	c := NewCatalog()
	if err := c.Register("", "s", 1); err == nil {
		t.Error("empty dataset accepted")
	}
	if err := c.Register("d", "", 1); err == nil {
		t.Error("empty site accepted")
	}
	if err := c.Register("d", "s", -1); err == nil {
		t.Error("negative size accepted")
	}
}

func TestUnregister(t *testing.T) {
	c := NewCatalog()
	c.Register("d", "a", 10)
	c.Register("d", "b", 10)
	if !c.Unregister("d", "a") {
		t.Fatal("Unregister existing = false")
	}
	if c.Unregister("d", "a") {
		t.Fatal("double Unregister = true")
	}
	if c.Unregister("ghost", "a") {
		t.Fatal("Unregister of phantom dataset = true")
	}
	// Removing the last replica removes the dataset.
	c.Unregister("d", "b")
	if c.Len() != 0 {
		t.Fatalf("Len after full unregister = %d", c.Len())
	}
}

// gridFixture: three sites; b is close to a (fast link), c is far (slow).
func gridFixture() (*simgrid.Grid, *estimator.TransferEstimator) {
	g := simgrid.NewGrid(time.Second, 1)
	for _, n := range []string{"a", "b", "c"} {
		g.AddSite(n)
	}
	g.Network.Connect("a", "b", simgrid.Link{BandwidthMBps: 100})
	g.Network.Connect("a", "c", simgrid.Link{BandwidthMBps: 1})
	g.Network.Connect("b", "c", simgrid.Link{BandwidthMBps: 1})
	return g, &estimator.TransferEstimator{Network: g.Network}
}

func TestBestPrefersLocalReplica(t *testing.T) {
	_, te := gridFixture()
	c := NewCatalog()
	c.Register("d", "a", 100)
	c.Register("d", "b", 100)
	loc, sec, err := c.Best(te, "d", "b")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Site != "b" || sec != 0 {
		t.Fatalf("Best = %+v, %v", loc, sec)
	}
}

func TestBestPicksClosestRemote(t *testing.T) {
	_, te := gridFixture()
	c := NewCatalog()
	c.Register("d", "b", 100) // 100MB at 100MB/s from a → 1s
	c.Register("d", "c", 100) // 100MB at 1MB/s from a → 100s
	loc, sec, err := c.Best(te, "d", "a")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Site != "b" {
		t.Fatalf("Best chose %s", loc.Site)
	}
	if sec < 0.9 || sec > 1.1 {
		t.Fatalf("transfer estimate = %v", sec)
	}
}

func TestBestSkipsUnreachableReplicas(t *testing.T) {
	g, te := gridFixture()
	g.AddSite("island") // no links
	c := NewCatalog()
	c.Register("d", "island", 50)
	c.Register("d", "c", 50)
	loc, _, err := c.Best(te, "d", "a")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Site != "c" {
		t.Fatalf("Best = %+v", loc)
	}
	// Only unreachable replicas: error.
	c2 := NewCatalog()
	c2.Register("d", "island", 50)
	if _, _, err := c2.Best(te, "d", "a"); err == nil {
		t.Fatal("unreachable-only Best succeeded")
	}
}

func TestBestErrors(t *testing.T) {
	_, te := gridFixture()
	c := NewCatalog()
	if _, _, err := c.Best(te, "ghost", "a"); err == nil {
		t.Fatal("Best of unknown dataset succeeded")
	}
}

func TestBestWithoutEstimatorIsDeterministic(t *testing.T) {
	c := NewCatalog()
	c.Register("d", "zeta", 10)
	c.Register("d", "alpha", 10)
	loc, sec, err := c.Best(nil, "d", "other")
	if err != nil || loc.Site != "alpha" || sec != 0 {
		t.Fatalf("Best(nil) = %+v, %v, %v", loc, sec, err)
	}
}
