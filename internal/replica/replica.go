// Package replica implements a replica catalog: the data-grid component
// the paper's introduction requires of the distributed software system —
// "to identify where the requested data is located, to determine the best
// and closest available locations" — before jobs can be placed near their
// data.
//
// The catalog maps dataset names to the sites holding replicas. The
// scheduler consults it when a task's input names a dataset without a
// fixed source: each candidate replica is scored by measured transfer
// time to the execution site (the estimator service's iperf-style probe),
// and the closest one is staged. New replicas created by staging and by
// job outputs are registered back, so the data distribution evolves with
// the workload.
package replica

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/estimator"
)

// Location is one replica of a dataset.
type Location struct {
	Dataset string
	Site    string
	SizeMB  float64
}

// Catalog is a concurrency-safe replica catalog.
type Catalog struct {
	mu   sync.RWMutex
	sets map[string]map[string]float64 // dataset → site → size
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{sets: make(map[string]map[string]float64)}
}

// Register records a replica of dataset at site.
func (c *Catalog) Register(dataset, site string, sizeMB float64) error {
	if dataset == "" || site == "" {
		return fmt.Errorf("replica: empty dataset or site")
	}
	if sizeMB < 0 {
		return fmt.Errorf("replica: negative size for %q", dataset)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.sets[dataset]
	if !ok {
		m = make(map[string]float64)
		c.sets[dataset] = m
	}
	m[site] = sizeMB
	return nil
}

// Unregister removes a replica; it reports whether it existed.
func (c *Catalog) Unregister(dataset, site string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.sets[dataset]
	if !ok {
		return false
	}
	if _, ok := m[site]; !ok {
		return false
	}
	delete(m, site)
	if len(m) == 0 {
		delete(c.sets, dataset)
	}
	return true
}

// Locations lists a dataset's replicas sorted by site.
func (c *Catalog) Locations(dataset string) []Location {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m := c.sets[dataset]
	out := make([]Location, 0, len(m))
	for site, size := range m {
		out = append(out, Location{Dataset: dataset, Site: site, SizeMB: size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Has reports whether a replica of dataset exists at site.
func (c *Catalog) Has(dataset, site string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.sets[dataset][site]
	return ok
}

// Datasets lists the catalogued dataset names, sorted.
func (c *Catalog) Datasets() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.sets))
	for d := range c.sets {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of catalogued datasets.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.sets)
}

// Best selects the replica of dataset with the lowest estimated transfer
// time to dstSite, using the estimator's bandwidth probe. A replica
// already at dstSite wins immediately with zero cost. Ties break by site
// name.
func (c *Catalog) Best(te *estimator.TransferEstimator, dataset, dstSite string) (Location, float64, error) {
	locs := c.Locations(dataset)
	if len(locs) == 0 {
		return Location{}, 0, fmt.Errorf("replica: no replicas of %q", dataset)
	}
	for _, l := range locs {
		if l.Site == dstSite {
			return l, 0, nil
		}
	}
	if te == nil {
		// Without an estimator, fall back to the first (name-ordered)
		// replica — deterministic, if not optimal.
		return locs[0], 0, nil
	}
	var best Location
	bestSec := 0.0
	found := false
	for _, l := range locs {
		est, err := te.Estimate(l.Site, dstSite, l.SizeMB)
		if err != nil {
			continue // unreachable replica
		}
		if !found || est.Seconds < bestSec {
			best, bestSec, found = l, est.Seconds, true
		}
	}
	if !found {
		return Location{}, 0, fmt.Errorf("replica: no reachable replica of %q from %s", dataset, dstSite)
	}
	return best, bestSec, nil
}
