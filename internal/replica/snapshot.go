package replica

import (
	"repro/internal/durable"
)

// Export serializes the catalog for the durable snapshot codec, sorted by
// dataset then site — the canonical order the recovery suite compares.
func (c *Catalog) Export() []durable.ReplicaLocation {
	var out []durable.ReplicaLocation
	for _, d := range c.Datasets() {
		for _, l := range c.Locations(d) {
			out = append(out, durable.ReplicaLocation{Dataset: l.Dataset, Site: l.Site, SizeMB: l.SizeMB})
		}
	}
	return out
}

// Restore overwrites the catalog with the exported entries.
func (c *Catalog) Restore(locs []durable.ReplicaLocation) error {
	c.mu.Lock()
	c.sets = make(map[string]map[string]float64)
	c.mu.Unlock()
	for _, l := range locs {
		if err := c.Register(l.Dataset, l.Site, l.SizeMB); err != nil {
			return err
		}
	}
	return nil
}
