package quota

import (
	"sort"

	"repro/internal/durable"
)

// Export serializes user balances (sorted by user) and the charge ledger
// (in charge order) for the durable snapshot codec. Site rates are
// deployment configuration and are not exported.
func (s *Service) Export() durable.QuotaState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := durable.QuotaState{}
	users := make([]string, 0, len(s.balances))
	for u := range s.balances {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		st.Balances = append(st.Balances, durable.QuotaBalance{User: u, Credits: s.balances[u]})
	}
	for _, c := range s.ledger {
		st.Ledger = append(st.Ledger, durable.QuotaCharge{
			Time: c.Time, User: c.User, Site: c.Site,
			CPUSeconds: c.CPUSeconds, MB: c.MB,
			Credits: c.Credits, TransferCredits: c.TransferCredits, Note: c.Note,
		})
	}
	return st
}

// Restore overwrites balances and ledger from an exported state without
// invoking charge listeners: restored history was already propagated (the
// fair-share bridge's view comes back through its own snapshot).
func (s *Service) Restore(st durable.QuotaState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.balances = make(map[string]float64, len(st.Balances))
	for _, b := range st.Balances {
		s.balances[b.User] = b.Credits
	}
	s.ledger = s.ledger[:0]
	for _, c := range st.Ledger {
		s.ledger = append(s.ledger, Charge{
			Time: c.Time, User: c.User, Site: c.Site,
			CPUSeconds: c.CPUSeconds, MB: c.MB,
			Credits: c.Credits, TransferCredits: c.TransferCredits, Note: c.Note,
		})
	}
}
