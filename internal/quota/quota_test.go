package quota

import (
	"errors"
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)

func TestRatesAndCost(t *testing.T) {
	s := NewService()
	s.SetRate("caltech", Rate{CPUSecond: 0.01, TransferMB: 0.001})
	r, err := s.Rate("caltech")
	if err != nil || r.CPUSecond != 0.01 {
		t.Fatalf("Rate = %+v, %v", r, err)
	}
	if _, err := s.Rate("nowhere"); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("unknown site error = %v", err)
	}
	c, err := s.Cost("caltech", 1000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-10.5) > 1e-9 {
		t.Fatalf("Cost = %v", c)
	}
	if _, err := s.Cost("caltech", -1, 0); err == nil {
		t.Fatal("negative usage accepted")
	}
}

func TestSetRateNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative rate accepted")
		}
	}()
	NewService().SetRate("x", Rate{CPUSecond: -1})
}

func TestGrantBalanceCharge(t *testing.T) {
	s := NewService()
	s.SetRate("nust", Rate{CPUSecond: 0.02})
	s.Grant("alice", 100)
	if b, _ := s.Balance("alice"); b != 100 {
		t.Fatalf("balance = %v", b)
	}
	if _, err := s.Balance("ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown user error = %v", err)
	}
	cost, err := s.Charge("alice", "nust", 1000, 0, t0, "job 1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-20) > 1e-9 {
		t.Fatalf("charge = %v", cost)
	}
	if b, _ := s.Balance("alice"); math.Abs(b-80) > 1e-9 {
		t.Fatalf("post-charge balance = %v", b)
	}
	// Overdraw.
	if _, err := s.Charge("alice", "nust", 1e6, 0, t0, "huge"); !errors.Is(err, ErrInsufficientCredit) {
		t.Fatalf("overdraw error = %v", err)
	}
	if b, _ := s.Balance("alice"); math.Abs(b-80) > 1e-9 {
		t.Fatalf("failed charge mutated balance: %v", b)
	}
	// Unknown user / site.
	if _, err := s.Charge("ghost", "nust", 1, 0, t0, ""); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("ghost charge error = %v", err)
	}
	if _, err := s.Charge("alice", "mars", 1, 0, t0, ""); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("mars charge error = %v", err)
	}
}

func TestGrantNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative grant accepted")
		}
	}()
	NewService().Grant("x", -5)
}

func TestCheapestSite(t *testing.T) {
	s := NewService()
	s.SetRate("expensive", Rate{CPUSecond: 0.10})
	s.SetRate("cheap", Rate{CPUSecond: 0.01})
	s.SetRate("transferheavy", Rate{CPUSecond: 0.01, TransferMB: 10})
	site, cost, err := s.CheapestSite([]string{"expensive", "cheap", "transferheavy"}, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if site != "cheap" || math.Abs(cost-1) > 1e-9 {
		t.Fatalf("cheapest = %s @ %v", site, cost)
	}
	// Transfer volume can flip the answer.
	site, _, err = s.CheapestSite([]string{"cheap", "expensive"}, 1, 0)
	if err != nil || site != "cheap" {
		t.Fatalf("cpu-only cheapest = %s, %v", site, err)
	}
	// Unknown candidates are skipped; all-unknown errors.
	site, _, err = s.CheapestSite([]string{"mars", "cheap"}, 10, 0)
	if err != nil || site != "cheap" {
		t.Fatalf("partial-unknown = %s, %v", site, err)
	}
	if _, _, err := s.CheapestSite([]string{"mars"}, 10, 0); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("all-unknown error = %v", err)
	}
	if _, _, err := s.CheapestSite(nil, 10, 0); err == nil {
		t.Fatal("empty candidates accepted")
	}
}

func TestCheapestSiteTieBreaksByName(t *testing.T) {
	s := NewService()
	s.SetRate("zeta", Rate{CPUSecond: 0.01})
	s.SetRate("alpha", Rate{CPUSecond: 0.01})
	site, _, err := s.CheapestSite([]string{"zeta", "alpha"}, 100, 0)
	if err != nil || site != "alpha" {
		t.Fatalf("tie break = %s, %v", site, err)
	}
}

func TestLedger(t *testing.T) {
	s := NewService()
	s.SetRate("s", Rate{CPUSecond: 1})
	s.Grant("alice", 100)
	s.Grant("bob", 100)
	s.Charge("alice", "s", 10, 0, t0, "a1")
	s.Charge("bob", "s", 20, 0, t0.Add(time.Minute), "b1")
	s.Charge("alice", "s", 5, 0, t0.Add(2*time.Minute), "a2")
	all := s.Ledger("")
	if len(all) != 3 {
		t.Fatalf("ledger = %d entries", len(all))
	}
	alice := s.Ledger("alice")
	if len(alice) != 2 || alice[0].Note != "a1" || alice[1].Note != "a2" {
		t.Fatalf("alice ledger = %+v", alice)
	}
	if alice[0].Credits != 10 {
		t.Fatalf("charge credits = %v", alice[0].Credits)
	}
}

func TestSitesSorted(t *testing.T) {
	s := NewService()
	s.SetRate("z", Rate{})
	s.SetRate("a", Rate{})
	got := s.Sites()
	if len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Fatalf("Sites = %v", got)
	}
}

func TestSubscribeNotifiesSuccessfulChargesOnly(t *testing.T) {
	s := NewService()
	s.SetRate("caltech", Rate{CPUSecond: 0.01, TransferMB: 0.001})
	s.SetRate("nust", Rate{CPUSecond: 0.05})
	s.Grant("alice", 100)
	var got []Charge
	s.Subscribe(func(c Charge) { got = append(got, c) })

	if _, err := s.Charge("alice", "caltech", 1000, 500, t0, "job 1"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("listener calls = %d", len(got))
	}
	c := got[0]
	if c.User != "alice" || c.Site != "caltech" || c.CPUSeconds != 1000 || c.MB != 500 {
		t.Fatalf("charge = %+v", c)
	}
	if math.Abs(c.Credits-10.5) > 1e-9 {
		t.Fatalf("credits = %v", c.Credits)
	}
	// The transfer slice is priced at billing time and carried on the
	// entry, so subscribers never re-derive it from mutable rates.
	if math.Abs(c.TransferCredits-0.5) > 1e-9 {
		t.Fatalf("transfer credits = %v", c.TransferCredits)
	}

	// Failed charges never notify: overdraw, unknown user, unknown site.
	if _, err := s.Charge("alice", "nust", 1e6, 0, t0, ""); !errors.Is(err, ErrInsufficientCredit) {
		t.Fatalf("overdraw = %v", err)
	}
	if _, err := s.Charge("ghost", "nust", 1, 0, t0, ""); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("ghost = %v", err)
	}
	if _, err := s.Charge("alice", "mars", 1, 0, t0, ""); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("mars = %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("failed charges notified: %d calls", len(got))
	}

	// Per-site rates produce per-site credits in the same ledger.
	if _, err := s.Charge("alice", "nust", 100, 0, t0, "job 2"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || math.Abs(got[1].Credits-5) > 1e-9 {
		t.Fatalf("nust charge = %+v", got[len(got)-1])
	}
}

func TestSubscribeNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil listener accepted")
		}
	}()
	NewService().Subscribe(nil)
}

func TestSubscribeListenerMayCallBack(t *testing.T) {
	s := NewService()
	s.SetRate("s", Rate{CPUSecond: 1})
	s.Grant("alice", 100)
	var seen float64
	s.Subscribe(func(c Charge) {
		// Listeners run outside the lock, so reading the service back is
		// legal (the fair-share bridge does exactly this kind of thing).
		b, err := s.Balance(c.User)
		if err != nil {
			t.Errorf("Balance in listener: %v", err)
		}
		seen = b
	})
	if _, err := s.Charge("alice", "s", 30, 0, t0, ""); err != nil {
		t.Fatal(err)
	}
	if math.Abs(seen-70) > 1e-9 {
		t.Fatalf("balance seen in listener = %v", seen)
	}
}
