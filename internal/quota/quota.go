// Package quota implements the Quota and Accounting Service. The paper
// describes it as "currently, just a trivial prototype" that the Steering
// Service's Optimizer contacts "to find the cheapest site for job
// execution"; this implementation keeps that query while adding the
// bookkeeping a production deployment needs: per-site charge rates,
// per-user credit balances, charge records, and quota enforcement.
package quota

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrInsufficientCredit is returned when a charge would overdraw a user.
var ErrInsufficientCredit = fmt.Errorf("quota: insufficient credit")

// ErrUnknownSite is returned for sites without a configured rate.
var ErrUnknownSite = fmt.Errorf("quota: unknown site")

// ErrUnknownUser is returned for users without an account.
var ErrUnknownUser = fmt.Errorf("quota: unknown user")

// Rate is a site's pricing: credits per CPU-second and per transferred MB.
type Rate struct {
	CPUSecond  float64
	TransferMB float64
}

// price is the single pricing formula shared by quotes (Cost,
// CheapestSite) and billing (Charge), so the two can never diverge.
func (r Rate) price(cpuSeconds, mb float64) float64 {
	return cpuSeconds*r.CPUSecond + mb*r.TransferMB
}

// Charge is one accounting ledger entry.
type Charge struct {
	Time       time.Time
	User       string
	Site       string
	CPUSeconds float64
	MB         float64
	Credits    float64
	// TransferCredits is the slice of Credits attributable to data
	// movement, priced at the rate in force when the charge was billed —
	// ledger subscribers (the fair-share bridge) read it instead of
	// re-deriving it from rates that may have changed since.
	TransferCredits float64
	Note            string
}

// Service is the quota and accounting service.
type Service struct {
	mu        sync.Mutex
	rates     map[string]Rate
	balances  map[string]float64
	ledger    []Charge
	listeners []func(Charge)
}

// NewService creates an empty service.
func NewService() *Service {
	return &Service{
		rates:    make(map[string]Rate),
		balances: make(map[string]float64),
	}
}

// SetRate configures a site's pricing.
func (s *Service) SetRate(site string, r Rate) {
	if r.CPUSecond < 0 || r.TransferMB < 0 {
		panic("quota: negative rate")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rates[site] = r
}

// Rate returns a site's pricing.
func (s *Service) Rate(site string) (Rate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rates[site]
	if !ok {
		return Rate{}, fmt.Errorf("%w: %s", ErrUnknownSite, site)
	}
	return r, nil
}

// Grant creates the user account if needed and adds credits.
func (s *Service) Grant(user string, credits float64) {
	if credits < 0 {
		panic("quota: negative grant")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.balances[user] += credits
}

// Balance returns the user's remaining credits.
func (s *Service) Balance(user string) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.balances[user]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownUser, user)
	}
	return b, nil
}

// Cost quotes the credits a job of cpuSeconds plus mb of transfer would
// cost at site, without charging.
func (s *Service) Cost(site string, cpuSeconds, mb float64) (float64, error) {
	r, err := s.Rate(site)
	if err != nil {
		return 0, err
	}
	if cpuSeconds < 0 || mb < 0 {
		return 0, fmt.Errorf("quota: negative usage")
	}
	return r.price(cpuSeconds, mb), nil
}

// CheapestSite returns the site from candidates with the lowest quoted
// cost for the given usage — the Optimizer's "cheap execution" query.
// Ties break by site name for determinism.
func (s *Service) CheapestSite(candidates []string, cpuSeconds, mb float64) (string, float64, error) {
	if len(candidates) == 0 {
		return "", 0, fmt.Errorf("quota: no candidate sites")
	}
	sorted := append([]string(nil), candidates...)
	sort.Strings(sorted)
	bestSite, bestCost := "", 0.0
	for _, site := range sorted {
		c, err := s.Cost(site, cpuSeconds, mb)
		if err != nil {
			continue // unknown sites are not candidates
		}
		if bestSite == "" || c < bestCost {
			bestSite, bestCost = site, c
		}
	}
	if bestSite == "" {
		return "", 0, fmt.Errorf("%w: none of %v", ErrUnknownSite, candidates)
	}
	return bestSite, bestCost, nil
}

// Subscribe registers a listener invoked synchronously after every
// successful Charge. The fair-share manager subscribes here so charged
// usage folds into effective priorities — the paper's "trivial prototype"
// accounting service becomes a fairness input. Listeners run outside the
// service lock and may call back into the service.
func (s *Service) Subscribe(fn func(Charge)) {
	if fn == nil {
		panic("quota: Subscribe with nil listener")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.listeners = append(s.listeners, fn)
}

// Charge debits the user for usage at site and records a ledger entry.
func (s *Service) Charge(user, site string, cpuSeconds, mb float64, at time.Time, note string) (float64, error) {
	if cpuSeconds < 0 || mb < 0 {
		return 0, fmt.Errorf("quota: negative usage")
	}
	s.mu.Lock()
	r, ok := s.rates[site]
	if !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrUnknownSite, site)
	}
	transfer := r.price(0, mb)
	cost := r.price(cpuSeconds, mb)
	bal, ok := s.balances[user]
	if !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrUnknownUser, user)
	}
	if bal < cost {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: user %s has %.2f, needs %.2f", ErrInsufficientCredit, user, bal, cost)
	}
	s.balances[user] = bal - cost
	entry := Charge{
		Time: at, User: user, Site: site,
		CPUSeconds: cpuSeconds, MB: mb,
		Credits: cost, TransferCredits: transfer, Note: note,
	}
	s.ledger = append(s.ledger, entry)
	listeners := make([]func(Charge), len(s.listeners))
	copy(listeners, s.listeners)
	s.mu.Unlock()
	for _, fn := range listeners {
		fn(entry)
	}
	return cost, nil
}

// Ledger returns a copy of the charge history, optionally filtered by
// user ("" matches all).
func (s *Service) Ledger(user string) []Charge {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Charge
	for _, c := range s.ledger {
		if user == "" || c.User == user {
			out = append(out, c)
		}
	}
	return out
}

// Sites lists the sites with configured rates, sorted.
func (s *Service) Sites() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.rates))
	for site := range s.rates {
		out = append(out, site)
	}
	sort.Strings(out)
	return out
}
