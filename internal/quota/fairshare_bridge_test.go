package quota_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/fairshare"
	"repro/internal/quota"
	"repro/internal/vtime"
)

// TestChargesFlowIntoFairShare exercises the accounting bridge: every
// successful quota charge folds its CPU-seconds into the fair-share
// manager, so tenants who buy lots of computation see their effective
// priority sink like tenants who queue lots of jobs.
func TestChargesFlowIntoFairShare(t *testing.T) {
	clock := vtime.NewSimClock(time.Time{})
	fs := fairshare.NewManager(fairshare.Config{Clock: clock, HalfLife: -1})
	q := quota.NewService()
	q.SetRate("caltech", quota.Rate{CPUSecond: 0.01})
	q.Grant("alice", 1000)
	q.Grant("bob", 1000)
	q.Subscribe(func(c quota.Charge) {
		fs.RecordUsage(c.User, c.Site, c.CPUSeconds)
	})

	if _, err := q.Charge("alice", "caltech", 600, 0, clock.Now(), "analysis"); err != nil {
		t.Fatal(err)
	}
	if u := fs.Usage("alice"); math.Abs(u-600) > 1e-9 {
		t.Fatalf("alice usage = %v", u)
	}
	if u := fs.SiteUsage("alice", "caltech"); math.Abs(u-600) > 1e-9 {
		t.Fatalf("alice site usage = %v", u)
	}
	if ea, eb := fs.EffectivePriority("alice"), fs.EffectivePriority("bob"); ea >= eb {
		t.Fatalf("charged tenant not deprioritized: alice %v, bob %v", ea, eb)
	}
}
