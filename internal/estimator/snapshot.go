package estimator

import (
	"sort"

	"repro/internal/durable"
)

// Export serializes the history's records in insertion order for the
// durable snapshot codec.
func (h *History) Export() []durable.HistoryRecord {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var out []durable.HistoryRecord
	for _, r := range h.records {
		out = append(out, durable.HistoryRecord{
			Account: r.Account, Login: r.Login, Partition: r.Partition,
			Nodes: r.Nodes, JobType: r.JobType, Succeeded: r.Succeeded,
			ReqHours: r.ReqHours, Queue: r.Queue,
			CPURate: r.CPURate, IdleRate: r.IdleRate,
			Submitted: r.Submitted, Started: r.Started, Completed: r.Completed,
			RuntimeSeconds: r.RuntimeSeconds,
		})
	}
	return out
}

// Restore replaces the history's contents with exported records,
// re-applying the capacity bound.
func (h *History) Restore(records []durable.HistoryRecord) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.records = h.records[:0]
	for _, r := range records {
		h.records = append(h.records, TaskRecord{
			Account: r.Account, Login: r.Login, Partition: r.Partition,
			Nodes: r.Nodes, JobType: r.JobType, Succeeded: r.Succeeded,
			ReqHours: r.ReqHours, Queue: r.Queue,
			CPURate: r.CPURate, IdleRate: r.IdleRate,
			Submitted: r.Submitted, Started: r.Started, Completed: r.Completed,
			RuntimeSeconds: r.RuntimeSeconds,
		})
	}
	if h.cap > 0 && len(h.records) > h.cap {
		h.records = h.records[len(h.records)-h.cap:]
	}
}

// Export serializes the estimate database sorted by pool then job ID —
// the canonical order the recovery suite compares.
func (db *EstimateDB) Export() []durable.JobEstimate {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]durable.JobEstimate, 0, len(db.estimates))
	for k, v := range db.estimates {
		out = append(out, durable.JobEstimate{Pool: k.pool, ID: k.id, Seconds: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pool != out[j].Pool {
			return out[i].Pool < out[j].Pool
		}
		return out[i].ID < out[j].ID
	})
	if len(out) == 0 {
		return nil
	}
	return out
}

// Restore replaces the database contents with exported estimates.
func (db *EstimateDB) Restore(estimates []durable.JobEstimate) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.estimates = make(map[dbKey]float64, len(estimates))
	for _, e := range estimates {
		db.estimates[dbKey{pool: e.Pool, id: e.ID}] = e.Seconds
	}
}
