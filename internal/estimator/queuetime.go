package estimator

import (
	"fmt"
	"sync"

	"repro/internal/condor"
)

// EstimateDB is the paper's "separate database" of per-job runtime
// estimates recorded at submission time: "The run time of each task is
// estimated at the time of task submission and is stored in a separate
// database."
type EstimateDB struct {
	mu        sync.RWMutex
	estimates map[dbKey]float64
}

// dbKey identifies a job's estimate without the per-lookup formatting
// allocation a "pool/id" string key would cost on the scheduler's
// backlog-scoring hot path.
type dbKey struct {
	pool string
	id   int
}

// NewEstimateDB creates an empty estimate database.
func NewEstimateDB() *EstimateDB {
	return &EstimateDB{estimates: make(map[dbKey]float64)}
}

// Record stores the submission-time estimate for a job.
func (db *EstimateDB) Record(pool string, id int, seconds float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.estimates[dbKey{pool: pool, id: id}] = seconds
}

// Lookup fetches a job's recorded estimate.
func (db *EstimateDB) Lookup(pool string, id int) (float64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.estimates[dbKey{pool: pool, id: id}]
	return v, ok
}

// Len returns the number of recorded estimates.
func (db *EstimateDB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.estimates)
}

// QueueTimeEstimator implements the paper's §6.2 algorithm:
//
//	(a) take the Condor ID of the input task;
//	(b) fetch from the execution service the IDs and elapsed runtimes of
//	    all tasks with priority greater than the input task;
//	(c) fetch those tasks' submission-time runtime estimates from the
//	    estimate database;
//	(d) remaining = estimate − elapsed for each, and the queue time is
//	    the sum of the remainders.
type QueueTimeEstimator struct {
	Pool *condor.Pool
	DB   *EstimateDB
	// DefaultEstimate substitutes for jobs missing from the database
	// (e.g. submitted outside the GAE path); 0 skips them.
	DefaultEstimate float64
}

// QueueEstimate carries the prediction and its inputs for transparency.
type QueueEstimate struct {
	Seconds    float64
	TasksAhead int
}

// Estimate predicts how long job id will wait before starting.
func (q *QueueTimeEstimator) Estimate(id int) (QueueEstimate, error) {
	if q.Pool == nil {
		return QueueEstimate{}, fmt.Errorf("estimator: queue estimator has no execution service")
	}
	ahead, err := q.Pool.QueueAbove(id)
	if err != nil {
		return QueueEstimate{}, fmt.Errorf("estimator: querying execution service: %w", err)
	}
	total := 0.0
	counted := 0
	for _, info := range ahead {
		est, ok := 0.0, false
		if q.DB != nil {
			est, ok = q.DB.Lookup(info.Pool, info.ID)
		}
		if !ok {
			if info.EstimatedRuntime > 0 {
				est = info.EstimatedRuntime
			} else if q.DefaultEstimate > 0 {
				est = q.DefaultEstimate
			} else {
				continue
			}
		}
		remaining := est - info.WallClock.Seconds()
		if remaining < 0 {
			remaining = 0
		}
		total += remaining
		counted++
	}
	return QueueEstimate{Seconds: total, TasksAhead: counted}, nil
}
