package estimator

import (
	"fmt"
)

// Template names the attributes that must match for two tasks to count as
// "similar". Narrow templates give precise but sparse matches; wide ones
// always match but mix unlike tasks. The estimator searches its templates
// in order and uses the first that yields enough matches — the greedy
// variant of Smith/Taylor/Foster template search.
type Template []Attribute

// Attribute is one matchable task characteristic.
type Attribute string

// Matchable attributes.
const (
	AttrQueue     Attribute = "queue"
	AttrPartition Attribute = "partition"
	AttrNodes     Attribute = "nodes"
	AttrJobType   Attribute = "job_type"
	AttrAccount   Attribute = "account"
	AttrLogin     Attribute = "login"
)

// DefaultTemplates is the search order used by the paper-scale
// experiments: most specific (queue+partition+nodes) down to queue alone,
// then the universal template.
var DefaultTemplates = []Template{
	{AttrQueue, AttrPartition, AttrNodes},
	{AttrQueue, AttrNodes},
	{AttrQueue, AttrPartition},
	{AttrQueue},
	{},
}

// matches reports whether candidate agrees with target on every template
// attribute.
func (t Template) matches(target, candidate TaskRecord) bool {
	for _, a := range t {
		switch a {
		case AttrQueue:
			if target.Queue != candidate.Queue {
				return false
			}
		case AttrPartition:
			if target.Partition != candidate.Partition {
				return false
			}
		case AttrNodes:
			if target.Nodes != candidate.Nodes {
				return false
			}
		case AttrJobType:
			if target.JobType != candidate.JobType {
				return false
			}
		case AttrAccount:
			if target.Account != candidate.Account {
				return false
			}
		case AttrLogin:
			if target.Login != candidate.Login {
				return false
			}
		}
	}
	return true
}

// Statistic selects the estimate computed over the similar set.
type Statistic int

// Statistics.
const (
	// StatAuto uses linear regression on requested CPU-hours when the fit
	// is usable, otherwise the mean — the paper computes both.
	StatAuto Statistic = iota
	StatMean
	StatRegression
	StatLast // most recent similar task's runtime
	StatMedian
)

func (s Statistic) String() string {
	switch s {
	case StatAuto:
		return "auto"
	case StatMean:
		return "mean"
	case StatRegression:
		return "regression"
	case StatLast:
		return "last"
	case StatMedian:
		return "median"
	}
	return fmt.Sprintf("statistic(%d)", int(s))
}

// RuntimeEstimate is a prediction with its provenance.
type RuntimeEstimate struct {
	Seconds    float64
	Similar    int       // size of the similar set used
	Template   Template  // template that produced the set
	Statistic  Statistic // statistic actually applied (never StatAuto)
	Regression *Regression
}

// RuntimeEstimator predicts task runtimes from a site's history.
type RuntimeEstimator struct {
	History   *History
	Templates []Template
	Statistic Statistic
	// MinSimilar is the smallest similar-set size a template may return
	// before the search falls through to the next template (default 3).
	MinSimilar int
	// MinR2 gates StatAuto's use of the regression (default 0.25).
	MinR2 float64
}

// NewRuntimeEstimator creates an estimator over hist with default
// templates and the auto statistic.
func NewRuntimeEstimator(hist *History) *RuntimeEstimator {
	return &RuntimeEstimator{
		History:    hist,
		Templates:  DefaultTemplates,
		Statistic:  StatAuto,
		MinSimilar: 3,
		MinR2:      0.25,
	}
}

// Estimate predicts the runtime of target. Only successful runs enter the
// similar set (failed tasks' runtimes do not reflect the work).
func (e *RuntimeEstimator) Estimate(target TaskRecord) (RuntimeEstimate, error) {
	if e.History == nil || e.History.Len() == 0 {
		return RuntimeEstimate{}, fmt.Errorf("estimator: empty history")
	}
	templates := e.Templates
	if len(templates) == 0 {
		templates = DefaultTemplates
	}
	minSim := e.MinSimilar
	if minSim <= 0 {
		minSim = 3
	}
	var lastNonEmpty []TaskRecord
	var lastTemplate Template
	for _, tpl := range templates {
		similar := e.History.Select(func(r TaskRecord) bool {
			return r.Succeeded && tpl.matches(target, r)
		})
		if len(similar) == 0 {
			continue
		}
		lastNonEmpty, lastTemplate = similar, tpl
		if len(similar) >= minSim {
			return e.estimateFrom(target, tpl, similar)
		}
	}
	if lastNonEmpty == nil {
		return RuntimeEstimate{}, fmt.Errorf("estimator: no similar tasks in history")
	}
	return e.estimateFrom(target, lastTemplate, lastNonEmpty)
}

func (e *RuntimeEstimator) estimateFrom(target TaskRecord, tpl Template, similar []TaskRecord) (RuntimeEstimate, error) {
	runtimes := make([]float64, len(similar))
	reqs := make([]float64, len(similar))
	for i, r := range similar {
		runtimes[i] = r.RuntimeSeconds
		reqs[i] = r.ReqHours
	}
	est := RuntimeEstimate{Similar: len(similar), Template: tpl}

	applyMean := func() error {
		m, err := Mean(runtimes)
		if err != nil {
			return err
		}
		est.Seconds, est.Statistic = m, StatMean
		return nil
	}

	switch e.Statistic {
	case StatMean:
		if err := applyMean(); err != nil {
			return est, err
		}
	case StatMedian:
		m, err := Median(runtimes)
		if err != nil {
			return est, err
		}
		est.Seconds, est.Statistic = m, StatMedian
	case StatLast:
		est.Seconds, est.Statistic = runtimes[len(runtimes)-1], StatLast
	case StatRegression:
		reg, err := LinearRegression(reqs, runtimes)
		if err != nil {
			return est, fmt.Errorf("estimator: regression unavailable: %w", err)
		}
		est.Seconds, est.Statistic, est.Regression = reg.Predict(target.ReqHours), StatRegression, &reg
	case StatAuto:
		minR2 := e.MinR2
		if minR2 <= 0 {
			minR2 = 0.25
		}
		reg, err := LinearRegression(reqs, runtimes)
		if err == nil && reg.R2 >= minR2 {
			pred := reg.Predict(target.ReqHours)
			if pred > 0 {
				est.Seconds, est.Statistic, est.Regression = pred, StatRegression, &reg
				break
			}
		}
		if err := applyMean(); err != nil {
			return est, err
		}
	default:
		return est, fmt.Errorf("estimator: unknown statistic %v", e.Statistic)
	}
	if est.Seconds < 0 {
		est.Seconds = 0
	}
	return est, nil
}
