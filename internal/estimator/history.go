// Package estimator implements the paper's Estimator Service: the runtime
// estimator (history-based statistical prediction), the queue-time
// estimator (remaining work of higher-priority tasks), and the
// file-transfer-time estimator (measured bandwidth × size).
//
// Runtime prediction follows the paper's §6.1: "History based runtime
// prediction algorithms operate on the idea that tasks with similar
// characteristics generally have similar runtimes. We maintain a history
// of tasks that have executed along with their respective runtimes. To
// estimate the runtime, we identify similar tasks in the history and then
// compute a statistical estimate (the mean and linear regression) of
// their runtimes." Similarity is defined by attribute templates in the
// style of Smith, Taylor and Foster [25], the technique the paper cites
// for the approach.
//
// History maintenance is decentralized, as in the paper: each execution
// site owns a History, and the scheduler fans out estimate requests to
// every site.
package estimator

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// TaskRecord is one completed task in the history. The fields mirror the
// SDSC Paragon accounting data the paper evaluates on: "account name;
// login name; partition...; the number of nodes...; the job type (batch or
// interactive); the job status...; the number of requested CPU hours; the
// name of the queue...; the rate of charge...; and the task's duration".
type TaskRecord struct {
	Account   string  `json:"account"`
	Login     string  `json:"login"`
	Partition string  `json:"partition"`
	Nodes     int     `json:"nodes"`
	JobType   string  `json:"job_type"` // "batch" or "interactive"
	Succeeded bool    `json:"succeeded"`
	ReqHours  float64 `json:"req_cpu_hours"` // requested CPU hours
	Queue     string  `json:"queue"`
	CPURate   float64 `json:"cpu_rate"`  // charge rate for CPU hours
	IdleRate  float64 `json:"idle_rate"` // charge rate for idle hours

	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Completed time.Time `json:"completed"`

	RuntimeSeconds float64 `json:"runtime_seconds"` // actual execution time
}

// Validate reports structural problems with a record.
func (r TaskRecord) Validate() error {
	switch {
	case r.RuntimeSeconds < 0:
		return fmt.Errorf("estimator: negative runtime %v", r.RuntimeSeconds)
	case r.Nodes < 0:
		return fmt.Errorf("estimator: negative node count %d", r.Nodes)
	case r.ReqHours < 0:
		return fmt.Errorf("estimator: negative requested hours %v", r.ReqHours)
	}
	return nil
}

// History is a bounded, concurrency-safe store of completed-task records.
type History struct {
	mu      sync.RWMutex
	records []TaskRecord
	cap     int
}

// NewHistory creates a history retaining at most cap records (FIFO
// eviction); cap <= 0 means unbounded.
func NewHistory(cap int) *History {
	return &History{cap: cap}
}

// Add appends a record, evicting the oldest when over capacity.
func (h *History) Add(r TaskRecord) error {
	if err := r.Validate(); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.records = append(h.records, r)
	if h.cap > 0 && len(h.records) > h.cap {
		h.records = h.records[len(h.records)-h.cap:]
	}
	return nil
}

// Len returns the record count.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.records)
}

// All returns a copy of the records in insertion order.
func (h *History) All() []TaskRecord {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]TaskRecord, len(h.records))
	copy(out, h.records)
	return out
}

// Select returns records matching pred, in insertion order.
func (h *History) Select(pred func(TaskRecord) bool) []TaskRecord {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var out []TaskRecord
	for _, r := range h.records {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// Save writes the history as JSON to path.
func (h *History) Save(path string) error {
	h.mu.RLock()
	data, err := json.MarshalIndent(h.records, "", "  ")
	h.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("estimator: encoding history: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load replaces the history contents from a JSON file written by Save.
func (h *History) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("estimator: reading history: %w", err)
	}
	var records []TaskRecord
	if err := json.Unmarshal(data, &records); err != nil {
		return fmt.Errorf("estimator: decoding history: %w", err)
	}
	for _, r := range records {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.records = records
	if h.cap > 0 && len(h.records) > h.cap {
		h.records = h.records[len(h.records)-h.cap:]
	}
	return nil
}
