package estimator

import (
	"fmt"
	"sort"
)

// TemplateScore is a template's cross-validated accuracy over a history.
type TemplateScore struct {
	Template  Template
	MAPE      float64 // mean |percentage error| over evaluated records
	Evaluated int     // records the template could predict
	Coverage  float64 // Evaluated / eligible records
}

// SearchTemplates evaluates candidate similarity templates by
// leave-one-out cross-validation over the history and returns them sorted
// by accuracy (lowest mean error first). This is the search step of
// Smith, Taylor and Foster's template-based prediction, which the paper
// cites as the source of its estimation technique: rather than fixing the
// attributes that define "similar tasks", the estimator can learn which
// template predicts best on the site's own workload.
//
// Records a template cannot predict (no similar tasks remain once the
// record itself is held out) are skipped; Coverage reports the fraction
// predicted. Templates that predict nothing are ranked last with an
// infinite-equivalent error.
//
// maxRecords bounds the O(n²) evaluation; 0 means at most 200.
func SearchTemplates(h *History, candidates []Template, stat Statistic, maxRecords int) ([]TemplateScore, error) {
	if h == nil || h.Len() == 0 {
		return nil, fmt.Errorf("estimator: template search over empty history")
	}
	if len(candidates) == 0 {
		candidates = DefaultTemplates
	}
	if maxRecords <= 0 {
		maxRecords = 200
	}
	all := h.All()
	var eligible []TaskRecord
	for _, r := range all {
		if r.Succeeded && r.RuntimeSeconds > 0 {
			eligible = append(eligible, r)
		}
	}
	if len(eligible) < 2 {
		return nil, fmt.Errorf("estimator: template search needs >=2 successful records, got %d", len(eligible))
	}
	if len(eligible) > maxRecords {
		eligible = eligible[len(eligible)-maxRecords:]
	}

	scores := make([]TemplateScore, 0, len(candidates))
	for _, tpl := range candidates {
		score := TemplateScore{Template: tpl}
		var sumErr float64
		for i, target := range eligible {
			// Hold target out; predict from the rest through this single
			// template.
			holdout := NewHistory(0)
			for j, r := range eligible {
				if j != i {
					_ = holdout.Add(r)
				}
			}
			e := &RuntimeEstimator{
				History:    holdout,
				Templates:  []Template{tpl},
				Statistic:  stat,
				MinSimilar: 1,
			}
			est, err := e.Estimate(target)
			if err != nil || est.Seconds <= 0 {
				continue
			}
			pct := (target.RuntimeSeconds - est.Seconds) / target.RuntimeSeconds * 100
			if pct < 0 {
				pct = -pct
			}
			sumErr += pct
			score.Evaluated++
		}
		if score.Evaluated > 0 {
			score.MAPE = sumErr / float64(score.Evaluated)
		} else {
			score.MAPE = 1e18 // effectively worst
		}
		score.Coverage = float64(score.Evaluated) / float64(len(eligible))
		scores = append(scores, score)
	}
	sort.SliceStable(scores, func(a, b int) bool { return scores[a].MAPE < scores[b].MAPE })
	return scores, nil
}

// AutoConfigure runs SearchTemplates and installs the winning template
// order (best first, then the remaining candidates in score order, with
// the universal template appended as a final fallback) on the estimator.
// It returns the scores for inspection.
func (e *RuntimeEstimator) AutoConfigure(candidates []Template, maxRecords int) ([]TemplateScore, error) {
	scores, err := SearchTemplates(e.History, candidates, e.Statistic, maxRecords)
	if err != nil {
		return nil, err
	}
	templates := make([]Template, 0, len(scores)+1)
	haveUniversal := false
	for _, s := range scores {
		templates = append(templates, s.Template)
		if len(s.Template) == 0 {
			haveUniversal = true
		}
	}
	if !haveUniversal {
		templates = append(templates, Template{})
	}
	e.Templates = templates
	return scores, nil
}
