package estimator

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/classad"
	"repro/internal/condor"
	"repro/internal/simgrid"
)

func rec(queue, partition string, nodes int, reqHours, runtime float64) TaskRecord {
	return TaskRecord{
		Queue:          queue,
		Partition:      partition,
		Nodes:          nodes,
		JobType:        "batch",
		Succeeded:      true,
		ReqHours:       reqHours,
		RuntimeSeconds: runtime,
	}
}

func TestHistoryAddLenAll(t *testing.T) {
	h := NewHistory(0)
	for i := 0; i < 5; i++ {
		if err := h.Add(rec("q", "p", 4, 1, float64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 5 {
		t.Fatalf("Len = %d", h.Len())
	}
	all := h.All()
	if len(all) != 5 || all[4].RuntimeSeconds != 104 {
		t.Fatalf("All = %+v", all)
	}
	// All returns a copy.
	all[0].RuntimeSeconds = -999
	if h.All()[0].RuntimeSeconds == -999 {
		t.Fatal("All exposed internal slice")
	}
}

func TestHistoryValidation(t *testing.T) {
	h := NewHistory(0)
	for _, bad := range []TaskRecord{
		{RuntimeSeconds: -1},
		{Nodes: -1},
		{ReqHours: -0.5},
	} {
		if err := h.Add(bad); err == nil {
			t.Errorf("invalid record %+v accepted", bad)
		}
	}
}

func TestHistoryCapEvictsOldest(t *testing.T) {
	h := NewHistory(3)
	for i := 0; i < 10; i++ {
		h.Add(rec("q", "p", 1, 1, float64(i)))
	}
	all := h.All()
	if len(all) != 3 || all[0].RuntimeSeconds != 7 {
		t.Fatalf("capped history = %+v", all)
	}
}

func TestHistorySaveLoad(t *testing.T) {
	h := NewHistory(0)
	r := rec("q32l", "paragon", 16, 2.5, 1234)
	r.Submitted = time.Date(1995, 3, 1, 12, 0, 0, 0, time.UTC)
	h.Add(r)
	path := filepath.Join(t.TempDir(), "hist.json")
	if err := h.Save(path); err != nil {
		t.Fatal(err)
	}
	h2 := NewHistory(0)
	if err := h2.Load(path); err != nil {
		t.Fatal(err)
	}
	got := h2.All()
	if len(got) != 1 || got[0] != r {
		t.Fatalf("round trip = %+v, want %+v", got, r)
	}
	if err := h2.Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loading missing file succeeded")
	}
}

func TestStatsMeanMedianStdDev(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Error("Mean(nil) succeeded")
	}
	if m, _ := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
	if m, _ := Median([]float64{5, 1, 3}); m != 3 {
		t.Errorf("Median odd = %v", m)
	}
	if m, _ := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("Median even = %v", m)
	}
	if _, err := Median(nil); err == nil {
		t.Error("Median(nil) succeeded")
	}
	if _, err := StdDev([]float64{1}); err == nil {
		t.Error("StdDev(1 sample) succeeded")
	}
	sd, _ := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(sd-2.138) > 0.01 {
		t.Errorf("StdDev = %v", sd)
	}
}

func TestLinearRegressionExactFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	reg, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reg.Slope-2) > 1e-12 || math.Abs(reg.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v", reg)
	}
	if math.Abs(reg.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v", reg.R2)
	}
	if got := reg.Predict(10); math.Abs(got-21) > 1e-12 {
		t.Fatalf("Predict(10) = %v", got)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("zero-variance covariate accepted")
	}
}

func TestMAPE(t *testing.T) {
	got, err := MeanAbsolutePercentageError([]float64{100, 200}, []float64{90, 220})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 { // |10%| and |−10%| average to 10%
		t.Fatalf("MAPE = %v", got)
	}
	if _, err := MeanAbsolutePercentageError([]float64{0}, []float64{1}); err == nil {
		t.Error("zero actual accepted")
	}
	if _, err := MeanAbsolutePercentageError(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := MeanAbsolutePercentageError([]float64{1}, nil); err == nil {
		t.Error("mismatch accepted")
	}
}

func TestRuntimeEstimatorMeanOfSimilar(t *testing.T) {
	h := NewHistory(0)
	// Three similar tasks in queue q1/partition p/4 nodes.
	for _, rt := range []float64{100, 110, 120} {
		h.Add(rec("q1", "p", 4, 1, rt))
	}
	// Noise in another queue.
	h.Add(rec("q2", "p", 4, 1, 99999))
	e := NewRuntimeEstimator(h)
	e.Statistic = StatMean
	got, err := e.Estimate(rec("q1", "p", 4, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Seconds-110) > 1e-9 {
		t.Fatalf("estimate = %+v", got)
	}
	if got.Similar != 3 || got.Statistic != StatMean {
		t.Fatalf("provenance = %+v", got)
	}
}

func TestRuntimeEstimatorTemplateFallback(t *testing.T) {
	h := NewHistory(0)
	// Only one task matches the full template, but five match queue-only;
	// with MinSimilar=3 the estimator must fall through to queue-only.
	h.Add(rec("q1", "p1", 4, 1, 100))
	for _, rt := range []float64{200, 210, 220, 230} {
		h.Add(rec("q1", "px", 8, 1, rt))
	}
	e := NewRuntimeEstimator(h)
	e.Statistic = StatMean
	got, err := e.Estimate(rec("q1", "p1", 4, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Similar < 3 {
		t.Fatalf("did not fall through: %+v", got)
	}
}

func TestRuntimeEstimatorUsesSparseMatchWhenNothingBetter(t *testing.T) {
	h := NewHistory(0)
	h.Add(rec("q9", "p", 4, 1, 555))
	e := NewRuntimeEstimator(h)
	e.Statistic = StatMean
	e.Templates = []Template{{AttrQueue}}
	got, err := e.Estimate(rec("q9", "p", 4, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seconds != 555 || got.Similar != 1 {
		t.Fatalf("sparse estimate = %+v", got)
	}
}

func TestRuntimeEstimatorIgnoresFailedRuns(t *testing.T) {
	h := NewHistory(0)
	bad := rec("q", "p", 1, 1, 5)
	bad.Succeeded = false
	h.Add(bad)
	e := NewRuntimeEstimator(h)
	if _, err := e.Estimate(rec("q", "p", 1, 1, 0)); err == nil {
		t.Fatal("estimate from failed-only history succeeded")
	}
}

func TestRuntimeEstimatorRegression(t *testing.T) {
	h := NewHistory(0)
	// Runtime = 3600 × requested hours, exactly.
	for _, hours := range []float64{1, 2, 3, 4} {
		h.Add(rec("q", "p", 4, hours, 3600*hours))
	}
	e := NewRuntimeEstimator(h)
	e.Statistic = StatRegression
	got, err := e.Estimate(rec("q", "p", 4, 2.5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Seconds-9000) > 1e-6 {
		t.Fatalf("regression estimate = %+v", got)
	}
	if got.Regression == nil || got.Regression.R2 < 0.999 {
		t.Fatalf("regression detail = %+v", got.Regression)
	}
}

func TestRuntimeEstimatorAutoPrefersGoodRegression(t *testing.T) {
	h := NewHistory(0)
	for _, hours := range []float64{1, 2, 3, 4} {
		h.Add(rec("q", "p", 4, hours, 3600*hours))
	}
	e := NewRuntimeEstimator(h) // StatAuto
	got, err := e.Estimate(rec("q", "p", 4, 3.5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Statistic != StatRegression {
		t.Fatalf("auto chose %v", got.Statistic)
	}
	if math.Abs(got.Seconds-12600) > 1e-6 {
		t.Fatalf("auto estimate = %v", got.Seconds)
	}
}

func TestRuntimeEstimatorAutoFallsBackToMean(t *testing.T) {
	h := NewHistory(0)
	// Identical requested hours: regression has zero-variance covariate.
	for _, rt := range []float64{100, 120, 140} {
		h.Add(rec("q", "p", 4, 2, rt))
	}
	e := NewRuntimeEstimator(h)
	got, err := e.Estimate(rec("q", "p", 4, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Statistic != StatMean || math.Abs(got.Seconds-120) > 1e-9 {
		t.Fatalf("auto fallback = %+v", got)
	}
}

func TestRuntimeEstimatorOtherStatistics(t *testing.T) {
	h := NewHistory(0)
	for _, rt := range []float64{100, 300, 200} {
		h.Add(rec("q", "p", 4, 1, rt))
	}
	e := NewRuntimeEstimator(h)
	e.Statistic = StatLast
	got, _ := e.Estimate(rec("q", "p", 4, 1, 0))
	if got.Seconds != 200 {
		t.Fatalf("last = %v", got.Seconds)
	}
	e.Statistic = StatMedian
	got, _ = e.Estimate(rec("q", "p", 4, 1, 0))
	if got.Seconds != 200 {
		t.Fatalf("median = %v", got.Seconds)
	}
	e.Statistic = Statistic(99)
	if _, err := e.Estimate(rec("q", "p", 4, 1, 0)); err == nil {
		t.Fatal("unknown statistic accepted")
	}
}

func TestRuntimeEstimatorEmptyHistory(t *testing.T) {
	e := NewRuntimeEstimator(NewHistory(0))
	if _, err := e.Estimate(rec("q", "p", 1, 1, 0)); err == nil {
		t.Fatal("empty history estimate succeeded")
	}
}

func TestStatisticStrings(t *testing.T) {
	for s, want := range map[Statistic]string{
		StatAuto: "auto", StatMean: "mean", StatRegression: "regression",
		StatLast: "last", StatMedian: "median",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestEstimateDB(t *testing.T) {
	db := NewEstimateDB()
	db.Record("poolA", 1, 100)
	db.Record("poolA", 2, 200)
	db.Record("poolB", 1, 300)
	if v, ok := db.Lookup("poolA", 1); !ok || v != 100 {
		t.Fatalf("Lookup = %v, %v", v, ok)
	}
	if v, ok := db.Lookup("poolB", 1); !ok || v != 300 {
		t.Fatalf("cross-pool Lookup = %v, %v", v, ok)
	}
	if _, ok := db.Lookup("poolC", 1); ok {
		t.Fatal("phantom estimate")
	}
	if db.Len() != 3 {
		t.Fatalf("Len = %d", db.Len())
	}
}

// queueFixture builds a pool with one busy machine, a running high-prio
// job, a queued high-prio job, and the queued probe job.
func queueFixture(t *testing.T) (*simgrid.Grid, *condor.Pool, *EstimateDB, int) {
	t.Helper()
	g := simgrid.NewGrid(time.Second, 1)
	site := g.AddSite("s")
	p := condor.NewPool("pool", g, site)
	p.AddMachine(site.AddNode(g.Engine, "n1", 1, simgrid.IdleLoad()), nil)
	db := NewEstimateDB()

	submit := func(cpu float64, prio int, est float64) int {
		ad := classad.New().
			Set(condor.AttrOwner, "u").
			Set(condor.AttrCpuSeconds, cpu).
			Set(condor.AttrPriority, prio)
		id, err := p.Submit(ad)
		if err != nil {
			t.Fatal(err)
		}
		db.Record("pool", id, est)
		return id
	}
	submit(100, 10, 100) // will run first
	submit(50, 5, 50)    // queued ahead of probe
	probe := submit(10, 1, 10)
	g.Engine.RunFor(20 * time.Second) // first job now has ~19s wallclock
	return g, p, db, probe
}

func TestQueueTimeEstimator(t *testing.T) {
	_, p, db, probe := queueFixture(t)
	q := &QueueTimeEstimator{Pool: p, DB: db}
	got, err := q.Estimate(probe)
	if err != nil {
		t.Fatal(err)
	}
	// Running job: 100 est − ~19-20 elapsed ≈ 80-81 remaining.
	// Queued job: 50 est − 0 = 50. Total ≈ 130.
	if got.TasksAhead != 2 {
		t.Fatalf("TasksAhead = %d", got.TasksAhead)
	}
	if got.Seconds < 125 || got.Seconds > 135 {
		t.Fatalf("queue estimate = %v, want ≈130", got.Seconds)
	}
}

func TestQueueTimeEstimatorClampsOverruns(t *testing.T) {
	g, p, db, probe := queueFixture(t)
	// Re-record the running job's estimate as far too small; remaining
	// must clamp at zero, not go negative.
	db.Record("pool", 1, 5)
	g.Engine.RunFor(10 * time.Second)
	q := &QueueTimeEstimator{Pool: p, DB: db}
	got, err := q.Estimate(probe)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seconds < 49 || got.Seconds > 51 {
		t.Fatalf("clamped estimate = %v, want ≈50", got.Seconds)
	}
}

func TestQueueTimeEstimatorMissingDB(t *testing.T) {
	_, p, _, probe := queueFixture(t)
	q := &QueueTimeEstimator{Pool: p, DB: NewEstimateDB(), DefaultEstimate: 60}
	got, err := q.Estimate(probe)
	if err != nil {
		t.Fatal(err)
	}
	// Both ahead jobs default to 60: running one has ~20 elapsed → ~40;
	// queued one → 60. Total ≈ 100.
	if got.Seconds < 95 || got.Seconds > 105 {
		t.Fatalf("default-estimate total = %v", got.Seconds)
	}
	// Without defaults, unknown jobs are skipped entirely.
	q2 := &QueueTimeEstimator{Pool: p, DB: NewEstimateDB()}
	got2, err := q2.Estimate(probe)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Seconds != 0 || got2.TasksAhead != 0 {
		t.Fatalf("skip-unknown = %+v", got2)
	}
}

func TestQueueTimeEstimatorErrors(t *testing.T) {
	q := &QueueTimeEstimator{}
	if _, err := q.Estimate(1); err == nil {
		t.Fatal("no-pool estimate succeeded")
	}
	_, p, db, _ := queueFixture(t)
	q = &QueueTimeEstimator{Pool: p, DB: db}
	if _, err := q.Estimate(12345); err == nil {
		t.Fatal("unknown job estimate succeeded")
	}
}

func TestTransferEstimator(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	g.Network.Connect("a", "b", simgrid.Link{BandwidthMBps: 10})
	te := &TransferEstimator{Network: g.Network}
	got, err := te.Estimate("a", "b", 250)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Seconds-25) > 0.1 {
		t.Fatalf("transfer estimate = %+v", got)
	}
	if math.Abs(got.BandwidthMBps-10) > 0.1 {
		t.Fatalf("measured bandwidth = %v", got.BandwidthMBps)
	}
	// Background utilization raises the estimate.
	g.Network.SetUtilization("a", "b", 0.5)
	loaded, err := te.Estimate("a", "b", 250)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Seconds <= got.Seconds {
		t.Fatalf("utilized estimate %v <= idle %v", loaded.Seconds, got.Seconds)
	}
	if _, err := te.Estimate("a", "nowhere", 1); err == nil {
		t.Fatal("estimate over missing link succeeded")
	}
	if _, err := te.Estimate("a", "b", -1); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := (&TransferEstimator{}).Estimate("a", "b", 1); err == nil {
		t.Fatal("no-network estimate succeeded")
	}
}

// TestTransferEstimatorLatencyAccuracy is the regression test for the
// latency bias: dividing file size by a latency-inclusive iperf figure
// amortized the latency proportionally to size, badly mispricing small
// files on long links. With the latency-excluded steady-state probe plus
// a one-shot latency term, the estimate for a 1 MB file on a 500 ms link
// matches the actual TransferDuration exactly (the old formula predicted
// ~0.16s for the actual 0.6s).
func TestTransferEstimatorLatencyAccuracy(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	g.Network.Connect("a", "b", simgrid.Link{BandwidthMBps: 10, Latency: 500 * time.Millisecond})
	te := &TransferEstimator{Network: g.Network}
	est, err := te.Estimate("a", "b", 1)
	if err != nil {
		t.Fatal(err)
	}
	actual, err := g.Network.TransferDuration("a", "b", 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Seconds-actual.Seconds()) > 1e-9 {
		t.Fatalf("estimate %vs vs actual %vs for a latency-dominated file", est.Seconds, actual.Seconds())
	}
	if math.Abs(est.BandwidthMBps-10) > 1e-9 || math.Abs(est.LatencySeconds-0.5) > 1e-9 {
		t.Fatalf("estimate components = %+v, want steady 10 MB/s + 0.5s latency", est)
	}
	// The one-shot term must not scale with size: a 100x larger file pays
	// the same 0.5s, not 100x it.
	big, err := te.Estimate("a", "b", 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(big.Seconds-(0.5+10)) > 1e-9 {
		t.Fatalf("large-file estimate = %v, want 10.5s", big.Seconds)
	}
}

// TestTransferEstimatorSeesContention: in-flight transfers on the link
// shrink the probe's steady-state share, so estimates track what the
// network is actually doing.
func TestTransferEstimatorSeesContention(t *testing.T) {
	g := simgrid.NewGrid(time.Second, 1)
	g.Network.Connect("a", "b", simgrid.Link{BandwidthMBps: 10})
	te := &TransferEstimator{Network: g.Network}
	idle, err := te.Estimate("a", "b", 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Network.StartTransfer("a", "b", 500, nil); err != nil {
		t.Fatal(err)
	}
	busy, err := te.Estimate("a", "b", 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(idle.Seconds-10) > 1e-9 || math.Abs(busy.Seconds-20) > 1e-9 {
		t.Fatalf("estimates idle=%v busy=%v, want 10s and 20s", idle.Seconds, busy.Seconds)
	}
	if math.Abs(busy.BandwidthMBps-5) > 1e-9 {
		t.Fatalf("contended bandwidth = %v, want 5", busy.BandwidthMBps)
	}
}

// Property: the mean estimator's prediction lies within [min, max] of the
// similar runtimes.
func TestQuickMeanWithinBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistory(0)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			rt := float64(v%10000) + 1
			if rt < lo {
				lo = rt
			}
			if rt > hi {
				hi = rt
			}
			h.Add(rec("q", "p", 1, 1, rt))
		}
		e := NewRuntimeEstimator(h)
		e.Statistic = StatMean
		got, err := e.Estimate(rec("q", "p", 1, 1, 0))
		if err != nil {
			return false
		}
		return got.Seconds >= lo-1e-9 && got.Seconds <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: regression on a perfectly linear history recovers the line.
func TestQuickRegressionRecoversLine(t *testing.T) {
	f := func(slope8, intercept8 int8) bool {
		slope := float64(slope8%50) + 60 // keep runtimes positive
		intercept := float64(intercept8)
		h := NewHistory(0)
		for _, x := range []float64{1, 2, 3, 5, 8} {
			h.Add(rec("q", "p", 1, x, intercept+slope*x+1000))
		}
		e := NewRuntimeEstimator(h)
		e.Statistic = StatRegression
		got, err := e.Estimate(rec("q", "p", 1, 4, 0))
		if err != nil {
			return false
		}
		want := intercept + slope*4 + 1000
		return math.Abs(got.Seconds-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchTemplatesRanksInformativeTemplateFirst(t *testing.T) {
	// Runtime is fully determined by queue; partition is noise. The
	// queue template must beat the universal template.
	h := NewHistory(0)
	queues := map[string]float64{"qa": 100, "qb": 1000, "qc": 10000}
	parts := []string{"p1", "p2", "p3"}
	i := 0
	for q, rt := range queues {
		for _, p := range parts {
			for k := 0; k < 4; k++ {
				h.Add(rec(q, p, 1, 1, rt))
				i++
			}
		}
	}
	scores, err := SearchTemplates(h, []Template{
		{AttrQueue},
		{},
	}, StatMean, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("scores = %+v", scores)
	}
	if len(scores[0].Template) != 1 || scores[0].Template[0] != AttrQueue {
		t.Fatalf("best template = %+v", scores[0])
	}
	if scores[0].MAPE >= scores[1].MAPE {
		t.Fatalf("queue template %v not better than universal %v", scores[0].MAPE, scores[1].MAPE)
	}
	if scores[0].Coverage <= 0.9 {
		t.Fatalf("coverage = %v", scores[0].Coverage)
	}
}

func TestSearchTemplatesErrors(t *testing.T) {
	if _, err := SearchTemplates(NewHistory(0), nil, StatMean, 0); err == nil {
		t.Error("empty history accepted")
	}
	h := NewHistory(0)
	h.Add(rec("q", "p", 1, 1, 100))
	if _, err := SearchTemplates(h, nil, StatMean, 0); err == nil {
		t.Error("single-record history accepted")
	}
}

func TestSearchTemplatesUnpredictableTemplateRanksLast(t *testing.T) {
	h := NewHistory(0)
	// Every record has a distinct account, so the account template never
	// finds a similar held-out task.
	for i := 0; i < 6; i++ {
		r := rec("q", "p", 1, 1, 100)
		r.Account = fmt.Sprintf("acct%d", i)
		h.Add(r)
	}
	scores, err := SearchTemplates(h, []Template{{AttrAccount}, {AttrQueue}}, StatMean, 0)
	if err != nil {
		t.Fatal(err)
	}
	if scores[len(scores)-1].Template[0] != AttrAccount {
		t.Fatalf("unpredictable template not last: %+v", scores)
	}
	if scores[len(scores)-1].Evaluated != 0 {
		t.Fatalf("account template evaluated %d", scores[len(scores)-1].Evaluated)
	}
}

func TestAutoConfigureInstallsWinningOrder(t *testing.T) {
	h := NewHistory(0)
	for i := 0; i < 8; i++ {
		h.Add(rec("qa", "p", 1, 1, 100))
		h.Add(rec("qb", "p", 1, 1, 5000))
	}
	e := NewRuntimeEstimator(h)
	e.Statistic = StatMean
	scores, err := e.AutoConfigure([]Template{{AttrQueue}, {}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("scores = %+v", scores)
	}
	// The installed order must start with the winner and end with the
	// universal fallback.
	if len(e.Templates) != 2 || len(e.Templates[0]) != 1 {
		t.Fatalf("installed templates = %+v", e.Templates)
	}
	got, err := e.Estimate(rec("qa", "p", 1, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Seconds-100) > 1e-9 {
		t.Fatalf("estimate after auto-configure = %v", got.Seconds)
	}
}

func TestAutoConfigureAppendsUniversalFallback(t *testing.T) {
	h := NewHistory(0)
	for i := 0; i < 4; i++ {
		h.Add(rec("qa", "p", 1, 1, 100))
	}
	e := NewRuntimeEstimator(h)
	e.Statistic = StatMean
	if _, err := e.AutoConfigure([]Template{{AttrQueue}}, 0); err != nil {
		t.Fatal(err)
	}
	last := e.Templates[len(e.Templates)-1]
	if len(last) != 0 {
		t.Fatalf("no universal fallback appended: %+v", e.Templates)
	}
	// A task from an unseen queue still gets an estimate via the fallback.
	if _, err := e.Estimate(rec("unseen", "p", 1, 1, 0)); err != nil {
		t.Fatalf("fallback estimate failed: %v", err)
	}
}
