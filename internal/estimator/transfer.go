package estimator

import (
	"fmt"

	"repro/internal/simgrid"
)

// TransferEstimator implements the paper's §6.3 file-transfer-time
// estimator: "we first determine the bandwidth between the client and the
// Clarens server using iperf, and then using this bandwidth and the file
// size, we calculate the transfer time."
type TransferEstimator struct {
	Network *simgrid.Network
	// ProbeMB is the iperf probe payload (default 8 MB).
	ProbeMB float64
}

// TransferEstimate is a prediction with the measured bandwidth that
// produced it.
type TransferEstimate struct {
	Seconds       float64
	BandwidthMBps float64
}

// Estimate predicts how long sizeMB takes from src to dst. The bandwidth
// is measured at call time (an iperf run), so background utilization on
// the link is reflected in the estimate.
func (t *TransferEstimator) Estimate(src, dst string, sizeMB float64) (TransferEstimate, error) {
	if t.Network == nil {
		return TransferEstimate{}, fmt.Errorf("estimator: transfer estimator has no network")
	}
	if sizeMB < 0 {
		return TransferEstimate{}, fmt.Errorf("estimator: negative file size %v", sizeMB)
	}
	bw, err := t.Network.MeasureBandwidth(src, dst, t.ProbeMB)
	if err != nil {
		return TransferEstimate{}, fmt.Errorf("estimator: bandwidth probe: %w", err)
	}
	if bw <= 0 {
		return TransferEstimate{}, fmt.Errorf("estimator: measured non-positive bandwidth %v", bw)
	}
	return TransferEstimate{Seconds: sizeMB / bw, BandwidthMBps: bw}, nil
}
