package estimator

import (
	"fmt"

	"repro/internal/simgrid"
)

// TransferEstimator implements the paper's §6.3 file-transfer-time
// estimator: "we first determine the bandwidth between the client and the
// Clarens server using iperf, and then using this bandwidth and the file
// size, we calculate the transfer time."
//
// The probe runs at call time against the simulated fabric, so both
// background utilization and concurrent flows on the link are reflected
// in the estimate. The link's one-way latency is charged exactly once on
// top of the latency-excluded steady-state bandwidth: dividing size by a
// latency-inclusive iperf figure would scale the latency penalty with
// file size, mispricing small files on long links in both directions.
type TransferEstimator struct {
	Network *simgrid.Network
	// ProbeMB is the iperf probe payload (default 8 MB).
	ProbeMB float64
}

// TransferEstimate is a prediction with the measurement that produced it.
type TransferEstimate struct {
	Seconds float64
	// BandwidthMBps is the latency-excluded steady-state share the probe
	// measured — what a new flow on the link would sustain right now,
	// current contention included.
	BandwidthMBps float64
	// LatencySeconds is the one-shot latency term included in Seconds.
	LatencySeconds float64
}

// Estimate predicts how long sizeMB takes from src to dst as
// latency + size/bandwidth, with the bandwidth measured at call time (an
// iperf run), so background utilization and in-flight transfers on the
// link are reflected in the estimate.
func (t *TransferEstimator) Estimate(src, dst string, sizeMB float64) (TransferEstimate, error) {
	if t.Network == nil {
		return TransferEstimate{}, fmt.Errorf("estimator: transfer estimator has no network")
	}
	if sizeMB < 0 {
		return TransferEstimate{}, fmt.Errorf("estimator: negative file size %v", sizeMB)
	}
	p, err := t.Network.Probe(src, dst, t.ProbeMB)
	if err != nil {
		return TransferEstimate{}, fmt.Errorf("estimator: bandwidth probe: %w", err)
	}
	if p.SteadyStateMBps <= 0 {
		return TransferEstimate{}, fmt.Errorf("estimator: measured non-positive bandwidth %v", p.SteadyStateMBps)
	}
	return TransferEstimate{
		Seconds:        p.Latency.Seconds() + sizeMB/p.SteadyStateMBps,
		BandwidthMBps:  p.SteadyStateMBps,
		LatencySeconds: p.Latency.Seconds(),
	}, nil
}
