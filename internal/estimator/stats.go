package estimator

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs; it errors on empty input.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("estimator: mean of empty sample")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Median returns the middle value (average of the two middles for even n).
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("estimator: median of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], nil
	}
	return (s[n/2-1] + s[n/2]) / 2, nil
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, fmt.Errorf("estimator: stddev needs >=2 samples, got %d", len(xs))
	}
	m, _ := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1)), nil
}

// Regression is a fitted simple linear model y = Intercept + Slope·x.
type Regression struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
	N         int
}

// Predict evaluates the model at x.
func (r Regression) Predict(x float64) float64 {
	return r.Intercept + r.Slope*x
}

// LinearRegression fits y = a + b·x by least squares. It errors when
// fewer than two points are given or x has zero variance (vertical fit).
func LinearRegression(xs, ys []float64) (Regression, error) {
	if len(xs) != len(ys) {
		return Regression{}, fmt.Errorf("estimator: regression length mismatch %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return Regression{}, fmt.Errorf("estimator: regression needs >=2 points, got %d", n)
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Regression{}, fmt.Errorf("estimator: regression covariate has zero variance")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 0.0
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return Regression{Slope: slope, Intercept: intercept, R2: r2, N: n}, nil
}

// MeanAbsolutePercentageError computes the paper's accuracy metric:
// mean over cases of (actual - estimated)/actual × 100, using the
// absolute value of each term. The paper's §7 "Percentage Error" formula
// is signed per case; errors of both signs would cancel in a plain mean,
// so (like the paper's reported 13.53% figure, which is only meaningful
// as a magnitude) we aggregate magnitudes.
func MeanAbsolutePercentageError(actual, estimated []float64) (float64, error) {
	if len(actual) != len(estimated) {
		return 0, fmt.Errorf("estimator: MAPE length mismatch %d vs %d", len(actual), len(estimated))
	}
	if len(actual) == 0 {
		return 0, fmt.Errorf("estimator: MAPE of empty sample")
	}
	sum := 0.0
	for i := range actual {
		if actual[i] == 0 {
			return 0, fmt.Errorf("estimator: MAPE undefined for zero actual at %d", i)
		}
		sum += math.Abs((actual[i] - estimated[i]) / actual[i] * 100)
	}
	return sum / float64(len(actual)), nil
}
