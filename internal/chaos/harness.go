package chaos

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clarens"
	"repro/internal/loadgen"
	"repro/internal/xmlrpc"
	"repro/pkg/gae"
)

// GrantAmount is the fixed per-grant credit amount. Grants all target
// the harness user, so the final balance is exact arithmetic over the
// acked-grant count — one double-applied (or lost) grant shifts it by
// exactly GrantAmount.
const GrantAmount = 7.0

// replicaSites are the sites replica-registration ops target, matching
// the two sites every chaos deployment configures.
var replicaSites = []string{"siteA", "siteB"}

// replicaSize derives a per-op unique size in MB, so a recovered
// registration can be pinned to exactly one acked op.
func replicaSize(w, n, ops int) float64 { return float64(1 + w*ops + n) }

// ServerControl lets the harness crash and restart the system under
// test: Kill must stop it without a drain (the crash), Start must bring
// it back over the same durable state and return its endpoint URL.
type ServerControl struct {
	Kill  func() error
	Start func() (string, error)
}

// Config drives one chaos run.
type Config struct {
	// URL is the initial endpoint; restarts may move it (Start returns
	// the new one).
	URL        string
	User, Pass string

	Workers int // concurrent clients (default 3)
	Ops     int // acked ops each worker must complete (default 12)
	Kills   int // kill/restart cycles spread across the run

	Faults Faults
	// Nonce namespaces every request ID, plan name, and state key, so a
	// reused data directory cannot alias ops from an earlier run.
	Nonce string

	Control ServerControl
	// Retry tunes the clients' transport retry layer; zero-value fields
	// take the layer's defaults.
	Retry gae.RetryPolicy
	Logf  func(format string, args ...any)
}

// OpRecord is one entry of the client-side acked-op log: the harness
// records an op here only after the server acknowledged it.
type OpRecord struct {
	Worker   int
	N        int
	RID      string // the pinned idempotency key
	Kind     string // "submit" | "grant" | "set" | "move" | "setprio" | "replica"
	Key      string // plan name / grantee / state key / dataset
	Result   string // acked result (submit: plan name; move: landed site; setprio: priority; replica: site)
	Attempts int    // deliveries tried before the ack
}

// Report is the reconciliation outcome. The run passes iff LostAcked
// and DoubleApplied are both empty.
type Report struct {
	AckedOps  int
	Attempts  int // total deliveries tried, acked ones included
	Kills     int
	Faults    Stats
	BalanceAt float64 // harness user's balance after the run

	// Server is the recovered server's own /metrics view — journal fsync
	// p99, per-method RPC p99, dedup hits — scraped after reconciliation
	// (nil if the scrape failed; it never fails the run).
	Server *loadgen.ServerStats `json:",omitempty"`

	// LostAcked lists acked ops missing from the recovered state.
	LostAcked []string
	// DoubleApplied lists ops whose effect appears more than once.
	DoubleApplied []string
}

// Passed reports whether reconciliation found the exactly-once
// invariant intact.
func (r *Report) Passed() bool {
	return len(r.LostAcked) == 0 && len(r.DoubleApplied) == 0
}

type harness struct {
	cfg          Config
	transport    *Transport
	startBalance float64

	// acked paces the kill controller: kills fire at fractions of total
	// acked progress, so they always land while load is in flight.
	acked       atomic.Int64
	workersDone chan struct{}

	mu  sync.Mutex
	url string
}

func (h *harness) logf(format string, args ...any) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

func (h *harness) endpoint() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.url
}

func (h *harness) setEndpoint(u string) {
	h.mu.Lock()
	h.url = u
	h.mu.Unlock()
}

// Run drives the configured load through the fault transport while the
// controller kills and restarts the server, then reconciles. The
// returned Report is valid when err is nil.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 12
	}
	if cfg.Nonce == "" {
		return nil, fmt.Errorf("chaos: Config.Nonce is required (it namespaces ops across runs)")
	}
	h := &harness{cfg: cfg, url: cfg.URL, workersDone: make(chan struct{})}
	h.transport = NewTransport(nil, cfg.Faults)

	// The grant ledger is reconciled by exact arithmetic from this
	// starting balance (the data dir may carry credits from other runs).
	pre, err := gae.Dial(ctx, cfg.URL,
		gae.WithCredentials(cfg.User, cfg.Pass), gae.WithTimeout(10*time.Second))
	if err != nil {
		return nil, fmt.Errorf("chaos: pre-run dial: %w", err)
	}
	h.startBalance, err = pre.Balance(ctx)
	pre.Close(ctx)
	if err != nil {
		return nil, fmt.Errorf("chaos: pre-run balance: %w", err)
	}

	logs := make([][]OpRecord, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			logs[w], errs[w] = h.runWorker(ctx, w)
		}(w)
	}
	killDone := make(chan error, 1)
	go func() { killDone <- h.controller(ctx) }()
	wg.Wait()
	close(h.workersDone)
	if err := <-killDone; err != nil {
		return nil, err
	}
	for w, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("chaos: worker %d: %w", w, err)
		}
	}

	var acked []OpRecord
	attempts := 0
	for _, l := range logs {
		for _, r := range l {
			attempts += r.Attempts
		}
		acked = append(acked, l...)
	}
	rep := &Report{
		AckedOps: len(acked),
		Attempts: attempts,
		Kills:    cfg.Kills,
		Faults:   h.transport.Stats(),
	}
	if err := h.reconcile(ctx, acked, rep); err != nil {
		return nil, err
	}
	// Fold in the recovered server's own telemetry; chaos runs survive a
	// missing /metrics (e.g. an externally managed older server).
	if st, err := loadgen.ScrapeServerStats(ctx, h.endpoint()); err == nil {
		rep.Server = st
	} else {
		h.logf("chaos: scraping %s/metrics: %v", h.endpoint(), err)
	}
	return rep, nil
}

// dial logs the worker in through the fault transport, retrying until
// the server answers (it may be mid-restart).
func (h *harness) dial(ctx context.Context) (*gae.Client, error) {
	for {
		cl, err := gae.Dial(ctx, h.endpoint(),
			gae.WithCredentials(h.cfg.User, h.cfg.Pass),
			gae.WithTransport(h.transport),
			gae.WithRetryPolicy(h.cfg.Retry),
			gae.WithTimeout(10*time.Second))
		if err == nil {
			return cl, nil
		}
		if err := sleep(ctx, 25*time.Millisecond); err != nil {
			return nil, fmt.Errorf("dialing %s: %w", h.endpoint(), err)
		}
	}
}

// runWorker completes Ops acked operations, each under a pinned request
// ID, retrying every op until the server acknowledges it — through
// faults, kills, and re-logins. The returned log holds acked ops only.
func (h *harness) runWorker(ctx context.Context, w int) ([]OpRecord, error) {
	cl, err := h.dial(ctx)
	if err != nil {
		return nil, err
	}
	// Each six-op cycle opens with a submission, so the cycle's move and
	// setprio always have a live plan of their own to steer. Move runs
	// before setprio: a move reschedules the task and resets its job-level
	// priority, so this order leaves the priority observable at reconcile.
	// The cycle closes by registering a replica — the data location
	// service's journaled mutation — under a per-op unique dataset.
	kinds := []string{"submit", "grant", "set", "move", "setprio", "replica"}
	var recs []OpRecord
	var lastPlan string
	for n := 0; n < h.cfg.Ops; n++ {
		kind := kinds[n%len(kinds)]
		rid := fmt.Sprintf("%s-w%d-op%d", h.cfg.Nonce, w, n)
		rec := OpRecord{Worker: w, N: n, RID: rid, Kind: kind}
		opCtx := gae.WithRequestID(ctx, rid)
		for {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("op %s unacked: %w", rid, err)
			}
			rec.Attempts++
			var err error
			switch kind {
			case "submit":
				name := fmt.Sprintf("%s-plan-w%d-op%d", h.cfg.Nonce, w, n)
				rec.Key = name
				var got string
				// Long-running tasks: the cycle's later steering ops (and
				// reconciliation) need the task still queued or running.
				got, err = cl.Submit(opCtx, gae.PlanSpec{
					Name: name,
					Tasks: []gae.TaskSpec{{
						ID: "t0", CPUSeconds: 600, Queue: "batch", Nodes: 1, ReqHours: 1,
					}},
				})
				rec.Result = got
				if err == nil {
					lastPlan = name
				}
			case "grant":
				rec.Key = h.cfg.User
				err = cl.Grant(opCtx, h.cfg.User, GrantAmount)
			case "set":
				key := fmt.Sprintf("%s-key-w%d-op%d", h.cfg.Nonce, w, n)
				rec.Key = key
				err = cl.SetState(opCtx, key, rid)
			case "move":
				rec.Key = lastPlan
				var res gae.MoveResult
				// Empty site: the scheduler picks the best other site, so
				// the run needs at least two sites configured.
				res, err = cl.Move(opCtx, lastPlan, "t0", "")
				rec.Result = res.Site
			case "setprio":
				rec.Key = lastPlan
				// A per-op unique priority, so reconciliation can pin this
				// exact op's effect in the recovered state.
				prio := 1 + w*h.cfg.Ops + n
				rec.Result = strconv.Itoa(prio)
				err = cl.SetPriority(opCtx, lastPlan, "t0", prio)
			case "replica":
				ds := fmt.Sprintf("%s-ds-w%d-op%d", h.cfg.Nonce, w, n)
				rec.Key = ds
				site := replicaSites[(w+n)%len(replicaSites)]
				rec.Result = site
				// Per-op unique size: reconciliation checks the recovered
				// catalog holds exactly this op's registration.
				err = cl.RegisterReplica(opCtx, ds, site, replicaSize(w, n, h.cfg.Ops))
			}
			if err == nil {
				break
			}
			if xmlrpc.IsFault(err, xmlrpc.FaultAuth) {
				// The restart dropped the in-memory session; log in
				// again and retry the same request ID.
				if cl, err = h.dial(ctx); err != nil {
					return nil, err
				}
				continue
			}
			if f, ok := xmlrpc.AsFault(err); ok && f.Code != xmlrpc.FaultUnavailable {
				// A semantic rejection would never succeed on retry; it
				// means the harness (or the dedup layer) is broken.
				return nil, fmt.Errorf("op %s rejected: %w", rid, err)
			}
			if err := sleep(ctx, 20*time.Millisecond); err != nil {
				return nil, fmt.Errorf("op %s unacked: %w", rid, err)
			}
		}
		h.acked.Add(1)
		recs = append(recs, rec)
	}
	return recs, nil
}

// controller performs the configured kill/restart cycles while load is
// in flight — each kill waits for its share of total acked progress, so
// crashes always interleave with traffic — then waits for the endpoint
// to answer pings after each restart.
func (h *harness) controller(ctx context.Context) error {
	total := int64(h.cfg.Workers * h.cfg.Ops)
	for k := 0; k < h.cfg.Kills; k++ {
		target := total * int64(k+1) / int64(h.cfg.Kills+1)
		for h.acked.Load() < target {
			select {
			case <-h.workersDone:
				return nil // workers ended first; they decide pass/fail
			default:
			}
			if err := sleep(ctx, 2*time.Millisecond); err != nil {
				return nil
			}
		}
		h.logf("chaos: kill %d/%d", k+1, h.cfg.Kills)
		if err := h.cfg.Control.Kill(); err != nil {
			return fmt.Errorf("chaos: kill %d: %w", k+1, err)
		}
		url, err := h.cfg.Control.Start()
		if err != nil {
			return fmt.Errorf("chaos: restart %d: %w", k+1, err)
		}
		h.setEndpoint(url)
		if err := h.waitReady(ctx, url); err != nil {
			return fmt.Errorf("chaos: restart %d: %w", k+1, err)
		}
		h.logf("chaos: server back at %s", url)
	}
	return nil
}

func (h *harness) waitReady(ctx context.Context, url string) error {
	cc := clarens.NewClientTimeout(url, 5*time.Second)
	for {
		if _, err := cc.Call(ctx, "system.ping"); err == nil {
			return nil
		}
		if err := sleep(ctx, 25*time.Millisecond); err != nil {
			return fmt.Errorf("endpoint %s never answered: %w", url, err)
		}
	}
}

// reconcile compares the acked-op log against the recovered server
// state over a clean (fault-free) connection.
func (h *harness) reconcile(ctx context.Context, acked []OpRecord, rep *Report) error {
	// Retry the dial briefly: the HTTP connection pool may still hold
	// connections the last kill severed.
	var cl *gae.Client
	var err error
	for {
		cl, err = gae.Dial(ctx, h.endpoint(),
			gae.WithCredentials(h.cfg.User, h.cfg.Pass),
			gae.WithTimeout(10*time.Second))
		if err == nil {
			break
		}
		if serr := sleep(ctx, 25*time.Millisecond); serr != nil {
			return fmt.Errorf("chaos: reconciling dial: %w", err)
		}
	}
	defer cl.Close(ctx)

	grants := 0
	for _, r := range acked {
		switch r.Kind {
		case "submit":
			if _, err := cl.Plan(ctx, r.Key); err != nil {
				rep.LostAcked = append(rep.LostAcked,
					fmt.Sprintf("%s: acked plan %q not in recovered state: %v", r.RID, r.Key, err))
			}
		case "grant":
			grants++
		case "set":
			v, err := cl.GetState(ctx, r.Key)
			if err != nil {
				rep.LostAcked = append(rep.LostAcked,
					fmt.Sprintf("%s: acked state key %q not in recovered state: %v", r.RID, r.Key, err))
			} else if v != r.RID {
				rep.DoubleApplied = append(rep.DoubleApplied,
					fmt.Sprintf("%s: state key %q holds %q, want %q", r.RID, r.Key, v, r.RID))
			}
		case "move":
			st, err := cl.TaskStatus(ctx, r.Key, "t0")
			if err != nil {
				rep.LostAcked = append(rep.LostAcked,
					fmt.Sprintf("%s: acked move target %q not in recovered state: %v", r.RID, r.Key, err))
			} else if st.Site != r.Result {
				rep.LostAcked = append(rep.LostAcked,
					fmt.Sprintf("%s: task %q/t0 at site %q, move acked landing at %q", r.RID, r.Key, st.Site, r.Result))
			}
		case "setprio":
			st, err := cl.TaskStatus(ctx, r.Key, "t0")
			switch {
			case err != nil:
				rep.LostAcked = append(rep.LostAcked,
					fmt.Sprintf("%s: acked setprio target %q not in recovered state: %v", r.RID, r.Key, err))
			case st.Job == nil:
				rep.LostAcked = append(rep.LostAcked,
					fmt.Sprintf("%s: task %q/t0 has no pool job to carry priority %s", r.RID, r.Key, r.Result))
			case strconv.Itoa(st.Job.Priority) != r.Result:
				rep.LostAcked = append(rep.LostAcked,
					fmt.Sprintf("%s: task %q/t0 priority %d, acked %s", r.RID, r.Key, st.Job.Priority, r.Result))
			}
		case "replica":
			locs, err := cl.Replicas(ctx, r.Key)
			wantSize := replicaSize(r.Worker, r.N, h.cfg.Ops)
			switch {
			case err != nil || len(locs) == 0:
				rep.LostAcked = append(rep.LostAcked,
					fmt.Sprintf("%s: acked replica of %q not in recovered catalog: %v", r.RID, r.Key, err))
			case len(locs) > 1:
				// The dataset name is op-unique, so a second location can
				// only come from a duplicated delivery landing elsewhere.
				rep.DoubleApplied = append(rep.DoubleApplied,
					fmt.Sprintf("%s: dataset %q has %d locations, one op registered one", r.RID, r.Key, len(locs)))
			case locs[0].Site != r.Result || locs[0].SizeMB != wantSize:
				rep.LostAcked = append(rep.LostAcked,
					fmt.Sprintf("%s: dataset %q recovered at %s (%.0f MB), acked %s (%.0f MB)",
						r.RID, r.Key, locs[0].Site, locs[0].SizeMB, r.Result, wantSize))
			}
		}
	}

	// Grants all added GrantAmount to the harness user: the balance
	// pins the exact apply count. Low means an acked grant was lost;
	// high means one applied more than once.
	balance, err := cl.Balance(ctx)
	if err != nil {
		return fmt.Errorf("chaos: reconciling balance: %w", err)
	}
	rep.BalanceAt = balance
	want := h.startBalance + float64(grants)*GrantAmount
	if diff := balance - want; math.Abs(diff) > 1e-6 {
		msg := fmt.Sprintf("quota: balance %.2f, want %.2f (%d acked grants of %.0f from %.2f)",
			balance, want, grants, GrantAmount, h.startBalance)
		if diff < 0 {
			rep.LostAcked = append(rep.LostAcked, msg)
		} else {
			rep.DoubleApplied = append(rep.DoubleApplied, msg)
		}
	}
	return nil
}

func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
